/**
 * @file
 * Figure 8 reproduction: normalized execution time of the CilkApps under
 * S+, WS+, W+, and Wee, broken down into Busy / Other Stall / Fence
 * Stall. Every row is one bar of the paper's figure.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);

    Table table({"app", "design", "normTime", "busy", "otherStall",
                 "fenceStall", "fenceStallPct"});

    double sum_norm[4] = {0, 0, 0, 0};
    double sum_fencepct[4] = {0, 0, 0, 0};
    unsigned napps = 0;

    // One job per (app, design); results come back in job order, so the
    // table below reads exactly as the serial loop would.
    std::vector<SweepJob> sweep;
    for (const CilkApp &app_ref : cilkApps()) {
        CilkApp app = app_ref;
        if (opt.quick) {
            app.spawnDepth = std::min(app.spawnDepth, 3u);
            app.initialTasks = std::min(app.initialTasks, 2u);
        }
        for (FenceDesign d : figureDesigns())
            sweep.push_back(
                [app, d] { return runCilkExperiment(app, d, 8); });
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (const CilkApp &app : cilkApps()) {
        double splus_cycles = 0;
        unsigned di = 0;
        for (FenceDesign d : figureDesigns()) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            if (d == FenceDesign::SPlus)
                splus_cycles = double(r.cycles);
            double norm = double(r.cycles) / splus_cycles;
            // Split the normalized bar by the cycle classification.
            double active = double(r.breakdown.active());
            double busy = norm * double(r.breakdown.busy) / active;
            double other = norm * double(r.breakdown.otherStall) / active;
            double fence = norm * double(r.breakdown.fenceStall) / active;
            table.addRow({app.name, fenceDesignName(d), fmtDouble(norm),
                          fmtDouble(busy), fmtDouble(other),
                          fmtDouble(fence),
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1)});
            sum_norm[di] += norm;
            sum_fencepct[di] += r.breakdown.fenceFrac();
            di++;
        }
        napps++;
    }

    unsigned di = 0;
    for (FenceDesign d : figureDesigns()) {
        table.addRow({"[CILK-AVG]", fenceDesignName(d),
                      fmtDouble(sum_norm[di] / napps), "-", "-", "-",
                      fmtDouble(100.0 * sum_fencepct[di] / napps, 1)});
        di++;
    }

    emit(table, opt,
         "Figure 8: CilkApps execution time (normalized to S+)");
    return 0;
}
