/**
 * @file
 * Ablation: Bypass Set capacity. The paper fixes 32 entries; this sweep
 * shows where smaller BSes start degrading W+ (full-BS holds force
 * strong-fence behavior for the overflowing loads).
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 80'000 : 250'000;

    Table table({"bsEntries", "bench", "txnPerKcycle", "bsFullHolds",
                 "fenceStallPct"});

    std::vector<SweepJob> sweep;
    // bsFullHolds is not an ExperimentResult field; each job writes its
    // own slot (slot i belongs exclusively to job i).
    std::vector<uint64_t> holds_by_job;
    for (unsigned bs : {1u, 2u, 4u, 8u, 16u, 32u}) {
        for (const char *name : {"ReadNWrite1", "Hash"}) {
            size_t slot = sweep.size();
            holds_by_job.push_back(0);
            sweep.push_back([bs, name, run_cycles, slot, &holds_by_job] {
                const TlrwBench &bench = ustmBenchByName(name);
                SystemConfig cfg;
                cfg.numCores = 8;
                cfg.design = FenceDesign::WPlus;
                cfg.bsEntries = bs;
                cfg.fastForward = harness::fastForwardEnabled();
                System sys(cfg);
                setupTlrwWorkload(sys, bench, 0);
                sys.run(run_cycles);
                ExperimentResult r;
                r.workload = bench.name;
                r.design = cfg.design;
                r.cycles = sys.now();
                harvestStats(sys, r);
                uint64_t holds = 0;
                for (unsigned i = 0; i < 8; i++)
                    holds +=
                        sys.core(NodeId(i)).stats().get("bsFullHolds");
                holds_by_job[slot] = holds;
                return r;
            });
        }
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (unsigned bs : {1u, 2u, 4u, 8u, 16u, 32u}) {
        for (const char *name : {"ReadNWrite1", "Hash"}) {
            const ExperimentResult &r = results[ri];
            table.addRow({std::to_string(bs), name,
                          fmtDouble(r.throughputTxnPerKcycle()),
                          std::to_string(holds_by_job[ri]),
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1)});
            ri++;
        }
    }

    emit(table, opt, "Ablation: Bypass Set capacity under W+");
    return 0;
}
