/**
 * @file
 * Ablation: Bypass Set capacity. The paper fixes 32 entries; this sweep
 * shows where smaller BSes start degrading W+ (full-BS holds force
 * strong-fence behavior for the overflowing loads).
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 80'000 : 250'000;

    Table table({"bsEntries", "bench", "txnPerKcycle", "bsFullHolds",
                 "fenceStallPct"});

    for (unsigned bs : {1u, 2u, 4u, 8u, 16u, 32u}) {
        for (const char *name : {"ReadNWrite1", "Hash"}) {
            const TlrwBench &bench = ustmBenchByName(name);
            SystemConfig cfg;
            cfg.numCores = 8;
            cfg.design = FenceDesign::WPlus;
            cfg.bsEntries = bs;
            System sys(cfg);
            setupTlrwWorkload(sys, bench, 0);
            sys.run(run_cycles);
            ExperimentResult r;
            r.workload = bench.name;
            r.design = cfg.design;
            r.cycles = sys.now();
            harvestStats(sys, r);
            uint64_t holds = 0;
            for (unsigned i = 0; i < 8; i++)
                holds += sys.core(NodeId(i)).stats().get("bsFullHolds");
            table.addRow({std::to_string(bs), name,
                          fmtDouble(r.throughputTxnPerKcycle()),
                          std::to_string(holds),
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1)});
        }
    }

    emit(table, opt, "Ablation: Bypass Set capacity under W+");
    return 0;
}
