/**
 * @file
 * Ablation: W+ deadlock-suspicion timeout. Too short triggers spurious
 * rollbacks (busy-time inflation), too long leaves genuine deadlocks
 * stalled. The paper leaves this constant unspecified; 300 cycles is our
 * default.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 80'000 : 250'000;

    Table table({"timeout", "bench", "txnPerKcycle", "recoveries",
                 "recovPerWf"});

    std::vector<SweepJob> sweep;
    for (Tick timeout : {50u, 100u, 300u, 1000u, 3000u}) {
        for (const char *name : {"Counter", "TreeOverwrite"}) {
            sweep.push_back([timeout, name, run_cycles] {
                const TlrwBench &bench = ustmBenchByName(name);
                SystemConfig cfg;
                cfg.numCores = 8;
                cfg.design = FenceDesign::WPlus;
                cfg.wPlusTimeout = timeout;
                cfg.fastForward = harness::fastForwardEnabled();
                System sys(cfg);
                setupTlrwWorkload(sys, bench, 0);
                sys.run(run_cycles);
                ExperimentResult r;
                r.cycles = sys.now();
                harvestStats(sys, r);
                return r;
            });
        }
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (Tick timeout : {50u, 100u, 300u, 1000u, 3000u}) {
        for (const char *name : {"Counter", "TreeOverwrite"}) {
            const ExperimentResult &r = results[ri++];
            double per_wf = r.fencesWeak
                                ? double(r.wPlusRecoveries) /
                                      double(r.fencesWeak)
                                : 0.0;
            table.addRow({std::to_string(timeout), name,
                          fmtDouble(r.throughputTxnPerKcycle()),
                          std::to_string(r.wPlusRecoveries),
                          fmtDouble(per_wf, 4)});
        }
    }

    emit(table, opt, "Ablation: W+ recovery timeout");
    return 0;
}
