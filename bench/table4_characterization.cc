/**
 * @file
 * Table 4 reproduction: characterization of the asymmetric fence designs
 * on 8 processors - fences per 1000 instructions by kind, Bypass Set
 * occupancy, bounced writes and retries, W+ recoveries, Wee demotions,
 * and network-traffic overhead.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

namespace
{

struct GroupAccum
{
    double instr = 0;
    double sf = 0, wf = 0;
    double bounced = 0, retrySamplesWeighted = 0;
    double bsLinesWeighted = 0, bsSamples = 0;
    double recoveries = 0;
    double demotions = 0;
    double bytesBase = 0, bytesOver = 0;
    double active = 0, fenceStall = 0, weeHold = 0, bounce = 0;
    unsigned n = 0;

    void
    add(const ExperimentResult &r)
    {
        active += double(r.breakdown.active());
        fenceStall += double(r.breakdown.fenceStall);
        weeHold += double(r.breakdown.bucket(StallBucket::FenceGrtWait) +
                          r.breakdown.bucket(StallBucket::FenceRemotePs));
        bounce +=
            double(r.breakdown.bucket(StallBucket::FenceBounceRetry) +
                   r.breakdown.bucket(StallBucket::FenceSerialize));
        instr += double(r.instrRetired);
        sf += double(r.fencesStrong);
        wf += double(r.fencesWeak);
        bounced += double(r.bouncedWrites);
        retrySamplesWeighted +=
            r.retriesPerBouncedWrite * double(r.bouncedWrites);
        bsLinesWeighted += r.bsLinesPerWf * double(r.fencesWeak);
        bsSamples += double(r.fencesWeak);
        recoveries += double(r.wPlusRecoveries);
        demotions += double(r.weeDemotions);
        bytesBase += double(r.bytesBase);
        bytesOver += double(r.bytesRetry + r.bytesGrt);
        n++;
    }
};

std::vector<std::string>
rowFor(const std::string &group, const char *design, const GroupAccum &g)
{
    double per1000 = g.instr > 0 ? 1000.0 / g.instr : 0.0;
    double wf_count = g.wf > 0 ? g.wf : 1.0;
    return {group,
            design,
            fmtDouble(g.sf * per1000, 3),
            fmtDouble(g.wf * per1000, 3),
            fmtDouble(g.bsSamples > 0 ? g.bsLinesWeighted / g.bsSamples
                                      : 0.0,
                      2),
            fmtDouble(g.bounced / wf_count, 4),
            fmtDouble(g.bounced > 0 ? g.retrySamplesWeighted / g.bounced
                                    : 0.0,
                      2),
            fmtDouble(g.recoveries / wf_count, 4),
            fmtDouble(g.demotions * per1000, 3),
            fmtDouble(g.bytesBase > 0
                          ? 100.0 * g.bytesOver / g.bytesBase
                          : 0.0,
                      3),
            fmtDouble(g.active > 0 ? 100.0 * g.fenceStall / g.active
                                   : 0.0,
                      2),
            fmtDouble(g.active > 0 ? 100.0 * g.weeHold / g.active : 0.0,
                      2),
            fmtDouble(g.active > 0 ? 100.0 * g.bounce / g.active : 0.0,
                      2)};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick ustm_cycles = opt.quick ? 80'000 : 250'000;

    // fence% / weeHold% / bounce% are CPI-stack shares of active
    // cycles: total fence stall, Wee GRT-wait + Remote-PS holds, and
    // bounce retries + Wee serialization respectively.
    Table table({"group", "design", "sf/1000i", "wf/1000i", "lines/BS",
                 "wrBounc/wf", "retries/wr", "recov/wf", "demote/1000i",
                 "trafficIncr%", "fence%", "weeHold%", "bounce%"});

    std::vector<FenceDesign> designs = {FenceDesign::SPlus,
                                        FenceDesign::WSPlus,
                                        FenceDesign::WPlus,
                                        FenceDesign::Wee};

    std::vector<SweepJob> sweep;
    for (FenceDesign d : designs) {
        for (const CilkApp &app_ref : cilkApps()) {
            CilkApp app = app_ref;
            if (opt.quick) {
                app.spawnDepth = std::min(app.spawnDepth, 3u);
                app.initialTasks = std::min(app.initialTasks, 2u);
            }
            sweep.push_back(
                [app, d] { return runCilkExperiment(app, d, 8); });
        }
        for (const TlrwBench &bench : ustmBenches())
            sweep.push_back([&bench, d, ustm_cycles] {
                return runUstmExperiment(bench, d, 8, ustm_cycles);
            });
        for (const StampApp &app_ref : stampApps()) {
            StampApp app = app_ref;
            if (opt.quick)
                app.txnsPerThread =
                    std::max<uint64_t>(app.txnsPerThread / 4, 8);
            sweep.push_back(
                [app, d] { return runStampExperiment(app, d, 8); });
        }
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (FenceDesign d : designs) {
        GroupAccum cilk, ustm, stamp;
        for (size_t i = 0; i < cilkApps().size(); i++) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            cilk.add(r);
        }
        for (size_t i = 0; i < ustmBenches().size(); i++) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            ustm.add(r);
        }
        for (size_t i = 0; i < stampApps().size(); i++) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            stamp.add(r);
        }
        table.addRow(rowFor("CilkApps", fenceDesignName(d), cilk));
        table.addRow(rowFor("ustm", fenceDesignName(d), ustm));
        table.addRow(rowFor("STAMP", fenceDesignName(d), stamp));
    }

    emit(table, opt, "Table 4: characterization of asymmetric fences");
    return 0;
}
