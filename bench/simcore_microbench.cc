/**
 * @file
 * Microbenchmarks of the simulator substrate itself, in two parts:
 *
 * 1. A host-performance report (BENCH_simcore.json): an 8-core
 *    fence-heavy workload — a cold-miss store stream drained through a
 *    strong fence per iteration, followed by a cold-miss load — is run
 *    with idle-cycle fast-forward off and on, recording host
 *    wall-clock, simulated cycles per host second, and
 *    executed events per second for each, plus the speedup. A busy spin
 *    loop rides along as the no-idle-cycles control. The two runs must
 *    agree on final cycle count and retired instructions (the
 *    fast-forward invariant; tests/sys/test_fast_forward.cc checks full
 *    stats equality).
 *
 * 2. google-benchmark microbenchmarks of the individual kernels:
 *    event-queue throughput, cache-array lookups, Bypass Set probes,
 *    mesh routing, and end-to-end simulated cycles per host second.
 *
 * Usage: simcore_microbench [--out PATH] [--json-only]
 *                           [google-benchmark flags]
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>

#include "fence/bypass_set.hh"
#include "harness/report.hh"
#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "prog/assembler.hh"
#include "sim/logging.hh"
#include "sys/system.hh"

using namespace asf;

namespace
{

// --- part 1: fast-forward host-performance report -----------------------

struct HostRun
{
    double seconds = 0;
    uint64_t simCycles = 0;
    uint64_t events = 0;
    uint64_t instrRetired = 0;
    uint64_t fastForwardedCycles = 0;

    double cyclesPerSec() const
    {
        return seconds > 0 ? double(simCycles) / seconds : 0.0;
    }
    double eventsPerSec() const
    {
        return seconds > 0 ? double(events) / seconds : 0.0;
    }
};

/** Each core streams stores through a never-revisited region — every
 *  one a ~200-cycle off-chip miss — draining each through a strong
 *  fence, then cold-loads from a second region. Nearly every cycle is
 *  a fence or miss stall with only a handful of in-flight events, so
 *  the clock can jump in large steps: the fast-forward best case, and
 *  the access pattern fence-heavy code (streaming producers behind
 *  release fences) actually exhibits. */
std::shared_ptr<const Program>
fenceHeavyProgram(int64_t iters)
{
    Assembler a("fence_heavy");
    // r1 = store-stream cursor, r2 = load-stream cursor (host-set).
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.addi(3, 3, 1);
    a.st(1, 0, 3);
    a.fence(FenceRole::Critical);
    a.ld(6, 2, 0);
    a.addi(1, 1, 4096);
    a.addi(2, 2, 4096);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return std::make_shared<const Program>(a.finish());
}

/** Dependent ALU chain with a same-line load/store: no idle cycles, so
 *  fast-forward never triggers. Control for the report. */
std::shared_ptr<const Program>
busySpinProgram(int64_t iters)
{
    Assembler a("busy_spin");
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.ld(2, 1, 0);
    a.addi(2, 2, 1);
    a.st(1, 0, 2);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return std::make_shared<const Program>(a.finish());
}

HostRun
timeWorkload(bool fence_heavy, bool fast_forward, int64_t iters)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.design = FenceDesign::SPlus;
    cfg.fastForward = fast_forward;
    System sys(cfg);
    auto prog = fence_heavy ? fenceHeavyProgram(iters)
                            : busySpinProgram(iters);
    for (unsigned i = 0; i < 8; i++) {
        sys.loadProgram(NodeId(i), prog);
        // Disjoint per-core streams; the 4 KiB stride stays inside
        // the same home-node residue class (homes rotate every 512 B),
        // so every access cold-misses to memory via the core's LOCAL
        // directory. All eight cores then have identical per-iteration
        // timing and stay phase-locked, the natural behaviour of a
        // bank-aligned streaming producer.
        sys.core(NodeId(i)).setReg(1, 0x1000000 + Addr(i) * 512);
        sys.core(NodeId(i)).setReg(2, 0x4000000 + Addr(i) * 512);
    }

    auto start = std::chrono::steady_clock::now();
    auto result = sys.run(1'000'000'000);
    auto stop = std::chrono::steady_clock::now();
    if (result != System::RunResult::AllDone)
        fatal("microbench workload did not finish");

    HostRun r;
    r.seconds = std::chrono::duration<double>(stop - start).count();
    r.simCycles = sys.now();
    r.events = sys.eventQueue().executedEvents();
    r.instrRetired = sys.totalInstrRetired();
    r.fastForwardedCycles = sys.fastForwardedCycles();
    return r;
}

void
emitRun(harness::JsonWriter &w, const char *key, const HostRun &r)
{
    w.key(key).beginObject();
    w.field("hostSeconds", r.seconds);
    w.field("simCycles", r.simCycles);
    w.field("simCyclesPerSec", r.cyclesPerSec());
    w.field("eventsExecuted", r.events);
    w.field("eventsPerSec", r.eventsPerSec());
    w.field("instrRetired", r.instrRetired);
    w.field("fastForwardedCycles", r.fastForwardedCycles);
    w.endObject();
}

void
writeReport(const std::string &path)
{
    struct Entry
    {
        const char *name;
        bool fenceHeavy;
        int64_t iters;
    };
    // ~1M simulated cycles each: long enough that host timing is
    // dominated by the simulation loop, short enough for CI.
    const Entry entries[] = {
        {"fence_heavy_8core", true, 2000},
        {"busy_spin_8core", false, 40000},
    };

    std::ofstream f(path, std::ios::trunc);
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    harness::JsonWriter w(f);
    w.beginObject();
    w.field("schemaVersion", uint64_t(1));
    w.field("design", "S+");
    w.field("cores", 8u);
    w.key("workloads").beginArray();
    for (const Entry &e : entries) {
        // Warm-up run absorbs first-touch host effects (page faults,
        // allocator growth), then time both modes.
        timeWorkload(e.fenceHeavy, false, e.iters / 4);
        HostRun off = timeWorkload(e.fenceHeavy, false, e.iters);
        HostRun on = timeWorkload(e.fenceHeavy, true, e.iters);
        if (on.simCycles != off.simCycles ||
            on.instrRetired != off.instrRetired)
            fatal("%s: fast-forward changed simulated results "
                  "(cycles %llu vs %llu)",
                  e.name, (unsigned long long)on.simCycles,
                  (unsigned long long)off.simCycles);
        double speedup =
            on.seconds > 0 ? off.seconds / on.seconds : 0.0;
        w.beginObject();
        w.field("name", e.name);
        emitRun(w, "noFastForward", off);
        emitRun(w, "fastForward", on);
        w.field("speedup", speedup);
        w.endObject();
        std::printf("%-20s %9.0f cyc/s off, %9.0f cyc/s on, "
                    "speedup %.2fx (%llu/%llu cycles fast-forwarded)\n",
                    e.name, off.cyclesPerSec(), on.cyclesPerSec(),
                    speedup,
                    (unsigned long long)on.fastForwardedCycles,
                    (unsigned long long)on.simCycles);
    }
    w.endArray();
    w.endObject();
    f << '\n';
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

// --- part 2: kernel microbenchmarks -------------------------------------

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        uint64_t fired = 0;
        for (int i = 0; i < 1000; i++)
            eq.schedule(Tick(i % 97), [&] { fired++; });
        eq.runUntil(100);
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray c(32 * 1024, 4);
    bool valid;
    for (Addr a = 0; a < 32 * 1024; a += 32) {
        CacheLine &slot = c.victimFor(a, valid);
        c.install(slot, a, MesiState::Shared, LineData{});
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(probe));
        probe = (probe + 32) & (32 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheArrayLookup);

static void
BM_BypassSetProbe(benchmark::State &state)
{
    BypassSet bs(32);
    for (int i = 0; i < 8; i++)
        bs.insert(0x1000 + Addr(i) * 32);
    Addr probe = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bs.match(probe, 0));
        probe += 32;
    }
}
BENCHMARK(BM_BypassSetProbe);

static void
BM_MeshRouting(benchmark::State &state)
{
    EventQueue eq;
    Mesh mesh(eq, 16);
    uint64_t delivered = 0;
    for (unsigned n = 0; n < 16; n++)
        mesh.setSink(NodeId(n), [&](const Message &) { delivered++; });
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.src = src;
        m.dst = NodeId((src + 7) % 16);
        mesh.send(std::move(m));
        src = NodeId((src + 1) % 16);
        eq.runUntil(eq.now() + 1);
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshRouting);

static void
BM_EndToEndSimCyclesPerSecond(benchmark::State &state)
{
    // Simulated-cycle throughput of a busy 8-core system.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numCores = 8;
        System sys(cfg);
        Assembler a("spin");
        // Register 1 (the data pointer) is set per-core by the host.
        a.bind("loop");
        a.ld(2, 1, 0);
        a.addi(2, 2, 1);
        a.st(1, 0, 2);
        a.jmp("loop");
        auto prog = std::make_shared<const Program>(a.finish());
        for (int i = 0; i < 8; i++) {
            sys.loadProgram(NodeId(i), prog);
            // Separate lines per core: no contention, pure throughput.
            sys.core(NodeId(i)).setReg(1, 0x1000 + Addr(i) * 0x1000);
        }
        sys.run(10'000);
        benchmark::DoNotOptimize(sys.now());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10'000 * 8);
}
BENCHMARK(BM_EndToEndSimCyclesPerSecond);

int
main(int argc, char **argv)
{
    std::string out = "BENCH_simcore.json";
    bool json_only = false;
    // Strip our flags so google-benchmark does not reject them.
    int kept = 1;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out = argv[++i];
        else if (!std::strncmp(argv[i], "--out=", 6))
            out = argv[i] + 6;
        else if (!std::strcmp(argv[i], "--json-only"))
            json_only = true;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    setVerbose(false);
    writeReport(out);
    if (json_only)
        return 0;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
