/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * event-queue throughput, cache-array lookups, Bypass Set probes, mesh
 * routing, and end-to-end simulated cycles per host second.
 */

#include <benchmark/benchmark.h>

#include "fence/bypass_set.hh"
#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "prog/assembler.hh"
#include "sim/event_queue.hh"
#include "sys/system.hh"

using namespace asf;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        uint64_t fired = 0;
        for (int i = 0; i < 1000; i++)
            eq.schedule(Tick(i % 97), [&] { fired++; });
        eq.runUntil(100);
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray c(32 * 1024, 4);
    bool valid;
    for (Addr a = 0; a < 32 * 1024; a += 32) {
        CacheLine &slot = c.victimFor(a, valid);
        c.install(slot, a, MesiState::Shared, LineData{});
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(probe));
        probe = (probe + 32) & (32 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheArrayLookup);

static void
BM_BypassSetProbe(benchmark::State &state)
{
    BypassSet bs(32);
    for (int i = 0; i < 8; i++)
        bs.insert(0x1000 + Addr(i) * 32);
    Addr probe = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bs.match(probe, 0));
        probe += 32;
    }
}
BENCHMARK(BM_BypassSetProbe);

static void
BM_MeshRouting(benchmark::State &state)
{
    EventQueue eq;
    Mesh mesh(eq, 16);
    uint64_t delivered = 0;
    for (unsigned n = 0; n < 16; n++)
        mesh.setSink(NodeId(n), [&](const Message &) { delivered++; });
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.src = src;
        m.dst = NodeId((src + 7) % 16);
        mesh.send(std::move(m));
        src = NodeId((src + 1) % 16);
        eq.runUntil(eq.now() + 1);
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshRouting);

static void
BM_EndToEndSimCyclesPerSecond(benchmark::State &state)
{
    // Simulated-cycle throughput of a busy 8-core system.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numCores = 8;
        System sys(cfg);
        Assembler a("spin");
        // Register 1 (the data pointer) is set per-core by the host.
        a.bind("loop");
        a.ld(2, 1, 0);
        a.addi(2, 2, 1);
        a.st(1, 0, 2);
        a.jmp("loop");
        auto prog = std::make_shared<const Program>(a.finish());
        for (int i = 0; i < 8; i++) {
            sys.loadProgram(NodeId(i), prog);
            // Separate lines per core: no contention, pure throughput.
            sys.core(NodeId(i)).setReg(1, 0x1000 + Addr(i) * 0x1000);
        }
        sys.run(10'000);
        benchmark::DoNotOptimize(sys.now());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10'000 * 8);
}
BENCHMARK(BM_EndToEndSimCyclesPerSecond);

BENCHMARK_MAIN();
