/**
 * @file
 * Microbenchmarks of the simulator substrate itself, in two parts:
 *
 * 1. A host-performance report (BENCH_simcore.json, schemaVersion 3):
 *    each workload is run under all three execution modes —
 *    `noFastForward` (cycle-exact), `fastForward` (idle-cycle skipping,
 *    PR 2), and `directExec` (fast-forward plus the block-batched
 *    direct-execution engine; see DESIGN.md "Run-loop arbitration") —
 *    recording host wall-clock, simulated cycles per host second and
 *    executed events per second for each, plus the two speedups over
 *    the cycle-exact baseline. The workloads span the regimes the two
 *    optimizations target: a fence-heavy cold-miss stream (idle-
 *    dominated), 8- and 32-core busy spins (compute-bound, the
 *    direct-execution target), and a mixed compute+fence kernel. All
 *    three modes must produce a byte-identical full stats dump — the
 *    report carries a per-mode FNV-1a digest of it and the run aborts
 *    on any mismatch (tests/sys/test_direct_exec.cc checks the same
 *    invariant over fuzz programs). Version 3 adds an `observatory`
 *    block: the wall-clock overhead of interval sampling plus hot-line
 *    tracking on the busy-spin kernel (target <= 5%, gated at 10% by
 *    tools/stats_diff.py check-perf), with the same observation-only
 *    identity requirement.
 *
 * 2. google-benchmark microbenchmarks of the individual kernels:
 *    event-queue throughput, cache-array lookups, Bypass Set probes,
 *    mesh routing, and end-to-end simulated cycles per host second.
 *
 * Usage: simcore_microbench [--out PATH] [--json-only] [--quick]
 *                           [--only SUBSTRING] [google-benchmark flags]
 * --only filters the report's workloads by name substring (their
 * relative timings are only meaningful within one process run).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fence/bypass_set.hh"
#include "harness/report.hh"
#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "prog/assembler.hh"
#include "sim/interval_stats.hh"
#include "sim/logging.hh"
#include "sys/system.hh"

using namespace asf;

namespace
{

// --- part 1: execution-mode host-performance report ---------------------

/** The three run-loop configurations the report compares. */
enum class Mode
{
    NoFastForward, ///< cycle-exact: every core ticks every cycle
    FastForward,   ///< idle-cycle skipping only (PR 2)
    DirectExec,    ///< fast-forward + block-batched direct execution
};

const char *
modeKey(Mode m)
{
    switch (m) {
      case Mode::NoFastForward: return "noFastForward";
      case Mode::FastForward: return "fastForward";
      case Mode::DirectExec: return "directExec";
    }
    return "?";
}

struct HostRun
{
    double seconds = 0;
    /** Process CPU time: the sim is single-threaded, so this is the
     *  same quantity as `seconds` minus scheduler/SMT noise. The
     *  observatory overhead ratio uses it; the throughput numbers keep
     *  wall-clock. */
    double cpuSeconds = 0;
    uint64_t simCycles = 0;
    uint64_t events = 0;
    uint64_t instrRetired = 0;
    uint64_t fastForwardedCycles = 0;
    uint64_t directExecutedCycles = 0;
    /** Interval samples taken (stored + dropped), 0 when off. */
    uint64_t samplesTaken = 0;
    /** Full stats dump, for the cross-mode identity check. */
    std::string statsJson;

    double cyclesPerSec() const
    {
        return seconds > 0 ? double(simCycles) / seconds : 0.0;
    }
    double eventsPerSec() const
    {
        return seconds > 0 ? double(events) / seconds : 0.0;
    }
};

/** FNV-1a 64 over the stats dump; the report carries the digest so
 *  tools/stats_diff.py check-perf can re-verify cross-mode identity
 *  without shipping the full dumps. */
std::string
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)h);
    return buf;
}

/** Each core streams stores through a never-revisited region — every
 *  one a ~200-cycle off-chip miss — draining each through a strong
 *  fence, then cold-loads from a second region. Nearly every cycle is
 *  a fence or miss stall with only a handful of in-flight events, so
 *  the clock can jump in large steps: the fast-forward best case, and
 *  the access pattern fence-heavy code (streaming producers behind
 *  release fences) actually exhibits. */
std::shared_ptr<const Program>
fenceHeavyProgram(int64_t iters)
{
    Assembler a("fence_heavy");
    // r1 = store-stream cursor, r2 = load-stream cursor (host-set).
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.addi(3, 3, 1);
    a.st(1, 0, 3);
    a.fence(FenceRole::Critical);
    a.ld(6, 2, 0);
    a.addi(1, 1, 4096);
    a.addi(2, 2, 4096);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return std::make_shared<const Program>(a.finish());
}

/** Dependent ALU chain with a same-line load/store: no idle cycles, so
 *  fast-forward never triggers. Control for the report. */
std::shared_ptr<const Program>
busySpinProgram(int64_t iters)
{
    Assembler a("busy_spin");
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.ld(2, 1, 0);
    a.addi(2, 2, 1);
    a.st(1, 0, 2);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return std::make_shared<const Program>(a.finish());
}

/** Alternating regimes inside one loop body: a 64-cycle compute block
 *  (direct execution's best case) followed by a cold-miss store drained
 *  through a strong fence and a cold-miss load (fast-forward's best
 *  case). Neither optimization alone covers the whole iteration. */
std::shared_ptr<const Program>
computeFenceMixProgram(int64_t iters)
{
    Assembler a("compute_fence_mix");
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.compute(64);
    a.addi(3, 3, 1);
    a.st(1, 0, 3);
    a.fence(FenceRole::Critical);
    a.ld(6, 2, 0);
    a.addi(1, 1, 4096);
    a.addi(2, 2, 4096);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return std::make_shared<const Program>(a.finish());
}

enum class Kernel
{
    FenceHeavy,
    BusySpin,
    ComputeFenceMix,
};

HostRun
timeWorkload(Kernel kernel, unsigned cores, Mode mode, int64_t iters,
             Tick stats_interval = 0, bool hotline = true,
             bool neutral_dump = false)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.design = FenceDesign::SPlus;
    cfg.fastForward = mode != Mode::NoFastForward;
    cfg.directExec = mode == Mode::DirectExec;
    cfg.statsInterval = stats_interval;
    cfg.hotLineTracking = hotline;
    System sys(cfg);
    auto prog = kernel == Kernel::FenceHeavy ? fenceHeavyProgram(iters)
                : kernel == Kernel::BusySpin ? busySpinProgram(iters)
                                             : computeFenceMixProgram(iters);
    for (unsigned i = 0; i < cores; i++) {
        sys.loadProgram(NodeId(i), prog);
        // Disjoint per-core streams; the 4 KiB stride stays inside
        // the same home-node residue class (homes rotate every 512 B),
        // so every access cold-misses to memory via the core's LOCAL
        // directory. All cores then have identical per-iteration
        // timing and stay phase-locked, the natural behaviour of a
        // bank-aligned streaming producer.
        sys.core(NodeId(i)).setReg(1, 0x1000000 + Addr(i) * 512);
        sys.core(NodeId(i)).setReg(2, 0x4000000 + Addr(i) * 512);
    }

    std::clock_t cpu_start = std::clock();
    auto start = std::chrono::steady_clock::now();
    auto result = sys.run(1'000'000'000);
    auto stop = std::chrono::steady_clock::now();
    std::clock_t cpu_stop = std::clock();
    if (result != System::RunResult::AllDone)
        fatal("microbench workload did not finish");

    HostRun r;
    r.seconds = std::chrono::duration<double>(stop - start).count();
    r.cpuSeconds = double(cpu_stop - cpu_start) / CLOCKS_PER_SEC;
    r.simCycles = sys.now();
    r.events = sys.eventQueue().executedEvents();
    r.instrRetired = sys.totalInstrRetired();
    r.fastForwardedCycles = sys.fastForwardedCycles();
    r.directExecutedCycles = sys.directExecutedCycles();
    if (const IntervalStats *is = sys.intervalStats())
        r.samplesTaken = is->size() + is->dropped();
    std::ostringstream ss;
    // neutral_dump excludes the timeline/hotLines blocks so the dump is
    // comparable between observatory-on and observatory-off runs.
    sys.dumpStatsJson(ss, /*include_profile=*/true,
                      /*include_check=*/true,
                      /*include_observatory=*/!neutral_dump);
    r.statsJson = ss.str();
    return r;
}

/**
 * Observatory overhead: the busy-spin kernel (the highest event rate
 * per simulated cycle, so sampling and hot-line bookkeeping have the
 * least useful work to hide behind) with the observatory fully off
 * versus interval sampling at ~10k intervals plus hot-line tracking.
 * Overhead is measured on process CPU time (best of `reps`; wall-clock
 * on a shared host swings tens of percent on runs this size, drowning
 * a single-digit effect) and the neutral stats dumps must be
 * byte-identical — observation only, enforced here too.
 */
struct ObsOverhead
{
    Tick intervalCycles = 0;
    uint64_t samplesTaken = 0;
    double secondsOff = 0;
    double secondsOn = 0;
    bool identical = false;

    double overheadPct() const
    {
        return secondsOff > 0
                   ? (secondsOn / secondsOff - 1.0) * 100.0 : 0.0;
    }
};

ObsOverhead
measureObservatory(int64_t iters, int reps)
{
    constexpr unsigned cores = 8;
    // Fast-forward mode: the busy spin never idles, so the run loop
    // crosses every interval boundary cycle-by-cycle and actually
    // takes ~10k samples. (Direct execution would batch across nearly
    // all boundaries and merge them into a handful of samples, hiding
    // the per-sample cost this measurement exists to bound.)
    constexpr Mode mode = Mode::FastForward;
    // Size the interval off a probe run so the on-run takes ~10k
    // samples regardless of --quick scaling.
    HostRun probe = timeWorkload(Kernel::BusySpin, cores, mode, iters,
                                 /*stats_interval=*/0, /*hotline=*/false,
                                 /*neutral_dump=*/true);
    ObsOverhead o;
    o.intervalCycles = std::max<Tick>(1, probe.simCycles / 10'000);
    o.identical = true;
    HostRun on_last;
    for (int i = 0; i < reps; i++) {
        HostRun off = timeWorkload(Kernel::BusySpin, cores, mode,
                                   iters, 0, false, true);
        HostRun on = timeWorkload(Kernel::BusySpin, cores, mode, iters,
                                  o.intervalCycles, true, true);
        o.identical = o.identical && on.statsJson == off.statsJson;
        o.secondsOff = i ? std::min(o.secondsOff, off.cpuSeconds)
                         : off.cpuSeconds;
        o.secondsOn = i ? std::min(o.secondsOn, on.cpuSeconds)
                        : on.cpuSeconds;
        on_last = on;
    }
    o.samplesTaken = on_last.samplesTaken;
    return o;
}

void
emitRun(harness::JsonWriter &w, const char *key, const HostRun &r)
{
    w.key(key).beginObject();
    w.field("hostSeconds", r.seconds);
    w.field("simCycles", r.simCycles);
    w.field("simCyclesPerSec", r.cyclesPerSec());
    w.field("eventsExecuted", r.events);
    w.field("eventsPerSec", r.eventsPerSec());
    w.field("instrRetired", r.instrRetired);
    w.field("fastForwardedCycles", r.fastForwardedCycles);
    w.field("directExecutedCycles", r.directExecutedCycles);
    w.field("statsDigest", fnv1a(r.statsJson));
    w.endObject();
}

void
writeReport(const std::string &path, bool quick,
            const std::string &only)
{
    struct Entry
    {
        const char *name;
        Kernel kernel;
        unsigned cores;
        int64_t iters;
    };
    // ~1M simulated cycles each: long enough that host timing is
    // dominated by the simulation loop, short enough for CI. --quick
    // divides the iteration counts by 4 (the perf smoke gate's 2x
    // speedup threshold leaves ample headroom for the extra noise).
    const Entry entries[] = {
        {"fence_heavy_8core", Kernel::FenceHeavy, 8, 2000},
        {"busy_spin_8core", Kernel::BusySpin, 8, 100000},
        {"busy_spin_32core", Kernel::BusySpin, 32, 20000},
        {"compute_fence_mix_8core", Kernel::ComputeFenceMix, 8, 3000},
    };
    const Mode modes[] = {Mode::NoFastForward, Mode::FastForward,
                          Mode::DirectExec};

    std::ofstream f(path, std::ios::trunc);
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    harness::JsonWriter w(f);
    w.beginObject();
    w.field("schemaVersion", uint64_t(3));
    w.field("design", "S+");
    w.field("quick", quick);
    w.key("workloads").beginArray();
    for (const Entry &e : entries) {
        if (!only.empty() && std::string(e.name).find(only) ==
                                 std::string::npos)
            continue;
        int64_t iters = quick ? e.iters / 4 : e.iters;
        // Warm-up run absorbs first-touch host effects (page faults,
        // allocator growth), then time all three modes.
        timeWorkload(e.kernel, e.cores, Mode::NoFastForward, iters / 4);
        HostRun runs[3];
        for (int m = 0; m < 3; m++)
            runs[m] = timeWorkload(e.kernel, e.cores, modes[m], iters);
        const HostRun &base = runs[0];
        // The identity invariant, over the FULL stats dump: any
        // divergence between execution modes is a simulator bug, not a
        // benchmarking artifact — refuse to write a report.
        for (int m = 1; m < 3; m++)
            if (runs[m].statsJson != base.statsJson)
                fatal("%s: %s changed simulated results "
                      "(cycles %llu vs %llu)",
                      e.name, modeKey(modes[m]),
                      (unsigned long long)runs[m].simCycles,
                      (unsigned long long)base.simCycles);
        double speedup_ff = runs[1].seconds > 0
                                ? base.seconds / runs[1].seconds : 0.0;
        double speedup_de = runs[2].seconds > 0
                                ? base.seconds / runs[2].seconds : 0.0;
        w.beginObject();
        w.field("name", e.name);
        w.field("cores", e.cores);
        for (int m = 0; m < 3; m++)
            emitRun(w, modeKey(modes[m]), runs[m]);
        w.field("speedupFastForward", speedup_ff);
        w.field("speedupDirectExec", speedup_de);
        w.field("statsIdentical", true);
        w.endObject();
        std::printf("%-24s %9.0f cyc/s exact, %9.0f ff (%.2fx), "
                    "%9.0f direct (%.2fx; %llu/%llu cycles batched)\n",
                    e.name, base.cyclesPerSec(),
                    runs[1].cyclesPerSec(), speedup_ff,
                    runs[2].cyclesPerSec(), speedup_de,
                    (unsigned long long)runs[2].directExecutedCycles,
                    (unsigned long long)runs[2].simCycles);
    }
    w.endArray();

    // Full-length runs even under --quick: the measured effect is a
    // few percent, so the ~45ms quick-sized runs would be dominated by
    // host noise (best-of-N helps the floor, not a noisy numerator).
    ObsOverhead obs = measureObservatory(100'000, 5);
    if (!obs.identical)
        fatal("observatory changed simulated results");
    w.key("observatory").beginObject();
    w.field("workload", "busy_spin_8core");
    w.field("intervalCycles", uint64_t(obs.intervalCycles));
    w.field("samplesTaken", obs.samplesTaken);
    w.field("hostSecondsOff", obs.secondsOff);
    w.field("hostSecondsOn", obs.secondsOn);
    w.field("overheadPct", obs.overheadPct());
    w.field("statsIdentical", obs.identical);
    w.endObject();
    std::printf("observatory overhead: %.1f%% host CPU "
                "(%llu samples every %llu cycles, stats identical)\n",
                obs.overheadPct(),
                (unsigned long long)obs.samplesTaken,
                (unsigned long long)obs.intervalCycles);

    w.endObject();
    f << '\n';
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

// --- part 2: kernel microbenchmarks -------------------------------------

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        uint64_t fired = 0;
        for (int i = 0; i < 1000; i++)
            eq.schedule(Tick(i % 97), [&] { fired++; });
        eq.runUntil(100);
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray c(32 * 1024, 4);
    bool valid;
    for (Addr a = 0; a < 32 * 1024; a += 32) {
        CacheLine &slot = c.victimFor(a, valid);
        c.install(slot, a, MesiState::Shared, LineData{});
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(probe));
        probe = (probe + 32) & (32 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheArrayLookup);

static void
BM_BypassSetProbe(benchmark::State &state)
{
    BypassSet bs(32);
    for (int i = 0; i < 8; i++)
        bs.insert(0x1000 + Addr(i) * 32);
    Addr probe = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bs.match(probe, 0));
        probe += 32;
    }
}
BENCHMARK(BM_BypassSetProbe);

static void
BM_MeshRouting(benchmark::State &state)
{
    EventQueue eq;
    Mesh mesh(eq, 16);
    uint64_t delivered = 0;
    for (unsigned n = 0; n < 16; n++)
        mesh.setSink(NodeId(n), [&](const Message &) { delivered++; });
    NodeId src = 0;
    for (auto _ : state) {
        Message m;
        m.src = src;
        m.dst = NodeId((src + 7) % 16);
        mesh.send(std::move(m));
        src = NodeId((src + 1) % 16);
        eq.runUntil(eq.now() + 1);
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshRouting);

static void
BM_EndToEndSimCyclesPerSecond(benchmark::State &state)
{
    // Simulated-cycle throughput of a busy 8-core system.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numCores = 8;
        System sys(cfg);
        Assembler a("spin");
        // Register 1 (the data pointer) is set per-core by the host.
        a.bind("loop");
        a.ld(2, 1, 0);
        a.addi(2, 2, 1);
        a.st(1, 0, 2);
        a.jmp("loop");
        auto prog = std::make_shared<const Program>(a.finish());
        for (int i = 0; i < 8; i++) {
            sys.loadProgram(NodeId(i), prog);
            // Separate lines per core: no contention, pure throughput.
            sys.core(NodeId(i)).setReg(1, 0x1000 + Addr(i) * 0x1000);
        }
        sys.run(10'000);
        benchmark::DoNotOptimize(sys.now());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10'000 * 8);
}
BENCHMARK(BM_EndToEndSimCyclesPerSecond);

int
main(int argc, char **argv)
{
    std::string out = "BENCH_simcore.json";
    std::string only;
    bool json_only = false;
    bool quick = false;
    // Strip our flags so google-benchmark does not reject them.
    int kept = 1;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out = argv[++i];
        else if (!std::strncmp(argv[i], "--out=", 6))
            out = argv[i] + 6;
        else if (!std::strcmp(argv[i], "--only") && i + 1 < argc)
            only = argv[++i];
        else if (!std::strncmp(argv[i], "--only=", 7))
            only = argv[i] + 7;
        else if (!std::strcmp(argv[i], "--json-only"))
            json_only = true;
        else if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    setVerbose(false);
    writeReport(out, quick, only);
    if (json_only)
        return 0;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
