/**
 * @file
 * Ablation: TSO vs RC (paper Section 2.1). RC merges multiple writes
 * concurrently, so a conventional fence waits far less - which is
 * exactly the headroom the paper says TSO's one-at-a-time drain leaves
 * for weak fences to reclaim. Weak fences under RC fall back to strong
 * (Section 5.2 future work), so the comparison is S+ against S+.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

namespace
{

ExperimentResult
runUstmModel(const TlrwBench &bench, MemoryModel model,
             unsigned store_units, Tick cycles)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.design = FenceDesign::SPlus;
    cfg.memoryModel = model;
    cfg.storeUnits = store_units;
    cfg.fastForward = fastForwardEnabled();
    System sys(cfg);
    setupTlrwWorkload(sys, bench, 0);
    sys.run(cycles);
    ExperimentResult r;
    r.workload = bench.name;
    r.cycles = sys.now();
    harvestStats(sys, r);
    return r;
}

ExperimentResult
runCilkModel(CilkApp app, MemoryModel model, unsigned store_units,
             bool quick)
{
    if (quick) {
        app.spawnDepth = std::min(app.spawnDepth, 3u);
        app.initialTasks = std::min(app.initialTasks, 2u);
    }
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.design = FenceDesign::SPlus;
    cfg.memoryModel = model;
    cfg.storeUnits = store_units;
    cfg.fastForward = fastForwardEnabled();
    System sys(cfg);
    setupCilkApp(sys, app);
    sys.run(30'000'000);
    ExperimentResult r;
    r.workload = app.name;
    r.cycles = sys.now();
    harvestStats(sys, r);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 80'000 : 250'000;

    Table table({"bench", "model", "storeUnits", "txnPerKcycle",
                 "fenceStallPct", "vsTso"});

    std::vector<SweepJob> sweep;
    for (const char *name : {"Hash", "List", "ReadWriteN"}) {
        const TlrwBench &bench = ustmBenchByName(name);
        sweep.push_back([&bench, run_cycles] {
            return runUstmModel(bench, MemoryModel::TSO, 1, run_cycles);
        });
        for (unsigned units : {2u, 3u})
            sweep.push_back([&bench, units, run_cycles] {
                return runUstmModel(bench, MemoryModel::RC, units,
                                    run_cycles);
            });
    }
    // Work-stealing tasks write multi-store result bursts: the place
    // where RC's parallel drain genuinely shortens the take() fence.
    for (const char *name : {"bucket", "heat", "plu"}) {
        const CilkApp &app = cilkAppByName(name);
        bool quick = opt.quick;
        sweep.push_back([app, quick] {
            return runCilkModel(app, MemoryModel::TSO, 1, quick);
        });
        for (unsigned units : {2u, 3u})
            sweep.push_back([app, units, quick] {
                return runCilkModel(app, MemoryModel::RC, units, quick);
            });
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (const char *name : {"Hash", "List", "ReadWriteN"}) {
        double tso_tp = 0;
        {
            const ExperimentResult &r = results[ri++];
            tso_tp = r.throughputTxnPerKcycle();
            table.addRow({name, "TSO", "1", fmtDouble(tso_tp),
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1),
                          "1.00"});
        }
        for (unsigned units : {2u, 3u}) {
            const ExperimentResult &r = results[ri++];
            double tp = r.throughputTxnPerKcycle();
            table.addRow({name, "RC", std::to_string(units),
                          fmtDouble(tp),
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1),
                          fmtDouble(tso_tp > 0 ? tp / tso_tp : 0.0)});
        }
    }

    for (const char *name : {"bucket", "heat", "plu"}) {
        double tso_time = 0;
        {
            const ExperimentResult &r = results[ri++];
            tso_time = double(r.cycles);
            table.addRow({name, "TSO", "1", "-",
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1),
                          "1.00"});
        }
        for (unsigned units : {2u, 3u}) {
            const ExperimentResult &r = results[ri++];
            table.addRow({name, "RC", std::to_string(units), "-",
                          fmtDouble(100.0 * r.breakdown.fenceFrac(), 1),
                          fmtDouble(tso_time / double(r.cycles))});
        }
    }

    emit(table, opt,
         "Ablation: memory model - RC's parallel write drain vs TSO "
         "(conventional fences; vsTso is speedup)");
    return 0;
}
