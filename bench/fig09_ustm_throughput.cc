/**
 * @file
 * Figure 9 reproduction: transactional throughput of the ustm
 * microbenchmarks (committed transactions per second), normalized to S+.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 100'000 : 300'000;

    Table table({"bench", "design", "txnPerKcycle", "normThroughput"});

    std::vector<SweepJob> sweep;
    for (const TlrwBench &bench : ustmBenches())
        for (FenceDesign d : figureDesigns())
            sweep.push_back([&bench, d, run_cycles] {
                return runUstmExperiment(bench, d, 8, run_cycles);
            });
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    double sum_norm[4] = {0, 0, 0, 0};
    unsigned nbench = 0;
    size_t ri = 0;
    for (const TlrwBench &bench : ustmBenches()) {
        double splus_tp = 0;
        unsigned di = 0;
        for (FenceDesign d : figureDesigns()) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            double tp = r.throughputTxnPerKcycle();
            if (d == FenceDesign::SPlus)
                splus_tp = tp;
            double norm = splus_tp > 0 ? tp / splus_tp : 0.0;
            table.addRow({bench.name, fenceDesignName(d), fmtDouble(tp),
                          fmtDouble(norm)});
            sum_norm[di] += norm;
            di++;
        }
        nbench++;
    }

    unsigned di = 0;
    for (FenceDesign d : figureDesigns()) {
        table.addRow({"[ustm-AVG]", fenceDesignName(d), "-",
                      fmtDouble(sum_norm[di] / nbench)});
        di++;
    }

    emit(table, opt,
         "Figure 9: ustm transactional throughput (normalized to S+)");
    return 0;
}
