/**
 * @file
 * Ablation: bounced-write retry backoff. Aggressive retries add network
 * traffic (Table 4's overhead column); lazy retries stretch fence
 * groups. Sweeps the linear-backoff base.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 80'000 : 250'000;

    Table table({"backoffBase", "bench", "txnPerKcycle", "retries/wr",
                 "trafficIncr%"});

    std::vector<SweepJob> sweep;
    for (Tick base : {4u, 8u, 16u, 32u, 64u}) {
        for (const char *name : {"Counter", "Hash"}) {
            sweep.push_back([base, name, run_cycles] {
                const TlrwBench &bench = ustmBenchByName(name);
                SystemConfig cfg;
                cfg.numCores = 8;
                cfg.design = FenceDesign::WSPlus;
                cfg.retryBackoffBase = base;
                cfg.fastForward = harness::fastForwardEnabled();
                System sys(cfg);
                setupTlrwWorkload(sys, bench, 0);
                sys.run(run_cycles);
                ExperimentResult r;
                r.cycles = sys.now();
                harvestStats(sys, r);
                return r;
            });
        }
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (Tick base : {4u, 8u, 16u, 32u, 64u}) {
        for (const char *name : {"Counter", "Hash"}) {
            const ExperimentResult &r = results[ri++];
            table.addRow({std::to_string(base), name,
                          fmtDouble(r.throughputTxnPerKcycle()),
                          fmtDouble(r.retriesPerBouncedWrite, 2),
                          fmtDouble(r.trafficOverheadPct(), 3)});
        }
    }

    emit(table, opt, "Ablation: bounce retry backoff under WS+");
    return 0;
}
