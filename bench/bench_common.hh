/**
 * @file
 * Shared plumbing for the figure/table bench binaries: the design list
 * the paper plots, normalized-bar formatting, and CLI handling
 * (--csv for machine-readable output, --quick for a reduced sweep).
 */

#ifndef ASF_BENCH_COMMON_HH
#define ASF_BENCH_COMMON_HH

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/logging.hh"

namespace asf::bench
{

/** The designs the paper's figures plot, in bar order. */
inline const std::vector<FenceDesign> &
figureDesigns()
{
    static const std::vector<FenceDesign> designs = {
        FenceDesign::SPlus, FenceDesign::WSPlus, FenceDesign::WPlus,
        FenceDesign::Wee};
    return designs;
}

struct BenchOptions
{
    bool csv = false;
    bool quick = false;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--csv"))
            opt.csv = true;
        else if (!std::strcmp(argv[i], "--quick"))
            opt.quick = true;
        else
            fatal("unknown option '%s' (supported: --csv --quick)",
                  argv[i]);
    }
    setVerbose(false);
    return opt;
}

inline void
emit(const harness::Table &table, const BenchOptions &opt,
     const std::string &title)
{
    if (opt.csv) {
        table.printCsv(std::cout);
    } else {
        std::cout << "== " << title << " ==\n";
        table.print(std::cout);
        std::cout << "\n";
    }
}

inline void
requireValid(const harness::ExperimentResult &r)
{
    if (!r.valid)
        fatal("%s under %s failed validation: %s", r.workload.c_str(),
              fenceDesignName(r.design), r.validationError.c_str());
}

} // namespace asf::bench

#endif // ASF_BENCH_COMMON_HH
