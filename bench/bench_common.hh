/**
 * @file
 * Shared plumbing for the figure/table bench binaries: the design list
 * the paper plots, normalized-bar formatting, and CLI handling
 * (--csv for machine-readable output, --quick for a reduced sweep,
 * --jobs N for parallel host execution of independent configurations).
 */

#ifndef ASF_BENCH_COMMON_HH
#define ASF_BENCH_COMMON_HH

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"

namespace asf::bench
{

/** The designs the paper's figures plot, in bar order. */
inline const std::vector<FenceDesign> &
figureDesigns()
{
    static const std::vector<FenceDesign> designs = {
        FenceDesign::SPlus, FenceDesign::WSPlus, FenceDesign::WPlus,
        FenceDesign::Wee};
    return designs;
}

struct BenchOptions
{
    bool csv = false;
    bool quick = false;
    unsigned jobs = 1;     ///< host worker threads for the config sweep
    std::string statsJson; ///< --stats-json path ("" = off)
    std::string trace;     ///< --trace path ("" = off)
    std::string fenceProfile; ///< --fence-profile JSONL path ("" = off)
    /** Livelock watchdog window; on by default in the benches so a
     *  livelocked configuration aborts with a diagnostic snapshot
     *  instead of burning the full cycle budget. 0 disables. */
    Tick watchdogCycles = 1'000'000;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; i++) {
        // "--flag=VALUE" form; returns nullptr when argv[i] is not it.
        auto eq_form = [&](const char *flag) -> const char * {
            size_t n = std::strlen(flag);
            if (!std::strncmp(argv[i], flag, n) && argv[i][n] == '=')
                return argv[i] + n + 1;
            return nullptr;
        };
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--csv"))
            opt.csv = true;
        else if (!std::strcmp(argv[i], "--quick"))
            opt.quick = true;
        else if (!std::strcmp(argv[i], "--jobs"))
            opt.jobs = unsigned(std::atoi(need("--jobs")));
        else if (const char *v = eq_form("--jobs"))
            opt.jobs = unsigned(std::atoi(v));
        else if (!std::strcmp(argv[i], "--no-fast-forward"))
            harness::setFastForwardEnabled(false);
        else if (!std::strcmp(argv[i], "--no-direct-exec"))
            harness::setDirectExecEnabled(false);
        else if (!std::strcmp(argv[i], "--stats-json"))
            opt.statsJson = need("--stats-json");
        else if (const char *v = eq_form("--stats-json"))
            opt.statsJson = v;
        else if (!std::strcmp(argv[i], "--trace"))
            opt.trace = need("--trace");
        else if (const char *v = eq_form("--trace"))
            opt.trace = v;
        else if (!std::strcmp(argv[i], "--fence-profile"))
            opt.fenceProfile = need("--fence-profile");
        else if (const char *v = eq_form("--fence-profile"))
            opt.fenceProfile = v;
        else if (!std::strcmp(argv[i], "--watchdog-cycles"))
            opt.watchdogCycles = Tick(std::atoll(need("--watchdog-cycles")));
        else if (const char *v = eq_form("--watchdog-cycles"))
            opt.watchdogCycles = Tick(std::atoll(v));
        else
            fatal("unknown option '%s' (supported: --csv --quick "
                  "--jobs N --no-fast-forward --no-direct-exec --stats-json PATH "
                  "--trace PATH --fence-profile PATH "
                  "--watchdog-cycles N)",
                  argv[i]);
    }
    if (!opt.statsJson.empty())
        harness::setStatsJsonPath(opt.statsJson);
    if (!opt.trace.empty())
        harness::setTracePath(opt.trace);
    if (!opt.fenceProfile.empty())
        harness::setFenceProfilePath(opt.fenceProfile);
    harness::setWatchdogCyclesDefault(opt.watchdogCycles);
    setVerbose(false);
    return opt;
}

inline void
emit(const harness::Table &table, const BenchOptions &opt,
     const std::string &title)
{
    if (opt.csv) {
        table.printCsv(std::cout);
    } else {
        std::cout << "== " << title << " ==\n";
        table.print(std::cout);
        std::cout << "\n";
    }
}

inline void
requireValid(const harness::ExperimentResult &r)
{
    if (!r.valid)
        fatal("%s under %s failed validation: %s", r.workload.c_str(),
              fenceDesignName(r.design), r.validationError.c_str());
}

} // namespace asf::bench

#endif // ASF_BENCH_COMMON_HH
