/**
 * @file
 * Figure 11 reproduction: normalized execution time of the STAMP-like
 * applications under S+, WS+, W+, and Wee.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);

    Table table({"app", "design", "normTime", "busy", "otherStall",
                 "fenceStall", "fenceStallPct"});

    std::vector<SweepJob> sweep;
    for (const StampApp &app_ref : stampApps()) {
        StampApp app = app_ref;
        if (opt.quick)
            app.txnsPerThread = std::max<uint64_t>(app.txnsPerThread / 4, 8);
        for (FenceDesign d : figureDesigns())
            sweep.push_back(
                [app, d] { return runStampExperiment(app, d, 8); });
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    double sum_norm[4] = {0, 0, 0, 0};
    double sum_fencepct[4] = {0, 0, 0, 0};
    unsigned napps = 0;
    size_t ri = 0;
    for (const StampApp &app : stampApps()) {
        double splus_cycles = 0;
        unsigned di = 0;
        for (FenceDesign d : figureDesigns()) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            if (d == FenceDesign::SPlus)
                splus_cycles = double(r.cycles);
            double norm = double(r.cycles) / splus_cycles;
            double active = double(r.breakdown.active());
            table.addRow(
                {app.bench.name, fenceDesignName(d), fmtDouble(norm),
                 fmtDouble(norm * double(r.breakdown.busy) / active),
                 fmtDouble(norm * double(r.breakdown.otherStall) / active),
                 fmtDouble(norm * double(r.breakdown.fenceStall) / active),
                 fmtDouble(100.0 * r.breakdown.fenceFrac(), 1)});
            sum_norm[di] += norm;
            sum_fencepct[di] += r.breakdown.fenceFrac();
            di++;
        }
        napps++;
    }

    unsigned di = 0;
    for (FenceDesign d : figureDesigns()) {
        table.addRow({"[STAMP-AVG]", fenceDesignName(d),
                      fmtDouble(sum_norm[di] / napps), "-", "-", "-",
                      fmtDouble(100.0 * sum_fencepct[di] / napps, 1)});
        di++;
    }

    emit(table, opt,
         "Figure 11: STAMP execution time (normalized to S+)");
    return 0;
}
