/**
 * @file
 * Figure 10 reproduction: per-transaction breakdown of processor cycles
 * for the ustm microbenchmarks (Busy / Other Stall / Fence Stall),
 * normalized to the S+ per-transaction cycle count.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    Tick run_cycles = opt.quick ? 100'000 : 300'000;

    // Decomposed stall columns (normalized like busy): held = fence
    // holds (strong + BS-full), wfwd = load wait-forward, wee = GRT
    // wait + Remote-PS holds, bnc = bounce retries + Wee serialization,
    // rcv = W+ recovery, l1/sqsh/wbf = L1 miss / squash refetch /
    // WB-full, rmw = RMW drain + NoC queueing.
    Table table({"bench", "design", "cyclesPerTxn", "normCycles", "busy",
                 "otherStall", "fenceStall", "fenceStallPct", "held",
                 "wfwd", "wee", "bnc", "rcv", "l1", "sqsh", "wbf",
                 "rmw"});

    std::vector<SweepJob> sweep;
    for (const TlrwBench &bench : ustmBenches())
        for (FenceDesign d : figureDesigns())
            sweep.push_back([&bench, d, run_cycles] {
                return runUstmExperiment(bench, d, 8, run_cycles);
            });
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    double sum_norm[4] = {0, 0, 0, 0};
    double sum_fencepct[4] = {0, 0, 0, 0};
    unsigned nbench = 0;
    size_t ri = 0;
    for (const TlrwBench &bench : ustmBenches()) {
        double splus_cpt = 0;
        unsigned di = 0;
        for (FenceDesign d : figureDesigns()) {
            const ExperimentResult &r = results[ri++];
            requireValid(r);
            double cpt = r.commits
                             ? double(r.breakdown.active()) /
                                   double(r.commits)
                             : 0.0;
            if (d == FenceDesign::SPlus)
                splus_cpt = cpt;
            double norm = splus_cpt > 0 ? cpt / splus_cpt : 0.0;
            double active = double(r.breakdown.active());
            const CycleBreakdown &b = r.breakdown;
            auto scaled = [&](uint64_t cycles) {
                return fmtDouble(norm * double(cycles) / active, 3);
            };
            table.addRow(
                {bench.name, fenceDesignName(d), fmtDouble(cpt, 0),
                 fmtDouble(norm),
                 fmtDouble(norm * double(b.busy) / active),
                 fmtDouble(norm * double(b.otherStall) / active),
                 fmtDouble(norm * double(b.fenceStall) / active),
                 fmtDouble(100.0 * b.fenceFrac(), 1),
                 scaled(b.bucket(StallBucket::FenceHeldStrong) +
                        b.bucket(StallBucket::FenceHeldBsFull)),
                 scaled(b.bucket(StallBucket::FenceWaitForward)),
                 scaled(b.bucket(StallBucket::FenceGrtWait) +
                        b.bucket(StallBucket::FenceRemotePs)),
                 scaled(b.bucket(StallBucket::FenceBounceRetry) +
                        b.bucket(StallBucket::FenceSerialize)),
                 scaled(b.bucket(StallBucket::FenceRecovering)),
                 scaled(b.bucket(StallBucket::OtherL1Miss)),
                 scaled(b.bucket(StallBucket::OtherSquashRefetch)),
                 scaled(b.bucket(StallBucket::OtherWbFull)),
                 scaled(b.bucket(StallBucket::OtherRmwDrain) +
                        b.bucket(StallBucket::OtherNocQueue))});
            sum_norm[di] += norm;
            sum_fencepct[di] += r.breakdown.fenceFrac();
            di++;
        }
        nbench++;
    }

    unsigned di = 0;
    for (FenceDesign d : figureDesigns()) {
        table.addRow({"[ustm-AVG]", fenceDesignName(d), "-",
                      fmtDouble(sum_norm[di] / nbench), "-", "-", "-",
                      fmtDouble(100.0 * sum_fencepct[di] / nbench, 1),
                      "-", "-", "-", "-", "-", "-", "-", "-", "-"});
        di++;
    }

    emit(table, opt,
         "Figure 10: ustm per-transaction cycle breakdown "
         "(normalized to S+)");
    return 0;
}
