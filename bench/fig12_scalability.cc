/**
 * @file
 * Figure 12 reproduction: scalability of the fence-stall reduction. For
 * each workload group and design, the ratio of fence-stall time to the
 * S+ fence-stall time at 4, 8, 16, and 32 cores. Flat bars = scalable.
 */

#include "bench_common.hh"

using namespace asf;
using namespace asf::bench;
using namespace asf::harness;
using namespace asf::workloads;

namespace
{

const std::vector<FenceDesign> &
ratioDesigns()
{
    static const std::vector<FenceDesign> d = {
        FenceDesign::WSPlus, FenceDesign::WPlus, FenceDesign::Wee};
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv);
    std::vector<unsigned> cores =
        opt.quick ? std::vector<unsigned>{4, 8}
                  : std::vector<unsigned>{4, 8, 16, 32};

    Table table({"group", "design", "cores", "fenceStallRatioPct"});

    // One representative per group keeps the sweep tractable; the
    // full-figure per-app data comes from fig08/fig10/fig11.
    CilkApp cilk = cilkAppByName("heat");
    TlrwBench ustm = ustmBenchByName("Hash");
    StampApp stamp = stampAppByName("intruder");
    if (opt.quick) {
        cilk.spawnDepth = 2;
        stamp.txnsPerThread = 30;
    }

    // Every (group, design, cores) run is independent; jobs are pushed
    // in the same order the rows are consumed below.
    std::vector<FenceDesign> sweep_designs = {FenceDesign::SPlus};
    for (FenceDesign d : ratioDesigns())
        sweep_designs.push_back(d);

    std::vector<SweepJob> sweep;
    for (unsigned n : cores) {
        for (FenceDesign d : sweep_designs)
            sweep.push_back(
                [cilk, d, n] { return runCilkExperiment(cilk, d, n); });
        for (FenceDesign d : sweep_designs)
            sweep.push_back([ustm, d, n] {
                return runUstmExperiment(ustm, d, n, 150'000);
            });
        for (FenceDesign d : sweep_designs)
            sweep.push_back(
                [stamp, d, n] { return runStampExperiment(stamp, d, n); });
    }
    std::vector<ExperimentResult> results = runSweep(sweep, opt.jobs);

    size_t ri = 0;
    for (unsigned n : cores) {
        std::map<std::string, double> splus_stall;
        auto record = [&](const std::string &group, FenceDesign d,
                          const ExperimentResult &r) {
            requireValid(r);
            double stall = double(r.breakdown.fenceStall);
            if (d == FenceDesign::SPlus) {
                splus_stall[group] = stall;
                return;
            }
            double ratio = splus_stall[group] > 0
                               ? stall / splus_stall[group]
                               : 0.0;
            table.addRow({group, fenceDesignName(d), std::to_string(n),
                          fmtDouble(100.0 * ratio, 1)});
        };

        for (const char *group : {"CilkApps", "ustm", "STAMP"})
            for (FenceDesign d : sweep_designs)
                record(group, d, results[ri++]);
    }

    emit(table, opt,
         "Figure 12: fence-stall time relative to S+ across core counts");
    return 0;
}
