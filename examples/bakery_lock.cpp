/**
 * @file
 * Bakery-lock example (paper Section 4.3): N threads contend on
 * Lamport's bakery lock. With WS+ one thread is given priority (its
 * fences weak); with W+ every thread runs weak fences and deadlock
 * recovery sorts out the collisions.
 *
 *   $ ./bakery_lock [threads] [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "runtime/bakery.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "sys/system.hh"

using namespace asf;
using namespace asf::runtime;

int
main(int argc, char **argv)
{
    setVerbose(false);
    unsigned threads = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
    unsigned iters = argc > 2 ? unsigned(std::atoi(argv[2])) : 10;

    std::printf("Bakery lock, %u threads x %u iterations "
                "(thread 0 has priority under WS+/SW+):\n\n",
                threads, iters);
    std::printf("%-5s %12s %12s %10s %10s\n", "design", "cycles",
                "counter", "recov", "fence%");

    for (FenceDesign d : allFenceDesigns) {
        SystemConfig cfg;
        cfg.numCores = threads;
        cfg.design = d;
        System sys(cfg);
        GuestLayout layout;
        BakeryLayout lay = allocBakery(layout, threads);
        for (unsigned i = 0; i < threads; i++) {
            sys.loadProgram(NodeId(i),
                            std::make_shared<const Program>(
                                buildBakeryProgram(lay, i, iters, 50, 0)));
            sys.core(NodeId(i)).setReg(regs::tid, i);
            sys.core(NodeId(i)).setReg(regs::nthreads, threads);
        }
        if (sys.run(100'000'000) != System::RunResult::AllDone) {
            std::printf("%-5s hung!\n", fenceDesignName(d));
            continue;
        }
        uint64_t counter = sys.debugReadWord(lay.counterAddr);
        uint64_t recov = 0;
        for (unsigned i = 0; i < threads; i++)
            recov += sys.core(NodeId(i)).stats().get("wPlusRecoveries");
        CycleBreakdown b = sys.breakdown();
        std::printf("%-5s %12llu %12llu %10llu %9.1f%%%s\n",
                    fenceDesignName(d), (unsigned long long)sys.now(),
                    (unsigned long long)counter,
                    (unsigned long long)recov, 100.0 * b.fenceFrac(),
                    counter == uint64_t(threads) * iters
                        ? ""
                        : "  MUTUAL EXCLUSION BROKEN!");
    }
    return 0;
}
