/**
 * @file
 * Sequential-consistency-violation demo. A naive flag lock
 * (st my_flag = 1; r = ld other_flag; if r == 0 enter) is run by two
 * threads with warmed caches:
 *
 *  - without a fence, TSO's store->load reordering lets both threads
 *    read the other's flag as 0 while both flag stores sit in the write
 *    buffers: both enter the "critical section" and an increment is
 *    deterministically lost (the Figure 1b cycle of the paper);
 *  - with any of the fence designs, at least one thread observes the
 *    other and stays out.
 *
 *   $ ./scv_demo
 */

#include <cstdio>

#include "prog/assembler.hh"
#include "runtime/dekker.hh"
#include "sim/logging.hh"
#include "sys/system.hh"

using namespace asf;
using namespace asf::runtime;

namespace
{

Program
lockAttempt(const DekkerLayout &lay, unsigned tid, bool fenced)
{
    Addr my_flag = tid == 0 ? lay.flag0 : lay.flag1;
    Addr other_flag = tid == 0 ? lay.flag1 : lay.flag0;
    Assembler a("attempt");
    a.li(1, int64_t(my_flag));
    a.li(2, int64_t(other_flag));
    a.li(3, int64_t(lay.counterAddr));
    a.ld(4, 2, 0); // warm the flag we will poll
    a.ld(4, 3, 0); // warm the counter
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4); // my_flag = 1  (sits in the write buffer)
    if (fenced)
        a.fence(tid == 0 ? FenceRole::Critical : FenceRole::Noncritical);
    a.ld(5, 2, 0); // r = other_flag
    a.li(6, 0);
    a.bne(5, 6, "out");
    a.ld(7, 3, 0); // "critical section": counter++
    a.addi(7, 7, 1);
    a.st(3, 0, 7);
    a.bind("out");
    a.halt();
    return a.finish();
}

void
run(FenceDesign design, bool fenced)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.design = design;
    System sys(cfg);
    GuestLayout layout;
    DekkerLayout lay = allocDekker(layout);
    sys.loadProgram(0, std::make_shared<const Program>(
                           lockAttempt(lay, 0, fenced)));
    sys.loadProgram(1, std::make_shared<const Program>(
                           lockAttempt(lay, 1, fenced)));
    if (sys.run(1'000'000) != System::RunResult::AllDone) {
        std::printf("  run hung!\n");
        return;
    }
    uint64_t flag0 = sys.debugReadWord(lay.flag0);
    uint64_t flag1 = sys.debugReadWord(lay.flag1);
    uint64_t counter = sys.debugReadWord(lay.counterAddr);
    unsigned entered = unsigned(flag0 + flag1); // both set their flag
    (void)entered;
    std::printf("  %-8s counter=%llu   %s\n",
                fenced ? fenceDesignName(design) : "unfenced",
                (unsigned long long)counter,
                !fenced && counter == 1
                    ? "<- both entered, one increment LOST (SCV)"
                    : "consistent");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Naive flag lock, one aligned attempt per thread:\n\n");
    run(FenceDesign::SPlus, false);
    for (FenceDesign d : allFenceDesigns)
        run(d, true);
    std::printf("\nThe unfenced run exhibits the store->load reorder "
                "cycle of Figure 1b:\nboth flag stores are buffered while "
                "both flag loads complete early.\n");
    return 0;
}
