/**
 * @file
 * Work-stealing example (paper Section 4.1): run a Cilk-style app on 8
 * cores under every fence design and compare execution time. The
 * owner's take() fence is Critical (weak under WS+/SW+), the thief's
 * steal() fence Noncritical (strong).
 *
 *   $ ./work_stealing [app-name]
 */

#include <cstdio>

#include "runtime/marks.hh"
#include "workloads/cilk_apps.hh"

using namespace asf;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const CilkApp &app =
        cilkAppByName(argc > 1 ? argv[1] : "heat");

    std::printf("Cilk app '%s': grain=%u stores/task=%u depth=%u\n\n",
                app.name.c_str(), app.taskGrain, app.storesPerTask,
                app.spawnDepth);
    std::printf("%-5s %12s %12s %10s %8s %8s\n", "design", "cycles",
                "tasks", "stolen", "fence%", "speedup");

    double splus_cycles = 0;
    for (FenceDesign d : allFenceDesigns) {
        SystemConfig cfg;
        cfg.numCores = 8;
        cfg.design = d;
        System sys(cfg);
        CilkSetup setup = setupCilkApp(sys, app);
        if (sys.run(50'000'000) != System::RunResult::AllDone) {
            std::printf("%-5s did not finish\n", fenceDesignName(d));
            continue;
        }
        uint64_t tasks = sys.guestCounter(marks::taskDone);
        uint64_t steals = sys.guestCounter(marks::taskStolen);
        if (tasks != setup.expectedTasks)
            std::printf("WARNING: task count mismatch (%llu vs %llu)\n",
                        (unsigned long long)tasks,
                        (unsigned long long)setup.expectedTasks);
        CycleBreakdown b = sys.breakdown();
        if (d == FenceDesign::SPlus)
            splus_cycles = double(sys.now());
        std::printf("%-5s %12llu %12llu %10llu %7.1f%% %8.2fx\n",
                    fenceDesignName(d), (unsigned long long)sys.now(),
                    (unsigned long long)tasks,
                    (unsigned long long)steals, 100.0 * b.fenceFrac(),
                    splus_cycles / double(sys.now()));
    }
    return 0;
}
