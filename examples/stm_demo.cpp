/**
 * @file
 * STM example (paper Section 4.2): TLRW transactions on 8 cores. The
 * read barrier's fence is the Critical (weak) one, the write barrier's
 * the Noncritical (strong) one. Prints committed-transaction throughput
 * per design plus the serializability check.
 *
 *   $ ./stm_demo [bench-name]
 */

#include <cstdio>

#include "runtime/marks.hh"
#include "workloads/ustm.hh"

using namespace asf;
using namespace asf::workloads;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const TlrwBench &bench =
        ustmBenchByName(argc > 1 ? argv[1] : "Hash");

    std::printf("ustm bench '%s': orecs=%u reads/txn=%u writes/txn=%u\n\n",
                bench.name.c_str(), bench.numOrecs, bench.readsRw,
                bench.writesRw);
    std::printf("%-5s %10s %10s %10s %8s %12s\n", "design", "commits",
                "aborts", "recov", "fence%", "throughput");

    double splus_tp = 0;
    for (FenceDesign d : allFenceDesigns) {
        SystemConfig cfg;
        cfg.numCores = 8;
        cfg.design = d;
        System sys(cfg);
        TlrwSetup setup = setupTlrwWorkload(sys, bench, 0);
        sys.run(300'000);

        uint64_t commits = sys.guestCounter(marks::txCommit);
        uint64_t commits_rw = sys.guestCounter(markTxCommitRw);
        uint64_t aborts = sys.guestCounter(marks::txAbort);
        uint64_t recov = 0;
        for (unsigned i = 0; i < 8; i++)
            recov +=
                sys.core(NodeId(i)).stats().get("wPlusRecoveries");

        // Serializability check: lock-protected increments must balance.
        uint64_t sum = sumTlrwData(sys, setup);
        uint64_t expect = uint64_t(bench.writesRw) * commits_rw;
        bool sound = sum >= expect &&
                     sum <= expect + uint64_t(bench.writesRw) * 8;

        double tp = 1000.0 * double(commits) / double(sys.now());
        if (d == FenceDesign::SPlus)
            splus_tp = tp;
        CycleBreakdown b = sys.breakdown();
        std::printf("%-5s %10llu %10llu %10llu %7.1f%% %8.2f tx/kcyc"
                    " (%.2fx)%s\n",
                    fenceDesignName(d), (unsigned long long)commits,
                    (unsigned long long)aborts,
                    (unsigned long long)recov, 100.0 * b.fenceFrac(), tp,
                    tp / splus_tp, sound ? "" : "  UNSOUND!");
    }
    return 0;
}
