/**
 * @file
 * A guided tour of the fence taxonomy's corner cases (paper Figures 3-4):
 * the same false-sharing collision between two *unrelated* weak fences
 * is run under WS+, SW+, and W+, showing the three designs' different
 * escape mechanisms - the Order operation, the Conditional Order, and
 * checkpoint recovery - all producing the same correct result.
 *
 *   $ ./taxonomy_tour
 */

#include <cstdio>

#include "prog/assembler.hh"
#include "sim/logging.hh"
#include "sys/system.hh"

using namespace asf;

namespace
{

/**
 * st [st_addr]=1; wf; r = ld [ld_addr]; res = r, with warm-up. Word
 * offsets pick true or false sharing against the partner thread.
 */
Program
collider(Addr st_addr, Addr ld_addr, Addr res)
{
    Assembler a("collider");
    a.li(1, int64_t(st_addr));
    a.li(2, int64_t(ld_addr));
    a.li(3, int64_t(res));
    a.ld(4, 2, 0);
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(FenceRole::Critical);
    a.ld(5, 2, 0);
    a.st(3, 0, 5);
    a.halt();
    return a.finish();
}

void
runCollision(FenceDesign design)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.design = design;
    System sys(cfg);

    // Figure 4b: T0 writes word 0 of line A and reads word 0 of line B;
    // T3 writes word 1 of line B and reads word 1 of line A. The two
    // fence "groups" are unrelated - they collide only through false
    // sharing of the cache lines.
    Addr lineA = 0x1200, lineB = 0x1400;
    sys.loadProgram(0, std::make_shared<const Program>(
                           collider(lineA, lineB, 0x3000)));
    sys.loadProgram(3, std::make_shared<const Program>(
                           collider(lineB + 8, lineA + 8, 0x3020)));

    if (sys.run(5'000'000) != System::RunResult::AllDone) {
        std::printf("  %-4s DID NOT FINISH\n", fenceDesignName(design));
        return;
    }

    uint64_t orders = 0, co_failed = 0, recoveries = 0, nacks = 0;
    for (unsigned n = 0; n < 4; n++) {
        orders += sys.directory(NodeId(n)).stats().get("orderCompleted");
        co_failed += sys.directory(NodeId(n)).stats().get("coFailed");
        recoveries += sys.core(NodeId(n)).stats().get("wPlusRecoveries");
        nacks += sys.core(NodeId(n)).stats().get("storeNacks");
    }
    bool correct = sys.debugReadWord(lineA) == 1 &&
                   sys.debugReadWord(lineB + 8) == 1;
    std::printf("  %-4s %8llu cycles  bounces=%llu orders=%llu "
                "coFailed=%llu recoveries=%llu  %s\n",
                fenceDesignName(design),
                (unsigned long long)sys.now(), (unsigned long long)nacks,
                (unsigned long long)orders, (unsigned long long)co_failed,
                (unsigned long long)recoveries,
                correct ? "both stores landed" : "BROKEN");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf(
        "Figure 4b: two unrelated weak fences colliding through false\n"
        "sharing. Each design escapes the line-granularity bounce cycle\n"
        "its own way:\n\n"
        "  WS+ converts the bouncing writes into Order operations;\n"
        "  SW+ asks the sharers word-level questions (Conditional "
        "Order);\n"
        "  W+  lets the deadlock happen, times out, and rolls back;\n"
        "  Wee stalls on its Remote Pending Set / watchdog.\n\n");
    for (FenceDesign d :
         {FenceDesign::WSPlus, FenceDesign::SWPlus, FenceDesign::WPlus,
          FenceDesign::Wee, FenceDesign::SPlus}) {
        runCollision(d);
    }
    std::printf("\nNote the mechanism fingerprints: orders>0 for WS+, "
                "orders with coFailed=0 for\nSW+ (pure false sharing "
                "completes as an Order), recoveries>0 for W+.\n");
    return 0;
}
