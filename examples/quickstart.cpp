/**
 * @file
 * Quickstart: build a 2-core system, run the store-buffering (Dekker
 * core) litmus under every fence design, and compare outcomes and fence
 * stall. Demonstrates the library's three-step API: configure a System,
 * load guest Programs, run and read stats back.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "prog/assembler.hh"
#include "runtime/layout.hh"
#include "runtime/litmus.hh"
#include "sim/logging.hh"
#include "sys/system.hh"

using namespace asf;
using namespace asf::runtime;

namespace
{

void
runUnder(FenceDesign design, bool fenced)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.design = design;

    System sys(cfg);
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    // warm = 600: both threads cache their load target and align, so the
    // stores are the slow part - the classic SB timing.
    sys.loadProgram(0, std::make_shared<const Program>(buildSbThread(
                           lay, 0, fenced, FenceRole::Critical, 600)));
    sys.loadProgram(1, std::make_shared<const Program>(buildSbThread(
                           lay, 1, fenced, FenceRole::Noncritical, 600)));

    if (sys.run(1'000'000) != System::RunResult::AllDone) {
        std::printf("  run did not finish!\n");
        return;
    }

    uint64_t r0 = sys.debugReadWord(lay.res0);
    uint64_t r1 = sys.debugReadWord(lay.res1);
    CycleBreakdown b = sys.breakdown();
    std::printf("  %-8s  r0=%llu r1=%llu  fence-stall=%4llu cycles   %s\n",
                fenced ? fenceDesignName(design) : "none",
                (unsigned long long)r0, (unsigned long long)r1,
                (unsigned long long)b.fenceStall,
                (r0 == 0 && r1 == 0) ? "<- SC VIOLATION" : "SC preserved");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Store buffering:  T0: st x=1; FENCE; r0=ld y\n");
    std::printf("                  T1: st y=1; FENCE; r1=ld x\n");
    std::printf("(r0,r1)==(0,0) is the sequential-consistency violation "
                "the fences must prevent.\n\n");
    runUnder(FenceDesign::SPlus, false);
    for (FenceDesign d : allFenceDesigns)
        runUnder(d, true);
    std::printf(
        "\nEvery design prevents the violation. Note the W+ line: a "
        "symmetric all-weak\ngroup is W+'s worst case - it deadlocks, "
        "times out, and rolls back (still\ncorrect, but paying recovery "
        "cycles). The asymmetric designs resolve the same\ngroup with "
        "one cheap bounce. Run work_stealing or stm_demo to see the "
        "weak\nfences' upside on the workloads they are meant for.\n");
    return 0;
}
