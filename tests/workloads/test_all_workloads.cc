/**
 * Smoke-validation of every one of the 26 named workloads: each runs
 * (downsized) under S+ and W+ - the two extremes of the taxonomy - and
 * must pass its functional validation.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace asf;
using namespace asf::harness;
using namespace asf::workloads;

namespace
{

std::string
sanitize(std::string n)
{
    for (auto &c : n)
        if (c == '+')
            c = 'p';
    return n;
}

} // namespace

// --- CilkApps -----------------------------------------------------------

class EveryCilkApp
    : public ::testing::TestWithParam<std::tuple<std::string, FenceDesign>>
{
};

TEST_P(EveryCilkApp, ValidatesDownsized)
{
    CilkApp app = cilkAppByName(std::get<0>(GetParam()));
    app.spawnDepth = std::min(app.spawnDepth, 3u);
    app.initialTasks = std::min(app.initialTasks, 2u);
    ExperimentResult r =
        runCilkExperiment(app, std::get<1>(GetParam()), 4, 20'000'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    EXPECT_GT(r.tasks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, EveryCilkApp,
    ::testing::Combine(::testing::Values("bucket", "cholesky", "cilksort",
                                         "fft", "fib", "heat", "knapsack",
                                         "lu", "matmul", "plu"),
                       ::testing::Values(FenceDesign::SPlus,
                                         FenceDesign::WPlus)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               sanitize(fenceDesignName(std::get<1>(info.param)));
    });

// --- ustm ---------------------------------------------------------------

class EveryUstmBench
    : public ::testing::TestWithParam<std::tuple<std::string, FenceDesign>>
{
};

TEST_P(EveryUstmBench, ValidatesAndCommits)
{
    const TlrwBench &bench = ustmBenchByName(std::get<0>(GetParam()));
    ExperimentResult r =
        runUstmExperiment(bench, std::get<1>(GetParam()), 4, 60'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    EXPECT_GT(r.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Benches, EveryUstmBench,
    ::testing::Combine(::testing::Values("Counter", "DList", "Forest",
                                         "Hash", "List", "MCAS",
                                         "ReadNWrite1", "ReadWriteN",
                                         "Tree", "TreeOverwrite"),
                       ::testing::Values(FenceDesign::SPlus,
                                         FenceDesign::WPlus)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               sanitize(fenceDesignName(std::get<1>(info.param)));
    });

// --- STAMP --------------------------------------------------------------

class EveryStampApp
    : public ::testing::TestWithParam<std::tuple<std::string, FenceDesign>>
{
};

TEST_P(EveryStampApp, ValidatesExactly)
{
    StampApp app = stampAppByName(std::get<0>(GetParam()));
    app.txnsPerThread = 10;
    ExperimentResult r =
        runStampExperiment(app, std::get<1>(GetParam()), 4, 30'000'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    EXPECT_EQ(r.commits, 40u);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, EveryStampApp,
    ::testing::Combine(::testing::Values("genome", "intruder", "kmeans",
                                         "labyrinth", "ssca2", "vacation"),
                       ::testing::Values(FenceDesign::SPlus,
                                         FenceDesign::WPlus)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               sanitize(fenceDesignName(std::get<1>(info.param)));
    });
