#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/marks.hh"
#include "workloads/cilk_apps.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::workloads;

TEST(CilkWorkload, SubtreeSizes)
{
    EXPECT_EQ(cilkSubtreeSize(0, 2), 1u);
    EXPECT_EQ(cilkSubtreeSize(1, 2), 3u);
    EXPECT_EQ(cilkSubtreeSize(2, 2), 7u);
    EXPECT_EQ(cilkSubtreeSize(3, 2), 15u);
    EXPECT_EQ(cilkSubtreeSize(4, 0), 1u);
}

TEST(CilkWorkload, TenNamedApps)
{
    EXPECT_EQ(cilkApps().size(), 10u);
    EXPECT_EQ(cilkAppByName("fib").name, "fib");
    EXPECT_EXIT(cilkAppByName("nope"), ::testing::ExitedWithCode(1),
                "unknown");
}

namespace
{

CilkApp
tinyApp()
{
    CilkApp app = cilkAppByName("fib");
    app.spawnDepth = 3;
    app.initialTasks = 2;
    return app;
}

} // namespace

class CilkDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(CilkDesigns, EveryTaskExecutedExactlyOnce)
{
    System sys(smallConfig(GetParam(), 4));
    CilkSetup setup = setupCilkApp(sys, tinyApp());
    auto res = sys.run(10'000'000);
    ASSERT_EQ(res, System::RunResult::AllDone)
        << "work stealing hung under " << fenceDesignName(GetParam());
    EXPECT_EQ(sys.guestCounter(marks::taskDone), setup.expectedTasks)
        << "lost or duplicated task under "
        << fenceDesignName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, CilkDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

TEST(CilkWorkload, SomeStealingHappensButLittle)
{
    System sys(smallConfig(FenceDesign::SPlus, 4));
    CilkApp app = cilkAppByName("fib");
    app.initialTasks = 1;
    app.seedWorkers = 1; // a single root: the others must steal
    CilkSetup setup = setupCilkApp(sys, app);
    ASSERT_EQ(sys.run(30'000'000), System::RunResult::AllDone);
    uint64_t tasks = sys.guestCounter(marks::taskDone);
    uint64_t steals = sys.guestCounter(marks::taskStolen);
    EXPECT_EQ(tasks, setup.expectedTasks);
    EXPECT_GT(steals, 0u);
    // The paper reports < 0.5% stolen; allow a loose factor for our
    // smaller runs.
    EXPECT_LT(double(steals) / double(tasks), 0.2);
}

TEST(CilkWorkload, DeterministicAcrossRuns)
{
    auto run = [] {
        System sys(smallConfig(FenceDesign::WSPlus, 4));
        setupCilkApp(sys, tinyApp());
        EXPECT_EQ(sys.run(10'000'000), System::RunResult::AllDone);
        return sys.now();
    };
    EXPECT_EQ(run(), run());
}
