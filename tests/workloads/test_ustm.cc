#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/marks.hh"
#include "workloads/ustm.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::workloads;

TEST(UstmWorkload, TenNamedBenches)
{
    EXPECT_EQ(ustmBenches().size(), 10u);
    EXPECT_EQ(ustmBenchByName("Hash").name, "Hash");
    EXPECT_EXIT(ustmBenchByName("nope"), ::testing::ExitedWithCode(1),
                "unknown");
}

class UstmDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(UstmDesigns, SerializabilityInvariantHolds)
{
    // Run Hash for a while; every committed RW transaction does exactly
    // `writesRw` lock-protected increments.
    System sys(smallConfig(GetParam(), 4));
    const TlrwBench &bench = ustmBenchByName("Hash");
    TlrwSetup setup = setupTlrwWorkload(sys, bench, 0);
    sys.run(80'000);
    uint64_t commits_rw = sys.guestCounter(markTxCommitRw);
    uint64_t sum = sumTlrwData(sys, setup);
    uint64_t expect = bench.writesRw * commits_rw;
    // A mid-run snapshot can miss arbitrarily many increments hidden in
    // an in-flight InvAck, so only the upper bound is checked here; the
    // drained STAMP runs check exact equality.
    EXPECT_LE(sum, expect + bench.writesRw * 4)
        << "serializability broken under "
        << fenceDesignName(GetParam());
    EXPECT_GT(commits_rw, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, UstmDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

TEST(UstmWorkload, HighContentionCounterStillSound)
{
    System sys(smallConfig(FenceDesign::WPlus, 4));
    const TlrwBench &bench = ustmBenchByName("Counter");
    TlrwSetup setup = setupTlrwWorkload(sys, bench, 0);
    sys.run(60'000);
    uint64_t commits_rw = sys.guestCounter(markTxCommitRw);
    uint64_t sum = sumTlrwData(sys, setup);
    EXPECT_LE(sum, commits_rw + 4);
}

TEST(UstmWorkload, LimitedModeHaltsAfterExactCount)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    const TlrwBench &bench = ustmBenchByName("Hash");
    setupTlrwWorkload(sys, bench, 10);
    ASSERT_EQ(sys.run(10'000'000), System::RunResult::AllDone);
    EXPECT_EQ(sys.guestCounter(marks::txCommit), 20u);
}

TEST(UstmWorkload, AbortsOccurUnderContention)
{
    System sys(smallConfig(FenceDesign::SPlus, 4));
    setupTlrwWorkload(sys, ustmBenchByName("Counter"), 0);
    sys.run(100'000);
    // Reads conflict with the hot writer often enough to abort sometimes.
    EXPECT_GT(sys.guestCounter(marks::txAbort), 0u);
}
