#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/marks.hh"
#include "workloads/stamp.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::workloads;

TEST(StampWorkload, SixNamedApps)
{
    EXPECT_EQ(stampApps().size(), 6u);
    EXPECT_EQ(stampAppByName("vacation").bench.name, "vacation");
    EXPECT_EXIT(stampAppByName("nope"), ::testing::ExitedWithCode(1),
                "unknown");
}

TEST(StampWorkload, RunsToExactCommitCount)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    StampApp app = stampAppByName("kmeans");
    app.txnsPerThread = 12;
    TlrwSetup setup = setupStampApp(sys, app);
    ASSERT_EQ(sys.run(20'000'000), System::RunResult::AllDone);
    EXPECT_EQ(sys.guestCounter(marks::txCommit), 24u);
    uint64_t commits_rw = sys.guestCounter(markTxCommitRw);
    EXPECT_EQ(sumTlrwData(sys, setup),
              uint64_t(app.bench.writesRw) * commits_rw);
}

class StampDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(StampDesigns, IntruderSoundUnderAllDesigns)
{
    System sys(smallConfig(GetParam(), 4));
    StampApp app = stampAppByName("intruder");
    app.txnsPerThread = 8;
    TlrwSetup setup = setupStampApp(sys, app);
    ASSERT_EQ(sys.run(30'000'000), System::RunResult::AllDone)
        << "intruder hung under " << fenceDesignName(GetParam());
    uint64_t commits_rw = sys.guestCounter(markTxCommitRw);
    EXPECT_EQ(sumTlrwData(sys, setup),
              uint64_t(app.bench.writesRw) * commits_rw);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, StampDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });
