/**
 * The parallel-sweep invariant: runSweep must produce results and a
 * stats-JSON log that are byte-identical for any job count. Each job
 * owns its System, so the only coupling is the log merge, which happens
 * in job order on the merging thread. An outer ScopedRunCapture
 * intercepts the merged batch, giving the test the exact per-run
 * documents the file flusher would write.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

using namespace asf;
using namespace asf::harness;
using namespace asf::workloads;

namespace
{

/** Eight small ustm configs: two benches crossed with four designs. */
std::vector<SweepJob>
makeJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *name : {"Hash", "List"}) {
        const TlrwBench &bench = ustmBenchByName(name);
        for (FenceDesign d : {FenceDesign::SPlus, FenceDesign::WSPlus,
                              FenceDesign::WPlus, FenceDesign::Wee}) {
            jobs.push_back([&bench, d] {
                return runUstmExperiment(bench, d, 4, 30'000);
            });
        }
    }
    return jobs;
}

struct SweepOutcome
{
    std::vector<ExperimentResult> results;
    std::vector<std::string> docs;
};

SweepOutcome
runWithJobs(unsigned num_jobs)
{
    SweepOutcome out;
    ScopedRunCapture capture(out.docs);
    out.results = runSweep(makeJobs(), num_jobs);
    return out;
}

} // namespace

TEST(Sweep, ParallelMatchesSerialByteForByte)
{
    SweepOutcome serial = runWithJobs(1);
    SweepOutcome parallel = runWithJobs(4);

    ASSERT_EQ(serial.results.size(), 8u);
    ASSERT_EQ(parallel.results.size(), 8u);

    // Results come back in job order regardless of which worker ran
    // which job.
    const char *expect_wl[] = {"Hash", "Hash", "Hash", "Hash",
                               "List", "List", "List", "List"};
    for (size_t i = 0; i < 8; i++) {
        EXPECT_EQ(parallel.results[i].workload, expect_wl[i]);
        EXPECT_EQ(parallel.results[i].workload,
                  serial.results[i].workload);
        EXPECT_EQ(parallel.results[i].design, serial.results[i].design);
        EXPECT_TRUE(parallel.results[i].valid)
            << parallel.results[i].validationError;
        EXPECT_EQ(parallel.results[i].cycles, serial.results[i].cycles);
        EXPECT_EQ(parallel.results[i].commits,
                  serial.results[i].commits);
        EXPECT_EQ(parallel.results[i].instrRetired,
                  serial.results[i].instrRetired);
    }

    // The stats-JSON documents — the exact bytes the log file is built
    // from — must match run for run.
    ASSERT_EQ(serial.docs.size(), 8u);
    ASSERT_EQ(parallel.docs.size(), 8u);
    for (size_t i = 0; i < 8; i++)
        EXPECT_EQ(parallel.docs[i], serial.docs[i])
            << "stats document " << i << " differs between jobs=1 and "
            << "jobs=4";
}

TEST(Sweep, OversubscribedAndClampedJobCounts)
{
    // More workers than jobs, and absurd counts, must behave the same.
    SweepOutcome serial = runWithJobs(1);
    SweepOutcome wide = runWithJobs(64);
    ASSERT_EQ(wide.docs.size(), serial.docs.size());
    for (size_t i = 0; i < serial.docs.size(); i++)
        EXPECT_EQ(wide.docs[i], serial.docs[i]);
    // jobs=0 clamps to 1 rather than deadlocking.
    SweepOutcome zero = runWithJobs(0);
    ASSERT_EQ(zero.docs.size(), serial.docs.size());
    for (size_t i = 0; i < serial.docs.size(); i++)
        EXPECT_EQ(zero.docs[i], serial.docs[i]);
}

TEST(Sweep, EmptyJobList)
{
    std::vector<std::string> docs;
    ScopedRunCapture capture(docs);
    std::vector<ExperimentResult> results = runSweep({}, 4);
    EXPECT_TRUE(results.empty());
    EXPECT_TRUE(docs.empty());
}
