#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "sim/trace.hh"

using namespace asf;
using namespace asf::harness;
using namespace asf::workloads;

TEST(Experiment, CilkRunValidates)
{
    CilkApp app = cilkAppByName("fib");
    app.spawnDepth = 3;
    app.initialTasks = 1;
    ExperimentResult r =
        runCilkExperiment(app, FenceDesign::SPlus, 4, 10'000'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.tasks, 0u);
    EXPECT_GT(r.instrRetired, 0u);
    EXPECT_GT(r.breakdown.busy, 0u);
}

TEST(Experiment, UstmRunValidatesAndCommits)
{
    ExperimentResult r = runUstmExperiment(ustmBenchByName("Hash"),
                                           FenceDesign::WSPlus, 4, 60'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    EXPECT_GT(r.commits, 0u);
    EXPECT_GT(r.throughputTxnPerKcycle(), 0.0);
}

TEST(Experiment, StampRunValidates)
{
    StampApp app = stampAppByName("kmeans");
    app.txnsPerThread = 10;
    ExperimentResult r =
        runStampExperiment(app, FenceDesign::WPlus, 4, 20'000'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    EXPECT_EQ(r.commits, 40u);
}

TEST(Experiment, FenceCountsConsistentWithDesign)
{
    CilkApp app = cilkAppByName("fib");
    app.spawnDepth = 3;
    app.initialTasks = 1;
    auto splus = runCilkExperiment(app, FenceDesign::SPlus, 4);
    EXPECT_EQ(splus.fencesWeak, 0u);
    auto wplus = runCilkExperiment(app, FenceDesign::WPlus, 4);
    EXPECT_EQ(wplus.fencesStrong, 0u);
}

TEST(Experiment, StatsJsonAndTraceSinksCaptureARun)
{
    std::string stats_path =
        testing::TempDir() + "asf_experiment_stats.json";
    std::string trace_path =
        testing::TempDir() + "asf_experiment_trace.json";
    Trace::get().resetForTest();
    setStatsJsonPath(stats_path);
    setTracePath(trace_path);

    ExperimentResult r = runUstmExperiment(ustmBenchByName("Hash"),
                                           FenceDesign::WPlus, 4, 30'000);
    EXPECT_TRUE(r.valid) << r.validationError;
    Trace::get().flush();

    // Detach the global sinks before anything can fail, so later tests
    // are unaffected.
    setStatsJsonPath("");
    Trace::get().resetForTest();

    auto slurp = [](const std::string &path) {
        std::ifstream f(path);
        std::ostringstream os;
        os << f.rdbuf();
        return os.str();
    };

    std::string stats = slurp(stats_path);
    EXPECT_NE(stats.find("\"schemaVersion\":4"), std::string::npos);
    EXPECT_NE(stats.find("\"workload\":\"Hash\""), std::string::npos);
    EXPECT_NE(stats.find("\"cpiStack\":"), std::string::npos);
    EXPECT_NE(stats.find("\"fenceProfile\":"), std::string::npos);
    EXPECT_NE(stats.find("\"watchdog\":"), std::string::npos);
    EXPECT_NE(stats.find("\"design\":\"W+\""), std::string::npos);
    EXPECT_NE(stats.find("\"groups\":["), std::string::npos);
    EXPECT_NE(stats.find("\"fenceStallCycles\""), std::string::npos);
    EXPECT_NE(stats.find("\"wbOccupancy\""), std::string::npos);
    EXPECT_NE(stats.find("\"noc\":"), std::string::npos);
    EXPECT_NE(stats.find("\"links\":["), std::string::npos);

    std::string trace = slurp(trace_path);
    EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(trace.find("Hash/W+/4c"), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"fence\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"noc\""), std::string::npos);
}

TEST(Experiment, DerivedMetricsSane)
{
    ExperimentResult r;
    r.cycles = 1000;
    r.commits = 5;
    r.instrRetired = 2000;
    r.bytesBase = 100;
    r.bytesRetry = 5;
    EXPECT_DOUBLE_EQ(r.throughputTxnPerKcycle(), 5.0);
    EXPECT_DOUBLE_EQ(r.trafficOverheadPct(), 5.0);
    EXPECT_DOUBLE_EQ(r.fencesPer1000Instr(4), 2.0);
}
