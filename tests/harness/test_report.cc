#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hh"

using namespace asf::harness;

TEST(Report, AsciiTableAligns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, RowArityChecked)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Report, Formatting)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPct(0.132), "+13.2%");
    EXPECT_EQ(fmtPct(-0.05), "-5.0%");
}
