#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "harness/report.hh"

using namespace asf::harness;

TEST(Report, AsciiTableAligns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, RowArityChecked)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Report, Formatting)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPct(0.132), "+13.2%");
    EXPECT_EQ(fmtPct(-0.05), "-5.0%");
}

TEST(JsonWriter, NestedContainersAndCommas)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("a", uint64_t(1));
        w.key("list").beginArray();
        w.value(uint64_t(2)).value(uint64_t(3));
        w.beginObject().field("x", true).endObject();
        w.endArray();
        w.key("empty").beginObject().endObject();
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"a\":1,\"list\":[2,3,{\"x\":true}],"
                        "\"empty\":{}}");
}

TEST(JsonWriter, StringEscaping)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("s", std::string("quote\" slash\\ nl\n"));
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"s\":\"quote\\\" slash\\\\ nl\\n\"}");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteBecomeNull)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginArray();
        w.value(0.5);
        w.value(int64_t(-7));
        w.value(std::numeric_limits<double>::quiet_NaN());
        w.value(std::numeric_limits<double>::infinity());
        w.endArray();
    }
    EXPECT_EQ(os.str(), "[0.5,-7,null,null]");
}

TEST(JsonWriter, RawSplicesVerbatim)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.key("inner").raw("{\"pre\":\"rendered\"}");
        w.field("after", uint64_t(1));
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"inner\":{\"pre\":\"rendered\"},\"after\":1}");
}

TEST(JsonWriter, MalformedSequencesDie)
{
    std::ostringstream os;
    EXPECT_DEATH(
        {
            JsonWriter w(os);
            w.beginArray();
            w.key("no-keys-in-arrays");
        },
        "outside an object");
    EXPECT_DEATH(
        {
            JsonWriter w(os);
            w.beginObject();
            w.value(uint64_t(1)); // value without a key
        },
        "without a key");
    EXPECT_DEATH(
        {
            JsonWriter w(os);
            w.beginObject();
            w.endArray();
        },
        "outside an array");
}
