#include <gtest/gtest.h>

#include "prog/assembler.hh"

using namespace asf;

TEST(Assembler, EmitsInOrder)
{
    Assembler a("p");
    a.li(1, 5);
    a.addi(2, 1, 3);
    a.halt();
    Program p = a.finish();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.instrs[0].op, Op::Li);
    EXPECT_EQ(p.instrs[1].op, Op::Addi);
    EXPECT_EQ(p.instrs[2].op, Op::Halt);
}

TEST(Assembler, ForwardBranchIsFixedUp)
{
    Assembler a("p");
    a.li(1, 0);
    a.beq(1, 1, "end"); // forward reference
    a.li(2, 99);
    a.bind("end");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.instrs[1].imm, 3); // "end" is instruction index 3
}

TEST(Assembler, BackwardBranchResolves)
{
    Assembler a("p");
    a.bind("top");
    a.addi(1, 1, 1);
    a.jmp("top");
    Program p = a.finish();
    EXPECT_EQ(p.instrs[1].imm, 0);
}

TEST(Assembler, UndefinedLabelIsFatal)
{
    Assembler a("p");
    a.jmp("nowhere");
    EXPECT_EXIT(a.finish(), ::testing::ExitedWithCode(1), "nowhere");
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    Assembler a("p");
    a.bind("x");
    EXPECT_EXIT(a.bind("x"), ::testing::ExitedWithCode(1), "twice");
}

TEST(Assembler, FreshLabelsAreUnique)
{
    Assembler a("p");
    EXPECT_NE(a.freshLabel("l"), a.freshLabel("l"));
}

TEST(Assembler, DisassemblyRoundTripsKeyOps)
{
    Assembler a("p");
    a.ld(3, 4, 16);
    a.st(4, 8, 5);
    a.fence(FenceRole::Critical);
    a.fence(FenceRole::Noncritical);
    a.cas(1, 2, 0, 3, 4);
    Program p = a.finish();
    EXPECT_EQ(p.instrs[0].toString(), "ld x3, [x4+16]");
    EXPECT_EQ(p.instrs[1].toString(), "st [x4+8], x5");
    EXPECT_EQ(p.instrs[2].toString(), "fence.crit");
    EXPECT_EQ(p.instrs[3].toString(), "fence.nc");
    EXPECT_EQ(p.instrs[4].toString(), "cas x1, [x2+0], x3, x4");
}

TEST(Assembler, MemPredicates)
{
    Instr ld{.op = Op::Ld};
    Instr add{.op = Op::Add};
    Instr cas{.op = Op::Cas};
    EXPECT_TRUE(ld.isMem());
    EXPECT_FALSE(add.isMem());
    EXPECT_TRUE(cas.isMem());
    EXPECT_TRUE(cas.isAtomic());
    EXPECT_FALSE(ld.isAtomic());
}

TEST(Program, OutOfRangePcPanics)
{
    Assembler a("p");
    a.halt();
    Program p = a.finish();
    EXPECT_DEATH(p.at(5), "out of range");
}
