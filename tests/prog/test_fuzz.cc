#include <gtest/gtest.h>

#include "prog/fuzz.hh"

using namespace asf;

TEST(Fuzz, GeneratesOneProgramPerThread)
{
    FuzzConfig cfg;
    cfg.numThreads = 4;
    FuzzSetup setup = buildFuzz(cfg);
    EXPECT_EQ(setup.programs.size(), 4u);
    for (const auto &p : setup.programs)
        EXPECT_GT(p.size(), 10u);
}

TEST(Fuzz, DeterministicForSameSeed)
{
    FuzzConfig cfg;
    cfg.seed = 7;
    FuzzSetup a = buildFuzz(cfg);
    FuzzSetup b = buildFuzz(cfg);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (size_t t = 0; t < a.programs.size(); t++) {
        ASSERT_EQ(a.programs[t].size(), b.programs[t].size());
        for (size_t i = 0; i < a.programs[t].size(); i++)
            EXPECT_EQ(a.programs[t].instrs[i].toString(),
                      b.programs[t].instrs[i].toString());
    }
}

TEST(Fuzz, DifferentSeedsDiffer)
{
    FuzzConfig a_cfg, b_cfg;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    FuzzSetup a = buildFuzz(a_cfg);
    FuzzSetup b = buildFuzz(b_cfg);
    bool differ = false;
    for (size_t t = 0; t < a.programs.size() && !differ; t++) {
        if (a.programs[t].size() != b.programs[t].size()) {
            differ = true;
            break;
        }
        for (size_t i = 0; i < a.programs[t].size(); i++)
            if (a.programs[t].instrs[i].toString() !=
                b.programs[t].instrs[i].toString())
                differ = true;
    }
    EXPECT_TRUE(differ);
}

TEST(Fuzz, TokensAreRecognizable)
{
    uint64_t t = FuzzSetup::token(3, 7, 1);
    EXPECT_TRUE(FuzzSetup::tokenValid(t, 8));
    EXPECT_TRUE(FuzzSetup::tokenValid(0, 8));
    EXPECT_FALSE(FuzzSetup::tokenValid(0xdeadbeefcafeULL, 8));
    // Writer id is recoverable.
    EXPECT_EQ(t >> 24, 4u);
}

TEST(Fuzz, SingleWriterTracksExpectedFinalState)
{
    FuzzConfig cfg;
    cfg.singleWriterPerLoc = true;
    cfg.numThreads = 4;
    cfg.numLocations = 8;
    FuzzSetup setup = buildFuzz(cfg);
    ASSERT_EQ(setup.expectedFinal.size(), 8u);
    // Every written location's final token names the partition owner.
    for (unsigned loc = 0; loc < 8; loc++) {
        uint64_t v = setup.expectedFinal[loc];
        if (v != 0) {
            EXPECT_EQ((v >> 24) - 1, loc % 4u);
        }
    }
}

TEST(Fuzz, PackedLocationsShareLines)
{
    FuzzConfig cfg;
    cfg.packLocations = true;
    FuzzSetup s = buildFuzz(cfg);
    EXPECT_EQ(s.locAddr(1) - s.locAddr(0), 8u);
    cfg.packLocations = false;
    FuzzSetup p = buildFuzz(cfg);
    EXPECT_EQ(p.locAddr(1) - p.locAddr(0), 32u);
}

TEST(Fuzz, DegenerateConfigIsFatal)
{
    FuzzConfig cfg;
    cfg.numThreads = 0;
    EXPECT_EXIT(buildFuzz(cfg), ::testing::ExitedWithCode(1),
                "degenerate");
}

TEST(Fuzz, RmwRoundsOffByDefault)
{
    FuzzConfig cfg;
    FuzzSetup setup = buildFuzz(cfg);
    for (const auto &p : setup.programs)
        for (const auto &ins : p.instrs)
            EXPECT_FALSE(ins.isAtomic())
                << "atomic emitted with maxRmwsPerRound = 0";
}

TEST(Fuzz, RmwRoundsEmitAtomicsWithDistinctTokens)
{
    FuzzConfig cfg;
    cfg.maxRmwsPerRound = 2;
    cfg.seed = 9;
    FuzzSetup setup = buildFuzz(cfg);
    unsigned rmws = 0;
    for (const auto &p : setup.programs)
        for (const auto &ins : p.instrs)
            if (ins.isAtomic())
                rmws++;
    EXPECT_GT(rmws, 0u) << "no atomics across 4 threads x 12 rounds";
    // RMW tokens live in a distinct idx space from the round's stores,
    // so every token in the system stays unique.
    uint64_t st = FuzzSetup::token(0, 3, 0);
    uint64_t at = FuzzSetup::token(0, 3, cfg.maxStoresPerRound + 0);
    EXPECT_NE(st, at);
    EXPECT_TRUE(FuzzSetup::tokenValid(at, cfg.numThreads));
}

TEST(Fuzz, RmwRoundsDeterministicForSameSeed)
{
    FuzzConfig cfg;
    cfg.maxRmwsPerRound = 3;
    cfg.seed = 17;
    FuzzSetup a = buildFuzz(cfg);
    FuzzSetup b = buildFuzz(cfg);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (size_t t = 0; t < a.programs.size(); t++) {
        ASSERT_EQ(a.programs[t].size(), b.programs[t].size());
        for (size_t i = 0; i < a.programs[t].size(); i++)
            EXPECT_EQ(a.programs[t].instrs[i].toString(),
                      b.programs[t].instrs[i].toString());
    }
}

TEST(Fuzz, RmwRoundsKeepSingleWriterPartition)
{
    FuzzConfig cfg;
    cfg.singleWriterPerLoc = true;
    cfg.maxRmwsPerRound = 2;
    cfg.numThreads = 4;
    cfg.numLocations = 8;
    FuzzSetup setup = buildFuzz(cfg);
    for (unsigned loc = 0; loc < 8; loc++) {
        uint64_t v = setup.expectedFinal[loc];
        if (v != 0) {
            EXPECT_EQ((v >> 24) - 1, loc % 4u)
                << "location " << loc << " written off-partition";
        }
    }
}
