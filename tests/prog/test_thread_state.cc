#include <gtest/gtest.h>

#include "prog/assembler.hh"
#include "prog/thread_state.hh"

using namespace asf;

namespace
{

/** Run non-memory instructions through the interpreter until Halt. */
void
runToHalt(ThreadState &ts, const Program &p, unsigned max_steps = 10000)
{
    unsigned steps = 0;
    while (!ts.halted() && steps++ < max_steps)
        ts.executeNonMem(p.at(ts.pc()));
    ASSERT_TRUE(ts.halted()) << "program did not halt";
}

} // namespace

TEST(ThreadState, ArithmeticOps)
{
    Assembler a("p");
    a.li(1, 6);
    a.li(2, 7);
    a.mul(3, 1, 2);
    a.add(4, 3, 1);
    a.sub(5, 4, 2);
    a.xor_(6, 1, 2);
    a.halt();
    Program p = a.finish();
    ThreadState ts;
    runToHalt(ts, p);
    EXPECT_EQ(ts.reg(3), 42u);
    EXPECT_EQ(ts.reg(4), 48u);
    EXPECT_EQ(ts.reg(5), 41u);
    EXPECT_EQ(ts.reg(6), 1u);
}

TEST(ThreadState, ShiftAndMaskOps)
{
    Assembler a("p");
    a.li(1, 0xff);
    a.shli(2, 1, 8);
    a.shri(3, 2, 4);
    a.andi(4, 3, 0xf0);
    a.halt();
    Program p = a.finish();
    ThreadState ts;
    runToHalt(ts, p);
    EXPECT_EQ(ts.reg(2), 0xff00u);
    EXPECT_EQ(ts.reg(3), 0xff0u);
    EXPECT_EQ(ts.reg(4), 0xf0u);
}

TEST(ThreadState, BranchesSignedComparison)
{
    Assembler a("p");
    a.li(1, -5);
    a.li(2, 3);
    a.blt(1, 2, "neg_less"); // -5 < 3 signed
    a.li(3, 0);
    a.halt();
    a.bind("neg_less");
    a.li(3, 1);
    a.halt();
    Program p = a.finish();
    ThreadState ts;
    runToHalt(ts, p);
    EXPECT_EQ(ts.reg(3), 1u);
}

TEST(ThreadState, LoopCountsDown)
{
    Assembler a("p");
    a.li(1, 10);
    a.li(2, 0);
    a.bind("loop");
    a.addi(2, 2, 3);
    a.addi(1, 1, -1);
    a.li(3, 0);
    a.blt(3, 1, "loop");
    a.halt();
    Program p = a.finish();
    ThreadState ts;
    runToHalt(ts, p);
    EXPECT_EQ(ts.reg(2), 30u);
}

TEST(ThreadState, RandIsDeterministicPerSeed)
{
    ThreadState t1, t2;
    t1.reset(0, 42);
    t2.reset(0, 42);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(t1.nextRand(), t2.nextRand());
}

TEST(ThreadState, CheckpointRestoreIsExact)
{
    ThreadState ts;
    ts.reset(0, 9);
    ts.setReg(5, 123);
    ts.setPc(17);
    ts.nextRand();
    ThreadCheckpoint cp = ts; // W+ checkpoint is a plain copy
    ts.setReg(5, 999);
    ts.setPc(99);
    uint64_t diverged_rand = ts.nextRand();
    ts = cp;
    EXPECT_EQ(ts.reg(5), 123u);
    EXPECT_EQ(ts.pc(), 17u);
    // The PRNG state is architectural too: replay gives the same draw.
    EXPECT_EQ(ts.nextRand(), diverged_rand);
}

TEST(ThreadState, MemOpsRejectedByNonMemInterpreter)
{
    ThreadState ts;
    Instr ld{.op = Op::Ld};
    EXPECT_DEATH(ts.executeNonMem(ld), "executeNonMem");
}

TEST(ThreadState, RegisterRangeChecked)
{
    ThreadState ts;
    EXPECT_DEATH(ts.setReg(numRegs, 1), "out of range");
}
