/**
 * @file
 * Livelock/hang watchdog tests: System::run must abort with a
 * diagnostic snapshot when no core makes forward progress for a full
 * window, stay silent when progress continues, and stay off by
 * default.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hh"

using namespace asf;
using namespace asf::test;

namespace
{

/** Capture std::cerr for the duration of a scope. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buf_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string str() const { return buf_.str(); }

  private:
    std::ostringstream buf_;
    std::streambuf *old_;
};

} // namespace

TEST(Watchdog, FiresDuringQuietMissWindow)
{
    // A cold-missing store leaves the core with nothing to retire for
    // ~memLatency cycles; a window far below that must declare a hang.
    // Fast-forward is off so the run ticks (and checks) every cycle.
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, 1);
    cfg.watchdogCycles = 20;
    cfg.fastForward = false;
    System sys(cfg);
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));

    CerrCapture cerr_capture;
    auto res = sys.run(1'000'000);
    EXPECT_EQ(res, System::RunResult::Watchdog);
    EXPECT_TRUE(sys.watchdogFired());
    // The system stopped well before the miss would have resolved.
    EXPECT_LT(sys.now(), 100u);
    const std::string diag = cerr_capture.str();
    EXPECT_NE(diag.find("watchdog"), std::string::npos);
    EXPECT_NE(diag.find("core0"), std::string::npos);
}

TEST(Watchdog, OffByDefault)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    EXPECT_EQ(sys.config().watchdogCycles, 0u);
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    runToCompletion(sys);
    EXPECT_FALSE(sys.watchdogFired());
}

TEST(Watchdog, LargeWindowDoesNotFire)
{
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, 2);
    cfg.watchdogCycles = 1'000'000;
    System sys(cfg);
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    sys.loadProgram(1, share(loadProgram(0x1000, 0x2000)));
    runToCompletion(sys);
    EXPECT_FALSE(sys.watchdogFired());
}

TEST(Watchdog, SnapshotShowsStallAndWbHead)
{
    // Mid-miss, the snapshot must name the stalled core's bucket and
    // the write-buffer head entry it is stuck behind.
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, 1);
    cfg.fastForward = false;
    System sys(cfg);
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    EXPECT_EQ(sys.run(50), System::RunResult::MaxCycles);

    std::ostringstream os;
    sys.dumpWatchdogSnapshot(os);
    const std::string snap = os.str();
    EXPECT_NE(snap.find("core0"), std::string::npos);
    EXPECT_NE(snap.find("wb: 1/"), std::string::npos);
    EXPECT_NE(snap.find("addr=0x1000"), std::string::npos);
    // The store's directory transaction is still in flight.
    EXPECT_NE(snap.find("dir"), std::string::npos);
}

TEST(Watchdog, StatsJsonRecordsFiring)
{
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, 1);
    cfg.watchdogCycles = 20;
    cfg.fastForward = false;
    System sys(cfg);
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    CerrCapture quiet;
    ASSERT_EQ(sys.run(1'000'000), System::RunResult::Watchdog);
    std::ostringstream os;
    sys.dumpStatsJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"watchdog\":{\"cycles\":20,\"fired\":true}"),
              std::string::npos);
}
