/**
 * The fast-forward invariant: idle-cycle fast-forward is a host-side
 * optimization only, and must leave every simulated observable — final
 * cycle count, retired instructions, and the complete stats JSON dump —
 * bit-identical to a plain cycle-by-cycle run. Checked on a hand-built
 * two-core fence/miss workload (where fast-forward demonstrably
 * engages) and on randomized fence-disciplined programs across all five
 * fence designs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "../helpers.hh"
#include "prog/fuzz.hh"

using namespace asf;
using namespace asf::test;

namespace
{

struct RunOutcome
{
    Tick cycles = 0;
    uint64_t instrRetired = 0;
    uint64_t fastForwardedCycles = 0;
    std::string statsJson;
};

/** Run `sys` to completion and harvest everything the invariant covers. */
RunOutcome
harvest(System &sys)
{
    runToCompletion(sys);
    RunOutcome out;
    out.cycles = sys.now();
    out.instrRetired = sys.totalInstrRetired();
    out.fastForwardedCycles = sys.fastForwardedCycles();
    std::ostringstream os;
    sys.dumpStatsJson(os);
    out.statsJson = os.str();
    return out;
}

/** The microbench-style idle-heavy kernel: a cold-miss store drained
 *  through a strong fence, then a cold-miss load, per iteration. Every
 *  iteration is dominated by off-chip stall cycles, so fast-forward
 *  has long gaps to jump. */
Program
fenceMissProgram(int64_t iters)
{
    Assembler a("fence_miss");
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.addi(3, 3, 1);
    a.st(1, 0, 3);
    a.fence(FenceRole::Critical);
    a.ld(6, 2, 0);
    a.addi(1, 1, 4096);
    a.addi(2, 2, 4096);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return a.finish();
}

void
loadFenceMiss(System &sys, unsigned cores, int64_t iters)
{
    auto prog = share(fenceMissProgram(iters));
    for (unsigned i = 0; i < cores; i++) {
        sys.loadProgram(NodeId(i), prog);
        // Disjoint streams, one per core, each homed locally.
        sys.core(NodeId(i)).setReg(1, 0x1000000 + Addr(i) * 512);
        sys.core(NodeId(i)).setReg(2, 0x4000000 + Addr(i) * 512);
    }
}

} // namespace

TEST(FastForward, TwoCoreFenceWorkloadBitIdentical)
{
    RunOutcome outcomes[2];
    for (bool ff : {false, true}) {
        SystemConfig cfg = smallConfig(FenceDesign::SPlus, 2);
        cfg.fastForward = ff;
        System sys(cfg);
        loadFenceMiss(sys, 2, 50);
        outcomes[ff] = harvest(sys);
    }
    const RunOutcome &off = outcomes[0], &on = outcomes[1];

    EXPECT_EQ(off.fastForwardedCycles, 0u);
    // The workload is stall-dominated: if fast-forward never engaged,
    // the test is vacuous and the optimization silently regressed.
    EXPECT_GT(on.fastForwardedCycles, 0u)
        << "fast-forward never engaged on an idle-heavy workload";

    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.instrRetired, off.instrRetired);
    EXPECT_EQ(on.statsJson, off.statsJson)
        << "fast-forward changed a simulated statistic";
}

TEST(FastForward, BusyWorkloadUnaffected)
{
    // A never-idle spin loop: fast-forward must stay out of the way and
    // change nothing.
    RunOutcome outcomes[2];
    for (bool ff : {false, true}) {
        SystemConfig cfg = smallConfig(FenceDesign::SPlus, 1);
        cfg.fastForward = ff;
        System sys(cfg);
        Assembler a("spin");
        a.li(4, 0);
        a.li(5, 2000);
        a.bind("loop");
        a.ld(2, 1, 0);
        a.addi(2, 2, 1);
        a.st(1, 0, 2);
        a.addi(4, 4, 1);
        a.blt(4, 5, "loop");
        a.halt();
        sys.loadProgram(0, share(a.finish()));
        sys.core(0).setReg(1, 0x1000);
        outcomes[ff] = harvest(sys);
    }
    EXPECT_EQ(outcomes[1].cycles, outcomes[0].cycles);
    EXPECT_EQ(outcomes[1].instrRetired, outcomes[0].instrRetired);
    EXPECT_EQ(outcomes[1].statsJson, outcomes[0].statsJson);
}

TEST(FastForward, FuzzProgramsBitIdenticalAcrossDesigns)
{
    // Randomized fence-disciplined programs: every design, two seeds,
    // padded and packed layouts. Stats must match exactly with
    // fast-forward on vs off in every combination.
    for (FenceDesign design : allFenceDesigns) {
        for (uint64_t seed : {5ull, 17ull}) {
            for (bool packed : {false, true}) {
                FuzzConfig fc;
                fc.numThreads = 4;
                fc.numLocations = 8;
                fc.rounds = 8;
                fc.packLocations = packed;
                fc.seed = seed;
                FuzzSetup setup = buildFuzz(fc);

                RunOutcome outcomes[2];
                for (bool ff : {false, true}) {
                    SystemConfig cfg = smallConfig(design, 4);
                    cfg.fastForward = ff;
                    System sys(cfg);
                    for (unsigned t = 0; t < fc.numThreads; t++)
                        sys.loadProgram(
                            NodeId(t),
                            share(Program(setup.programs[t])));
                    outcomes[ff] = harvest(sys);
                }
                EXPECT_EQ(outcomes[1].cycles, outcomes[0].cycles)
                    << fenceDesignName(design) << " seed " << seed
                    << (packed ? " packed" : " padded");
                EXPECT_EQ(outcomes[1].statsJson, outcomes[0].statsJson)
                    << fenceDesignName(design) << " seed " << seed
                    << (packed ? " packed" : " padded");
            }
        }
    }
}
