#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hh"

using namespace asf;
using namespace asf::test;

TEST(SystemConfigT, ValidationCatchesNonsense)
{
    SystemConfig cfg;
    cfg.numCores = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "numCores");
    cfg = SystemConfig{};
    cfg.l1Assoc = 1;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "l1Assoc");
    cfg = SystemConfig{};
    cfg.wPlusTimeout = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "Timeout");
}

TEST(SystemConfigT, SummaryMentionsKeyParameters)
{
    SystemConfig cfg;
    cfg.design = FenceDesign::WPlus;
    std::string s = cfg.summary();
    EXPECT_NE(s.find("8 cores"), std::string::npos);
    EXPECT_NE(s.find("W+"), std::string::npos);
}

TEST(SystemT, DebugReadSeesBufferedStores)
{
    // A store still sitting in a write buffer must be visible to the
    // host-side debug read (the architecturally-latest value).
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("slowstore");
    a.li(1, 0x1000);
    a.li(2, 1);
    a.st(1, 0, 2);
    a.li(2, 2);
    a.st(1, 0, 2); // younger store to the same word
    a.compute(5);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    sys.run(3); // stores retired into the WB, not yet drained
    EXPECT_FALSE(sys.core(0).writeBuffer().empty());
    EXPECT_EQ(sys.debugReadWord(0x1000), 2u);
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x1000), 2u);
}

TEST(SystemT, BreakdownSumsToElapsedCycles)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    sys.loadProgram(1, share(loadProgram(0x2000, 0x3000)));
    runToCompletion(sys);
    CycleBreakdown b = sys.breakdown();
    // Every core classifies every cycle exactly once.
    EXPECT_EQ(b.total(), 2 * sys.now());
}

TEST(SystemT, ResetStatsClearsCountersButNotState)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    sys.loadProgram(0, share(storeProgram(0x1000, 42)));
    runToCompletion(sys);
    EXPECT_GT(sys.core(0).stats().get("instrRetired"), 0u);
    sys.resetStats();
    EXPECT_EQ(sys.core(0).stats().get("instrRetired"), 0u);
    EXPECT_EQ(sys.guestCounter(1), 0u);
    // Memory state survives the reset.
    EXPECT_EQ(sys.debugReadWord(0x1000), 42u);
}

TEST(SystemT, RunReturnsMaxCyclesWhenBudgetExhausted)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("forever");
    a.bind("loop");
    a.li(1, 0x1000);
    a.ld(2, 1, 0);
    a.jmp("loop");
    sys.loadProgram(0, share(a.finish()));
    EXPECT_EQ(sys.run(5000), System::RunResult::MaxCycles);
    EXPECT_EQ(sys.now(), 5000u);
    // The budget composes across calls.
    EXPECT_EQ(sys.run(1000), System::RunResult::MaxCycles);
    EXPECT_EQ(sys.now(), 6000u);
}

TEST(SystemT, CoreWithoutProgramIsIdle)
{
    System sys(smallConfig(FenceDesign::SPlus, 4));
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    // Cores 1-3 have no program; the system still quiesces.
    runToCompletion(sys);
    EXPECT_TRUE(sys.core(3).done());
}

TEST(SystemT, DumpStatsEmitsGroupedCounters)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    sys.loadProgram(0, share(storeProgram(0x1000, 1)));
    runToCompletion(sys);
    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core0.instrRetired"), std::string::npos);
    EXPECT_NE(out.find("noc.packets"), std::string::npos);
    // Zero-valued counters are suppressed.
    EXPECT_EQ(out.find("wPlusRecoveries"), std::string::npos);
}

TEST(SystemT, BadCoreIdPanics)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    EXPECT_DEATH(sys.core(7), "bad core id");
}

TEST(SystemT, GuestCountersSumAcrossCores)
{
    System sys(smallConfig(FenceDesign::SPlus, 3));
    Assembler a("markers");
    a.mark(42);
    a.halt();
    auto p = share(a.finish());
    for (int i = 0; i < 3; i++)
        sys.loadProgram(i, p);
    runToCompletion(sys);
    EXPECT_EQ(sys.guestCounter(42), 3u);
    EXPECT_EQ(sys.guestCounter(43), 0u);
}
