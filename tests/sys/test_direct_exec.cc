/**
 * The direct-execution invariant: block-batched burst interpretation is
 * a host-side optimization only, and must leave every simulated
 * observable — final cycle count, retired instructions, and the
 * complete stats JSON dump — bit-identical to a cycle-by-cycle run.
 * Unlike fast-forward (which only skips provably inert cycles), the
 * burst interpreter re-implements the per-cycle semantics of pure
 * compute regions, so it is checked on workloads that actually mutate
 * architectural and memory state inside bursts: the busy-spin kernel
 * (where batching demonstrably engages), the randomized fuzz corpus,
 * and all four synthesis kernels (Dekker, bakery, TLRW, THE deque)
 * across every fence design.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../helpers.hh"
#include "prog/fuzz.hh"
#include "runtime/bakery.hh"
#include "runtime/dekker.hh"
#include "runtime/layout.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "runtime/the_deque.hh"
#include "runtime/tlrw.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;
using namespace asf::regs;

namespace
{

/** The three run-loop modes System::run can arbitrate between. */
enum class Mode
{
    Exact,       ///< cycle-by-cycle ticking only
    FastForward, ///< idle-cycle skipping (PR 2)
    DirectExec,  ///< fast-forward + block-batched bursts
};

SystemConfig
modeConfig(FenceDesign design, unsigned cores, Mode m)
{
    SystemConfig cfg = smallConfig(design, cores);
    cfg.fastForward = m != Mode::Exact;
    cfg.directExec = m == Mode::DirectExec;
    return cfg;
}

struct RunOutcome
{
    Tick cycles = 0;
    uint64_t instrRetired = 0;
    uint64_t directExecutedCycles = 0;
    std::string statsJson;
};

/** Run `sys` to completion and harvest everything the invariant covers. */
RunOutcome
harvest(System &sys)
{
    runToCompletion(sys);
    RunOutcome out;
    out.cycles = sys.now();
    out.instrRetired = sys.totalInstrRetired();
    out.directExecutedCycles = sys.directExecutedCycles();
    std::ostringstream os;
    sys.dumpStatsJson(os);
    out.statsJson = os.str();
    return out;
}

void
expectIdentical(const RunOutcome &got, const RunOutcome &want,
                const std::string &what)
{
    EXPECT_EQ(got.cycles, want.cycles) << what;
    EXPECT_EQ(got.instrRetired, want.instrRetired) << what;
    EXPECT_EQ(got.statsJson, want.statsJson)
        << what << ": direct execution changed a simulated statistic";
}

/** The microbench busy-spin kernel: a never-idle ld/add/st/count loop
 *  whose body is all batchable instruction kinds. */
Program
spinProgram(int64_t iters)
{
    Assembler a("spin");
    a.li(4, 0);
    a.li(5, iters);
    a.bind("loop");
    a.ld(2, 1, 0);
    a.addi(2, 2, 1);
    a.st(1, 0, 2);
    a.addi(4, 4, 1);
    a.blt(4, 5, "loop");
    a.halt();
    return a.finish();
}

/** TLRW kernel: n write-locked increments of data[0] (clone of the
 *  runtime test's writer, contended here by every core). */
Program
tlrwWriterProgram(const TlrwTable &table, int n)
{
    Assembler a("tlrw_writer");
    a.li(s0, n);
    a.li(env0, int64_t(table.orecBase));
    a.li(env1, int64_t(table.dataBase));
    a.bind("loop");
    a.li(a4, int64_t(table.orecAddr(0)));
    emitTlrwWriteAcquire(a, a4, "wabort", t0, t1, t2, t3);
    a.li(a5, int64_t(table.dataAddr(0)));
    a.ld(t0, a5, 0);
    a.addi(t0, t0, 1);
    a.st(a5, 0, t0);
    emitTlrwWriteRelease(a, a4, t0);
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.halt();
    a.bind("wabort");
    a.compute(30);
    a.jmp("loop");
    return a.finish();
}

/** Deque owner: take until empty, summing tasks into [res]. */
Program
dequeOwnerProgram(const TheDeque &q, Addr res)
{
    Assembler a("owner");
    a.li(env0, int64_t(q.base));
    a.li(s0, 0);
    a.li(s9, int64_t(dequeEmpty));
    a.bind("loop");
    emitTake(a, q, env0, a0, t0, t1, t2, t3);
    a.beq(a0, s9, "done");
    a.add(s0, s0, a0);
    a.jmp("loop");
    a.bind("done");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s0);
    a.halt();
    return a.finish();
}

/** Deque thief: bounded steal attempts, summing tasks into [res]. */
Program
dequeThiefProgram(const TheDeque &q, Addr res, unsigned attempts)
{
    Assembler a("thief");
    a.li(env0, int64_t(q.base));
    a.li(s0, 0);
    a.li(s1, int64_t(attempts));
    a.li(s9, int64_t(dequeEmpty));
    a.bind("loop");
    emitSteal(a, q, env0, a0, t0, t1, t2, t3);
    a.beq(a0, s9, "next");
    a.add(s0, s0, a0);
    a.bind("next");
    a.addi(s1, s1, -1);
    a.li(t0, 0);
    a.blt(t0, s1, "loop");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s0);
    a.halt();
    return a.finish();
}

} // namespace

TEST(DirectExec, BusySpinThreeModesBitIdentical)
{
    // The workload direct execution exists for: a compute-bound spin
    // that fast-forward cannot touch. All three modes must agree on
    // every simulated observable, and the burst path must actually
    // engage or the test is vacuous.
    RunOutcome outcomes[3];
    for (Mode m : {Mode::Exact, Mode::FastForward, Mode::DirectExec}) {
        System sys(modeConfig(FenceDesign::SPlus, 2, m));
        auto prog = share(spinProgram(4000));
        for (unsigned i = 0; i < 2; i++) {
            sys.loadProgram(NodeId(i), prog);
            sys.core(NodeId(i)).setReg(1, 0x1000 + Addr(i) * 512);
        }
        outcomes[unsigned(m)] = harvest(sys);
    }
    const RunOutcome &exact = outcomes[0];
    const RunOutcome &ff = outcomes[1];
    const RunOutcome &direct = outcomes[2];

    EXPECT_EQ(exact.directExecutedCycles, 0u);
    EXPECT_EQ(ff.directExecutedCycles, 0u);
    EXPECT_GT(direct.directExecutedCycles, 0u)
        << "direct execution never engaged on a busy-spin workload";

    expectIdentical(ff, exact, "fast-forward vs exact");
    expectIdentical(direct, exact, "direct-exec vs exact");
}

TEST(DirectExec, FuzzCorpusBitIdenticalAcrossDesigns)
{
    // Randomized fence-disciplined programs: every design, two seeds,
    // padded and packed layouts. Stats must match exactly with direct
    // execution on vs off in every combination. (Fast-forward vs exact
    // is already covered by test_fast_forward.cc; both runs here keep
    // fast-forward on so the delta isolates the burst interpreter.)
    for (FenceDesign design : allFenceDesigns) {
        for (uint64_t seed : {5ull, 17ull}) {
            for (bool packed : {false, true}) {
                FuzzConfig fc;
                fc.numThreads = 4;
                fc.numLocations = 8;
                fc.rounds = 8;
                fc.packLocations = packed;
                fc.seed = seed;
                FuzzSetup setup = buildFuzz(fc);

                RunOutcome outcomes[2];
                for (bool direct : {false, true}) {
                    System sys(modeConfig(design, 4,
                                          direct ? Mode::DirectExec
                                                 : Mode::FastForward));
                    for (unsigned t = 0; t < fc.numThreads; t++)
                        sys.loadProgram(
                            NodeId(t),
                            share(Program(setup.programs[t])));
                    outcomes[direct] = harvest(sys);
                }
                std::ostringstream what;
                what << fenceDesignName(design) << " seed " << seed
                     << (packed ? " packed" : " padded");
                expectIdentical(outcomes[1], outcomes[0], what.str());
            }
        }
    }
}

TEST(DirectExec, DekkerKernelBitIdenticalAcrossDesigns)
{
    for (FenceDesign design : allFenceDesigns) {
        const unsigned iters = 40;
        RunOutcome outcomes[2];
        for (bool direct : {false, true}) {
            System sys(modeConfig(design, 2,
                                  direct ? Mode::DirectExec
                                         : Mode::FastForward));
            GuestLayout layout;
            DekkerLayout lay = allocDekker(layout);
            sys.loadProgram(0,
                            share(buildDekkerProgram(lay, 0, iters, 0)));
            sys.loadProgram(1,
                            share(buildDekkerProgram(lay, 1, iters, 0)));
            outcomes[direct] = harvest(sys);
            // Mutual exclusion must survive burst batching too.
            EXPECT_EQ(sys.debugReadWord(lay.counterAddr), 2 * iters)
                << fenceDesignName(design)
                << (direct ? " direct" : " exact");
        }
        expectIdentical(outcomes[1], outcomes[0],
                        std::string("dekker ") + fenceDesignName(design));
    }
}

TEST(DirectExec, BakeryKernelBitIdenticalAcrossDesigns)
{
    for (FenceDesign design : allFenceDesigns) {
        const unsigned threads = 3;
        const unsigned iters = 12;
        RunOutcome outcomes[2];
        for (bool direct : {false, true}) {
            System sys(modeConfig(design, threads,
                                  direct ? Mode::DirectExec
                                         : Mode::FastForward));
            GuestLayout layout;
            BakeryLayout lay = allocBakery(layout, threads);
            for (unsigned i = 0; i < threads; i++) {
                sys.loadProgram(
                    NodeId(i),
                    share(buildBakeryProgram(lay, i, iters, 20, 0)));
                sys.core(NodeId(i)).setReg(regs::tid, i);
                sys.core(NodeId(i)).setReg(regs::nthreads, threads);
            }
            outcomes[direct] = harvest(sys);
            EXPECT_EQ(sys.debugReadWord(lay.counterAddr),
                      uint64_t(threads) * iters)
                << fenceDesignName(design)
                << (direct ? " direct" : " exact");
        }
        expectIdentical(outcomes[1], outcomes[0],
                        std::string("bakery ") + fenceDesignName(design));
    }
}

TEST(DirectExec, TlrwKernelBitIdenticalAcrossDesigns)
{
    for (FenceDesign design : allFenceDesigns) {
        const int iters = 10;
        RunOutcome outcomes[2];
        for (bool direct : {false, true}) {
            System sys(modeConfig(design, 2,
                                  direct ? Mode::DirectExec
                                         : Mode::FastForward));
            GuestLayout layout;
            TlrwTable table = allocTlrwTable(layout, 4, 2);
            auto prog = share(tlrwWriterProgram(table, iters));
            sys.loadProgram(0, prog);
            sys.loadProgram(1, prog);
            outcomes[direct] = harvest(sys);
            EXPECT_EQ(sys.debugReadWord(table.dataAddr(0)),
                      uint64_t(2 * iters))
                << fenceDesignName(design)
                << (direct ? " direct" : " exact");
        }
        expectIdentical(outcomes[1], outcomes[0],
                        std::string("tlrw ") + fenceDesignName(design));
    }
}

TEST(DirectExec, TheDequeKernelBitIdenticalAcrossDesigns)
{
    for (FenceDesign design : allFenceDesigns) {
        std::vector<uint64_t> tasks;
        uint64_t expect = 0;
        for (uint64_t i = 1; i <= 24; i++) {
            tasks.push_back(i);
            expect += i;
        }
        RunOutcome outcomes[2];
        for (bool direct : {false, true}) {
            System sys(modeConfig(design, 2,
                                  direct ? Mode::DirectExec
                                         : Mode::FastForward));
            GuestLayout layout;
            TheDeque q = allocTheDeque(layout, 64);
            seedDeque(sys.memory(), q, tasks);
            sys.loadProgram(0, share(dequeOwnerProgram(q, 0x8000)));
            sys.loadProgram(1, share(dequeThiefProgram(q, 0x8040, 120)));
            outcomes[direct] = harvest(sys);
            EXPECT_EQ(sys.debugReadWord(0x8000) +
                          sys.debugReadWord(0x8040),
                      expect)
                << "task lost or duplicated under "
                << fenceDesignName(design)
                << (direct ? " direct" : " exact");
        }
        expectIdentical(outcomes[1], outcomes[0],
                        std::string("deque ") + fenceDesignName(design));
    }
}
