/**
 * Directed tests of WeeFence-specific machinery: multi-module demotion,
 * lazy GRT binding with Private Access Filtering, Remote-PS stalls with
 * re-check probes, and the false-sharing watchdog.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "mem/address.hh"

using namespace asf;
using namespace asf::test;

TEST(WeeBehavior, MultiGranulePendingSetDemotesToStrong)
{
    System sys(smallConfig(FenceDesign::Wee, 4));
    Assembler a("multimod");
    a.li(1, 0x1000); // granule of node 0 (0x1000/512 = 8, 8%4 = 0)
    a.li(2, 0x1200); // granule of node 1
    a.li(3, 1);
    a.st(1, 0, 3);
    a.st(2, 0, 3); // pending set spans two modules
    a.fence(FenceRole::Critical);
    a.ld(4, 1, 0x40);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.core(0).stats().get("weeMultiModuleDemotions"), 1u);
}

TEST(WeeBehavior, SingleGranulePendingSetStaysWeak)
{
    System sys(smallConfig(FenceDesign::Wee, 4));
    Assembler a("onemod");
    a.li(1, 0x1000);
    a.li(3, 1);
    a.st(1, 0, 3);
    a.st(1, 32, 3); // same granule
    a.fence(FenceRole::Critical);
    a.ld(4, 1, 0x40); // same granule: wf path
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.core(0).stats().get("weeMultiModuleDemotions"), 0u);
    EXPECT_EQ(sys.core(0).stats().get("fencesWee"), 1u);
}

TEST(WeeBehavior, PrivateFilteringEnablesLazyBinding)
{
    // All pending stores private -> nothing deposited; the fence binds
    // its GRT module to the first post-fence load's home and proceeds
    // weak even though the stores span granules.
    SystemConfig cfg = smallConfig(FenceDesign::Wee, 4);
    System sys(cfg);
    Addr priv_lo = 0x100000, priv_hi = 0x102000;
    sys.core(0).setPrivateChecker(
        [=](Addr a) { return a >= priv_lo && a < priv_hi; });
    Assembler a("paf");
    a.li(1, int64_t(priv_lo));
    a.li(2, 1);
    a.st(1, 0, 2);
    a.st(1, 0x600, 2); // different granule, but private
    a.fence(FenceRole::Critical);
    a.li(3, 0x1000);
    a.ld(4, 3, 0); // shared load: binds the GRT module lazily
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.core(0).stats().get("weeMultiModuleDemotions"), 0u);
    uint64_t deposits = 0;
    for (unsigned n = 0; n < 4; n++)
        deposits += sys.grt(NodeId(n)).stats().get("deposits");
    EXPECT_EQ(deposits, 1u); // the lazy (empty) deposit
}

TEST(WeeBehavior, RemotePsStallsConflictingLoad)
{
    // Two threads, same-granule x and y so the Remote PS mechanism
    // engages: whoever deposits second sees the other's pending store
    // and must stall its conflicting post-fence load (no SC violation,
    // and at least one GrtCheck round trip happens).
    System sys(smallConfig(FenceDesign::Wee, 2));
    // Same granule: x and y both home node 0.
    Addr x = 0x1000, y = 0x1020;
    auto make = [&](Addr st_a, Addr ld_a, Addr res) {
        Assembler a("weesb");
        a.li(1, int64_t(st_a));
        a.li(2, int64_t(ld_a));
        a.li(3, int64_t(res));
        a.ld(4, 2, 0); // warm the load target
        a.compute(600);
        a.li(4, 1);
        a.st(1, 0, 4);
        a.fence(FenceRole::Critical);
        a.ld(5, 2, 0);
        a.st(3, 0, 5);
        a.halt();
        return share(a.finish());
    };
    sys.loadProgram(0, make(x, y, 0x3000));
    sys.loadProgram(1, make(y, x, 0x3020));
    runToCompletion(sys);
    uint64_t r0 = sys.debugReadWord(0x3000);
    uint64_t r1 = sys.debugReadWord(0x3020);
    EXPECT_FALSE(r0 == 0 && r1 == 0) << "SC violation under Wee";
}

TEST(WeeBehavior, GrtClearedAfterEveryFence)
{
    System sys(smallConfig(FenceDesign::Wee, 4));
    Assembler a("clean");
    a.li(1, 0x1000);
    a.li(2, 1);
    for (int i = 0; i < 5; i++) {
        a.st(1, int64_t(i) * 8, 2);
        a.fence(FenceRole::Critical);
        a.ld(3, 1, 0);
    }
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    for (unsigned n = 0; n < 4; n++)
        EXPECT_EQ(sys.grt(NodeId(n)).numDeposits(), 0u);
}

TEST(WeeBehavior, WatchdogBreaksFalseSharingCycle)
{
    // Two unrelated wee fences whose pre/post accesses collide only by
    // false sharing (Figure 4b): the GRT sees the word-level truth but
    // the line-level BS bounce cycle persists; the watchdog must demote
    // and the system must finish.
    SystemConfig cfg = smallConfig(FenceDesign::Wee, 4);
    cfg.weeTimeout = 400; // fire quickly for the test
    System sys(cfg);
    Addr lineA = 0x1200, lineB = 0x1400; // homes: nodes 1 and 2
    auto make = [&](Addr st_a, Addr ld_a, Addr res) {
        Assembler a("weefs");
        a.li(1, int64_t(st_a));
        a.li(2, int64_t(ld_a));
        a.li(3, int64_t(res));
        a.ld(4, 2, 0);
        a.compute(600);
        a.li(4, 1);
        a.st(1, 0, 4);
        a.fence(FenceRole::Critical);
        a.ld(5, 2, 0);
        a.st(3, 0, 5);
        a.halt();
        return share(a.finish());
    };
    // T0: store word 0 of A, load word 0 of B; T3: store word 1 of B,
    // load word 1 of A.
    sys.loadProgram(0, make(lineA, lineB, 0x3000));
    sys.loadProgram(3, make(lineB + 8, lineA + 8, 0x3020));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(lineA), 1u);
    EXPECT_EQ(sys.debugReadWord(lineB + 8), 1u);
}
