/**
 * Three-thread fence groups (paper Figures 1e/1f and 3c): a potential
 * dependence cycle through three threads needs a fence in each, and an
 * asymmetric group needs only ONE of them strong. Each design is run
 * with the strongest role assignment it supports:
 *
 *   S+   sf sf sf            WS+  wf sf sf (at most one weak)
 *   SW+  wf wf sf (Fig 3c)   W+   wf wf wf
 *   Wee  wf wf wf
 *
 * The forbidden outcome is the all-zero read cycle.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"

using namespace asf;
using namespace asf::test;

namespace
{

Program
cycleThread(Addr st_a, Addr ld_a, Addr res, FenceRole role)
{
    Assembler a("cycle3");
    a.li(1, int64_t(st_a));
    a.li(2, int64_t(ld_a));
    a.li(3, int64_t(res));
    a.ld(4, 2, 0); // warm the load target
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(role);
    a.ld(5, 2, 0);
    a.st(3, 0, 5);
    a.halt();
    return a.finish();
}

struct ThreeParam
{
    FenceDesign design;
    FenceRole roles[3];
    const char *name;
};

void
runCycle(const ThreeParam &p)
{
    System sys(smallConfig(p.design, 4));
    // x, y, z in separate granules: remote homes, symmetric timing.
    Addr x = 0x1200, y = 0x1400, z = 0x1600;
    Addr res[3] = {0x3000, 0x3040, 0x3080};
    // T0: wr x, rd y; T1: wr y, rd z; T2: wr z, rd x (Figure 1e).
    sys.loadProgram(0, share(cycleThread(x, y, res[0], p.roles[0])));
    sys.loadProgram(1, share(cycleThread(y, z, res[1], p.roles[1])));
    sys.loadProgram(2, share(cycleThread(z, x, res[2], p.roles[2])));
    auto r = sys.run(5'000'000);
    ASSERT_EQ(r, System::RunResult::AllDone)
        << p.name << " deadlocked";
    uint64_t r0 = sys.debugReadWord(res[0]);
    uint64_t r1 = sys.debugReadWord(res[1]);
    uint64_t r2 = sys.debugReadWord(res[2]);
    EXPECT_FALSE(r0 == 0 && r1 == 0 && r2 == 0)
        << "three-thread SC violation under " << p.name;
    // All stores completed.
    EXPECT_EQ(sys.debugReadWord(x), 1u);
    EXPECT_EQ(sys.debugReadWord(y), 1u);
    EXPECT_EQ(sys.debugReadWord(z), 1u);
}

constexpr FenceRole C = FenceRole::Critical;
constexpr FenceRole N = FenceRole::Noncritical;

} // namespace

TEST(ThreeThreadGroups, AllStrong)
{
    runCycle({FenceDesign::SPlus, {N, N, N}, "S+"});
}

TEST(ThreeThreadGroups, WSPlusOneWeakTwoStrong)
{
    runCycle({FenceDesign::WSPlus, {C, N, N}, "WS+ (wf sf sf)"});
}

TEST(ThreeThreadGroups, SWPlusTwoWeakOneStrong)
{
    // Exactly Figure 3c: two weak fences rescued by the one strong one.
    runCycle({FenceDesign::SWPlus, {C, C, N}, "SW+ (wf wf sf)"});
}

TEST(ThreeThreadGroups, WPlusAllWeak)
{
    runCycle({FenceDesign::WPlus, {C, C, C}, "W+ (wf wf wf)"});
}

TEST(ThreeThreadGroups, WeeAllWeak)
{
    runCycle({FenceDesign::Wee, {C, C, C}, "Wee"});
}

TEST(ThreeThreadGroups, SWPlusStrongFenceGuaranteesProgress)
{
    // The paper's progress argument for SW+: T2's sf never stalls on a
    // BS, its completion unchains T1, whose completion unchains T0.
    System sys(smallConfig(FenceDesign::SWPlus, 4));
    Addr x = 0x1200, y = 0x1400, z = 0x1600;
    sys.loadProgram(0, share(cycleThread(x, y, 0x3000, C)));
    sys.loadProgram(1, share(cycleThread(y, z, 0x3040, C)));
    sys.loadProgram(2, share(cycleThread(z, x, 0x3080, N)));
    runToCompletion(sys);
    // No W+-style recovery exists under SW+, so completion proves the
    // bounce chain resolved through the strong fence.
    uint64_t recoveries = 0;
    for (unsigned i = 0; i < 4; i++)
        recoveries += sys.core(NodeId(i)).stats().get("wPlusRecoveries");
    EXPECT_EQ(recoveries, 0u);
}
