#include <gtest/gtest.h>

#include "fence/grt.hh"

using namespace asf;

TEST(Grt, DepositFetchClear)
{
    Grt grt(0);
    grt.deposit(1, {0x1000, 0x2000});
    grt.deposit(2, {0x3000});
    EXPECT_TRUE(grt.hasDeposit(1));
    auto remote = grt.remotePendingSet(3);
    EXPECT_EQ(remote.size(), 3u);
    grt.clear(1);
    EXPECT_FALSE(grt.hasDeposit(1));
    EXPECT_EQ(grt.remotePendingSet(3).size(), 1u);
}

TEST(Grt, RemoteSetExcludesOwnDeposit)
{
    Grt grt(0);
    grt.deposit(1, {0x1000});
    grt.deposit(2, {0x2000});
    auto remote = grt.remotePendingSet(1);
    ASSERT_EQ(remote.size(), 1u);
    EXPECT_EQ(remote[0], 0x2000u);
}

TEST(Grt, BlocksOnlyForOtherCores)
{
    Grt grt(0);
    grt.deposit(1, {0x1000});
    EXPECT_TRUE(grt.blocks(2, 0x1000));
    EXPECT_FALSE(grt.blocks(1, 0x1000));
    EXPECT_FALSE(grt.blocks(2, 0x9000));
}

TEST(Grt, RedepositReplaces)
{
    Grt grt(0);
    grt.deposit(1, {0x1000});
    grt.deposit(1, {0x2000});
    EXPECT_FALSE(grt.blocks(2, 0x1000));
    EXPECT_TRUE(grt.blocks(2, 0x2000));
}

TEST(Grt, RemoteSetIsDeduplicated)
{
    Grt grt(0);
    grt.deposit(1, {0x1000, 0x1000});
    grt.deposit(2, {0x1000});
    EXPECT_EQ(grt.remotePendingSet(3).size(), 1u);
}
