#include <gtest/gtest.h>

#include "../helpers.hh"
#include "mem/address.hh"
#include "runtime/layout.hh"
#include "runtime/litmus.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

namespace
{

uint64_t
coreStat(System &sys, const char *name)
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < sys.numCores(); i++)
        sum += sys.core(NodeId(i)).stats().get(name);
    return sum;
}

/**
 * st mine = 1; wf; ld other -> res. Word-level control over the store
 * and load addresses lets tests build true- and false-sharing cycles.
 * `warm` > 0 pre-caches the load target and aligns the threads, so the
 * post-fence load hits while the pre-fence store misses - the timing the
 * paper's scenarios assume.
 */
Program
fencedPair(Addr st_addr, Addr ld_addr, Addr res, FenceRole role,
           unsigned warm = 0)
{
    Assembler a("pair");
    a.li(1, int64_t(st_addr));
    a.li(2, int64_t(ld_addr));
    a.li(3, int64_t(res));
    if (warm > 0) {
        a.ld(4, 2, 0);
        a.compute(int64_t(warm));
    }
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(role);
    a.ld(5, 2, 0);
    a.st(3, 0, 5);
    a.halt();
    return a.finish();
}

} // namespace

TEST(FenceSemantics, WeakFenceEliminatesStallThatStrongFencePays)
{
    // One thread, one cache-missing pre-fence store, one post-fence load:
    // sf must stall the load until the store drains, wf must not.
    auto stall_under = [](FenceDesign d) {
        System sys(smallConfig(d, 2));
        sys.loadProgram(0, share(fencedPair(0x1000, 0x2000, 0x3000,
                                            FenceRole::Critical, 600)));
        EXPECT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        return sys.core(0).stats().get("fenceStallCycles");
    };
    uint64_t sf_stall = stall_under(FenceDesign::SPlus);
    uint64_t wf_stall = stall_under(FenceDesign::WSPlus);
    EXPECT_GT(sf_stall, 100u);
    EXPECT_LT(wf_stall, sf_stall / 4);
}

TEST(FenceSemantics, StrongFenceCostMatchesPaperCalibration)
{
    // The paper measures ~200 cycles for a fence behind missing stores.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Assembler a("calib");
    a.li(1, 0x1000);
    a.ld(3, 1, 0x4000); // warm the post-fence load target
    a.li(2, 1);
    a.st(1, 0, 2);
    a.st(1, 8192, 2); // second missing line, different set
    a.fence(FenceRole::Critical);
    a.ld(3, 1, 0x4000);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    uint64_t stall = sys.core(0).stats().get("fenceStallCycles");
    EXPECT_GT(stall, 120u);
    EXPECT_LT(stall, 800u);
}

TEST(FenceSemantics, BypassSetBouncesConflictingWrite)
{
    // Core 0: wf with a pending (missing) store; its post-fence load of
    // y completes early and enters the BS. Core 1 then writes y: the
    // invalidation must bounce until core 0's fence completes - and the
    // store must still succeed afterwards.
    System sys(smallConfig(FenceDesign::WSPlus, 2));
    Addr x = 0x1000, y = 0x2000;
    sys.loadProgram(0, share(fencedPair(x, y, 0x3000,
                                        FenceRole::Critical, 600)));
    Assembler b("latewriter");
    b.li(1, int64_t(y));
    b.ld(2, 1, 0);  // warm y so the later store is a fast upgrade
    b.compute(650); // arrive just after core 0's load enters the BS
    b.li(2, 7);
    b.st(1, 0, 2);
    b.halt();
    sys.loadProgram(1, share(b.finish()));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "bsBounces"), 1u);
    EXPECT_GE(coreStat(sys, "storeNacks"), 1u);
    EXPECT_EQ(sys.debugReadWord(y), 7u); // write eventually landed
}

TEST(FenceSemantics, SpeculativeLoadSquashedByInvalidation)
{
    // Under S+ the post-fence load performs speculatively (reads 0),
    // gets invalidated by a remote write while the fence is pending,
    // and must re-perform - finally observing 1.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Addr x = 0x1000, y = 0x2000, res = 0x3000;
    sys.loadProgram(0, share(fencedPair(x, y, res,
                                        FenceRole::Critical, 600)));
    Assembler b("writer");
    b.li(1, int64_t(y));
    b.ld(2, 1, 0);
    b.compute(650); // write y while core 0's fence is still pending
    b.li(2, 1);
    b.st(1, 0, 2);
    b.halt();
    sys.loadProgram(1, share(b.finish()));
    runToCompletion(sys);
    EXPECT_GE(sys.core(0).stats().get("loadSquashes"), 1u);
    EXPECT_EQ(sys.debugReadWord(res), 1u);
}

TEST(FenceSemantics, WPlusRecoversFromGenuineDeadlock)
{
    // Figure 3a with no GRT: both threads weak-fence and each one's
    // pre-fence store bounces off the other's BS. W+ must time out,
    // roll back, and still produce an SC outcome. The threads sit at
    // opposite mesh corners with remote home nodes so both post-fence
    // loads are in their Bypass Sets before either invalidation lands.
    System sys(smallConfig(FenceDesign::WPlus, 4));
    Addr x = 0x1200, y = 0x1400; // homes: node 1 and node 2
    sys.loadProgram(0, share(fencedPair(x, y, 0x3000,
                                        FenceRole::Critical, 600)));
    sys.loadProgram(3, share(fencedPair(y, x, 0x3020,
                                        FenceRole::Critical, 600)));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "wPlusRecoveries"), 1u);
    uint64_t r0 = sys.debugReadWord(0x3000);
    uint64_t r1 = sys.debugReadWord(0x3020);
    EXPECT_FALSE(r0 == 0 && r1 == 0) << "SC violation escaped W+";
}

TEST(FenceSemantics, WSPlusOrderOperationResolvesFalseSharingCycle)
{
    // Figure 4b: two *unrelated* weak fences whose accesses collide only
    // through false sharing. The bouncing writes must be converted to
    // Order operations instead of deadlocking.
    System sys(smallConfig(FenceDesign::WSPlus, 4));
    Addr lineA = 0x1200, lineB = 0x1400; // remote homes (nodes 1, 2)
    // T0 stores word 0 of A, loads word 0 of B.
    // T1 (core 3) stores word 1 of B, loads word 1 of A.
    sys.loadProgram(0, share(fencedPair(lineA, lineB, 0x3000,
                                        FenceRole::Critical, 600)));
    sys.loadProgram(3, share(fencedPair(lineB + 8, lineA + 8, 0x3020,
                                        FenceRole::Critical, 600)));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "orderRequests"), 1u);
    uint64_t completed = 0;
    for (unsigned i = 0; i < sys.numCores(); i++)
        completed += sys.directory(NodeId(i)).stats().get("orderCompleted");
    EXPECT_GE(completed, 1u);
    // Both stores landed despite the monitored sharers.
    EXPECT_EQ(sys.debugReadWord(lineA), 1u);
    EXPECT_EQ(sys.debugReadWord(lineB + 8), 1u);
}

TEST(FenceSemantics, SWPlusConditionalOrderCompletesOnFalseSharing)
{
    System sys(smallConfig(FenceDesign::SWPlus, 4));
    Addr lineA = 0x1200, lineB = 0x1400; // remote homes (nodes 1, 2)
    sys.loadProgram(0, share(fencedPair(lineA, lineB, 0x3000,
                                        FenceRole::Critical, 600)));
    sys.loadProgram(3, share(fencedPair(lineB + 8, lineA + 8, 0x3020,
                                        FenceRole::Critical, 600)));
    runToCompletion(sys);
    // The word masks show pure false sharing, so no CO may fail.
    uint64_t failed = 0, completed = 0;
    for (unsigned i = 0; i < sys.numCores(); i++) {
        failed += sys.directory(NodeId(i)).stats().get("coFailed");
        completed +=
            sys.directory(NodeId(i)).stats().get("orderCompleted");
    }
    EXPECT_EQ(failed, 0u);
    EXPECT_GE(completed, 1u);
    EXPECT_EQ(sys.debugReadWord(lineA), 1u);
    EXPECT_EQ(sys.debugReadWord(lineB + 8), 1u);
}

TEST(FenceSemantics, SWPlusConditionalOrderBouncesOnTrueSharing)
{
    // Figure 4c flavor: T1's BS truly contains the word T0 writes, but
    // there is no cycle (T1's own pre-fence store is to an unrelated
    // location). The CO must fail while the true-sharing BS entry lives,
    // then complete.
    System sys(smallConfig(FenceDesign::SWPlus, 2));
    Addr x = 0x1000, z = 0x4000;
    // T1: st z; wf; ld x  -> BS holds x's word.
    sys.loadProgram(1, share(fencedPair(z, x, 0x3020,
                                        FenceRole::Critical, 600)));
    // T0 (late): st x -> true-share bounce against T1's BS, with a wf
    // following so the retry becomes a CO.
    Assembler a("t0");
    a.li(1, int64_t(x));
    a.ld(3, 1, 0); // share x so T1's warm-up also hits
    a.compute(650);
    a.li(2, 1);
    a.st(1, 0, 2);
    a.fence(FenceRole::Critical);
    a.ld(3, 1, 0x1000); // arbitrary post-fence load
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(x), 1u);
    // No deadlock and no SC breakage; bouncing happened.
    EXPECT_GE(coreStat(sys, "storeNacks"), 1u);
}

TEST(FenceSemantics, WeeFenceDepositsAndClearsGrt)
{
    System sys(smallConfig(FenceDesign::Wee, 2));
    sys.loadProgram(0, share(fencedPair(0x1000, 0x2000, 0x3000,
                                        FenceRole::Critical)));
    runToCompletion(sys);
    uint64_t deposits = 0;
    for (unsigned i = 0; i < sys.numCores(); i++)
        deposits += sys.grt(NodeId(i)).stats().get("deposits");
    EXPECT_GE(deposits, 1u);
    for (unsigned i = 0; i < sys.numCores(); i++)
        EXPECT_EQ(sys.grt(NodeId(i)).numDeposits(), 0u)
            << "GRT entry leaked";
}

TEST(FenceSemantics, FenceWithEmptyWriteBufferIsFree)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("freefence");
    a.fence(FenceRole::Critical);
    a.li(1, 0x1000);
    a.ld(2, 1, 0);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.core(0).stats().get("fencesInstant"), 1u);
    EXPECT_EQ(sys.core(0).stats().get("fencesCompleted"), 0u);
}

TEST(FenceSemantics, FenceCountsByResolvedKind)
{
    auto count = [](FenceDesign d, const char *stat) {
        System sys(smallConfig(d, 2));
        sys.loadProgram(0, share(fencedPair(0x1000, 0x2000, 0x3000,
                                            FenceRole::Critical)));
        sys.loadProgram(1, share(fencedPair(0x5000, 0x6000, 0x7000,
                                            FenceRole::Noncritical)));
        EXPECT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t sum = 0;
        for (unsigned i = 0; i < 2; i++)
            sum += sys.core(NodeId(i)).stats().get(stat);
        return sum;
    };
    EXPECT_EQ(count(FenceDesign::SPlus, "fencesStrong"), 2u);
    EXPECT_EQ(count(FenceDesign::WSPlus, "fencesWeak"), 1u);
    EXPECT_EQ(count(FenceDesign::WSPlus, "fencesStrong"), 1u);
    EXPECT_EQ(count(FenceDesign::WPlus, "fencesWeak"), 2u);
    EXPECT_EQ(count(FenceDesign::Wee, "fencesWee"), 2u);
}
