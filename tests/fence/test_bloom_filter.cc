#include <gtest/gtest.h>

#include "fence/bloom_filter.hh"

using namespace asf;

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter bf;
    for (Addr a = 0x1000; a < 0x1000 + 32 * 40; a += 32)
        bf.insert(a);
    for (Addr a = 0x1000; a < 0x1000 + 32 * 40; a += 32)
        EXPECT_TRUE(bf.mightContain(a));
}

TEST(BloomFilter, MostlyRejectsAbsentLines)
{
    BloomFilter bf;
    for (Addr a = 0x1000; a < 0x1000 + 32 * 8; a += 32)
        bf.insert(a);
    unsigned false_pos = 0;
    for (Addr a = 0x900000; a < 0x900000 + 32 * 1000; a += 32)
        if (bf.mightContain(a))
            false_pos++;
    EXPECT_LT(false_pos, 100u); // << 10% with 8 entries in 256 bits
}

TEST(BloomFilter, ClearResets)
{
    BloomFilter bf;
    bf.insert(0x1000);
    EXPECT_FALSE(bf.empty());
    bf.clear();
    EXPECT_TRUE(bf.empty());
    EXPECT_FALSE(bf.mightContain(0x1000));
}
