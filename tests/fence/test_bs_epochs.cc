#include <gtest/gtest.h>

#include "fence/bypass_set.hh"

using namespace asf;

TEST(BsEpochs, ClearUpToRemovesOldEpochsOnly)
{
    BypassSet bs(8);
    bs.insert(0x1000, 1);
    bs.insert(0x2000, 2);
    bs.insert(0x3000, 3);
    bs.clearUpTo(2);
    EXPECT_FALSE(bs.containsLine(0x1000));
    EXPECT_FALSE(bs.containsLine(0x2000));
    EXPECT_TRUE(bs.containsLine(0x3000));
    EXPECT_EQ(bs.size(), 1u);
}

TEST(BsEpochs, ReinsertBumpsEpochToYoungest)
{
    BypassSet bs(8);
    bs.insert(0x1000, 1);
    bs.insert(0x1008, 3); // same line, younger fence
    bs.clearUpTo(1);
    // The entry now belongs to fence 3 and must survive fence 1.
    EXPECT_TRUE(bs.containsLine(0x1000));
    bs.clearUpTo(3);
    EXPECT_FALSE(bs.containsLine(0x1000));
}

TEST(BsEpochs, BloomRebuiltAfterPartialClear)
{
    BypassSet bs(8);
    bs.insert(0x1000, 1);
    bs.insert(0x2000, 5);
    bs.clearUpTo(1);
    // 0x1000 must now be bloom-rejectable again (no stale positives
    // required, but no false negatives for the surviving entry).
    EXPECT_TRUE(bs.containsLine(0x2000));
    EXPECT_EQ(bs.match(0x2000, 0), BsMatch::TrueShare);
    EXPECT_EQ(bs.match(0x1000, 0), BsMatch::None);
}

TEST(BsEpochs, ClearUpToOnEmptySetIsNoop)
{
    BypassSet bs(4);
    bs.clearUpTo(100);
    EXPECT_TRUE(bs.empty());
}

TEST(BsEpochs, FullSetFreesCapacityAfterEpochClear)
{
    BypassSet bs(2);
    EXPECT_TRUE(bs.insert(0x1000, 1));
    EXPECT_TRUE(bs.insert(0x2000, 2));
    EXPECT_FALSE(bs.insert(0x3000, 3));
    bs.clearUpTo(1);
    EXPECT_TRUE(bs.insert(0x3000, 3));
    EXPECT_TRUE(bs.containsLine(0x2000));
    EXPECT_TRUE(bs.containsLine(0x3000));
}
