/**
 * Paper Section 5.3 / Figure 7: code that contains a *benign* SC
 * violation to start with (cross-released locks: wr L1 ... rd L2 vs
 * wr L2 ... rd L1 with unrelated weak fences in between).
 *
 * The paper's exact claim, reproduced here as executable behavior:
 *   "If these wfs are implemented as SW+, the system may deadlock as
 *    both wfs attempt Conditional Order operations. On the other hand,
 *    if they are implemented as either WS+ or W+, the code executes
 *    correctly."
 */

#include <gtest/gtest.h>

#include "../helpers.hh"

using namespace asf;
using namespace asf::test;

namespace
{

/**
 * wr mine; <unrelated wf with its own pending store>; rd other.
 * `mine`/`other` form the pre-existing race cycle of Figure 7c; the
 * fence's own pending store is to an unrelated private location.
 */
Program
figure7Thread(Addr mine, Addr other, Addr unrelated, Addr res)
{
    Assembler a("fig7");
    a.li(1, int64_t(mine));
    a.li(2, int64_t(other));
    a.li(3, int64_t(unrelated));
    a.li(4, int64_t(res));
    a.ld(5, 2, 0); // warm the rd target
    a.compute(600);
    a.li(5, 0);
    a.st(1, 0, 5); // wr mine (the "release")
    a.li(5, 1);
    a.st(3, 0, 5); // unrelated pre-fence store (keeps the wf pending)
    a.fence(FenceRole::Critical); // the unrelated wf
    a.ld(6, 2, 0); // rd other (the "acquire" probe) -> enters the BS
    a.st(4, 0, 6);
    a.halt();
    return a.finish();
}

System::RunResult
runFigure7(FenceDesign design, Tick budget)
{
    System sys(smallConfig(design, 4));
    Addr l1 = 0x1200, l2 = 0x1400;     // the racing pair
    Addr u0 = 0x200000, u1 = 0x200200; // unrelated fence work
    sys.loadProgram(0,
                    share(figure7Thread(l1, l2, u0, 0x3000)));
    sys.loadProgram(3,
                    share(figure7Thread(l2, l1, u1, 0x3020)));
    return sys.run(budget);
}

} // namespace

TEST(PreexistingScv, WSPlusExecutesCorrectly)
{
    EXPECT_EQ(runFigure7(FenceDesign::WSPlus, 2'000'000),
              System::RunResult::AllDone);
}

TEST(PreexistingScv, WPlusExecutesCorrectlyViaRecovery)
{
    EXPECT_EQ(runFigure7(FenceDesign::WPlus, 2'000'000),
              System::RunResult::AllDone);
}

TEST(PreexistingScv, SPlusAndWeeExecuteCorrectly)
{
    EXPECT_EQ(runFigure7(FenceDesign::SPlus, 2'000'000),
              System::RunResult::AllDone);
    EXPECT_EQ(runFigure7(FenceDesign::Wee, 2'000'000),
              System::RunResult::AllDone);
}

TEST(PreexistingScv, SWPlusDeadlocksAsThePaperWarns)
{
    // Both stores are true-sharing bounced by the other thread's BS;
    // both Conditional Orders keep failing; neither fence can complete.
    // This is the documented limitation, not a bug: SW+ assumes the
    // input code is SC to start with (paper Section 5.3).
    EXPECT_EQ(runFigure7(FenceDesign::SWPlus, 300'000),
              System::RunResult::MaxCycles);
}
