#include <gtest/gtest.h>

#include "fence/fence_kind.hh"

using namespace asf;

TEST(FenceKind, SPlusIsAllStrong)
{
    EXPECT_EQ(resolveFenceKind(FenceDesign::SPlus, FenceRole::Critical),
              FenceKind::Strong);
    EXPECT_EQ(resolveFenceKind(FenceDesign::SPlus, FenceRole::Noncritical),
              FenceKind::Strong);
}

TEST(FenceKind, AsymmetricDesignsSplitByRole)
{
    for (auto d : {FenceDesign::WSPlus, FenceDesign::SWPlus}) {
        EXPECT_EQ(resolveFenceKind(d, FenceRole::Critical),
                  FenceKind::Weak);
        EXPECT_EQ(resolveFenceKind(d, FenceRole::Noncritical),
                  FenceKind::Strong);
    }
}

TEST(FenceKind, WPlusIsAllWeak)
{
    EXPECT_EQ(resolveFenceKind(FenceDesign::WPlus, FenceRole::Critical),
              FenceKind::Weak);
    EXPECT_EQ(resolveFenceKind(FenceDesign::WPlus, FenceRole::Noncritical),
              FenceKind::Weak);
}

TEST(FenceKind, WeeIsAllWeeFence)
{
    EXPECT_EQ(resolveFenceKind(FenceDesign::Wee, FenceRole::Critical),
              FenceKind::WeeWeak);
    EXPECT_EQ(resolveFenceKind(FenceDesign::Wee, FenceRole::Noncritical),
              FenceKind::WeeWeak);
}

TEST(FenceKind, NamesRoundTripThroughParser)
{
    for (FenceDesign d : allFenceDesigns)
        EXPECT_EQ(parseFenceDesign(fenceDesignName(d)), d);
    EXPECT_EQ(parseFenceDesign("ws+"), FenceDesign::WSPlus);
    EXPECT_EQ(parseFenceDesign("WEE"), FenceDesign::Wee);
}

TEST(FenceKind, UnknownNameIsFatal)
{
    EXPECT_EXIT(parseFenceDesign("zz+"), ::testing::ExitedWithCode(1),
                "unknown fence design");
}
