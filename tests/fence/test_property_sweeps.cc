/**
 * Property-based sweeps: randomly generated fence-disciplined concurrent
 * programs must, under EVERY fence design,
 *   - run to completion (no deadlock, no protocol hang),
 *   - never fabricate values (token integrity),
 *   - leave exactly the program-order-final value in single-writer
 *     locations,
 *   - be bit-for-bit deterministic for a fixed seed.
 * The sweep crosses all five designs with several seeds and both padded
 * and packed (false-sharing) layouts.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "prog/fuzz.hh"

using namespace asf;
using namespace asf::test;

namespace
{

struct SweepParam
{
    FenceDesign design;
    uint64_t seed;
    bool packed;
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::string n = fenceDesignName(info.param.design);
    for (auto &c : n)
        if (c == '+')
            c = 'p';
    return n + "_seed" + std::to_string(info.param.seed) +
           (info.param.packed ? "_packed" : "_padded");
}

std::vector<SweepParam>
allParams()
{
    std::vector<SweepParam> out;
    for (FenceDesign d : allFenceDesigns)
        for (uint64_t seed : {11ull, 22ull, 33ull})
            for (bool packed : {false, true})
                out.push_back({d, seed, packed});
    return out;
}

class FuzzSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    FuzzConfig
    baseConfig() const
    {
        FuzzConfig cfg;
        cfg.numThreads = 4;
        cfg.numLocations = 8;
        cfg.rounds = 10;
        cfg.seed = GetParam().seed;
        cfg.packLocations = GetParam().packed;
        return cfg;
    }

    System
    makeSystem() const
    {
        SystemConfig sc;
        sc.numCores = 4;
        sc.design = GetParam().design;
        return System(sc);
    }

    void
    load(System &sys, const FuzzSetup &setup)
    {
        for (unsigned t = 0; t < setup.cfg.numThreads; t++)
            sys.loadProgram(NodeId(t),
                            share(Program(setup.programs[t])));
    }
};

} // namespace

TEST_P(FuzzSweep, CompletesWithTokenIntegrity)
{
    FuzzSetup setup = buildFuzz(baseConfig());
    System sys = makeSystem();
    load(sys, setup);
    ASSERT_EQ(sys.run(5'000'000), System::RunResult::AllDone)
        << "fuzz program hung";
    for (unsigned loc = 0; loc < setup.cfg.numLocations; loc++) {
        uint64_t v = sys.debugReadWord(setup.locAddr(loc));
        EXPECT_TRUE(FuzzSetup::tokenValid(v, setup.cfg.numThreads))
            << "fabricated value " << v << " at location " << loc;
    }
    // Every thread performed all its loads.
    for (unsigned t = 0; t < setup.cfg.numThreads; t++)
        EXPECT_GT(sys.debugReadWord(setup.loadCountAddr(t)), 0u);
}

TEST_P(FuzzSweep, SingleWriterFinalStateExact)
{
    FuzzConfig cfg = baseConfig();
    cfg.singleWriterPerLoc = true;
    FuzzSetup setup = buildFuzz(cfg);
    System sys = makeSystem();
    load(sys, setup);
    ASSERT_EQ(sys.run(5'000'000), System::RunResult::AllDone);
    for (unsigned loc = 0; loc < cfg.numLocations; loc++)
        EXPECT_EQ(sys.debugReadWord(setup.locAddr(loc)),
                  setup.expectedFinal[loc])
            << "wrong final value at single-writer location " << loc;
}

TEST_P(FuzzSweep, DeterministicChecksums)
{
    auto run_once = [&](std::vector<uint64_t> &sums) {
        FuzzSetup setup = buildFuzz(baseConfig());
        System sys = makeSystem();
        load(sys, setup);
        ASSERT_EQ(sys.run(5'000'000), System::RunResult::AllDone);
        for (unsigned t = 0; t < setup.cfg.numThreads; t++)
            sums.push_back(sys.debugReadWord(setup.checksumAddr(t)));
    };
    std::vector<uint64_t> first, second;
    run_once(first);
    run_once(second);
    EXPECT_EQ(first, second) << "simulation is nondeterministic";
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSweep,
                         ::testing::ValuesIn(allParams()), paramName);
