#include <gtest/gtest.h>

#include "fence/bypass_set.hh"
#include "mem/address.hh"

using namespace asf;

TEST(BypassSet, InsertAndLineMatch)
{
    BypassSet bs(32);
    EXPECT_TRUE(bs.insert(0x1008));
    EXPECT_TRUE(bs.containsLine(0x1000));
    EXPECT_FALSE(bs.containsLine(0x1020));
}

TEST(BypassSet, LineGranularityMatchIsTrueShare)
{
    BypassSet bs(32);
    bs.insert(0x1008); // word 1
    // Zero request mask = line-granularity request (WS+/W+).
    EXPECT_EQ(bs.match(0x1000, 0), BsMatch::TrueShare);
    EXPECT_EQ(bs.match(0x1020, 0), BsMatch::None);
}

TEST(BypassSet, WordGranularityDiscriminatesFalseSharing)
{
    BypassSet bs(32);
    bs.insert(0x1008); // word 1
    EXPECT_EQ(bs.match(0x1000, wordMaskFor(0x1008)), BsMatch::TrueShare);
    EXPECT_EQ(bs.match(0x1000, wordMaskFor(0x1010)), BsMatch::FalseShare);
    EXPECT_EQ(bs.match(0x1000, wordMaskFor(0x1000)), BsMatch::FalseShare);
}

TEST(BypassSet, MultipleWordsAccumulatePerLine)
{
    BypassSet bs(32);
    bs.insert(0x1000);
    bs.insert(0x1018);
    EXPECT_EQ(bs.size(), 1u); // one line entry
    EXPECT_EQ(bs.match(0x1000, wordMaskFor(0x1018)), BsMatch::TrueShare);
    EXPECT_EQ(bs.match(0x1000, wordMaskFor(0x1008)), BsMatch::FalseShare);
}

TEST(BypassSet, CapacityIsEnforced)
{
    BypassSet bs(2);
    EXPECT_TRUE(bs.insert(0x1000));
    EXPECT_TRUE(bs.insert(0x2000));
    EXPECT_TRUE(bs.full());
    EXPECT_FALSE(bs.insert(0x3000));
    // Re-inserting a word of an existing line still works when full.
    EXPECT_TRUE(bs.insert(0x1008));
}

TEST(BypassSet, ClearEmptiesEverything)
{
    BypassSet bs(8);
    bs.insert(0x1000);
    bs.insert(0x2000);
    bs.clear();
    EXPECT_TRUE(bs.empty());
    EXPECT_EQ(bs.match(0x1000, 0), BsMatch::None);
    EXPECT_FALSE(bs.containsLine(0x2000));
}

TEST(BypassSet, BloomFilterShortCircuitsMisses)
{
    BypassSet bs(32);
    bs.insert(0x1000);
    uint64_t before = bs.bloomFiltered();
    // Probe many absent lines; most should be filtered.
    for (Addr a = 0x100000; a < 0x100000 + 64 * 32; a += 32)
        bs.match(a, 0);
    EXPECT_GT(bs.bloomFiltered(), before + 32);
}

TEST(BypassSet, LineCountTracksDistinctLines)
{
    BypassSet bs(32);
    bs.insert(0x1000);
    bs.insert(0x1008);
    bs.insert(0x2000);
    EXPECT_EQ(bs.lineCount(), 2u);
}
