/**
 * @file
 * Fence-lifecycle profiler tests: unit coverage of the record/fold
 * machinery, integration checks that real runs produce phase records
 * with ordered timestamps, and the stats-JSON `fenceProfile` shape.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hh"
#include "fence/profile.hh"
#include "harness/report.hh"

using namespace asf;
using namespace asf::test;

namespace
{

/** st mine = 1; wf; ld other -> res (see test_fence_semantics.cc). */
Program
fencedPair(Addr st_addr, Addr ld_addr, Addr res, unsigned warm = 0)
{
    Assembler a("pair");
    a.li(1, int64_t(st_addr));
    a.li(2, int64_t(ld_addr));
    a.li(3, int64_t(res));
    if (warm > 0) {
        a.ld(4, 2, 0);
        a.compute(int64_t(warm));
    }
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(FenceRole::Critical);
    a.ld(5, 2, 0);
    a.st(3, 0, 5);
    a.halt();
    return a.finish();
}

} // namespace

TEST(FenceProfiler, RecordsOneLifecycle)
{
    FenceProfiler p(/*keep_raw=*/true);
    uint64_t id = p.onIssue(2, FenceKind::WeeWeak, 100);
    EXPECT_NE(id, 0u);
    p.onGrtDeposit(id, 3, 105);
    p.onGrtReply(id, 130);
    p.onBsInsert(id);
    p.onBsInsert(id);
    p.onBounce(id);
    p.onStoreNack(id);
    p.onRemotePsHold(id);
    p.onComplete(id, 400);

    EXPECT_EQ(p.issued(), 1u);
    EXPECT_EQ(p.completed(), 1u);
    EXPECT_EQ(p.instants(), 0u);
    ASSERT_EQ(p.raw().size(), 1u);
    const FenceRecord &r = p.raw().front();
    EXPECT_EQ(r.id, id);
    EXPECT_EQ(r.core, 2u);
    EXPECT_EQ(r.kind, FenceKind::WeeWeak);
    EXPECT_EQ(r.issuedAt, 100u);
    EXPECT_EQ(r.completedAt, 400u);
    EXPECT_EQ(r.latency(), 300u);
    EXPECT_EQ(r.grtDepositAt, 105u);
    EXPECT_EQ(r.grtReplyAt, 130u);
    EXPECT_EQ(r.grtWait(), 25u);
    EXPECT_EQ(r.psLines, 3u);
    EXPECT_EQ(r.bsInserts, 2u);
    EXPECT_EQ(r.bounces, 1u);
    EXPECT_EQ(r.storeNacks, 1u);
    EXPECT_EQ(r.remotePsHolds, 1u);
    EXPECT_EQ(p.latencyHist().count(), 1u);
    ASSERT_EQ(p.slowest().size(), 1u);
    EXPECT_EQ(p.slowest().front().id, id);
}

TEST(FenceProfiler, SlowestIsSortedDescending)
{
    FenceProfiler p;
    for (Tick lat : {50u, 300u, 10u, 200u}) {
        uint64_t id = p.onIssue(0, FenceKind::Weak, 1000);
        p.onComplete(id, 1000 + lat);
    }
    ASSERT_EQ(p.slowest().size(), 4u);
    for (size_t i = 1; i < p.slowest().size(); i++)
        EXPECT_GE(p.slowest()[i - 1].latency(),
                  p.slowest()[i].latency());
    EXPECT_EQ(p.slowest().front().latency(), 300u);
}

TEST(FenceProfiler, SquashedFenceIsDroppedNotFolded)
{
    FenceProfiler p(/*keep_raw=*/true);
    uint64_t id = p.onIssue(1, FenceKind::Weak, 10);
    p.onSquashed(id);
    EXPECT_EQ(p.issued(), 1u);
    EXPECT_EQ(p.completed(), 0u);
    EXPECT_TRUE(p.raw().empty());
    EXPECT_EQ(p.latencyHist().count(), 0u);
    // Late hooks for the dropped id are ignored, not a crash.
    p.onBounce(id);
    p.onComplete(id, 50);
    EXPECT_EQ(p.completed(), 0u);
}

TEST(FenceProfiler, InstantFencesCountSeparately)
{
    FenceProfiler p;
    p.onInstant(0, FenceKind::Strong, 5);
    p.onInstant(1, FenceKind::Weak, 6);
    EXPECT_EQ(p.instants(), 2u);
    EXPECT_EQ(p.completed(), 0u);
}

TEST(FenceProfileIntegration, BounceRecordedOnFencedCore)
{
    // Core 0's BS bounces core 1's invalidation: core 0's fence record
    // must show the bounce, with an ordered timeline.
    SystemConfig cfg = smallConfig(FenceDesign::WSPlus, 2);
    cfg.fenceProfileRaw = true;
    System sys(cfg);
    Addr x = 0x1000, y = 0x2000;
    sys.loadProgram(0, share(fencedPair(x, y, 0x3000, 600)));
    Assembler b("latewriter");
    b.li(1, int64_t(y));
    b.ld(2, 1, 0);
    b.compute(650);
    b.li(2, 7);
    b.st(1, 0, 2);
    b.halt();
    sys.loadProgram(1, share(b.finish()));
    runToCompletion(sys);

    ASSERT_NE(sys.fenceProfiler(), nullptr);
    const FenceProfiler &p = *sys.fenceProfiler();
    EXPECT_EQ(p.issued(), p.completed() + p.instants());
    EXPECT_GE(p.completed(), 1u);
    bool found_bounce = false;
    for (const FenceRecord &r : p.raw()) {
        EXPECT_GT(r.issuedAt, 0u);
        EXPECT_GE(r.completedAt, r.issuedAt);
        if (r.core == 0 && r.bounces >= 1)
            found_bounce = true;
    }
    EXPECT_TRUE(found_bounce)
        << "no fence record on core 0 saw a BS bounce";
}

TEST(FenceProfileIntegration, WeeGrtTimestampsOrdered)
{
    SystemConfig cfg = smallConfig(FenceDesign::Wee, 4);
    cfg.fenceProfileRaw = true;
    System sys(cfg);
    sys.loadProgram(0, share(fencedPair(0x1200, 0x1400, 0x3000, 600)));
    sys.loadProgram(3, share(fencedPair(0x1400, 0x1200, 0x3020, 600)));
    runToCompletion(sys);

    ASSERT_NE(sys.fenceProfiler(), nullptr);
    bool found_deposit = false;
    for (const FenceRecord &r : sys.fenceProfiler()->raw()) {
        if (r.grtDepositAt == 0)
            continue;
        found_deposit = true;
        EXPECT_GE(r.grtDepositAt, r.issuedAt);
        if (r.grtReplyAt)
            EXPECT_GE(r.grtReplyAt, r.grtDepositAt);
        EXPECT_GE(r.completedAt, r.grtDepositAt);
        EXPECT_GE(r.psLines, 1u);
    }
    EXPECT_TRUE(found_deposit) << "no fence deposited a Pending Set";
}

TEST(FenceProfileIntegration, StatsJsonCarriesProfileObject)
{
    System sys(smallConfig(FenceDesign::WSPlus, 2));
    sys.loadProgram(0, share(fencedPair(0x1000, 0x2000, 0x3000, 600)));
    runToCompletion(sys);
    std::ostringstream os;
    sys.dumpStatsJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schemaVersion\":4"), std::string::npos);
    EXPECT_NE(doc.find("\"fenceProfile\":"), std::string::npos);
    EXPECT_NE(doc.find("\"latency\":"), std::string::npos);
    EXPECT_NE(doc.find("\"p99\":"), std::string::npos);
    EXPECT_NE(doc.find("\"slowest\":"), std::string::npos);
    EXPECT_NE(doc.find("\"cpiStack\":"), std::string::npos);
    EXPECT_NE(doc.find("\"watchdog\":"), std::string::npos);
    // include_profile = false drops exactly the fenceProfile object.
    std::ostringstream bare;
    sys.dumpStatsJson(bare, /*include_profile=*/false);
    EXPECT_EQ(bare.str().find("\"fenceProfile\":"), std::string::npos);
    EXPECT_NE(bare.str().find("\"cpiStack\":"), std::string::npos);
}

TEST(FenceProfileIntegration, RawJsonlOneObjectPerFence)
{
    SystemConfig cfg = smallConfig(FenceDesign::WSPlus, 2);
    cfg.fenceProfileRaw = true;
    System sys(cfg);
    sys.loadProgram(0, share(fencedPair(0x1000, 0x2000, 0x3000, 600)));
    runToCompletion(sys);
    ASSERT_NE(sys.fenceProfiler(), nullptr);
    std::ostringstream os;
    sys.fenceProfiler()->dumpRawJsonl(os);
    const std::string dump = os.str();
    size_t lines = 0;
    for (char c : dump)
        lines += c == '\n';
    EXPECT_EQ(lines, sys.fenceProfiler()->raw().size());
    EXPECT_NE(dump.find("\"id\":"), std::string::npos);
    EXPECT_NE(dump.find("\"issuedAt\":"), std::string::npos);
}
