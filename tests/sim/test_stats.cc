#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace asf;

TEST(StatScalar, IncrementAndReset)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(41);
    EXPECT_EQ(s.value(), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(StatAverage, MeanOfSamples)
{
    StatAverage a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(StatHistogram, BucketsAndOverflow)
{
    StatHistogram h(4, 10.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(100.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(StatGroup, ScalarsAreNamedAndSorted)
{
    StatGroup g("test");
    g.scalar("b").inc(2);
    g.scalar("a").inc(1);
    EXPECT_EQ(g.get("a"), 1u);
    EXPECT_EQ(g.get("b"), 2u);
    EXPECT_EQ(g.get("missing"), 0u);
    auto dump = g.dumpScalars();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "b");
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("test");
    g.scalar("x").inc(5);
    g.average("y").sample(3.0);
    g.resetAll();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_DOUBLE_EQ(g.getMean("y"), 0.0);
}
