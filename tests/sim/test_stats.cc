#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace asf;

TEST(StatScalar, IncrementAndReset)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(41);
    EXPECT_EQ(s.value(), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(StatAverage, MeanOfSamples)
{
    StatAverage a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(StatHistogram, BucketsAndOverflow)
{
    StatHistogram h(4, 10.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(100.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(StatAverage, EmptyIsSafe)
{
    StatAverage a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0); // no divide-by-zero
}

TEST(StatHistogram, EmptyIsSafe)
{
    StatHistogram h(4, 10.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(StatHistogram, PercentileInterpolatesBuckets)
{
    // One sample per integer 0..99 with unit buckets: the p-quantile of
    // the bucketed distribution lands at 100p exactly.
    StatHistogram h(100, 1.0);
    for (int i = 0; i < 100; i++)
        h.sample(double(i));
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0); // first sample's bucket
    // Out-of-domain p is clamped.
    EXPECT_DOUBLE_EQ(h.percentile(1.5), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 1.0);
}

TEST(StatHistogram, PercentileWithinSingleBucket)
{
    StatHistogram h(4, 1.0);
    for (int i = 0; i < 10; i++)
        h.sample(0.25);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.5); // half-way into bucket 0
}

TEST(StatHistogram, PercentileInOverflowReportsMax)
{
    StatHistogram h(2, 1.0);
    h.sample(10.0);
    h.sample(12.0);
    h.sample(14.0);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 14.0);
}

TEST(StatGroup, HistogramGeometryFixedOnFirstUse)
{
    StatGroup g("test");
    StatHistogram &h = g.histogram("occ", 8, 2.0);
    h.sample(3.0);
    // A later lookup with different (ignored) geometry returns the same
    // histogram.
    EXPECT_EQ(&g.histogram("occ", 99, 99.0), &h);
    EXPECT_EQ(g.histogram("occ").numBuckets(), 8u);
    EXPECT_DOUBLE_EQ(g.histogram("occ").bucketWidth(), 2.0);
    EXPECT_EQ(g.histogram("occ").count(), 1u);
}

TEST(StatGroup, ResetAllClearsHistograms)
{
    StatGroup g("test");
    g.histogram("h", 4, 1.0).sample(2.5);
    g.histogram("h").sample(100.0);
    g.resetAll();
    EXPECT_EQ(g.histogram("h").count(), 0u);
    EXPECT_EQ(g.histogram("h").overflow(), 0u);
    EXPECT_DOUBLE_EQ(g.histogram("h").max(), 0.0);
    EXPECT_EQ(g.histogram("h").bucket(2), 0u);
}

TEST(StatGroup, ScalarsAreNamedAndSorted)
{
    StatGroup g("test");
    g.scalar("b").inc(2);
    g.scalar("a").inc(1);
    EXPECT_EQ(g.get("a"), 1u);
    EXPECT_EQ(g.get("b"), 2u);
    EXPECT_EQ(g.get("missing"), 0u);
    auto dump = g.dumpScalars();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "b");
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("test");
    g.scalar("x").inc(5);
    g.average("y").sample(3.0);
    g.resetAll();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_DOUBLE_EQ(g.getMean("y"), 0.0);
}
