#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace asf;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        uint64_t v = r.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, XorshiftStepMatchesGuestRand)
{
    // Guest Rand and host Rng share the same core step.
    uint64_t x = 12345;
    uint64_t expect = xorshiftStep(12345);
    EXPECT_EQ(xorshiftStep(x), expect);
    EXPECT_NE(expect, x);
}
