#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace asf;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        uint64_t v = r.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RangeUnbiasedForHugeBound)
{
    // bound = 3 * 2^62 does not divide 2^64, and the naive `next() %
    // bound` maps twice as much of the 64-bit space onto [0, 2^62) as
    // onto the rest: P(v < 2^62) would be 1/2 instead of 1/3. The
    // rejection sampler must restore the uniform 1/3.
    Rng r(123);
    const uint64_t bound = 3ULL << 62;
    const uint64_t third = 1ULL << 62;
    int low = 0;
    const int n = 30000;
    for (int i = 0; i < n; i++)
        if (r.range(bound) < third)
            low++;
    EXPECT_NEAR(double(low) / n, 1.0 / 3.0, 0.02);
}

TEST(Rng, RangeUniformForSmallBound)
{
    Rng r(321);
    const int n = 70000;
    int counts[7] = {};
    for (int i = 0; i < n; i++)
        counts[r.range(7)]++;
    for (int b = 0; b < 7; b++)
        EXPECT_NEAR(double(counts[b]), n / 7.0, 0.05 * n / 7.0)
            << "bucket " << b;
}

TEST(Rng, RangeDeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 200; i++)
        EXPECT_EQ(a.range(1000), b.range(1000));
}

TEST(Rng, BetweenFullRangeDoesNotWrap)
{
    // hi - lo + 1 overflows to 0 for the full domain; this used to feed
    // range(0) and panic. It must behave as a raw 64-bit draw.
    Rng r(9);
    uint64_t first = r.between(0, UINT64_MAX);
    bool varied = false;
    for (int i = 0; i < 100; i++)
        varied |= r.between(0, UINT64_MAX) != first;
    EXPECT_TRUE(varied);
}

TEST(Rng, BetweenDegenerateAndNearFullSpans)
{
    Rng r(10);
    EXPECT_EQ(r.between(77, 77), 77u);
    for (int i = 0; i < 100; i++)
        EXPECT_GE(r.between(5, UINT64_MAX), 5u);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, XorshiftStepMatchesGuestRand)
{
    // Guest Rand and host Rng share the same core step.
    uint64_t x = 12345;
    uint64_t expect = xorshiftStep(12345);
    EXPECT_EQ(xorshiftStep(x), expect);
    EXPECT_NE(expect, x);
}
