#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/trace.hh"

using namespace asf;

namespace
{

/** Restore the process-global sink around every test. */
struct TraceFixture : ::testing::Test
{
    void SetUp() override { Trace::get().resetForTest(); }
    void TearDown() override { Trace::get().resetForTest(); }

    std::string
    tmpPath() const
    {
        return testing::TempDir() + "asf_trace_test.json";
    }

    std::string
    slurp(const std::string &path) const
    {
        std::ifstream f(path);
        std::ostringstream os;
        os << f.rdbuf();
        return os.str();
    }
};

} // namespace

TEST_F(TraceFixture, DisabledByDefaultAndArgsNotEvaluated)
{
    EXPECT_FALSE(Trace::get().enabled());
    int evaluations = 0;
    auto tick = [&]() -> Tick {
        evaluations++;
        return 0;
    };
    ASF_TRACE(instant(tick(), 0, "test", "never"));
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(Trace::get().numEvents(), 0u);
}

TEST_F(TraceFixture, RecordsEventsWhenEnabled)
{
    Trace::get().open(tmpPath());
    EXPECT_TRUE(Trace::get().enabled());
    int evaluations = 0;
    auto tick = [&]() -> Tick {
        evaluations++;
        return 7;
    };
    ASF_TRACE(instant(tick(), 3, "test", "marker"));
    ASF_TRACE(complete(10, 5, 4, "test", "span", "{\"k\":1}"));
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(Trace::get().numEvents(), 2u);
}

TEST_F(TraceFixture, FlushWritesChromeTraceJson)
{
    std::string path = tmpPath();
    Trace &t = Trace::get();
    t.open(path);
    t.beginRun("run-one");
    t.threadName(3, "core3");
    t.complete(100, 25, 3, "fence", "W+", "{\"id\":1}");
    t.instant(130, 3, "wb", "drain");
    t.counter(140, 3, "occupancy", "{\"occupancy\":12}");
    t.flush();

    std::string out = slurp(path);
    EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(out.find("{\"name\":\"run-one\"}"), std::string::npos);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    // The span carries ph X, its duration, and its args.
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":25"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"id\":1}"), std::string::npos);
    // Instants are thread-scoped.
    EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
    // Counter sample present.
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    // Balanced: ends with the closing of traceEvents and the object.
    EXPECT_NE(out.find("]}"), std::string::npos);
}

TEST_F(TraceFixture, BeginRunSeparatesPids)
{
    std::string path = tmpPath();
    Trace &t = Trace::get();
    t.open(path);
    t.beginRun("a");
    t.instant(1, 0, "test", "in-a");
    t.beginRun("b");
    t.instant(2, 0, "test", "in-b");
    t.flush();

    std::string out = slurp(path);
    EXPECT_NE(out.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(out.find("\"pid\":2"), std::string::npos);
}

TEST_F(TraceFixture, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}
