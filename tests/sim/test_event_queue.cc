#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace asf;

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventTick(), maxTick);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(10); });
    eq.schedule(5, [&] { order.push_back(5); });
    eq.schedule(7, [&] { order.push_back(7); });
    eq.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{5, 7, 10}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; i++)
        eq.schedule(3, [&order, i] { order.push_back(i); });
    eq.runUntil(3);
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { fired++; });
    eq.schedule(6, [&] { fired++; });
    eq.runUntil(5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 5u);
    eq.runUntil(6);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    std::vector<Tick> fires;
    eq.schedule(1, [&] {
        fires.push_back(eq.now());
        eq.schedule(4, [&] { fires.push_back(eq.now()); });
    });
    eq.runUntil(10);
    EXPECT_EQ(fires, (std::vector<Tick>{1, 4}));
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    eq.runUntil(100);
    Tick fired_at = 0;
    eq.scheduleIn(5, [&] { fired_at = eq.now(); });
    eq.runUntil(200);
    EXPECT_EQ(fired_at, 105u);
}

TEST(EventQueue, SchedulingInPastDies)
{
    EventQueue eq;
    eq.runUntil(10);
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.clear();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, NextEventTickReportsEarliest)
{
    EventQueue eq;
    eq.schedule(9, [] {});
    eq.schedule(4, [] {});
    EXPECT_EQ(eq.nextEventTick(), 4u);
}
