/**
 * Interval time-series tests: delta/ring mechanics of IntervalStats
 * (merged samples across jumps, bounded ring with drop accounting,
 * idempotent tail sampling, post-reset re-baselining) plus the
 * system-level guarantees — samples tile the run exactly, their sums
 * reproduce the cumulative counters, and enabling the observatory is
 * bit-identical to running without it.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hh"
#include "sim/interval_stats.hh"
#include "workloads/ustm.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::workloads;

namespace
{

IntervalCumulative
cum(uint64_t busy, uint64_t instr, std::vector<uint64_t> links = {})
{
    IntervalCumulative c;
    c.busy = busy;
    c.instrRetired = instr;
    c.linkBusy = std::move(links);
    return c;
}

} // namespace

TEST(IntervalStats, SamplesStoreDeltasNotCumulatives)
{
    IntervalStats is(100, 8);
    EXPECT_EQ(is.nextAt(), 100u);
    is.sample(100, cum(60, 200));
    is.sample(200, cum(90, 350));
    ASSERT_EQ(is.size(), 2u);
    EXPECT_EQ(is.at(0).start, 0u);
    EXPECT_EQ(is.at(0).end, 100u);
    EXPECT_EQ(is.at(0).busy, 60u);
    EXPECT_EQ(is.at(0).instrRetired, 200u);
    EXPECT_EQ(is.at(1).start, 100u);
    EXPECT_EQ(is.at(1).busy, 30u);
    EXPECT_EQ(is.at(1).instrRetired, 150u);
}

TEST(IntervalStats, JumpAcrossBoundariesMergesIntoOneSample)
{
    IntervalStats is(100, 8);
    // A fast-forward jump lands at 570, crossing 5 boundaries: one
    // merged sample [0, 570], and the next boundary is 600.
    is.sample(570, cum(10, 20));
    ASSERT_EQ(is.size(), 1u);
    EXPECT_EQ(is.at(0).start, 0u);
    EXPECT_EQ(is.at(0).end, 570u);
    EXPECT_EQ(is.nextAt(), 600u);
    // Sampling exactly on a boundary moves the next one a full
    // interval out.
    is.sample(600, cum(15, 30));
    EXPECT_EQ(is.nextAt(), 700u);
}

TEST(IntervalStats, RingDropsOldestAndCounts)
{
    IntervalStats is(10, 3);
    for (Tick t = 10; t <= 50; t += 10)
        is.sample(t, cum(t, t));
    EXPECT_EQ(is.size(), 3u);
    EXPECT_EQ(is.dropped(), 2u);
    // Oldest retained is the third sample, (20, 30].
    EXPECT_EQ(is.at(0).start, 20u);
    EXPECT_EQ(is.at(0).end, 30u);
    EXPECT_EQ(is.at(2).end, 50u);
}

TEST(IntervalStats, SparseLinkDeltasSumToFlits)
{
    IntervalStats is(100, 4);
    is.sample(100, cum(0, 0, {5, 0, 7, 0}));
    is.sample(200, cum(0, 0, {9, 0, 7, 3}));
    const IntervalSample &s = is.at(1);
    ASSERT_EQ(s.links.size(), 2u); // only the links that moved
    EXPECT_EQ(s.links[0].first, 0u);
    EXPECT_EQ(s.links[0].second, 4u);
    EXPECT_EQ(s.links[1].first, 3u);
    EXPECT_EQ(s.links[1].second, 3u);
    EXPECT_EQ(s.flits, 7u);
}

TEST(IntervalStats, TailSampleIsIdempotent)
{
    IntervalStats is(100, 4);
    is.sample(100, cum(10, 10));
    IntervalSample a, b;
    ASSERT_TRUE(is.tailSample(150, cum(25, 30), a));
    ASSERT_TRUE(is.tailSample(150, cum(25, 30), b));
    EXPECT_EQ(a.start, 100u);
    EXPECT_EQ(a.end, 150u);
    EXPECT_EQ(a.busy, 15u);
    EXPECT_EQ(b.busy, 15u);
    // Building the tail never disturbs the ring or the baseline.
    EXPECT_EQ(is.size(), 1u);
    EXPECT_EQ(is.nextAt(), 200u);
    // Nothing elapsed: no tail.
    IntervalSample c;
    EXPECT_FALSE(is.tailSample(100, cum(25, 30), c));
}

TEST(IntervalStats, ResetRebaselinesAgainstLiveCounters)
{
    IntervalStats is(100, 4);
    is.sample(100, cum(10, 10, {50}));
    // resetStats() zeroes most counters but raw link counters keep
    // running; reset() must take the live values as the new baseline
    // so the first post-reset sample shows no phantom delta.
    is.reset(150, cum(0, 0, {50}));
    EXPECT_EQ(is.size(), 0u);
    EXPECT_EQ(is.dropped(), 0u);
    EXPECT_EQ(is.nextAt(), 200u);
    is.sample(200, cum(5, 7, {52}));
    ASSERT_EQ(is.size(), 1u);
    EXPECT_EQ(is.at(0).start, 150u);
    EXPECT_EQ(is.at(0).busy, 5u);
    EXPECT_EQ(is.at(0).flits, 2u);
}

namespace
{

void
runQuickUstm(FenceDesign design, Tick interval, Tick &cycles,
             std::string &json)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.design = design;
    cfg.statsInterval = interval;
    System sys(cfg);
    setupTlrwWorkload(sys, ustmBenchByName("Hash"), /*txn_limit=*/0);
    EXPECT_EQ(sys.run(30'000), System::RunResult::MaxCycles);
    cycles = sys.now();
    std::ostringstream os;
    sys.dumpStatsJson(os, /*include_profile=*/true,
                      /*include_check=*/true,
                      /*include_observatory=*/false);
    json = os.str();
    EXPECT_EQ(interval != 0, sys.intervalStats() != nullptr);
}

} // namespace

class IntervalIdentity : public ::testing::TestWithParam<FenceDesign>
{
};

/** Observation-only: sampling every 500 cycles must not perturb the
 *  simulation (cycles and the stats JSON minus the timeline block). */
TEST_P(IntervalIdentity, OnOffIsBitIdentical)
{
    Tick cycles_on = 0, cycles_off = 0;
    std::string json_on, json_off;
    runQuickUstm(GetParam(), 500, cycles_on, json_on);
    runQuickUstm(GetParam(), 0, cycles_off, json_off);
    EXPECT_EQ(cycles_on, cycles_off);
    EXPECT_EQ(json_on, json_off);
}

INSTANTIATE_TEST_SUITE_P(QuickFig10, IntervalIdentity,
                         ::testing::Values(FenceDesign::SPlus,
                                           FenceDesign::WPlus,
                                           FenceDesign::Wee),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

/** The samples must tile the run with no gaps and their deltas must
 *  sum back to the cumulative CPI/instruction counters — i.e. the
 *  time-series is a decomposition of the totals, not an estimate. */
TEST(IntervalConservation, SampleDeltasSumToCumulativeTotals)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.design = FenceDesign::WPlus;
    cfg.statsInterval = 1000;
    System sys(cfg);
    setupTlrwWorkload(sys, ustmBenchByName("Hash"), /*txn_limit=*/0);
    ASSERT_EQ(sys.run(30'000), System::RunResult::MaxCycles);

    const IntervalStats *is = sys.intervalStats();
    ASSERT_NE(is, nullptr);
    ASSERT_GT(is->size(), 10u);
    EXPECT_EQ(is->dropped(), 0u);

    uint64_t busy = 0, instr = 0, fences = 0;
    Tick prev_end = 0;
    for (size_t i = 0; i < is->size(); i++) {
        const IntervalSample &s = is->at(i);
        EXPECT_EQ(s.start, prev_end) << "gap before sample " << i;
        EXPECT_LT(s.start, s.end);
        prev_end = s.end;
        busy += s.busy;
        instr += s.instrRetired;
        fences += s.fencesIssued;
    }
    // Dumping the stats (which appends the open tail sample) must be
    // idempotent — the tail is built without disturbing the baseline.
    std::ostringstream a, b;
    sys.dumpStatsJson(a);
    sys.dumpStatsJson(b);
    EXPECT_EQ(a.str(), b.str());

    CycleBreakdown bd = sys.breakdown();
    uint64_t fences_total = 0;
    for (unsigned i = 0; i < sys.numCores(); i++) {
        const StatGroup &cs = sys.core(NodeId(i)).stats();
        fences_total += cs.get("fencesStrong") + cs.get("fencesWeak") +
                        cs.get("fencesWee");
    }
    // No ring drops, so the retained samples cover exactly [0, prev_end]
    // and their sums are bounded by the cumulative stats; when the run
    // ended exactly on a boundary there is no open tail and the sums
    // must match the totals outright.
    EXPECT_LE(prev_end, sys.now());
    EXPECT_LE(busy, bd.busy);
    EXPECT_LE(instr, sys.totalInstrRetired());
    EXPECT_LE(fences, fences_total);
    if (prev_end == sys.now()) {
        EXPECT_EQ(busy, bd.busy);
        EXPECT_EQ(instr, sys.totalInstrRetired());
        EXPECT_EQ(fences, fences_total);
    }
}

/** resetStats() mid-run restarts the timeline cleanly: no phantom
 *  first sample from raw counters that survive the reset. */
TEST(IntervalConservation, ResetStatsRebaselinesTimeline)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.design = FenceDesign::SPlus;
    cfg.statsInterval = 1000;
    System sys(cfg);
    setupTlrwWorkload(sys, ustmBenchByName("Hash"), /*txn_limit=*/0);
    ASSERT_EQ(sys.run(10'000), System::RunResult::MaxCycles);
    ASSERT_GT(sys.intervalStats()->size(), 0u);

    sys.resetStats();
    EXPECT_EQ(sys.intervalStats()->size(), 0u);
    ASSERT_EQ(sys.run(10'000), System::RunResult::MaxCycles);

    const IntervalStats *is = sys.intervalStats();
    ASSERT_GT(is->size(), 0u);
    CycleBreakdown bd = sys.breakdown();
    uint64_t busy = 0;
    for (size_t i = 0; i < is->size(); i++)
        busy += is->at(i).busy;
    // Post-reset samples can only account for post-reset busy cycles;
    // a bogus baseline would blow past the cumulative total.
    EXPECT_LE(busy, bd.busy);
}
