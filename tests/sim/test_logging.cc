#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace asf;

TEST(Logging, FormatProducesPrintfOutput)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(format("%05u", 42u), "00042");
}

TEST(Logging, FormatHandlesLongStrings)
{
    std::string big(5000, 'a');
    EXPECT_EQ(format("%s", big.c_str()).size(), 5000u);
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "boom 3");
}

TEST(Logging, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}
