#include <gtest/gtest.h>

#include "noc/mesh.hh"

using namespace asf;

namespace
{

struct MeshFixture : ::testing::Test
{
    EventQueue eq;
    Mesh mesh{eq, 8, 5, 32};
    std::vector<Message> received;

    void
    SetUp() override
    {
        for (unsigned n = 0; n < 8; n++)
            mesh.setSink(NodeId(n), [this](const Message &m) {
                received.push_back(m);
            });
    }

    Message
    msg(NodeId src, NodeId dst, MsgType t = MsgType::GetS)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.addr = 0x1000;
        return m;
    }
};

} // namespace

TEST_F(MeshFixture, GridGeometryCoversAllNodes)
{
    EXPECT_EQ(mesh.cols(), 3u); // ceil(sqrt(8))
    EXPECT_EQ(mesh.rows(), 3u);
    EXPECT_EQ(mesh.numNodes(), 8u);
}

TEST_F(MeshFixture, HopCountIsManhattanDistance)
{
    // Node layout (3 cols): 0 1 2 / 3 4 5 / 6 7
    EXPECT_EQ(mesh.hopCount(0, 0), 0u);
    EXPECT_EQ(mesh.hopCount(0, 2), 2u);
    EXPECT_EQ(mesh.hopCount(0, 7), 3u); // (0,0)->(1,2)
    EXPECT_EQ(mesh.hopCount(2, 6), 4u);
}

TEST_F(MeshFixture, DeliveryLatencyMatchesHops)
{
    mesh.send(msg(0, 2));
    eq.runUntil(9);
    EXPECT_TRUE(received.empty());
    eq.runUntil(10); // 2 hops * 5 cycles
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].src, 0);
}

TEST_F(MeshFixture, LocalLoopbackIsOneCycle)
{
    mesh.send(msg(3, 3));
    eq.runUntil(1);
    EXPECT_EQ(received.size(), 1u);
}

TEST_F(MeshFixture, PerSrcDstPairFifo)
{
    // The coherence protocol depends on in-order delivery per (src, dst).
    for (int i = 0; i < 20; i++) {
        Message m = msg(0, 7);
        m.addr = Addr(i);
        mesh.send(m);
    }
    eq.runUntil(10000);
    ASSERT_EQ(received.size(), 20u);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(received[i].addr, Addr(i));
}

TEST_F(MeshFixture, ContentionSerializesOnSharedLink)
{
    // K data packets (2 flits each) injected back-to-back on the same
    // path: the link transfers one flit per cycle, so the k-th packet's
    // delivery is pushed out by ~2 cycles per predecessor.
    Tick solo_delivery = 0;
    {
        EventQueue eq2;
        Mesh m2(eq2, 8, 5, 32);
        m2.setSink(2, [&](const Message &) { solo_delivery = eq2.now(); });
        for (NodeId n = 0; n < 8; n++)
            if (n != 2)
                m2.setSink(n, [](const Message &) {});
        Message one = msg(0, 2);
        one.hasData = true;
        m2.send(one);
        eq2.runUntil(100000);
    }
    ASSERT_GT(solo_delivery, 0u);

    constexpr unsigned kPackets = 10;
    std::vector<Tick> deliveries;
    mesh.setSink(2, [&](const Message &) {
        deliveries.push_back(eq.now());
    });
    for (unsigned i = 0; i < kPackets; i++) {
        Message m = msg(0, 2);
        m.hasData = true;
        mesh.send(m);
    }
    eq.runUntil(100000);
    ASSERT_EQ(deliveries.size(), kPackets);
    // Monotone, and the tail is serialized by at least one flit time
    // per predecessor on the bottleneck link.
    for (unsigned i = 1; i < kPackets; i++)
        EXPECT_GT(deliveries[i], deliveries[i - 1]);
    EXPECT_GE(deliveries.back(),
              solo_delivery + (kPackets - 1) * 2 /* flits */);
}

TEST_F(MeshFixture, MultiFlitTailSerializesOnFinalLink)
{
    // 40-byte data packet on 32-byte links = 2 flits, 0 -> 2 = 2 hops
    // at hopLatency 5. Head: hop 1 starts at 0, head reaches node 1 at
    // 5; hop 2 starts at 5, head reaches node 2 at 10. The second flit
    // trails one cycle behind on the final link, so the packet is only
    // fully delivered at 11 -- not at 10, the head-arrival time the
    // model used to report.
    Message m = msg(0, 2);
    m.hasData = true;
    ASSERT_EQ(flitsFor(m, 32), 2u);
    mesh.send(m);
    eq.runUntil(10);
    EXPECT_TRUE(received.empty());
    eq.runUntil(11);
    ASSERT_EQ(received.size(), 1u);
}

TEST_F(MeshFixture, MultiFlitContentionTimingIsExact)
{
    // Two 2-flit packets injected the same cycle on the same path.
    // First as above: links busy [0,2) and [5,7), delivery 11.
    // Second: hop 1 waits for the link, starts at 2, head at 7; hop 2
    // starts at 7, head at 12; tail lands at 13.
    std::vector<Tick> deliveries;
    mesh.setSink(2, [&](const Message &) {
        deliveries.push_back(eq.now());
    });
    for (int i = 0; i < 2; i++) {
        Message m = msg(0, 2);
        m.hasData = true;
        mesh.send(m);
    }
    eq.runUntil(1000);
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0], 11u);
    EXPECT_EQ(deliveries[1], 13u);
}

TEST_F(MeshFixture, SingleFlitLatencyUnchangedByTailFix)
{
    // Control messages are one flit; tail == head, so delivery stays
    // at hops * hopLatency exactly.
    mesh.send(msg(0, 7)); // 3 hops
    eq.runUntil(1000);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(mesh.latency().mean(), 15.0);
}

TEST_F(MeshFixture, LinkUtilizationCountersTrackTraffic)
{
    Message m = msg(0, 2);
    m.hasData = true;
    mesh.send(m);
    eq.runUntil(1000);
    auto links = mesh.linkUtilization();
    ASSERT_EQ(links.size(), 2u); // 0 -E-> 1 -E-> 2
    for (const auto &l : links) {
        EXPECT_EQ(l.dir, 'E');
        EXPECT_EQ(l.busyCycles, 2u);
        EXPECT_EQ(l.bytes, 40u);
        EXPECT_EQ(l.packets, 1u);
    }
    EXPECT_EQ(links[0].node, 0);
    EXPECT_EQ(links[1].node, 1);
}

TEST_F(MeshFixture, TrafficAccountingByClass)
{
    Message m1 = msg(0, 1);
    m1.trafficClass = TrafficClass::Base;
    Message m2 = msg(0, 1);
    m2.trafficClass = TrafficClass::Retry;
    Message m3 = msg(0, 1);
    m3.trafficClass = TrafficClass::Grt;
    mesh.send(m1);
    mesh.send(m2);
    mesh.send(m3);
    eq.runUntil(1000);
    EXPECT_EQ(mesh.stats().get("packets"), 3u);
    EXPECT_EQ(mesh.stats().get("bytesBase"), 8u);
    EXPECT_EQ(mesh.stats().get("bytesRetry"), 8u);
    EXPECT_EQ(mesh.stats().get("bytesGrt"), 8u);
}

TEST_F(MeshFixture, DataMessagesAreBigger)
{
    Message m = msg(0, 1);
    EXPECT_EQ(m.sizeBytes(), 8u);
    m.hasData = true;
    EXPECT_EQ(m.sizeBytes(), 40u);
    EXPECT_EQ(flitsFor(m, 32), 2u);
}

TEST(MeshSolo, SingleNodeMeshWorks)
{
    EventQueue eq;
    Mesh mesh(eq, 1);
    int got = 0;
    mesh.setSink(0, [&](const Message &) { got++; });
    Message m;
    m.src = 0;
    m.dst = 0;
    mesh.send(m);
    eq.runUntil(5);
    EXPECT_EQ(got, 1);
}

TEST(MeshSolo, BadEndpointPanics)
{
    EventQueue eq;
    Mesh mesh(eq, 4);
    Message m;
    m.src = 0;
    m.dst = 9;
    EXPECT_DEATH(mesh.send(m), "bad endpoints");
}
