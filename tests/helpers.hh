/**
 * @file
 * Shared helpers for integration tests: system construction and tiny
 * guest-program runners.
 */

#ifndef ASF_TESTS_HELPERS_HH
#define ASF_TESTS_HELPERS_HH

#include <gtest/gtest.h>

#include <memory>

#include "prog/assembler.hh"
#include "sys/system.hh"

namespace asf::test
{

inline SystemConfig
smallConfig(FenceDesign design = FenceDesign::SPlus, unsigned cores = 4)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.design = design;
    return cfg;
}

inline std::shared_ptr<const Program>
share(Program p)
{
    return std::make_shared<const Program>(std::move(p));
}

/** Run until all threads halt; assert it actually finished. */
inline void
runToCompletion(System &sys, Tick budget = 2'000'000)
{
    auto res = sys.run(budget);
    ASSERT_EQ(res, System::RunResult::AllDone)
        << "system did not quiesce in " << budget << " cycles";
}

/** A one-instruction-at-a-time store program: st [addr] = value; halt. */
inline Program
storeProgram(Addr addr, uint64_t value)
{
    Assembler a("store");
    a.li(1, int64_t(addr));
    a.li(2, int64_t(value));
    a.st(1, 0, 2);
    a.halt();
    return a.finish();
}

/** ld r3, [addr]; st [result] = r3; halt. */
inline Program
loadProgram(Addr addr, Addr result)
{
    Assembler a("load");
    a.li(1, int64_t(addr));
    a.li(2, int64_t(result));
    a.ld(3, 1, 0);
    a.st(2, 0, 3);
    a.halt();
    return a.finish();
}

} // namespace asf::test

#endif // ASF_TESTS_HELPERS_HH
