#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/dekker.hh"
#include "runtime/marks.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

class DekkerDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(DekkerDesigns, FencedDekkerNeverLosesIncrements)
{
    System sys(smallConfig(GetParam(), 2));
    GuestLayout layout;
    DekkerLayout lay = allocDekker(layout);
    unsigned iters = 20;
    sys.loadProgram(0, share(buildDekkerProgram(lay, 0, iters, 0, true)));
    sys.loadProgram(1, share(buildDekkerProgram(lay, 1, iters, 0, true)));
    auto res = sys.run(20'000'000);
    ASSERT_EQ(res, System::RunResult::AllDone)
        << "Dekker hung under " << fenceDesignName(GetParam());
    EXPECT_EQ(sys.debugReadWord(lay.counterAddr), 2u * iters)
        << "mutual exclusion violated under "
        << fenceDesignName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DekkerDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

namespace
{

/**
 * One aligned, warmed flag-lock attempt: st my_flag = 1; r = ld
 * other_flag; if (r == 0) counter++. Without a fence, both flag stores
 * sit in the write buffers while both loads hit warm cached copies, so
 * both threads enter the "critical section" and one increment is lost.
 */
Program
nakedLockAttempt(const DekkerLayout &lay, unsigned tid, bool fenced)
{
    Addr my_flag = tid == 0 ? lay.flag0 : lay.flag1;
    Addr other_flag = tid == 0 ? lay.flag1 : lay.flag0;
    Assembler a("naked");
    a.li(1, int64_t(my_flag));
    a.li(2, int64_t(other_flag));
    a.li(3, int64_t(lay.counterAddr));
    a.ld(4, 2, 0); // warm the flag we will poll
    a.ld(4, 3, 0); // warm the counter
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4);
    if (fenced)
        a.fence(tid == 0 ? FenceRole::Critical : FenceRole::Noncritical);
    a.ld(5, 2, 0);
    a.li(6, 0);
    a.bne(5, 6, "out"); // other thread visible: stay out
    a.ld(7, 3, 0);      // "critical section": counter++
    a.addi(7, 7, 1);
    a.st(3, 0, 7);
    a.bind("out");
    a.halt();
    return a.finish();
}

} // namespace

TEST(Dekker, UnfencedFlagLockBreaksUnderTso)
{
    // Without the fence both threads read the other's flag before either
    // flag store has drained: both enter, and an increment is lost.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    GuestLayout layout;
    DekkerLayout lay = allocDekker(layout);
    sys.loadProgram(0, share(nakedLockAttempt(lay, 0, false)));
    sys.loadProgram(1, share(nakedLockAttempt(lay, 1, false)));
    ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
    EXPECT_EQ(sys.debugReadWord(lay.counterAddr), 1u)
        << "expected exactly one lost update from the SC violation";
}

TEST(Dekker, FencedFlagLockExcludesOneThread)
{
    for (FenceDesign d : allFenceDesigns) {
        System sys(smallConfig(d, 2));
        GuestLayout layout;
        DekkerLayout lay = allocDekker(layout);
        sys.loadProgram(0, share(nakedLockAttempt(lay, 0, true)));
        sys.loadProgram(1, share(nakedLockAttempt(lay, 1, true)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        // With fences at least one thread observes the other's flag, so
        // at most one increment happens - and none may be lost.
        EXPECT_LE(sys.debugReadWord(lay.counterAddr), 1u)
            << "both threads entered under " << fenceDesignName(d);
    }
}
