#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/regs.hh"
#include "runtime/tlrw.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;
using namespace asf::regs;

namespace
{

/** n write-locked increments of data[0]. */
Program
writerProgram(const TlrwTable &table, int n)
{
    Assembler a("tlrw_writer");
    a.li(s0, n);
    a.li(env0, int64_t(table.orecBase));
    a.li(env1, int64_t(table.dataBase));
    a.bind("loop");
    a.li(a4, int64_t(table.orecAddr(0)));
    emitTlrwWriteAcquire(a, a4, "wabort", t0, t1, t2, t3);
    a.li(a5, int64_t(table.dataAddr(0)));
    a.ld(t0, a5, 0);
    a.addi(t0, t0, 1);
    a.st(a5, 0, t0);
    emitTlrwWriteRelease(a, a4, t0);
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.halt();
    // Bounded-acquire abort: nothing is held, just retry.
    a.bind("wabort");
    a.compute(30);
    a.jmp("loop");
    return a.finish();
}

/** n read attempts of data[0]; counts aborts in a register -> res. */
Program
readerProgram(const TlrwTable &table, int n, Addr res)
{
    Assembler a("tlrw_reader");
    a.li(s0, n);
    a.li(s1, 0); // observed value accumulator (unused, keeps load alive)
    a.bind("loop");
    a.li(a4, int64_t(table.orecAddr(0)));
    emitTlrwReadAcquire(a, a4, "aborted", t0, t1);
    a.li(a5, int64_t(table.dataAddr(0)));
    a.ld(t0, a5, 0);
    a.add(s1, s1, t0);
    emitTlrwReadRelease(a, a4, t0, t1);
    a.bind("next");
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s1);
    a.halt();
    a.bind("aborted");
    a.jmp("next"); // just skip the iteration
    return a.finish();
}

} // namespace

TEST(Tlrw, TableGeometry)
{
    GuestLayout layout;
    TlrwTable t = allocTlrwTable(layout, 8, 8);
    // writer + wmutex + 8 packed reader words (2 lines) = 128 bytes.
    EXPECT_EQ(t.orecStride, 128u);
    EXPECT_EQ(t.orecAddr(1) - t.orecAddr(0), 128u);
    EXPECT_EQ(t.readerFlagAddr(0, 3) - t.orecAddr(0), 64u + 24u);
    // The guarded data word shares the writer line (word 1).
    EXPECT_EQ(t.dataAddr(0), t.orecAddr(0) + 8u);
    EXPECT_EQ(t.dataAddr(1) - t.dataAddr(0), t.orecStride);
}

TEST(Tlrw, SingleWriterIncrements)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    GuestLayout layout;
    TlrwTable table = allocTlrwTable(layout, 4, 1);
    sys.loadProgram(0, share(writerProgram(table, 10)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(table.dataAddr(0)), 10u);
    // Locks fully released.
    EXPECT_EQ(sys.debugReadWord(table.writerAddr(0)), 0u);
}

class TlrwDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(TlrwDesigns, WritersNeverLoseUpdates)
{
    System sys(smallConfig(GetParam(), 4));
    GuestLayout layout;
    TlrwTable table = allocTlrwTable(layout, 4, 4);
    auto p = share(writerProgram(table, 15));
    for (int i = 0; i < 4; i++) {
        sys.loadProgram(i, p);
        sys.core(i).setReg(regs::tid, i);
        sys.core(i).setReg(regs::nthreads, 4);
    }
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(table.dataAddr(0)), 60u);
}

TEST_P(TlrwDesigns, ReadersAndWritersCoexist)
{
    System sys(smallConfig(GetParam(), 4));
    GuestLayout layout;
    TlrwTable table = allocTlrwTable(layout, 4, 4);
    sys.loadProgram(0, share(writerProgram(table, 20)));
    sys.core(0).setReg(regs::tid, 0);
    sys.core(0).setReg(regs::nthreads, 4);
    for (int i = 1; i < 4; i++) {
        sys.loadProgram(i, share(readerProgram(table, 30,
                                               0x9000 + i * 0x40)));
        sys.core(i).setReg(regs::tid, i);
        sys.core(i).setReg(regs::nthreads, 4);
    }
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(table.dataAddr(0)), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, TlrwDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });
