#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/layout.hh"
#include "runtime/spinlock.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

namespace
{

Program
lockedIncrements(Addr lock, Addr counter, int n)
{
    Assembler a("lockinc");
    a.li(10, int64_t(lock));
    a.li(11, int64_t(counter));
    a.li(12, n);
    a.bind("loop");
    emitSpinLockAcquire(a, 10, 0, 0, 1);
    a.ld(2, 11, 0);
    a.addi(2, 2, 1);
    a.st(11, 0, 2);
    emitSpinLockRelease(a, 10, 0, 0);
    a.addi(12, 12, -1);
    a.li(3, 0);
    a.blt(3, 12, "loop");
    a.halt();
    return a.finish();
}

} // namespace

TEST(Spinlock, SingleThreadIncrements)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    sys.loadProgram(0, share(lockedIncrements(0x1000, 0x2000, 10)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x2000), 10u);
    EXPECT_EQ(sys.debugReadWord(0x1000), 0u); // lock released
}

class SpinlockDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(SpinlockDesigns, MutualExclusionUnderContention)
{
    // The xchg-based lock must never lose increments, under any fence
    // design (atomics drain fences and the write buffer).
    System sys(smallConfig(GetParam(), 4));
    auto p = share(lockedIncrements(0x1000, 0x2000, 25));
    for (int i = 0; i < 4; i++)
        sys.loadProgram(i, p);
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x2000), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, SpinlockDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });
