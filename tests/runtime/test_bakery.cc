#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/bakery.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

namespace
{

void
runBakery(FenceDesign design, unsigned threads, unsigned iters)
{
    System sys(smallConfig(design, threads));
    GuestLayout layout;
    BakeryLayout lay = allocBakery(layout, threads);
    for (unsigned i = 0; i < threads; i++) {
        sys.loadProgram(NodeId(i),
                        share(buildBakeryProgram(lay, i, iters, 20, 0)));
        sys.core(NodeId(i)).setReg(regs::tid, i);
        sys.core(NodeId(i)).setReg(regs::nthreads, threads);
    }
    auto res = sys.run(20'000'000);
    ASSERT_EQ(res, System::RunResult::AllDone)
        << "bakery hung under " << fenceDesignName(design);
    EXPECT_EQ(sys.debugReadWord(lay.counterAddr),
              uint64_t(threads) * iters)
        << "mutual exclusion violated under " << fenceDesignName(design);
    EXPECT_EQ(sys.guestCounter(marks::lockAcquired),
              uint64_t(threads) * iters);
}

} // namespace

TEST(Bakery, SingleThread)
{
    runBakery(FenceDesign::SPlus, 1, 5);
}

class BakeryDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(BakeryDesigns, TwoThreadsMutualExclusion)
{
    runBakery(GetParam(), 2, 8);
}

TEST_P(BakeryDesigns, FourThreadsMutualExclusion)
{
    // Packed E[]/N[] arrays: this exercises false sharing under every
    // design (Conditional Order for SW+, recovery for W+).
    runBakery(GetParam(), 4, 5);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, BakeryDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });
