#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "runtime/the_deque.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;
using namespace asf::regs;

namespace
{

/** Owner: take until empty, summing tasks into [resAddr]. */
Program
drainOwner(const TheDeque &q, Addr res)
{
    Assembler a("owner");
    a.li(env0, int64_t(q.base));
    a.li(s0, 0); // sum
    a.li(s9, int64_t(dequeEmpty));
    a.bind("loop");
    emitTake(a, q, env0, a0, t0, t1, t2, t3);
    a.beq(a0, s9, "done");
    a.add(s0, s0, a0);
    a.jmp("loop");
    a.bind("done");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s0);
    a.halt();
    return a.finish();
}

/** Thief: steal until empty, summing tasks into [resAddr]. */
Program
drainThief(const TheDeque &q, Addr res, unsigned attempts)
{
    Assembler a("thief");
    a.li(env0, int64_t(q.base));
    a.li(s0, 0);
    a.li(s1, int64_t(attempts));
    a.li(s9, int64_t(dequeEmpty));
    a.bind("loop");
    emitSteal(a, q, env0, a0, t0, t1, t2, t3);
    a.beq(a0, s9, "next");
    a.add(s0, s0, a0);
    a.bind("next");
    a.addi(s1, s1, -1);
    a.li(t0, 0);
    a.blt(t0, s1, "loop");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s0);
    a.halt();
    return a.finish();
}

} // namespace

TEST(TheDeque, OwnerDrainsSeededTasksLifo)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    GuestLayout layout;
    TheDeque q = allocTheDeque(layout, 64);
    seedDeque(sys.memory(), q, {10, 20, 30});
    sys.loadProgram(0, share(drainOwner(q, 0x8000)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x8000), 60u);
}

TEST(TheDeque, ThiefStealsFromHead)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    GuestLayout layout;
    TheDeque q = allocTheDeque(layout, 64);
    seedDeque(sys.memory(), q, {10, 20, 30});
    sys.loadProgram(0, share(drainThief(q, 0x8000, 5)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x8000), 60u);
}

TEST(TheDeque, PushThenTakeRoundTrips)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    GuestLayout layout;
    TheDeque q = allocTheDeque(layout, 64);
    seedDeque(sys.memory(), q, {});
    Assembler a("pushtake");
    a.li(env0, int64_t(q.base));
    a.li(a1, 77);
    emitPush(a, q, env0, a1, t0, t1);
    emitTake(a, q, env0, a0, t0, t1, t2, t3);
    a.li(t0, 0x8000);
    a.st(t0, 0, a0);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x8000), 77u);
}

class DequeRace : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(DequeRace, EveryTaskTakenExactlyOnce)
{
    // The THE protocol's whole point: with the fences in place, a task
    // is never lost and never executed twice, whichever design is live.
    System sys(smallConfig(GetParam(), 2));
    GuestLayout layout;
    TheDeque q = allocTheDeque(layout, 128);
    std::vector<uint64_t> tasks;
    uint64_t expect = 0;
    for (uint64_t i = 1; i <= 40; i++) {
        tasks.push_back(i);
        expect += i;
    }
    seedDeque(sys.memory(), q, tasks);
    sys.loadProgram(0, share(drainOwner(q, 0x8000)));
    sys.loadProgram(1, share(drainThief(q, 0x8040, 200)));
    runToCompletion(sys);
    uint64_t got =
        sys.debugReadWord(0x8000) + sys.debugReadWord(0x8040);
    EXPECT_EQ(got, expect)
        << "task lost or duplicated under "
        << fenceDesignName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DequeRace,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });
