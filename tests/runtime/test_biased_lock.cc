#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/biased_lock.hh"
#include "runtime/regs.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;
using namespace asf::regs;

namespace
{

Program
ownerProgram(const BiasedLock &lock, Addr counter, int iters,
             unsigned think)
{
    Assembler a("bl_owner");
    a.li(s0, iters);
    a.li(s1, int64_t(lock.base));
    a.li(s2, int64_t(counter));
    a.bind("loop");
    emitBiasedOwnerAcquire(a, s1, s3, t0, t1);
    a.ld(t0, s2, 0);
    a.addi(t0, t0, 1);
    a.st(s2, 0, t0);
    emitBiasedOwnerRelease(a, s1, s3, t0);
    if (think)
        a.compute(int64_t(think));
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.halt();
    return a.finish();
}

Program
otherProgram(const BiasedLock &lock, Addr counter, int iters,
             unsigned think)
{
    Assembler a("bl_other");
    a.li(s0, iters);
    a.li(s1, int64_t(lock.base));
    a.li(s2, int64_t(counter));
    a.bind("loop");
    emitBiasedOtherAcquire(a, s1, t0, t1, t2, t3);
    a.ld(t0, s2, 0);
    a.addi(t0, t0, 1);
    a.st(s2, 0, t0);
    emitBiasedOtherRelease(a, s1, t0, t1, t2);
    if (think)
        a.compute(int64_t(think));
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.halt();
    return a.finish();
}

} // namespace

TEST(BiasedLock, UncontendedOwnerStaysOnFastPath)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    GuestLayout layout;
    BiasedLock lock = allocBiasedLock(layout);
    Addr counter = layout.granule();
    sys.loadProgram(0, share(ownerProgram(lock, counter, 50, 0)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(counter), 50u);
    // No one ever took the mutex.
    EXPECT_EQ(sys.debugReadWord(lock.mutexAddr()), 0u);
    EXPECT_EQ(sys.debugReadWord(lock.biasAddr()), 0u);
}

class BiasedLockDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(BiasedLockDesigns, OwnerAndRevokersExcludeEachOther)
{
    System sys(smallConfig(GetParam(), 4));
    GuestLayout layout;
    BiasedLock lock = allocBiasedLock(layout);
    Addr counter = layout.granule();
    sys.loadProgram(0, share(ownerProgram(lock, counter, 30, 10)));
    for (int i = 1; i < 4; i++)
        sys.loadProgram(i, share(otherProgram(lock, counter, 10, 40)));
    auto res = sys.run(30'000'000);
    ASSERT_EQ(res, System::RunResult::AllDone)
        << "biased lock hung under " << fenceDesignName(GetParam());
    EXPECT_EQ(sys.debugReadWord(counter), 30u + 3 * 10u)
        << "mutual exclusion violated under "
        << fenceDesignName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, BiasedLockDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

TEST(BiasedLock, OwnerFastPathCheaperUnderWeakFence)
{
    auto owner_cycles = [](FenceDesign d) {
        System sys(smallConfig(d, 2));
        GuestLayout layout;
        BiasedLock lock = allocBiasedLock(layout);
        Addr counter = layout.granule();
        // A background thread keeps the revokers line shared so the
        // owner's fence actually has coherence work to hide.
        sys.loadProgram(0, share(ownerProgram(lock, counter, 100, 0)));
        sys.loadProgram(1, share(otherProgram(lock, counter, 3, 200)));
        EXPECT_EQ(sys.run(30'000'000), System::RunResult::AllDone);
        return sys.core(0).stats().get("fenceStallCycles");
    };
    uint64_t sf_stall = owner_cycles(FenceDesign::SPlus);
    uint64_t wf_stall = owner_cycles(FenceDesign::WSPlus);
    EXPECT_LT(wf_stall, sf_stall);
}
