#include <gtest/gtest.h>

#include "mem/memory_image.hh"

using namespace asf;

TEST(MemoryImage, ZeroFilledByDefault)
{
    MemoryImage m;
    EXPECT_EQ(m.readWord(0x1000), 0u);
    LineData l = m.readLine(0x1000);
    for (auto w : l)
        EXPECT_EQ(w, 0u);
}

TEST(MemoryImage, WordReadBack)
{
    MemoryImage m;
    m.writeWord(0x1008, 42);
    EXPECT_EQ(m.readWord(0x1008), 42u);
    EXPECT_EQ(m.readWord(0x1000), 0u);
}

TEST(MemoryImage, LineAndWordViewsAgree)
{
    MemoryImage m;
    m.writeWord(0x2000, 1);
    m.writeWord(0x2018, 4);
    LineData l = m.readLine(0x2000);
    EXPECT_EQ(l[0], 1u);
    EXPECT_EQ(l[3], 4u);
    l[2] = 99;
    m.writeLine(0x2000, l);
    EXPECT_EQ(m.readWord(0x2010), 99u);
}

TEST(MemoryImage, MergeWordTouchesOneWord)
{
    MemoryImage m;
    m.writeWord(0x3000, 7);
    m.mergeWord(0x3000, 2, 9);
    EXPECT_EQ(m.readWord(0x3000), 7u);
    EXPECT_EQ(m.readWord(0x3010), 9u);
}

TEST(MemoryImage, UnalignedAccessPanics)
{
    MemoryImage m;
    EXPECT_DEATH(m.readWord(0x1004), "unaligned");
    EXPECT_DEATH(m.readLine(0x1008), "unaligned");
}

TEST(MemoryImage, FootprintCountsLines)
{
    MemoryImage m;
    m.writeWord(0x1000, 1);
    m.writeWord(0x1008, 1); // same line
    m.writeWord(0x2000, 1);
    EXPECT_EQ(m.footprintLines(), 2u);
}
