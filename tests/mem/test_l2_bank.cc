#include <gtest/gtest.h>

#include "mem/l2_bank.hh"

using namespace asf;

TEST(L2Bank, MissCostsMemoryThenHitsCostBank)
{
    L2Bank l2(0, 128 * 1024, 8, 11, 200);
    EXPECT_EQ(l2.access(0x1000), 200u);
    EXPECT_EQ(l2.access(0x1000), 11u);
    EXPECT_TRUE(l2.contains(0x1000));
    EXPECT_FALSE(l2.contains(0x2000));
}

TEST(L2Bank, StatsCountHitsAndMisses)
{
    L2Bank l2(0, 128 * 1024, 8, 11, 200);
    l2.access(0x1000);
    l2.access(0x1000);
    l2.access(0x2000);
    EXPECT_EQ(l2.stats().get("misses"), 2u);
    EXPECT_EQ(l2.stats().get("hits"), 1u);
}

TEST(L2Bank, CapacityEvictions)
{
    // Tiny bank: 8 lines, 2-way -> 4 sets. Hammer one set.
    L2Bank l2(0, 8 * 32, 2, 11, 200);
    Addr set_stride = 4 * 32;
    l2.access(0x0);
    l2.access(set_stride);
    l2.access(2 * set_stride); // evicts 0x0
    EXPECT_EQ(l2.stats().get("evictions"), 1u);
    EXPECT_FALSE(l2.contains(0x0));
    EXPECT_EQ(l2.access(0x0), 200u); // miss again
}
