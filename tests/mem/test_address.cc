#include <gtest/gtest.h>

#include "mem/address.hh"

using namespace asf;

TEST(Address, LineAlignment)
{
    EXPECT_EQ(lineAlign(0x1000), 0x1000u);
    EXPECT_EQ(lineAlign(0x101f), 0x1000u);
    EXPECT_EQ(lineAlign(0x1020), 0x1020u);
    EXPECT_TRUE(isLineAligned(0x40));
    EXPECT_FALSE(isLineAligned(0x48));
}

TEST(Address, WordInLine)
{
    EXPECT_EQ(wordInLine(0x1000), 0u);
    EXPECT_EQ(wordInLine(0x1008), 1u);
    EXPECT_EQ(wordInLine(0x1010), 2u);
    EXPECT_EQ(wordInLine(0x1018), 3u);
}

TEST(Address, WordMasks)
{
    EXPECT_EQ(wordMaskFor(0x1000), 0x1);
    EXPECT_EQ(wordMaskFor(0x1018), 0x8);
    EXPECT_EQ(fullLineMask(), 0xf);
}

TEST(Address, HomeNodeInterleavesByGranule)
{
    EXPECT_EQ(homeNode(0x0, 8), 0);
    EXPECT_EQ(homeNode(homeGranuleBytes, 8), 1);
    EXPECT_EQ(homeNode(Addr(homeGranuleBytes) * 8, 8), 0);
    // All words of a line share a home.
    EXPECT_EQ(homeNode(0x1000, 8), homeNode(0x1018, 8));
    // Lines within one granule share a home (a single orec or deque
    // header stays in one directory module).
    EXPECT_EQ(homeNode(0x1000, 8), homeNode(0x1000 + lineBytes, 8));
}

TEST(Address, WordAlignment)
{
    EXPECT_TRUE(isWordAligned(0x8));
    EXPECT_FALSE(isWordAligned(0x4));
}
