#include <gtest/gtest.h>

#include "../helpers.hh"
#include "mem/address.hh"

using namespace asf;
using namespace asf::test;

TEST(Protocol, FirstReaderGetsExclusive)
{
    System sys(smallConfig());
    Addr x = 0x1000;
    sys.memory().writeWord(x, 77);
    sys.loadProgram(0, share(loadProgram(x, 0x2000)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x2000), 77u);
    CacheLine *l = sys.l1(0).find(lineAlign(x));
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, MesiState::Exclusive);
    EXPECT_TRUE(sys.directory(homeNode(x, 4)).isExclusive(lineAlign(x), 0));
}

TEST(Protocol, SecondReaderDowngradesToShared)
{
    System sys(smallConfig());
    Addr x = 0x1000;
    sys.memory().writeWord(x, 5);
    sys.loadProgram(0, share(loadProgram(x, 0x2000)));
    runToCompletion(sys);
    sys.loadProgram(1, share(loadProgram(x, 0x2020)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x2020), 5u);
    EXPECT_EQ(sys.l1(0).find(lineAlign(x))->state, MesiState::Shared);
    EXPECT_EQ(sys.l1(1).find(lineAlign(x))->state, MesiState::Shared);
}

TEST(Protocol, WriterGetsModifiedAndMemoryCatchesUpOnRead)
{
    System sys(smallConfig());
    Addr x = 0x1000;
    sys.loadProgram(0, share(storeProgram(x, 99)));
    runToCompletion(sys);
    EXPECT_EQ(sys.l1(0).find(lineAlign(x))->state, MesiState::Modified);
    EXPECT_EQ(sys.debugReadWord(x), 99u);

    // A remote read downgrades the owner and flushes the data home.
    sys.loadProgram(2, share(loadProgram(x, 0x3000)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x3000), 99u);
    EXPECT_EQ(sys.l1(0).find(lineAlign(x))->state, MesiState::Shared);
    EXPECT_EQ(sys.memory().readWord(x), 99u);
}

TEST(Protocol, WriterInvalidatesSharers)
{
    System sys(smallConfig());
    Addr x = 0x1000;
    sys.loadProgram(0, share(loadProgram(x, 0x2000)));
    sys.loadProgram(1, share(loadProgram(x, 0x2020)));
    runToCompletion(sys);

    sys.loadProgram(2, share(storeProgram(x, 1)));
    runToCompletion(sys);
    EXPECT_EQ(sys.l1(0).find(lineAlign(x)), nullptr);
    EXPECT_EQ(sys.l1(1).find(lineAlign(x)), nullptr);
    EXPECT_EQ(sys.l1(2).find(lineAlign(x))->state, MesiState::Modified);
    EXPECT_EQ(sys.debugReadWord(x), 1u);
}

TEST(Protocol, UpgradeFromSharedKeepsData)
{
    System sys(smallConfig());
    Addr x = 0x1000;
    sys.memory().writeWord(x, 10);
    sys.memory().writeWord(x + 8, 20);
    // Two readers -> S everywhere, then core 0 writes word 0.
    sys.loadProgram(0, share(loadProgram(x, 0x2000)));
    sys.loadProgram(1, share(loadProgram(x, 0x2020)));
    runToCompletion(sys);
    sys.loadProgram(0, share(storeProgram(x, 11)));
    runToCompletion(sys);
    CacheLine *l = sys.l1(0).find(lineAlign(x));
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, MesiState::Modified);
    // The upgrade (AckX) kept the rest of the line intact.
    EXPECT_EQ(l->data[1], 20u);
    EXPECT_EQ(sys.debugReadWord(x), 11u);
}

TEST(Protocol, DirtyEvictionWritesBack)
{
    System sys(smallConfig());
    // Write many lines that map to the same L1 set to force evictions.
    // L1: 32KB/4-way/32B lines -> 256 sets; stride = 256*32 = 8192.
    Assembler a("evict");
    a.li(1, 0x10000);
    a.li(2, 1234);
    for (int i = 0; i < 8; i++)
        a.st(1, int64_t(i) * 8192, 2);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    // At most 4 ways survive; every value must still be readable.
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(sys.debugReadWord(0x10000 + Addr(i) * 8192), 1234u);
    EXPECT_GE(sys.l1(0).stats().get("evictions"), 4u);
}

TEST(Protocol, MessagePassingThroughProtocolIsTsoCorrect)
{
    // st data; st flag on one core - a spinning reader that sees the
    // flag must see the data (TSO store order + coherence).
    System sys(smallConfig());
    Addr data = 0x1000, flag = 0x2000, res = 0x3000;

    Assembler w("writer");
    w.li(1, int64_t(data));
    w.li(2, int64_t(flag));
    w.li(3, 42);
    w.st(1, 0, 3);
    w.st(2, 0, 3);
    w.halt();

    Assembler r("reader");
    r.li(1, int64_t(data));
    r.li(2, int64_t(flag));
    r.li(4, int64_t(res));
    r.bind("spin");
    r.ld(3, 2, 0);
    r.li(5, 0);
    r.beq(3, 5, "spin");
    r.ld(6, 1, 0);
    r.st(4, 0, 6);
    r.halt();

    sys.loadProgram(0, share(w.finish()));
    sys.loadProgram(1, share(r.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(res), 42u);
}

TEST(Protocol, ConcurrentWritersSerializeThroughDirectory)
{
    // Both cores increment the same location with an atomic; final value
    // must be the sum.
    System sys(smallConfig());
    Addr x = 0x1000;

    auto makeIncr = [&](int n) {
        Assembler a("incr");
        a.li(1, int64_t(x));
        a.li(10, n);
        a.bind("loop");
        a.bind("casloop");
        a.ld(2, 1, 0);       // expect
        a.addi(3, 2, 1);     // desired
        a.cas(4, 1, 0, 2, 3);
        a.bne(4, 2, "casloop");
        a.addi(10, 10, -1);
        a.li(5, 0);
        a.blt(5, 10, "loop");
        a.halt();
        return share(a.finish());
    };
    sys.loadProgram(0, makeIncr(50));
    sys.loadProgram(1, makeIncr(50));
    sys.loadProgram(2, makeIncr(50));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(x), 150u);
}

TEST(Protocol, DirectorySerializesPerLine)
{
    System sys(smallConfig());
    Addr x = 0x1000;
    // While a transaction is active the line is busy; this is indirectly
    // observable through queued-request accounting after a run with
    // contention.
    sys.loadProgram(0, share(storeProgram(x, 1)));
    sys.loadProgram(1, share(storeProgram(x, 2)));
    sys.loadProgram(2, share(storeProgram(x, 3)));
    runToCompletion(sys);
    // One of the three values won (last writer); the line is coherent.
    uint64_t v = sys.debugReadWord(x);
    EXPECT_TRUE(v == 1 || v == 2 || v == 3);
    EXPECT_FALSE(sys.directory(homeNode(x, 4)).lineBusy(lineAlign(x)));
}
