/**
 * Message-level unit tests of the Directory: a scripted "L1 side"
 * answers probes by hand, so each protocol decision (grant type, probe
 * fan-out, bounce abort, Order/CondOrder finalization) is observable in
 * isolation from the core model.
 */

#include <gtest/gtest.h>

#include <deque>

#include "mem/address.hh"
#include "mem/directory.hh"
#include "mem/l2_bank.hh"
#include "mem/memory_image.hh"
#include "noc/mesh.hh"

using namespace asf;

namespace
{

class DirectoryUnit : public ::testing::Test
{
  protected:
    static constexpr unsigned kNodes = 4;
    static constexpr NodeId kHome = 0;

    DirectoryUnit()
        : mesh(eq, kNodes), l2(kHome, 128 * 1024, 8, 11, 200),
          dir(kHome, kNodes, mesh, eq, memory, l2, 6)
    {
        for (unsigned n = 0; n < kNodes; n++) {
            mesh.setSink(NodeId(n), [this, n](const Message &m) {
                if (m.dst == kHome &&
                    (m.type == MsgType::GetS || m.type == MsgType::GetX ||
                     m.type == MsgType::OrderWrite ||
                     m.type == MsgType::CondOrderWrite ||
                     m.type == MsgType::PutM || m.type == MsgType::PutE ||
                     m.type == MsgType::InvAck ||
                     m.type == MsgType::DwngrAck)) {
                    dir.handle(m);
                } else {
                    inbox[n].push_back(m);
                }
            });
        }
    }

    /** Run the clock forward. */
    void
    advance(Tick cycles)
    {
        eq.runUntil(eq.now() + cycles);
    }

    /** Pop the oldest message delivered to node n (fatal if none). */
    Message
    recv(unsigned n)
    {
        EXPECT_FALSE(inbox[n].empty()) << "no message at node " << n;
        Message m = inbox[n].front();
        inbox[n].pop_front();
        return m;
    }

    bool
    pending(unsigned n) const
    {
        return !inbox[n].empty();
    }

    Message
    request(MsgType t, NodeId src, Addr line)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = kHome;
        m.addr = line;
        m.requester = src;
        return m;
    }

    /** Answer an Inv probe the way a cooperative L1 would. */
    void
    ack(const Message &probe, NodeId me, bool had_line, bool dirty,
        BsMatch match, bool bounced)
    {
        Message a;
        a.type = MsgType::InvAck;
        a.src = me;
        a.dst = kHome;
        a.addr = probe.addr;
        a.requester = probe.requester;
        a.hadLine = had_line;
        a.bsMatch = match;
        a.bounced = bounced;
        a.keepSharer = !bounced && match != BsMatch::None;
        if (dirty) {
            a.hasData = true;
            a.data = LineData{1, 2, 3, 4};
        }
        mesh.send(std::move(a));
    }

    EventQueue eq;
    MemoryImage memory;
    Mesh mesh;
    L2Bank l2;
    Directory dir;
    std::deque<Message> inbox[kNodes];
};

// The line must be homed at node 0 (addr/512 % 4 == 0).
constexpr Addr kLine = 0x1000;

} // namespace

TEST_F(DirectoryUnit, FirstGetSGrantsExclusive)
{
    memory.writeWord(kLine, 99);
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(400);
    Message m = recv(1);
    EXPECT_EQ(m.type, MsgType::DataE);
    EXPECT_EQ(m.data[0], 99u);
    EXPECT_TRUE(dir.isExclusive(kLine, 1));
}

TEST_F(DirectoryUnit, SecondGetSDowngradesTheOwner)
{
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(400);
    recv(1);
    mesh.send(request(MsgType::GetS, 2, kLine));
    advance(50);
    Message probe = recv(1);
    EXPECT_EQ(probe.type, MsgType::Dwngr);
    // The (silently M) owner returns dirty data.
    Message a;
    a.type = MsgType::DwngrAck;
    a.src = 1;
    a.dst = kHome;
    a.addr = kLine;
    a.hadLine = true;
    a.hasData = true;
    a.data = LineData{7, 0, 0, 0};
    mesh.send(std::move(a));
    advance(100);
    Message m = recv(2);
    EXPECT_EQ(m.type, MsgType::DataS);
    EXPECT_EQ(m.data[0], 7u); // owner's dirty data reached memory
    EXPECT_FALSE(dir.isExclusive(kLine, 1));
    EXPECT_TRUE(dir.isSharer(kLine, 1));
    EXPECT_TRUE(dir.isSharer(kLine, 2));
}

TEST_F(DirectoryUnit, GetXInvalidatesEverySharer)
{
    // Two sharers via GetS + GetS (answering the downgrade).
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(400);
    recv(1);
    mesh.send(request(MsgType::GetS, 2, kLine));
    advance(50);
    ack(recv(1), 1, true, false, BsMatch::None, false); // clean E owner
    // DwngrAck expected, not InvAck; redo properly:
    advance(100);
    // (The Dwngr was answered with an InvAck above; the directory
    // treats both acks alike for bookkeeping, so the grant proceeds.)
    recv(2);

    mesh.send(request(MsgType::GetX, 3, kLine));
    advance(50);
    Message p1 = recv(1);
    Message p2 = recv(2);
    EXPECT_EQ(p1.type, MsgType::Inv);
    EXPECT_EQ(p2.type, MsgType::Inv);
    EXPECT_FALSE(p1.orderBit);
    ack(p1, 1, true, false, BsMatch::None, false);
    ack(p2, 2, true, false, BsMatch::None, false);
    advance(100);
    Message grant = recv(3);
    EXPECT_EQ(grant.type, MsgType::DataX);
    EXPECT_TRUE(dir.isExclusive(kLine, 3));
    EXPECT_FALSE(dir.isSharer(kLine, 1));
    EXPECT_FALSE(dir.isSharer(kLine, 2));
}

TEST_F(DirectoryUnit, BounceAbortsTheWriteAndKeepsTheSharer)
{
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(400);
    recv(1);
    mesh.send(request(MsgType::GetX, 2, kLine));
    advance(50);
    Message probe = recv(1);
    ack(probe, 1, true, false, BsMatch::TrueShare, /*bounced=*/true);
    advance(100);
    Message nack = recv(2);
    EXPECT_EQ(nack.type, MsgType::NackX);
    EXPECT_EQ(nack.trafficClass, TrafficClass::Retry);
    EXPECT_TRUE(dir.isSharer(kLine, 1)) << "bouncer must stay a sharer";
    EXPECT_FALSE(dir.isExclusive(kLine, 2));
}

TEST_F(DirectoryUnit, OrderWriteMergesAndKeepsMonitors)
{
    memory.writeWord(kLine + 8, 5);
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(400);
    recv(1);

    Message ow = request(MsgType::OrderWrite, 2, kLine);
    ow.updateWord = 0;
    ow.updateValue = 42;
    mesh.send(std::move(ow));
    advance(50);
    Message probe = recv(1);
    EXPECT_EQ(probe.type, MsgType::Inv);
    EXPECT_TRUE(probe.orderBit);
    // The sharer invalidates but reports it still monitors the line.
    ack(probe, 1, true, false, BsMatch::TrueShare, /*bounced=*/false);
    advance(100);
    Message done = recv(2);
    EXPECT_EQ(done.type, MsgType::AckOrder);
    EXPECT_EQ(done.data[0], 42u); // the merged update comes back
    EXPECT_EQ(done.data[1], 5u);
    EXPECT_EQ(memory.readWord(kLine), 42u);
    EXPECT_TRUE(dir.isSharer(kLine, 1)) << "monitor must stay a sharer";
    EXPECT_TRUE(dir.isSharer(kLine, 2));
    EXPECT_FALSE(dir.isExclusive(kLine, 2));
}

TEST_F(DirectoryUnit, CondOrderFailsOnTrueSharingOnly)
{
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(400);
    recv(1);

    Message co = request(MsgType::CondOrderWrite, 2, kLine);
    co.updateWord = 0;
    co.updateValue = 7;
    co.wordMask = wordMaskFor(kLine);
    mesh.send(Message(co));
    advance(50);
    ack(recv(1), 1, true, false, BsMatch::TrueShare, false);
    advance(100);
    EXPECT_EQ(recv(2).type, MsgType::NackCO);
    EXPECT_EQ(memory.readWord(kLine), 0u) << "failed CO must not merge";

    // Retry; this time the sharer reports false sharing.
    mesh.send(Message(co));
    advance(50);
    ack(recv(1), 1, false, false, BsMatch::FalseShare, false);
    advance(100);
    EXPECT_EQ(recv(2).type, MsgType::AckOrder);
    EXPECT_EQ(memory.readWord(kLine), 7u);
}

TEST_F(DirectoryUnit, RequestsForBusyLineQueue)
{
    mesh.send(request(MsgType::GetS, 1, kLine));
    advance(10); // delivered (1 hop), storage still pending (200 cyc)
    EXPECT_TRUE(dir.lineBusy(kLine));
    mesh.send(request(MsgType::GetS, 2, kLine));
    advance(20);
    EXPECT_EQ(dir.queuedRequests(kLine), 1u);
    advance(400);
    EXPECT_EQ(recv(1).type, MsgType::DataE);
    // The queued request was served in order, after a downgrade probe.
    Message probe = recv(1);
    EXPECT_EQ(probe.type, MsgType::Dwngr);
    Message a;
    a.type = MsgType::DwngrAck;
    a.src = 1;
    a.dst = kHome;
    a.addr = kLine;
    a.hadLine = true;
    mesh.send(std::move(a));
    advance(100);
    EXPECT_EQ(recv(2).type, MsgType::DataS);
    EXPECT_FALSE(dir.lineBusy(kLine));
}

TEST_F(DirectoryUnit, PutMWritesBackAndDropsOwnership)
{
    mesh.send(request(MsgType::GetX, 1, kLine));
    advance(400);
    recv(1);
    Message put = request(MsgType::PutM, 1, kLine);
    put.hasData = true;
    put.data = LineData{11, 22, 33, 44};
    put.keepSharer = false;
    mesh.send(std::move(put));
    advance(50);
    EXPECT_EQ(memory.readWord(kLine), 11u);
    EXPECT_FALSE(dir.isExclusive(kLine, 1));
    EXPECT_FALSE(dir.isSharer(kLine, 1));
}

TEST_F(DirectoryUnit, PutWithKeepSharerRetainsMonitoring)
{
    mesh.send(request(MsgType::GetX, 1, kLine));
    advance(400);
    recv(1);
    Message put = request(MsgType::PutM, 1, kLine);
    put.hasData = true;
    put.data = LineData{11, 0, 0, 0};
    put.keepSharer = true; // the line's address is in the evictor's BS
    mesh.send(std::move(put));
    advance(50);
    EXPECT_FALSE(dir.isExclusive(kLine, 1));
    EXPECT_TRUE(dir.isSharer(kLine, 1));
    // A later write must therefore probe node 1.
    mesh.send(request(MsgType::GetX, 2, kLine));
    advance(50);
    EXPECT_EQ(recv(1).type, MsgType::Inv);
}
