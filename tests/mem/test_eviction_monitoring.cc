/**
 * Directed tests for the paper's Section 5.1: evictions of lines whose
 * address sits in the Bypass Set must keep the evictor registered as a
 * sharer, so its BS continues to see (and bounce) future writes.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "mem/address.hh"

using namespace asf;
using namespace asf::test;

namespace
{

/**
 * Core 0: one missing pre-fence store, a weak fence, then a post-fence
 * load of `target` (enters the BS) followed by a burst of loads mapping
 * to target's L1 set, evicting it while the fence is still pending.
 * L1 = 32KB/4-way: set stride is 8KB.
 */
Program
evictingReader(Addr pending, Addr target, unsigned evict_loads)
{
    Assembler a("evicting_reader");
    a.li(1, int64_t(target));
    // Warm the target AND the evicting lines, so the post-fence burst
    // below runs entirely on hits while the fence is still pending.
    a.ld(2, 1, 0);
    for (unsigned i = 1; i <= evict_loads; i++)
        a.ld(2, 1, int64_t(i) * 8192);
    a.compute(200);
    a.li(3, int64_t(pending));
    a.li(4, 1);
    a.st(3, 0, 4);    // two missing pre-fence stores keep the
    a.st(3, 8192, 4); // fence pending through the whole scenario
    a.fence(FenceRole::Critical);
    a.ld(2, 1, 0); // completes early -> BS
    for (unsigned i = 1; i <= evict_loads; i++)
        a.ld(5, 1, int64_t(i) * 8192); // same set: evicts target
    a.compute(2000); // keep the thread alive while writes bounce
    a.halt();
    return a.finish();
}

} // namespace

TEST(EvictionMonitoring, EvictedBsLineStillBouncesWrites)
{
    SystemConfig cfg = smallConfig(FenceDesign::WSPlus, 2);
    cfg.bsEntries = 32;
    System sys(cfg);
    Addr pending = 0x200000; // cold store: fence stays incomplete
    Addr target = 0x1000;

    sys.loadProgram(0, share(evictingReader(pending, target, 6)));

    // Core 1 writes the (by now evicted at core 0) BS-protected line
    // while core 0's fence is still pending: the invalidation must still
    // reach core 0's BS and bounce. Its delay covers core 0's warm
    // phase (7 cold loads + compute) plus a little of the fence window.
    Assembler b("writer");
    b.li(1, int64_t(target));
    b.compute(1900);
    b.li(2, 9);
    b.st(1, 0, 2);
    b.halt();
    sys.loadProgram(1, share(b.finish()));

    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(target), 9u);
    uint64_t bounces = sys.core(0).stats().get("bsBounces");
    uint64_t evictions = sys.l1(0).stats().get("evictions");
    EXPECT_GE(evictions, 1u);
    EXPECT_GE(bounces, 1u)
        << "eviction lost the BS's ability to monitor the line";
}

TEST(EvictionMonitoring, CleanExclusiveEvictionSendsNotice)
{
    // E-line evictions must notify the directory (PutE) so exclusive
    // tracking stays coherent.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Assembler a("filler");
    a.li(1, 0x1000);
    a.ld(2, 1, 0); // target line, granted E
    for (int i = 1; i <= 6; i++)
        a.ld(2, 1, int64_t(i) * 8192); // evict it
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    uint64_t putes = 0;
    for (unsigned n = 0; n < 2; n++)
        putes += sys.directory(NodeId(n)).stats().get("PutE");
    EXPECT_GE(putes, 1u);
    // After the notice the line is not exclusive anywhere.
    EXPECT_FALSE(sys.directory(homeNode(0x1000, 2)).isExclusive(0x1000, 0));
}

TEST(EvictionMonitoring, DirtyEvictionWritesBackAndClearsOwnership)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Assembler a("dirty");
    a.li(1, 0x1000);
    a.li(2, 77);
    a.st(1, 0, 2); // make the line M
    for (int i = 1; i <= 6; i++)
        a.ld(3, 1, int64_t(i) * 8192); // evict it
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.memory().readWord(0x1000), 77u);
    EXPECT_FALSE(sys.directory(homeNode(0x1000, 2)).isExclusive(0x1000, 0));
    uint64_t putms = 0;
    for (unsigned n = 0; n < 2; n++)
        putms += sys.directory(NodeId(n)).stats().get("PutM");
    EXPECT_GE(putms, 1u);
}

TEST(EvictionMonitoring, SharedEvictionIsSilent)
{
    // S evictions send nothing; the stale directory entry is harmless
    // (and is what keeps BS monitoring alive).
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Addr x = 0x1000;
    sys.memory().writeWord(x, 5);
    // Two readers -> both Shared.
    sys.loadProgram(0, share(loadProgram(x, 0x3000)));
    sys.loadProgram(1, share(loadProgram(x, 0x3020)));
    runToCompletion(sys);

    // Exactly enough fills that the one eviction victim is x itself
    // (LRU, Shared); the young Exclusive fills stay resident.
    Assembler a("filler");
    a.li(1, int64_t(x));
    for (int i = 1; i <= 4; i++)
        a.ld(2, 1, int64_t(i) * 8192);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);

    // Directory still lists core 0 as a (stale) sharer.
    EXPECT_TRUE(sys.directory(homeNode(x, 2)).isSharer(lineAlign(x), 0));
    uint64_t puts = 0;
    for (unsigned n = 0; n < 2; n++)
        puts += sys.directory(NodeId(n)).stats().get("PutE") +
                sys.directory(NodeId(n)).stats().get("PutM");
    EXPECT_EQ(puts, 0u);
}
