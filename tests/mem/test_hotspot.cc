/**
 * Per-line hot-spot attribution tests: Space-Saving sketch mechanics
 * (eviction, error bounds, determinism), the observation-only
 * guarantee (tracker on/off is bit-identical), and the anti-vacuity
 * property that on real contended kernels (Dekker, bakery) the
 * synchronization lines actually rank at the top.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "../helpers.hh"
#include "analysis/corpus.hh"
#include "analysis/synth.hh"
#include "mem/address.hh"
#include "mem/hotspot.hh"
#include "workloads/ustm.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::workloads;

namespace
{

Addr
lineAddr(unsigned i)
{
    return Addr(0x10000) + Addr(i) * lineBytes;
}

} // namespace

TEST(HotLineTracker, CountsAndAttributesPerLine)
{
    HotLineTracker t(8);
    t.record(lineAddr(0), HotEvent::Bounce);
    t.record(lineAddr(0), HotEvent::Bounce);
    t.record(lineAddr(0), HotEvent::NackX);
    t.record(lineAddr(1), HotEvent::L2Miss);
    // Sub-line addresses charge the containing line.
    t.record(lineAddr(0) + 8, HotEvent::Bounce);

    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.totalRecorded(), 5u);
    EXPECT_EQ(t.evictions(), 0u);
    auto top = t.top();
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].line, lineAddr(0));
    EXPECT_EQ(top[0].count, 4u);
    EXPECT_EQ(top[0].error, 0u);
    EXPECT_EQ(top[0].byEvent[unsigned(HotEvent::Bounce)], 3u);
    EXPECT_EQ(top[0].byEvent[unsigned(HotEvent::NackX)], 1u);
    EXPECT_EQ(top[1].count, 1u);
}

TEST(HotLineTracker, SharerPeakTracksMaximum)
{
    HotLineTracker t(4);
    t.recordSharers(lineAddr(0), 2);
    t.recordSharers(lineAddr(0), 7);
    t.recordSharers(lineAddr(0), 3);
    auto top = t.top();
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].sharerPeak, 7u);
    EXPECT_EQ(top[0].count, 3u);
    EXPECT_EQ(top[0].byEvent[unsigned(HotEvent::SharerProbe)], 3u);
}

TEST(HotLineTracker, SpaceSavingEvictsMinimumAndInheritsError)
{
    HotLineTracker t(2);
    t.record(lineAddr(0), HotEvent::Bounce, 5);
    t.record(lineAddr(1), HotEvent::Bounce, 2);
    // Table full; a new line evicts line 1 (the minimum) and inherits
    // its count of 2 as the overestimation bound.
    t.record(lineAddr(2), HotEvent::Bounce);
    EXPECT_EQ(t.evictions(), 1u);
    EXPECT_EQ(t.size(), 2u);
    auto top = t.top();
    EXPECT_EQ(top[0].line, lineAddr(0));
    EXPECT_EQ(top[0].count, 5u);
    EXPECT_EQ(top[1].line, lineAddr(2));
    EXPECT_EQ(top[1].count, 3u); // inherited 2 + its own 1
    EXPECT_EQ(top[1].error, 2u);
    // Attribution never inherits: only the newcomer's own event.
    EXPECT_EQ(top[1].byEvent[unsigned(HotEvent::Bounce)], 1u);
}

TEST(HotLineTracker, EvictionTieBreaksOnLowerAddress)
{
    HotLineTracker t(2);
    t.record(lineAddr(3), HotEvent::Bounce);
    t.record(lineAddr(1), HotEvent::Bounce);
    // Both counts are 1: the lower address (line 1) must be evicted.
    t.record(lineAddr(5), HotEvent::Bounce);
    auto top = t.top();
    ASSERT_EQ(top.size(), 2u);
    std::map<Addr, uint64_t> by_line;
    for (const auto &e : top)
        by_line[e.line] = e.count;
    EXPECT_TRUE(by_line.count(lineAddr(3)));
    EXPECT_TRUE(by_line.count(lineAddr(5)));
    EXPECT_FALSE(by_line.count(lineAddr(1)));
}

TEST(HotLineTracker, HeavyHitterSurvivesStreamingTail)
{
    // The Space-Saving guarantee: any line with true frequency > N/K
    // is present in the table, no matter how the tail streams through.
    constexpr unsigned K = 8;
    HotLineTracker t(K);
    uint64_t n = 0;
    // Hitter: 500 of 1450 total events; N/K ~= 181, so the guarantee
    // (true frequency > N/K implies presence) applies to it alone.
    for (unsigned round = 0; round < 50; round++) {
        t.record(lineAddr(0), HotEvent::Bounce, 10); // the heavy hitter
        n += 10;
        for (unsigned i = 1; i < 20; i++) { // one-touch tail
            t.record(lineAddr(100 + round * 20 + i), HotEvent::L2Miss);
            n++;
        }
    }
    EXPECT_EQ(t.totalRecorded(), n);
    EXPECT_GT(t.evictions(), 0u);
    auto top = t.top();
    bool found = false;
    for (const auto &e : top)
        if (e.line == lineAddr(0)) {
            found = true;
            // count is an upper bound, count - error a lower bound.
            EXPECT_GE(e.count, 500u);
            EXPECT_GE(e.count - e.error, 1u);
        }
    EXPECT_TRUE(found) << "heavy hitter evicted despite f > N/K";
    // Any tail line's count is bounded by min+1 <= N/K + 1 < 500, so
    // the hitter must also rank first.
    EXPECT_EQ(top[0].line, lineAddr(0));
}

TEST(HotLineTracker, ResetForgetsEverything)
{
    HotLineTracker t(2);
    t.record(lineAddr(0), HotEvent::Bounce);
    t.record(lineAddr(1), HotEvent::Bounce);
    t.record(lineAddr(2), HotEvent::Bounce);
    t.reset();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.totalRecorded(), 0u);
    EXPECT_EQ(t.evictions(), 0u);
    t.record(lineAddr(5), HotEvent::NackCO);
    auto top = t.top();
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].error, 0u);
}

TEST(AddrLabels, LineGranularityLookup)
{
    AddrLabels labels;
    labels.label(lineAddr(1), "lock.word");
    EXPECT_EQ(labels.lookup(lineAddr(1)), "lock.word");
    EXPECT_EQ(labels.lookup(lineAddr(1) + lineBytes - 1), "lock.word");
    EXPECT_EQ(labels.lookup(lineAddr(2)), "");
    EXPECT_FALSE(labels.empty());
    labels.clear();
    EXPECT_TRUE(labels.empty());
}

namespace
{

void
runQuickUstm(FenceDesign design, bool hotline, Tick &cycles,
             std::string &json)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.design = design;
    cfg.hotLineTracking = hotline;
    System sys(cfg);
    setupTlrwWorkload(sys, ustmBenchByName("Hash"), /*txn_limit=*/0);
    ASSERT_EQ(sys.run(30'000), System::RunResult::MaxCycles);
    cycles = sys.now();
    std::ostringstream os;
    sys.dumpStatsJson(os, /*include_profile=*/true,
                      /*include_check=*/true,
                      /*include_observatory=*/false);
    json = os.str();
    EXPECT_EQ(hotline, sys.hotLines() != nullptr);
}

} // namespace

class HotspotIdentity : public ::testing::TestWithParam<FenceDesign>
{
};

/** Observation-only: tracking on/off must not perturb the simulation
 *  (cycles and the full stats JSON minus the hotLines block itself). */
TEST_P(HotspotIdentity, OnOffIsBitIdentical)
{
    Tick cycles_on = 0, cycles_off = 0;
    std::string json_on, json_off;
    runQuickUstm(GetParam(), true, cycles_on, json_on);
    runQuickUstm(GetParam(), false, cycles_off, json_off);
    EXPECT_EQ(cycles_on, cycles_off);
    EXPECT_EQ(json_on, json_off);
}

// S+ (sharer probes, L2 misses), W+ (bounces, NACKs, BS conflicts) and
// Wee (GRT deposits/blocks) cover every attribution hook.
INSTANTIATE_TEST_SUITE_P(QuickFig10, HotspotIdentity,
                         ::testing::Values(FenceDesign::SPlus,
                                           FenceDesign::WPlus,
                                           FenceDesign::Wee),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

namespace
{

/** Run a synthesis-corpus kit like the harness does and return the
 *  system's hot-line ranking labels, top first. */
std::vector<std::string>
rankedLabels(const std::string &kit, size_t limit)
{
    analysis::CorpusEntry entry = analysis::buildCorpusEntry(kit);
    analysis::SynthResult synth = analysis::synthesize(entry.threads);
    SystemConfig cfg;
    cfg.numCores = unsigned(std::max<size_t>(4, entry.threads.size()));
    cfg.design = FenceDesign::SPlus;
    System sys(cfg);
    for (size_t t = 0; t < synth.fenced.size(); t++)
        sys.loadProgram(NodeId(t), synth.fenced[t]);
    if (entry.setup)
        entry.setup(sys);
    EXPECT_EQ(sys.run(entry.maxCycles), System::RunResult::AllDone);

    std::vector<std::string> labels;
    const HotLineTracker *hot = sys.hotLines();
    EXPECT_NE(hot, nullptr);
    for (const auto &e : hot->top()) {
        if (labels.size() == limit)
            break;
        labels.push_back(sys.addrLabels().lookup(e.line));
    }
    return labels;
}

} // namespace

/** Anti-vacuity: the attribution must actually find the contended
 *  synchronization lines, not just emit a well-formed block. Dekker's
 *  two flag/turn lines and bakery's ticket arrays are the known-hot
 *  lines of those kernels. */
TEST(HotspotRanking, DekkerFlagsRankTop)
{
    auto labels = rankedLabels("dekker", 2);
    ASSERT_EQ(labels.size(), 2u);
    // The spin targets (a flag line and the turn word, in either
    // order) must out-rank the counter and everything else; at least
    // one of the top two is a flag line.
    for (const auto &l : labels)
        EXPECT_TRUE(l.rfind("dekker.", 0) == 0 && l != "dekker.counter")
            << "unexpected hot line: '" << l << "'";
    EXPECT_TRUE(labels[0].rfind("dekker.flag", 0) == 0 ||
                labels[1].rfind("dekker.flag", 0) == 0)
        << "no dekker flag line in the top 2 ('" << labels[0]
        << "', '" << labels[1] << "')";
}

TEST(HotspotRanking, BakeryTicketLinesRankTop)
{
    auto labels = rankedLabels("bakery", 2);
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_TRUE(labels[0] == "bakery.E[]" || labels[0] == "bakery.N[]")
        << "top line is '" << labels[0] << "'";
}
