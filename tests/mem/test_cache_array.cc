#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace asf;

namespace
{
LineData
lineOf(uint64_t v)
{
    return LineData{v, v + 1, v + 2, v + 3};
}
} // namespace

TEST(CacheArray, Geometry)
{
    CacheArray c(32 * 1024, 4);
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.assoc(), 4u);
}

TEST(CacheArray, InstallAndFind)
{
    CacheArray c(1024, 2);
    bool valid;
    CacheLine &slot = c.victimFor(0x1000, valid);
    EXPECT_FALSE(valid);
    c.install(slot, 0x1000, MesiState::Exclusive, lineOf(5));
    CacheLine *l = c.find(0x1000);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, MesiState::Exclusive);
    EXPECT_EQ(l->data[0], 5u);
    EXPECT_EQ(c.find(0x2000), nullptr);
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(4 * 32, 4); // one set of 4 ways
    bool valid;
    for (int i = 0; i < 4; i++) {
        CacheLine &s = c.victimFor(Addr(i) * 32, valid);
        c.install(s, Addr(i) * 32, MesiState::Shared, lineOf(i));
    }
    // Touch line 0 so line 1 becomes LRU.
    c.touch(*c.find(0));
    CacheLine &victim = c.victimFor(0x100, valid);
    EXPECT_TRUE(valid);
    EXPECT_EQ(victim.addr, 32u);
}

TEST(CacheArray, VictimExclusionSkipsPinned)
{
    CacheArray c(4 * 32, 4);
    bool valid;
    for (int i = 0; i < 4; i++) {
        CacheLine &s = c.victimFor(Addr(i) * 32, valid);
        c.install(s, Addr(i) * 32, MesiState::Shared, lineOf(i));
    }
    // Line 0 is LRU but pinned: the next-oldest must be chosen.
    CacheLine &victim = c.victimFor(0x100, valid, /*exclude=*/0);
    EXPECT_TRUE(valid);
    EXPECT_EQ(victim.addr, 32u);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray c(1024, 2);
    bool valid;
    CacheLine &s = c.victimFor(0x40, valid);
    c.install(s, 0x40, MesiState::Modified, lineOf(1));
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_EQ(c.find(0x40), nullptr);
    EXPECT_FALSE(c.invalidate(0x40));
}

TEST(CacheArray, ValidCountTracksContents)
{
    CacheArray c(1024, 2);
    EXPECT_EQ(c.validCount(), 0u);
    bool valid;
    CacheLine &s = c.victimFor(0x40, valid);
    c.install(s, 0x40, MesiState::Shared, lineOf(1));
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(CacheArray, DirtyPredicate)
{
    CacheLine l;
    l.state = MesiState::Modified;
    EXPECT_TRUE(l.dirty());
    l.state = MesiState::Exclusive;
    EXPECT_FALSE(l.dirty());
}

TEST(CacheArray, BadGeometryIsFatal)
{
    EXPECT_EXIT(CacheArray(1000, 3), ::testing::ExitedWithCode(1), ".*");
}
