#include <gtest/gtest.h>

#include "mem/message.hh"

using namespace asf;

TEST(Message, ControlMessagesAreEightBytes)
{
    Message m;
    m.type = MsgType::GetS;
    EXPECT_EQ(m.sizeBytes(), 8u);
}

TEST(Message, DataAddsALine)
{
    Message m;
    m.type = MsgType::DataX;
    m.hasData = true;
    EXPECT_EQ(m.sizeBytes(), 8u + lineBytes);
}

TEST(Message, OrderWritesCarryTheUpdate)
{
    Message m;
    m.type = MsgType::OrderWrite;
    EXPECT_EQ(m.sizeBytes(), 8u + wordBytes);
    m.type = MsgType::CondOrderWrite;
    EXPECT_EQ(m.sizeBytes(), 8u + wordBytes);
}

TEST(Message, GrtTrafficScalesWithAddressSet)
{
    Message m;
    m.type = MsgType::GrtDeposit;
    m.addrSet = {0x1000, 0x2000, 0x3000};
    EXPECT_EQ(m.sizeBytes(), 8u + 3 * 4u);
}

TEST(Message, EveryTypeHasAName)
{
    for (int t = 0; t <= int(MsgType::GrtCheckReply); t++) {
        std::string n = msgTypeName(MsgType(t));
        EXPECT_FALSE(n.empty());
        EXPECT_EQ(n.find("bad"), std::string::npos);
    }
}

TEST(Message, ToStringIsInformative)
{
    Message m;
    m.type = MsgType::Inv;
    m.src = 2;
    m.dst = 5;
    m.addr = 0x1000;
    m.orderBit = true;
    std::string s = m.toString();
    EXPECT_NE(s.find("Inv"), std::string::npos);
    EXPECT_NE(s.find("2->5"), std::string::npos);
    EXPECT_NE(s.find("0x1000"), std::string::npos);
    EXPECT_NE(s.find(" O"), std::string::npos);
}
