#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/layout.hh"
#include "runtime/litmus.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

namespace
{

struct SbOutcome
{
    uint64_t r0;
    uint64_t r1;
};

SbOutcome
runSb(FenceDesign design, bool fenced, unsigned warm = 600)
{
    System sys(smallConfig(design, 2));
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    sys.loadProgram(0, share(buildSbThread(lay, 0, fenced,
                                           FenceRole::Critical, warm)));
    sys.loadProgram(1, share(buildSbThread(lay, 1, fenced,
                                           FenceRole::Noncritical, warm)));
    EXPECT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
    return SbOutcome{sys.debugReadWord(lay.res0),
                     sys.debugReadWord(lay.res1)};
}

} // namespace

TEST(TsoLitmus, StoreBufferingReorderObservableWithoutFences)
{
    // Under plain TSO the store->load reorder makes both threads read 0.
    SbOutcome o = runSb(FenceDesign::SPlus, false);
    EXPECT_EQ(o.r0, 0u);
    EXPECT_EQ(o.r1, 0u);
}

class SbFenceDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(SbFenceDesigns, FencesForbidBothZero)
{
    // With fences, (0, 0) is the SC violation every design must prevent.
    SbOutcome o = runSb(GetParam(), true);
    EXPECT_FALSE(o.r0 == 0 && o.r1 == 0)
        << "SC violation under " << fenceDesignName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, SbFenceDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

TEST(TsoLitmus, MessagePassingAlwaysOrdered)
{
    // TSO never reorders two stores; the reader that sees the flag sees
    // the data. No fences involved.
    for (FenceDesign d : allFenceDesigns) {
        System sys(smallConfig(d, 2));
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildMpWriter(lay)));
        sys.loadProgram(1, share(buildMpReader(lay)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        EXPECT_EQ(sys.debugReadWord(lay.res0), 1u)
            << "MP violated under " << fenceDesignName(d);
    }
}

TEST(TsoLitmus, IriwNeverViolatesMultiCopyAtomicity)
{
    // Readers that each saw the first location set must not disagree on
    // the order of the two writes.
    for (int trial = 0; trial < 4; trial++) {
        System sys(smallConfig(FenceDesign::SPlus, 4));
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildIriwWriter(lay, true)));
        sys.loadProgram(1, share(buildIriwWriter(lay, false)));
        sys.loadProgram(2, share(buildIriwReader(lay, true)));
        sys.loadProgram(3, share(buildIriwReader(lay, false)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t r0 = sys.debugReadWord(lay.res0);
        uint64_t r1 = sys.debugReadWord(lay.res1);
        uint64_t r2 = sys.debugReadWord(lay.res2);
        uint64_t r3 = sys.debugReadWord(lay.res3);
        // Both readers spun until their first load was 1.
        EXPECT_EQ(r0, 1u);
        EXPECT_EQ(r2, 1u);
        // Forbidden: reader A saw x before y AND reader B saw y before x.
        EXPECT_FALSE(r1 == 0 && r3 == 0) << "IRIW violation";
    }
}

TEST(TsoLitmus, SbWithFenceStallsUnderSPlus)
{
    // The strong fence must actually cost cycles: an uncontended SB half
    // (warm load target, missing store) stalls its post-fence load until
    // the store drains.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    sys.loadProgram(0, share(buildSbThread(lay, 0, true,
                                           FenceRole::Critical, 600)));
    ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
    EXPECT_GT(sys.core(0).stats().get("fenceStallCycles"), 100u);
}
