#include <gtest/gtest.h>

#include "../helpers.hh"
#include "check/axioms.hh"
#include "runtime/layout.hh"
#include "runtime/litmus.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

namespace
{

struct SbOutcome
{
    uint64_t r0;
    uint64_t r1;
};

SbOutcome
runSb(FenceDesign design, bool fenced, unsigned warm = 600)
{
    System sys(smallConfig(design, 2));
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    sys.loadProgram(0, share(buildSbThread(lay, 0, fenced,
                                           FenceRole::Critical, warm)));
    sys.loadProgram(1, share(buildSbThread(lay, 1, fenced,
                                           FenceRole::Noncritical, warm)));
    EXPECT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
    return SbOutcome{sys.debugReadWord(lay.res0),
                     sys.debugReadWord(lay.res1)};
}

/** A two-to-four-core system with the execution recorder attached. */
System
checkedSystem(FenceDesign design, unsigned cores)
{
    SystemConfig cfg = smallConfig(design, cores);
    cfg.checkExecution = true;
    return System(cfg);
}

/** The axiomatic oracle: the recorded execution satisfies TSO. */
void
expectCheckerPass(System &sys, FenceDesign design)
{
    const check::ExecutionRecorder *rec = sys.executionRecorder();
    ASSERT_NE(rec, nullptr);
    check::CheckResult r = check::checkExecution(*rec);
    EXPECT_TRUE(r.passed())
        << "checker " << check::verdictName(r.verdict) << " under "
        << fenceDesignName(design) << ": " << r.reason;
}

} // namespace

TEST(TsoLitmus, StoreBufferingReorderObservableWithoutFences)
{
    // Under plain TSO the store->load reorder makes both threads read 0.
    SbOutcome o = runSb(FenceDesign::SPlus, false);
    EXPECT_EQ(o.r0, 0u);
    EXPECT_EQ(o.r1, 0u);
}

class SbFenceDesigns : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(SbFenceDesigns, FencesForbidBothZero)
{
    // With fences, (0, 0) is the SC violation every design must prevent.
    SbOutcome o = runSb(GetParam(), true);
    EXPECT_FALSE(o.r0 == 0 && o.r1 == 0)
        << "SC violation under " << fenceDesignName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, SbFenceDesigns,
                         ::testing::ValuesIn(allFenceDesigns),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

TEST(TsoLitmus, MessagePassingAlwaysOrdered)
{
    // TSO never reorders two stores; the reader that sees the flag sees
    // the data. No fences involved.
    for (FenceDesign d : allFenceDesigns) {
        System sys(smallConfig(d, 2));
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildMpWriter(lay)));
        sys.loadProgram(1, share(buildMpReader(lay)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        EXPECT_EQ(sys.debugReadWord(lay.res0), 1u)
            << "MP violated under " << fenceDesignName(d);
    }
}

TEST(TsoLitmus, IriwNeverViolatesMultiCopyAtomicity)
{
    // Readers that each saw the first location set must not disagree on
    // the order of the two writes.
    for (int trial = 0; trial < 4; trial++) {
        System sys(smallConfig(FenceDesign::SPlus, 4));
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildIriwWriter(lay, true)));
        sys.loadProgram(1, share(buildIriwWriter(lay, false)));
        sys.loadProgram(2, share(buildIriwReader(lay, true)));
        sys.loadProgram(3, share(buildIriwReader(lay, false)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t r0 = sys.debugReadWord(lay.res0);
        uint64_t r1 = sys.debugReadWord(lay.res1);
        uint64_t r2 = sys.debugReadWord(lay.res2);
        uint64_t r3 = sys.debugReadWord(lay.res3);
        // Both readers spun until their first load was 1.
        EXPECT_EQ(r0, 1u);
        EXPECT_EQ(r2, 1u);
        // Forbidden: reader A saw x before y AND reader B saw y before x.
        EXPECT_FALSE(r1 == 0 && r3 == 0) << "IRIW violation";
    }
}

TEST(TsoLitmus, LoadBufferingNeverObserved)
{
    // LB: r0 = ld x; st y=1 || r1 = ld y; st x=1. Both threads reading
    // 1 needs load->store reordering — forbidden by TSO, no fences.
    // The axiomatic checker cross-checks every recorded execution.
    for (FenceDesign d : allFenceDesigns) {
        System sys = checkedSystem(d, 2);
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildLbThread(lay, 0)));
        sys.loadProgram(1, share(buildLbThread(lay, 1)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t r0 = sys.debugReadWord(lay.res0);
        uint64_t r1 = sys.debugReadWord(lay.res1);
        EXPECT_FALSE(r0 == 1 && r1 == 1)
            << "LB violation under " << fenceDesignName(d);
        expectCheckerPass(sys, d);
    }
}

TEST(TsoLitmus, RLitmusFenceForbidsBypass)
{
    // R: writer does st x=1; st y=1 — judge does st y=2; fence;
    // r = ld x. "y ends 2 and r == 0" would put the judge's load
    // before its fenced store in the global order.
    for (FenceDesign d : allFenceDesigns) {
        System sys = checkedSystem(d, 2);
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildRWriter(lay)));
        sys.loadProgram(1, share(buildRJudge(lay, true,
                                             FenceRole::Critical, 600)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t y = sys.debugReadWord(lay.y);
        uint64_t r = sys.debugReadWord(lay.res0);
        EXPECT_FALSE(y == 2 && r == 0)
            << "R violation under " << fenceDesignName(d);
        expectCheckerPass(sys, d);
    }
}

TEST(TsoLitmus, TwoPlusTwoWWriteOrderPreserved)
{
    // 2+2W: st x=1; st y=2 || st y=1; st x=2. Both variables ending 1
    // needs each thread's second store to lose to the other's first —
    // forbidden by TSO's W->W order, no fences.
    for (FenceDesign d : allFenceDesigns) {
        System sys = checkedSystem(d, 2);
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildTwoPlusTwoWThread(lay, 0)));
        sys.loadProgram(1, share(buildTwoPlusTwoWThread(lay, 1)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t x = sys.debugReadWord(lay.x);
        uint64_t y = sys.debugReadWord(lay.y);
        EXPECT_FALSE(x == 1 && y == 1)
            << "2+2W violation under " << fenceDesignName(d);
        expectCheckerPass(sys, d);
    }
}

TEST(TsoLitmus, SLitmusReadToWriteOrderPreserved)
{
    // S: st x=2; st y=1 || r = ld y; st x=1. "r == 1 and x ends 2"
    // needs the reader's store to age behind a load that already saw
    // the writer finish — forbidden by TSO's R->W order, no fences.
    for (FenceDesign d : allFenceDesigns) {
        System sys = checkedSystem(d, 2);
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildSWriter(lay)));
        sys.loadProgram(1, share(buildSReader(lay)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        uint64_t x = sys.debugReadWord(lay.x);
        uint64_t r = sys.debugReadWord(lay.res0);
        EXPECT_FALSE(r == 1 && x == 2)
            << "S violation under " << fenceDesignName(d);
        expectCheckerPass(sys, d);
    }
}

TEST(TsoLitmus, CheckerPassesFencedSbAndIriw)
{
    // The recorded-and-verified versions of the original shapes: the
    // fenced SB pair under every design, and IRIW on four cores.
    for (FenceDesign d : allFenceDesigns) {
        System sys = checkedSystem(d, 2);
        GuestLayout layout;
        LitmusLayout lay = allocLitmus(layout);
        sys.loadProgram(0, share(buildSbThread(lay, 0, true,
                                               FenceRole::Critical,
                                               600)));
        sys.loadProgram(1, share(buildSbThread(lay, 1, true,
                                               FenceRole::Noncritical,
                                               600)));
        ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        expectCheckerPass(sys, d);
    }
    System sys = checkedSystem(FenceDesign::SPlus, 4);
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    sys.loadProgram(0, share(buildIriwWriter(lay, true)));
    sys.loadProgram(1, share(buildIriwWriter(lay, false)));
    sys.loadProgram(2, share(buildIriwReader(lay, true)));
    sys.loadProgram(3, share(buildIriwReader(lay, false)));
    ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
    expectCheckerPass(sys, FenceDesign::SPlus);
}

TEST(TsoLitmus, SbWithFenceStallsUnderSPlus)
{
    // The strong fence must actually cost cycles: an uncontended SB half
    // (warm load target, missing store) stalls its post-fence load until
    // the store drains.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    sys.loadProgram(0, share(buildSbThread(lay, 0, true,
                                           FenceRole::Critical, 600)));
    ASSERT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
    EXPECT_GT(sys.core(0).stats().get("fenceStallCycles"), 100u);
}
