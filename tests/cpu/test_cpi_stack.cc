/**
 * @file
 * CPI-stack attribution tests: every stall cycle must land in exactly
 * one fine bucket (sum(buckets) == active - busy, per category), and
 * directed programs must produce nonzero cycles in the bucket their
 * scenario forces — for each fence design. Also checks that the
 * fence-lifecycle profiler is observation-only: simulated cycles and
 * the rest of the stats JSON are bit-identical with it on or off.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hh"
#include "cpu/cpi_stack.hh"
#include "fence/profile.hh"

using namespace asf;
using namespace asf::test;

namespace
{

uint64_t
coreStat(System &sys, const char *name)
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < sys.numCores(); i++)
        sum += sys.core(NodeId(i)).stats().get(name);
    return sum;
}

/** st mine = 1; wf; ld other -> res (see test_fence_semantics.cc). */
Program
fencedPair(Addr st_addr, Addr ld_addr, Addr res, unsigned warm = 0)
{
    Assembler a("pair");
    a.li(1, int64_t(st_addr));
    a.li(2, int64_t(ld_addr));
    a.li(3, int64_t(res));
    if (warm > 0) {
        a.ld(4, 2, 0);
        a.compute(int64_t(warm));
    }
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(FenceRole::Critical);
    a.ld(5, 2, 0);
    a.st(3, 0, 5);
    a.halt();
    return a.finish();
}

/** The buckets must re-add to the coarse categories exactly. */
void
expectInvariant(System &sys)
{
    CycleBreakdown b = sys.breakdown();
    EXPECT_EQ(b.fenceSum(), b.fenceStall);
    EXPECT_EQ(b.otherSum(), b.otherStall);
    EXPECT_EQ(b.busy + b.fenceSum() + b.otherSum(), b.active());
    // Cross-check through the per-core stat names as well.
    uint64_t named = 0;
    for (unsigned i = 0; i < numStallBuckets; i++)
        named += coreStat(sys, stallBucketStatName(StallBucket(i)));
    EXPECT_EQ(named, b.fenceStall + b.otherStall);
}

} // namespace

TEST(CpiStack, BucketsSumToCategoriesAcrossDesigns)
{
    for (FenceDesign d : allFenceDesigns) {
        SCOPED_TRACE(fenceDesignName(d));
        System sys(smallConfig(d, 4));
        // Contended false-sharing cross pair (colliding lines, distinct
        // words): bounces and Order/GRT traffic under every design, and
        // resolvable by all of them (a true-sharing cycle is not, for
        // SW+).
        sys.loadProgram(0, share(fencedPair(0x1200, 0x1400, 0x3000,
                                            600)));
        sys.loadProgram(3, share(fencedPair(0x1400 + 8, 0x1200 + 8,
                                            0x3020, 600)));
        runToCompletion(sys);
        expectInvariant(sys);
    }
}

TEST(CpiStack, StrongFenceHoldGoesToHeldStrong)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    sys.loadProgram(0, share(fencedPair(0x1000, 0x2000, 0x3000, 600)));
    runToCompletion(sys);
    EXPECT_GT(sys.core(0).stats().get("stallHeldStrong"), 0u);
    expectInvariant(sys);
}

TEST(CpiStack, StoreToLoadDependenceGoesToWaitForward)
{
    // A strong fence between a cache-missing store and a load of the
    // same address forbids forwarding: the load waits for the drain.
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("stld");
    a.li(1, 0x1000);
    a.li(2, 7);
    a.st(1, 0, 2);
    a.fence(FenceRole::Critical);
    a.ld(3, 1, 0);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_GT(sys.core(0).stats().get("stallWaitForward"), 50u);
    expectInvariant(sys);
}

TEST(CpiStack, BsExhaustionGoesToHeldBsFull)
{
    // A 1-entry Bypass Set: the second post-fence load cannot insert
    // and must hold until the fence completes.
    SystemConfig cfg = smallConfig(FenceDesign::WSPlus, 2);
    cfg.bsEntries = 1;
    System sys(cfg);
    Assembler a("bsfull");
    a.li(1, 0x1000); // store target (cold miss)
    a.li(2, 0x2000); // post-fence load 1
    a.li(3, 0x5000); // post-fence load 2 (different line)
    a.ld(4, 2, 0);   // warm both load targets
    a.ld(4, 3, 0);
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(FenceRole::Critical);
    a.ld(5, 2, 0);
    a.ld(6, 3, 0);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_GT(sys.core(0).stats().get("stallHeldBsFull"), 0u);
    expectInvariant(sys);
}

TEST(CpiStack, BouncedStoreBackpressureGoesToBounceRetry)
{
    // Core 0's BS bounces core 1's store to y; core 1's tiny write
    // buffer fills behind the bouncing head, so its execution stalls
    // with a bounced store at the WB head: FenceBounceRetry cycles.
    SystemConfig cfg = smallConfig(FenceDesign::WSPlus, 2);
    cfg.wbEntries = 2;
    System sys(cfg);
    Addr x = 0x1000, y = 0x2000;
    sys.loadProgram(0, share(fencedPair(x, y, 0x3000, 600)));
    Assembler b("latewriter");
    b.li(1, int64_t(y));
    b.ld(2, 1, 0);  // warm y so the later store is a fast upgrade
    b.compute(650); // arrive just after core 0's load enters the BS
    b.li(2, 7);
    b.st(1, 0, 2);     // bounces off core 0's BS
    b.st(1, 0x1000, 2); // distinct missing lines fill the 2-entry WB
    b.st(1, 0x2000, 2);
    b.st(1, 0x3000, 2);
    b.halt();
    sys.loadProgram(1, share(b.finish()));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "storeNacks"), 1u);
    EXPECT_GT(sys.core(1).stats().get("stallBounceRetry"), 0u);
    expectInvariant(sys);
}

TEST(CpiStack, WbBackpressureGoesToWbFull)
{
    // No bouncing, just a tiny write buffer behind missing stores.
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, 1);
    cfg.wbEntries = 2;
    System sys(cfg);
    Assembler a("wbfull");
    a.li(1, 0x1000);
    a.li(2, 1);
    a.st(1, 0x0000, 2);
    a.st(1, 0x1000, 2);
    a.st(1, 0x2000, 2);
    a.st(1, 0x3000, 2);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_GT(sys.core(0).stats().get("stallWbFull"), 0u);
    EXPECT_EQ(sys.core(0).stats().get("stallBounceRetry"), 0u);
    expectInvariant(sys);
}

TEST(CpiStack, WPlusRecoveryGoesToRecovering)
{
    // Figure 3a deadlock: W+ times out and rolls back (see
    // test_fence_semantics.cc WPlusRecoversFromGenuineDeadlock).
    System sys(smallConfig(FenceDesign::WPlus, 4));
    sys.loadProgram(0, share(fencedPair(0x1200, 0x1400, 0x3000, 600)));
    sys.loadProgram(3, share(fencedPair(0x1400, 0x1200, 0x3020, 600)));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "wPlusRecoveries"), 1u);
    EXPECT_GT(coreStat(sys, "stallRecovering"), 0u);
    expectInvariant(sys);
}

TEST(CpiStack, WeeGrtPhasesAttributed)
{
    // WeeFence pays for its Pending-Set round trip (GrtWait) and for
    // post-fence accesses held on a Remote PS.
    System sys(smallConfig(FenceDesign::Wee, 4));
    sys.loadProgram(0, share(fencedPair(0x1200, 0x1400, 0x3000, 600)));
    sys.loadProgram(3, share(fencedPair(0x1400, 0x1200, 0x3020, 600)));
    runToCompletion(sys);
    uint64_t deposits = 0;
    for (unsigned i = 0; i < sys.numCores(); i++)
        deposits += sys.grt(NodeId(i)).stats().get("deposits");
    EXPECT_GE(deposits, 1u);
    EXPECT_GT(coreStat(sys, "stallGrtWait") +
                  coreStat(sys, "stallRemotePs"),
              0u);
    expectInvariant(sys);
}

TEST(CpiStack, ProfilingOnOffIsBitIdentical)
{
    // The profiler is observation-only: cycle counts and every other
    // statistic must be byte-identical with it on or off. The W+
    // deadlock recipe exercises the densest hook coverage (issue, BS
    // inserts, bounces, nacks, recovery, squash, completion).
    auto run = [](bool profile, Tick &cycles, std::string &json) {
        SystemConfig cfg = smallConfig(FenceDesign::WPlus, 4);
        cfg.fenceProfile = profile;
        System sys(cfg);
        sys.loadProgram(0,
                        share(fencedPair(0x1200, 0x1400, 0x3000, 600)));
        sys.loadProgram(3,
                        share(fencedPair(0x1400, 0x1200, 0x3020, 600)));
        ASSERT_EQ(sys.run(2'000'000), System::RunResult::AllDone);
        cycles = sys.now();
        std::ostringstream os;
        sys.dumpStatsJson(os, /*include_profile=*/false);
        json = os.str();
        EXPECT_EQ(profile, sys.fenceProfiler() != nullptr);
    };
    Tick cycles_on = 0, cycles_off = 0;
    std::string json_on, json_off;
    run(true, cycles_on, json_on);
    run(false, cycles_off, json_off);
    EXPECT_EQ(cycles_on, cycles_off);
    EXPECT_EQ(json_on, json_off);
}
