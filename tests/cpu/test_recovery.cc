/**
 * Directed tests of W+ checkpoint/rollback: overlapping weak fences,
 * guest-counter journaling across recovery, and post-rollback state.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"

using namespace asf;
using namespace asf::test;

namespace
{

uint64_t
coreStat(System &sys, const char *name)
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < sys.numCores(); i++)
        sum += sys.core(NodeId(i)).stats().get(name);
    return sum;
}

/**
 * st mine; wf; ld other; mark(7); st res. In a W+ deadlock both sides
 * roll back to the fence and re-execute the load and the mark; the
 * mark must still count exactly once.
 */
Program
markedPair(Addr st_a, Addr ld_a, Addr res)
{
    Assembler a("markedpair");
    a.li(1, int64_t(st_a));
    a.li(2, int64_t(ld_a));
    a.li(3, int64_t(res));
    a.ld(4, 2, 0);
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4);
    a.fence(FenceRole::Critical);
    a.ld(5, 2, 0);
    a.mark(7);
    a.st(3, 0, 5);
    a.halt();
    return a.finish();
}

} // namespace

TEST(WPlusRecovery, MarksCountExactlyOnceAcrossRollback)
{
    System sys(smallConfig(FenceDesign::WPlus, 4));
    Addr x = 0x1200, y = 0x1400;
    sys.loadProgram(0, share(markedPair(x, y, 0x3000)));
    sys.loadProgram(3, share(markedPair(y, x, 0x3020)));
    runToCompletion(sys);
    ASSERT_GE(coreStat(sys, "wPlusRecoveries"), 1u);
    // Each thread ran its mark to completion exactly once, regardless
    // of how many times the rollback re-executed it.
    EXPECT_EQ(sys.guestCounter(7), 2u);
}

TEST(WPlusRecovery, RolledBackLoadObservesTheNewValue)
{
    // After recovery the re-executed load runs post-drain and must see
    // the other thread's store (one side at least).
    System sys(smallConfig(FenceDesign::WPlus, 4));
    Addr x = 0x1200, y = 0x1400;
    sys.loadProgram(0, share(markedPair(x, y, 0x3000)));
    sys.loadProgram(3, share(markedPair(y, x, 0x3020)));
    runToCompletion(sys);
    uint64_t r0 = sys.debugReadWord(0x3000);
    uint64_t r1 = sys.debugReadWord(0x3020);
    EXPECT_TRUE(r0 == 1 || r1 == 1);
    EXPECT_FALSE(r0 == 0 && r1 == 0);
}

TEST(WPlusRecovery, OverlappingFencesRollBackToTheOldest)
{
    // Two back-to-back weak fences with the deadlock on the first one's
    // pre-store: recovery squashes the younger fence too and the thread
    // still terminates with a consistent result.
    System sys(smallConfig(FenceDesign::WPlus, 4));
    Addr x = 0x1200, y = 0x1400, z = 0x1600;
    Assembler a("twofences");
    a.li(1, int64_t(x));
    a.li(2, int64_t(y));
    a.li(6, int64_t(z));
    a.ld(4, 2, 0);
    a.compute(600);
    a.li(4, 1);
    a.st(1, 0, 4); // pre-store of fence 1 (will bounce)
    a.fence(FenceRole::Critical);
    a.ld(5, 2, 0); // completes early into the BS
    a.st(6, 0, 5); // pre-store of fence 2
    a.fence(FenceRole::Critical);
    a.ld(7, 6, 0);
    a.mark(9);
    a.li(3, 0x3000);
    a.st(3, 0, 5);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    sys.loadProgram(3, share(markedPair(y, x, 0x3020)));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "wPlusRecoveries"), 1u);
    EXPECT_EQ(sys.guestCounter(9), 1u);
    EXPECT_EQ(sys.debugReadWord(z), sys.debugReadWord(0x3000));
}

TEST(WPlusRecovery, NoSpuriousRecoveryWithoutMutualBounce)
{
    // One-sided bouncing (true sharing, no cycle) must NOT trigger a
    // rollback: the bounce resolves when the other fence completes.
    System sys(smallConfig(FenceDesign::WPlus, 4));
    Addr x = 0x1200, z = 0x1600;
    // T3 holds x in its BS behind a slow fence.
    sys.loadProgram(3, share(markedPair(z, x, 0x3020)));
    // T0 (late) just stores x; no fence of its own is bounced.
    Assembler a("plainwriter");
    a.li(1, int64_t(x));
    a.ld(2, 1, 0);
    a.compute(650);
    a.li(2, 1);
    a.st(1, 0, 2);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(coreStat(sys, "wPlusRecoveries"), 0u);
    EXPECT_EQ(sys.debugReadWord(x), 1u);
}

TEST(WPlusRecovery, TimeoutIsConfigurable)
{
    // A lower timeout recovers sooner; correctness is unaffected.
    SystemConfig cfg = smallConfig(FenceDesign::WPlus, 4);
    cfg.wPlusTimeout = 60;
    System sys(cfg);
    Addr x = 0x1200, y = 0x1400;
    sys.loadProgram(0, share(markedPair(x, y, 0x3000)));
    sys.loadProgram(3, share(markedPair(y, x, 0x3020)));
    runToCompletion(sys);
    EXPECT_GE(coreStat(sys, "wPlusRecoveries"), 1u);
    EXPECT_EQ(sys.guestCounter(7), 2u);
}
