#include <gtest/gtest.h>

#include "../helpers.hh"
#include "runtime/marks.hh"

using namespace asf;
using namespace asf::test;

TEST(CoreBasic, RunsArithmeticProgram)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("arith");
    a.li(1, 21);
    a.muli(2, 1, 2);
    a.li(3, 0x1000);
    a.st(3, 0, 2);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x1000), 42u);
}

TEST(CoreBasic, StoreLoadForwarding)
{
    // A load must see its own preceding buffered store immediately.
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("fwd");
    a.li(1, 0x1000);
    a.li(2, 7);
    a.st(1, 0, 2);
    a.ld(3, 1, 0); // forwarded before the store even misses
    a.li(4, 0x2000);
    a.st(4, 0, 3);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x2000), 7u);
}

TEST(CoreBasic, ComputeCountsBusyCycles)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("busy");
    a.compute(500);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_GE(sys.core(0).stats().get("busyCycles"), 500u);
}

TEST(CoreBasic, MarkCountersAggregate)
{
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Assembler a("marks");
    a.mark(marks::iteration);
    a.mark(marks::iteration);
    a.halt();
    auto p = share(a.finish());
    sys.loadProgram(0, p);
    sys.loadProgram(1, p);
    runToCompletion(sys);
    EXPECT_EQ(sys.guestCounter(marks::iteration), 4u);
}

TEST(CoreBasic, CasSucceedsAndFails)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    sys.memory().writeWord(0x1000, 5);
    Assembler a("cas");
    a.li(1, 0x1000);
    a.li(2, 5);  // expect (matches)
    a.li(3, 9);  // desired
    a.cas(4, 1, 0, 2, 3); // succeeds: [x]=9, r4=5
    a.li(2, 5);  // expect (stale now)
    a.li(3, 11);
    a.cas(5, 1, 0, 2, 3); // fails: [x] stays 9, r5=9
    a.li(6, 0x2000);
    a.st(6, 0, 4);
    a.st(6, 8, 5);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x1000), 9u);
    EXPECT_EQ(sys.debugReadWord(0x2000), 5u);
    EXPECT_EQ(sys.debugReadWord(0x2008), 9u);
}

TEST(CoreBasic, XchgSwaps)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    sys.memory().writeWord(0x1000, 3);
    Assembler a("xchg");
    a.li(1, 0x1000);
    a.li(2, 8);
    a.xchg(3, 1, 0, 2);
    a.li(4, 0x2000);
    a.st(4, 0, 3);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x1000), 8u);
    EXPECT_EQ(sys.debugReadWord(0x2000), 3u);
}

TEST(CoreBasic, GuestRandDeterministicAcrossRuns)
{
    auto run_once = [] {
        System sys(smallConfig(FenceDesign::SPlus, 1));
        Assembler a("rand");
        a.rand(1);
        a.rand(2);
        a.add(3, 1, 2);
        a.li(4, 0x1000);
        a.st(4, 0, 3);
        a.halt();
        sys.loadProgram(0, share(a.finish()), 777);
        sys.run(100000);
        return sys.debugReadWord(0x1000);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CoreBasic, InstrRetiredCountsEverything)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("count");
    a.li(1, 1);     // 1
    a.addi(1, 1, 1); // 2
    a.li(2, 0x1000); // 3
    a.st(2, 0, 1);  // 4
    a.ld(3, 2, 0);  // 5
    a.halt();       // 6
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.core(0).stats().get("instrRetired"), 6u);
}

TEST(CoreBasic, DoneRequiresDrainedBuffers)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("drain");
    a.li(1, 0x1000);
    a.li(2, 5);
    a.st(1, 0, 2);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    // After completion, the store must have merged (not just retired).
    EXPECT_TRUE(sys.core(0).writeBuffer().empty());
    EXPECT_EQ(sys.debugReadWord(0x1000), 5u);
}

TEST(CoreBasic, UnalignedAccessIsFatal)
{
    System sys(smallConfig(FenceDesign::SPlus, 1));
    Assembler a("unaligned");
    a.li(1, 0x1004);
    a.ld(2, 1, 0);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    EXPECT_EXIT(sys.run(1000), ::testing::ExitedWithCode(1), "unaligned");
}
