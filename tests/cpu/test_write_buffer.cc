#include <gtest/gtest.h>

#include "cpu/write_buffer.hh"

using namespace asf;

TEST(WriteBuffer, FifoOrder)
{
    WriteBuffer wb(4);
    uint64_t s1 = wb.push(0x1000, 1);
    uint64_t s2 = wb.push(0x2000, 2);
    EXPECT_LT(s1, s2);
    EXPECT_EQ(wb.front().addr, 0x1000u);
    wb.popFront();
    EXPECT_EQ(wb.front().addr, 0x2000u);
}

TEST(WriteBuffer, CapacityTracking)
{
    WriteBuffer wb(2);
    EXPECT_FALSE(wb.full());
    wb.push(0x1000, 1);
    wb.push(0x2000, 2);
    EXPECT_TRUE(wb.full());
    EXPECT_DEATH(wb.push(0x3000, 3), "overflow");
}

TEST(WriteBuffer, ForwardingFindsYoungestMatch)
{
    WriteBuffer wb(8);
    wb.push(0x1000, 1);
    wb.push(0x1000, 2);
    wb.push(0x2000, 3);
    const auto *e = wb.forwardLookup(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, 2u);
    EXPECT_EQ(wb.forwardLookup(0x3000), nullptr);
}

TEST(WriteBuffer, DrainedUpTo)
{
    WriteBuffer wb(8);
    uint64_t s1 = wb.push(0x1000, 1);
    uint64_t s2 = wb.push(0x2000, 2);
    EXPECT_FALSE(wb.drainedUpTo(s1));
    wb.popFront();
    EXPECT_TRUE(wb.drainedUpTo(s1));
    EXPECT_FALSE(wb.drainedUpTo(s2));
    wb.popFront();
    EXPECT_TRUE(wb.drainedUpTo(s2));
}

TEST(WriteBuffer, DropYoungerThanForRecovery)
{
    WriteBuffer wb(8);
    uint64_t s1 = wb.push(0x1000, 1);
    wb.push(0x2000, 2);
    wb.push(0x3000, 3);
    wb.dropYoungerThan(s1);
    EXPECT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb.front().addr, 0x1000u);
}

TEST(WriteBuffer, DrainedUpToBoundaries)
{
    WriteBuffer wb(8);
    // Empty buffer: everything (including seq 0, "no store") is drained.
    EXPECT_TRUE(wb.drainedUpTo(0));
    EXPECT_TRUE(wb.drainedUpTo(100));

    uint64_t s1 = wb.push(0x1000, 1);
    // seq == upto is the exact boundary: s1 itself must still drain,
    // while everything strictly older already has.
    EXPECT_FALSE(wb.drainedUpTo(s1));
    EXPECT_TRUE(wb.drainedUpTo(s1 - 1));
    wb.popFront();
    EXPECT_TRUE(wb.drainedUpTo(s1));
}

TEST(WriteBuffer, DropYoungerThanBoundaries)
{
    WriteBuffer wb(8);
    // Empty buffer: nothing to squash.
    EXPECT_EQ(wb.dropYoungerThan(0), 0u);

    uint64_t s1 = wb.push(0x1000, 1);
    uint64_t s2 = wb.push(0x2000, 2);
    wb.push(0x3000, 3);
    // upto == s2 keeps s2 itself (seq <= upto survives).
    EXPECT_EQ(wb.dropYoungerThan(s2), 1u);
    EXPECT_EQ(wb.size(), 2u);
    // Idempotent at the same bound.
    EXPECT_EQ(wb.dropYoungerThan(s2), 0u);
    // upto == 0 squashes everything.
    EXPECT_EQ(wb.dropYoungerThan(0), 2u);
    EXPECT_TRUE(wb.empty());
    EXPECT_TRUE(wb.drainedUpTo(s1));
}

TEST(WriteBuffer, PendingLinesBoundaries)
{
    WriteBuffer wb(8);
    EXPECT_TRUE(wb.pendingLines(100).empty());

    uint64_t s1 = wb.push(0x1000, 1);
    wb.push(0x2000, 2);
    // upto == s1: only the first store's line; the bound is inclusive.
    auto lines = wb.pendingLines(s1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
    // upto below every seq: nothing pending.
    EXPECT_TRUE(wb.pendingLines(s1 - 1).empty());
}

TEST(WriteBuffer, OccupancyCounters)
{
    WriteBuffer wb(4);
    EXPECT_EQ(wb.totalPushes(), 0u);
    EXPECT_EQ(wb.highWater(), 0u);

    uint64_t s1 = wb.push(0x1000, 1);
    wb.push(0x2000, 2);
    wb.push(0x3000, 3);
    EXPECT_EQ(wb.totalPushes(), 3u);
    EXPECT_EQ(wb.highWater(), 3u);

    EXPECT_EQ(wb.dropYoungerThan(s1), 2u);
    EXPECT_EQ(wb.totalDropped(), 2u);
    EXPECT_EQ(wb.highWater(), 3u); // high-water survives the squash

    wb.resetCounters();
    EXPECT_EQ(wb.totalPushes(), 0u);
    EXPECT_EQ(wb.totalDropped(), 0u);
    EXPECT_EQ(wb.highWater(), 1u); // resets to the current occupancy
}

TEST(WriteBuffer, PendingLinesDeduplicates)
{
    WriteBuffer wb(8);
    wb.push(0x1000, 1);
    wb.push(0x1008, 2); // same line
    uint64_t s3 = wb.push(0x2000, 3);
    wb.push(0x3000, 4); // younger than s3
    auto lines = wb.pendingLines(s3);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x2000u);
}

TEST(WriteBuffer, EmptyAccessorsDie)
{
    WriteBuffer wb(2);
    EXPECT_DEATH(wb.front(), "empty");
    EXPECT_DEATH(wb.popFront(), "empty");
}
