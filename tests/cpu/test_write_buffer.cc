#include <gtest/gtest.h>

#include "cpu/write_buffer.hh"

using namespace asf;

TEST(WriteBuffer, FifoOrder)
{
    WriteBuffer wb(4);
    uint64_t s1 = wb.push(0x1000, 1);
    uint64_t s2 = wb.push(0x2000, 2);
    EXPECT_LT(s1, s2);
    EXPECT_EQ(wb.front().addr, 0x1000u);
    wb.popFront();
    EXPECT_EQ(wb.front().addr, 0x2000u);
}

TEST(WriteBuffer, CapacityTracking)
{
    WriteBuffer wb(2);
    EXPECT_FALSE(wb.full());
    wb.push(0x1000, 1);
    wb.push(0x2000, 2);
    EXPECT_TRUE(wb.full());
    EXPECT_DEATH(wb.push(0x3000, 3), "overflow");
}

TEST(WriteBuffer, ForwardingFindsYoungestMatch)
{
    WriteBuffer wb(8);
    wb.push(0x1000, 1);
    wb.push(0x1000, 2);
    wb.push(0x2000, 3);
    const auto *e = wb.forwardLookup(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, 2u);
    EXPECT_EQ(wb.forwardLookup(0x3000), nullptr);
}

TEST(WriteBuffer, DrainedUpTo)
{
    WriteBuffer wb(8);
    uint64_t s1 = wb.push(0x1000, 1);
    uint64_t s2 = wb.push(0x2000, 2);
    EXPECT_FALSE(wb.drainedUpTo(s1));
    wb.popFront();
    EXPECT_TRUE(wb.drainedUpTo(s1));
    EXPECT_FALSE(wb.drainedUpTo(s2));
    wb.popFront();
    EXPECT_TRUE(wb.drainedUpTo(s2));
}

TEST(WriteBuffer, DropYoungerThanForRecovery)
{
    WriteBuffer wb(8);
    uint64_t s1 = wb.push(0x1000, 1);
    wb.push(0x2000, 2);
    wb.push(0x3000, 3);
    wb.dropYoungerThan(s1);
    EXPECT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb.front().addr, 0x1000u);
}

TEST(WriteBuffer, PendingLinesDeduplicates)
{
    WriteBuffer wb(8);
    wb.push(0x1000, 1);
    wb.push(0x1008, 2); // same line
    uint64_t s3 = wb.push(0x2000, 3);
    wb.push(0x3000, 4); // younger than s3
    auto lines = wb.pendingLines(s3);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x2000u);
}

TEST(WriteBuffer, EmptyAccessorsDie)
{
    WriteBuffer wb(2);
    EXPECT_DEATH(wb.front(), "empty");
    EXPECT_DEATH(wb.popFront(), "empty");
}
