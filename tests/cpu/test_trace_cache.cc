/**
 * Unit tests for the pre-decoded trace cache behind the direct-execution
 * fast path: per-opcode classification, pure-run lengths, the packed
 * per-PC record, register-range demotion, and — the invalidation story —
 * that splicing a fence into previously pure straight-line code via
 * prog/rewrite.cc yields a rebuilt cache whose block is split at the
 * fence (programs are immutable, so rebuild *is* invalidation).
 */

#include <gtest/gtest.h>

#include "cpu/trace_cache.hh"
#include "prog/assembler.hh"
#include "prog/rewrite.hh"

using namespace asf;

using Kind = TraceCache::Kind;

namespace
{

TraceCache
buildCache(const Program &p)
{
    TraceCache tc;
    tc.build(p);
    return tc;
}

} // namespace

TEST(TraceCache, ClassifiesEveryOpcodeFamily)
{
    EXPECT_EQ(TraceCache::classify(Instr{Op::Nop}), Kind::Pure);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Li}), Kind::Pure);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Add}), Kind::Pure);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Shri}), Kind::Pure);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Rand}), Kind::Pure);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Beq}), Kind::Control);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Jmp}), Kind::Control);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Ld}), Kind::Load);
    EXPECT_EQ(TraceCache::classify(Instr{Op::St}), Kind::Store);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Compute}), Kind::Compute);
    // Breakers: everything the burst interpreter must not touch.
    EXPECT_EQ(TraceCache::classify(Instr{Op::Fence}), Kind::Breaker);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Cas}), Kind::Breaker);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Xchg}), Kind::Breaker);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Mark}), Kind::Breaker);
    EXPECT_EQ(TraceCache::classify(Instr{Op::Halt}), Kind::Breaker);
}

TEST(TraceCache, PureRunLengthsCountToTheNextBoundary)
{
    Assembler a("runs");
    a.li(1, 1);      // pc 0: pure, run 3
    a.addi(1, 1, 1); // pc 1: pure, run 2
    a.mov(2, 1);     // pc 2: pure, run 1
    a.ld(3, 1, 0);   // pc 3: load, run 0
    a.add(4, 1, 2);  // pc 4: pure, run 1
    a.halt();        // pc 5: breaker, run 0
    TraceCache tc = buildCache(a.finish());

    ASSERT_TRUE(tc.valid());
    EXPECT_EQ(tc.size(), 6u);
    EXPECT_EQ(tc.pureRun(0), 3u);
    EXPECT_EQ(tc.pureRun(1), 2u);
    EXPECT_EQ(tc.pureRun(2), 1u);
    EXPECT_EQ(tc.pureRun(3), 0u);
    EXPECT_EQ(tc.pureRun(4), 1u);
    EXPECT_EQ(tc.pureRun(5), 0u);
    EXPECT_EQ(tc.kind(3), Kind::Load);
    EXPECT_EQ(tc.kind(5), Kind::Breaker);
}

TEST(TraceCache, PackedOpFusesKindAndRun)
{
    Assembler a("packed");
    a.li(1, 7);
    a.addi(1, 1, 1);
    a.st(2, 0, 1);
    a.halt();
    TraceCache tc = buildCache(a.finish());

    // One 64-bit load carries both fields for the burst dispatcher.
    uint64_t op0 = tc.op(0);
    EXPECT_EQ(TraceCache::opKind(op0), Kind::Pure);
    EXPECT_EQ(TraceCache::opRun(op0), 2u);
    uint64_t op2 = tc.op(2);
    EXPECT_EQ(TraceCache::opKind(op2), Kind::Store);
    EXPECT_EQ(TraceCache::opRun(op2), 0u);
}

TEST(TraceCache, OutOfRangePcReportsBreaker)
{
    Assembler a("tiny");
    a.halt();
    TraceCache tc = buildCache(a.finish());

    // A wild PC must end the burst, not fault the cache: the cycle-exact
    // path then raises the same fatal a plain tick would.
    EXPECT_EQ(tc.kind(1), Kind::Breaker);
    EXPECT_EQ(tc.pureRun(1), 0u);
    EXPECT_EQ(tc.kind(uint64_t(-1)), Kind::Breaker);
}

TEST(TraceCache, OutOfRangeRegisterDemotesToBreaker)
{
    // Hand-built instruction with an out-of-range destination: the
    // cache must demote it so the burst interpreter can use unchecked
    // register accessors, leaving the range panic to the exact path.
    Program p;
    p.name = "badreg";
    p.instrs.push_back(Instr{Op::Li, Reg(0), 0, 0, 0, 1});
    Instr bad;
    bad.op = Op::Addi;
    bad.rd = Reg(numRegs); // first invalid register
    p.instrs.push_back(bad);
    p.instrs.push_back(Instr{Op::Halt});
    TraceCache tc = buildCache(p);

    EXPECT_EQ(tc.kind(0), Kind::Pure);
    EXPECT_EQ(tc.kind(1), Kind::Breaker);
    // The demotion also truncates the preceding pure run.
    EXPECT_EQ(tc.pureRun(0), 1u);
}

TEST(TraceCache, FenceSpliceSplitsPreviouslyPureBlock)
{
    // Straight-line pure code, then rewrite.cc splices a fence into the
    // middle. Programs are immutable (the splice yields a new Program),
    // so rebuilding the cache is what invalidates the old block; the
    // rebuilt cache must classify the spliced fence as a Breaker and
    // split the pure run around it.
    Assembler a("straight");
    a.li(1, 0);      // pc 0
    a.addi(1, 1, 1); // pc 1
    a.addi(1, 1, 2); // pc 2
    a.addi(1, 1, 3); // pc 3
    a.halt();        // pc 4
    Program before = a.finish();
    TraceCache tc = buildCache(before);
    ASSERT_EQ(tc.pureRun(0), 4u);

    Program after = insertFences(before, {{2, FenceRole::Critical}});
    ASSERT_EQ(after.instrs.size(), before.instrs.size() + 1);
    tc.build(after);

    // pc 2 is now the fence; the single 4-long run is split 2 / 2.
    EXPECT_EQ(tc.size(), 6u);
    EXPECT_EQ(tc.kind(2), Kind::Breaker);
    EXPECT_EQ(tc.pureRun(0), 2u);
    EXPECT_EQ(tc.pureRun(1), 1u);
    EXPECT_EQ(tc.pureRun(2), 0u);
    EXPECT_EQ(tc.pureRun(3), 2u);
    EXPECT_EQ(tc.pureRun(4), 1u);
    EXPECT_EQ(tc.kind(5), Kind::Breaker);
}

TEST(TraceCache, ClearForgetsTheProgram)
{
    Assembler a("gone");
    a.li(1, 1);
    a.halt();
    TraceCache tc = buildCache(a.finish());
    ASSERT_TRUE(tc.valid());
    tc.clear();
    EXPECT_FALSE(tc.valid());
    EXPECT_EQ(tc.size(), 0u);
    EXPECT_EQ(tc.kind(0), Kind::Breaker);
}
