/**
 * Release-Consistency mode (paper Section 2.1): multiple writes merge
 * concurrently and store->store order is NOT preserved, so message
 * passing needs a fence between the stores - and fences get cheaper
 * because the write buffer drains in parallel.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "workloads/ustm.hh"

using namespace asf;
using namespace asf::test;

namespace
{

SystemConfig
rcConfig(unsigned cores = 2, unsigned store_units = 3)
{
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, cores);
    cfg.memoryModel = MemoryModel::RC;
    cfg.storeUnits = store_units;
    return cfg;
}

/**
 * Writer: two cold blocker stores occupy both RC store units, the cold
 * data store waits for a unit, and the flag store (a local exclusive
 * hit) drains immediately through the free drain port - so the flag
 * merges hundreds of cycles before the data. Under TSO the in-order
 * drain makes the same program MP-correct.
 */
Program
mpWriter(Addr data, Addr flag, bool fenced)
{
    Assembler a("rc_writer");
    a.li(1, int64_t(data));
    a.li(2, int64_t(flag));
    a.ld(3, 2, 0); // warm the flag line (store becomes a local hit)
    a.compute(300);
    a.li(3, 1);
    a.li(4, 0x200000); // blockers: cold, distinct granules
    a.st(4, 0, 3);
    a.st(4, 0x200, 3);
    a.st(1, 0, 3); // data: cold, waits for a store unit
    if (fenced)
        a.fence(FenceRole::Noncritical);
    a.st(2, 0, 3); // flag: exclusive hit, drains right away
    a.halt();
    return a.finish();
}

Program
mpReader(Addr data, Addr flag, Addr res)
{
    Assembler a("rc_reader");
    a.li(1, int64_t(data));
    a.li(2, int64_t(flag));
    a.li(4, int64_t(res));
    a.ld(6, 1, 0); // warm data: the stale copy the reorder exposes
    // Stay away from the flag line until after the writer's fast path
    // has drained (touching it earlier would downgrade the writer's
    // exclusive copy and serialize the stores through the directory).
    a.compute(380);
    a.bind("spin");
    a.ld(3, 2, 0);
    a.li(5, 0);
    a.beq(3, 5, "spin");
    a.ld(6, 1, 0);
    a.st(4, 0, 6);
    a.halt();
    return a.finish();
}

} // namespace

TEST(RcModel, ConfigValidatesStoreUnits)
{
    SystemConfig cfg = rcConfig();
    cfg.storeUnits = 4; // == l1Assoc
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "storeUnits");
    cfg.storeUnits = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "storeUnits");
}

TEST(RcModel, MessagePassingBreaksWithoutAFence)
{
    // The flag (fast upgrade) merges before the data (cold miss): the
    // reader observes the reorder that RC permits.
    System sys(rcConfig(2, 2));
    Addr data = 0x1200, flag = 0x1400, res = 0x3000;
    sys.loadProgram(0, share(mpWriter(data, flag, false)));
    sys.loadProgram(1, share(mpReader(data, flag, res)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(res), 0u)
        << "expected the RC store->store reorder to be visible";
}

TEST(RcModel, MessagePassingHoldsUnderTso)
{
    // Same program, TSO: stores merge in order; the reorder is gone.
    System sys(smallConfig(FenceDesign::SPlus, 2));
    Addr data = 0x1200, flag = 0x1400, res = 0x3000;
    sys.loadProgram(0, share(mpWriter(data, flag, false)));
    sys.loadProgram(1, share(mpReader(data, flag, res)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(res), 1u);
}

TEST(RcModel, FenceRestoresMessagePassing)
{
    System sys(rcConfig(2, 2));
    Addr data = 0x1200, flag = 0x1400, res = 0x3000;
    sys.loadProgram(0, share(mpWriter(data, flag, true)));
    sys.loadProgram(1, share(mpReader(data, flag, res)));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(res), 1u)
        << "the fence must order the two stores under RC";
}

TEST(RcModel, ParallelDrainShortensFences)
{
    // Three cold stores to different granules, then a fence, then a
    // warm load: TSO drains them serially (~3x memory), RC in parallel.
    auto fence_stall = [](MemoryModel model) {
        SystemConfig cfg = smallConfig(FenceDesign::SPlus, 2);
        cfg.memoryModel = model;
        System sys(cfg);
        Assembler a("drain3");
        a.li(1, 0x1200);
        a.ld(2, 1, 0x40); // warm the post-fence load target
        a.compute(100);
        a.li(3, 1);
        a.st(1, 0, 3);
        a.li(1, 0x1400);
        a.st(1, 0, 3);
        a.li(1, 0x1600);
        a.st(1, 0, 3);
        a.fence(FenceRole::Critical);
        a.li(1, 0x1200);
        a.ld(2, 1, 0x40);
        a.halt();
        sys.loadProgram(0, share(a.finish()));
        EXPECT_EQ(sys.run(1'000'000), System::RunResult::AllDone);
        return sys.core(0).stats().get("fenceStallCycles");
    };
    uint64_t tso = fence_stall(MemoryModel::TSO);
    uint64_t rc = fence_stall(MemoryModel::RC);
    EXPECT_GT(tso, 300u);      // ~3 serial misses
    EXPECT_LT(rc, tso / 2);    // parallel merges
    EXPECT_GT(rc, 50u);        // but still at least one miss
}

TEST(RcModel, WeakFencesDemoteToStrong)
{
    // wf-under-RC is the paper's future work; the implementation must
    // fall back to conventional fences rather than silently misorder.
    SystemConfig cfg = rcConfig();
    cfg.design = FenceDesign::WPlus;
    System sys(cfg);
    Assembler a("demote");
    a.li(1, 0x1200);
    a.li(2, 1);
    a.st(1, 0, 2);
    a.fence(FenceRole::Critical);
    a.ld(3, 1, 0x40);
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.core(0).stats().get("rcFenceDemotions"), 1u);
    EXPECT_EQ(sys.core(0).stats().get("fencesWeak"), 0u);
}

TEST(RcModel, SameLineStoresStayOrdered)
{
    // Program-order writes to the same word must merge in order even
    // with parallel store units.
    System sys(rcConfig(1));
    Assembler a("samline");
    a.li(1, 0x1200);
    for (int i = 1; i <= 6; i++) {
        a.li(2, i);
        a.st(1, 0, 2);
    }
    a.halt();
    sys.loadProgram(0, share(a.finish()));
    runToCompletion(sys);
    EXPECT_EQ(sys.debugReadWord(0x1200), 6u);
}

TEST(RcModel, WorkloadsStaySoundUnderRc)
{
    // The spinlock/atomic-based pieces do not rely on TSO ordering, so
    // the STM workload must still validate under RC (with its fences
    // all strong).
    SystemConfig cfg = rcConfig(4);
    System sys(cfg);
    const auto &bench = workloads::ustmBenchByName("Hash");
    auto setup = workloads::setupTlrwWorkload(sys, bench, 0);
    sys.run(60'000);
    uint64_t commits_rw = sys.guestCounter(workloads::markTxCommitRw);
    uint64_t sum = workloads::sumTlrwData(sys, setup);
    EXPECT_LE(sum, bench.writesRw * commits_rw + bench.writesRw * 4);
    EXPECT_GT(commits_rw, 0u);
}
