/**
 * Unit tests for the execution recorder: per-thread logging, global
 * coherence stamping, forwarded-load tagging, and W+ rollback
 * truncation — all via direct hook calls, no simulator involved.
 */

#include <gtest/gtest.h>

#include "check/recorder.hh"

using namespace asf;
using namespace asf::check;

TEST(Recorder, LogsEventsPerThreadInCommitOrder)
{
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x100, 0x1000, 7, /*seq=*/1, 10);
    rec.onFence(0, 0x104, FenceKind::Strong, /*instant=*/false,
                /*fence_id=*/1, 12);
    rec.onLoad(0, 0x108, 0x2000, 0, /*fwd_seq=*/0, 20);
    rec.onLoad(1, 0x200, 0x1000, 7, /*fwd_seq=*/0, 25);

    ASSERT_EQ(rec.numThreads(), 2u);
    ASSERT_EQ(rec.threads()[0].size(), 3u);
    ASSERT_EQ(rec.threads()[1].size(), 1u);
    EXPECT_EQ(rec.threads()[0][0].kind, EvKind::Store);
    EXPECT_EQ(rec.threads()[0][1].kind, EvKind::Fence);
    EXPECT_EQ(rec.threads()[0][2].kind, EvKind::Load);
    EXPECT_EQ(rec.eventsCaptured(), 4u);
    EXPECT_EQ(rec.loadsCaptured(), 2u);
    EXPECT_EQ(rec.storesCaptured(), 1u);
    EXPECT_EQ(rec.fencesCaptured(), 1u);
    EXPECT_EQ(rec.rmwsCaptured(), 0u);
}

TEST(Recorder, MergeAssignsGlobalStampsInCallOrder)
{
    ExecutionRecorder rec(2);
    rec.onStore(0, 0, 0x1000, 1, 1, 0);
    rec.onStore(1, 0, 0x1000, 2, 1, 0);
    rec.onStore(0, 0, 0x2000, 3, 2, 0);
    // Merge order differs from retire order: t1 first.
    rec.onStoreMerged(1, 1);
    rec.onStoreMerged(0, 2);
    rec.onStoreMerged(0, 1);
    EXPECT_EQ(rec.threads()[1][0].coStamp, 1u);
    EXPECT_EQ(rec.threads()[0][1].coStamp, 2u);
    EXPECT_EQ(rec.threads()[0][0].coStamp, 3u);
    EXPECT_EQ(rec.mergesCaptured(), 3u);
}

TEST(Recorder, WritingRmwIsStampedAtPerform)
{
    ExecutionRecorder rec(1);
    rec.onStore(0, 0, 0x1000, 1, 1, 0);
    rec.onStoreMerged(0, 1);
    rec.onRmw(0, 0x10, 0x1000, /*read=*/1, /*written=*/2, /*wrote=*/true,
              5);
    rec.onRmw(0, 0x14, 0x1000, /*read=*/2, /*written=*/9,
              /*wrote=*/false, 6); // failed CAS: no stamp
    EXPECT_EQ(rec.threads()[0][1].coStamp, 2u);
    EXPECT_EQ(rec.threads()[0][2].coStamp, 0u);
    EXPECT_EQ(rec.mergesCaptured(), 2u);
    EXPECT_EQ(rec.rmwsCaptured(), 2u);
}

TEST(Recorder, ForwardedLoadKeepsSourceSeq)
{
    ExecutionRecorder rec(1);
    rec.onStore(0, 0, 0x1000, 42, 7, 0);
    rec.onLoad(0, 4, 0x1000, 42, /*fwd_seq=*/7, 1);
    EXPECT_EQ(rec.threads()[0][1].fwdSeq, 7u);
}

TEST(Recorder, MergeOfUnrecordedStoreIsFatal)
{
    ExecutionRecorder rec(1);
    EXPECT_DEATH(rec.onStoreMerged(0, 99), "unrecorded store");
}

TEST(Recorder, RecoveryTruncatesBackToTheFence)
{
    ExecutionRecorder rec(1);
    rec.onStore(0, 0x0, 0x1000, 1, /*seq=*/1, 0); // pre-fence, survives
    rec.onFence(0, 0x4, FenceKind::Weak, /*instant=*/false,
                /*fence_id=*/3, 1);
    rec.onLoad(0, 0x8, 0x2000, 0, 0, 2);          // squashed
    rec.onStore(0, 0xc, 0x3000, 5, /*seq=*/2, 3); // squashed, unmerged

    rec.onRecovery(0, /*fence_id=*/3, /*last_pre_store_seq=*/1);

    ASSERT_EQ(rec.threads()[0].size(), 2u);
    EXPECT_EQ(rec.threads()[0][1].kind, EvKind::Fence);
    EXPECT_EQ(rec.eventsSquashed(), 2u);
    EXPECT_EQ(rec.loadsCaptured(), 0u);
    EXPECT_EQ(rec.storesCaptured(), 1u);
    // The surviving pre-fence store still merges normally.
    rec.onStoreMerged(0, 1);
    EXPECT_NE(rec.threads()[0][0].coStamp, 0u);
    // The squashed store's pending merge is gone.
    EXPECT_DEATH(rec.onStoreMerged(0, 2), "unrecorded store");
}

TEST(Recorder, ReexecutionAfterRecoveryLogsFreshEvents)
{
    ExecutionRecorder rec(1);
    rec.onStore(0, 0x0, 0x1000, 1, 1, 0);
    rec.onFence(0, 0x4, FenceKind::Weak, false, 1, 1);
    rec.onLoad(0, 0x8, 0x2000, 0, 0, 2);
    rec.onRecovery(0, 1, 1);
    // The core re-executes the post-fence region.
    rec.onLoad(0, 0x8, 0x2000, 9, 0, 50);
    ASSERT_EQ(rec.threads()[0].size(), 3u);
    EXPECT_EQ(rec.threads()[0][2].value, 9u);
    EXPECT_EQ(rec.loadsCaptured(), 1u);
    EXPECT_EQ(rec.eventsSquashed(), 1u);
}

TEST(Recorder, RecoveryAtUnknownFenceIsFatal)
{
    ExecutionRecorder rec(1);
    // Instant fences leave no recovery mark: they complete on an empty
    // write buffer, so nothing can roll back past them.
    rec.onFence(0, 0x4, FenceKind::Weak, /*instant=*/true, 5, 1);
    EXPECT_DEATH(rec.onRecovery(0, 5, 0), "unrecorded fence");
}
