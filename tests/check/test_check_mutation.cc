/**
 * Checker mutation self-test: seed the classic fence-group bug —
 * post-fence loads claim Bypass-Set protection without inserting their
 * address (SystemConfig::mutateDropBsInsert, default-on in
 * ASF_MUTATE_WEAK_FENCE builds) — and require the checker to convict
 * the resulting execution with a happens-before cycle through a fence
 * edge. The unmutated control run must pass. This is the end-to-end
 * proof that the checker can actually catch the class of bug it was
 * built for.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "../helpers.hh"
#include "check/axioms.hh"
#include "runtime/layout.hh"
#include "runtime/litmus.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::runtime;

namespace
{

struct MutationOutcome
{
    uint64_t r0 = 0;
    uint64_t r1 = 0;
    check::CheckResult check;
};

/** The warmed SB pair under W+ (every fence weak): without BS bounces
 *  both post-fence loads hit their warm (stale) lines and read 0,
 *  deterministically — the stores still need a full miss round trip to
 *  merge. Under WS+/SW+ one side's fence stays strong and the mutated
 *  outcome (0, 1) is SC-legal, so W+ is the design that convicts. */
MutationOutcome
runMutatedSb(FenceDesign design, bool mutate)
{
    SystemConfig cfg = smallConfig(design, 2);
    cfg.checkExecution = true;
    cfg.mutateDropBsInsert = mutate;
    System sys(cfg);
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    sys.loadProgram(0, share(buildSbThread(lay, 0, true,
                                           FenceRole::Critical, 600)));
    sys.loadProgram(1, share(buildSbThread(lay, 1, true,
                                           FenceRole::Noncritical, 600)));
    EXPECT_EQ(sys.run(2'000'000), System::RunResult::AllDone);

    MutationOutcome out;
    out.r0 = sys.debugReadWord(lay.res0);
    out.r1 = sys.debugReadWord(lay.res1);
    out.check = check::checkExecution(*sys.executionRecorder());
    return out;
}

} // namespace

TEST(CheckMutation, DroppedBsInsertConvictedWithFenceCycle)
{
    MutationOutcome out = runMutatedSb(FenceDesign::WPlus, true);
    // The seeded bug manifests: both post-fence loads read stale 0.
    EXPECT_EQ(out.r0, 0u);
    EXPECT_EQ(out.r1, 0u);
    EXPECT_EQ(out.check.verdict, check::Verdict::Violation)
        << "mutated W+ escaped the checker";
    EXPECT_EQ(out.check.axiom, "tso-ghb");
    ASSERT_FALSE(out.check.witness.empty());
    bool through_fence = false;
    for (const auto &s : out.check.witness)
        if (s.edgeToNext == "fence")
            through_fence = true;
    EXPECT_TRUE(through_fence)
        << "cycle does not pass through a fence edge";
}

TEST(CheckMutation, WitnessJsonIsWellFormedAndLocatesTheBug)
{
    MutationOutcome out = runMutatedSb(FenceDesign::WPlus, true);
    ASSERT_EQ(out.check.verdict, check::Verdict::Violation);
    std::string doc = check::witnessJson(out.check);
    EXPECT_NE(doc.find("\"verdict\":\"violation\""), std::string::npos);
    EXPECT_NE(doc.find("\"axiom\":\"tso-ghb\""), std::string::npos);
    EXPECT_NE(doc.find("\"cycle\":["), std::string::npos);
    EXPECT_NE(doc.find("\"edgeToNext\":\"fence\""), std::string::npos);
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    // The full stats dump embeds the same witness in the check block.
    std::ostringstream os;
    // (Re-run is unnecessary: writeWitnessJson is pure; just check the
    // standalone document round-trips through the verdict fields.)
    check::writeWitnessJson(out.check, os);
    EXPECT_EQ(os.str(), doc);
}

TEST(CheckMutation, UnmutatedControlPasses)
{
    MutationOutcome out = runMutatedSb(FenceDesign::WPlus, false);
    EXPECT_FALSE(out.r0 == 0 && out.r1 == 0) << "SC violation";
    EXPECT_TRUE(out.check.passed()) << out.check.reason;
}
