/**
 * The checker against the fuzz harness: randomly generated
 * fence-disciplined programs (every shared store separated from every
 * subsequent shared load by a fence — the full Shasha-Snir delay set)
 * must be SC-equivalent under EVERY fence design, so the recorded
 * executions are verified with `requireSc` — the strictest mode.
 * 5 designs x 4 seeds = 20 executions, with atomic (XCHG) rounds
 * enabled to cover the RMW capture path.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "check/axioms.hh"
#include "prog/fuzz.hh"

using namespace asf;
using namespace asf::test;

namespace
{

struct CheckSweepParam
{
    FenceDesign design;
    uint64_t seed;
};

std::string
paramName(const ::testing::TestParamInfo<CheckSweepParam> &info)
{
    std::string n = fenceDesignName(info.param.design);
    for (auto &c : n)
        if (c == '+')
            c = 'p';
    return n + "_seed" + std::to_string(info.param.seed);
}

std::vector<CheckSweepParam>
allParams()
{
    std::vector<CheckSweepParam> out;
    for (FenceDesign d : allFenceDesigns)
        for (uint64_t seed : {101ull, 202ull, 303ull, 404ull})
            out.push_back({d, seed});
    return out;
}

class CheckedFuzzSweep : public ::testing::TestWithParam<CheckSweepParam>
{
};

} // namespace

TEST_P(CheckedFuzzSweep, ScEquivalenceHolds)
{
    FuzzConfig cfg;
    cfg.numThreads = 4;
    cfg.numLocations = 8;
    cfg.rounds = 8;
    cfg.maxRmwsPerRound = 2;
    cfg.seed = GetParam().seed;
    FuzzSetup setup = buildFuzz(cfg);

    SystemConfig sc;
    sc.numCores = 4;
    sc.design = GetParam().design;
    sc.checkExecution = true;
    System sys(sc);
    for (unsigned t = 0; t < cfg.numThreads; t++)
        sys.loadProgram(NodeId(t), share(Program(setup.programs[t])));
    ASSERT_EQ(sys.run(5'000'000), System::RunResult::AllDone)
        << "fuzz program hung";

    const check::ExecutionRecorder *rec = sys.executionRecorder();
    ASSERT_NE(rec, nullptr);
    // Coverage sanity: the run exercised every event class and both
    // merge paths matter (everything drained => every store stamped).
    EXPECT_GT(rec->loadsCaptured(), 0u);
    EXPECT_GT(rec->storesCaptured(), 0u);
    EXPECT_GT(rec->rmwsCaptured(), 0u);
    EXPECT_GT(rec->fencesCaptured(), 0u);
    EXPECT_EQ(rec->mergesCaptured(),
              rec->storesCaptured() + rec->rmwsCaptured());

    check::CheckResult r =
        check::checkExecution(*rec, {/*requireSc=*/true});
    EXPECT_EQ(r.verdict, check::Verdict::Pass)
        << "checker " << check::verdictName(r.verdict) << ": "
        << r.reason;
    EXPECT_TRUE(r.scChecked);
    // Unique tokens mean every read is conclusively attributed.
    EXPECT_EQ(r.ambiguousReads, 0u);
    EXPECT_GT(r.rfEdges + r.readsFromInit, 0u);
    EXPECT_GT(r.coEdges, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDesignsBySeeds, CheckedFuzzSweep,
                         ::testing::ValuesIn(allParams()), paramName);
