/**
 * Unit tests for the axiomatic checker on hand-built event logs: rf/co/
 * fr derivation, and one synthesized violation per axiom (value
 * integrity, coherence, RMW atomicity, TSO and SC happens-before),
 * each with a usable witness cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/axioms.hh"

using namespace asf;
using namespace asf::check;

namespace
{

constexpr Addr X = 0x1000;
constexpr Addr Y = 0x2000;

bool
witnessHasEdge(const CheckResult &r, const std::string &kind)
{
    return std::any_of(r.witness.begin(), r.witness.end(),
                       [&](const WitnessStep &s) {
                           return s.edgeToNext == kind;
                       });
}

} // namespace

TEST(Axioms, EmptyExecutionPasses)
{
    ExecutionRecorder rec(4);
    CheckResult r = checkExecution(rec);
    EXPECT_TRUE(r.passed());
    EXPECT_EQ(r.events, 0u);
}

TEST(Axioms, DerivesRfCoFrFromAWellOrderedExecution)
{
    // T0: Wx1, Wx2 (co x: 1 -> 2). T1: Rx1 (between them), Rx2.
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onStoreMerged(0, 1);
    rec.onStore(0, 0x4, X, 2, 2, 5);
    rec.onStoreMerged(0, 2);
    rec.onLoad(1, 0x100, X, 1, 0, 2);
    rec.onLoad(1, 0x104, X, 2, 0, 8);

    CheckResult r = checkExecution(rec);
    EXPECT_TRUE(r.passed()) << r.reason;
    EXPECT_EQ(r.coEdges, 1u);
    EXPECT_EQ(r.rfEdges, 2u);
    EXPECT_EQ(r.frEdges, 1u); // Rx1 -> Wx2
    EXPECT_EQ(r.readsFromInit, 0u);
}

TEST(Axioms, ReadOfInitialValuePassesAndCountsFr)
{
    // T1 reads 0 from x before T0's only write merges.
    ExecutionRecorder rec(2);
    rec.onLoad(1, 0x100, X, 0, 0, 1);
    rec.onStore(0, 0x0, X, 1, 1, 5);
    rec.onStoreMerged(0, 1);
    CheckResult r = checkExecution(rec);
    EXPECT_TRUE(r.passed()) << r.reason;
    EXPECT_EQ(r.readsFromInit, 1u);
    EXPECT_EQ(r.frEdges, 1u); // init-read precedes the first write
}

TEST(Axioms, FabricatedValueViolatesValueIntegrity)
{
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onStoreMerged(0, 1);
    rec.onLoad(1, 0x100, X, 99, 0, 2); // nobody wrote 99
    CheckResult r = checkExecution(rec);
    EXPECT_EQ(r.verdict, Verdict::Violation);
    EXPECT_EQ(r.axiom, "value-integrity");
    ASSERT_EQ(r.witness.size(), 1u);
    EXPECT_EQ(r.witness[0].thread, 1);
    EXPECT_EQ(r.witness[0].event.value, 99u);
}

TEST(Axioms, CoRRViolatesCoherence)
{
    // T0 writes x=1 then x=2 (co: 1 before 2); T1 reads 2 then 1.
    // po-loc + rf + fr close a cycle regardless of fences.
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onStoreMerged(0, 1);
    rec.onStore(0, 0x4, X, 2, 2, 1);
    rec.onStoreMerged(0, 2);
    rec.onLoad(1, 0x100, X, 2, 0, 5);
    rec.onLoad(1, 0x104, X, 1, 0, 6);
    CheckResult r = checkExecution(rec);
    EXPECT_EQ(r.verdict, Verdict::Violation);
    EXPECT_EQ(r.axiom, "coherence");
    EXPECT_GE(r.witness.size(), 3u);
    EXPECT_TRUE(witnessHasEdge(r, "fr"));
}

TEST(Axioms, InterveningWriteViolatesRmwAtomicity)
{
    // co x: Wx1 (T0), then T1's atomic which read 0 — it skipped its
    // coherence predecessor, so a write intervened between its halves.
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onStoreMerged(0, 1);
    rec.onRmw(1, 0x100, X, /*read=*/0, /*written=*/5, true, 3);
    CheckResult r = checkExecution(rec);
    EXPECT_EQ(r.verdict, Verdict::Violation);
    EXPECT_EQ(r.axiom, "rmw-atomicity");
    ASSERT_EQ(r.witness.size(), 2u);
    EXPECT_EQ(r.witness[0].edgeToNext, "co");
    EXPECT_EQ(r.witness[1].event.kind, EvKind::Rmw);
}

TEST(Axioms, AtomicChainPasses)
{
    // Three XCHGs on one word, each reading its co-predecessor.
    ExecutionRecorder rec(3);
    rec.onRmw(0, 0x0, X, 0, 10, true, 1);
    rec.onRmw(1, 0x100, X, 10, 20, true, 2);
    rec.onRmw(2, 0x200, X, 20, 30, true, 3);
    CheckResult r = checkExecution(rec);
    EXPECT_TRUE(r.passed()) << r.reason;
    EXPECT_EQ(r.rmws, 3u);
}

TEST(Axioms, FencedStoreBufferingCycleViolatesTsoGhb)
{
    // The SB forbidden outcome recorded as if it happened: both
    // threads fence between their store and load yet both read 0.
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onFence(0, 0x4, FenceKind::Weak, false, 1, 1);
    rec.onLoad(0, 0x8, Y, 0, 0, 2);
    rec.onStore(1, 0x100, Y, 1, 1, 0);
    rec.onFence(1, 0x104, FenceKind::Strong, false, 1, 1);
    rec.onLoad(1, 0x108, X, 0, 0, 2);
    rec.onStoreMerged(0, 1);
    rec.onStoreMerged(1, 1);

    CheckResult r = checkExecution(rec);
    EXPECT_EQ(r.verdict, Verdict::Violation);
    EXPECT_EQ(r.axiom, "tso-ghb");
    // Wx -> F -> Ry -fr-> Wy -> F -> Rx -fr-> (wrap to Wx).
    EXPECT_EQ(r.witness.size(), 6u);
    EXPECT_TRUE(witnessHasEdge(r, "fence"));
    EXPECT_TRUE(witnessHasEdge(r, "fr"));
}

TEST(Axioms, UnfencedStoreBufferingIsTsoLegalButNotSc)
{
    // Same outcome without fences: TSO allows the W->R reorder, SC
    // does not.
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onLoad(0, 0x8, Y, 0, 0, 2);
    rec.onStore(1, 0x100, Y, 1, 1, 0);
    rec.onLoad(1, 0x108, X, 0, 0, 2);
    rec.onStoreMerged(0, 1);
    rec.onStoreMerged(1, 1);

    CheckResult tso = checkExecution(rec);
    EXPECT_TRUE(tso.passed()) << tso.reason;
    EXPECT_FALSE(tso.scChecked);

    CheckResult sc = checkExecution(rec, {/*requireSc=*/true});
    EXPECT_EQ(sc.verdict, Verdict::Violation);
    EXPECT_EQ(sc.axiom, "sc-ghb");
    EXPECT_TRUE(sc.scChecked);
    EXPECT_EQ(sc.witness.size(), 4u);
    EXPECT_TRUE(witnessHasEdge(sc, "po"));
}

TEST(Axioms, StoreForwardingIsLegalEarlyRead)
{
    // SB with each thread forwarding its own store: Wx1; Rx1(fwd); Ry0
    // || Wy1; Ry1(fwd); Rx0. Legal under TSO — a core reads its own
    // buffered store early — but ONLY because internal rf stays out of
    // the global graph; treating the forward as a globally-performed
    // read would close the cycle Rx1 -> Ry0 -fr-> Wy1 -> Ry1 -> Rx0
    // -fr-> Wx1 -> Rx1.
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onLoad(0, 0x4, X, 1, /*fwd_seq=*/1, 1);
    rec.onLoad(0, 0x8, Y, 0, 0, 2);
    rec.onStore(1, 0x100, Y, 1, 1, 0);
    rec.onLoad(1, 0x104, Y, 1, /*fwd_seq=*/1, 1);
    rec.onLoad(1, 0x108, X, 0, 0, 2);
    rec.onStoreMerged(0, 1);
    rec.onStoreMerged(1, 1);
    CheckResult r = checkExecution(rec);
    EXPECT_TRUE(r.passed()) << r.reason;
    EXPECT_EQ(r.rfEdges, 2u);
    EXPECT_EQ(r.readsFromInit, 2u);
}

TEST(Axioms, NonUniqueValuesAreInconclusiveNotWrong)
{
    // Two merged writes of the same value to x; a read of that value
    // cannot be attributed to either.
    ExecutionRecorder rec(3);
    rec.onStore(0, 0x0, X, 7, 1, 0);
    rec.onStoreMerged(0, 1);
    rec.onStore(1, 0x100, X, 7, 1, 1);
    rec.onStoreMerged(1, 1);
    rec.onLoad(2, 0x200, X, 7, 0, 2);
    CheckResult r = checkExecution(rec);
    EXPECT_EQ(r.verdict, Verdict::Inconclusive);
    EXPECT_EQ(r.ambiguousReads, 1u);
    EXPECT_FALSE(r.passed());
    EXPECT_TRUE(r.axiom.empty());
}

TEST(Axioms, WitnessJsonIsWellFormed)
{
    ExecutionRecorder rec(2);
    rec.onStore(0, 0x0, X, 1, 1, 0);
    rec.onFence(0, 0x4, FenceKind::Weak, false, 1, 1);
    rec.onLoad(0, 0x8, Y, 0, 0, 2);
    rec.onStore(1, 0x100, Y, 1, 1, 0);
    rec.onFence(1, 0x104, FenceKind::Weak, false, 1, 1);
    rec.onLoad(1, 0x108, X, 0, 0, 2);
    rec.onStoreMerged(0, 1);
    rec.onStoreMerged(1, 1);
    CheckResult r = checkExecution(rec);
    ASSERT_EQ(r.verdict, Verdict::Violation);

    std::string doc = witnessJson(r);
    EXPECT_NE(doc.find("\"verdict\":\"violation\""), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"axiom\":\"tso-ghb\""), std::string::npos);
    EXPECT_NE(doc.find("\"cycle\":["), std::string::npos);
    EXPECT_NE(doc.find("\"edgeToNext\":\"fence\""), std::string::npos);
    // Balanced braces/brackets (the writer tracks nesting itself, but
    // the spliced output must survive a dumb parser too).
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.back(), '}');
}

TEST(Axioms, PassVerdictNamesRoundTrip)
{
    EXPECT_STREQ(verdictName(Verdict::Pass), "pass");
    EXPECT_STREQ(verdictName(Verdict::Violation), "violation");
    EXPECT_STREQ(verdictName(Verdict::Inconclusive), "inconclusive");
}
