/**
 * Observation-only guarantee: enabling execution checking must not
 * perturb the simulation. A quick Figure-10-style ustm run (the
 * densest workload: TLRW transactions, every fence kind, RMWs, W+
 * recoveries) is executed with checking on and off; simulated cycles
 * and the full stats JSON — minus the `check` block itself — must be
 * byte-identical.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hh"
#include "workloads/ustm.hh"

using namespace asf;
using namespace asf::test;
using namespace asf::workloads;

namespace
{

void
runQuickUstm(FenceDesign design, bool check, Tick &cycles,
             std::string &json)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.design = design;
    cfg.checkExecution = check;
    System sys(cfg);
    TlrwSetup setup =
        setupTlrwWorkload(sys, ustmBenchByName("Hash"), /*txn_limit=*/0);
    (void)setup;
    // Throughput mode runs forever; a fixed budget keeps it quick.
    ASSERT_EQ(sys.run(30'000), System::RunResult::MaxCycles);
    cycles = sys.now();
    std::ostringstream os;
    sys.dumpStatsJson(os, /*include_profile=*/true,
                      /*include_check=*/false);
    json = os.str();
    EXPECT_EQ(check, sys.executionRecorder() != nullptr);
}

} // namespace

class CheckIdentity : public ::testing::TestWithParam<FenceDesign>
{
};

TEST_P(CheckIdentity, OnOffIsBitIdentical)
{
    Tick cycles_on = 0, cycles_off = 0;
    std::string json_on, json_off;
    runQuickUstm(GetParam(), true, cycles_on, json_on);
    runQuickUstm(GetParam(), false, cycles_off, json_off);
    EXPECT_EQ(cycles_on, cycles_off);
    EXPECT_EQ(json_on, json_off);
}

// S+ (strong fences, serialization), W+ (recoveries, squashes) and Wee
// (GRT traffic) cover every recorder hook's surrounding code path.
INSTANTIATE_TEST_SUITE_P(QuickFig10, CheckIdentity,
                         ::testing::Values(FenceDesign::SPlus,
                                           FenceDesign::WPlus,
                                           FenceDesign::Wee),
                         [](const auto &info) {
                             std::string n = fenceDesignName(info.param);
                             for (auto &c : n)
                                 if (c == '+')
                                     c = 'p';
                             return n;
                         });

TEST(CheckIdentity, CheckBlockPresentOnlyWhenEnabled)
{
    SystemConfig cfg = smallConfig(FenceDesign::SPlus, 2);
    cfg.checkExecution = true;
    System sys(cfg);
    sys.loadProgram(0, share(storeProgram(0x1000, 5)));
    sys.loadProgram(1, share(loadProgram(0x1000, 0x2000)));
    runToCompletion(sys);

    std::ostringstream with, without;
    sys.dumpStatsJson(with);
    sys.dumpStatsJson(without, /*include_profile=*/true,
                      /*include_check=*/false);
    EXPECT_NE(with.str().find("\"check\":{"), std::string::npos);
    EXPECT_NE(with.str().find("\"verdict\":\"pass\""),
              std::string::npos);
    EXPECT_EQ(without.str().find("\"check\":"), std::string::npos);
    EXPECT_NE(with.str().find("\"schemaVersion\":4"), std::string::npos);
}
