/**
 * Fence synthesis over the seven litmus kits: the synthesized
 * placements must reproduce the hand-placed kits exactly (the kits
 * are straight-line, so there is one minimal answer), fence-free kits
 * must synthesize zero fences, already-fenced inputs must need
 * nothing new, and every final placement must survive the checker's
 * full (design x seed) verification matrix.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "analysis/corpus.hh"
#include "runtime/litmus.hh"

using namespace asf;
using namespace asf::analysis;
using namespace asf::runtime;
using asf::test::share;

namespace
{

/** Synthesized insertions must equal the recorded hand sites,
 *  position and role both. */
void
expectMatchesHandPlacement(const SynthResult &s)
{
    for (size_t t = 0; t < s.input.size(); t++) {
        const auto &hand = s.input[t]->omittedFences;
        ASSERT_EQ(s.insertions[t].size(), hand.size()) << "thread " << t;
        for (size_t i = 0; i < hand.size(); i++) {
            EXPECT_EQ(s.insertions[t][i].beforePc, hand[i].beforePc);
            EXPECT_EQ(s.insertions[t][i].role, hand[i].role);
        }
    }
}

} // namespace

TEST(SynthLitmus, SbReproducesHandFences)
{
    CorpusEntry e = buildCorpusEntry("sb");
    SynthResult s = synthesize(e.threads);
    EXPECT_EQ(s.pairs.size(), 2u);
    EXPECT_TRUE(s.precovered.empty());
    ASSERT_EQ(s.fences.size(), 2u);
    expectMatchesHandPlacement(s);
    // Asymmetric roles: thread 0 is the critical side.
    EXPECT_EQ(s.criticalThread, 0u);
    EXPECT_EQ(s.insertions[0][0].role, FenceRole::Critical);
    EXPECT_EQ(s.insertions[1][0].role, FenceRole::Noncritical);
}

TEST(SynthLitmus, RReproducesHandFence)
{
    CorpusEntry e = buildCorpusEntry("r");
    SynthResult s = synthesize(e.threads);
    EXPECT_EQ(s.pairs.size(), 1u);
    ASSERT_EQ(s.fences.size(), 1u);
    EXPECT_EQ(s.fences[0].thread, 1u); // the judge
    expectMatchesHandPlacement(s);
}

TEST(SynthLitmus, FenceFreeKitsSynthesizeNothing)
{
    for (const char *kit : {"mp", "iriw", "lb", "2p2w", "s"}) {
        CorpusEntry e = buildCorpusEntry(kit);
        SynthResult s = synthesize(e.threads);
        EXPECT_TRUE(s.pairs.empty()) << kit;
        EXPECT_TRUE(s.fences.empty()) << kit;
        // Nothing to splice: outputs alias the inputs.
        for (size_t t = 0; t < e.threads.size(); t++)
            EXPECT_EQ(s.fenced[t].get(), e.threads[t].get()) << kit;
    }
}

TEST(SynthLitmus, AlreadyFencedInputsNeedNothingNew)
{
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    std::vector<std::shared_ptr<const Program>> threads = {
        share(buildSbThread(lay, 0, true, FenceRole::Critical, 600)),
        share(buildSbThread(lay, 1, true, FenceRole::Noncritical, 600))};
    SynthResult s = synthesize(threads);
    EXPECT_EQ(s.pairs.size(), 2u);
    EXPECT_EQ(s.precovered.size(), 2u);
    EXPECT_TRUE(s.fences.empty());

    std::vector<std::shared_ptr<const Program>> rj = {
        share(buildRWriter(lay, 600)),
        share(buildRJudge(lay, true, FenceRole::Noncritical, 600))};
    SynthResult sr = synthesize(rj);
    EXPECT_EQ(sr.precovered.size(), sr.pairs.size());
    EXPECT_TRUE(sr.fences.empty());
}

TEST(SynthLitmus, EveryKitSurvivesTheVerificationMatrix)
{
    // minimize() re-runs the final placement under all five designs
    // (x two seeds) with requireSc; a passing matrix is the paper's
    // delay-set soundness argument made executable.
    for (const char *kit : {"sb", "mp", "iriw", "lb", "r", "2p2w", "s"}) {
        CorpusEntry e = buildCorpusEntry(kit);
        MinimizeResult m = minimize(synthesize(e.threads),
                                    e.minimizeOptions());
        EXPECT_TRUE(m.finalPlacementPassed) << kit;
    }
}

TEST(SynthLitmus, MinimizeKeepsSbAndDropsR)
{
    // sb's two fences are dynamically load-bearing: each removal is
    // convicted (sc-ghb or the forbidden-outcome invariant).
    CorpusEntry sb = buildCorpusEntry("sb");
    MinimizeResult msb =
        minimize(synthesize(sb.threads), sb.minimizeOptions());
    EXPECT_EQ(msb.kept, 2u);
    EXPECT_EQ(msb.dropped, 0u);
    for (const MinimizeDecision &d : msb.decisions) {
        EXPECT_EQ(d.action, MinimizeDecision::Action::Kept);
        EXPECT_FALSE(d.evidence.empty());
    }

    // r's judge fence is statically required (the delay set demands
    // it) but dynamically unobservable in this simulator: the judge's
    // ownership request always beats the writer's second store, so
    // the forbidden coherence order never forms. Checker-guided
    // minimization prunes exactly this static-vs-dynamic gap.
    CorpusEntry r = buildCorpusEntry("r");
    MinimizeResult mr =
        minimize(synthesize(r.threads), r.minimizeOptions());
    EXPECT_EQ(mr.kept, 0u);
    EXPECT_EQ(mr.dropped, 1u);
    EXPECT_TRUE(mr.finalPlacementPassed);
}
