/**
 * Unit tests for the static CFG/access substrate of the fence
 * synthesizer: successor sets, po+ reachability, loop-depth
 * estimation, constant-propagated address resolution, ordering
 * points, and the path-avoidance query placement is built on.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "analysis/cfg.hh"
#include "runtime/regs.hh"

using namespace asf;
using namespace asf::analysis;
using namespace asf::regs;
using asf::test::share;

namespace
{

/** A branch diamond: pc3 splits to a store arm (4,5) and a compute
 *  arm (6), rejoining at the load (7). */
Cfg
diamond()
{
    Assembler a("diamond");
    a.li(a0, 0x1000); // 0
    a.ld(t0, a0, 0);  // 1
    a.li(t1, 0);      // 2
    a.beq(t0, t1, "skip"); // 3
    a.st(a0, 0, t1);  // 4
    a.jmp("join");    // 5
    a.bind("skip");
    a.compute(5);     // 6
    a.bind("join");
    a.ld(t2, a0, 0);  // 7
    a.halt();         // 8
    return Cfg(share(a.finish()));
}

} // namespace

TEST(AnalysisCfg, SuccessorSets)
{
    Cfg c = diamond();
    ASSERT_EQ(c.size(), 9u);
    EXPECT_EQ(c.succs(0), (std::vector<uint64_t>{1}));
    EXPECT_EQ(c.succs(3), (std::vector<uint64_t>{4, 6}));
    EXPECT_EQ(c.succs(5), (std::vector<uint64_t>{7}));
    EXPECT_TRUE(c.succs(8).empty()); // halt
}

TEST(AnalysisCfg, ReachabilityIsNonemptyPath)
{
    Cfg c = diamond();
    EXPECT_TRUE(c.reaches(0, 8));
    EXPECT_TRUE(c.reaches(3, 7)); // via either arm
    EXPECT_FALSE(c.reaches(8, 0));
    EXPECT_FALSE(c.reaches(4, 6)); // arms don't cross
    EXPECT_FALSE(c.reaches(4, 4)); // straight line: no self-path
}

TEST(AnalysisCfg, LoopDepthNests)
{
    Assembler a("nest");
    a.li(s0, 3);            // 0
    a.bind("outer");
    a.li(s1, 2);            // 1
    a.bind("inner");
    a.addi(s1, s1, -1);     // 2
    a.li(t0, 0);            // 3
    a.blt(t0, s1, "inner"); // 4
    a.addi(s0, s0, -1);     // 5
    a.li(t0, 0);            // 6
    a.blt(t0, s0, "outer"); // 7
    a.halt();               // 8
    Cfg c(share(a.finish()));

    EXPECT_EQ(c.loopDepth(0), 0u);
    EXPECT_EQ(c.loopDepth(1), 1u); // outer body
    EXPECT_EQ(c.loopDepth(3), 2u); // inner body
    EXPECT_EQ(c.loopDepth(5), 1u);
    EXPECT_EQ(c.loopDepth(8), 0u);
    // Self-reach inside a loop.
    EXPECT_TRUE(c.reaches(2, 2));
}

TEST(AnalysisCfg, ConstPropResolvesAddresses)
{
    Assembler a("addr");
    a.li(a0, 0x1000);      // 0
    a.st(a0, 8, t0);       // 1: known 0x1008
    a.ld(t1, a0, 0);       // 2: known 0x1000
    a.rand(t2);            // 3
    a.add(a1, a0, t2);     // 4: a1 unknown
    a.ld(t3, a1, 0);       // 5: unknown address
    a.xchg(t4, a0, 0, t0); // 6: atomic read-write, known
    a.fence(FenceRole::Critical); // 7
    a.halt();              // 8
    Cfg c(share(a.finish()));

    const auto &acc = c.accesses();
    ASSERT_EQ(acc.size(), 4u);
    EXPECT_TRUE(acc[0].write);
    EXPECT_TRUE(acc[0].addrKnown);
    EXPECT_EQ(acc[0].addr, 0x1008u);
    EXPECT_TRUE(acc[1].read);
    EXPECT_EQ(acc[1].addr, 0x1000u);
    EXPECT_FALSE(acc[2].addrKnown);
    EXPECT_TRUE(acc[3].atomic);
    EXPECT_TRUE(acc[3].read);
    EXPECT_TRUE(acc[3].write);

    // Fence and atomic are the ordering points.
    EXPECT_EQ(c.orderPoints(), (std::vector<uint64_t>{6, 7}));

    // Unknown conflicts with everything; distinct constants don't.
    EXPECT_TRUE(mayAlias(acc[2], acc[0]));
    EXPECT_FALSE(mayAlias(acc[0], acc[1]));
    EXPECT_TRUE(mayAlias(acc[1], acc[3]));
}

TEST(AnalysisCfg, PathAvoidance)
{
    Cfg c = diamond();
    // Blocking one arm leaves the other open.
    EXPECT_TRUE(c.existsPathAvoiding(1, 7, {4}));
    // Blocking both arms cuts every path.
    EXPECT_FALSE(c.existsPathAvoiding(1, 7, {4, 6}));
    // Blocking the destination cuts it too (a fence before L orders
    // the pair).
    EXPECT_FALSE(c.existsPathAvoiding(1, 7, {7}));
    // The source itself is never blocked: the fence acts before the
    // *next* instruction, so a path leaving a blocked `from` is fine.
    EXPECT_TRUE(c.existsPathAvoiding(4, 7, {4}));
}
