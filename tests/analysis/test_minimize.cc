/**
 * Checker-guided minimization: the directed deadpath kit shows the
 * removal direction (statically required fences with no dynamic
 * justification must all go), sb shows the keep direction with
 * conviction evidence, and the weakening pass must revert a flip the
 * checker convicts (WS+'s one-weak-fence-per-group restriction).
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "analysis/corpus.hh"

using namespace asf;
using namespace asf::analysis;

TEST(Minimize, DeadpathDropsEveryFence)
{
    // The racy region sits behind a branch that never executes (the
    // guarding flag is statically Unknown but dynamically always 0),
    // so static analysis must fence it and dynamic evidence must then
    // remove every fence again.
    CorpusEntry e = buildCorpusEntry("deadpath");
    SynthResult s = synthesize(e.threads);
    EXPECT_EQ(s.fences.size(), 2u);
    ASSERT_FALSE(s.pairs.empty());

    MinimizeResult m = minimize(s, e.minimizeOptions());
    EXPECT_EQ(m.kept, 0u);
    EXPECT_EQ(m.dropped, 2u);
    EXPECT_TRUE(m.finalPlacementPassed);
    ASSERT_EQ(m.decisions.size(), 2u);
    for (const MinimizeDecision &d : m.decisions)
        EXPECT_EQ(d.action, MinimizeDecision::Action::Dropped);
    // Empty placement: the outputs alias the unfenced inputs.
    for (size_t t = 0; t < e.threads.size(); t++) {
        EXPECT_TRUE(m.insertions[t].empty());
        EXPECT_EQ(m.fenced[t].get(), e.threads[t].get());
    }
}

TEST(Minimize, KeepDecisionsCarryConvictionEvidence)
{
    CorpusEntry e = buildCorpusEntry("sb");
    MinimizeResult m =
        minimize(synthesize(e.threads), e.minimizeOptions());
    ASSERT_EQ(m.decisions.size(), 2u);
    for (const MinimizeDecision &d : m.decisions) {
        ASSERT_EQ(d.action, MinimizeDecision::Action::Kept);
        // The convicting run is recorded: which design, which seed,
        // and what the checker (or invariant/watchdog) said.
        EXPECT_FALSE(d.evidence.empty());
        EXPECT_GT(d.evidenceSeed, 0u);
    }
    EXPECT_GT(m.runs, 0u);
    EXPECT_TRUE(m.finalPlacementPassed);
}

TEST(Minimize, WeakeningRevertsOnConviction)
{
    // sb thread 1 carries the Noncritical (strong-flavor) fence. The
    // weakening pass flips it to Critical and re-runs the matrix;
    // under WS+ two weak fences in one group genuinely break, so the
    // flip must be reverted, with evidence.
    CorpusEntry e = buildCorpusEntry("sb");
    MinimizeOptions opt = e.minimizeOptions();
    opt.tryWeaken = true;
    MinimizeResult m = minimize(synthesize(e.threads), opt);
    EXPECT_EQ(m.weakened, 0u);
    EXPECT_EQ(m.kept, 2u);

    bool tried = false;
    for (const MinimizeDecision &d : m.decisions) {
        if (!d.weakenTried)
            continue;
        tried = true;
        EXPECT_EQ(d.thread, 1u);
        EXPECT_TRUE(d.weakenReverted);
        EXPECT_FALSE(d.weakenEvidence.empty());
    }
    EXPECT_TRUE(tried);
    // The reverted placement still verifies.
    EXPECT_TRUE(m.finalPlacementPassed);
    EXPECT_EQ(m.insertions[1][0].role, FenceRole::Noncritical);
}
