/**
 * Unit tests for the Shasha–Snir-style critical-cycle enumerator
 * specialized for TSO: only plain store→load program-order pairs with
 * a conflicting return path through other threads are delays.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "analysis/cycles.hh"
#include "runtime/regs.hh"

using namespace asf;
using namespace asf::analysis;
using namespace asf::regs;
using asf::test::share;

namespace
{

constexpr int64_t X = 0x1000;
constexpr int64_t Y = 0x2000;
constexpr int64_t Z = 0x3000;

Cfg
storeThenLoad(const char *name, int64_t st_addr, int64_t ld_addr)
{
    Assembler a(name);
    a.li(a0, st_addr); // 0
    a.li(a1, ld_addr); // 1
    a.li(t0, 1);       // 2
    a.st(a0, 0, t0);   // 3
    a.ld(t1, a1, 0);   // 4
    a.halt();          // 5
    return Cfg(share(a.finish()));
}

} // namespace

TEST(AnalysisCycles, StoreBufferingYieldsOnePairPerThread)
{
    Cfg t0c = storeThenLoad("sb0", X, Y);
    Cfg t1c = storeThenLoad("sb1", Y, X);
    auto pairs = findDelayPairs({&t0c, &t1c});
    ASSERT_EQ(pairs.size(), 2u);
    for (const DelayPair &p : pairs) {
        EXPECT_EQ(p.storePc, 3u);
        EXPECT_EQ(p.loadPc, 4u);
        // Witness: S -po-> L -cf-> other thread ... -cf-> back to S.
        ASSERT_GE(p.witness.size(), 3u);
        EXPECT_EQ(p.witness[0].pc, p.storePc);
        EXPECT_EQ(p.witness[0].edgeToNext, "po");
        EXPECT_EQ(p.witness[1].pc, p.loadPc);
        EXPECT_EQ(p.witness.back().edgeToNext, "cf");
        for (size_t i = 2; i < p.witness.size(); i++)
            EXPECT_NE(p.witness[i].thread, p.thread);
    }
    EXPECT_NE(pairs[0].thread, pairs[1].thread);
}

TEST(AnalysisCycles, MessagePassingIsDelayFree)
{
    // t0: st x; st flag.  t1: ld flag; ld x.  No store→load edge in
    // either thread, so TSO needs no fences.
    Assembler w("mp_w");
    w.li(a0, X);
    w.li(a1, Y);
    w.li(t0, 1);
    w.st(a0, 0, t0);
    w.st(a1, 0, t0);
    w.halt();
    Assembler r("mp_r");
    r.li(a0, Y);
    r.li(a1, X);
    r.ld(t0, a0, 0);
    r.ld(t1, a1, 0);
    r.halt();
    Cfg t0c(share(w.finish())), t1c(share(r.finish()));
    EXPECT_TRUE(findDelayPairs({&t0c, &t1c}).empty());
}

TEST(AnalysisCycles, SameAddressPairExcluded)
{
    // st x; ld x re-reads its own store: TSO forwards it, never a
    // delay (Shasha–Snir minimality: cycle nodes touch two words).
    Cfg t0c = storeThenLoad("same0", X, X);
    Cfg t1c = storeThenLoad("same1", X, X);
    EXPECT_TRUE(findDelayPairs({&t0c, &t1c}).empty());
}

TEST(AnalysisCycles, AtomicsAreNotDelayEndpoints)
{
    // xchg already carries full-fence semantics; its store half must
    // not seed a delay pair.
    Assembler a("atomic");
    a.li(a0, X);
    a.li(a1, Y);
    a.li(t0, 1);
    a.xchg(t1, a0, 0, t0); // atomic store to x
    a.ld(t2, a1, 0);       // plain load of y
    a.halt();
    Cfg t0c(share(a.finish()));
    Cfg t1c = storeThenLoad("other", Y, X);
    auto pairs = findDelayPairs({&t0c, &t1c});
    // Only the plain-store thread contributes a pair.
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].thread, 1u);
}

TEST(AnalysisCycles, NoReturnPathNoPair)
{
    // The other thread touches a disjoint location: no conflict edges
    // close a cycle, so the store→load edge is harmless.
    Cfg t0c = storeThenLoad("solo", X, Y);
    Cfg t1c = storeThenLoad("bystander", Z, Z + 8);
    EXPECT_TRUE(findDelayPairs({&t0c, &t1c}).empty());
}

TEST(AnalysisCycles, ExistingFencesDoNotHideDelays)
{
    // The enumerator reports the full delay set; coverage by existing
    // fences is the synthesizer's precovered classification, not a
    // reason to omit the pair.
    Assembler a("fenced");
    a.li(a0, X);
    a.li(a1, Y);
    a.li(t0, 1);
    a.st(a0, 0, t0);
    a.fence(FenceRole::Critical);
    a.ld(t1, a1, 0);
    a.halt();
    Cfg t0c(share(a.finish()));
    Cfg t1c = storeThenLoad("peer", Y, X);
    EXPECT_EQ(findDelayPairs({&t0c, &t1c}).size(), 2u);
}
