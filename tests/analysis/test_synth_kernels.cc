/**
 * End-to-end synthesis over the runtime kernels (dekker, bakery,
 * tlrw, deque): the unfenced variants go through the full
 * synthesize→minimize pipeline; the result must never need more
 * fences than the hand placement, and the final placement must pass
 * the checker's full (design x seed) matrix. A mutation pass then
 * shows the kept fences are each individually load-bearing: removing
 * any one of them convicts some run.
 *
 * The expected pair/fence counts pin the behavior of the analysis on
 * this (deterministic) corpus; a change here means the analysis — or
 * a kernel — changed, and the numbers should be re-derived with
 * `asf_fence_synth --kit NAME`, not loosened.
 */

#include <gtest/gtest.h>

#include "../helpers.hh"
#include "analysis/corpus.hh"
#include "check/batch.hh"
#include "fence/fence_kind.hh"
#include "prog/rewrite.hh"

using namespace asf;
using namespace asf::analysis;
using asf::test::share;

namespace
{

struct KernelOutcome
{
    CorpusEntry entry;
    SynthResult synth;
    MinimizeResult min;
};

KernelOutcome
runPipeline(const std::string &kit)
{
    KernelOutcome o;
    o.entry = buildCorpusEntry(kit);
    o.synth = synthesize(o.entry.threads);
    o.min = minimize(o.synth, o.entry.minimizeOptions());
    return o;
}

size_t
finalFenceCount(const MinimizeResult &m)
{
    size_t n = 0;
    for (const auto &ins : m.insertions)
        n += ins.size();
    return n;
}

/**
 * Does removing insertions[thread][idx] from the minimized placement
 * convict some run of the (all designs x seeds {1,2}) matrix?
 */
bool
mutationConvicts(const CorpusEntry &e, const MinimizeResult &m,
                 size_t thread, size_t idx)
{
    std::vector<std::shared_ptr<const Program>> progs = e.threads;
    for (size_t t = 0; t < e.threads.size(); t++) {
        std::vector<FenceInsertion> ins = m.insertions[t];
        if (t == thread)
            ins.erase(ins.begin() + idx);
        if (!ins.empty())
            progs[t] = share(insertFences(*e.threads[t], std::move(ins)));
    }
    for (FenceDesign d : allFenceDesigns) {
        for (uint64_t seed : {uint64_t(1), uint64_t(2)}) {
            check::BatchRunSpec spec;
            spec.programs = progs;
            spec.design = d;
            spec.systemSeed = seed;
            spec.maxCycles = e.maxCycles;
            spec.requireSc =
                e.property == MinimizeProperty::ScEquivalence;
            spec.setup = e.setup;
            spec.invariant = e.invariant;
            if (check::runCheckedExecution(spec).convicted())
                return true;
        }
    }
    return false;
}

} // namespace

TEST(SynthKernels, DekkerIsDynamicallyFenceFree)
{
    // Dekker's flag loads always take full miss round trips in this
    // simulator, so the racy window never aligns: no run ever
    // misbehaves unfenced, and the minimizer prunes all 12 statically
    // required fences. Maximal static-vs-dynamic gap.
    KernelOutcome o = runPipeline("dekker");
    EXPECT_EQ(o.synth.pairs.size(), 42u);
    EXPECT_EQ(o.synth.fences.size(), 12u);
    EXPECT_EQ(o.min.kept, 0u);
    EXPECT_EQ(o.min.dropped, 12u);
    EXPECT_TRUE(o.min.finalPlacementPassed);
    EXPECT_LE(finalFenceCount(o.min), o.entry.handFenceCount());
}

TEST(SynthKernels, BakeryKeepsOneLoadBearingFence)
{
    KernelOutcome o = runPipeline("bakery");
    EXPECT_EQ(o.synth.pairs.size(), 38u);
    EXPECT_EQ(o.synth.fences.size(), 4u);
    EXPECT_EQ(o.min.kept, 1u);
    EXPECT_EQ(o.min.dropped, 3u);
    EXPECT_TRUE(o.min.finalPlacementPassed);
    // Strictly improves on the 4 hand fences.
    EXPECT_LT(finalFenceCount(o.min), o.entry.handFenceCount());

    // Mutation: the one kept fence must be individually load-bearing.
    for (size_t t = 0; t < o.min.insertions.size(); t++)
        for (size_t i = 0; i < o.min.insertions[t].size(); i++)
            EXPECT_TRUE(mutationConvicts(o.entry, o.min, t, i))
                << "thread " << t << " fence " << i;
}

TEST(SynthKernels, TlrwAtomicsPrecoverMostDelays)
{
    // TLRW's CAS/XCHG already order most of its critical cycles; the
    // few remaining statically required fences have no dynamic
    // justification and are all pruned.
    KernelOutcome o = runPipeline("tlrw");
    EXPECT_EQ(o.synth.pairs.size(), 21u);
    EXPECT_EQ(o.synth.precovered.size(), 9u);
    EXPECT_EQ(o.synth.fences.size(), 4u);
    EXPECT_EQ(o.min.kept, 0u);
    EXPECT_EQ(o.min.dropped, 4u);
    EXPECT_TRUE(o.min.finalPlacementPassed);
    EXPECT_LE(finalFenceCount(o.min), o.entry.handFenceCount());
}

TEST(SynthKernels, DequeKeepsTwoAndSurvivesMutation)
{
    KernelOutcome o = runPipeline("deque");
    EXPECT_EQ(o.synth.pairs.size(), 42u);
    EXPECT_EQ(o.synth.precovered.size(), 17u);
    EXPECT_EQ(o.synth.fences.size(), 6u);
    EXPECT_EQ(o.min.kept, 2u);
    EXPECT_EQ(o.min.dropped, 4u);
    EXPECT_TRUE(o.min.finalPlacementPassed);
    // Strictly improves on the 3 hand fences.
    EXPECT_LT(finalFenceCount(o.min), o.entry.handFenceCount());

    // Every kept fence is individually load-bearing: dropping either
    // one makes some run lose tasks (invariant) or livelock.
    for (size_t t = 0; t < o.min.insertions.size(); t++)
        for (size_t i = 0; i < o.min.insertions[t].size(); i++)
            EXPECT_TRUE(mutationConvicts(o.entry, o.min, t, i))
                << "thread " << t << " fence " << i;
}
