/**
 * @file
 * asf_sim - command-line front end for the simulator.
 *
 * Runs any built-in workload under any fence design and prints the
 * cycle breakdown, guest progress counters, and fence characterization.
 *
 *   asf_sim --workload ustm:Hash --design W+ --cores 8 --cycles 300000
 *   asf_sim --workload cilk:heat --design WS+ --stats
 *   asf_sim --workload stamp:intruder --design Wee --csv
 *   asf_sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/corpus.hh"
#include "harness/experiment.hh"
#include "harness/heartbeat.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"

using namespace asf;
using namespace asf::harness;
using namespace asf::workloads;

namespace
{

struct Options
{
    std::string workload = "ustm:Hash";
    FenceDesign design = FenceDesign::SPlus;
    unsigned cores = 8;
    Tick cycles = 300'000; ///< budget (throughput) or cap (completion)
    bool allDesigns = false;
    unsigned jobs = 1; ///< host worker threads for --all-designs
    bool csv = false;
    bool dumpStats = false;
    std::string statsJson; ///< --stats-json path ("" = off)
    std::string trace;     ///< --trace path ("" = off)
    std::string fenceProfile; ///< --fence-profile JSONL path ("" = off)
    std::string obsDir;    ///< --obs-dir: root for relative paths above
    std::string heartbeat; ///< --heartbeat JSONL path ("" = off)
    Tick statsInterval = 0; ///< --stats-interval N cycles (0 = off)
    Tick watchdogCycles = 1'000'000; ///< livelock watchdog (0 = off)
    std::string synthKit;  ///< --synth kit name ("" = off)
    bool noMinimize = false; ///< --no-minimize: run the raw placement
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: asf_sim [options]\n"
        "  --workload GROUP:NAME   cilk:<app> | ustm:<bench> | "
        "stamp:<app>   (default ustm:Hash)\n"
        "  --design D              S+ | WS+ | SW+ | W+ | Wee "
        "(default S+)\n"
        "  --all-designs           run every design and compare\n"
        "  --cores N               number of cores (default 8)\n"
        "  --cycles N              cycle budget (default 300000)\n"
        "  --jobs N                host threads for --all-designs "
        "(default 1)\n"
        "  --no-fast-forward       tick every idle cycle (A/B check; "
        "results are identical)\n"
        "  --no-direct-exec        disable batched direct execution "
        "(A/B check; results are identical)\n"
        "  --stats                 dump per-core statistic counters\n"
        "  --stats-json PATH       write the full stats report "
        "(schemaVersion 4 JSON)\n"
        "  --stats-interval N      sample the contention counters every "
        "N cycles into a\n"
        "                          `timeline` block of the stats JSON "
        "(and the trace)\n"
        "  --trace PATH            write a Chrome trace_event JSON "
        "(chrome://tracing, Perfetto)\n"
        "  --fence-profile PATH    dump raw per-fence lifecycle records "
        "(JSON lines)\n"
        "  --obs-dir DIR           resolve relative observability paths "
        "(--stats-json,\n"
        "                          --trace, --fence-profile, "
        "--heartbeat) under DIR\n"
        "  --heartbeat PATH        live sweep telemetry JSONL for "
        "--all-designs\n"
        "                          (tools/sweep_status.py renders it)\n"
        "  --check                 record the execution and verify it "
        "against the TSO +\n"
        "                          fence-group axioms (verdict in the "
        "stats JSON)\n"
        "  --watchdog-cycles N     livelock watchdog window (default "
        "1000000; 0 = off)\n"
        "  --synth KIT             synthesize fences for a corpus kit "
        "(overrides --workload;\n"
        "                          asf_fence_synth --list names them), "
        "then run + check it\n"
        "  --no-minimize           with --synth, skip checker-guided "
        "minimization\n"
        "  --csv                   machine-readable output\n"
        "  --list                  list available workloads\n");
    std::exit(code);
}

void
listWorkloads()
{
    std::printf("cilk: ");
    for (const auto &a : cilkApps())
        std::printf("%s ", a.name.c_str());
    std::printf("\nustm: ");
    for (const auto &b : ustmBenches())
        std::printf("%s ", b.name.c_str());
    std::printf("\nstamp: ");
    for (const auto &a : stampApps())
        std::printf("%s ", a.bench.name.c_str());
    std::printf("\nsynth: ");
    for (const auto &n : analysis::corpusNames())
        std::printf("%s ", n.c_str());
    std::printf("\n");
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        // "--flag=VALUE" form; returns nullptr when argv[i] is not it.
        auto eq_form = [&](const char *flag) -> const char * {
            size_t n = std::strlen(flag);
            if (!std::strncmp(argv[i], flag, n) && argv[i][n] == '=')
                return argv[i] + n + 1;
            return nullptr;
        };
        if (!std::strcmp(argv[i], "--workload"))
            opt.workload = need("--workload");
        else if (!std::strcmp(argv[i], "--design"))
            opt.design = parseFenceDesign(need("--design"));
        else if (!std::strcmp(argv[i], "--all-designs"))
            opt.allDesigns = true;
        else if (!std::strcmp(argv[i], "--cores"))
            opt.cores = unsigned(std::atoi(need("--cores")));
        else if (!std::strcmp(argv[i], "--cycles"))
            opt.cycles = Tick(std::atoll(need("--cycles")));
        else if (!std::strcmp(argv[i], "--jobs"))
            opt.jobs = unsigned(std::atoi(need("--jobs")));
        else if (const char *v = eq_form("--jobs"))
            opt.jobs = unsigned(std::atoi(v));
        else if (!std::strcmp(argv[i], "--no-fast-forward"))
            setFastForwardEnabled(false);
        else if (!std::strcmp(argv[i], "--no-direct-exec"))
            setDirectExecEnabled(false);
        else if (!std::strcmp(argv[i], "--check"))
            setCheckExecutionEnabled(true);
        else if (!std::strcmp(argv[i], "--stats"))
            opt.dumpStats = true;
        else if (!std::strcmp(argv[i], "--stats-json"))
            opt.statsJson = need("--stats-json");
        else if (const char *v = eq_form("--stats-json"))
            opt.statsJson = v;
        else if (!std::strcmp(argv[i], "--trace"))
            opt.trace = need("--trace");
        else if (const char *v = eq_form("--trace"))
            opt.trace = v;
        else if (!std::strcmp(argv[i], "--fence-profile"))
            opt.fenceProfile = need("--fence-profile");
        else if (const char *v = eq_form("--fence-profile"))
            opt.fenceProfile = v;
        else if (!std::strcmp(argv[i], "--obs-dir"))
            opt.obsDir = need("--obs-dir");
        else if (const char *v = eq_form("--obs-dir"))
            opt.obsDir = v;
        else if (!std::strcmp(argv[i], "--heartbeat"))
            opt.heartbeat = need("--heartbeat");
        else if (const char *v = eq_form("--heartbeat"))
            opt.heartbeat = v;
        else if (!std::strcmp(argv[i], "--stats-interval"))
            opt.statsInterval =
                Tick(std::atoll(need("--stats-interval")));
        else if (const char *v = eq_form("--stats-interval"))
            opt.statsInterval = Tick(std::atoll(v));
        else if (!std::strcmp(argv[i], "--watchdog-cycles"))
            opt.watchdogCycles =
                Tick(std::atoll(need("--watchdog-cycles")));
        else if (const char *v = eq_form("--watchdog-cycles"))
            opt.watchdogCycles = Tick(std::atoll(v));
        else if (!std::strcmp(argv[i], "--synth"))
            opt.synthKit = need("--synth");
        else if (const char *v = eq_form("--synth"))
            opt.synthKit = v;
        else if (!std::strcmp(argv[i], "--no-minimize"))
            opt.noMinimize = true;
        else if (!std::strcmp(argv[i], "--csv"))
            opt.csv = true;
        else if (!std::strcmp(argv[i], "--list")) {
            listWorkloads();
            std::exit(0);
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(1);
        }
    }
    return opt;
}

ExperimentResult
runOne(const Options &opt, FenceDesign design)
{
    auto colon = opt.workload.find(':');
    std::string group = opt.workload.substr(0, colon);
    std::string name =
        colon == std::string::npos ? "" : opt.workload.substr(colon + 1);
    std::ostream *stats = opt.dumpStats ? &std::cerr : nullptr;

    if (!opt.synthKit.empty())
        return runSynthExperiment(opt.synthKit, design, !opt.noMinimize,
                                  0, stats);
    if (group == "cilk")
        return runCilkExperiment(cilkAppByName(name), design, opt.cores,
                                 opt.cycles * 100, stats);
    if (group == "ustm")
        return runUstmExperiment(ustmBenchByName(name), design, opt.cores,
                                 opt.cycles, stats);
    if (group == "stamp")
        return runStampExperiment(stampAppByName(name), design, opt.cores,
                                  opt.cycles * 100, stats);
    fatal("unknown workload group '%s' (try --list)", group.c_str());
}

void
printResult(const Options &opt, const ExperimentResult &r)
{
    if (opt.csv) {
        std::printf("%s,%s,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%s\n",
                    r.workload.c_str(), fenceDesignName(r.design),
                    r.cores, (unsigned long long)r.cycles,
                    (unsigned long long)r.breakdown.busy,
                    (unsigned long long)r.breakdown.otherStall,
                    (unsigned long long)r.breakdown.fenceStall,
                    (unsigned long long)r.commits,
                    (unsigned long long)r.tasks,
                    (unsigned long long)r.wPlusRecoveries,
                    r.valid ? "ok" : r.validationError.c_str());
        return;
    }
    std::printf("workload %s under %s on %u cores: %llu cycles (%s)\n",
                r.workload.c_str(), fenceDesignName(r.design), r.cores,
                (unsigned long long)r.cycles,
                r.valid ? "validated" : r.validationError.c_str());
    std::printf("  busy %5.1f%%   other stall %5.1f%%   fence stall "
                "%5.1f%%\n",
                100.0 * r.breakdown.busyFrac(),
                100.0 * r.breakdown.otherFrac(),
                100.0 * r.breakdown.fenceFrac());
    if (r.commits)
        std::printf("  %llu txns committed (%.2f per kcycle), %llu "
                    "aborts\n",
                    (unsigned long long)r.commits,
                    r.throughputTxnPerKcycle(),
                    (unsigned long long)r.aborts);
    if (r.tasks)
        std::printf("  %llu tasks executed, %llu stolen\n",
                    (unsigned long long)r.tasks,
                    (unsigned long long)r.steals);
    std::printf("  fences: %llu strong, %llu weak (%.2f lines/BS, %.4f "
                "bounced writes/wf, %llu W+ recoveries)\n",
                (unsigned long long)r.fencesStrong,
                (unsigned long long)r.fencesWeak, r.bsLinesPerWf,
                r.fencesWeak ? double(r.bouncedWrites) /
                                   double(r.fencesWeak)
                             : 0.0,
                (unsigned long long)r.wPlusRecoveries);
    std::printf("  network: %llu base bytes, +%.3f%% retry/GRT "
                "overhead\n",
                (unsigned long long)r.bytesBase, r.trafficOverheadPct());
    if (!r.checkVerdict.empty())
        std::printf("  execution check: %s\n", r.checkVerdict.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opt = parse(argc, argv);
    // Obs-dir first: the path setters below resolve against it.
    if (!opt.obsDir.empty())
        setObsDir(opt.obsDir);
    if (!opt.statsJson.empty())
        setStatsJsonPath(opt.statsJson);
    if (!opt.trace.empty())
        setTracePath(opt.trace);
    if (!opt.fenceProfile.empty())
        setFenceProfilePath(opt.fenceProfile);
    if (!opt.heartbeat.empty())
        setHeartbeatPath(opt.heartbeat);
    setWatchdogCyclesDefault(opt.watchdogCycles);
    setStatsIntervalDefault(opt.statsInterval);

    if (opt.csv)
        std::printf("workload,design,cores,cycles,busy,otherStall,"
                    "fenceStall,commits,tasks,recoveries,status\n");

    if (opt.allDesigns) {
        if (opt.dumpStats && opt.jobs > 1) {
            warn("--stats writes to stderr as it runs; using 1 job");
            opt.jobs = 1;
        }
        std::vector<SweepJob> sweep;
        for (FenceDesign d : allFenceDesigns)
            sweep.push_back([&opt, d] { return runOne(opt, d); });
        for (const ExperimentResult &r : runSweep(sweep, opt.jobs))
            printResult(opt, r);
    } else {
        printResult(opt, runOne(opt, opt.design));
    }
    return 0;
}
