#!/usr/bin/env python3
"""Pretty-print an execution-checker witness.

Accepts any of the JSON shapes the simulator emits and finds the
witness inside it:

  - a standalone witness document (check::writeWitnessJson),
  - a System stats document (its `check` block),
  - a stats-JSON log ({"schemaVersion":N,"runs":[...]}) — every run
    with a non-passing check block is printed.

Usage: witness_pp.py [--strict] [file.json]        (default: stdin)

The cycle is rendered one event per line with the relation that leads
to the next event; the last edge wraps back to the first line.

Exit status distinguishes "something is wrong" from "nothing was
proven": 1 only when a *violation* witness was printed; 0 otherwise —
including inconclusive verdicts (which are still printed, since an
undecidable run is worth a look but is not a counterexample). With
--strict, inconclusive verdicts also exit 1. Malformed input exits 2.
"""

import json
import sys


def die(msg):
    print(f"witness_pp: {msg}", file=sys.stderr)
    sys.exit(2)


def fmt_event(step):
    kind = step.get("kind", "?")
    where = f"t{step.get('thread', '?')} #{step.get('index', '?')}"
    if kind == "fence":
        what = f"fence {step.get('fenceKind', '?')}"
    else:
        what = f"{kind:5s} [{step.get('addr', 0):#x}]"
        if kind == "rmw" and "readValue" in step:
            what += (f" read {step['readValue']}"
                     f" wrote {step.get('value', '?')}")
        else:
            what += f" = {step.get('value', '?')}"
    return f"  [{where:>8s}] {what:40s} @ tick {step.get('tick', '?')}"


EDGE_LABEL = {
    "po": "program order",
    "fence": "program order through a fence",
    "rf": "reads-from",
    "co": "coherence order",
    "fr": "from-read (read before overwrite)",
}


def print_witness(w, run_label=""):
    verdict = w.get("verdict", "?")
    if run_label:
        print(f"== {run_label} ==")
    line = f"verdict: {verdict}"
    if w.get("axiom"):
        line += f"  (violated axiom: {w['axiom']})"
    print(line)
    if w.get("reason"):
        print(f"reason:  {w['reason']}")
    cycle = w.get("cycle", [])
    if not cycle:
        return
    print(f"cycle ({len(cycle)} events; the last edge wraps around):")
    for step in cycle:
        print(fmt_event(step))
        edge = step.get("edgeToNext")
        if edge:
            print(f"      --{edge}--> "
                  f"({EDGE_LABEL.get(edge, 'unknown relation')})")


def find_witnesses(doc):
    """Yield (label, witness) pairs from any accepted document shape."""
    if not isinstance(doc, dict):
        die("top-level JSON is not an object")
    if "verdict" in doc and "runs" not in doc and "check" not in doc:
        if doc["verdict"] != "pass":
            yield "", doc  # standalone witness
        return
    if "check" in doc:  # a System stats document
        blk = doc["check"]
        if blk.get("verdict") != "pass":
            yield "", blk.get("witness", {"verdict": blk.get("verdict")})
        return
    if "runs" in doc:  # a stats-JSON log
        for i, run in enumerate(doc["runs"]):
            blk = (run.get("system") or {}).get("check")
            if not blk or blk.get("verdict") == "pass":
                continue
            label = (f"run {i}: {run.get('workload', '?')} under "
                     f"{run.get('design', '?')}")
            yield label, blk.get("witness",
                                 {"verdict": blk.get("verdict")})
        return
    die("no witness, check block, or runs array found")


def main():
    argv = sys.argv[1:]
    strict = "--strict" in argv
    argv = [a for a in argv if a != "--strict"]
    if len(argv) > 1:
        die("usage: witness_pp.py [--strict] [file.json]")
    try:
        if argv:
            with open(argv[0]) as f:
                doc = json.load(f)
        else:
            doc = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as e:
        die(str(e))

    printed = 0
    violations = 0
    for label, witness in find_witnesses(doc):
        if printed:
            print()
        print_witness(witness, label)
        printed += 1
        verdict = witness.get("verdict")
        if verdict == "violation" or (strict and verdict != "pass"):
            violations += 1
    if not printed:
        print("all checks passed — no witness to print")
    sys.exit(1 if violations else 0)


if __name__ == "__main__":
    main()
