#!/usr/bin/env python3
"""Compare two simulator stats-JSON documents and flag regressions.

The simulator is deterministic, so the default tolerance is exact
equality; per-metric relative tolerances can be granted explicitly for
metrics that are allowed to move (e.g. host-side ones).

Subcommands:

  compare A B [--rtol metric=frac ...]
      Diff two stats-JSON logs (full logs or summaries). Runs are
      matched by (workload, design, cores); every numeric metric and
      breakdown bucket must match within its tolerance. Checked runs
      (schemaVersion 3) also compare the execution verdict and the
      `check` block's counters (the witness subtree is skipped; only
      its axiom name is compared). Exits 1 on any difference, listing
      each offending metric.

  summarize IN OUT
      Reduce a full stats-JSON log to the compact summary form used for
      committed goldens: per-run metrics and cycle breakdown, without
      the bulky per-component `system` documents.

  check-bench BIN GOLDEN [--jobs N] [--rtol metric=frac ...]
      Run `BIN --quick --jobs N --stats-json <tmp>`, summarize the
      result, and compare against the committed GOLDEN summary. This is
      the CTest regression gate for the bench binaries.

  check-perf BENCH [--min-speedup X] [--gate NAME] [--only SUBSTRING]
      Run `BENCH --quick --json-only` (the simcore microbench) and
      gate on its report: every workload's stats digest must be
      identical across all three execution modes, and the gated
      workload's direct-execution speedup must clear the threshold
      (default: busy_spin_8core at 2.0x — deliberately below the
      committed full-run numbers so host noise cannot flake CI, but
      high enough that a disabled or regressed burst path fails).
      This is the CTest perf smoke gate (tools.perf_smoke).

Used by CTest as tools.stats_diff_fig10; regenerate the golden with:
  build/bench/fig10_ustm_breakdown --quick --stats-json /tmp/f.json
  tools/stats_diff.py summarize /tmp/f.json tests/golden/fig10_quick_summary.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Metric leaves that depend on the host rather than simulated state:
# never compared.
HOST_ONLY = frozenset()


def load(path):
    with open(path) as f:
        return json.load(f)


def run_key(run):
    return (run.get("workload"), run.get("design"), run.get("cores"))


def summarize_check(blk):
    """The comparable slice of a schemaVersion-3 `check` block: the
    verdict, scChecked, and the recorder/axiom counters. The witness
    subtree is skipped — it carries tick-level event detail that the
    counters already summarize — except for the violated axiom name,
    which is pulled up as its own leaf."""
    out = {k: v for k, v in blk.items() if k != "witness"}
    axiom = (blk.get("witness") or {}).get("axiom")
    if axiom:
        out["axiom"] = axiom
    return out


# Timeline totals compared across runs. Each is a delta-sum, so two
# runs with identical cumulative stats must agree exactly even when
# their samples were cut at different boundaries.
TIMELINE_TOTAL_KEYS = ("busy", "idle", "instrRetired", "fencesIssued",
                       "bounces", "nacks", "grtDeposits", "grtClears",
                       "flits")


def summarize_timeline(tl):
    """The comparable slice of a schemaVersion-4 `timeline` block.
    Per-metric totals over the retained samples compare exactly; the
    sample *count* is kept separately because execution-mode jumps
    (fast-forward, direct-exec bursts) legitimately merge several
    interval boundaries into one sample — compare_docs grants it a
    built-in tolerance."""
    samples = tl.get("samples", [])
    totals = {k: sum(s.get(k, 0) for s in samples)
              for k in TIMELINE_TOTAL_KEYS}
    out = {"interval": tl.get("interval"), "samples": len(samples),
           "totals": totals}
    if samples:
        out["start"] = samples[0]["start"]
        out["end"] = samples[-1]["end"]
    return out


def summarize_run(run):
    out = {
        "workload": run.get("workload"),
        "design": run.get("design"),
        "cores": run.get("cores"),
        "cycles": run.get("cycles"),
        "valid": run.get("valid"),
        "metrics": run.get("metrics", {}),
        "breakdown": run.get("breakdown", {}),
    }
    # Checked runs (schemaVersion >= 3) carry an execution verdict;
    # keep it comparable. Unchecked runs omit both keys, so goldens
    # from unchecked sweeps are unaffected.
    if "checkVerdict" in run:
        out["checkVerdict"] = run["checkVerdict"]
    blk = (run.get("system") or {}).get("check")
    if blk and blk.get("enabled"):
        out["check"] = summarize_check(blk)
    elif "check" in run:  # already-summarized input (summary-vs-summary)
        out["check"] = run["check"]
    # Interval time-series (schemaVersion 4, --stats-interval runs
    # only): goldens from plain sweeps carry no timeline and stay
    # byte-identical.
    tl = (run.get("system") or {}).get("timeline")
    if tl is not None:
        out["timeline"] = summarize_timeline(tl)
    elif "timeline" in run:  # already-summarized input
        out["timeline"] = run["timeline"]
    return out


def summarize_doc(doc):
    return {
        "schemaVersion": doc.get("schemaVersion"),
        "runs": [summarize_run(r) for r in doc.get("runs", [])],
    }


def flatten(obj, prefix=""):
    """Flatten nested dicts to {"a.b.c": leaf}; lists are skipped."""
    out = {}
    for k, v in obj.items():
        path = f"{prefix}{k}"
        if isinstance(v, dict):
            out.update(flatten(v, path + "."))
        elif isinstance(v, (int, float, bool, str)) or v is None:
            out[path] = v
    return out


def parse_rtols(pairs):
    rtols = {}
    for p in pairs or []:
        if "=" not in p:
            sys.exit(f"bad --rtol '{p}': expected metric=fraction")
        name, frac = p.split("=", 1)
        rtols[name] = float(frac)
    return rtols


# Built-in tolerances (overridable with --rtol): interval sample counts
# may differ across execution modes because idle fast-forward and
# direct-exec bursts merge boundary crossings into one sample, while
# the timeline *totals* still compare exactly.
DEFAULT_RTOLS = {"timeline.samples": 0.5}


def metric_rtol(path, rtols):
    """Tolerance for a metric: match the full path or its last segment."""
    if path in rtols:
        return rtols[path]
    if path.rsplit(".", 1)[-1] in rtols:
        return rtols[path.rsplit(".", 1)[-1]]
    return DEFAULT_RTOLS.get(path, 0.0)


def compare_docs(a_doc, b_doc, rtols, a_name="A", b_name="B"):
    errors = []
    a_runs = {run_key(r): summarize_run(r) for r in a_doc.get("runs", [])}
    b_runs = {run_key(r): summarize_run(r) for r in b_doc.get("runs", [])}
    for key in a_runs.keys() - b_runs.keys():
        errors.append(f"run {key} only in {a_name}")
    for key in b_runs.keys() - a_runs.keys():
        errors.append(f"run {key} only in {b_name}")

    for key in sorted(a_runs.keys() & b_runs.keys(), key=str):
        fa = flatten(a_runs[key])
        fb = flatten(b_runs[key])
        ctx = "/".join(str(k) for k in key)
        for path in sorted(fa.keys() | fb.keys()):
            if path.rsplit(".", 1)[-1] in HOST_ONLY:
                continue
            if path not in fa or path not in fb:
                where = b_name if path not in fb else a_name
                errors.append(f"{ctx}: '{path}' missing in {where}")
                continue
            va, vb = fa[path], fb[path]
            if isinstance(va, bool) or isinstance(va, str) or va is None:
                if va != vb:
                    errors.append(f"{ctx}: '{path}' {va!r} != {vb!r}")
                continue
            tol = metric_rtol(path, rtols)
            bound = tol * max(abs(va), abs(vb))
            if abs(va - vb) > bound:
                detail = f" (rtol {tol})" if tol else ""
                errors.append(
                    f"{ctx}: '{path}' {va} != {vb}{detail}")
    return errors


def report(errors, what):
    if errors:
        print(f"FAIL: {what}: {len(errors)} difference(s):",
              file=sys.stderr)
        for e in errors[:50]:
            print(f"  {e}", file=sys.stderr)
        if len(errors) > 50:
            print(f"  ... and {len(errors) - 50} more", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {what}")


def cmd_compare(args):
    rtols = parse_rtols(args.rtol)
    errors = compare_docs(load(args.a), load(args.b), rtols,
                          args.a, args.b)
    report(errors, f"{args.a} vs {args.b}")


def cmd_summarize(args):
    summary = summarize_doc(load(args.input))
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"ok: wrote {len(summary['runs'])} run summaries to "
          f"{args.output}")


def cmd_check_bench(args):
    bench = Path(args.bench)
    if not bench.exists():
        sys.exit(f"no such binary: {bench}")
    golden = load(args.golden)
    rtols = parse_rtols(args.rtol)
    jobs = args.jobs or min(os.cpu_count() or 2, 8)
    with tempfile.TemporaryDirectory() as tmp:
        stats = Path(tmp) / "stats.json"
        cmd = [str(bench), "--quick", "--jobs", str(jobs),
               f"--stats-json={stats}"]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=1800)
        if proc.returncode != 0:
            sys.exit(f"FAIL: {bench.name} exited "
                     f"{proc.returncode}:\n{proc.stderr}")
        fresh = summarize_doc(load(stats))
    errors = compare_docs(golden, fresh, rtols, "golden", "fresh")
    report(errors, f"{bench.name} --quick vs {args.golden}")


BENCH_MODES = ("noFastForward", "fastForward", "directExec")


def check_perf_report(doc, min_speedup, gate, max_obs_overhead=10.0):
    """Gate a simcore-microbench report (schemaVersion 2 or 3): mode
    identity everywhere, direct-exec speedup on the gated workload,
    and (v3) the observatory wall-clock overhead bound. The overhead
    gate is looser than the committed target (<= 5%) to keep host
    noise from flaking CI while still catching a sampler that landed
    on a hot path."""
    errors = []
    version = doc.get("schemaVersion")
    if version not in (2, 3):
        errors.append(f"report schemaVersion {version!r}, "
                      f"expected 2 or 3")
        return errors
    if version >= 3:
        obs = doc.get("observatory")
        if not isinstance(obs, dict):
            errors.append("v3 report without an 'observatory' block")
        else:
            if obs.get("statsIdentical") is not True:
                errors.append("observatory: stats differ with the "
                              "observatory on")
            overhead = obs.get("overheadPct")
            if not isinstance(overhead, (int, float)):
                errors.append("observatory: missing overheadPct")
            elif overhead > max_obs_overhead:
                errors.append(
                    f"observatory overhead {overhead:.1f}% above the "
                    f"{max_obs_overhead:.1f}% gate")
    workloads = doc.get("workloads", [])
    if not workloads:
        errors.append("report contains no workloads")
    gated = 0
    for w in workloads:
        name = w.get("name", "?")
        if w.get("statsIdentical") is not True:
            errors.append(f"{name}: statsIdentical is not true")
        digests = []
        for mode in BENCH_MODES:
            run = w.get(mode)
            if not isinstance(run, dict) or "statsDigest" not in run:
                errors.append(f"{name}: mode '{mode}' missing "
                              f"statsDigest")
                continue
            digests.append(run["statsDigest"])
        if len(set(digests)) > 1:
            errors.append(f"{name}: stats digests differ across "
                          f"modes: {digests}")
        if gate in name:
            gated += 1
            speedup = w.get("speedupDirectExec", 0.0)
            if speedup < min_speedup:
                errors.append(
                    f"{name}: direct-exec speedup {speedup:.2f}x "
                    f"below the {min_speedup:.2f}x gate")
    if gated == 0:
        errors.append(f"no workload matched the gate '{gate}'")
    return errors


def cmd_check_perf(args):
    bench = Path(args.bench)
    if not bench.exists():
        sys.exit(f"no such binary: {bench}")
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        cmd = [str(bench), "--quick", "--json-only", "--out", str(out)]
        if args.only:
            cmd += ["--only", args.only]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=1800)
        # The bench itself refuses to write a report when any mode
        # diverges, so a non-zero exit already is an identity failure.
        if proc.returncode != 0:
            sys.exit(f"FAIL: {bench.name} exited "
                     f"{proc.returncode}:\n{proc.stderr}")
        doc = load(out)
    errors = check_perf_report(doc, args.min_speedup, args.gate,
                               args.max_obs_overhead)
    report(errors, f"{bench.name} perf smoke "
                   f"(gate {args.gate} >= {args.min_speedup:.2f}x)")


def main():
    top = argparse.ArgumentParser(description=__doc__)
    sub = top.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="diff two stats-JSON documents")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--rtol", action="append", metavar="METRIC=FRAC")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("summarize",
                       help="reduce a stats-JSON log to a golden summary")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("check-bench",
                       help="run a bench --quick and diff vs a golden")
    p.add_argument("bench")
    p.add_argument("golden")
    p.add_argument("--jobs", type=int, default=0)
    p.add_argument("--rtol", action="append", metavar="METRIC=FRAC")
    p.set_defaults(func=cmd_check_bench)

    p = sub.add_parser("check-perf",
                       help="run the simcore microbench and gate on "
                            "mode identity + direct-exec speedup")
    p.add_argument("bench")
    p.add_argument("--min-speedup", type=float, default=2.0)
    p.add_argument("--gate", default="busy_spin_8core")
    p.add_argument("--only", default="")
    p.add_argument("--max-obs-overhead", type=float, default=10.0,
                   help="max observatory wall-clock overhead %% "
                        "(v3 reports)")
    p.set_defaults(func=cmd_check_perf)

    args = top.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
