#!/usr/bin/env python3
"""Render a live sweep-heartbeat JSONL file as a status report.

A `--jobs N` campaign started with `--heartbeat PATH` appends JSONL
events as it runs (see src/harness/heartbeat.hh); this tool turns the
trail into a human answer to "is it stuck, and how long to go?":

    tools/sweep_status.py heartbeat.jsonl

Prints overall progress, the wall-clock ETA from the latest progress
line, the currently running jobs with their live simulated-cycle
counts, and any finished job that failed validation or tripped the
livelock watchdog. Exit status: 0 while healthy (running or complete),
1 when any finished job failed.
"""

import json
import sys
import time


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(path):
    events = []
    try:
        with open(path) as f:
            for i, line in enumerate(f):
                if not line.strip():
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    # A writer mid-append can leave a torn last line;
                    # anything earlier must parse.
                    if i + 1 < sum(1 for _ in open(path)):
                        fail(f"{path}:{i + 1}: bad JSON")
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not events:
        fail(f"{path}: no events")
    return events


def fmt_eta(seconds):
    if seconds is None:
        return "unknown"
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <heartbeat.jsonl>")
    events = load_events(sys.argv[1])

    start = next((e for e in events if e.get("event") == "sweep-start"),
                 None)
    end = next((e for e in reversed(events)
                if e.get("event") == "sweep-end"), None)
    progress = next((e for e in reversed(events)
                     if e.get("event") == "progress"), None)
    total = (start or {}).get("total", 0)

    labels = {}
    failures = []
    done = 0
    for e in events:
        if e.get("event") == "job-start":
            labels[e["job"]] = e.get("label", "?")
        elif e.get("event") == "job-end":
            done += 1
            if not e.get("valid", False):
                failures.append(e)

    if end:
        print(f"sweep complete: {end.get('done', done)}/{total} jobs "
              f"in {end.get('elapsedSeconds', 0.0):.1f}s")
    else:
        age = time.time() - events[-1].get("t", time.time())
        state = "running" if age < 30 else f"STALE ({age:.0f}s silent)"
        print(f"sweep {state}: {done}/{total} jobs done, "
              f"ETA {fmt_eta((progress or {}).get('etaSeconds'))}")
        for a in (progress or {}).get("active", []):
            label = a.get("label") or labels.get(a.get("job"), "?")
            print(f"  running job {a.get('job')}: {label} "
                  f"at {a.get('cycles', 0)} cycles "
                  f"[{a.get('configHash', '?')}]")

    for e in failures:
        label = labels.get(e.get("job"), "?")
        why = "watchdog" if e.get("watchdog") else "invalid"
        print(f"  FAILED job {e.get('job')} ({label}), {why}: "
              f"{e.get('status', '?')}")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
