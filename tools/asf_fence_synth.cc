/**
 * @file
 * asf_fence_synth - automatic asymmetric-fence synthesis front end.
 *
 * Takes an unfenced corpus kit, derives the TSO delay set by static
 * critical-cycle analysis, places fences by weighted greedy cover,
 * assigns asymmetric roles, then (by default) minimizes the placement
 * with the axiomatic checker in the loop and verifies the survivors
 * across every fence design.
 *
 *   asf_fence_synth --kit sb
 *   asf_fence_synth --kit dekker --json dekker.json --disasm
 *   asf_fence_synth --kit deque --profile fences.jsonl
 *   asf_fence_synth --list
 *
 * Exit status: 0 when the final placement passes the verification
 * matrix, 1 when it does not, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/corpus.hh"
#include "harness/report.hh"
#include "sim/logging.hh"

using namespace asf;
using namespace asf::analysis;

namespace
{

struct Options
{
    std::string kit;
    std::string json;    ///< placement + minimization report path
    std::string profile; ///< fence-profile JSONL for thread weights
    bool minimize = true;
    bool weaken = false; ///< also try Noncritical -> Critical flips
    bool disasm = false;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: asf_fence_synth --kit NAME [options]\n"
        "  --kit NAME        corpus kit to synthesize for (--list)\n"
        "  --list            list available kits\n"
        "  --json PATH       write the machine-readable placement +\n"
        "                    minimization report\n"
        "  --profile PATH    fence-profile JSONL (asf_sim "
        "--fence-profile);\n"
        "                    dynamic fence counts pick the critical "
        "thread\n"
        "  --no-minimize     keep the raw static placement\n"
        "  --weaken          also try flipping kept noncritical fences "
        "to the\n"
        "                    cheap critical flavor\n"
        "  --disasm          print the fenced programs\n");
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        auto eq_form = [&](const char *flag) -> const char * {
            size_t n = std::strlen(flag);
            if (!std::strncmp(argv[i], flag, n) && argv[i][n] == '=')
                return argv[i] + n + 1;
            return nullptr;
        };
        if (!std::strcmp(argv[i], "--kit"))
            opt.kit = need("--kit");
        else if (const char *v = eq_form("--kit"))
            opt.kit = v;
        else if (!std::strcmp(argv[i], "--json"))
            opt.json = need("--json");
        else if (const char *v = eq_form("--json"))
            opt.json = v;
        else if (!std::strcmp(argv[i], "--profile"))
            opt.profile = need("--profile");
        else if (const char *v = eq_form("--profile"))
            opt.profile = v;
        else if (!std::strcmp(argv[i], "--no-minimize"))
            opt.minimize = false;
        else if (!std::strcmp(argv[i], "--weaken"))
            opt.weaken = true;
        else if (!std::strcmp(argv[i], "--disasm"))
            opt.disasm = true;
        else if (!std::strcmp(argv[i], "--list")) {
            for (const std::string &n : corpusNames()) {
                CorpusEntry e = buildCorpusEntry(n);
                std::printf("%-10s %zu threads, %u hand fences - %s\n",
                            n.c_str(), e.threads.size(),
                            e.handFenceCount(),
                            e.description.c_str());
            }
            std::exit(0);
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(2);
        }
    }
    if (opt.kit.empty()) {
        std::fprintf(stderr, "--kit is required\n");
        usage(2);
    }
    return opt;
}

const char *
roleName(FenceRole r)
{
    return r == FenceRole::Critical ? "critical" : "noncritical";
}

/** Run the full (design x seed) matrix over a placement; true when no
 *  run convicts. Used for --no-minimize, where the minimizer's own
 *  final verification does not happen. */
bool
verifyPlacement(const CorpusEntry &entry,
                const std::vector<std::shared_ptr<const Program>> &progs,
                std::string &evidence)
{
    MinimizeOptions mo = entry.minimizeOptions();
    for (FenceDesign d : allFenceDesigns) {
        for (uint64_t seed : mo.seeds) {
            check::BatchRunSpec spec;
            spec.programs = progs;
            spec.design = d;
            spec.systemSeed = seed;
            spec.maxCycles = mo.maxCycles;
            spec.watchdogCycles = mo.watchdogCycles;
            spec.requireSc =
                entry.property == MinimizeProperty::ScEquivalence;
            spec.setup = entry.setup;
            spec.invariant = entry.invariant;
            check::BatchVerdict v = check::runCheckedExecution(spec);
            if (v.convicted()) {
                evidence = std::string(v.evidence()) + " under " +
                           fenceDesignName(d) + " seed " +
                           std::to_string(seed);
                return false;
            }
        }
    }
    return true;
}

void
printDisasm(const std::vector<std::shared_ptr<const Program>> &progs,
            const std::vector<std::vector<FenceInsertion>> &insertions)
{
    for (size_t t = 0; t < progs.size(); t++) {
        const Program &p = *progs[t];
        std::printf("thread %zu: %s\n", t, p.name.c_str());
        // Sorted insertion k lands at output pc beforePc + k.
        const auto &ins = insertions[t];
        size_t next = 0;
        for (uint64_t pc = 0; pc < p.size(); pc++) {
            bool synthesized =
                next < ins.size() && pc == ins[next].beforePc + next;
            if (synthesized)
                next++;
            std::printf("  %3llu  %-28s%s\n", (unsigned long long)pc,
                        p.at(pc).toString().c_str(),
                        synthesized ? "  ; synthesized" : "");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opt = parse(argc, argv);

    CorpusEntry entry = buildCorpusEntry(opt.kit);
    std::printf("kit %s: %zu threads, %u hand-placed fences\n",
                opt.kit.c_str(), entry.threads.size(),
                entry.handFenceCount());

    SynthOptions sopt;
    if (!opt.profile.empty())
        sopt.threadWeight = profileThreadWeights(
            opt.profile, unsigned(entry.threads.size()));

    SynthResult synth = synthesize(entry.threads, sopt);
    size_t covered = synth.pairs.size() - synth.precovered.size();
    std::printf("delay set: %zu pairs (%zu precovered by existing "
                "ordering points)\n",
                synth.pairs.size(), synth.precovered.size());
    std::printf("placement: %zu fences for %zu pairs, critical thread "
                "%u\n",
                synth.fences.size(), covered, synth.criticalThread);
    for (const PlacedFence &f : synth.fences)
        std::printf("  t%u before pc %llu  %-11s weight %g  (%s)\n",
                    f.thread, (unsigned long long)f.beforePc,
                    roleName(f.role), f.weight,
                    synth.input[f.thread]->at(f.beforePc)
                        .toString()
                        .c_str());

    bool verified;
    std::string evidence;
    MinimizeResult min;
    if (opt.minimize) {
        MinimizeOptions mo = entry.minimizeOptions();
        mo.tryWeaken = opt.weaken;
        min = minimize(synth, mo);
        unsigned final_count = 0;
        for (const auto &th : min.insertions)
            final_count += unsigned(th.size());
        std::printf("minimize: kept %u, dropped %u, weakened %u "
                    "(%u checked runs); final placement: %u fences\n",
                    min.kept, min.dropped, min.weakened, min.runs,
                    final_count);
        verified = min.finalPlacementPassed;
        if (!verified)
            evidence = "minimizer's final verification matrix convicted";
    } else {
        verified = verifyPlacement(entry, synth.fenced, evidence);
    }
    std::printf("verification (5 designs x 2 seeds): %s%s%s\n",
                verified ? "pass" : "FAIL",
                evidence.empty() ? "" : " - ",
                evidence.c_str());

    if (opt.disasm)
        printDisasm(opt.minimize ? min.fenced : synth.fenced,
                    opt.minimize ? min.insertions : synth.insertions);

    if (!opt.json.empty()) {
        std::ostringstream placement, minimized;
        writePlacementJson(synth, placement);
        if (opt.minimize)
            writeMinimizeJson(min, minimized);
        std::ofstream f(opt.json);
        if (!f)
            fatal("cannot write '%s'", opt.json.c_str());
        harness::JsonWriter w(f);
        w.beginObject();
        w.field("schemaVersion", 1);
        w.field("kit", opt.kit);
        w.field("description", entry.description);
        w.field("handFences", entry.handFenceCount());
        w.field("verified", verified);
        w.key("placement").raw(placement.str());
        if (opt.minimize)
            w.key("minimize").raw(minimized.str());
        w.endObject();
        f << '\n';
    }
    return verified ? 0 : 1;
}
