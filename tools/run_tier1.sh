#!/bin/sh
# Tier-1 gate, one command: configure + build, then the full ctest
# suite (which includes the fence-synthesis `synth`-labelled gates).
#
# Usage: tools/run_tier1.sh [jobs]     (default: nproc, capped at 8)
#
# Exits non-zero on the first failing stage; pass extra ctest filters
# via CTEST_ARGS, e.g. CTEST_ARGS="-L synth" tools/run_tier1.sh.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 4)}
[ "$jobs" -gt 8 ] && jobs=8

cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j"$jobs"
cd "$repo/build"
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
ctest --output-on-failure -j"$jobs" ${CTEST_ARGS:-}
