#!/usr/bin/env python3
"""Validate the simulator's machine-readable observability output.

Runs asf_sim on a small workload with --stats-json and --trace, then
checks that the emitted stats report conforms to the documented schema
(see README.md "Observability") and that the trace file is well-formed
Chrome trace_event JSON. Registered in CTest so the schema cannot drift
silently.

Documents at schemaVersion 1 (pre-CPI-stack) are still accepted; the
version-2 additions (cpiStack, fenceProfile, watchdog, the decomposed
stall scalars) are required only when a document declares version 2 or
later, and the version-3 addition (the `check` execution-verification
block) only when version 3 declares it — a version-3 document omits it
entirely when checking was off, so v1/v2 consumers keep working.

Version 4 adds the contention observatory: a `hotLines` per-line
attribution block (required at v4 — tracking defaults on) and a
`timeline` interval time-series block (present only when the run used
--stats-interval). The driver exercises three single-run shapes (plain,
--check, --stats-interval under --obs-dir) plus one --all-designs sweep
with --heartbeat, whose JSONL telemetry is validated too.

With --bench the script instead validates a simcore-microbench host
performance report (BENCH_simcore.json, schemaVersion 2 or 3):
per-workload run documents for all three execution modes (cycle-exact,
fast-forward, direct-exec), the speedup fields, and the cross-mode
identity claims (equal stats digests, statsIdentical true, and no
batched cycles reported by the modes that cannot batch). Version-3
reports additionally carry the observatory overhead measurement.

Usage: check_stats_schema.py <path-to-asf_sim>
       check_stats_schema.py --bench <path-to-BENCH_simcore.json>
       check_stats_schema.py --heartbeat <path-to-heartbeat.jsonl>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def check_number(obj, key, ctx):
    expect(key in obj, f"{ctx}: missing key '{key}'")
    expect(isinstance(obj[key], (int, float)) and not isinstance(obj[key], bool),
           f"{ctx}: '{key}' is {type(obj[key]).__name__}, expected a number")


def check_histogram(name, h, ctx):
    for key in ("count", "mean", "max", "p50", "p90", "p99",
                "bucketWidth", "overflow"):
        check_number(h, key, f"{ctx} histogram '{name}'")
    expect(isinstance(h.get("buckets"), list),
           f"{ctx} histogram '{name}': 'buckets' is not an array")
    in_buckets = sum(h["buckets"])
    expect(in_buckets + h["overflow"] == h["count"],
           f"{ctx} histogram '{name}': buckets ({in_buckets}) + overflow "
           f"({h['overflow']}) != count ({h['count']})")
    expect(0 <= h["p50"] <= h["p90"] <= h["p99"],
           f"{ctx} histogram '{name}': percentiles not monotone")


# CPI-stack bucket JSON keys, fence category then other category
# (mirrors src/cpu/cpi_stack.cc).
FENCE_BUCKETS = ("waitForward", "heldStrong", "heldBsFull", "grtWait",
                 "remotePs", "recovering", "bounceRetry", "serialize")
OTHER_BUCKETS = ("l1Miss", "squashRefetch", "rmwDrain", "nocQueue",
                 "wbFull")
# The matching per-core scalar stat names.
STALL_SCALARS = ("stallWaitForward", "stallHeldStrong", "stallHeldBsFull",
                 "stallGrtWait", "stallRemotePs", "stallRecovering",
                 "stallBounceRetry", "stallFenceSerialize", "stallL1Miss",
                 "stallSquashRefetch", "stallRmwDrain", "stallNocQueue",
                 "stallWbFull")


def check_cpi_stack(stack):
    check_number(stack, "busy", "cpiStack")
    check_number(stack, "idle", "cpiStack")
    check_number(stack, "active", "cpiStack")
    for cat, keys in (("fence", FENCE_BUCKETS), ("other", OTHER_BUCKETS)):
        obj = stack.get(cat)
        expect(isinstance(obj, dict), f"cpiStack: missing '{cat}'")
        for key in keys:
            check_number(obj, key, f"cpiStack.{cat}")
        check_number(obj, "total", f"cpiStack.{cat}")
        expect(sum(obj[k] for k in keys) == obj["total"],
               f"cpiStack.{cat}: buckets do not sum to total")
    expect(stack["busy"] + stack["fence"]["total"] +
           stack["other"]["total"] == stack["active"],
           "cpiStack: busy + stalls != active")


def check_profile_histogram(name, h):
    expect(isinstance(h, dict), f"fenceProfile: '{name}' not an object")
    for key in ("count", "mean", "max", "p50", "p90", "p99"):
        check_number(h, key, f"fenceProfile.{name}")


def check_fence_profile(fp):
    for key in ("issued", "completed", "instant", "active",
                "squashedFences", "strong", "weak", "wee", "demotions",
                "recoveries"):
        check_number(fp, key, "fenceProfile")
    expect(fp["issued"] == fp["completed"] + fp["instant"] +
           fp["active"] + fp["squashedFences"],
           "fenceProfile: issued != completed + instant + active + "
           "squashed")
    for name in ("latency", "grtWait", "bounceRounds", "bsInserts"):
        check_profile_histogram(name, fp.get(name))
    slowest = fp.get("slowest")
    expect(isinstance(slowest, list), "fenceProfile: missing 'slowest'")
    for r in slowest:
        for key in ("id", "core", "issuedAt", "completedAt", "latency",
                    "psLines", "bsInserts", "bounces", "storeNacks",
                    "remotePsHolds", "recoveries", "squashedStores"):
            check_number(r, key, "fenceProfile slowest record")
        expect(isinstance(r.get("kind"), str),
               "fenceProfile slowest record: missing 'kind'")


# Per-line event attribution keys (mirrors hotEventName in
# src/mem/hotspot.cc); all optional per line, emitted only when nonzero.
HOT_EVENT_KEYS = ("bounces", "nackX", "nackCO", "sharerProbes",
                  "bsConflicts", "grtDeposits", "grtBlocks", "l2Misses")


def check_hot_lines(hl):
    for key in ("capacity", "tracked", "totalRecorded", "evictions"):
        check_number(hl, key, "hotLines")
    expect(hl["capacity"] > 0, "hotLines: zero capacity")
    expect(hl["tracked"] <= hl["capacity"],
           "hotLines: tracked exceeds capacity")
    lines = hl.get("lines")
    expect(isinstance(lines, list), "hotLines: 'lines' is not an array")
    expect(len(lines) == hl["tracked"],
           f"hotLines: {len(lines)} lines, 'tracked' says "
           f"{hl['tracked']}")
    prev = None
    for e in lines:
        check_number(e, "line", "hotLines entry")
        check_number(e, "count", "hotLines entry")
        check_number(e, "error", "hotLines entry")
        expect(e["error"] <= e["count"],
               f"hotLines line {e['line']:#x}: error exceeds count")
        attributed = sum(e.get(k, 0) for k in HOT_EVENT_KEYS)
        # Space-Saving inherits the evicted minimum into 'count', so
        # attributed events can undershoot count by at most 'error'.
        expect(attributed + e["error"] >= e["count"],
               f"hotLines line {e['line']:#x}: events "
               f"({attributed}) + error ({e['error']}) < count "
               f"({e['count']})")
        if "label" in e:
            expect(isinstance(e["label"], str) and e["label"],
                   f"hotLines line {e['line']:#x}: empty label")
        if prev is not None:
            expect(e["count"] <= prev,
                   "hotLines: lines not sorted by count descending")
        prev = e["count"]


def check_timeline(tl, cycles):
    check_number(tl, "interval", "timeline")
    expect(tl["interval"] > 0, "timeline: zero interval")
    check_number(tl, "ringCapacity", "timeline")
    check_number(tl, "droppedSamples", "timeline")
    samples = tl.get("samples")
    expect(isinstance(samples, list), "timeline: missing 'samples'")
    # The still-open tail interval rides along beyond the ring.
    expect(len(samples) <= tl["ringCapacity"] + 1,
           "timeline: more samples than the ring holds")
    prev_end = None
    for s in samples:
        ctx = "timeline sample"
        for key in ("start", "end", "busy", "idle", "instrRetired",
                    "fencesIssued", "bounces", "nacks", "grtDeposits",
                    "grtClears", "flits"):
            check_number(s, key, ctx)
        expect(s["start"] < s["end"], f"{ctx}: empty interval "
               f"[{s['start']}, {s['end']}]")
        expect(s["end"] <= cycles,
               f"{ctx}: end {s['end']} beyond the run ({cycles})")
        if prev_end is not None:
            expect(s["start"] == prev_end,
                   f"{ctx}: gap/overlap at {s['start']} (previous "
                   f"sample ended at {prev_end})")
        prev_end = s["end"]
        expect(isinstance(s.get("stall"), dict),
               f"{ctx}: missing 'stall'")
        links = s.get("links")
        expect(isinstance(links, list), f"{ctx}: missing 'links'")
        total = 0
        for pair in links:
            expect(isinstance(pair, list) and len(pair) == 2,
                   f"{ctx}: link delta is not an [index, flits] pair")
            expect(pair[1] > 0, f"{ctx}: zero link delta emitted")
            total += pair[1]
        expect(total == s["flits"],
               f"{ctx}: link deltas sum to {total}, 'flits' says "
               f"{s['flits']}")


def check_group(g):
    ctx = f"group '{g.get('name', '?')}'"
    expect(isinstance(g.get("name"), str), f"{ctx}: missing name")
    for section in ("scalars", "averages", "histograms"):
        expect(isinstance(g.get(section), dict),
               f"{ctx}: '{section}' is not an object")
    for name, v in g["scalars"].items():
        expect(isinstance(v, int) and v >= 0,
               f"{ctx} scalar '{name}': not a non-negative integer")
    for name, a in g["averages"].items():
        for key in ("count", "sum", "mean"):
            check_number(a, key, f"{ctx} average '{name}'")
    for name, h in g["histograms"].items():
        check_histogram(name, h, ctx)


def check_witness(w):
    expect(isinstance(w, dict), "witness: not an object")
    expect(w.get("verdict") in ("violation", "inconclusive"),
           f"witness: bad verdict {w.get('verdict')!r}")
    cycle = w.get("cycle", [])
    expect(isinstance(cycle, list), "witness: 'cycle' is not an array")
    for step in cycle:
        check_number(step, "thread", "witness step")
        check_number(step, "index", "witness step")
        check_number(step, "tick", "witness step")
        expect(step.get("kind") in ("load", "store", "rmw", "fence"),
               f"witness step: bad kind {step.get('kind')!r}")
        if step["kind"] == "fence":
            expect(isinstance(step.get("fenceKind"), str),
                   "witness fence step: missing 'fenceKind'")
        else:
            check_number(step, "addr", "witness step")
            check_number(step, "value", "witness step")
        if "edgeToNext" in step:
            expect(step["edgeToNext"] in ("po", "fence", "rf", "co",
                                          "fr"),
                   f"witness step: bad edge {step['edgeToNext']!r}")


def check_check_block(blk):
    expect(blk.get("enabled") is True, "check: 'enabled' is not true")
    for key in ("events", "loads", "stores", "rmws", "fences", "merges",
                "squashed", "rfEdges", "coEdges", "frEdges",
                "readsFromInit", "ambiguousReads"):
        check_number(blk, key, "check")
    expect(blk["events"] == blk["loads"] + blk["stores"] + blk["rmws"] +
           blk["fences"], "check: event classes do not sum to events")
    verdict = blk.get("verdict")
    expect(verdict in ("pass", "violation", "inconclusive"),
           f"check: unknown verdict {verdict!r}")
    expect(isinstance(blk.get("scChecked"), bool),
           "check: 'scChecked' is not a bool")
    if verdict == "pass":
        expect("witness" not in blk, "check: witness on a passing run")
    else:
        check_witness(blk.get("witness"))


def check_run(run, expect_check=False, expect_timeline=False):
    for key in ("workload", "design"):
        expect(isinstance(run.get(key), str), f"run: missing '{key}'")
    check_number(run, "cores", "run")
    check_number(run, "cycles", "run")
    expect(isinstance(run.get("valid"), bool), "run: missing 'valid'")
    expect(isinstance(run.get("metrics"), dict), "run: missing 'metrics'")
    expect(isinstance(run.get("breakdown"), dict),
           "run: missing 'breakdown'")
    for key in ("busy", "fenceStall", "otherStall", "idle"):
        check_number(run["breakdown"], key, "breakdown")

    sys_doc = run.get("system")
    expect(isinstance(sys_doc, dict), "run: missing 'system' document")
    version = sys_doc.get("schemaVersion")
    expect(version in (1, 2, 3, 4),
           f"system: unknown schemaVersion {version!r}")
    if version >= 2:
        for key in FENCE_BUCKETS + OTHER_BUCKETS:
            check_number(run["breakdown"], key, "breakdown")
        expect(sum(run["breakdown"][k] for k in FENCE_BUCKETS) ==
               run["breakdown"]["fenceStall"],
               "breakdown: fence buckets do not sum to fenceStall")
        expect(sum(run["breakdown"][k] for k in OTHER_BUCKETS) ==
               run["breakdown"]["otherStall"],
               "breakdown: other buckets do not sum to otherStall")
    check_number(sys_doc, "cycles", "system")
    cfg = sys_doc.get("config")
    expect(isinstance(cfg, dict), "system: missing 'config'")
    check_number(cfg, "numCores", "config")
    expect(isinstance(cfg.get("design"), str), "config: missing design")

    groups = sys_doc.get("groups")
    expect(isinstance(groups, list) and groups, "system: empty 'groups'")
    by_name = {}
    for g in groups:
        check_group(g)
        by_name[g["name"]] = g

    # The headline counters must be present (pre-registered) on every
    # core even when zero, and the write-buffer occupancy histogram must
    # have sampled every simulated cycle.
    ncores = cfg["numCores"]
    for i in range(ncores):
        name = f"core{i}"
        expect(name in by_name, f"missing stats group '{name}'")
        core = by_name[name]
        scalars = ("busyCycles", "idleCycles", "fenceStallCycles",
                   "instrRetired", "fencesStrong", "fencesWeak",
                   "bouncedWrites", "wPlusRecoveries", "loadSquashes",
                   "wbPushes", "wbSquashedStores", "wbHighWater")
        if version >= 2:
            scalars += STALL_SCALARS
        for scalar in scalars:
            expect(scalar in core["scalars"],
                   f"{name}: missing pre-registered scalar '{scalar}'")
        expect("wbOccupancy" in core["histograms"],
               f"{name}: missing 'wbOccupancy' histogram")
        expect(core["histograms"]["wbOccupancy"]["count"] > 0,
               f"{name}: wbOccupancy never sampled")
    for i in range(ncores):
        name = f"dir{i}"
        expect(name in by_name, f"missing stats group '{name}'")
        for scalar in ("bounces", "getxNacked", "queued"):
            expect(scalar in by_name[name]["scalars"],
                   f"{name}: missing pre-registered scalar '{scalar}'")
    expect("noc" in by_name, "missing stats group 'noc'")

    if version >= 2:
        stack = sys_doc.get("cpiStack")
        expect(isinstance(stack, dict), "system: missing 'cpiStack'")
        check_cpi_stack(stack)
        wd = sys_doc.get("watchdog")
        expect(isinstance(wd, dict), "system: missing 'watchdog'")
        check_number(wd, "cycles", "watchdog")
        expect(isinstance(wd.get("fired"), bool),
               "watchdog: missing 'fired'")
        # fenceProfile is present unless profiling was turned off.
        if "fenceProfile" in sys_doc:
            check_fence_profile(sys_doc["fenceProfile"])

    if version >= 4:
        # Hot-line tracking defaults on, so the block is mandatory; the
        # timeline appears only under --stats-interval.
        expect("hotLines" in sys_doc, "system: v4 without 'hotLines'")
        check_hot_lines(sys_doc["hotLines"])
        if expect_timeline:
            expect("timeline" in sys_doc,
                   "system: --stats-interval run without 'timeline'")
            expect(sys_doc["timeline"].get("samples"),
                   "timeline: no samples from a --stats-interval run")
        if "timeline" in sys_doc:
            check_timeline(sys_doc["timeline"], sys_doc["cycles"])

    if version >= 3 and expect_check:
        expect("check" in sys_doc,
               "system: --check run without a 'check' block")
        expect(run.get("checkVerdict") == sys_doc["check"]["verdict"],
               "run: checkVerdict disagrees with the check block")
    if "check" in sys_doc:
        check_check_block(sys_doc["check"])
    elif not expect_check:
        expect("checkVerdict" not in run,
               "run: checkVerdict without a check block")

    noc = sys_doc.get("noc")
    expect(isinstance(noc, dict), "system: missing 'noc'")
    check_number(noc, "meanLatency", "noc")
    links = noc.get("links")
    expect(isinstance(links, list) and links, "noc: empty link heatmap")
    for l in links:
        for key in ("node", "busyCycles", "bytes", "packets",
                    "utilization"):
            check_number(l, key, "link")
        expect(l["dir"] in ("E", "W", "N", "S"),
               f"link: bad direction {l.get('dir')!r}")
        expect(0.0 <= l["utilization"] <= 1.0,
               f"link: utilization {l['utilization']} outside [0, 1]")
        expect(l["packets"] > 0, "link: heatmap row with zero packets")


def check_heartbeat(path, expect_total=None):
    """Validate a sweep-heartbeat JSONL file (src/harness/heartbeat.cc):
    sweep-start first, sweep-end last, per-job start/end bracketing,
    monotone timestamps, well-formed progress lines."""
    with open(path) as f:
        lines = [l for l in f.read().splitlines() if l.strip()]
    expect(lines, "heartbeat: empty file")
    events = []
    for i, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"heartbeat line {i + 1}: not JSON ({e})")
    expect(events[0].get("event") == "sweep-start",
           "heartbeat: first event is not sweep-start")
    expect(events[-1].get("event") == "sweep-end",
           "heartbeat: last event is not sweep-end")
    total = events[0].get("total")
    check_number(events[0], "total", "sweep-start")
    if expect_total is not None:
        expect(total == expect_total,
               f"heartbeat: sweep-start total {total}, expected "
               f"{expect_total}")
    prev_t = None
    started, ended = set(), set()
    for e in events:
        kind = e.get("event")
        check_number(e, "t", f"heartbeat {kind}")
        if prev_t is not None:
            expect(e["t"] >= prev_t,
                   f"heartbeat: timestamps regress at {kind}")
        prev_t = e["t"]
        if kind == "job-start":
            check_number(e, "job", kind)
            expect(0 <= e["job"] < total, f"{kind}: job out of range")
            expect(e["job"] not in started, f"{kind}: duplicate job")
            started.add(e["job"])
            expect(isinstance(e.get("label"), str) and e["label"],
                   f"{kind}: missing label")
            h = e.get("configHash")
            expect(isinstance(h, str) and len(h) == 16 and
                   all(c in "0123456789abcdef" for c in h),
                   f"{kind}: configHash is not 16 hex chars")
        elif kind == "job-end":
            check_number(e, "job", kind)
            check_number(e, "cycles", kind)
            expect(e["job"] in started, f"{kind}: end before start")
            expect(e["job"] not in ended, f"{kind}: duplicate end")
            ended.add(e["job"])
            expect(isinstance(e.get("valid"), bool),
                   f"{kind}: missing 'valid'")
            expect(isinstance(e.get("watchdog"), bool),
                   f"{kind}: missing 'watchdog'")
            expect(isinstance(e.get("status"), str),
                   f"{kind}: missing 'status'")
        elif kind == "progress":
            check_number(e, "done", kind)
            check_number(e, "total", kind)
            active = e.get("active")
            expect(isinstance(active, list), f"{kind}: missing active")
            for a in active:
                check_number(a, "job", f"{kind} active")
                check_number(a, "cycles", f"{kind} active")
        elif kind == "sweep-end":
            check_number(e, "done", kind)
            check_number(e, "elapsedSeconds", kind)
        elif kind != "sweep-start":
            fail(f"heartbeat: unknown event {kind!r}")
    expect(started == set(range(total)),
           f"heartbeat: jobs started {sorted(started)}, expected all "
           f"of 0..{total - 1}")
    expect(ended == started, "heartbeat: not every started job ended")
    expect(events[-1]["done"] == total,
           f"heartbeat: sweep-end done {events[-1]['done']} != "
           f"total {total}")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    expect(isinstance(events, list) and events, "trace: no events")
    phases = set()
    for e in events:
        expect(e.get("ph") in ("X", "i", "C", "M"),
               f"trace: unknown phase {e.get('ph')!r}")
        check_number(e, "ts", "trace event")
        check_number(e, "pid", "trace event")
        check_number(e, "tid", "trace event")
        if e["ph"] == "X":
            check_number(e, "dur", "trace event")
        phases.add(e["ph"])
    expect("X" in phases, "trace: no complete (span) events")
    expect("M" in phases, "trace: no metadata (naming) events")
    names = {e["name"] for e in events if e["ph"] == "M"}
    expect("process_name" in names, "trace: runs are not labelled")
    expect("thread_name" in names, "trace: rows are not named")


# Per-mode run document keys in a simcore-microbench report
# (mirrors emitRun in bench/simcore_microbench.cc).
BENCH_RUN_KEYS = ("hostSeconds", "simCycles", "simCyclesPerSec",
                  "eventsExecuted", "eventsPerSec", "instrRetired",
                  "fastForwardedCycles", "directExecutedCycles")
BENCH_MODES = ("noFastForward", "fastForward", "directExec")


def check_bench_report(path):
    with open(path) as f:
        doc = json.load(f)
    version = doc.get("schemaVersion")
    expect(version in (2, 3),
           f"bench: schemaVersion {version!r}, expected 2 or 3")
    expect(isinstance(doc.get("design"), str), "bench: missing 'design'")
    expect(isinstance(doc.get("quick"), bool), "bench: missing 'quick'")
    workloads = doc.get("workloads")
    expect(isinstance(workloads, list) and workloads,
           "bench: empty 'workloads'")
    for w in workloads:
        name = w.get("name")
        expect(isinstance(name, str), "bench workload: missing 'name'")
        check_number(w, "cores", name)
        digests = set()
        for mode in BENCH_MODES:
            run = w.get(mode)
            expect(isinstance(run, dict),
                   f"{name}: missing mode document '{mode}'")
            for key in BENCH_RUN_KEYS:
                check_number(run, key, f"{name}.{mode}")
            digest = run.get("statsDigest")
            expect(isinstance(digest, str) and len(digest) == 16,
                   f"{name}.{mode}: 'statsDigest' is not a 16-char "
                   f"hex string")
            digests.add(digest)
        # Identity across modes, and only the modes that can skip or
        # batch may report skipped/batched cycles.
        expect(len(digests) == 1,
               f"{name}: stats digests differ across modes")
        expect(w.get("statsIdentical") is True,
               f"{name}: 'statsIdentical' is not true")
        exact = w["noFastForward"]
        expect(exact["fastForwardedCycles"] == 0,
               f"{name}: cycle-exact run fast-forwarded cycles")
        for mode in ("noFastForward", "fastForward"):
            expect(w[mode]["directExecutedCycles"] == 0,
                   f"{name}: {mode} run reports batched cycles")
        for key in ("speedupFastForward", "speedupDirectExec"):
            check_number(w, key, name)
            expect(w[key] > 0, f"{name}: '{key}' not positive")
    if version >= 3:
        obs = doc.get("observatory")
        expect(isinstance(obs, dict),
               "bench: v3 report without 'observatory'")
        expect(isinstance(obs.get("workload"), str),
               "observatory: missing 'workload'")
        for key in ("intervalCycles", "samplesTaken", "hostSecondsOff",
                    "hostSecondsOn", "overheadPct"):
            check_number(obs, key, "observatory")
        expect(obs["intervalCycles"] > 0,
               "observatory: zero intervalCycles")
        expect(obs["hostSecondsOff"] > 0 and obs["hostSecondsOn"] > 0,
               "observatory: non-positive host seconds")
        expect(obs.get("statsIdentical") is True,
               "observatory: 'statsIdentical' is not true")
    print(f"ok: bench report schema validated "
          f"({len(workloads)} workloads)")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--bench":
        bench = Path(sys.argv[2])
        expect(bench.exists(), f"no such report: {bench}")
        check_bench_report(bench)
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--heartbeat":
        hb = Path(sys.argv[2])
        expect(hb.exists(), f"no such heartbeat: {hb}")
        check_heartbeat(hb)
        print("ok: heartbeat telemetry validated")
        return
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <path-to-asf_sim> | "
             f"--bench <report.json> | --heartbeat <hb.jsonl>")
    asf_sim = Path(sys.argv[1])
    expect(asf_sim.exists(), f"no such binary: {asf_sim}")

    with tempfile.TemporaryDirectory() as tmp:
        stats_path = Path(tmp) / "stats.json"
        trace_path = Path(tmp) / "trace.json"
        base = [str(asf_sim), "--workload", "ustm:Hash", "--design",
                "W+", "--cores", "4", "--cycles", "30000"]
        for extra in ([f"--stats-json={stats_path}",
                       f"--trace={trace_path}"],
                      [f"--stats-json={stats_path}", "--check"]):
            stats_path.unlink(missing_ok=True)
            checked = "--check" in extra
            proc = subprocess.run(base + extra, capture_output=True,
                                  text=True, timeout=300)
            expect(proc.returncode == 0,
                   f"asf_sim failed ({proc.returncode}):\n{proc.stderr}")
            expect(stats_path.exists(), "no stats JSON written")

            with open(stats_path) as f:
                doc = json.load(f)
            expect(doc.get("schemaVersion") in (1, 2, 3, 4),
                   f"log: unknown schemaVersion "
                   f"{doc.get('schemaVersion')!r}")
            runs = doc.get("runs")
            expect(isinstance(runs, list) and len(runs) == 1,
                   f"log: expected 1 run, got {runs!r:.80}")
            check_run(runs[0], expect_check=checked)
            if checked:
                # Real workloads reuse data values (lock words toggle),
                # so 'inconclusive' is legitimate; only a 'violation'
                # means the simulator (or checker) is broken.
                expect(runs[0].get("checkVerdict") in ("pass",
                                                       "inconclusive"),
                       f"checked run verdict "
                       f"{runs[0].get('checkVerdict')!r}")
        expect(trace_path.exists(), "no trace written")
        check_trace(trace_path)

        # Observatory shape: --stats-interval fills the timeline block,
        # and --obs-dir resolves the relative stats path under it.
        obs_dir = Path(tmp) / "obs"
        proc = subprocess.run(
            base + ["--stats-json", "stats.json", "--stats-interval",
                    "1000", f"--obs-dir={obs_dir}"],
            capture_output=True, text=True, timeout=300)
        expect(proc.returncode == 0,
               f"asf_sim failed ({proc.returncode}):\n{proc.stderr}")
        obs_stats = obs_dir / "stats.json"
        expect(obs_stats.exists(),
               "--obs-dir did not redirect the relative stats path")
        with open(obs_stats) as f:
            doc = json.load(f)
        check_run(doc["runs"][0], expect_timeline=True)

        # Live sweep telemetry: an --all-designs campaign with
        # --heartbeat must leave a well-formed JSONL trail.
        hb_path = Path(tmp) / "heartbeat.jsonl"
        proc = subprocess.run(
            [str(asf_sim), "--workload", "ustm:Hash", "--all-designs",
             "--jobs", "2", "--cores", "4", "--cycles", "30000",
             f"--heartbeat={hb_path}"],
            capture_output=True, text=True, timeout=300)
        expect(proc.returncode == 0,
               f"asf_sim sweep failed ({proc.returncode}):"
               f"\n{proc.stderr}")
        expect(hb_path.exists(), "no heartbeat written")
        check_heartbeat(hb_path, expect_total=5)

    print("ok: stats schema (plain, --check, --stats-interval), trace "
          "format, obs-dir routing, and sweep heartbeat validated")


if __name__ == "__main__":
    main()
