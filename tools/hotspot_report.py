#!/usr/bin/env python3
"""Render the per-line hot-spot attribution of a stats-JSON log.

Reads a schemaVersion-4 stats log (asf_sim --stats-json, or any bench
binary) and pretty-prints each run's `hotLines` block: the top-K
contended cache lines by attributed contention events (directory
bounces, GETX/commit NACKs, sharer probes, BS-insert conflicts, GRT
deposits/blocks, L2 misses), with the guest-symbol label when the
workload registered one (e.g. `dekker.flag[1]`) and the Space-Saving
over-count bound (`±error`).

    tools/hotspot_report.py stats.json
    tools/hotspot_report.py stats.json --top 5 --workload synth:dekker

CTest uses --expect-top to pin the anti-vacuity property that the
attribution actually finds the contended lines: on the dekker kit the
two flag lines must rank first and second.

    tools/hotspot_report.py stats.json --expect-top dekker.flag --within 2

With --sim BIN the tool drives the simulator itself (runs
`BIN --synth KIT --stats-json TMP` into a temporary file) so a single
CTest command covers the whole pipeline.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Event columns, in display order (mirrors hotEventName in
# src/mem/hotspot.cc).
EVENT_KEYS = ("bounces", "nackX", "nackCO", "sharerProbes",
              "bsConflicts", "grtDeposits", "grtBlocks", "l2Misses")


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    runs = doc.get("runs")
    if runs is None:
        # Accept a bare system document too (System::dumpStatsJson).
        if "hotLines" in doc:
            return [{"workload": "?", "design": "?", "cores": 0,
                     "system": doc}]
        fail(f"{path}: not a stats log (no 'runs')")
    return runs


def line_name(entry):
    return entry.get("label") or f"{entry['line']:#x}"


def print_run(run, top):
    hot = (run.get("system") or {}).get("hotLines")
    title = (f"{run.get('workload')} / {run.get('design')} / "
             f"{run.get('cores')} cores")
    if not hot:
        print(f"{title}: no hotLines block (schemaVersion < 4 or "
              f"tracking off)")
        return
    lines = hot.get("lines", [])[:top]
    print(f"{title}: {hot.get('totalRecorded', 0)} contention events "
          f"over {hot.get('tracked', 0)} tracked lines "
          f"(capacity {hot.get('capacity', 0)}, "
          f"{hot.get('evictions', 0)} evictions)")
    if not lines:
        print("  (no contention recorded)")
        return
    cols = [k for k in EVENT_KEYS
            if any(e.get(k) for e in lines)]
    header = (f"  {'#':>2} {'line':<18} {'count':>8} {'±err':>6} "
              f"{'peak':>4}")
    header += "".join(f" {c:>12}" for c in cols)
    print(header)
    for rank, e in enumerate(lines, 1):
        row = (f"  {rank:>2} {line_name(e):<18} {e['count']:>8} "
               f"{e.get('error', 0):>6} {e.get('sharerPeak', 0):>4}")
        row += "".join(f" {e.get(c, 0):>12}" for c in cols)
        print(row)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stats", nargs="?", default="",
                    help="stats-JSON log (schemaVersion 4)")
    ap.add_argument("--sim", default="",
                    help="asf_sim binary: run `--synth KIT` (see --kit) "
                         "into a temp file instead of reading `stats`")
    ap.add_argument("--kit", default="dekker",
                    help="synthesis kit for --sim (default dekker)")
    ap.add_argument("--top", type=int, default=10,
                    help="lines to show per run (default 10)")
    ap.add_argument("--workload", default="",
                    help="only runs whose workload contains this")
    ap.add_argument("--expect-top", default="",
                    help="assert a label containing this ranks within "
                         "--within in every matching run")
    ap.add_argument("--within", type=int, default=2,
                    help="rank bound for --expect-top (default 2)")
    args = ap.parse_args()

    tmp = None
    if args.sim:
        fd, tmp = tempfile.mkstemp(prefix="hotspot_", suffix=".json")
        os.close(fd)
        cmd = [args.sim, "--synth", args.kit, "--stats-json", tmp]
        res = subprocess.run(cmd)
        if res.returncode != 0:
            fail(f"{' '.join(cmd)}: exit {res.returncode}")
        args.stats = tmp
    elif not args.stats:
        fail("need a stats-JSON path or --sim BIN")

    runs = [r for r in load_runs(args.stats)
            if args.workload in (r.get("workload") or "")]
    if not runs:
        fail(f"no runs match workload filter {args.workload!r}")

    for run in runs:
        print_run(run, args.top)

    if args.expect_top:
        for run in runs:
            hot = (run.get("system") or {}).get("hotLines")
            if not hot:
                fail(f"{run.get('workload')}: no hotLines block to "
                     f"check --expect-top against")
            head = hot.get("lines", [])[:args.within]
            matches = [e for e in head
                       if args.expect_top in e.get("label", "")]
            if not matches:
                names = [line_name(e) for e in head]
                fail(f"{run.get('workload')}: no line labelled "
                     f"*{args.expect_top}* in the top {args.within} "
                     f"(got {names})")
        print(f"ok: *{args.expect_top}* ranks in the top "
              f"{args.within} of all {len(runs)} matching run(s)")
    if tmp:
        os.unlink(tmp)


if __name__ == "__main__":
    main()
