#include "mem/memory_image.hh"

#include "mem/address.hh"
#include "sim/logging.hh"

namespace asf
{

LineData
MemoryImage::readLine(Addr line_addr) const
{
    if (!isLineAligned(line_addr))
        panic("readLine: unaligned %#llx", (unsigned long long)line_addr);
    auto it = lines_.find(line_addr);
    if (it == lines_.end())
        return LineData{};
    return it->second;
}

void
MemoryImage::writeLine(Addr line_addr, const LineData &data)
{
    if (!isLineAligned(line_addr))
        panic("writeLine: unaligned %#llx", (unsigned long long)line_addr);
    lines_[line_addr] = data;
}

uint64_t
MemoryImage::readWord(Addr addr) const
{
    if (!isWordAligned(addr))
        panic("readWord: unaligned %#llx", (unsigned long long)addr);
    auto it = lines_.find(lineAlign(addr));
    if (it == lines_.end())
        return 0;
    return it->second[wordInLine(addr)];
}

void
MemoryImage::writeWord(Addr addr, uint64_t value)
{
    if (!isWordAligned(addr))
        panic("writeWord: unaligned %#llx", (unsigned long long)addr);
    lines_[lineAlign(addr)][wordInLine(addr)] = value;
}

void
MemoryImage::mergeWord(Addr line_addr, unsigned word, uint64_t value)
{
    if (!isLineAligned(line_addr) || word >= wordsPerLine)
        panic("mergeWord: bad args");
    lines_[line_addr][word] = value;
}

} // namespace asf
