#include "mem/l1_cache.hh"

#include "mem/address.hh"
#include "sim/logging.hh"

namespace asf
{

L1Cache::L1Cache(NodeId node, unsigned num_nodes, Mesh &mesh,
                 unsigned size_bytes, unsigned assoc)
    : node_(node), numNodes_(num_nodes), mesh_(mesh),
      array_(size_bytes, assoc), stats_(format("l1_%d", node)),
      statLoadHits_(stats_, "loadHits"),
      statLoadMisses_(stats_, "loadMisses"),
      statStoreHits_(stats_, "storeHits"),
      statEvictions_(stats_, "evictions"),
      statFills_(stats_, "fills"),
      statInvsBounced_(stats_, "invsBounced"),
      statInvsServiced_(stats_, "invsServiced"),
      statDowngrades_(stats_, "downgrades")
{
}

bool
L1Cache::readWord(Addr addr, uint64_t &value)
{
    CacheLine *l = array_.find(lineAlign(addr));
    if (!l) {
        statLoadMisses_.inc();
        return false;
    }
    array_.touch(*l);
    value = l->data[wordInLine(addr)];
    statLoadHits_.inc();
    return true;
}

bool
L1Cache::writeWordExclusive(Addr addr, uint64_t value)
{
    CacheLine *l = array_.find(lineAlign(addr));
    if (!l || (l->state != MesiState::Modified &&
               l->state != MesiState::Exclusive))
        return false;
    if (traceEnabledFor(lineAlign(addr)))
        traceEvent(0, format("l1_%d", node_).c_str(),
                   "write word %u = %llu (state %s)", wordInLine(addr),
                   (unsigned long long)value, mesiName(l->state));
    l->state = MesiState::Modified;
    l->data[wordInLine(addr)] = value;
    array_.touch(*l);
    statStoreHits_.inc();
    return true;
}

bool
L1Cache::hasShared(Addr line_addr) const
{
    const CacheLine *l = array_.find(line_addr);
    return l && l->state == MesiState::Shared;
}

void
L1Cache::sendGetS(Addr line_addr)
{
    Message m;
    m.type = MsgType::GetS;
    m.src = node_;
    m.dst = homeNode(line_addr, numNodes_);
    m.addr = line_addr;
    m.requester = node_;
    mesh_.send(std::move(m));
}

void
L1Cache::sendWriteReq(MsgType type, Addr addr, uint64_t value,
                      bool req_has_line, TrafficClass tc,
                      uint64_t fence_id, uint64_t store_seq)
{
    Addr line = lineAlign(addr);
    Message m;
    m.type = type;
    m.src = node_;
    m.dst = homeNode(line, numNodes_);
    m.addr = line;
    m.requester = node_;
    m.reqHasLine = req_has_line;
    m.trafficClass = tc;
    m.fenceId = fence_id;
    m.storeSeq = store_seq;
    if (type == MsgType::OrderWrite || type == MsgType::CondOrderWrite) {
        m.updateWord = wordInLine(addr);
        m.updateValue = value;
        m.wordMask = wordMaskFor(addr);
    }
    mesh_.send(std::move(m));
}

void
L1Cache::pin(Addr line_addr)
{
    pinned_.push_back(line_addr);
}

void
L1Cache::unpin(Addr line_addr)
{
    for (auto it = pinned_.begin(); it != pinned_.end(); ++it) {
        if (*it == line_addr) {
            pinned_.erase(it);
            return;
        }
    }
}

CacheLine &
L1Cache::allocate(Addr line_addr)
{
    bool victim_valid = false;
    CacheLine &slot = array_.victimFor(
        line_addr, victim_valid, [this](Addr a) {
            for (Addr p : pinned_)
                if (p == a)
                    return true;
            return false;
        });
    if (victim_valid)
        evict(slot);
    return slot;
}

void
L1Cache::evict(CacheLine &victim)
{
    statEvictions_.inc();
    if (traceEnabledFor(victim.addr))
        traceEvent(0, format("l1_%d", node_).c_str(), "evict %s line",
                   mesiName(victim.state));
    // Any speculative load on the victim must be squashed: once the line
    // leaves the cache we can no longer rely on probes reaching it.
    if (onLineInvalidated)
        onLineInvalidated(victim.addr);

    bool monitored =
        bsMatch && bsMatch(victim.addr, 0) != BsMatch::None;

    if (victim.state == MesiState::Modified) {
        Message m;
        m.type = MsgType::PutM;
        m.src = node_;
        m.dst = homeNode(victim.addr, numNodes_);
        m.addr = victim.addr;
        m.requester = node_;
        m.hasData = true;
        m.data = victim.data;
        m.keepSharer = monitored;
        mesh_.send(std::move(m));
    } else if (victim.state == MesiState::Exclusive) {
        // Clean-exclusive eviction notice: keeps the directory's
        // exclusive tracking coherent (Shared evictions stay silent).
        Message m;
        m.type = MsgType::PutE;
        m.src = node_;
        m.dst = homeNode(victim.addr, numNodes_);
        m.addr = victim.addr;
        m.requester = node_;
        m.keepSharer = monitored;
        mesh_.send(std::move(m));
    }
    // Shared evictions are silent; the stale directory entry keeps us
    // receiving invalidations, which is exactly what BS monitoring needs.
    victim.state = MesiState::Invalid;
}

void
L1Cache::handle(const Message &msg)
{
    if (traceEnabledFor(msg.addr))
        traceEvent(0, format("l1_%d", node_).c_str(), "recv %s",
                   msg.toString().c_str());
    switch (msg.type) {
      case MsgType::DataE:
        handleFill(msg, MesiState::Exclusive);
        break;
      case MsgType::DataS:
        handleFill(msg, MesiState::Shared);
        break;
      case MsgType::DataX:
        handleFill(msg, MesiState::Modified);
        break;
      case MsgType::AckX: {
        CacheLine *l = array_.find(msg.addr);
        if (!l)
            panic("L1 %d: AckX for absent line %#llx", node_,
                  (unsigned long long)msg.addr);
        l->state = MesiState::Modified;
        array_.touch(*l);
        break;
      }
      case MsgType::AckOrder:
        handleFill(msg, MesiState::Shared);
        break;
      case MsgType::NackX:
      case MsgType::NackCO:
        break; // bookkeeping happens in the core
      case MsgType::Inv:
        handleInv(msg);
        return;
      case MsgType::Dwngr:
        handleDwngr(msg);
        return;
      default:
        panic("L1 %d: unexpected message %s", node_,
              msg.toString().c_str());
    }
    if (onReply)
        onReply(msg);
}

void
L1Cache::handleFill(const Message &msg, MesiState state)
{
    CacheLine *l = array_.find(msg.addr);
    if (!l) {
        CacheLine &slot = allocate(msg.addr);
        array_.install(slot, msg.addr, state, msg.data);
    } else {
        // A read fill must never clobber a locally dirty line: per-line
        // FIFO makes this unreachable, but it is the difference between
        // a protocol hiccup and a silently lost store, so guard it.
        if (l->state == MesiState::Modified &&
            (state == MesiState::Shared || state == MesiState::Exclusive))
            panic("L1 %d: stale read fill would clobber M line %#llx",
                  node_, (unsigned long long)msg.addr);
        // AckOrder can arrive while we still hold a Shared copy.
        l->state = state;
        l->data = msg.data;
        array_.touch(*l);
    }
    statFills_.inc();
}

void
L1Cache::handleInv(const Message &msg)
{
    Message ack;
    ack.type = MsgType::InvAck;
    ack.src = node_;
    ack.dst = msg.src;
    ack.addr = msg.addr;
    ack.requester = msg.requester;
    ack.trafficClass = msg.trafficClass;

    BsMatch match =
        bsMatch ? bsMatch(msg.addr, msg.wordMask) : BsMatch::None;

    if (match != BsMatch::None && !msg.orderBit) {
        // Bypass Set hit on a plain invalidation: bounce it, keep the
        // line.
        ack.bounced = true;
        ack.bsMatch = match;
        statInvsBounced_.inc();
        if (onBsBounce)
            onBsBounce(msg.addr);
        mesh_.send(std::move(ack));
        return;
    }

    // The invalidation proceeds (possibly as an Order/CO invalidation
    // that keeps us registered as a sharer for monitoring).
    CacheLine *l = array_.find(msg.addr);
    if (l) {
        ack.hadLine = true;
        if (l->state == MesiState::Modified) {
            ack.hasData = true;
            ack.data = l->data;
        }
        l->state = MesiState::Invalid;
    }
    ack.bsMatch = match;
    ack.keepSharer = match != BsMatch::None;
    statInvsServiced_.inc();
    if (onLineInvalidated)
        onLineInvalidated(msg.addr);
    mesh_.send(std::move(ack));
}

void
L1Cache::handleDwngr(const Message &msg)
{
    // Reads are always serviced; a downgrade does not affect the BS's
    // ability to intercept future writes (the node stays a sharer).
    Message ack;
    ack.type = MsgType::DwngrAck;
    ack.src = node_;
    ack.dst = msg.src;
    ack.addr = msg.addr;
    ack.requester = msg.requester;
    ack.trafficClass = msg.trafficClass;

    CacheLine *l = array_.find(msg.addr);
    if (l) {
        ack.hadLine = true;
        if (l->state == MesiState::Modified) {
            ack.hasData = true;
            ack.data = l->data;
        }
        l->state = MesiState::Shared;
    }
    statDowngrades_.inc();
    mesh_.send(std::move(ack));
}

} // namespace asf
