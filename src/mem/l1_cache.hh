/**
 * @file
 * Private L1 data cache controller. Besides the usual fill/evict/probe
 * duties, this is where the paper's Bypass Set hooks in: every incoming
 * invalidating probe is checked against the core's BS (via hooks the
 * core installs), and may be bounced, turned into a monitored
 * invalidation (Order), or answered with true/false-sharing information
 * (Conditional Order). Dirty/exclusive evictions of lines in the BS ask
 * the directory to keep this node as a sharer so the BS keeps observing
 * future writes (paper Section 5.1).
 */

#ifndef ASF_MEM_L1_CACHE_HH
#define ASF_MEM_L1_CACHE_HH

#include <functional>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/message.hh"
#include "noc/mesh.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

class L1Cache
{
  public:
    L1Cache(NodeId node, unsigned num_nodes, Mesh &mesh,
            unsigned size_bytes, unsigned assoc);

    // --- hooks installed by the core ----------------------------------
    /** Match an incoming request against the Bypass Set. */
    std::function<BsMatch(Addr line, WordMask words)> bsMatch;
    /** An invalidation actually happened (or targets an absent line). */
    std::function<void(Addr line)> onLineInvalidated;
    /** Our BS bounced an external request (W+ deadlock detection). */
    std::function<void(Addr line)> onBsBounce;
    /** Protocol reply for this core (Data / Ack / Nack messages). */
    std::function<void(const Message &)> onReply;

    // --- core-facing operations ---------------------------------------
    /** Lookup without LRU side effects. */
    CacheLine *find(Addr line_addr) { return array_.find(line_addr); }
    const CacheLine *find(Addr line_addr) const
    {
        return array_.find(line_addr);
    }

    /** Read a word on a hit (touches LRU). Returns false on miss. */
    bool readWord(Addr addr, uint64_t &value);

    /** Write a word if we hold M/E (E upgrades to M silently). */
    bool writeWordExclusive(Addr addr, uint64_t value);

    /** True if we hold the line in Shared state. */
    bool hasShared(Addr line_addr) const;

    // --- direct-execution support (see Core::directBurst) -------------
    // A burst cycle reads and writes line data in place via find() so an
    // aborted cycle leaves no trace in this cache; the side effects of
    // readWord / writeWordExclusive — the LRU touch and the hit
    // counters — are re-applied here only for cycles that commit.
    /** Re-apply n consecutive readWord/writeWordExclusive LRU touches
     *  of one line. */
    void touchLineN(CacheLine &l, uint64_t n) { array_.touchN(l, n); }
    /** Batched equivalent of readWord's statLoadHits_ increment. */
    void countLoadHits(uint64_t n) { statLoadHits_.inc(n); }
    /** Batched equivalent of writeWordExclusive's statStoreHits_
     *  increment. */
    void countStoreHits(uint64_t n) { statStoreHits_.inc(n); }

    /** Issue a read miss. */
    void sendGetS(Addr line_addr);

    /**
     * Issue a write request: GetX, OrderWrite or CondOrderWrite.
     * For Order/CO the word update travels in the message; `fence_id`
     * tags it with the ordering fence's profiler id and `store_seq`
     * with the carried store's execution-checker id (observability
     * only, never affects timing).
     */
    void sendWriteReq(MsgType type, Addr addr, uint64_t value,
                      bool req_has_line, TrafficClass tc,
                      uint64_t fence_id = 0, uint64_t store_seq = 0);

    /** Pin a line against eviction while its upgrade is outstanding.
     *  Several lines may be pinned at once (RC store units, RMW). */
    void pin(Addr line_addr);
    void unpin(Addr line_addr);

    /** Entry point for mesh messages addressed to this L1. */
    void handle(const Message &msg);

    StatGroup &stats() { return stats_; }

  private:
    void handleFill(const Message &msg, MesiState state);
    void handleInv(const Message &msg);
    void handleDwngr(const Message &msg);

    /** Allocate a slot for line_addr, evicting as needed. */
    CacheLine &allocate(Addr line_addr);
    void evict(CacheLine &victim);

    NodeId node_;
    unsigned numNodes_;
    Mesh &mesh_;
    CacheArray array_;
    std::vector<Addr> pinned_;
    StatGroup stats_;
    // Hot-path handles into stats_ (lazily bound so the report shape
    // stays identical to the string-lookup call sites they replace).
    LazyStatScalar statLoadHits_;
    LazyStatScalar statLoadMisses_;
    LazyStatScalar statStoreHits_;
    LazyStatScalar statEvictions_;
    LazyStatScalar statFills_;
    LazyStatScalar statInvsBounced_;
    LazyStatScalar statInvsServiced_;
    LazyStatScalar statDowngrades_;
};

} // namespace asf

#endif // ASF_MEM_L1_CACHE_HH
