/**
 * @file
 * One slice of the distributed full-map MESI directory (one per node,
 * lines interleaved by address). Directory-centric 4-hop protocol with
 * per-line transaction serialization: a request for a line with an active
 * transaction queues behind it.
 *
 * Paper-specific behavior implemented here:
 *  - an invalidation probe answered with `bounced` (Bypass Set hit at the
 *    target) aborts the transaction and NACKs the requester, who retries;
 *  - OrderWrite: invalidate sharers but keep BS-matching ones in the
 *    sharer list, merge the carried word update into memory, leave the
 *    requester a Sharer (the store completes without ownership);
 *  - CondOrderWrite: like OrderWrite, but fails (NackCO, update
 *    discarded) if any probed BS reports true sharing;
 *  - PutM/PutE with keepSharer: evicted-but-monitoring caches stay in the
 *    sharer list so their BS keeps seeing future invalidations.
 *
 * Sharer lists are conservative: Shared-state evictions are silent, so a
 * listed sharer may no longer hold the line; probing it is harmless.
 */

#ifndef ASF_MEM_DIRECTORY_HH
#define ASF_MEM_DIRECTORY_HH

#include <deque>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "mem/hotspot.hh"
#include "mem/l2_bank.hh"
#include "mem/memory_image.hh"
#include "mem/message.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace asf
{

namespace check
{
class ExecutionRecorder;
}

class Directory
{
  public:
    Directory(NodeId node, unsigned num_nodes, Mesh &mesh, EventQueue &eq,
              MemoryImage &memory, L2Bank &l2, Tick lookup_latency = 6);

    /** Entry point for every directory-bound message at this node. */
    void handle(const Message &msg);

    StatGroup &stats() { return stats_; }

    /** Attach the execution recorder (observation only: Order-merge
     *  coherence stamping; never affects protocol decisions). */
    void setRecorder(check::ExecutionRecorder *rec) { recorder_ = rec; }

    /** Attach the hot-line tracker (observation only: bounces, NACKs,
     *  and contended probe fan-outs are charged to their line; never
     *  affects protocol decisions). */
    void setHotspot(HotLineTracker *h) { hotspot_ = h; }

    // --- introspection for tests --------------------------------------
    bool isSharer(Addr line, NodeId node) const;
    bool isExclusive(Addr line, NodeId owner) const;
    bool lineBusy(Addr line) const { return active_.count(line) != 0; }
    size_t queuedRequests(Addr line) const;

    /** In-flight transactions and queued requests, one line each
     *  (watchdog diagnostic snapshot). Silent when idle. */
    void debugDump(std::ostream &os) const;

  private:
    struct Entry
    {
        /** A single node was granted E or M rights. */
        bool exclusiveGranted = false;
        NodeId owner = invalidNode;
        /** Conservative sharer set (includes owner when exclusive). */
        std::set<NodeId> sharers;
    };

    struct Txn
    {
        Message req;
        bool storageReady = false;
        unsigned pendingAcks = 0;
        bool anyBounce = false;
        bool anyTrueShare = false;
        std::set<NodeId> keepAsSharers;
        std::set<NodeId> invalidated;
    };

    void startTxn(const Message &req);
    void issueTxn(Addr line);
    void onProbeAck(const Message &ack);
    void tryFinalize(Addr line);
    void finalize(Txn &txn);
    void finishLine(Addr line);

    void finalizeGetS(Txn &txn, Entry &entry);
    void finalizeGetX(Txn &txn, Entry &entry);
    void finalizeOrder(Txn &txn, Entry &entry);

    void handlePut(const Message &msg);

    void reply(const Txn &txn, MsgType type, bool with_data,
               TrafficClass tc = TrafficClass::Base);
    void sendProbe(NodeId target, const Message &req, MsgType type,
                   bool order_bit, WordMask mask);

    NodeId node_;
    unsigned numNodes_;
    Mesh &mesh_;
    EventQueue &eq_;
    MemoryImage &memory_;
    L2Bank &l2_;
    Tick lookupLatency_;
    check::ExecutionRecorder *recorder_ = nullptr;
    HotLineTracker *hotspot_ = nullptr;
    std::map<Addr, Entry> entries_;
    std::map<Addr, Txn> active_;
    std::map<Addr, std::deque<Message>> waiting_;
    StatGroup stats_;
    // Hot-path handles into stats_: references for the pre-registered
    // counters, lazy handles (indexed by MsgType) for the per-request
    // counters so untouched message types stay out of the report.
    StatScalar &statQueued_;
    StatScalar &statProbes_;
    StatScalar &statBounces_;
    std::vector<LazyStatScalar> statByType_;
};

} // namespace asf

#endif // ASF_MEM_DIRECTORY_HH
