#include "mem/hotspot.hh"

#include <algorithm>

#include "mem/address.hh"

namespace asf
{

const char *
hotEventName(HotEvent e)
{
    switch (e) {
      case HotEvent::Bounce:      return "bounces";
      case HotEvent::NackX:       return "nackX";
      case HotEvent::NackCO:      return "nackCO";
      case HotEvent::SharerProbe: return "sharerProbes";
      case HotEvent::BsConflict:  return "bsConflicts";
      case HotEvent::GrtDeposit:  return "grtDeposits";
      case HotEvent::GrtBlock:    return "grtBlocks";
      case HotEvent::L2Miss:      return "l2Misses";
    }
    return "?";
}

HotLineTracker::HotLineTracker(unsigned capacity)
    : capacity_(capacity ? capacity : 1)
{
    entries_.reserve(capacity_);
}

HotLineTracker::Entry &
HotLineTracker::touch(Addr line, uint64_t w)
{
    auto it = index_.find(line);
    if (it != index_.end()) {
        Entry &e = entries_[it->second];
        e.count += w;
        return e;
    }
    if (entries_.size() < capacity_) {
        index_[line] = entries_.size();
        entries_.push_back(Entry{});
        Entry &e = entries_.back();
        e.line = line;
        e.count = w;
        return e;
    }
    // Space-Saving eviction: replace the minimum-count entry and let
    // the newcomer inherit its count as the overestimation bound.
    // Ties break on the lower address so eviction is deterministic.
    size_t min_i = 0;
    for (size_t i = 1; i < entries_.size(); i++) {
        if (entries_[i].count < entries_[min_i].count ||
            (entries_[i].count == entries_[min_i].count &&
             entries_[i].line < entries_[min_i].line))
            min_i = i;
    }
    Entry &e = entries_[min_i];
    index_.erase(e.line);
    index_[line] = min_i;
    uint64_t inherited = e.count;
    e = Entry{};
    e.line = line;
    e.count = inherited + w;
    e.error = inherited;
    evictions_++;
    return e;
}

void
HotLineTracker::record(Addr line, HotEvent ev, uint64_t w)
{
    if (w == 0)
        return;
    line = lineAlign(line);
    totalRecorded_ += w;
    Entry &e = touch(line, w);
    e.byEvent[unsigned(ev)] += w;
}

void
HotLineTracker::recordSharers(Addr line, unsigned sharers)
{
    line = lineAlign(line);
    totalRecorded_ += 1;
    Entry &e = touch(line, 1);
    e.byEvent[unsigned(HotEvent::SharerProbe)] += 1;
    e.sharerPeak = std::max(e.sharerPeak, sharers);
}

std::vector<HotLineTracker::Entry>
HotLineTracker::top() const
{
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.line < b.line;
    });
    return out;
}

void
HotLineTracker::reset()
{
    entries_.clear();
    index_.clear();
    totalRecorded_ = 0;
    evictions_ = 0;
}

void
AddrLabels::label(Addr line, std::string name)
{
    labels_[lineAlign(line)] = std::move(name);
}

const std::string &
AddrLabels::lookup(Addr addr) const
{
    static const std::string empty;
    auto it = labels_.find(lineAlign(addr));
    return it == labels_.end() ? empty : it->second;
}

} // namespace asf
