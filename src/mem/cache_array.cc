#include "mem/cache_array.hh"

#include "mem/address.hh"
#include "sim/logging.hh"

namespace asf
{

const char *
mesiName(MesiState s)
{
    switch (s) {
      case MesiState::Invalid: return "I";
      case MesiState::Shared: return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified: return "M";
    }
    return "?";
}

CacheArray::CacheArray(unsigned size_bytes, unsigned assoc) : assoc_(assoc)
{
    if (assoc == 0 || size_bytes == 0)
        fatal("cache with zero capacity or associativity");
    unsigned num_lines = size_bytes / lineBytes;
    if (num_lines % assoc != 0)
        fatal("cache size %u not divisible into %u-way sets", size_bytes,
              assoc);
    numSets_ = num_lines / assoc;
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("cache set count %u not a power of two", numSets_);
    lines_.resize(num_lines);
}

unsigned
CacheArray::setIndex(Addr line_addr) const
{
    return unsigned((line_addr / lineBytes) & (numSets_ - 1));
}

CacheLine *
CacheArray::find(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    for (unsigned w = 0; w < assoc_; w++) {
        CacheLine &l = lines_[size_t(set) * assoc_ + w];
        if (l.valid() && l.addr == line_addr)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->find(line_addr);
}

void
CacheArray::touch(CacheLine &line)
{
    line.lruStamp = ++lruClock_;
}

CacheLine &
CacheArray::victimFor(Addr line_addr, bool &victim_valid, Addr exclude)
{
    return victimFor(line_addr, victim_valid,
                     [exclude](Addr a) { return a == exclude; });
}

CacheLine &
CacheArray::victimFor(Addr line_addr, bool &victim_valid,
                      const std::function<bool(Addr)> &excluded)
{
    unsigned set = setIndex(line_addr);
    CacheLine *best = nullptr;
    for (unsigned w = 0; w < assoc_; w++) {
        CacheLine &l = lines_[size_t(set) * assoc_ + w];
        if (!l.valid()) {
            victim_valid = false;
            return l;
        }
        if (excluded(l.addr))
            continue;
        if (!best || l.lruStamp < best->lruStamp)
            best = &l;
    }
    if (!best)
        panic("victimFor: every way excluded (assoc %u)", assoc_);
    victim_valid = true;
    return *best;
}

void
CacheArray::install(CacheLine &slot, Addr line_addr, MesiState state,
                    const LineData &data)
{
    if (!isLineAligned(line_addr))
        panic("install: unaligned %#llx", (unsigned long long)line_addr);
    slot.addr = line_addr;
    slot.state = state;
    slot.data = data;
    touch(slot);
}

bool
CacheArray::invalidate(Addr line_addr)
{
    CacheLine *l = find(line_addr);
    if (!l)
        return false;
    l->state = MesiState::Invalid;
    return true;
}

unsigned
CacheArray::validCount() const
{
    unsigned n = 0;
    for (const auto &l : lines_)
        if (l.valid())
            n++;
    return n;
}

} // namespace asf
