/**
 * @file
 * Coherence protocol messages exchanged between L1 controllers and
 * directory slices over the mesh. The protocol is a directory-centric
 * (4-hop) MESI extended with the paper's mechanisms:
 *
 *  - Nack / bounce replies produced by a Bypass Set match,
 *  - OrderWrite (WS+: GetX with the Order bit set, carrying the update),
 *  - CondOrderWrite (SW+: Order plus a word mask for true/false-sharing
 *    discrimination),
 *  - PutM with keep-me-as-sharer (dirty eviction of a line in the BS),
 *  - GRT deposit/fetch traffic for the WeeFence baseline.
 */

#ifndef ASF_MEM_MESSAGE_HH
#define ASF_MEM_MESSAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace asf
{

/** Words per cache line: 32-byte lines, 8-byte words. */
constexpr unsigned wordsPerLine = 4;
constexpr unsigned lineBytes = 32;
constexpr unsigned wordBytes = 8;

/** A full line of data. */
using LineData = std::array<uint64_t, wordsPerLine>;

/** Bitmask over the words of a line (for Conditional Order requests). */
using WordMask = uint8_t;

enum class MsgType : uint8_t
{
    // Requests, L1 -> directory.
    GetS,           ///< read miss
    GetX,           ///< write miss / upgrade
    OrderWrite,     ///< GetX with Order bit (WS+); carries the word update
    CondOrderWrite, ///< Conditional Order (SW+); carries update + mask
    PutM,           ///< dirty eviction writeback
    PutE,           ///< clean-exclusive eviction notice (no data)
    // Replies, directory -> L1.
    DataE,          ///< read data, granted Exclusive
    DataS,          ///< read data, granted Shared
    DataX,          ///< write data, granted Modified
    AckX,           ///< upgrade granted (requester keeps its data)
    AckOrder,       ///< Order/CO completed; line data; requester ends Shared
    NackX,          ///< GetX bounced off a Bypass Set; retry
    NackCO,         ///< CO failed: true sharer exists; retry as CO
    // Probes, directory -> L1.
    Inv,            ///< invalidate (orderBit / wordMask qualify it)
    Dwngr,          ///< downgrade M -> S, send data back
    // Probe responses, L1 -> directory.
    InvAck,         ///< invalidation response (bounce / monitor / data)
    DwngrAck,       ///< downgrade response with data
    // WeeFence GRT traffic, L1 -> GRT module and back.
    GrtDeposit,     ///< deposit this fence's Pending Set
    GrtFetchReply,  ///< remote-PS snapshot returned with deposit ack
    GrtClear,       ///< fence completed: clear its PS entry
    GrtCheck,       ///< re-check a stalled address against the GRT
    GrtCheckReply,  ///< still-blocked / clear answer
};

constexpr unsigned numMsgTypes =
    unsigned(MsgType::GrtCheckReply) + 1;

const char *msgTypeName(MsgType t);

/** How an invalidation probe found the target's Bypass Set. */
enum class BsMatch : uint8_t
{
    None,       ///< address not in the BS
    FalseShare, ///< line address matches, but no word overlaps
    TrueShare,  ///< a requested word matches a BS word
};

/** Traffic class, for the Table-4 network-overhead accounting. */
enum class TrafficClass : uint8_t
{
    Base,   ///< traffic a conventional-fence system would also send
    Retry,  ///< bounce-induced retries and their replies
    Grt,    ///< WeeFence global-state traffic
};

struct Message
{
    MsgType type = MsgType::GetS;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    /** Line-aligned address this message concerns. */
    Addr addr = 0;
    /** Original requester (carried through probes so acks can be matched). */
    NodeId requester = invalidNode;

    // --- payloads ----------------------------------------------------
    bool hasData = false;
    LineData data{};

    /** Order bit (WS+/SW+). */
    bool orderBit = false;
    /** Word mask of the requested words (CO requests and probes). */
    WordMask wordMask = 0;
    /** Word-level update carried by Order/CO writes. */
    unsigned updateWord = 0;
    uint64_t updateValue = 0;

    /** InvAck: how the probe hit the target's BS. */
    BsMatch bsMatch = BsMatch::None;
    /** InvAck/PutM/PutE: directory should keep src in the sharer list. */
    bool keepSharer = false;
    /** InvAck: the probe was rejected by the Bypass Set (line kept). */
    bool bounced = false;
    /** InvAck/DwngrAck: the target still held the line when probed. */
    bool hadLine = false;
    /** GetX: the requester holds a Shared copy (upgrade, no data needed). */
    bool reqHasLine = false;

    /** GRT payloads: line addresses of a Pending Set. */
    std::vector<Addr> addrSet;
    /** GrtCheckReply: the checked address is still blocked. */
    bool blocked = false;

    TrafficClass trafficClass = TrafficClass::Base;

    /**
     * Fence-lifecycle profiler id of the fence this message acts for
     * (Order/CondOrder writes, GRT traffic); 0 when unrelated or when
     * profiling is off. Observability metadata only: deliberately
     * excluded from sizeBytes() so profiling cannot perturb simulated
     * traffic or timing.
     */
    uint64_t fenceId = 0;

    /**
     * Execution-checker id of the write-buffer store this message
     * carries (GetX / OrderWrite / CondOrderWrite); 0 when unrelated
     * or when checking is off. Observability metadata only: like
     * fenceId, excluded from sizeBytes() so checking cannot perturb
     * simulated traffic or timing.
     */
    uint64_t storeSeq = 0;

    /** On-wire size for traffic accounting. */
    unsigned sizeBytes() const;

    std::string toString() const;
};

} // namespace asf

#endif // ASF_MEM_MESSAGE_HH
