/**
 * @file
 * Address arithmetic: line alignment, word extraction, and the
 * line-interleaved home-node (NUMA directory) mapping.
 */

#ifndef ASF_MEM_ADDRESS_HH
#define ASF_MEM_ADDRESS_HH

#include "mem/message.hh"
#include "sim/types.hh"

namespace asf
{

/** Line-aligned base of the line containing addr. */
Addr lineAlign(Addr addr);

/** True if addr is line-aligned. */
bool isLineAligned(Addr addr);

/** True if addr is word-aligned (8 bytes). */
bool isWordAligned(Addr addr);

/** Index of the word within its line (0 .. wordsPerLine-1). */
unsigned wordInLine(Addr addr);

/** Word mask with only addr's word set. */
WordMask wordMaskFor(Addr addr);

/** Full-line word mask. */
WordMask fullLineMask();

/**
 * Bytes per home-interleaving granule. Homes rotate across nodes every
 * `homeGranuleBytes`, not every line: related small structures (one
 * STM orec, one work-stealing deque header) stay within one directory
 * module, which is what lets a WeeFence confine its PS/BS to a single
 * module at all (paper Section 2.3).
 */
constexpr unsigned homeGranuleBytes = 512;

/** Home node (directory slice / L2 bank) of a line. */
NodeId homeNode(Addr addr, unsigned num_nodes);

} // namespace asf

#endif // ASF_MEM_ADDRESS_HH
