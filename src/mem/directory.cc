#include "mem/directory.hh"

#include "check/recorder.hh"
#include "mem/address.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf
{

Directory::Directory(NodeId node, unsigned num_nodes, Mesh &mesh,
                     EventQueue &eq, MemoryImage &memory, L2Bank &l2,
                     Tick lookup_latency)
    : node_(node), numNodes_(num_nodes), mesh_(mesh), eq_(eq),
      memory_(memory), l2_(l2), lookupLatency_(lookup_latency),
      stats_(format("dir%d", node)),
      statQueued_(stats_.scalar("queued")),
      statProbes_(stats_.scalar("probes")),
      statBounces_(stats_.scalar("bounces"))
{
    // Stable JSON-report shape: the bounce/Nack counters exist even for
    // runs that never contend.
    for (const char *name : {"getxNacked", "coFailed"})
        stats_.scalar(name);
    statByType_.reserve(numMsgTypes);
    for (unsigned t = 0; t < numMsgTypes; t++)
        statByType_.emplace_back(stats_, msgTypeName(MsgType(t)));
    ASF_TRACE(threadName(1000 + uint32_t(node_),
                         format("dir%d", node_)));
}

bool
Directory::isSharer(Addr line, NodeId node) const
{
    auto it = entries_.find(line);
    return it != entries_.end() && it->second.sharers.count(node) != 0;
}

bool
Directory::isExclusive(Addr line, NodeId owner) const
{
    auto it = entries_.find(line);
    return it != entries_.end() && it->second.exclusiveGranted &&
           it->second.owner == owner;
}

size_t
Directory::queuedRequests(Addr line) const
{
    auto it = waiting_.find(line);
    return it == waiting_.end() ? 0 : it->second.size();
}

void
Directory::debugDump(std::ostream &os) const
{
    if (active_.empty() && waiting_.empty())
        return;
    os << "dir" << unsigned(node_) << ":\n";
    for (const auto &[line, txn] : active_) {
        os << "  txn line=0x" << std::hex << line << std::dec << " "
           << msgTypeName(txn.req.type) << " from core"
           << unsigned(txn.req.src) << " fenceId=" << txn.req.fenceId
           << " storageReady=" << txn.storageReady
           << " pendingAcks=" << txn.pendingAcks
           << " anyBounce=" << txn.anyBounce << "\n";
    }
    for (const auto &[line, q] : waiting_) {
        if (q.empty())
            continue;
        os << "  queued line=0x" << std::hex << line << std::dec << " [";
        for (size_t i = 0; i < q.size(); i++)
            os << (i ? "," : "") << msgTypeName(q[i].type) << ":core"
               << unsigned(q[i].src);
        os << "]\n";
    }
}

void
Directory::handle(const Message &msg)
{
    if (traceEnabledFor(msg.addr))
        traceEvent(eq_.now(), format("dir%d", node_).c_str(), "recv %s",
                   msg.toString().c_str());
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::OrderWrite:
      case MsgType::CondOrderWrite:
        if (active_.count(msg.addr)) {
            waiting_[msg.addr].push_back(msg);
            statQueued_.inc();
        } else {
            startTxn(msg);
        }
        break;
      case MsgType::PutM:
      case MsgType::PutE:
        handlePut(msg);
        break;
      case MsgType::InvAck:
      case MsgType::DwngrAck:
        onProbeAck(msg);
        break;
      default:
        panic("directory %d: unexpected message %s", node_,
              msg.toString().c_str());
    }
}

void
Directory::startTxn(const Message &req)
{
    Addr line = req.addr;
    Txn &txn = active_[line];
    txn.req = req;
    statByType_[unsigned(req.type)].inc();
    // The directory looks the line up before anything goes out.
    eq_.scheduleIn(lookupLatency_, [this, line]() { issueTxn(line); });
}

void
Directory::issueTxn(Addr line)
{
    auto it = active_.find(line);
    if (it == active_.end())
        panic("issueTxn for dead txn %#llx", (unsigned long long)line);
    Txn &txn = it->second;
    const Message &req = txn.req;
    Entry &entry = entries_[line];

    // Storage (L2 hit or off-chip memory) proceeds in parallel with the
    // probes; the transaction finalizes when both are done.
    Tick lat = l2_.access(line);
    eq_.scheduleIn(lat, [this, line]() {
        auto sit = active_.find(line);
        if (sit == active_.end())
            panic("storage callback for dead txn %#llx",
                  (unsigned long long)line);
        sit->second.storageReady = true;
        tryFinalize(line);
    });

    // Issue probes.
    switch (req.type) {
      case MsgType::GetS:
        if (entry.exclusiveGranted && entry.owner != req.src) {
            sendProbe(entry.owner, req, MsgType::Dwngr, false, 0);
            txn.pendingAcks = 1;
        }
        break;
      case MsgType::GetX:
        for (NodeId s : entry.sharers) {
            if (s == req.src)
                continue;
            sendProbe(s, req, MsgType::Inv, false, 0);
            txn.pendingAcks++;
        }
        break;
      case MsgType::OrderWrite:
        for (NodeId s : entry.sharers) {
            if (s == req.src)
                continue;
            sendProbe(s, req, MsgType::Inv, true, 0);
            txn.pendingAcks++;
        }
        break;
      case MsgType::CondOrderWrite:
        for (NodeId s : entry.sharers) {
            if (s == req.src)
                continue;
            sendProbe(s, req, MsgType::Inv, true, req.wordMask);
            txn.pendingAcks++;
        }
        break;
      default:
        panic("startTxn on %s", msgTypeName(req.type));
    }

    // Contended line: the transaction had to invalidate or downgrade
    // remote copies. This is the ping-pong signature (a spin lock
    // bounces between two caches via 1-ack probes every iteration),
    // while cold misses probe nobody and stream through without
    // touching the sketch.
    if (hotspot_ && txn.pendingAcks >= 1)
        hotspot_->recordSharers(line, txn.pendingAcks);

    tryFinalize(line);
}

void
Directory::sendProbe(NodeId target, const Message &req, MsgType type,
                     bool order_bit, WordMask mask)
{
    Message probe;
    probe.type = type;
    probe.src = node_;
    probe.dst = target;
    probe.addr = req.addr;
    probe.requester = req.src;
    probe.orderBit = order_bit;
    probe.wordMask = mask;
    probe.trafficClass = req.trafficClass;
    mesh_.send(std::move(probe));
    statProbes_.inc();
}

void
Directory::onProbeAck(const Message &ack)
{
    auto it = active_.find(ack.addr);
    if (it == active_.end())
        panic("directory %d: probe ack with no txn: %s", node_,
              ack.toString().c_str());
    Txn &txn = it->second;
    if (txn.pendingAcks == 0)
        panic("directory %d: unexpected extra ack", node_);
    txn.pendingAcks--;

    // Dirty data travels back with the ack and is merged into memory
    // right away; by per-(src,dst) FIFO delivery, any writeback racing
    // with the probe has already arrived, so memory is always current by
    // finalize time.
    if (ack.hasData)
        memory_.writeLine(ack.addr, ack.data);

    if (ack.bounced) {
        txn.anyBounce = true;
        statBounces_.inc();
        if (hotspot_)
            hotspot_->record(ack.addr, HotEvent::Bounce);
        ASF_TRACE(instant(
            eq_.now(), 1000 + uint32_t(node_), "dir", "bounce",
            format("{\"line\":%llu,\"by\":%d,\"for\":%d,\"fenceId\":%llu}",
                   (unsigned long long)ack.addr, ack.src, txn.req.src,
                   (unsigned long long)txn.req.fenceId)));
    } else if (ack.type == MsgType::InvAck) {
        if (ack.keepSharer)
            txn.keepAsSharers.insert(ack.src);
        else
            txn.invalidated.insert(ack.src);
        if (ack.bsMatch == BsMatch::TrueShare)
            txn.anyTrueShare = true;
    }
    // DwngrAck: the owner keeps a Shared copy; nothing to record.

    tryFinalize(ack.addr);
}

void
Directory::tryFinalize(Addr line)
{
    auto it = active_.find(line);
    if (it == active_.end())
        return;
    Txn &txn = it->second;
    if (!txn.storageReady || txn.pendingAcks != 0)
        return;
    finalize(txn);
    finishLine(line);
}

void
Directory::finalize(Txn &txn)
{
    Entry &entry = entries_[txn.req.addr];
    switch (txn.req.type) {
      case MsgType::GetS:
        finalizeGetS(txn, entry);
        break;
      case MsgType::GetX:
        finalizeGetX(txn, entry);
        break;
      case MsgType::OrderWrite:
      case MsgType::CondOrderWrite:
        finalizeOrder(txn, entry);
        break;
      default:
        panic("finalize on %s", msgTypeName(txn.req.type));
    }
}

void
Directory::finalizeGetS(Txn &txn, Entry &entry)
{
    NodeId req = txn.req.src;
    if (entry.exclusiveGranted) {
        // Owner was downgraded (or its writeback already arrived).
        entry.exclusiveGranted = false;
        entry.owner = invalidNode;
    }
    bool grant_exclusive = entry.sharers.empty();
    entry.sharers.insert(req);
    if (grant_exclusive) {
        entry.exclusiveGranted = true;
        entry.owner = req;
        reply(txn, MsgType::DataE, true);
    } else {
        reply(txn, MsgType::DataS, true);
    }
}

void
Directory::finalizeGetX(Txn &txn, Entry &entry)
{
    NodeId req = txn.req.src;
    // Sharers that acknowledged invalidation leave the list; bouncing
    // sharers stay (they still hold the line).
    for (NodeId s : txn.invalidated)
        entry.sharers.erase(s);
    for (NodeId s : txn.keepAsSharers)
        entry.sharers.erase(s);

    if (txn.anyBounce) {
        stats_.scalar("getxNacked").inc();
        if (hotspot_)
            hotspot_->record(txn.req.addr, HotEvent::NackX);
        ASF_TRACE(instant(
            eq_.now(), 1000 + uint32_t(node_), "dir", "NackX",
            format("{\"line\":%llu,\"to\":%d,\"fenceId\":%llu}",
                   (unsigned long long)txn.req.addr, txn.req.src,
                   (unsigned long long)txn.req.fenceId)));
        reply(txn, MsgType::NackX, false, TrafficClass::Retry);
        return;
    }

    bool was_sharer = entry.sharers.count(req) != 0;
    if (entry.exclusiveGranted && entry.owner != req) {
        entry.exclusiveGranted = false;
        entry.owner = invalidNode;
    }
    entry.sharers.clear();
    entry.sharers.insert(req);
    entry.exclusiveGranted = true;
    entry.owner = req;

    if (txn.req.reqHasLine && was_sharer)
        reply(txn, MsgType::AckX, false);
    else
        reply(txn, MsgType::DataX, true);
}

void
Directory::finalizeOrder(Txn &txn, Entry &entry)
{
    NodeId req = txn.req.src;
    bool conditional = txn.req.type == MsgType::CondOrderWrite;

    // All probed caches invalidated their copies; BS-matching ones stay
    // in the sharer list so they keep seeing future writes.
    for (NodeId s : txn.invalidated)
        entry.sharers.erase(s);
    if (entry.exclusiveGranted) {
        entry.exclusiveGranted = false;
        entry.owner = invalidNode;
    }

    if (conditional && txn.anyTrueShare) {
        // CO fails: discard the update, requester retries as CO.
        stats_.scalar("coFailed").inc();
        if (hotspot_)
            hotspot_->record(txn.req.addr, HotEvent::NackCO);
        ASF_TRACE(instant(
            eq_.now(), 1000 + uint32_t(node_), "dir", "NackCO",
            format("{\"line\":%llu,\"to\":%d,\"fenceId\":%llu}",
                   (unsigned long long)txn.req.addr, txn.req.src,
                   (unsigned long long)txn.req.fenceId)));
        reply(txn, MsgType::NackCO, false, TrafficClass::Retry);
        return;
    }

    // Complete as an Order transaction: merge the word update into
    // memory and leave the requester with a Shared copy.
    memory_.mergeWord(txn.req.addr, txn.req.updateWord, txn.req.updateValue);
    // The merge is the store's global serialization point (the
    // directory orders all writes to this line): coherence-stamp it.
    if (recorder_ && txn.req.storeSeq)
        recorder_->onStoreMerged(req, txn.req.storeSeq);
    entry.sharers.insert(req);
    stats_.scalar("orderCompleted").inc();
    reply(txn, MsgType::AckOrder, true);
}

void
Directory::finishLine(Addr line)
{
    active_.erase(line);
    auto wit = waiting_.find(line);
    if (wit == waiting_.end() || wit->second.empty()) {
        waiting_.erase(line);
        return;
    }
    Message next = wit->second.front();
    wit->second.pop_front();
    if (wit->second.empty())
        waiting_.erase(line);
    // Start the next transaction synchronously: deferring would let a
    // newly arriving request jump the queue, which breaks per-line
    // request ordering (and with it the FIFO reply order cores rely on).
    startTxn(next);
}

void
Directory::handlePut(const Message &msg)
{
    Entry &entry = entries_[msg.addr];
    statByType_[unsigned(msg.type)].inc();

    if (msg.type == MsgType::PutM) {
        if (!msg.hasData)
            panic("PutM without data");
        memory_.writeLine(msg.addr, msg.data);
        // The writeback allocates in the home L2 bank (no one waits on
        // this latency).
        l2_.access(msg.addr);
    }
    if (entry.exclusiveGranted && entry.owner == msg.src) {
        entry.exclusiveGranted = false;
        entry.owner = invalidNode;
    }
    if (msg.keepSharer)
        entry.sharers.insert(msg.src);
    else
        entry.sharers.erase(msg.src);
}

void
Directory::reply(const Txn &txn, MsgType type, bool with_data,
                 TrafficClass tc)
{
    if (traceEnabledFor(txn.req.addr))
        traceEvent(eq_.now(), format("dir%d", node_).c_str(),
                   "reply %s to %d%s", msgTypeName(type), txn.req.src,
                   with_data ? " +data" : "");
    Message m;
    m.type = type;
    m.src = node_;
    m.dst = txn.req.src;
    m.addr = txn.req.addr;
    m.requester = txn.req.src;
    m.trafficClass = tc == TrafficClass::Base ? txn.req.trafficClass : tc;
    if (with_data) {
        m.hasData = true;
        m.data = memory_.readLine(txn.req.addr);
    }
    mesh_.send(std::move(m));
}

} // namespace asf
