/**
 * @file
 * The simulated physical memory: a sparse map of cache lines. Memory is
 * the data authority for lines not Modified in any L1; dirty writebacks
 * and Order-write merges land here.
 */

#ifndef ASF_MEM_MEMORY_IMAGE_HH
#define ASF_MEM_MEMORY_IMAGE_HH

#include <unordered_map>

#include "mem/message.hh"
#include "sim/types.hh"

namespace asf
{

class MemoryImage
{
  public:
    /** Read a full line (zero-filled if never written). */
    LineData readLine(Addr line_addr) const;

    /** Overwrite a full line. */
    void writeLine(Addr line_addr, const LineData &data);

    /** Read one 8-byte word at a word-aligned address. */
    uint64_t readWord(Addr addr) const;

    /** Write one 8-byte word at a word-aligned address. */
    void writeWord(Addr addr, uint64_t value);

    /** Merge a single word into a line in place. */
    void mergeWord(Addr line_addr, unsigned word, uint64_t value);

    /** Number of distinct lines ever written. */
    size_t footprintLines() const { return lines_.size(); }

  private:
    std::unordered_map<Addr, LineData> lines_;
};

} // namespace asf

#endif // ASF_MEM_MEMORY_IMAGE_HH
