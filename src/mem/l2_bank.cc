#include "mem/l2_bank.hh"

#include "sim/logging.hh"

namespace asf
{

L2Bank::L2Bank(NodeId node, unsigned size_bytes, unsigned assoc,
               Tick hit_latency, Tick mem_latency)
    : tags_(size_bytes, assoc), hitLatency_(hit_latency),
      memLatency_(mem_latency), stats_(format("l2bank%d", node)),
      statHits_(stats_, "hits"), statMisses_(stats_, "misses"),
      statEvictions_(stats_, "evictions")
{
}

Tick
L2Bank::access(Addr line_addr)
{
    CacheLine *line = tags_.find(line_addr);
    if (line) {
        tags_.touch(*line);
        statHits_.inc();
        return hitLatency_;
    }
    statMisses_.inc();
    if (hotspot_)
        hotspot_->record(line_addr, HotEvent::L2Miss);
    bool victim_valid = false;
    CacheLine &slot = tags_.victimFor(line_addr, victim_valid);
    if (victim_valid)
        statEvictions_.inc();
    tags_.install(slot, line_addr, MesiState::Shared, LineData{});
    return memLatency_;
}

bool
L2Bank::contains(Addr line_addr) const
{
    return tags_.find(line_addr) != nullptr;
}

} // namespace asf
