/**
 * @file
 * One bank of the shared L2 at a home node. The bank acts as a latency
 * filter between the directory and off-chip memory: an access that hits
 * in the bank's tags costs the L2 round trip (11 cycles), a miss costs
 * the off-chip round trip (200 cycles) and allocates the tag. Data
 * authority lives in the MemoryImage (dirty writebacks land there
 * immediately), so the bank only tracks tags.
 */

#ifndef ASF_MEM_L2_BANK_HH
#define ASF_MEM_L2_BANK_HH

#include "mem/cache_array.hh"
#include "mem/hotspot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

class L2Bank
{
  public:
    L2Bank(NodeId node, unsigned size_bytes, unsigned assoc,
           Tick hit_latency, Tick mem_latency);

    /**
     * Account one access to line_addr: returns the storage latency
     * (hit or miss+fill) and allocates the tag on a miss.
     */
    Tick access(Addr line_addr);

    /** Tag presence without side effects (tests). */
    bool contains(Addr line_addr) const;

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Attach the hot-line tracker (observation only: misses are
     *  charged to their line; never affects latency decisions). */
    void setHotspot(HotLineTracker *h) { hotspot_ = h; }

  private:
    CacheArray tags_;
    Tick hitLatency_;
    Tick memLatency_;
    HotLineTracker *hotspot_ = nullptr;
    StatGroup stats_;
    // Hot-path handles into stats_ (lazily bound; see LazyStatScalar).
    LazyStatScalar statHits_;
    LazyStatScalar statMisses_;
    LazyStatScalar statEvictions_;
};

} // namespace asf

#endif // ASF_MEM_L2_BANK_HH
