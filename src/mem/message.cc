#include "mem/message.hh"

#include "sim/logging.hh"

namespace asf
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::OrderWrite: return "OrderWrite";
      case MsgType::CondOrderWrite: return "CondOrderWrite";
      case MsgType::PutM: return "PutM";
      case MsgType::PutE: return "PutE";
      case MsgType::DataE: return "DataE";
      case MsgType::DataS: return "DataS";
      case MsgType::DataX: return "DataX";
      case MsgType::AckX: return "AckX";
      case MsgType::AckOrder: return "AckOrder";
      case MsgType::NackX: return "NackX";
      case MsgType::NackCO: return "NackCO";
      case MsgType::Inv: return "Inv";
      case MsgType::Dwngr: return "Dwngr";
      case MsgType::InvAck: return "InvAck";
      case MsgType::DwngrAck: return "DwngrAck";
      case MsgType::GrtDeposit: return "GrtDeposit";
      case MsgType::GrtFetchReply: return "GrtFetchReply";
      case MsgType::GrtClear: return "GrtClear";
      case MsgType::GrtCheck: return "GrtCheck";
      case MsgType::GrtCheckReply: return "GrtCheckReply";
    }
    return "<bad-msg>";
}

unsigned
Message::sizeBytes() const
{
    // 8 bytes of header/address for every message.
    unsigned bytes = 8;
    if (hasData)
        bytes += lineBytes;
    // Order/CO requests carry the word update in the message.
    if (type == MsgType::OrderWrite || type == MsgType::CondOrderWrite)
        bytes += wordBytes;
    // GRT traffic carries address sets, 4 bytes per line address.
    bytes += 4 * addrSet.size();
    return bytes;
}

std::string
Message::toString() const
{
    return format("%s[%d->%d addr=%#llx%s%s]", msgTypeName(type), src, dst,
                  (unsigned long long)addr, hasData ? " +data" : "",
                  orderBit ? " O" : "");
}

} // namespace asf
