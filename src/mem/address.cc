#include "mem/address.hh"

#include "sim/logging.hh"

namespace asf
{

Addr
lineAlign(Addr addr)
{
    return addr & ~Addr(lineBytes - 1);
}

bool
isLineAligned(Addr addr)
{
    return (addr & (lineBytes - 1)) == 0;
}

bool
isWordAligned(Addr addr)
{
    return (addr & (wordBytes - 1)) == 0;
}

unsigned
wordInLine(Addr addr)
{
    return unsigned((addr & (lineBytes - 1)) / wordBytes);
}

WordMask
wordMaskFor(Addr addr)
{
    return WordMask(1u << wordInLine(addr));
}

WordMask
fullLineMask()
{
    return WordMask((1u << wordsPerLine) - 1);
}

NodeId
homeNode(Addr addr, unsigned num_nodes)
{
    if (num_nodes == 0)
        panic("homeNode with zero nodes");
    return NodeId((addr / homeGranuleBytes) % num_nodes);
}

} // namespace asf
