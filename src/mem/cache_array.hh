/**
 * @file
 * A set-associative tag/data array with true-LRU replacement, used for the
 * private L1s (tags + MESI state + data) and for the shared L2 banks
 * (tags only, as a latency filter in front of memory).
 */

#ifndef ASF_MEM_CACHE_ARRAY_HH
#define ASF_MEM_CACHE_ARRAY_HH

#include <functional>
#include <vector>

#include "mem/message.hh"
#include "sim/types.hh"

namespace asf
{

enum class MesiState : uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *mesiName(MesiState s);

struct CacheLine
{
    Addr addr = 0;
    MesiState state = MesiState::Invalid;
    LineData data{};
    uint64_t lruStamp = 0;

    bool valid() const { return state != MesiState::Invalid; }
    bool dirty() const { return state == MesiState::Modified; }
};

class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     */
    CacheArray(unsigned size_bytes, unsigned assoc);

    /** Find a valid line; nullptr on miss. Does not touch LRU. */
    CacheLine *find(Addr line_addr);
    const CacheLine *find(Addr line_addr) const;

    /** Mark a line most-recently-used. */
    void touch(CacheLine &line);

    /** Apply n consecutive touches of one line at once: the clock
     *  advances by n and the line carries the final stamp — exactly
     *  the state n touch() calls would leave. */
    void touchN(CacheLine &line, uint64_t n)
    {
        lruClock_ += n;
        line.lruStamp = lruClock_;
    }

    /**
     * Pick the insertion slot for line_addr: an invalid way if one exists,
     * else the LRU way (whose previous content the caller must evict).
     * Returns the slot; `victim_valid` reports whether it held a line.
     * A line whose address equals `exclude` is never chosen (used to pin
     * a line with an outstanding upgrade); there must be at least two
     * ways for the exclusion to be satisfiable.
     */
    CacheLine &victimFor(Addr line_addr, bool &victim_valid,
                         Addr exclude = ~Addr(0));

    /** Predicate form: any line for which `excluded` returns true is
     *  never chosen (multiple in-flight upgrades pin several lines). */
    CacheLine &victimFor(Addr line_addr, bool &victim_valid,
                         const std::function<bool(Addr)> &excluded);

    /** Install a line into a slot previously obtained from victimFor. */
    void install(CacheLine &slot, Addr line_addr, MesiState state,
                 const LineData &data);

    /** Invalidate a line if present; returns true if it was valid. */
    bool invalidate(Addr line_addr);

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Count of valid lines (tests/debug). */
    unsigned validCount() const;

  private:
    unsigned setIndex(Addr line_addr) const;

    unsigned assoc_;
    unsigned numSets_;
    std::vector<CacheLine> lines_;
    uint64_t lruClock_ = 0;
};

} // namespace asf

#endif // ASF_MEM_CACHE_ARRAY_HH
