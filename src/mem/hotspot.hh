/**
 * @file
 * Per-line hot-spot attribution: a bounded top-K frequency tracker
 * (the Space-Saving sketch of Metwally et al.) that charges contention
 * events - invalidation bounces, directory NACKs, contended sharer
 * probes, Bypass-Set insert conflicts, GRT deposits and blocked checks,
 * and L2 misses - to concrete cache-line addresses without ever growing
 * a per-address map.
 *
 * Space-Saving keeps exactly K counters. A hit increments the line's
 * counter; a miss on a full table evicts the minimum-count entry and
 * the newcomer *inherits* that count as its overestimation `error`
 * (true count is within [count - error, count]). Any line whose true
 * frequency exceeds N/K is guaranteed to be present, which is exactly
 * the hot-line question: a handful of contended flags against a long
 * tail of one-touch lines.
 *
 * Observation-only by construction: the tracker is fed from statistics
 * hook sites and never feeds anything back, so simulated cycles and all
 * other statistics are bit-identical with it on or off (enforced by
 * tests/mem/test_hotspot.cc).
 */

#ifndef ASF_MEM_HOTSPOT_HH
#define ASF_MEM_HOTSPOT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace asf
{

/** Contention event kinds the tracker attributes to lines. */
enum class HotEvent : uint8_t
{
    Bounce,     ///< invalidation probe answered `bounced` (BS hit)
    NackX,      ///< GetX transaction NACKed after a bounce
    NackCO,     ///< conditional OrderWrite failed on true sharing
    SharerProbe,///< directory txn that had to probe remote sharers
    BsConflict, ///< Bypass-Set insert refused (BS full)
    GrtDeposit, ///< line deposited into a GRT pending set
    GrtBlock,   ///< GRT check answered "blocked" for this line
    L2Miss,     ///< L2 bank miss (off-chip fill)
};

constexpr unsigned numHotEvents = 8;

const char *hotEventName(HotEvent e);

class HotLineTracker
{
  public:
    struct Entry
    {
        Addr line = 0;
        /** Space-Saving count (upper bound on the true event count). */
        uint64_t count = 0;
        /** Overestimation bound inherited at eviction; the true count
         *  is within [count - error, count]. */
        uint64_t error = 0;
        /** Per-kind attribution since this line (re)entered the table.
         *  Unlike `count` these do not inherit the evictee's history. */
        uint64_t byEvent[numHotEvents] = {};
        /** Largest sharer set a directory transaction probed. */
        unsigned sharerPeak = 0;
    };

    explicit HotLineTracker(unsigned capacity = 64);

    /** Charge one event (weight `w`) against `line`. */
    void record(Addr line, HotEvent ev, uint64_t w = 1);

    /** Record a sharer-count observation: counts as one SharerProbe
     *  event and updates the entry's peak. */
    void recordSharers(Addr line, unsigned sharers);

    /** Entries sorted by count descending (ties: lower address first,
     *  so the order is deterministic). */
    std::vector<Entry> top() const;

    unsigned capacity() const { return capacity_; }
    size_t size() const { return entries_.size(); }
    /** Total events recorded (all kinds, all lines, incl. evicted). */
    uint64_t totalRecorded() const { return totalRecorded_; }
    /** Misses that evicted a minimum entry (table was full). */
    uint64_t evictions() const { return evictions_; }

    /** Forget everything (post-warmup resetStats). */
    void reset();

  private:
    Entry &touch(Addr line, uint64_t w);

    unsigned capacity_;
    uint64_t totalRecorded_ = 0;
    uint64_t evictions_ = 0;
    std::vector<Entry> entries_;
    /** line -> index into entries_. Bounded by capacity_. */
    std::map<Addr, size_t> index_;
};

/**
 * Address-to-name registry so hot-line reports say `dekker.flag[1]`
 * instead of a raw address. Labels are registered at line granularity
 * by workload setup code (System::labelLine); lookups align down.
 */
class AddrLabels
{
  public:
    void label(Addr line, std::string name);
    /** Label for the line containing `addr`, or "" when unknown. */
    const std::string &lookup(Addr addr) const;
    bool empty() const { return labels_.empty(); }
    void clear() { labels_.clear(); }

  private:
    std::map<Addr, std::string> labels_;
};

} // namespace asf

#endif // ASF_MEM_HOTSPOT_HH
