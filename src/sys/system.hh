/**
 * @file
 * The full simulated machine: cores, private L1s, shared banked L2,
 * distributed directory, GRT modules (for WeeFence), and the mesh, all
 * driven by one deterministic event queue with a synchronous per-cycle
 * core tick. This is the library's primary public entry point.
 */

#ifndef ASF_SYS_SYSTEM_HH
#define ASF_SYS_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "check/recorder.hh"
#include "cpu/core.hh"
#include "cpu/cpi_stack.hh"
#include "fence/grt.hh"
#include "fence/profile.hh"
#include "mem/directory.hh"
#include "mem/hotspot.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_bank.hh"
#include "mem/memory_image.hh"
#include "noc/mesh.hh"
#include "prog/instr.hh"
#include "sim/event_queue.hh"
#include "sim/interval_stats.hh"
#include "sys/config.hh"

namespace asf
{

namespace harness
{
class JsonWriter;
}

/**
 * Aggregated per-core cycle classification: the coarse categories plus
 * the fine CPI-stack buckets (indexed by StallBucket; see
 * cpu/cpi_stack.hh). Invariants, asserted by System::breakdown():
 * the fence buckets sum to fenceStall, the other buckets to
 * otherStall — so sum(buckets) == active() exactly.
 */
struct CycleBreakdown
{
    uint64_t busy = 0;
    uint64_t fenceStall = 0;
    uint64_t otherStall = 0;
    uint64_t idle = 0;
    uint64_t stall[numStallBuckets] = {};

    uint64_t active() const { return busy + fenceStall + otherStall; }
    uint64_t total() const { return active() + idle; }

    uint64_t bucket(StallBucket b) const { return stall[unsigned(b)]; }
    /** Sum of the fence-category (resp. other-category) buckets. */
    uint64_t fenceSum() const;
    uint64_t otherSum() const;

    double busyFrac() const;
    double fenceFrac() const;
    double otherFrac() const;
    /** Bucket share of total() (0 when total() is 0). */
    double bucketFrac(StallBucket b) const;
};

class System
{
  public:
    explicit System(SystemConfig cfg);

    /** Bind a program to a core. The program is shared and kept alive. */
    void loadProgram(NodeId core, std::shared_ptr<const Program> prog,
                     uint64_t prng_seed = 0);

    enum class RunResult
    {
        AllDone,   ///< every thread halted and all buffers drained
        MaxCycles, ///< cycle budget exhausted
        Watchdog,  ///< livelock watchdog fired (no forward progress)
    };

    /** Advance up to max_cycles further cycles. */
    RunResult run(Tick max_cycles);

    /** The livelock watchdog fired during a run() call. */
    bool watchdogFired() const { return watchdogFired_; }

    /** The diagnostic snapshot the watchdog prints when it fires:
     *  per-core stall reason + PC + WB head, in-flight directory
     *  transactions, GRT contents. Callable any time. */
    void dumpWatchdogSnapshot(std::ostream &os) const;

    /** The fence-lifecycle profiler (nullptr when cfg.fenceProfile is
     *  off). */
    const FenceProfiler *fenceProfiler() const { return profiler_.get(); }

    /** The execution recorder (nullptr when cfg.checkExecution is off).
     *  Unlike the profiler it survives resetStats(): it holds execution
     *  history, not statistics, and the checker needs the warmup-phase
     *  writes to resolve post-warmup reads. */
    const check::ExecutionRecorder *executionRecorder() const
    {
        return recorder_.get();
    }

    /** The hot-line tracker (nullptr when cfg.hotLineTracking is off). */
    const HotLineTracker *hotLines() const { return hotspot_.get(); }

    /** The interval time-series (nullptr when cfg.statsInterval is 0). */
    const IntervalStats *intervalStats() const { return intervals_.get(); }

    /** Name the cache line containing `addr` so hot-line reports say
     *  `dekker.flag[1]` instead of a raw address. Workload setup code
     *  registers its shared variables here; labels are purely
     *  observational. */
    void labelLine(Addr addr, std::string name);

    /** The label registry (line address -> name). */
    const AddrLabels &addrLabels() const { return labels_; }

    Tick now() const { return eq_.now(); }

    /**
     * Cycles the fast-forward path skipped ticking (host-side metric;
     * deliberately not part of the stats dump, which stays identical
     * with fast-forward on or off).
     */
    uint64_t fastForwardedCycles() const { return fastForwardedCycles_; }

    /**
     * Cycles committed by direct-execution rounds (host-side metric
     * like fastForwardedCycles; deliberately not part of the stats
     * dump, which stays identical with direct execution on or off).
     */
    uint64_t directExecutedCycles() const { return directExecutedCycles_; }

    // --- component access ----------------------------------------------
    const SystemConfig &config() const { return cfg_; }
    unsigned numCores() const { return cfg_.numCores; }
    Core &core(NodeId id);
    Directory &directory(NodeId id);
    L1Cache &l1(NodeId id);
    Grt &grt(NodeId id);
    Mesh &mesh() { return *mesh_; }
    MemoryImage &memory() { return memory_; }
    EventQueue &eventQueue() { return eq_; }

    // --- results ---------------------------------------------------------
    /** Sum of one guest Mark counter over all cores. */
    uint64_t guestCounter(int64_t idx) const;

    /** Cycle breakdown summed over all cores. */
    CycleBreakdown breakdown() const;

    /** Total retired guest instructions over all cores. */
    uint64_t totalInstrRetired() const;

    /** Reset all statistics and guest counters (post-warmup). */
    void resetStats();

    /**
     * Coherent host-side read of a guest word: returns the value of the
     * most up-to-date copy (a Modified L1 line if one exists, otherwise
     * memory). For post-run validation; no timing side effects.
     */
    uint64_t debugReadWord(Addr addr) const;

    /** Dump every component's statistic counters, gem5-stats style:
     *  one `group.name value` line per nonzero scalar. */
    void dumpStats(std::ostream &os) const;

    /**
     * Serialize every component's statistics (scalars, averages,
     * histograms with percentiles), the cpiStack object, the
     * fenceProfile aggregates, the watchdog metadata, the execution
     * checker's `check` block (verdict + witness, when enabled), and
     * the per-link NoC heatmap to the machine-readable JSON report
     * (schemaVersion 4; see README.md "Observability").
     * `include_profile = false` omits the fenceProfile object,
     * `include_check = false` the check block, and
     * `include_observatory = false` the timeline and hotLines blocks —
     * used by the on/off bit-identity tests to compare the remainder
     * byte-for-byte.
     */
    void dumpStatsJson(std::ostream &os, bool include_profile = true,
                       bool include_check = true,
                       bool include_observatory = true);

  private:
    void dispatch(NodeId node, const Message &msg);
    void handleGrtRequest(NodeId node, const Message &msg);
    bool allDone() const;

    /** System-wide forward-progress metric for the watchdog: any
     *  retired instruction, drained store, or busy cycle counts. */
    uint64_t progressCount() const;

    /** Emit delta-based per-core CPI counter-track samples into the
     *  Chrome trace (no-op unless tracing is enabled). */
    void sampleCpiCounters();

    /** Current cumulative observatory counters, gathered from the live
     *  components (reads only; no simulated side effects). Returns the
     *  reused scratch buffer — valid until the next gather. */
    const IntervalCumulative &gatherIntervalCumulative() const;

    /** Close the pending interval at the current tick: store the delta
     *  sample in the ring and mirror it into Chrome trace counter
     *  tracks when tracing is on. */
    void sampleInterval();

    /** Serialize one interval sample as a JSON object. */
    void emitIntervalSample(harness::JsonWriter &w,
                            const IntervalSample &s) const;

    SystemConfig cfg_;
    EventQueue eq_;
    MemoryImage memory_;
    std::unique_ptr<Mesh> mesh_;
    std::vector<std::unique_ptr<L2Bank>> l2_;
    std::vector<std::unique_ptr<Directory>> dirs_;
    std::vector<std::unique_ptr<Grt>> grts_;
    std::vector<std::unique_ptr<L1Cache>> l1s_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::shared_ptr<const Program>> programs_;
    std::unique_ptr<FenceProfiler> profiler_;
    std::unique_ptr<check::ExecutionRecorder> recorder_;
    std::unique_ptr<HotLineTracker> hotspot_;
    std::unique_ptr<IntervalStats> intervals_;

    /** Lazily-bound read handle used by the interval gather: one null
     *  check per counter per sample instead of a string map lookup,
     *  without ever registering a counter the component never touched
     *  (the handle stays null, and reads as 0, until the stat exists;
     *  map nodes are stable so the bound pointer never dangles). */
    struct ObsHandle
    {
        const StatGroup *group = nullptr;
        const char *name = "";
        mutable const StatScalar *stat = nullptr;

        uint64_t value() const
        {
            if (!stat)
                stat = group->find(name);
            return stat ? stat->value() : 0;
        }
    };
    struct CoreObs
    {
        ObsHandle instr, strong, weak, wee;
    };
    struct DirObs
    {
        ObsHandle bounces, nackX, nackCO;
    };
    struct GrtObs
    {
        ObsHandle deposits, clears;
    };
    /** Built on the first gather (all groups exist by then). */
    mutable std::vector<CoreObs> obsCores_;
    mutable std::vector<DirObs> obsDirs_;
    mutable std::vector<GrtObs> obsGrts_;
    /** Reused across gathers so a dense sampling interval does not
     *  allocate a fresh per-link vector every sample. */
    mutable IntervalCumulative obsScratch_;

    AddrLabels labels_;
    bool watchdogFired_ = false;
    /** Next tick at/after which to publish live-telemetry progress
     *  (cfg.progressSink; host-side only). */
    Tick progressNextAt_ = 0;
    /** Next tick at/after which to emit CPI counter-track samples. */
    Tick traceNextCpiAt_ = 0;
    /** Previous sample per core, for delta-based counter values. */
    std::vector<CycleBreakdown> traceCpiPrev_;
    uint64_t fastForwardedCycles_ = 0;
    uint64_t directExecutedCycles_ = 0;
    /** Next tick worth re-attempting the quiescence walk after a core
     *  reported busy (host-side throttle; see System::run). */
    Tick ffResumeAt_ = 0;
    /** Adaptive retry distance for ffResumeAt_: doubles after every
     *  walk that fails or cannot pay for itself (a compute-bound phase
     *  makes them all useless), resets once a jump or a direct-exec
     *  round actually commits cycles. */
    Tick ffBackoff_ = 8;
    /** Adaptive direct-execution window: doubles after every round
     *  that commits its full window, shrinks to the achieved length
     *  after a partial one (see System::run). Host-side tuning only —
     *  rounds commit the minimum progress and roll the rest back, so
     *  the window never changes simulated behavior. */
    Tick burstWindow_ = 64;
    /** Scratch list of the cores bursting in the current round. */
    std::vector<Core *> burstRound_;
};

} // namespace asf

#endif // ASF_SYS_SYSTEM_HH
