/**
 * @file
 * System configuration: the architecture parameters of Table 2 of the
 * paper, plus the fence-design selection and the tunables the paper
 * leaves implicit (retry backoff, W+ timeout, GRT re-check period).
 */

#ifndef ASF_SYS_CONFIG_HH
#define ASF_SYS_CONFIG_HH

#include <atomic>
#include <string>

#include "fence/fence_kind.hh"
#include "sim/types.hh"

namespace asf
{

/**
 * Memory consistency model (paper Section 2.1). TSO merges one write at
 * a time in program order; RC lets multiple writes merge concurrently.
 * Weak-fence designs are defined for TSO; under RC they fall back to
 * conventional fences (the paper leaves wf-under-RC as future work,
 * Section 5.2).
 */
enum class MemoryModel : uint8_t
{
    TSO,
    RC,
};

const char *memoryModelName(MemoryModel m);

struct SystemConfig
{
    /** 4-32 cores; 8 is the paper's default. */
    unsigned numCores = 8;

    /** Active fence design (S+, WS+, SW+, W+, Wee). */
    FenceDesign design = FenceDesign::SPlus;

    /** Memory consistency model. */
    MemoryModel memoryModel = MemoryModel::TSO;

    /** Concurrent write-buffer merges under RC (TSO always uses 1).
     *  Must stay below l1Assoc (in-flight upgrades pin their lines). */
    unsigned storeUnits = 3;

    // --- core ---------------------------------------------------------
    unsigned issueWidth = 4;
    unsigned robEntries = 140;  ///< documented bound; see DESIGN.md
    unsigned wbEntries = 64;    ///< write-buffer entries

    // --- caches -------------------------------------------------------
    unsigned l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 4;
    Tick l1HitLatency = 2;      ///< round trip
    unsigned l2BankSizeBytes = 128 * 1024;
    unsigned l2Assoc = 8;
    Tick l2HitLatency = 11;     ///< local-bank round trip
    Tick memLatency = 200;      ///< off-chip round trip
    Tick dirLookupLatency = 6;  ///< directory tag lookup before probes

    // --- network ------------------------------------------------------
    Tick hopLatency = 5;
    unsigned linkBytes = 32;    ///< 256-bit links

    // --- fence hardware -----------------------------------------------
    unsigned bsEntries = 32;    ///< Bypass Set capacity per core

    /** Linear backoff for bounced write retries. */
    Tick retryBackoffBase = 16;
    Tick retryBackoffStep = 8;
    Tick retryBackoffMax = 96;

    /** W+ deadlock-suspicion timeout (cycles of sustained two-way
     *  bouncing before checkpoint recovery). */
    Tick wPlusTimeout = 300;

    /** Wee watchdog: sustained two-way bouncing before the fence is
     *  demoted to strong behavior (false-sharing cycle escape). */
    Tick weeTimeout = 2000;

    /** Period of GRT re-check probes for Remote-PS-stalled accesses. */
    Tick grtRecheckInterval = 30;

    /**
     * WeeFence Private Access Filtering: pending pre-fence stores whose
     * line is held locally in M/E (no other sharer can observe them
     * early) are excluded from the Pending Set, as in the WeeFence
     * paper. Without it, private task data demotes most WeeFences to
     * conventional fences.
     */
    bool weePrivateFiltering = true;

    /** Store drain throughput on an L1 hit. */
    Tick storeDrainLatency = 2;

    /**
     * Idle-cycle fast-forward: when every core reports quiescent (its
     * next tick would change nothing but statistics), System::run jumps
     * the clock to the next event or core wake tick instead of ticking
     * through dead cycles. Host-side optimization only — simulated
     * timing and statistics are bit-identical either way (enforced by
     * tests/sys/test_fast_forward.cc). Off switch for A/B checks.
     */
    bool fastForward = true;

    /**
     * Direct execution: compute-bound cores batch-interpret straight-line
     * runs of pure register ops, L1-hitting loads/stores, and compute
     * count-downs several cycles at a time (Core::directBurst), dropping
     * back to cycle-exact ticking at the first fence, RMW, cache miss, or
     * other coherence-visible action. Host-side optimization only —
     * simulated timing and statistics are bit-identical either way
     * (enforced by tests/sys/test_direct_exec.cc). TSO cores only; RC
     * cores always tick cycle-exactly. Off switch for A/B checks.
     */
    bool directExec = true;

    /**
     * Livelock/hang watchdog: if System::run observes no system-wide
     * forward progress (no retired instruction, drained store, or busy
     * cycle on any core) for this many cycles, it dumps a diagnostic
     * snapshot and returns RunResult::Watchdog instead of spinning to
     * the cycle budget. 0 disables (library default); the bench
     * binaries and asf_sim turn it on. The check is throttled to once
     * per window, so a hang is declared after between N and 2N quiet
     * cycles.
     */
    Tick watchdogCycles = 0;

    /**
     * Per-fence-instance lifecycle profiler (the `fenceProfile` object
     * of the stats JSON). Observation-only: simulated timing and every
     * other statistic are bit-identical with it on or off (enforced by
     * tests/cpu/test_cpi_stack.cc).
     */
    bool fenceProfile = true;

    /** Keep raw per-fence records for a --fence-profile JSONL dump. */
    bool fenceProfileRaw = false;

    /**
     * Record every shared-memory event and verify the execution against
     * the TSO + fence-group axioms (the stats `check` block; see
     * src/check/). Observation-only like fenceProfile: simulated timing
     * and every other statistic are bit-identical with it on or off
     * (enforced by tests/check/test_check_identity.cc). Off by default:
     * the event log grows with the execution. TSO only.
     */
    bool checkExecution = false;

    /**
     * Contention-observatory interval time-series: every N cycles
     * System::run snapshots deltas of the CPI buckets, fence issues,
     * directory bounces/NACKs, GRT activity, and per-link NoC flits
     * into a bounded ring (`timeline` stats block + Chrome trace
     * counter tracks). 0 disables (library default). Observation-only:
     * cycles and all cumulative statistics are bit-identical with it
     * on or off (enforced by tests/sim/test_interval_stats.cc).
     */
    Tick statsInterval = 0;

    /** Ring capacity of the interval time-series (oldest samples are
     *  dropped and counted once it is full). */
    unsigned statsIntervalRing = 512;

    /**
     * Per-line hot-spot attribution: a bounded Space-Saving top-K
     * tracker charging bounces, NACKs, contended sharer probes,
     * BS-insert conflicts, GRT deposits/blocks, and L2 misses to line
     * addresses (`hotLines` stats block). Observation-only like the
     * time-series (enforced by tests/mem/test_hotspot.cc).
     */
    bool hotLineTracking = true;

    /** Space-Saving table size: lines hotter than 1/K of all recorded
     *  contention events are guaranteed present. */
    unsigned hotLineEntries = 64;

    /**
     * Live-telemetry progress sink: when set, System::run stores the
     * current cycle into this atomic every `progressInterval` cycles
     * (host-side only; a Tick compare per loop iteration, same cost
     * class as the watchdog check). The sweep heartbeat points each
     * job's config here so multi-hour campaigns are observable
     * mid-flight. Never read by the simulation.
     */
    std::atomic<uint64_t> *progressSink = nullptr;
    Tick progressInterval = 10'000;

    /**
     * Checker mutation self-test: weaken every weak fence by dropping
     * its Bypass-Set insert (post-fence loads lose their invalidation
     * protection), so the checker must report a happens-before cycle.
     * Runtime-settable for the self-test; the ASF_MUTATE_WEAK_FENCE
     * build flag flips the default so a whole build runs mutated.
     */
#ifdef ASF_MUTATE_WEAK_FENCE
    bool mutateDropBsInsert = true;
#else
    bool mutateDropBsInsert = false;
#endif

    /** Seed for all simulator-level randomness. */
    uint64_t seed = 1;

    /** Sanity-check parameter combinations; fatal() on nonsense. */
    void validate() const;

    /** One-line description for reports. */
    std::string summary() const;
};

} // namespace asf

#endif // ASF_SYS_CONFIG_HH
