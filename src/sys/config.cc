#include "sys/config.hh"

#include "sim/logging.hh"

namespace asf
{

const char *
memoryModelName(MemoryModel m)
{
    return m == MemoryModel::TSO ? "TSO" : "RC";
}

void
SystemConfig::validate() const
{
    if (numCores < 1 || numCores > 64)
        fatal("numCores %u out of supported range 1-64", numCores);
    if (l1Assoc < 2)
        fatal("l1Assoc must be >= 2 (one line may be pinned)");
    if (storeUnits == 0)
        fatal("storeUnits must be nonzero");
    if (memoryModel == MemoryModel::RC && storeUnits >= l1Assoc)
        fatal("storeUnits (%u) must stay below l1Assoc (%u): every "
              "in-flight upgrade pins a line", storeUnits, l1Assoc);
    if (issueWidth == 0 || wbEntries == 0 || bsEntries == 0)
        fatal("zero-sized core resource");
    if (wPlusTimeout == 0)
        fatal("wPlusTimeout must be nonzero");
    if (checkExecution && memoryModel != MemoryModel::TSO)
        fatal("checkExecution verifies TSO executions; RC is not "
              "supported");
}

std::string
SystemConfig::summary() const
{
    return format("%u cores, %s fences, L1 %uKB/%u-way, "
                  "L2 bank %uKB/%u-way, mem %llu cyc, WB %u, BS %u",
                  numCores, fenceDesignName(design), l1SizeBytes / 1024,
                  l1Assoc, l2BankSizeBytes / 1024, l2Assoc,
                  (unsigned long long)memLatency, wbEntries, bsEntries);
}

} // namespace asf
