#include "sys/system.hh"

#include <cassert>
#include <iostream>

#include "check/axioms.hh"
#include "harness/report.hh"
#include "mem/address.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf
{

uint64_t
CycleBreakdown::fenceSum() const
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < numFenceStallBuckets; i++)
        sum += stall[i];
    return sum;
}

uint64_t
CycleBreakdown::otherSum() const
{
    uint64_t sum = 0;
    for (unsigned i = numFenceStallBuckets; i < numStallBuckets; i++)
        sum += stall[i];
    return sum;
}

double
CycleBreakdown::bucketFrac(StallBucket b) const
{
    return total() ? double(bucket(b)) / double(total()) : 0.0;
}

double
CycleBreakdown::busyFrac() const
{
    return active() ? double(busy) / double(active()) : 0.0;
}

double
CycleBreakdown::fenceFrac() const
{
    return active() ? double(fenceStall) / double(active()) : 0.0;
}

double
CycleBreakdown::otherFrac() const
{
    return active() ? double(otherStall) / double(active()) : 0.0;
}

System::System(SystemConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
    if (cfg_.fenceProfile)
        profiler_ =
            std::make_unique<FenceProfiler>(cfg_.fenceProfileRaw);
    if (cfg_.checkExecution)
        recorder_ =
            std::make_unique<check::ExecutionRecorder>(cfg_.numCores);
    mesh_ = std::make_unique<Mesh>(eq_, cfg_.numCores, cfg_.hopLatency,
                                   cfg_.linkBytes);
    for (unsigned i = 0; i < cfg_.numCores; i++) {
        NodeId id = NodeId(i);
        l2_.push_back(std::make_unique<L2Bank>(
            id, cfg_.l2BankSizeBytes, cfg_.l2Assoc, cfg_.l2HitLatency,
            cfg_.memLatency));
        dirs_.push_back(std::make_unique<Directory>(
            id, cfg_.numCores, *mesh_, eq_, memory_, *l2_[i],
            cfg_.dirLookupLatency));
        grts_.push_back(std::make_unique<Grt>(id));
        l1s_.push_back(std::make_unique<L1Cache>(
            id, cfg_.numCores, *mesh_, cfg_.l1SizeBytes, cfg_.l1Assoc));
        cores_.push_back(
            std::make_unique<Core>(id, cfg_, *l1s_[i], *mesh_, eq_));
        cores_.back()->setProfiler(profiler_.get());
        cores_.back()->setRecorder(recorder_.get());
        dirs_.back()->setRecorder(recorder_.get());
        mesh_->setSink(id, [this, id](const Message &msg) {
            dispatch(id, msg);
        });
    }
}

Core &
System::core(NodeId id)
{
    if (id < 0 || unsigned(id) >= cores_.size())
        panic("bad core id %d", id);
    return *cores_[id];
}

Directory &
System::directory(NodeId id)
{
    return *dirs_.at(size_t(id));
}

L1Cache &
System::l1(NodeId id)
{
    return *l1s_.at(size_t(id));
}

Grt &
System::grt(NodeId id)
{
    return *grts_.at(size_t(id));
}

void
System::loadProgram(NodeId core_id, std::shared_ptr<const Program> prog,
                    uint64_t prng_seed)
{
    core(core_id).setProgram(prog.get(), prng_seed);
    programs_.push_back(std::move(prog));
}

void
System::dispatch(NodeId node, const Message &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::OrderWrite:
      case MsgType::CondOrderWrite:
      case MsgType::PutM:
      case MsgType::PutE:
      case MsgType::InvAck:
      case MsgType::DwngrAck:
        dirs_[node]->handle(msg);
        return;
      case MsgType::DataE:
      case MsgType::DataS:
      case MsgType::DataX:
      case MsgType::AckX:
      case MsgType::AckOrder:
      case MsgType::NackX:
      case MsgType::NackCO:
      case MsgType::Inv:
      case MsgType::Dwngr:
        l1s_[node]->handle(msg);
        return;
      case MsgType::GrtDeposit:
      case MsgType::GrtClear:
      case MsgType::GrtCheck:
        handleGrtRequest(node, msg);
        return;
      case MsgType::GrtFetchReply:
      case MsgType::GrtCheckReply:
        cores_[node]->onGrtMessage(msg);
        return;
    }
    panic("unroutable message %s", msg.toString().c_str());
}

void
System::handleGrtRequest(NodeId node, const Message &msg)
{
    Grt &grt = *grts_[node];
    switch (msg.type) {
      case MsgType::GrtDeposit: {
        grt.deposit(msg.src, msg.addrSet, msg.fenceId);
        Message reply;
        reply.type = MsgType::GrtFetchReply;
        reply.src = node;
        reply.dst = msg.src;
        reply.requester = msg.src;
        reply.addrSet = grt.remotePendingSet(msg.src);
        reply.trafficClass = TrafficClass::Grt;
        reply.fenceId = msg.fenceId;
        mesh_->send(std::move(reply));
        return;
      }
      case MsgType::GrtClear:
        grt.clear(msg.src);
        return;
      case MsgType::GrtCheck: {
        Message reply;
        reply.type = MsgType::GrtCheckReply;
        reply.src = node;
        reply.dst = msg.src;
        reply.addr = msg.addr;
        reply.requester = msg.src;
        reply.blocked = grt.blocks(msg.src, msg.addr);
        reply.trafficClass = TrafficClass::Grt;
        mesh_->send(std::move(reply));
        return;
      }
      default:
        panic("bad GRT request %s", msg.toString().c_str());
    }
}

bool
System::allDone() const
{
    for (const auto &c : cores_)
        if (!c->done())
            return false;
    return eq_.empty();
}

System::RunResult
System::run(Tick max_cycles)
{
    Tick end = eq_.now() + max_cycles;
    // Livelock watchdog: declare a hang when a full window of
    // watchdogCycles passes without any core making forward progress.
    // The check is a Tick comparison per iteration plus one progress
    // sweep per window, so the effective timeout lands between N and 2N.
    const Tick wd = cfg_.watchdogCycles;
    uint64_t wd_progress = wd ? progressCount() : 0;
    Tick wd_check_at = wd ? eq_.now() + wd : maxTick;
    while (eq_.now() < end) {
        if (allDone())
            return RunResult::AllDone;
        if (eq_.now() >= wd_check_at) {
            uint64_t p = progressCount();
            if (p == wd_progress) {
                watchdogFired_ = true;
                std::cerr << "asf: watchdog: no forward progress in "
                          << wd << " cycles (now " << eq_.now()
                          << "); state snapshot:\n";
                dumpWatchdogSnapshot(std::cerr);
                return RunResult::Watchdog;
            }
            wd_progress = p;
            wd_check_at = eq_.now() + wd;
        }

        Tick next = eq_.now() + 1;

        if ((cfg_.fastForward || cfg_.directExec) && next >= ffResumeAt_) {
            // Run-loop arbitration between the three execution modes
            // (see DESIGN.md "Run-loop arbitration"):
            //  - cores in a compute-bound region batch-interpret their
            //    next cycles directly (Core::directBurst) as one
            //    speculative transaction per core, which the round
            //    then commits to the minimum progress across cores
            //    (Core::directCommit);
            //  - quiescent cores have the skipped cycles' statistics
            //    replayed in bulk (Core::skipCycles), jumping as far as
            //    the next queued event or core wake deadline when no
            //    core is bursting;
            //  - any active core drops the whole round back to
            //    cycle-exact ticking.
            // All of it is host-side only: simulated timing and
            // statistics are bit-identical to ticking through.
            //
            // Host-side throttles keep the classification walk off the
            // hot path when it cannot pay for itself (declining a
            // round is always correct): events due within kMinGap
            // cycles make the jump cheaper to tick through, and a
            // failed or unprofitable walk backs off adaptively — a
            // compute-bound phase without direct execution would
            // otherwise re-walk forever for 1-cycle jumps.
            static constexpr Tick kMinGap = 2;
            static constexpr Tick kBackoffMin = 8;
            static constexpr Tick kBackoffMax = 256;
            static constexpr Tick kBurstWindowMin = 16;
            static constexpr Tick kBurstWindowMax = 2048;
            bool committed = false;
            bool attempted = false;
            Tick target = std::min(eq_.nextEventTick(), end);
            if (target >= next + kMinGap && mesh_->quiescent()) {
                attempted = true;
                const Tick T = eq_.now();
                Tick wake = maxTick;
                bool all_passive = true;
                bool any_burst = false;
                for (auto &c : cores_) {
                    if (cfg_.directExec && c->directBurstable()) {
                        any_burst = true;
                        continue;
                    }
                    Tick w;
                    if (!c->quiescent(w)) {
                        all_passive = false;
                        break;
                    }
                    wake = std::min(wake, w);
                    wake = std::min(wake,
                                    c->writeBuffer().nextWakeTick());
                }
                if (all_passive && any_burst) {
                    // Direct-execution round: every eligible core
                    // bursts speculatively up to a shared window, then
                    // the round commits the *minimum* progress and
                    // rolls the rest back (Core::directCommit), so
                    // cores leave the round fully synchronized at
                    // T+commit. No message can be missed inside the
                    // committed span — bursts end before any send,
                    // quiescent cores cap it at their wake deadline,
                    // and queued events stay out via target — which
                    // makes the window a pure host-side tuning knob:
                    // it doubles after a fully committed round and
                    // shrinks to the achieved length after a partial
                    // one.
                    Tick horizon = std::min(T + burstWindow_,
                                            target - 1);
                    if (wake != maxTick)
                        horizon = wake <= T + 1
                                      ? T
                                      : std::min(horizon, wake - 1);
                    if (horizon > T) {
                        uint64_t W = uint64_t(horizon - T);
                        burstRound_.clear();
                        for (auto &c : cores_)
                            if (cfg_.directExec && c->directBurstable())
                                burstRound_.push_back(c.get());
                        uint64_t commit = W;
                        for (Core *c : burstRound_)
                            commit = std::min<uint64_t>(
                                commit, c->directBurst(T, W));
                        for (Core *c : burstRound_)
                            c->directCommit(T, commit);
                        if (commit > 0) {
                            // Quiescent cores replay the committed
                            // cycles' statistics; bursting cores
                            // already recorded theirs (skipCycles
                            // consumes their debt silently).
                            for (auto &c : cores_)
                                c->skipCycles(commit);
                            eq_.setNow(T + commit);
                            directExecutedCycles_ += commit;
                            committed = true;
                            ffBackoff_ = kBackoffMin;
                            burstWindow_ =
                                commit == W
                                    ? std::min(burstWindow_ * 2,
                                               kBurstWindowMax)
                                    : std::max(Tick(commit),
                                               kBurstWindowMin);
                            continue;
                        }
                        burstWindow_ = kBurstWindowMin;
                    }
                } else if (all_passive && cfg_.fastForward) {
                    // Pure fast-forward: jump the clock to the earliest
                    // tick where anything can happen — the next queued
                    // event or a core's own wake deadline — when the
                    // jump clears at least kMinGap (1-cycle jumps cost
                    // more than they save).
                    target = std::min(target, wake);
                    if (target >= next + kMinGap) {
                        // Ticks at `next` .. `target - 1` are skipped;
                        // the first real tick happens at `target`.
                        Tick skipped = target - next;
                        for (auto &c : cores_)
                            c->skipCycles(skipped);
                        eq_.setNow(target - 1);
                        fastForwardedCycles_ += skipped;
                        next = target;
                        committed = true;
                        ffBackoff_ = kBackoffMin;
                    }
                }
            }
            if (attempted && !committed) {
                ffResumeAt_ = next + ffBackoff_;
                ffBackoff_ = std::min(ffBackoff_ * 2, kBackoffMax);
            }
        }

        // Cheap precursor independent of fast-forward: only walk the
        // event heap when an event is actually due this cycle.
        if (eq_.nextEventTick() <= next)
            eq_.runUntil(next);
        else
            eq_.setNow(next);
        for (auto &c : cores_)
            c->tick();
        if (Trace::get().enabled() && eq_.now() >= traceNextCpiAt_)
            sampleCpiCounters();
    }
    return allDone() ? RunResult::AllDone : RunResult::MaxCycles;
}

uint64_t
System::progressCount() const
{
    uint64_t sum = 0;
    for (const auto &c : cores_)
        sum += c->progressCount();
    return sum;
}

void
System::sampleCpiCounters()
{
    // Per-core CPI counter tracks for the Chrome trace: the cycles each
    // bucket gained since the last sample, rendered by the viewer as a
    // stacked where-do-cycles-go chart. Trace-only observability; never
    // touches simulated state.
    constexpr Tick interval = 1024;
    if (traceCpiPrev_.empty())
        traceCpiPrev_.resize(cores_.size());
    for (size_t i = 0; i < cores_.size(); i++) {
        CycleBreakdown cur;
        cores_[i]->addBreakdown(cur);
        const CycleBreakdown &prev = traceCpiPrev_[i];
        std::string args = format("{\"busy\":%llu,\"idle\":%llu",
                                  (unsigned long long)(cur.busy - prev.busy),
                                  (unsigned long long)(cur.idle - prev.idle));
        for (unsigned b = 0; b < numStallBuckets; b++) {
            uint64_t d = cur.stall[b] - prev.stall[b];
            if (d)
                args += format(",\"%s\":%llu",
                               stallBucketJsonKey(StallBucket(b)),
                               (unsigned long long)d);
        }
        args += "}";
        Trace::get().counter(eq_.now(), uint32_t(i),
                             format("core%zu cpi", i), std::move(args));
        traceCpiPrev_[i] = cur;
    }
    traceNextCpiAt_ = eq_.now() + interval;
}

uint64_t
System::guestCounter(int64_t idx) const
{
    uint64_t sum = 0;
    for (const auto &c : cores_) {
        auto it = c->markCounters().find(idx);
        if (it != c->markCounters().end())
            sum += it->second;
    }
    return sum;
}

CycleBreakdown
System::breakdown() const
{
    CycleBreakdown b;
    for (const auto &c : cores_)
        c->addBreakdown(b); // cached hot handles; no string lookups
    // The CPI-stack invariant: every stall cycle lands in exactly one
    // fine bucket and its coarse category, so the buckets re-add to the
    // categories and sum(buckets) == active().
    assert(b.fenceSum() == b.fenceStall &&
           "fence CPI buckets must sum to fenceStall");
    assert(b.otherSum() == b.otherStall &&
           "other CPI buckets must sum to otherStall");
    return b;
}

uint64_t
System::totalInstrRetired() const
{
    uint64_t sum = 0;
    for (const auto &c : cores_)
        sum += c->stats().get("instrRetired");
    return sum;
}

uint64_t
System::debugReadWord(Addr addr) const
{
    // Youngest buffered (retired but unmerged) store wins; for data
    // protected by a lock at most one write buffer can hold one.
    for (const auto &c : cores_)
        if (const auto *e = c->writeBuffer().forwardLookup(addr))
            return e->value;
    Addr line = lineAlign(addr);
    for (const auto &l1 : l1s_) {
        // find() is non-const but has no observable side effects here.
        const CacheLine *l = const_cast<L1Cache &>(*l1).find(line);
        if (l && l->state == MesiState::Modified)
            return l->data[wordInLine(addr)];
    }
    return memory_.readWord(addr);
}

void
System::dumpStats(std::ostream &os) const
{
    auto dump_group = [&os](const StatGroup &g) {
        for (const auto &[name, value] : g.dumpScalars())
            if (value != 0)
                os << g.name() << '.' << name << ' ' << value << '\n';
    };
    for (const auto &c : cores_) {
        c->syncObservabilityStats();
        dump_group(c->stats());
    }
    for (const auto &l : l1s_)
        dump_group(l->stats());
    for (const auto &d : dirs_)
        dump_group(d->stats());
    for (const auto &g : grts_)
        dump_group(g->stats());
    dump_group(mesh_->stats());
}

void
System::dumpStatsJson(std::ostream &os, bool include_profile,
                      bool include_check)
{
    using harness::JsonWriter;
    for (auto &c : cores_)
        c->syncObservabilityStats();

    JsonWriter w(os);
    w.beginObject();
    w.field("schemaVersion", uint64_t(3));
    w.field("cycles", uint64_t(eq_.now()));

    w.key("config").beginObject();
    w.field("numCores", cfg_.numCores);
    w.field("design", fenceDesignName(cfg_.design));
    w.field("memoryModel", memoryModelName(cfg_.memoryModel));
    w.field("wbEntries", cfg_.wbEntries);
    w.field("bsEntries", cfg_.bsEntries);
    w.field("hopLatency", uint64_t(cfg_.hopLatency));
    w.field("linkBytes", cfg_.linkBytes);
    w.endObject();

    // The aggregated CPI stack (schemaVersion 2): coarse categories
    // plus the fine buckets, grouped by category so consumers can check
    // the sum(buckets) == active() invariant directly.
    CycleBreakdown b = breakdown();
    w.key("cpiStack").beginObject();
    w.field("busy", b.busy);
    w.field("idle", b.idle);
    w.key("fence").beginObject();
    for (unsigned i = 0; i < numFenceStallBuckets; i++)
        w.field(stallBucketJsonKey(StallBucket(i)), b.stall[i]);
    w.field("total", b.fenceStall);
    w.endObject();
    w.key("other").beginObject();
    for (unsigned i = numFenceStallBuckets; i < numStallBuckets; i++)
        w.field(stallBucketJsonKey(StallBucket(i)), b.stall[i]);
    w.field("total", b.otherStall);
    w.endObject();
    w.field("active", b.active());
    w.endObject();

    w.key("watchdog").beginObject();
    w.field("cycles", uint64_t(cfg_.watchdogCycles));
    w.field("fired", watchdogFired_);
    w.endObject();

    if (include_profile && profiler_) {
        w.key("fenceProfile");
        profiler_->dumpJson(w);
    }

    if (include_check && recorder_) {
        // Run the checker on the execution captured so far under the
        // plain TSO axioms. (The stricter SC mode is only sound for
        // fully fenced programs; callers that know that invoke
        // check::checkExecution directly with requireSc.)
        check::CheckResult cr = check::checkExecution(*recorder_);
        w.key("check").beginObject();
        w.field("enabled", true);
        w.field("events", cr.events);
        w.field("loads", cr.loads);
        w.field("stores", cr.stores);
        w.field("rmws", cr.rmws);
        w.field("fences", cr.fences);
        w.field("merges", recorder_->mergesCaptured());
        w.field("squashed", recorder_->eventsSquashed());
        w.field("rfEdges", cr.rfEdges);
        w.field("coEdges", cr.coEdges);
        w.field("frEdges", cr.frEdges);
        w.field("readsFromInit", cr.readsFromInit);
        w.field("ambiguousReads", cr.ambiguousReads);
        w.field("verdict", check::verdictName(cr.verdict));
        w.field("scChecked", cr.scChecked);
        if (!cr.passed()) {
            w.key("witness");
            w.raw(check::witnessJson(cr));
        }
        w.endObject();
    }

    auto emit_group = [&w](const StatGroup &g) {
        w.beginObject();
        w.field("name", g.name());
        w.key("scalars").beginObject();
        for (const auto &[name, s] : g.scalars())
            w.field(name, s.value());
        w.endObject();
        w.key("averages").beginObject();
        for (const auto &[name, a] : g.averages()) {
            w.key(name).beginObject();
            w.field("count", a.count());
            w.field("sum", a.sum());
            w.field("mean", a.mean());
            w.endObject();
        }
        w.endObject();
        w.key("histograms").beginObject();
        for (const auto &[name, h] : g.histograms()) {
            w.key(name).beginObject();
            w.field("count", h.count());
            w.field("mean", h.mean());
            w.field("max", h.max());
            w.field("p50", h.percentile(0.50));
            w.field("p90", h.percentile(0.90));
            w.field("p99", h.percentile(0.99));
            w.field("bucketWidth", h.bucketWidth());
            w.field("overflow", h.overflow());
            w.key("buckets").beginArray();
            for (unsigned i = 0; i < h.numBuckets(); i++)
                w.value(h.bucket(i));
            w.endArray();
            w.endObject();
        }
        w.endObject();
        w.endObject();
    };

    w.key("groups").beginArray();
    for (const auto &c : cores_)
        emit_group(c->stats());
    for (const auto &l : l1s_)
        emit_group(l->stats());
    for (const auto &d : dirs_)
        emit_group(d->stats());
    for (const auto &g : grts_)
        emit_group(g->stats());
    emit_group(mesh_->stats());
    w.endArray();

    // Per-link heatmap: busy (flit) cycles, bytes, and packets for every
    // directed mesh link that carried traffic.
    w.key("noc").beginObject();
    w.key("meanLatency").value(mesh_->avgLatency());
    w.key("links").beginArray();
    uint64_t cycles = eq_.now();
    for (const auto &l : mesh_->linkUtilization()) {
        w.beginObject();
        w.field("node", uint64_t(l.node));
        w.field("dir", std::string(1, l.dir));
        w.field("busyCycles", l.busyCycles);
        w.field("bytes", l.bytes);
        w.field("packets", l.packets);
        w.field("utilization",
                cycles ? double(l.busyCycles) / double(cycles) : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    os << '\n';
}

void
System::dumpWatchdogSnapshot(std::ostream &os) const
{
    os << "--- cores ---\n";
    for (const auto &c : cores_)
        c->debugDump(os);
    os << "--- directories ---\n";
    for (const auto &d : dirs_)
        d->debugDump(os);
    os << "--- GRT modules ---\n";
    for (const auto &g : grts_)
        g->debugDump(os);
}

void
System::resetStats()
{
    for (auto &c : cores_) {
        c->resetStats();
        c->clearMarkCounters();
    }
    if (profiler_) {
        // Post-warmup reset: restart profiling from scratch, like every
        // other statistic. Fences active across the reset simply drop
        // their records (their completion hooks find no match).
        profiler_ =
            std::make_unique<FenceProfiler>(cfg_.fenceProfileRaw);
        for (auto &c : cores_)
            c->setProfiler(profiler_.get());
    }
    for (auto &l : l1s_)
        l->stats().resetAll();
    for (auto &d : dirs_)
        d->stats().resetAll();
    for (auto &g : grts_)
        g->stats().resetAll();
    mesh_->stats().resetAll();
}

} // namespace asf
