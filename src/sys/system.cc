#include "sys/system.hh"

#include <cassert>
#include <iostream>

#include "check/axioms.hh"
#include "harness/report.hh"
#include "mem/address.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf
{

uint64_t
CycleBreakdown::fenceSum() const
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < numFenceStallBuckets; i++)
        sum += stall[i];
    return sum;
}

uint64_t
CycleBreakdown::otherSum() const
{
    uint64_t sum = 0;
    for (unsigned i = numFenceStallBuckets; i < numStallBuckets; i++)
        sum += stall[i];
    return sum;
}

double
CycleBreakdown::bucketFrac(StallBucket b) const
{
    return total() ? double(bucket(b)) / double(total()) : 0.0;
}

double
CycleBreakdown::busyFrac() const
{
    return active() ? double(busy) / double(active()) : 0.0;
}

double
CycleBreakdown::fenceFrac() const
{
    return active() ? double(fenceStall) / double(active()) : 0.0;
}

double
CycleBreakdown::otherFrac() const
{
    return active() ? double(otherStall) / double(active()) : 0.0;
}

System::System(SystemConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
    if (cfg_.fenceProfile)
        profiler_ =
            std::make_unique<FenceProfiler>(cfg_.fenceProfileRaw);
    if (cfg_.checkExecution)
        recorder_ =
            std::make_unique<check::ExecutionRecorder>(cfg_.numCores);
    if (cfg_.hotLineTracking)
        hotspot_ =
            std::make_unique<HotLineTracker>(cfg_.hotLineEntries);
    if (cfg_.statsInterval)
        intervals_ = std::make_unique<IntervalStats>(
            cfg_.statsInterval, cfg_.statsIntervalRing);
    mesh_ = std::make_unique<Mesh>(eq_, cfg_.numCores, cfg_.hopLatency,
                                   cfg_.linkBytes);
    for (unsigned i = 0; i < cfg_.numCores; i++) {
        NodeId id = NodeId(i);
        l2_.push_back(std::make_unique<L2Bank>(
            id, cfg_.l2BankSizeBytes, cfg_.l2Assoc, cfg_.l2HitLatency,
            cfg_.memLatency));
        dirs_.push_back(std::make_unique<Directory>(
            id, cfg_.numCores, *mesh_, eq_, memory_, *l2_[i],
            cfg_.dirLookupLatency));
        grts_.push_back(std::make_unique<Grt>(id));
        l1s_.push_back(std::make_unique<L1Cache>(
            id, cfg_.numCores, *mesh_, cfg_.l1SizeBytes, cfg_.l1Assoc));
        cores_.push_back(
            std::make_unique<Core>(id, cfg_, *l1s_[i], *mesh_, eq_));
        cores_.back()->setProfiler(profiler_.get());
        cores_.back()->setRecorder(recorder_.get());
        cores_.back()->setHotspot(hotspot_.get());
        dirs_.back()->setRecorder(recorder_.get());
        dirs_.back()->setHotspot(hotspot_.get());
        l2_.back()->setHotspot(hotspot_.get());
        mesh_->setSink(id, [this, id](const Message &msg) {
            dispatch(id, msg);
        });
    }
}

Core &
System::core(NodeId id)
{
    if (id < 0 || unsigned(id) >= cores_.size())
        panic("bad core id %d", id);
    return *cores_[id];
}

Directory &
System::directory(NodeId id)
{
    return *dirs_.at(size_t(id));
}

L1Cache &
System::l1(NodeId id)
{
    return *l1s_.at(size_t(id));
}

Grt &
System::grt(NodeId id)
{
    return *grts_.at(size_t(id));
}

void
System::loadProgram(NodeId core_id, std::shared_ptr<const Program> prog,
                    uint64_t prng_seed)
{
    core(core_id).setProgram(prog.get(), prng_seed);
    programs_.push_back(std::move(prog));
}

void
System::dispatch(NodeId node, const Message &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::OrderWrite:
      case MsgType::CondOrderWrite:
      case MsgType::PutM:
      case MsgType::PutE:
      case MsgType::InvAck:
      case MsgType::DwngrAck:
        dirs_[node]->handle(msg);
        return;
      case MsgType::DataE:
      case MsgType::DataS:
      case MsgType::DataX:
      case MsgType::AckX:
      case MsgType::AckOrder:
      case MsgType::NackX:
      case MsgType::NackCO:
      case MsgType::Inv:
      case MsgType::Dwngr:
        l1s_[node]->handle(msg);
        return;
      case MsgType::GrtDeposit:
      case MsgType::GrtClear:
      case MsgType::GrtCheck:
        handleGrtRequest(node, msg);
        return;
      case MsgType::GrtFetchReply:
      case MsgType::GrtCheckReply:
        cores_[node]->onGrtMessage(msg);
        return;
    }
    panic("unroutable message %s", msg.toString().c_str());
}

void
System::labelLine(Addr addr, std::string name)
{
    labels_.label(addr, std::move(name));
}

void
System::handleGrtRequest(NodeId node, const Message &msg)
{
    Grt &grt = *grts_[node];
    switch (msg.type) {
      case MsgType::GrtDeposit: {
        if (hotspot_)
            for (Addr a : msg.addrSet)
                hotspot_->record(a, HotEvent::GrtDeposit);
        grt.deposit(msg.src, msg.addrSet, msg.fenceId);
        Message reply;
        reply.type = MsgType::GrtFetchReply;
        reply.src = node;
        reply.dst = msg.src;
        reply.requester = msg.src;
        reply.addrSet = grt.remotePendingSet(msg.src);
        reply.trafficClass = TrafficClass::Grt;
        reply.fenceId = msg.fenceId;
        mesh_->send(std::move(reply));
        return;
      }
      case MsgType::GrtClear:
        grt.clear(msg.src);
        return;
      case MsgType::GrtCheck: {
        Message reply;
        reply.type = MsgType::GrtCheckReply;
        reply.src = node;
        reply.dst = msg.src;
        reply.addr = msg.addr;
        reply.requester = msg.src;
        reply.blocked = grt.blocks(msg.src, msg.addr);
        if (hotspot_ && reply.blocked)
            hotspot_->record(msg.addr, HotEvent::GrtBlock);
        reply.trafficClass = TrafficClass::Grt;
        mesh_->send(std::move(reply));
        return;
      }
      default:
        panic("bad GRT request %s", msg.toString().c_str());
    }
}

bool
System::allDone() const
{
    for (const auto &c : cores_)
        if (!c->done())
            return false;
    return eq_.empty();
}

System::RunResult
System::run(Tick max_cycles)
{
    Tick end = eq_.now() + max_cycles;
    // Livelock watchdog: declare a hang when a full window of
    // watchdogCycles passes without any core making forward progress.
    // The check is a Tick comparison per iteration plus one progress
    // sweep per window, so the effective timeout lands between N and 2N.
    const Tick wd = cfg_.watchdogCycles;
    uint64_t wd_progress = wd ? progressCount() : 0;
    Tick wd_check_at = wd ? eq_.now() + wd : maxTick;
    while (eq_.now() < end) {
        if (allDone())
            return RunResult::AllDone;
        if (eq_.now() >= wd_check_at) {
            uint64_t p = progressCount();
            if (p == wd_progress) {
                watchdogFired_ = true;
                std::cerr << "asf: watchdog: no forward progress in "
                          << wd << " cycles (now " << eq_.now()
                          << "); state snapshot:\n";
                dumpWatchdogSnapshot(std::cerr);
                return RunResult::Watchdog;
            }
            wd_progress = p;
            wd_check_at = eq_.now() + wd;
        }
        // Contention observatory: close any interval boundary the clock
        // reached (a fast-forward or direct-exec jump across several
        // boundaries yields one merged sample). Read-only and
        // host-side, like the watchdog check above.
        if (intervals_ && eq_.now() >= intervals_->nextAt())
            sampleInterval();
        // Live telemetry: publish the current cycle to the heartbeat
        // sink (a relaxed atomic store; nothing simulated reads it).
        if (cfg_.progressSink && eq_.now() >= progressNextAt_) {
            cfg_.progressSink->store(eq_.now(),
                                     std::memory_order_relaxed);
            progressNextAt_ =
                eq_.now() + std::max<Tick>(cfg_.progressInterval, 1);
        }

        Tick next = eq_.now() + 1;

        if ((cfg_.fastForward || cfg_.directExec) && next >= ffResumeAt_) {
            // Run-loop arbitration between the three execution modes
            // (see DESIGN.md "Run-loop arbitration"):
            //  - cores in a compute-bound region batch-interpret their
            //    next cycles directly (Core::directBurst) as one
            //    speculative transaction per core, which the round
            //    then commits to the minimum progress across cores
            //    (Core::directCommit);
            //  - quiescent cores have the skipped cycles' statistics
            //    replayed in bulk (Core::skipCycles), jumping as far as
            //    the next queued event or core wake deadline when no
            //    core is bursting;
            //  - any active core drops the whole round back to
            //    cycle-exact ticking.
            // All of it is host-side only: simulated timing and
            // statistics are bit-identical to ticking through.
            //
            // Host-side throttles keep the classification walk off the
            // hot path when it cannot pay for itself (declining a
            // round is always correct): events due within kMinGap
            // cycles make the jump cheaper to tick through, and a
            // failed or unprofitable walk backs off adaptively — a
            // compute-bound phase without direct execution would
            // otherwise re-walk forever for 1-cycle jumps.
            static constexpr Tick kMinGap = 2;
            static constexpr Tick kBackoffMin = 8;
            static constexpr Tick kBackoffMax = 256;
            static constexpr Tick kBurstWindowMin = 16;
            static constexpr Tick kBurstWindowMax = 2048;
            bool committed = false;
            bool attempted = false;
            Tick target = std::min(eq_.nextEventTick(), end);
            if (target >= next + kMinGap && mesh_->quiescent()) {
                attempted = true;
                const Tick T = eq_.now();
                Tick wake = maxTick;
                bool all_passive = true;
                bool any_burst = false;
                for (auto &c : cores_) {
                    if (cfg_.directExec && c->directBurstable()) {
                        any_burst = true;
                        continue;
                    }
                    Tick w;
                    if (!c->quiescent(w)) {
                        all_passive = false;
                        break;
                    }
                    wake = std::min(wake, w);
                    wake = std::min(wake,
                                    c->writeBuffer().nextWakeTick());
                }
                if (all_passive && any_burst) {
                    // Direct-execution round: every eligible core
                    // bursts speculatively up to a shared window, then
                    // the round commits the *minimum* progress and
                    // rolls the rest back (Core::directCommit), so
                    // cores leave the round fully synchronized at
                    // T+commit. No message can be missed inside the
                    // committed span — bursts end before any send,
                    // quiescent cores cap it at their wake deadline,
                    // and queued events stay out via target — which
                    // makes the window a pure host-side tuning knob:
                    // it doubles after a fully committed round and
                    // shrinks to the achieved length after a partial
                    // one.
                    Tick horizon = std::min(T + burstWindow_,
                                            target - 1);
                    if (wake != maxTick)
                        horizon = wake <= T + 1
                                      ? T
                                      : std::min(horizon, wake - 1);
                    if (horizon > T) {
                        uint64_t W = uint64_t(horizon - T);
                        burstRound_.clear();
                        for (auto &c : cores_)
                            if (cfg_.directExec && c->directBurstable())
                                burstRound_.push_back(c.get());
                        uint64_t commit = W;
                        for (Core *c : burstRound_)
                            commit = std::min<uint64_t>(
                                commit, c->directBurst(T, W));
                        for (Core *c : burstRound_)
                            c->directCommit(T, commit);
                        if (commit > 0) {
                            // Quiescent cores replay the committed
                            // cycles' statistics; bursting cores
                            // already recorded theirs (skipCycles
                            // consumes their debt silently).
                            for (auto &c : cores_)
                                c->skipCycles(commit);
                            eq_.setNow(T + commit);
                            directExecutedCycles_ += commit;
                            committed = true;
                            ffBackoff_ = kBackoffMin;
                            burstWindow_ =
                                commit == W
                                    ? std::min(burstWindow_ * 2,
                                               kBurstWindowMax)
                                    : std::max(Tick(commit),
                                               kBurstWindowMin);
                            continue;
                        }
                        burstWindow_ = kBurstWindowMin;
                    }
                } else if (all_passive && cfg_.fastForward) {
                    // Pure fast-forward: jump the clock to the earliest
                    // tick where anything can happen — the next queued
                    // event or a core's own wake deadline — when the
                    // jump clears at least kMinGap (1-cycle jumps cost
                    // more than they save).
                    target = std::min(target, wake);
                    if (target >= next + kMinGap) {
                        // Ticks at `next` .. `target - 1` are skipped;
                        // the first real tick happens at `target`.
                        Tick skipped = target - next;
                        for (auto &c : cores_)
                            c->skipCycles(skipped);
                        eq_.setNow(target - 1);
                        fastForwardedCycles_ += skipped;
                        next = target;
                        committed = true;
                        ffBackoff_ = kBackoffMin;
                    }
                }
            }
            if (attempted && !committed) {
                ffResumeAt_ = next + ffBackoff_;
                ffBackoff_ = std::min(ffBackoff_ * 2, kBackoffMax);
            }
        }

        // Cheap precursor independent of fast-forward: only walk the
        // event heap when an event is actually due this cycle.
        if (eq_.nextEventTick() <= next)
            eq_.runUntil(next);
        else
            eq_.setNow(next);
        for (auto &c : cores_)
            c->tick();
        if (Trace::get().enabled() && eq_.now() >= traceNextCpiAt_)
            sampleCpiCounters();
    }
    return allDone() ? RunResult::AllDone : RunResult::MaxCycles;
}

uint64_t
System::progressCount() const
{
    uint64_t sum = 0;
    for (const auto &c : cores_)
        sum += c->progressCount();
    return sum;
}

void
System::sampleCpiCounters()
{
    // Per-core CPI counter tracks for the Chrome trace: the cycles each
    // bucket gained since the last sample, rendered by the viewer as a
    // stacked where-do-cycles-go chart. Trace-only observability; never
    // touches simulated state.
    constexpr Tick interval = 1024;
    if (traceCpiPrev_.empty())
        traceCpiPrev_.resize(cores_.size());
    for (size_t i = 0; i < cores_.size(); i++) {
        CycleBreakdown cur;
        cores_[i]->addBreakdown(cur);
        const CycleBreakdown &prev = traceCpiPrev_[i];
        std::string args = format("{\"busy\":%llu,\"idle\":%llu",
                                  (unsigned long long)(cur.busy - prev.busy),
                                  (unsigned long long)(cur.idle - prev.idle));
        for (unsigned b = 0; b < numStallBuckets; b++) {
            uint64_t d = cur.stall[b] - prev.stall[b];
            if (d)
                args += format(",\"%s\":%llu",
                               stallBucketJsonKey(StallBucket(b)),
                               (unsigned long long)d);
        }
        args += "}";
        Trace::get().counter(eq_.now(), uint32_t(i),
                             format("core%zu cpi", i), std::move(args));
        traceCpiPrev_[i] = cur;
    }
    traceNextCpiAt_ = eq_.now() + interval;
}

const IntervalCumulative &
System::gatherIntervalCumulative() const
{
    // First gather: bind the per-component counter handles. A dense
    // sampling interval makes this a hot path, so the steady state
    // must not pay a string map lookup per counter per sample.
    if (obsCores_.empty()) {
        for (const auto &core : cores_) {
            const StatGroup &s = core->stats();
            obsCores_.push_back({{&s, "instrRetired"},
                                 {&s, "fencesStrong"},
                                 {&s, "fencesWeak"},
                                 {&s, "fencesWee"}});
        }
        for (const auto &d : dirs_) {
            const StatGroup &s = d->stats();
            obsDirs_.push_back(
                {{&s, "bounces"}, {&s, "getxNacked"}, {&s, "coFailed"}});
        }
        for (const auto &g : grts_) {
            const StatGroup &s = g->stats();
            obsGrts_.push_back({{&s, "deposits"}, {&s, "clears"}});
        }
    }

    IntervalCumulative &c = obsScratch_;
    c.instrRetired = c.fencesIssued = 0;
    c.bounces = c.nacks = c.grtDeposits = c.grtClears = 0;
    CycleBreakdown b;
    for (const auto &core : cores_)
        core->addBreakdown(b); // cached hot handles
    c.busy = b.busy;
    c.idle = b.idle;
    for (unsigned i = 0; i < numStallBuckets; i++)
        c.stall[i] = b.stall[i];
    for (const CoreObs &o : obsCores_) {
        c.instrRetired += o.instr.value();
        c.fencesIssued += o.strong.value() + o.weak.value() +
                          o.wee.value();
    }
    for (const DirObs &o : obsDirs_) {
        c.bounces += o.bounces.value();
        c.nacks += o.nackX.value() + o.nackCO.value();
    }
    for (const GrtObs &o : obsGrts_) {
        c.grtDeposits += o.deposits.value();
        c.grtClears += o.clears.value();
    }
    c.linkBusy = mesh_->linkBusyRaw();
    return c;
}

void
System::sampleInterval()
{
    intervals_->sample(eq_.now(), gatherIntervalCumulative());
    if (!Trace::get().enabled())
        return;
    // Mirror the sample into Chrome counter tracks (one "observatory"
    // row): per-cycle rates are left to the viewer; raw deltas keep the
    // track identical to the timeline block.
    const IntervalSample &s =
        intervals_->at(intervals_->size() - 1);
    Trace::get().counter(
        eq_.now(), 2000, "observatory",
        format("{\"fences\":%llu,\"bounces\":%llu,\"nacks\":%llu,"
               "\"grtDeposits\":%llu,\"flits\":%llu,\"instr\":%llu}",
               (unsigned long long)s.fencesIssued,
               (unsigned long long)s.bounces,
               (unsigned long long)s.nacks,
               (unsigned long long)s.grtDeposits,
               (unsigned long long)s.flits,
               (unsigned long long)s.instrRetired));
}

uint64_t
System::guestCounter(int64_t idx) const
{
    uint64_t sum = 0;
    for (const auto &c : cores_) {
        auto it = c->markCounters().find(idx);
        if (it != c->markCounters().end())
            sum += it->second;
    }
    return sum;
}

CycleBreakdown
System::breakdown() const
{
    CycleBreakdown b;
    for (const auto &c : cores_)
        c->addBreakdown(b); // cached hot handles; no string lookups
    // The CPI-stack invariant: every stall cycle lands in exactly one
    // fine bucket and its coarse category, so the buckets re-add to the
    // categories and sum(buckets) == active().
    assert(b.fenceSum() == b.fenceStall &&
           "fence CPI buckets must sum to fenceStall");
    assert(b.otherSum() == b.otherStall &&
           "other CPI buckets must sum to otherStall");
    return b;
}

uint64_t
System::totalInstrRetired() const
{
    uint64_t sum = 0;
    for (const auto &c : cores_)
        sum += c->stats().get("instrRetired");
    return sum;
}

uint64_t
System::debugReadWord(Addr addr) const
{
    // Youngest buffered (retired but unmerged) store wins; for data
    // protected by a lock at most one write buffer can hold one.
    for (const auto &c : cores_)
        if (const auto *e = c->writeBuffer().forwardLookup(addr))
            return e->value;
    Addr line = lineAlign(addr);
    for (const auto &l1 : l1s_) {
        // find() is non-const but has no observable side effects here.
        const CacheLine *l = const_cast<L1Cache &>(*l1).find(line);
        if (l && l->state == MesiState::Modified)
            return l->data[wordInLine(addr)];
    }
    return memory_.readWord(addr);
}

void
System::dumpStats(std::ostream &os) const
{
    auto dump_group = [&os](const StatGroup &g) {
        for (const auto &[name, value] : g.dumpScalars())
            if (value != 0)
                os << g.name() << '.' << name << ' ' << value << '\n';
    };
    for (const auto &c : cores_) {
        c->syncObservabilityStats();
        dump_group(c->stats());
    }
    for (const auto &l : l1s_)
        dump_group(l->stats());
    for (const auto &d : dirs_)
        dump_group(d->stats());
    for (const auto &g : grts_)
        dump_group(g->stats());
    dump_group(mesh_->stats());
}

void
System::emitIntervalSample(harness::JsonWriter &w,
                           const IntervalSample &s) const
{
    w.beginObject();
    w.field("start", uint64_t(s.start));
    w.field("end", uint64_t(s.end));
    w.field("busy", s.busy);
    w.field("idle", s.idle);
    // Nonzero buckets only: quiet intervals stay one line.
    w.key("stall").beginObject();
    for (unsigned b = 0; b < numStallBuckets; b++)
        if (s.stall[b])
            w.field(stallBucketJsonKey(StallBucket(b)), s.stall[b]);
    w.endObject();
    w.field("instrRetired", s.instrRetired);
    w.field("fencesIssued", s.fencesIssued);
    w.field("bounces", s.bounces);
    w.field("nacks", s.nacks);
    w.field("grtDeposits", s.grtDeposits);
    w.field("grtClears", s.grtClears);
    w.field("flits", s.flits);
    // Sparse per-link flit deltas: [rawLinkIndex, flitCycles] pairs
    // (index = node * 4 + dir, dir order E,W,N,S; see Mesh).
    w.key("links").beginArray();
    for (const auto &[idx, d] : s.links) {
        w.beginArray();
        w.value(uint64_t(idx));
        w.value(d);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
System::dumpStatsJson(std::ostream &os, bool include_profile,
                      bool include_check, bool include_observatory)
{
    using harness::JsonWriter;
    for (auto &c : cores_)
        c->syncObservabilityStats();

    JsonWriter w(os);
    w.beginObject();
    w.field("schemaVersion", uint64_t(4));
    w.field("cycles", uint64_t(eq_.now()));

    w.key("config").beginObject();
    w.field("numCores", cfg_.numCores);
    w.field("design", fenceDesignName(cfg_.design));
    w.field("memoryModel", memoryModelName(cfg_.memoryModel));
    w.field("wbEntries", cfg_.wbEntries);
    w.field("bsEntries", cfg_.bsEntries);
    w.field("hopLatency", uint64_t(cfg_.hopLatency));
    w.field("linkBytes", cfg_.linkBytes);
    w.endObject();

    // The aggregated CPI stack (schemaVersion 2): coarse categories
    // plus the fine buckets, grouped by category so consumers can check
    // the sum(buckets) == active() invariant directly.
    CycleBreakdown b = breakdown();
    w.key("cpiStack").beginObject();
    w.field("busy", b.busy);
    w.field("idle", b.idle);
    w.key("fence").beginObject();
    for (unsigned i = 0; i < numFenceStallBuckets; i++)
        w.field(stallBucketJsonKey(StallBucket(i)), b.stall[i]);
    w.field("total", b.fenceStall);
    w.endObject();
    w.key("other").beginObject();
    for (unsigned i = numFenceStallBuckets; i < numStallBuckets; i++)
        w.field(stallBucketJsonKey(StallBucket(i)), b.stall[i]);
    w.field("total", b.otherStall);
    w.endObject();
    w.field("active", b.active());
    w.endObject();

    w.key("watchdog").beginObject();
    w.field("cycles", uint64_t(cfg_.watchdogCycles));
    w.field("fired", watchdogFired_);
    w.endObject();

    if (include_profile && profiler_) {
        w.key("fenceProfile");
        profiler_->dumpJson(w);
    }

    if (include_check && recorder_) {
        // Run the checker on the execution captured so far under the
        // plain TSO axioms. (The stricter SC mode is only sound for
        // fully fenced programs; callers that know that invoke
        // check::checkExecution directly with requireSc.)
        check::CheckResult cr = check::checkExecution(*recorder_);
        w.key("check").beginObject();
        w.field("enabled", true);
        w.field("events", cr.events);
        w.field("loads", cr.loads);
        w.field("stores", cr.stores);
        w.field("rmws", cr.rmws);
        w.field("fences", cr.fences);
        w.field("merges", recorder_->mergesCaptured());
        w.field("squashed", recorder_->eventsSquashed());
        w.field("rfEdges", cr.rfEdges);
        w.field("coEdges", cr.coEdges);
        w.field("frEdges", cr.frEdges);
        w.field("readsFromInit", cr.readsFromInit);
        w.field("ambiguousReads", cr.ambiguousReads);
        w.field("verdict", check::verdictName(cr.verdict));
        w.field("scChecked", cr.scChecked);
        if (!cr.passed()) {
            w.key("witness");
            w.raw(check::witnessJson(cr));
        }
        w.endObject();
    }

    if (include_observatory && intervals_) {
        // Interval time-series, oldest retained sample first, plus the
        // still-open tail interval (built without mutating the ring so
        // a second dump emits the identical timeline).
        w.key("timeline").beginObject();
        w.field("interval", uint64_t(intervals_->interval()));
        w.field("ringCapacity", uint64_t(intervals_->capacity()));
        w.field("droppedSamples", intervals_->dropped());
        w.key("samples").beginArray();
        for (size_t i = 0; i < intervals_->size(); i++)
            emitIntervalSample(w, intervals_->at(i));
        IntervalSample tail;
        if (intervals_->tailSample(eq_.now(), gatherIntervalCumulative(),
                                   tail))
            emitIntervalSample(w, tail);
        w.endArray();
        w.endObject();
    }

    if (include_observatory && hotspot_) {
        w.key("hotLines").beginObject();
        w.field("capacity", uint64_t(hotspot_->capacity()));
        w.field("tracked", uint64_t(hotspot_->size()));
        w.field("totalRecorded", hotspot_->totalRecorded());
        w.field("evictions", hotspot_->evictions());
        w.key("lines").beginArray();
        for (const auto &e : hotspot_->top()) {
            w.beginObject();
            w.field("line", uint64_t(e.line));
            const std::string &label = labels_.lookup(e.line);
            if (!label.empty())
                w.field("label", label);
            w.field("count", e.count);
            w.field("error", e.error);
            if (e.sharerPeak)
                w.field("sharerPeak", uint64_t(e.sharerPeak));
            for (unsigned k = 0; k < numHotEvents; k++)
                if (e.byEvent[k])
                    w.field(hotEventName(HotEvent(k)), e.byEvent[k]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    auto emit_group = [&w](const StatGroup &g) {
        w.beginObject();
        w.field("name", g.name());
        w.key("scalars").beginObject();
        for (const auto &[name, s] : g.scalars())
            w.field(name, s.value());
        w.endObject();
        w.key("averages").beginObject();
        for (const auto &[name, a] : g.averages()) {
            w.key(name).beginObject();
            w.field("count", a.count());
            w.field("sum", a.sum());
            w.field("mean", a.mean());
            w.endObject();
        }
        w.endObject();
        w.key("histograms").beginObject();
        for (const auto &[name, h] : g.histograms()) {
            w.key(name).beginObject();
            w.field("count", h.count());
            w.field("mean", h.mean());
            w.field("max", h.max());
            w.field("p50", h.percentile(0.50));
            w.field("p90", h.percentile(0.90));
            w.field("p99", h.percentile(0.99));
            w.field("bucketWidth", h.bucketWidth());
            w.field("overflow", h.overflow());
            w.key("buckets").beginArray();
            for (unsigned i = 0; i < h.numBuckets(); i++)
                w.value(h.bucket(i));
            w.endArray();
            w.endObject();
        }
        w.endObject();
        w.endObject();
    };

    w.key("groups").beginArray();
    for (const auto &c : cores_)
        emit_group(c->stats());
    for (const auto &l : l1s_)
        emit_group(l->stats());
    for (const auto &d : dirs_)
        emit_group(d->stats());
    for (const auto &g : grts_)
        emit_group(g->stats());
    emit_group(mesh_->stats());
    w.endArray();

    // Per-link heatmap: busy (flit) cycles, bytes, and packets for every
    // directed mesh link that carried traffic.
    w.key("noc").beginObject();
    w.key("meanLatency").value(mesh_->avgLatency());
    w.key("links").beginArray();
    uint64_t cycles = eq_.now();
    for (const auto &l : mesh_->linkUtilization()) {
        w.beginObject();
        w.field("node", uint64_t(l.node));
        w.field("dir", std::string(1, l.dir));
        w.field("busyCycles", l.busyCycles);
        w.field("bytes", l.bytes);
        w.field("packets", l.packets);
        w.field("utilization",
                cycles ? double(l.busyCycles) / double(cycles) : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    os << '\n';
}

void
System::dumpWatchdogSnapshot(std::ostream &os) const
{
    os << "--- cores ---\n";
    for (const auto &c : cores_)
        c->debugDump(os);
    os << "--- directories ---\n";
    for (const auto &d : dirs_)
        d->debugDump(os);
    os << "--- GRT modules ---\n";
    for (const auto &g : grts_)
        g->debugDump(os);
    if (intervals_ && intervals_->size()) {
        // The run-up to the hang, not just the final state: the last
        // few retained intervals of the contention time-series.
        constexpr size_t kTail = 8;
        size_t n = intervals_->size();
        size_t from = n > kTail ? n - kTail : 0;
        os << "--- timeline (last " << (n - from) << " intervals of "
           << intervals_->interval() << " cycles) ---\n";
        for (size_t i = from; i < n; i++) {
            const IntervalSample &s = intervals_->at(i);
            os << "  [" << s.start << ", " << s.end << "]: busy "
               << s.busy << ", instr " << s.instrRetired << ", fences "
               << s.fencesIssued << ", bounces " << s.bounces
               << ", nacks " << s.nacks << ", grtDeposits "
               << s.grtDeposits << ", flits " << s.flits << "\n";
        }
    }
}

void
System::resetStats()
{
    for (auto &c : cores_) {
        c->resetStats();
        c->clearMarkCounters();
    }
    if (profiler_) {
        // Post-warmup reset: restart profiling from scratch, like every
        // other statistic. Fences active across the reset simply drop
        // their records (their completion hooks find no match).
        profiler_ =
            std::make_unique<FenceProfiler>(cfg_.fenceProfileRaw);
        for (auto &c : cores_)
            c->setProfiler(profiler_.get());
    }
    for (auto &l : l1s_)
        l->stats().resetAll();
    for (auto &d : dirs_)
        d->stats().resetAll();
    for (auto &g : grts_)
        g->stats().resetAll();
    mesh_->stats().resetAll();
    if (hotspot_)
        hotspot_->reset();
    if (intervals_)
        // Re-baseline against the post-reset counters: most feeds are
        // now zero, but the raw per-link flit counters survive the
        // reset and must not show up as a giant first delta.
        intervals_->reset(eq_.now(), gatherIntervalCumulative());
}

} // namespace asf
