/**
 * @file
 * Report formatting: aligned ASCII tables for terminals, CSV rows for
 * post-processing, and a streaming JSON writer for the machine-readable
 * stats report, used by every bench binary.
 */

#ifndef ASF_HARNESS_REPORT_HH
#define ASF_HARNESS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace asf::harness
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Aligned ASCII rendering. */
    void print(std::ostream &os) const;

    /** Comma-separated rendering (header + rows). */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal streaming JSON writer. Tracks container nesting so commas are
 * emitted automatically; panics on malformed sequences (a key outside
 * an object, mismatched end). Doubles are emitted with enough precision
 * to round-trip; NaN/inf (not valid JSON) become null.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(unsigned v) { return value(uint64_t(v)); }
    JsonWriter &value(int v) { return value(int64_t(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** Splice a pre-rendered JSON value verbatim (caller guarantees
     *  validity). */
    JsonWriter &raw(const std::string &json);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void beforeValue();

    std::ostream &os_;
    /** One char per open container: 'o'/'O' object (empty/nonempty),
     *  'a'/'A' array, 'k' pending key. */
    std::string stack_;
};

/** Fixed-precision double formatting. */
std::string fmtDouble(double v, int precision = 2);

/** Percentage with sign, e.g. "+13.2%". */
std::string fmtPct(double fraction, int precision = 1);

} // namespace asf::harness

#endif // ASF_HARNESS_REPORT_HH
