/**
 * @file
 * Report formatting: aligned ASCII tables for terminals and CSV rows for
 * post-processing, used by every bench binary.
 */

#ifndef ASF_HARNESS_REPORT_HH
#define ASF_HARNESS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace asf::harness
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Aligned ASCII rendering. */
    void print(std::ostream &os) const;

    /** Comma-separated rendering (header + rows). */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fixed-precision double formatting. */
std::string fmtDouble(double v, int precision = 2);

/** Percentage with sign, e.g. "+13.2%". */
std::string fmtPct(double fraction, int precision = 1);

} // namespace asf::harness

#endif // ASF_HARNESS_REPORT_HH
