#include "harness/heartbeat.hh"

#include <chrono>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/logging.hh"
#include "sys/config.hh"

namespace asf::harness
{

namespace
{

std::string &
heartbeatPathRef()
{
    static std::string path;
    return path;
}

thread_local SweepHeartbeat *activeHb = nullptr;
thread_local size_t activeHbJob = 0;

/** JSON string escaping for labels/status (they may carry quotes from
 *  validation errors). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20)
                out += format("\\u%04x", unsigned(uint8_t(c)));
            else
                out += c;
        }
    }
    return out;
}

} // namespace

uint64_t
fnv1aHash(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

SweepHeartbeat::SweepHeartbeat(std::string path, size_t total_jobs,
                               unsigned period_ms)
    : path_(std::move(path)), periodMs_(period_ms ? period_ms : 1)
{
    jobs_.reserve(total_jobs);
    for (size_t i = 0; i < total_jobs; i++)
        jobs_.push_back(std::make_unique<Job>());
    file_.open(path_, std::ios::trunc);
    if (!file_)
        warn("cannot write sweep heartbeat to '%s'", path_.c_str());
    startedAt_ = nowSeconds();
    writeLine(format("{\"event\":\"sweep-start\",\"t\":%.3f,"
                     "\"total\":%zu}",
                     startedAt_, total_jobs));
    writer_ = std::thread([this] { writerLoop(); });
}

SweepHeartbeat::~SweepHeartbeat()
{
    {
        std::lock_guard<std::mutex> lock(wakeMu_);
        stopping_ = true;
    }
    wake_.notify_all();
    if (writer_.joinable())
        writer_.join();
    double t = nowSeconds();
    writeLine(format("{\"event\":\"sweep-end\",\"t\":%.3f,"
                     "\"done\":%zu,\"total\":%zu,"
                     "\"elapsedSeconds\":%.3f}",
                     t, done_.load(), jobs_.size(), t - startedAt_));
}

double
SweepHeartbeat::nowSeconds() const
{
    using namespace std::chrono;
    return duration<double>(system_clock::now().time_since_epoch())
        .count();
}

void
SweepHeartbeat::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    file_ << line << '\n';
    file_.flush(); // the whole point is mid-flight visibility
}

void
SweepHeartbeat::jobStarted(size_t job, const std::string &label,
                           uint64_t config_hash)
{
    if (job >= jobs_.size())
        return;
    Job &j = *jobs_[job];
    {
        std::lock_guard<std::mutex> lock(mu_);
        j.label = label;
        j.configHash = config_hash;
    }
    j.state.store(JobState::Running, std::memory_order_release);
    writeLine(format("{\"event\":\"job-start\",\"t\":%.3f,"
                     "\"job\":%zu,\"label\":\"%s\","
                     "\"configHash\":\"%016llx\"}",
                     nowSeconds(), job, jsonEscape(label).c_str(),
                     (unsigned long long)config_hash));
}

std::atomic<uint64_t> *
SweepHeartbeat::cyclesSlot(size_t job)
{
    return job < jobs_.size() ? &jobs_[job]->cycles : nullptr;
}

void
SweepHeartbeat::jobFinished(size_t job, Tick cycles, bool valid,
                            bool watchdog_fired,
                            const std::string &status)
{
    if (job >= jobs_.size())
        return;
    Job &j = *jobs_[job];
    j.cycles.store(cycles, std::memory_order_relaxed);
    j.state.store(JobState::Done, std::memory_order_release);
    done_.fetch_add(1, std::memory_order_relaxed);
    writeLine(format("{\"event\":\"job-end\",\"t\":%.3f,\"job\":%zu,"
                     "\"cycles\":%llu,\"valid\":%s,\"watchdog\":%s,"
                     "\"status\":\"%s\"}",
                     nowSeconds(), job, (unsigned long long)cycles,
                     valid ? "true" : "false",
                     watchdog_fired ? "true" : "false",
                     jsonEscape(status).c_str()));
}

void
SweepHeartbeat::writeProgress()
{
    double t = nowSeconds();
    size_t done = done_.load(std::memory_order_relaxed);
    size_t total = jobs_.size();
    // Naive completed-jobs ETA; good enough for "is it stuck?".
    std::string eta = "null";
    if (done > 0 && done < total) {
        double per_job = (t - startedAt_) / double(done);
        eta = format("%.1f", per_job * double(total - done));
    }
    std::string active;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < jobs_.size(); i++) {
            Job &j = *jobs_[i];
            if (j.state.load(std::memory_order_acquire) !=
                JobState::Running)
                continue;
            if (!active.empty())
                active += ",";
            active += format(
                "{\"job\":%zu,\"label\":\"%s\","
                "\"configHash\":\"%016llx\",\"cycles\":%llu}",
                i, jsonEscape(j.label).c_str(),
                (unsigned long long)j.configHash,
                (unsigned long long)j.cycles.load(
                    std::memory_order_relaxed));
        }
    }
    writeLine(format("{\"event\":\"progress\",\"t\":%.3f,"
                     "\"done\":%zu,\"total\":%zu,\"etaSeconds\":%s,"
                     "\"active\":[%s]}",
                     t, done, total, eta.c_str(), active.c_str()));
}

void
SweepHeartbeat::writerLoop()
{
    std::unique_lock<std::mutex> lock(wakeMu_);
    while (!stopping_) {
        wake_.wait_for(lock, std::chrono::milliseconds(periodMs_));
        if (stopping_)
            break;
        lock.unlock();
        writeProgress();
        lock.lock();
    }
}

void
setHeartbeatPath(const std::string &path)
{
    heartbeatPathRef() = resolveObsPath(path);
}

const std::string &
heartbeatPath()
{
    return heartbeatPathRef();
}

ScopedHeartbeatJob::ScopedHeartbeatJob(SweepHeartbeat *hb, size_t job)
    : prevHb_(activeHb), prevJob_(activeHbJob)
{
    activeHb = hb;
    activeHbJob = job;
}

ScopedHeartbeatJob::~ScopedHeartbeatJob()
{
    activeHb = prevHb_;
    activeHbJob = prevJob_;
}

SweepHeartbeat *
activeHeartbeat(size_t &job_out)
{
    job_out = activeHbJob;
    return activeHb;
}

void
heartbeatBindRun(SystemConfig &cfg, const std::string &label)
{
    if (!activeHb)
        return;
    cfg.progressSink = activeHb->cyclesSlot(activeHbJob);
    if (cfg.progressSink)
        cfg.progressSink->store(0, std::memory_order_relaxed);
    activeHb->jobStarted(activeHbJob, label,
                         fnv1aHash(label + "|" + cfg.summary()));
}

} // namespace asf::harness
