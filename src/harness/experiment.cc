#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "analysis/corpus.hh"
#include "check/axioms.hh"
#include "harness/heartbeat.hh"
#include "harness/report.hh"
#include "runtime/marks.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf::harness
{

namespace
{

std::string &
statsJsonPathRef()
{
    static std::string path;
    return path;
}

std::vector<std::string> &
statsJsonRuns()
{
    static std::vector<std::string> runs;
    return runs;
}

/** Per-thread capture sink installed by ScopedRunCapture (sweeps). */
thread_local std::vector<std::string> *runCaptureSink = nullptr;

std::atomic<bool> fastForwardDefault{true};
std::atomic<bool> directExecDefault{true};
std::atomic<Tick> watchdogDefault{0};
std::atomic<bool> checkExecutionDefault{false};
std::atomic<Tick> statsIntervalDefault_{0};

std::string &
obsDirRef()
{
    static std::string dir;
    return dir;
}

std::string &
fenceProfilePathRef()
{
    static std::string path;
    return path;
}

/** Serializes raw-profile appends from parallel sweep jobs. */
std::mutex &
fenceProfileMutex()
{
    static std::mutex m;
    return m;
}

/** Append this run's raw per-fence records to the JSONL dump. */
void
appendFenceProfileRaw(System &sys)
{
    const std::string &path = fenceProfilePathRef();
    if (path.empty() || !sys.fenceProfiler())
        return;
    std::lock_guard<std::mutex> lock(fenceProfileMutex());
    static bool truncated = false;
    std::ofstream f(path, truncated ? std::ios::app : std::ios::trunc);
    if (!f) {
        warn("cannot write fence profile to '%s'", path.c_str());
        return;
    }
    truncated = true;
    sys.fenceProfiler()->dumpRawJsonl(f);
}

/** Run label like "fib/W+/8c": the trace process-row name and the
 *  heartbeat job label. */
std::string
runLabel(const std::string &workload, FenceDesign design, unsigned cores)
{
    return format("%s/%s/%uc", workload.c_str(), fenceDesignName(design),
                  cores);
}

/** One viewer process row per experiment. */
void
beginRunTrace(const std::string &label)
{
    ASF_TRACE(beginRun(label));
}

/** The SystemConfig fields every runner derives from the process-wide
 *  defaults. Runners may still adjust fields afterwards (synth forces
 *  checkExecution on) before heartbeatBindRun() hashes the summary. */
SystemConfig
baseRunConfig(FenceDesign design, unsigned cores)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.design = design;
    cfg.fastForward = fastForwardEnabled();
    cfg.directExec = directExecEnabled();
    cfg.watchdogCycles = watchdogCyclesDefault();
    cfg.fenceProfileRaw = !fenceProfilePath().empty();
    cfg.checkExecution = checkExecutionEnabled();
    cfg.statsInterval = statsIntervalDefault();
    return cfg;
}

/** Append this run's stats document to the log and rewrite the file. */
void
recordRun(System &sys, const ExperimentResult &r)
{
    appendFenceProfileRaw(sys);
    // A capture sink wants the document even when no log file is set
    // (the bytes may end up in a file chosen at merge time).
    if (statsJsonPathRef().empty() && !runCaptureSink)
        return;
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("workload", r.workload);
        w.field("design", fenceDesignName(r.design));
        w.field("cores", r.cores);
        w.field("cycles", uint64_t(r.cycles));
        w.field("valid", r.valid);
        if (!r.valid)
            w.field("validationError", r.validationError);
        if (!r.checkVerdict.empty())
            w.field("checkVerdict", r.checkVerdict);

        w.key("metrics").beginObject();
        w.field("tasks", r.tasks);
        w.field("steals", r.steals);
        w.field("commits", r.commits);
        w.field("aborts", r.aborts);
        w.field("instrRetired", r.instrRetired);
        w.field("fencesStrong", r.fencesStrong);
        w.field("fencesWeak", r.fencesWeak);
        w.field("weeDemotions", r.weeDemotions);
        w.field("bouncedWrites", r.bouncedWrites);
        w.field("retriesPerBouncedWrite", r.retriesPerBouncedWrite);
        w.field("bsLinesPerWf", r.bsLinesPerWf);
        w.field("wPlusRecoveries", r.wPlusRecoveries);
        w.field("loadSquashes", r.loadSquashes);
        w.field("bytesBase", r.bytesBase);
        w.field("bytesRetry", r.bytesRetry);
        w.field("bytesGrt", r.bytesGrt);
        w.field("throughputTxnPerKcycle", r.throughputTxnPerKcycle());
        w.field("trafficOverheadPct", r.trafficOverheadPct());
        w.endObject();

        w.key("breakdown").beginObject();
        w.field("busy", r.breakdown.busy);
        w.field("fenceStall", r.breakdown.fenceStall);
        w.field("otherStall", r.breakdown.otherStall);
        w.field("idle", r.breakdown.idle);
        for (unsigned i = 0; i < numStallBuckets; i++)
            w.field(stallBucketJsonKey(StallBucket(i)),
                    r.breakdown.stall[i]);
        w.endObject();

        std::ostringstream sys_json;
        sys.dumpStatsJson(sys_json);
        std::string doc = sys_json.str();
        while (!doc.empty() && doc.back() == '\n')
            doc.pop_back();
        w.key("system").raw(doc);
        w.endObject();
    }
    if (runCaptureSink) {
        runCaptureSink->push_back(os.str());
        return;
    }
    statsJsonRuns().push_back(os.str());
    flushStatsJson();
}

} // namespace

ScopedRunCapture::ScopedRunCapture(std::vector<std::string> &sink)
    : prev_(runCaptureSink)
{
    runCaptureSink = &sink;
}

ScopedRunCapture::~ScopedRunCapture()
{
    runCaptureSink = prev_;
}

void
appendStatsJsonRuns(std::vector<std::string> docs)
{
    if (docs.empty())
        return;
    // A capture on the merging thread intercepts the whole batch: this
    // lets an outer capture observe a sweep's merged output (nested
    // sweeps, tests) without touching the global log.
    if (runCaptureSink) {
        for (auto &d : docs)
            runCaptureSink->push_back(std::move(d));
        return;
    }
    // No log file configured: drop the batch instead of accumulating
    // documents that can never be written.
    if (statsJsonPathRef().empty())
        return;
    auto &runs = statsJsonRuns();
    for (auto &d : docs)
        runs.push_back(std::move(d));
    flushStatsJson();
}

void
setFastForwardEnabled(bool on)
{
    fastForwardDefault.store(on, std::memory_order_relaxed);
}

void
setDirectExecEnabled(bool on)
{
    directExecDefault.store(on, std::memory_order_relaxed);
}

bool
directExecEnabled()
{
    return directExecDefault.load(std::memory_order_relaxed);
}

bool
fastForwardEnabled()
{
    return fastForwardDefault.load(std::memory_order_relaxed);
}

void
setCheckExecutionEnabled(bool on)
{
    checkExecutionDefault.store(on, std::memory_order_relaxed);
}

bool
checkExecutionEnabled()
{
    return checkExecutionDefault.load(std::memory_order_relaxed);
}

void
setWatchdogCyclesDefault(Tick cycles)
{
    watchdogDefault.store(cycles, std::memory_order_relaxed);
}

Tick
watchdogCyclesDefault()
{
    return watchdogDefault.load(std::memory_order_relaxed);
}

void
setStatsIntervalDefault(Tick interval)
{
    statsIntervalDefault_.store(interval, std::memory_order_relaxed);
}

Tick
statsIntervalDefault()
{
    return statsIntervalDefault_.load(std::memory_order_relaxed);
}

void
setObsDir(const std::string &dir)
{
    obsDirRef() = dir;
}

const std::string &
obsDir()
{
    return obsDirRef();
}

std::string
resolveObsPath(const std::string &path)
{
    const std::string &dir = obsDirRef();
    if (path.empty() || dir.empty() ||
        std::filesystem::path(path).is_absolute())
        return path;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        warn("cannot create obs dir '%s': %s", dir.c_str(),
             ec.message().c_str());
    return (std::filesystem::path(dir) / path).string();
}

void
setFenceProfilePath(const std::string &path)
{
    fenceProfilePathRef() = resolveObsPath(path);
}

const std::string &
fenceProfilePath()
{
    return fenceProfilePathRef();
}

void
setStatsJsonPath(const std::string &path)
{
    statsJsonPathRef() = resolveObsPath(path);
}

const std::string &
statsJsonPath()
{
    return statsJsonPathRef();
}

void
setTracePath(const std::string &path)
{
    Trace::get().open(resolveObsPath(path));
}

void
flushStatsJson()
{
    const std::string &path = statsJsonPathRef();
    if (path.empty())
        return;
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        warn("cannot write stats JSON to '%s'", path.c_str());
        return;
    }
    f << "{\"schemaVersion\":4,\"runs\":[";
    const auto &runs = statsJsonRuns();
    for (size_t i = 0; i < runs.size(); i++)
        f << (i ? ",\n" : "\n") << runs[i];
    f << "\n]}\n";
}

double
ExperimentResult::throughputTxnPerKcycle() const
{
    return cycles ? 1000.0 * double(commits) / double(cycles) : 0.0;
}

double
ExperimentResult::trafficOverheadPct() const
{
    uint64_t base = bytesBase;
    return base ? 100.0 * double(bytesRetry + bytesGrt) / double(base)
                : 0.0;
}

double
ExperimentResult::fencesPer1000Instr(uint64_t count) const
{
    return instrRetired ? 1000.0 * double(count) / double(instrRetired)
                        : 0.0;
}

void
harvestStats(System &sys, ExperimentResult &r)
{
    r.cores = sys.numCores();
    r.breakdown = sys.breakdown();
    r.instrRetired = sys.totalInstrRetired();
    r.watchdogFired = sys.watchdogFired();

    r.tasks = sys.guestCounter(marks::taskDone);
    r.steals = sys.guestCounter(marks::taskStolen);
    r.commits = sys.guestCounter(marks::txCommit);
    r.commitsRw = sys.guestCounter(workloads::markTxCommitRw);
    r.aborts = sys.guestCounter(marks::txAbort);

    uint64_t bs_samples = 0;
    double bs_sum = 0.0;
    uint64_t retry_samples = 0;
    double retry_sum = 0.0;
    for (unsigned i = 0; i < sys.numCores(); i++) {
        const StatGroup &cs = sys.core(NodeId(i)).stats();
        r.fencesStrong += cs.get("fencesStrong");
        r.fencesWeak += cs.get("fencesWeak") + cs.get("fencesWee");
        r.weeDemotions += cs.get("weeMultiModuleDemotions") +
                          cs.get("weeWatchdogDemotions");
        r.bouncedWrites += cs.get("bouncedWrites");
        r.wPlusRecoveries += cs.get("wPlusRecoveries");
        r.loadSquashes += cs.get("loadSquashes");
        // Merge the per-core averages weighted by sample count.
        StatGroup &mut = sys.core(NodeId(i)).stats();
        bs_samples += mut.average("bsLinesPerWf").count();
        bs_sum += mut.average("bsLinesPerWf").sum();
        retry_samples += mut.average("retriesPerBouncedWrite").count();
        retry_sum += mut.average("retriesPerBouncedWrite").sum();
    }
    r.bsLinesPerWf = bs_samples ? bs_sum / double(bs_samples) : 0.0;
    r.retriesPerBouncedWrite =
        retry_samples ? retry_sum / double(retry_samples) : 0.0;

    const StatGroup &ns = sys.mesh().stats();
    r.bytesBase = ns.get("bytesBase");
    r.bytesRetry = ns.get("bytesRetry");
    r.bytesGrt = ns.get("bytesGrt");

    if (const check::ExecutionRecorder *rec = sys.executionRecorder())
        r.checkVerdict =
            check::verdictName(check::checkExecution(*rec).verdict);
}

ExperimentResult
runCilkExperiment(const workloads::CilkApp &app, FenceDesign design,
                  unsigned cores, Tick max_cycles,
                  std::ostream *stats_out)
{
    std::string label = runLabel(app.name, design, cores);
    beginRunTrace(label);
    SystemConfig cfg = baseRunConfig(design, cores);
    heartbeatBindRun(cfg, label);
    System sys(cfg);
    auto setup = workloads::setupCilkApp(sys, app);

    ExperimentResult r;
    r.workload = app.name;
    r.design = design;

    auto result = sys.run(max_cycles);
    r.cycles = sys.now();
    harvestStats(sys, r);
    if (stats_out)
        sys.dumpStats(*stats_out);

    if (result == System::RunResult::Watchdog) {
        r.validationError = "livelock watchdog fired (no forward progress)";
    } else if (result != System::RunResult::AllDone) {
        r.validationError = "did not finish within the cycle budget";
    } else if (r.tasks != setup.expectedTasks) {
        r.validationError =
            format("executed %llu tasks, expected %llu (SC violation or "
                   "lost/duplicated task)",
                   (unsigned long long)r.tasks,
                   (unsigned long long)setup.expectedTasks);
    } else {
        r.valid = true;
    }
    recordRun(sys, r);
    return r;
}

namespace
{

/** Shared TLRW validation: lock-protected increments must balance. */
void
validateTlrw(System &sys, const workloads::TlrwBench &bench,
             const workloads::TlrwSetup &setup, bool exact,
             ExperimentResult &r)
{
    uint64_t sum = workloads::sumTlrwData(sys, setup);
    uint64_t expect = uint64_t(bench.writesRw) * r.commitsRw;
    // Mid-run snapshots race the protocol. The observable sum may UNDER-
    // count by any amount (a dirty line in flight inside an InvAck hides
    // every increment it accumulated), so only drained runs check the
    // lower bound. Overcounting is bounded by the in-flight transactions
    // (unmarked increments), one per core.
    uint64_t slack =
        exact ? 0 : uint64_t(bench.writesRw) * sys.numCores();
    uint64_t lower = exact ? expect : 0;
    if (sum < lower || sum > expect + slack) {
        r.validationError = format(
            "data sum %llu outside [%llu, %llu]: serializability broken",
            (unsigned long long)sum, (unsigned long long)lower,
            (unsigned long long)(expect + slack));
    } else {
        r.valid = true;
    }
}

} // namespace

ExperimentResult
runUstmExperiment(const workloads::TlrwBench &bench, FenceDesign design,
                  unsigned cores, Tick run_cycles,
                  std::ostream *stats_out)
{
    std::string label = runLabel(bench.name, design, cores);
    beginRunTrace(label);
    SystemConfig cfg = baseRunConfig(design, cores);
    heartbeatBindRun(cfg, label);
    System sys(cfg);
    auto setup = workloads::setupTlrwWorkload(sys, bench, 0);

    ExperimentResult r;
    r.workload = bench.name;
    r.design = design;

    auto result = sys.run(run_cycles);
    r.cycles = sys.now();
    harvestStats(sys, r);
    if (stats_out)
        sys.dumpStats(*stats_out);
    if (result == System::RunResult::Watchdog) {
        r.validationError = "livelock watchdog fired (no forward progress)";
        recordRun(sys, r);
        return r;
    }
    // In-flight transactions may have performed their increments but not
    // yet reached the commit mark, hence the per-thread slack.
    validateTlrw(sys, bench, setup, false, r);
    recordRun(sys, r);
    return r;
}

ExperimentResult
runStampExperiment(const workloads::StampApp &app, FenceDesign design,
                   unsigned cores, Tick max_cycles,
                   std::ostream *stats_out)
{
    std::string label = runLabel(app.bench.name, design, cores);
    beginRunTrace(label);
    SystemConfig cfg = baseRunConfig(design, cores);
    heartbeatBindRun(cfg, label);
    System sys(cfg);
    auto setup = workloads::setupTlrwWorkload(sys, app.bench,
                                              app.txnsPerThread);

    ExperimentResult r;
    r.workload = app.bench.name;
    r.design = design;

    auto result = sys.run(max_cycles);
    r.cycles = sys.now();
    harvestStats(sys, r);
    if (stats_out)
        sys.dumpStats(*stats_out);

    uint64_t expected_commits =
        uint64_t(app.txnsPerThread) * sys.numCores();
    if (result == System::RunResult::Watchdog) {
        r.validationError = "livelock watchdog fired (no forward progress)";
    } else if (result != System::RunResult::AllDone) {
        r.validationError = "did not finish within the cycle budget";
    } else if (r.commits != expected_commits) {
        r.validationError =
            format("committed %llu txns, expected %llu",
                   (unsigned long long)r.commits,
                   (unsigned long long)expected_commits);
    } else {
        validateTlrw(sys, app.bench, setup, true, r);
    }
    recordRun(sys, r);
    return r;
}

ExperimentResult
runSynthExperiment(const std::string &kit, FenceDesign design,
                   bool minimize_placement, Tick max_cycles,
                   std::ostream *stats_out)
{
    analysis::CorpusEntry entry = analysis::buildCorpusEntry(kit);
    analysis::SynthResult synth = analysis::synthesize(entry.threads);

    std::vector<std::shared_ptr<const Program>> progs = synth.fenced;
    if (minimize_placement) {
        analysis::MinimizeResult min =
            analysis::minimize(synth, entry.minimizeOptions());
        progs = min.fenced;
    }

    unsigned cores =
        unsigned(std::max<size_t>(4, entry.threads.size()));
    std::string label = runLabel("synth:" + kit, design, cores);
    beginRunTrace(label);
    SystemConfig cfg = baseRunConfig(design, cores);
    // The verdict is the point of a synth run; checking is not optional.
    cfg.checkExecution = true;
    heartbeatBindRun(cfg, label);
    System sys(cfg);
    for (size_t t = 0; t < progs.size(); t++)
        sys.loadProgram(NodeId(t), progs[t]);
    if (entry.setup)
        entry.setup(sys);

    ExperimentResult r;
    r.workload = "synth:" + kit;
    r.design = design;

    auto result = sys.run(max_cycles ? max_cycles : entry.maxCycles);
    r.cycles = sys.now();
    harvestStats(sys, r);
    if (stats_out)
        sys.dumpStats(*stats_out);

    // Delay-set covered placements must look SC, not merely TSO
    // (Shasha-Snir) - re-check with the kit's property mode and let
    // that verdict replace harvestStats()'s default-TSO one.
    std::string axiom;
    if (const check::ExecutionRecorder *rec = sys.executionRecorder()) {
        check::CheckOptions copt;
        copt.requireSc =
            entry.property == analysis::MinimizeProperty::ScEquivalence;
        check::CheckResult cr = check::checkExecution(*rec, copt);
        r.checkVerdict = check::verdictName(cr.verdict);
        if (cr.verdict == check::Verdict::Violation)
            axiom = cr.axiom;
    }

    if (result == System::RunResult::Watchdog) {
        r.validationError = "livelock watchdog fired (no forward progress)";
    } else if (result != System::RunResult::AllDone) {
        r.validationError = "did not finish within the cycle budget";
    } else if (!axiom.empty()) {
        r.validationError =
            format("axiomatic checker violation: %s", axiom.c_str());
    } else if (entry.invariant && !entry.invariant(sys)) {
        r.validationError = "functional invariant does not hold";
    } else {
        r.valid = true;
    }
    recordRun(sys, r);
    return r;
}

} // namespace asf::harness
