/**
 * @file
 * Live sweep telemetry: a JSONL heartbeat file that makes a multi-hour
 * `--jobs N` campaign observable mid-flight. The sweep runner opens one
 * SweepHeartbeat per campaign; every job emits `job-start` / `job-end`
 * lines, and a background writer thread appends periodic `progress`
 * lines with the per-job live cycle counts (published lock-free from
 * inside System::run via SystemConfig::progressSink) and a wall-clock
 * ETA. `tools/sweep_status.py` renders the file.
 *
 * All of it is host-side: the simulation never reads the heartbeat
 * state, so results are byte-identical with it on or off (same
 * argument as the sweep runner itself).
 */

#ifndef ASF_HARNESS_HEARTBEAT_HH
#define ASF_HARNESS_HEARTBEAT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/types.hh"

namespace asf
{
struct SystemConfig;
}

namespace asf::harness
{

/** FNV-1a over `s`, the config-hash primitive of the heartbeat (and of
 *  result caching later: same hash == same configuration). */
uint64_t fnv1aHash(const std::string &s);

class SweepHeartbeat
{
  public:
    /** Truncates `path` and emits the `sweep-start` line. The writer
     *  thread appends a `progress` line every `period_ms`. */
    SweepHeartbeat(std::string path, size_t total_jobs,
                   unsigned period_ms = 200);
    /** Emits the final `sweep-end` line and joins the writer. */
    ~SweepHeartbeat();

    SweepHeartbeat(const SweepHeartbeat &) = delete;
    SweepHeartbeat &operator=(const SweepHeartbeat &) = delete;

    /** Job `job` began running configuration `label` (hash of the full
     *  config summary in `config_hash`); emits `job-start`. */
    void jobStarted(size_t job, const std::string &label,
                    uint64_t config_hash);

    /** The live cycle slot System::run publishes into
     *  (SystemConfig::progressSink). */
    std::atomic<uint64_t> *cyclesSlot(size_t job);

    /** Job `job` finished; emits `job-end`. `status` is "ok" or the
     *  validation error. */
    void jobFinished(size_t job, Tick cycles, bool valid,
                     bool watchdog_fired, const std::string &status);

  private:
    enum class JobState : uint8_t
    {
        Pending,
        Running,
        Done,
    };

    struct Job
    {
        std::atomic<uint64_t> cycles{0};
        std::atomic<JobState> state{JobState::Pending};
        std::string label;       ///< guarded by mu_
        uint64_t configHash = 0; ///< guarded by mu_
    };

    void writeLine(const std::string &line);
    void writeProgress();
    void writerLoop();
    double nowSeconds() const;

    std::string path_;
    std::vector<std::unique_ptr<Job>> jobs_;
    std::atomic<size_t> done_{0};
    std::mutex mu_; ///< file appends + label/hash access
    std::ofstream file_;
    double startedAt_ = 0.0;
    unsigned periodMs_;
    std::mutex wakeMu_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::thread writer_;
};

// --- process-global wiring (mirrors the stats-JSON globals) -------------

/** Heartbeat JSONL path for subsequent sweeps (`--heartbeat`); resolved
 *  against the observability directory. Empty disables. */
void setHeartbeatPath(const std::string &path);
const std::string &heartbeatPath();

/**
 * While alive, binds the calling thread's experiment runs to heartbeat
 * job `job`: heartbeatBindRun() attaches their SystemConfig to the
 * job's live cycle slot. Installed by the sweep runner around each job.
 */
class ScopedHeartbeatJob
{
  public:
    ScopedHeartbeatJob(SweepHeartbeat *hb, size_t job);
    ~ScopedHeartbeatJob();
    ScopedHeartbeatJob(const ScopedHeartbeatJob &) = delete;
    ScopedHeartbeatJob &operator=(const ScopedHeartbeatJob &) = delete;

  private:
    SweepHeartbeat *prevHb_;
    size_t prevJob_;
};

/**
 * Called by the experiment runners once the run's SystemConfig is
 * final: when the calling thread has an active heartbeat job, points
 * cfg.progressSink at its live cycle slot and emits the `job-start`
 * line (config hash = FNV-1a of label + config summary). No-op
 * otherwise.
 */
void heartbeatBindRun(SystemConfig &cfg, const std::string &label);

/** The calling thread's active heartbeat, if any (sweep runner use). */
SweepHeartbeat *activeHeartbeat(size_t &job_out);

} // namespace asf::harness

#endif // ASF_HARNESS_HEARTBEAT_HH
