/**
 * @file
 * Experiment driver: builds a system with a given fence design and core
 * count, installs a workload, runs it, validates the functional result,
 * and collects the metrics the paper's figures and Table 4 report.
 */

#ifndef ASF_HARNESS_EXPERIMENT_HH
#define ASF_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "workloads/cilk_apps.hh"
#include "workloads/stamp.hh"
#include "workloads/ustm.hh"

namespace asf::harness
{

struct ExperimentResult
{
    std::string workload;
    FenceDesign design = FenceDesign::SPlus;
    unsigned cores = 0;

    /** Wall-clock cycles of the measured region. */
    Tick cycles = 0;
    CycleBreakdown breakdown;

    // Guest-visible progress.
    uint64_t tasks = 0;
    uint64_t steals = 0;
    uint64_t commits = 0;
    uint64_t commitsRw = 0;
    uint64_t aborts = 0;

    // Fence characterization (Table 4).
    uint64_t instrRetired = 0;
    uint64_t fencesStrong = 0;
    uint64_t fencesWeak = 0; ///< weak + wee-weak
    uint64_t weeDemotions = 0; ///< multi-module + watchdog demotions
    uint64_t bouncedWrites = 0;
    double retriesPerBouncedWrite = 0.0;
    double bsLinesPerWf = 0.0;
    uint64_t wPlusRecoveries = 0;
    uint64_t loadSquashes = 0;

    // Network traffic.
    uint64_t bytesBase = 0;
    uint64_t bytesRetry = 0;
    uint64_t bytesGrt = 0;

    bool valid = false;
    std::string validationError;

    /** True when the run was aborted by the livelock watchdog (also
     *  reflected in validationError; split out for sweep telemetry). */
    bool watchdogFired = false;

    /** Execution-checker verdict ("pass" / "violation" /
     *  "inconclusive"); empty when checking was off. */
    std::string checkVerdict;

    double throughputTxnPerKcycle() const;
    double trafficOverheadPct() const;
    double fencesPer1000Instr(uint64_t count) const;
};

/** Run one Cilk app to completion. `stats_out`, if set, receives a
 *  full System::dumpStats() dump before the system is torn down. */
ExperimentResult runCilkExperiment(const workloads::CilkApp &app,
                                   FenceDesign design, unsigned cores,
                                   Tick max_cycles = 30'000'000,
                                   std::ostream *stats_out = nullptr);

/** Run one ustm microbenchmark for a fixed cycle budget (throughput). */
ExperimentResult runUstmExperiment(const workloads::TlrwBench &bench,
                                   FenceDesign design, unsigned cores,
                                   Tick run_cycles = 300'000,
                                   std::ostream *stats_out = nullptr);

/** Run one STAMP app to completion (fixed transactions per thread). */
ExperimentResult runStampExperiment(const workloads::StampApp &app,
                                    FenceDesign design, unsigned cores,
                                    Tick max_cycles = 30'000'000,
                                    std::ostream *stats_out = nullptr);

/**
 * Synthesize fences for one synthesis-corpus kit (see
 * analysis::corpusNames()), optionally minimize the placement with the
 * checker in the loop, then run the final fenced programs under
 * `design` with execution checking forced on. `valid` requires the run
 * to finish, the axiomatic checker to pass (full SC for
 * ScEquivalence-mode kits), and the kit's functional invariant to
 * hold. `max_cycles = 0` uses the kit's own budget.
 */
ExperimentResult runSynthExperiment(const std::string &kit,
                                    FenceDesign design,
                                    bool minimize_placement = true,
                                    Tick max_cycles = 0,
                                    std::ostream *stats_out = nullptr);

/** Shared post-run stat harvesting (exposed for tests). */
void harvestStats(System &sys, ExperimentResult &r);

// --- observability ------------------------------------------------------
/**
 * Record a machine-readable stats document for every subsequent
 * experiment run in this process and write the accumulated log
 * (`{"schemaVersion":4,"runs":[...]}`) to `path`. The file is rewritten
 * after every run, so a partial log survives an aborted sweep. Pass an
 * empty string to disable. See README.md "Observability".
 */
void setStatsJsonPath(const std::string &path);

/** Path set by setStatsJsonPath, or empty when disabled. */
const std::string &statsJsonPath();

/**
 * Record Chrome trace_event JSON (fence stalls, write-buffer drains,
 * W+ squashes, directory nacks/bounces, NoC link occupancy) for every
 * subsequent experiment into `path`; each run becomes one process row.
 * Flushed at normal process exit.
 */
void setTracePath(const std::string &path);

/** Rewrite the stats-JSON log now. No-op when no path is set. */
void flushStatsJson();

// --- sweep support ------------------------------------------------------
/**
 * While alive, experiment runs on the *calling thread* append their
 * stats-JSON documents to `sink` instead of the global log (and skip the
 * per-run file rewrite). The sweep runner gives each job its own sink
 * and merges them in job order afterwards, so a parallel sweep's log is
 * byte-identical to a serial one.
 */
class ScopedRunCapture
{
  public:
    explicit ScopedRunCapture(std::vector<std::string> &sink);
    ~ScopedRunCapture();
    ScopedRunCapture(const ScopedRunCapture &) = delete;
    ScopedRunCapture &operator=(const ScopedRunCapture &) = delete;

  private:
    std::vector<std::string> *prev_;
};

/** Append captured run documents to the global log and rewrite the file
 *  once. Call from one thread only (the sweep merge step). If the
 *  calling thread itself has a ScopedRunCapture installed, the batch is
 *  redirected there instead (nested capture). */
void appendStatsJsonRuns(std::vector<std::string> docs);

/**
 * Process-wide default for SystemConfig::fastForward, consulted by the
 * experiment runners (on unless turned off). `--no-fast-forward` A/B
 * switch; simulated results are bit-identical either way.
 */
void setFastForwardEnabled(bool on);
bool fastForwardEnabled();

/**
 * Process-wide default for SystemConfig::directExec, consulted by the
 * experiment runners (on unless turned off). `--no-direct-exec` A/B
 * switch; simulated results are bit-identical either way.
 */
void setDirectExecEnabled(bool on);
bool directExecEnabled();

/**
 * Process-wide default for SystemConfig::watchdogCycles, consulted by
 * the experiment runners. 0 (library default) disables; the bench
 * binaries set a large value so a livelocked configuration aborts with
 * a diagnostic snapshot instead of burning the whole cycle budget.
 */
void setWatchdogCyclesDefault(Tick cycles);
Tick watchdogCyclesDefault();

/**
 * Append every subsequent run's raw per-fence lifecycle records to
 * `path` as JSON lines (`--fence-profile`; see README.md
 * "Observability"). The first write truncates the file. Empty string
 * disables. Implies SystemConfig::fenceProfileRaw for runs started
 * after the call.
 */
void setFenceProfilePath(const std::string &path);
const std::string &fenceProfilePath();

/**
 * Process-wide default for SystemConfig::checkExecution, consulted by
 * the experiment runners (`--check`). When on, every run records its
 * shared-memory events and the stats documents carry a `check` block
 * with the axiomatic verdict; ExperimentResult::checkVerdict summarizes
 * it. Observation-only: cycles and all other statistics are
 * bit-identical either way.
 */
void setCheckExecutionEnabled(bool on);
bool checkExecutionEnabled();

/**
 * Process-wide default for SystemConfig::statsInterval, consulted by
 * the experiment runners (`--stats-interval`). 0 (the default)
 * disables the interval time-series; any other value snapshots the
 * contention counters every N cycles into the stats documents'
 * `timeline` block. Observation-only: cycles and cumulative stats are
 * bit-identical with it on or off (tests/sim/test_interval_stats.cc).
 */
void setStatsIntervalDefault(Tick interval);
Tick statsIntervalDefault();

/**
 * Observability output directory (`--obs-dir`). When set, every
 * relative path later handed to setStatsJsonPath / setTracePath /
 * setFenceProfilePath / setHeartbeatPath is resolved under it (the
 * directory is created on demand); absolute paths pass through
 * untouched. Lets one flag co-locate an entire campaign's artifacts.
 */
void setObsDir(const std::string &dir);
const std::string &obsDir();

/** Apply the obs-dir policy above to `path` (exposed for the setters
 *  that live outside this file, e.g. setHeartbeatPath). */
std::string resolveObsPath(const std::string &path);

} // namespace asf::harness

#endif // ASF_HARNESS_EXPERIMENT_HH
