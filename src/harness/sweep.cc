#include "harness/sweep.hh"

#include <atomic>
#include <memory>
#include <thread>

#include "harness/heartbeat.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf::harness
{

std::vector<ExperimentResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned num_threads)
{
    size_t n = jobs.size();
    std::vector<ExperimentResult> results(n);
    // Per-job stats-JSON documents, merged in job order below so the log
    // file does not depend on completion order.
    std::vector<std::vector<std::string>> docs(n);

    if (num_threads > 1 && Trace::get().enabled()) {
        warn("tracing is process-global; running the sweep with 1 job");
        num_threads = 1;
    }
    if (num_threads < 1)
        num_threads = 1;
    if (size_t(num_threads) > n)
        num_threads = unsigned(n);

    // Live campaign telemetry (--heartbeat): one JSONL file for the
    // whole sweep, updated as jobs start/finish and while they run.
    std::unique_ptr<SweepHeartbeat> hb;
    if (!heartbeatPath().empty())
        hb = std::make_unique<SweepHeartbeat>(heartbeatPath(), n);

    auto run_one = [&](size_t i) {
        ScopedRunCapture capture(docs[i]);
        ScopedHeartbeatJob hb_job(hb.get(), i);
        results[i] = jobs[i]();
        if (hb)
            hb->jobFinished(i, results[i].cycles, results[i].valid,
                            results[i].watchdogFired,
                            results[i].valid
                                ? "ok"
                                : results[i].validationError);
    };

    if (num_threads <= 1) {
        // Same capture-and-merge path as the parallel case, so the two
        // produce byte-identical stats-JSON logs.
        for (size_t i = 0; i < n; i++)
            run_one(i);
    } else {
        std::atomic<size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (unsigned t = 0; t < num_threads; t++)
            pool.emplace_back([&] {
                for (size_t i; (i = next.fetch_add(1)) < n;)
                    run_one(i);
            });
        for (auto &th : pool)
            th.join();
    }

    std::vector<std::string> merged;
    for (auto &d : docs)
        for (auto &doc : d)
            merged.push_back(std::move(doc));
    appendStatsJsonRuns(std::move(merged));
    return results;
}

} // namespace asf::harness
