/**
 * @file
 * Parallel sweep runner: runs independent experiment configurations on a
 * pool of host worker threads. Each job owns its System (and therefore
 * its Rng, event queue, and statistics), so jobs never share simulated
 * state; the only process-global the harness touches — the stats-JSON
 * run log — is captured per job and merged in job order on the calling
 * thread. A sweep's outputs (returned results, stats-JSON file) are
 * therefore byte-identical for any thread count, `--jobs 1` included.
 *
 * One caveat: with a sweep, the stats-JSON file is written once at merge
 * time rather than rewritten after every run, so an aborted sweep leaves
 * no partial log.
 */

#ifndef ASF_HARNESS_SWEEP_HH
#define ASF_HARNESS_SWEEP_HH

#include <functional>
#include <vector>

#include "harness/experiment.hh"

namespace asf::harness
{

/** One sweep unit: builds, runs, and summarizes one configuration. */
using SweepJob = std::function<ExperimentResult()>;

/**
 * Run every job and return their results in job order. `num_threads` is
 * the host worker count (clamped to [1, jobs.size()]); 1 runs inline on
 * the calling thread. Chrome tracing is process-global, so an enabled
 * trace forces the serial path (with a warning).
 */
std::vector<ExperimentResult> runSweep(const std::vector<SweepJob> &jobs,
                                       unsigned num_threads);

} // namespace asf::harness

#endif // ASF_HARNESS_SWEEP_HH
