#include "harness/report.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf::harness
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row with %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); c++) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); c++)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); c++) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

JsonWriter::JsonWriter(std::ostream &os) : os_(os)
{
}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        warn("JsonWriter destroyed with %zu open containers",
             stack_.size());
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty())
        return;
    char top = stack_.back();
    switch (top) {
      case 'k':
        stack_.pop_back(); // the pending key is consumed by this value
        return;
      case 'a':
        stack_.back() = 'A';
        return;
      case 'A':
        os_ << ',';
        return;
      case 'o':
      case 'O':
        panic("JsonWriter: value inside an object without a key");
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back('o');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || (stack_.back() != 'o' && stack_.back() != 'O'))
        panic("JsonWriter: endObject outside an object");
    stack_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back('a');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || (stack_.back() != 'a' && stack_.back() != 'A'))
        panic("JsonWriter: endArray outside an array");
    stack_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || (stack_.back() != 'o' && stack_.back() != 'O'))
        panic("JsonWriter: key '%s' outside an object", k.c_str());
    if (stack_.back() == 'O')
        os_ << ',';
    stack_.back() = 'O';
    os_ << '"' << jsonEscape(k) << "\":";
    stack_.push_back('k');
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (std::isnan(v) || std::isinf(v))
        os_ << "null";
    else
        os_ << format("%.17g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    beforeValue();
    os_ << json;
    return *this;
}

std::string
fmtDouble(double v, int precision)
{
    return format("%.*f", precision, v);
}

std::string
fmtPct(double fraction, int precision)
{
    return format("%+.*f%%", precision, fraction * 100.0);
}

} // namespace asf::harness
