#include "harness/report.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace asf::harness
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row with %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); c++) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); c++)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); c++) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int precision)
{
    return format("%.*f", precision, v);
}

std::string
fmtPct(double fraction, int precision)
{
    return format("%+.*f%%", precision, fraction * 100.0);
}

} // namespace asf::harness
