/**
 * @file
 * The shared-memory event vocabulary of the execution checker. One
 * Event is one architecturally-committed shared-memory action of one
 * thread: a delivered load (with the value it read), a retired store
 * (with its write-buffer sequence number and, once merged, its global
 * coherence stamp), a performed RMW, or an issued fence. Per-thread
 * event vectors in commit order ARE program order `po`; the coherence
 * stamps define `co` with no inference.
 */

#ifndef ASF_CHECK_EVENT_HH
#define ASF_CHECK_EVENT_HH

#include <cstdint>

#include "fence/fence_kind.hh"
#include "sim/types.hh"

namespace asf::check
{

enum class EvKind : uint8_t
{
    Load,
    Store,
    Rmw,
    Fence,
};

const char *evKindName(EvKind k);

struct Event
{
    EvKind kind = EvKind::Load;
    /** Guest PC of the instruction (before it retired). */
    uint64_t pc = 0;
    /** Word-aligned byte address (loads/stores/RMWs). */
    Addr addr = 0;
    /**
     * Load: the delivered value. Store: the written value. RMW: the
     * value written (CAS that failed writes nothing; `wrote` is false
     * and this holds the attempted value). Fence: unused.
     */
    uint64_t value = 0;
    /** RMW only: the value the atomic read (its load half). */
    uint64_t readValue = 0;
    /** Store only: this core's write-buffer sequence number. */
    uint64_t storeSeq = 0;
    /**
     * Store/RMW: position in the global per-line serialization order,
     * stamped when the write merges with the memory system (local
     * exclusive drain, DataX/AckX grant, or directory Order merge).
     * 0 = never merged (still buffered when the run ended).
     */
    uint64_t coStamp = 0;
    /**
     * Load only: when the value was forwarded from this core's own
     * write buffer, the storeSeq of the forwarding store; 0 when the
     * value came from the memory system. Makes internal `rf` exact.
     */
    uint64_t fwdSeq = 0;
    /** Simulated cycle at which the event committed. */
    Tick tick = 0;
    /** Fence only: resolved kind and per-core instance id. */
    FenceKind fence = FenceKind::Strong;
    uint64_t fenceId = 0;
    /** Fence only: completed instantly (empty write buffer). */
    bool instant = false;
    /** RMW only: the write half happened (XCHG, or CAS that hit). */
    bool wrote = false;
};

} // namespace asf::check

#endif // ASF_CHECK_EVENT_HH
