#include "check/batch.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace asf::check
{

std::string
BatchVerdict::evidence() const
{
    if (check.verdict == Verdict::Violation)
        return check.axiom;
    if (!invariantHeld)
        return "invariant";
    if (runResult == System::RunResult::Watchdog)
        return "watchdog";
    if (runResult == System::RunResult::MaxCycles)
        return "timeout";
    return "pass";
}

BatchVerdict
runCheckedExecution(const BatchRunSpec &spec)
{
    if (spec.programs.empty())
        fatal("runCheckedExecution: no programs");

    SystemConfig cfg;
    cfg.numCores = spec.cores
                       ? spec.cores
                       : std::max<unsigned>(4, spec.programs.size());
    if (cfg.numCores < spec.programs.size())
        fatal("runCheckedExecution: %zu programs but only %u cores",
              spec.programs.size(), cfg.numCores);
    cfg.design = spec.design;
    cfg.seed = spec.systemSeed;
    cfg.checkExecution = true;
    cfg.fenceProfile = false;
    cfg.watchdogCycles = spec.watchdogCycles;

    System sys(cfg);
    for (size_t i = 0; i < spec.programs.size(); i++)
        sys.loadProgram(NodeId(i), spec.programs[i]);
    if (spec.setup)
        spec.setup(sys);

    BatchVerdict v;
    v.runResult = sys.run(spec.maxCycles);
    v.check = checkExecution(*sys.executionRecorder(),
                             {.requireSc = spec.requireSc});
    if (spec.invariant)
        v.invariantHeld = spec.invariant(sys);
    return v;
}

} // namespace asf::check
