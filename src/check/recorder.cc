#include "check/recorder.hh"

#include "sim/logging.hh"

namespace asf::check
{

const char *
evKindName(EvKind k)
{
    switch (k) {
      case EvKind::Load:
        return "load";
      case EvKind::Store:
        return "store";
      case EvKind::Rmw:
        return "rmw";
      case EvKind::Fence:
        return "fence";
    }
    return "?";
}

ExecutionRecorder::ExecutionRecorder(unsigned num_threads)
    : threads_(num_threads)
{
}

void
ExecutionRecorder::onLoad(NodeId tid, uint64_t pc, Addr addr,
                          uint64_t value, uint64_t fwd_seq, Tick now)
{
    Event e;
    e.kind = EvKind::Load;
    e.pc = pc;
    e.addr = addr;
    e.value = value;
    e.fwdSeq = fwd_seq;
    e.tick = now;
    threads_.at(size_t(tid)).push_back(e);
    loads_++;
}

void
ExecutionRecorder::onStore(NodeId tid, uint64_t pc, Addr addr,
                           uint64_t value, uint64_t seq, Tick now)
{
    Event e;
    e.kind = EvKind::Store;
    e.pc = pc;
    e.addr = addr;
    e.value = value;
    e.storeSeq = seq;
    e.tick = now;
    auto &log = threads_.at(size_t(tid));
    pendingMerge_[{tid, seq}] = log.size();
    log.push_back(e);
    stores_++;
}

void
ExecutionRecorder::onRmw(NodeId tid, uint64_t pc, Addr addr,
                         uint64_t read_value, uint64_t written,
                         bool wrote, Tick now)
{
    Event e;
    e.kind = EvKind::Rmw;
    e.pc = pc;
    e.addr = addr;
    e.value = written;
    e.readValue = read_value;
    e.wrote = wrote;
    // Atomics hold the line exclusively and update it in place: the
    // perform instant is the write's global serialization point.
    if (wrote)
        e.coStamp = nextCoStamp_++;
    e.tick = now;
    threads_.at(size_t(tid)).push_back(e);
    rmws_++;
}

void
ExecutionRecorder::onFence(NodeId tid, uint64_t pc, FenceKind kind,
                           bool instant, uint64_t fence_id, Tick now)
{
    Event e;
    e.kind = EvKind::Fence;
    e.pc = pc;
    e.fence = kind;
    e.fenceId = fence_id;
    e.instant = instant;
    e.tick = now;
    auto &log = threads_.at(size_t(tid));
    if (!instant)
        fenceMark_[{tid, fence_id}] = log.size();
    log.push_back(e);
    fences_++;
}

void
ExecutionRecorder::onStoreMerged(NodeId tid, uint64_t seq)
{
    auto it = pendingMerge_.find({tid, seq});
    if (it == pendingMerge_.end())
        panic("recorder: merge of unrecorded store (tid %d seq %llu)",
              tid, (unsigned long long)seq);
    threads_.at(size_t(tid)).at(it->second).coStamp = nextCoStamp_++;
    pendingMerge_.erase(it);
}

void
ExecutionRecorder::onRecovery(NodeId tid, uint64_t fence_id,
                              uint64_t last_pre_store_seq)
{
    auto mark = fenceMark_.find({tid, fence_id});
    if (mark == fenceMark_.end())
        panic("recorder: recovery at unrecorded fence (tid %d id %llu)",
              tid, (unsigned long long)fence_id);
    auto &log = threads_.at(size_t(tid));
    size_t keep = mark->second + 1; // the fence itself survives
    for (size_t i = keep; i < log.size(); i++) {
        const Event &e = log[i];
        switch (e.kind) {
          case EvKind::Load:
            loads_--;
            break;
          case EvKind::Store:
            // Post-fence stores cannot issue before the fence's
            // pre-stores drain, so a squashed store never merged and
            // its coherence stamp never has to be rolled back.
            if (e.coStamp != 0)
                panic("recorder: squashing a merged store (tid %d "
                      "seq %llu)", tid,
                      (unsigned long long)e.storeSeq);
            stores_--;
            break;
          case EvKind::Rmw:
            rmws_--;
            break;
          case EvKind::Fence:
            fences_--;
            break;
        }
        squashed_++;
    }
    log.resize(keep);
    std::erase_if(pendingMerge_, [&](const auto &kv) {
        return kv.first.first == tid &&
               kv.first.second > last_pre_store_seq;
    });
    std::erase_if(fenceMark_, [&](const auto &kv) {
        return kv.first.first == tid && kv.second >= keep;
    });
}

uint64_t
ExecutionRecorder::eventsCaptured() const
{
    return loads_ + stores_ + rmws_ + fences_;
}

} // namespace asf::check
