#include "check/axioms.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

#include "harness/report.hh"
#include "sim/logging.hh"

namespace asf::check
{

namespace
{

enum EdgeKind : uint8_t
{
    EdgePo,    ///< preserved program order
    EdgeFence, ///< program order through a fence
    EdgeRf,    ///< reads-from (external in the global graph)
    EdgeCo,    ///< coherence order (adjacent pairs)
    EdgeFr,    ///< from-read
};

const char *
edgeKindName(uint8_t k)
{
    switch (k) {
      case EdgePo:
        return "po";
      case EdgeFence:
        return "fence";
      case EdgeRf:
        return "rf";
      case EdgeCo:
        return "co";
      case EdgeFr:
        return "fr";
    }
    return "?";
}

/** Adjacency list: succ[u] = {(v, edge kind), ...}. */
using Adj = std::vector<std::vector<std::pair<int, uint8_t>>>;
using Cycle = std::vector<std::pair<int, uint8_t>>;

/** Kahn peel; returns the nodes left over (empty iff acyclic). The
 *  residue is every node on or downstream of a cycle. */
std::vector<int>
kahnResidue(const Adj &succ)
{
    std::vector<int> indeg(succ.size(), 0);
    for (const auto &edges : succ)
        for (auto [v, k] : edges)
            indeg[v]++;
    std::deque<int> ready;
    for (size_t i = 0; i < succ.size(); i++)
        if (indeg[i] == 0)
            ready.push_back(int(i));
    size_t removed = 0;
    while (!ready.empty()) {
        int u = ready.front();
        ready.pop_front();
        removed++;
        for (auto [v, k] : succ[u])
            if (--indeg[v] == 0)
                ready.push_back(v);
    }
    std::vector<int> residue;
    if (removed == succ.size())
        return residue;
    for (size_t i = 0; i < succ.size(); i++)
        if (indeg[i] > 0)
            residue.push_back(int(i));
    return residue;
}

/** One concrete cycle within the residue subgraph (iterative DFS;
 *  the residue is guaranteed to contain one). Element i carries the
 *  kind of the edge leaving it toward element i+1 (wrapping). */
Cycle
findCycle(const Adj &succ, const std::vector<char> &in_res,
          const std::vector<int> &residue)
{
    std::vector<char> color(succ.size(), 0); // 0 white 1 gray 2 black
    std::vector<int> parent(succ.size(), -1);
    std::vector<uint8_t> parentEdge(succ.size(), 0);
    for (int root : residue) {
        if (color[root])
            continue;
        std::vector<std::pair<int, size_t>> stack{{root, 0}};
        color[root] = 1;
        while (!stack.empty()) {
            int u = stack.back().first;
            size_t i = stack.back().second;
            if (i >= succ[u].size()) {
                color[u] = 2;
                stack.pop_back();
                continue;
            }
            stack.back().second++;
            auto [v, k] = succ[u][i];
            if (!in_res[v])
                continue;
            if (color[v] == 1) {
                // Back edge u->v closes the cycle v ... u -> v.
                Cycle cyc;
                cyc.push_back({u, k});
                for (int w = u; w != v;) {
                    int p = parent[w];
                    cyc.push_back({p, parentEdge[w]});
                    w = p;
                }
                std::reverse(cyc.begin(), cyc.end());
                return cyc;
            }
            if (color[v] == 0) {
                color[v] = 1;
                parent[v] = u;
                parentEdge[v] = k;
                stack.push_back({v, 0});
            }
        }
    }
    return {};
}

/** Shortest cycle through `c` within the residue (BFS), or empty. */
Cycle
shortestCycleThrough(const Adj &succ, const std::vector<char> &in_res,
                     int c)
{
    std::vector<int> parent(succ.size(), -2); // -2 unvisited, -1 root
    std::vector<uint8_t> parentEdge(succ.size(), 0);
    std::deque<int> q;
    parent[c] = -1;
    q.push_back(c);
    while (!q.empty()) {
        int u = q.front();
        q.pop_front();
        for (auto [v, k] : succ[u]) {
            if (!in_res[v])
                continue;
            if (v == c) {
                Cycle cyc;
                cyc.push_back({u, k});
                for (int w = u; parent[w] != -1; w = parent[w])
                    cyc.push_back({parent[w], parentEdge[w]});
                std::reverse(cyc.begin(), cyc.end());
                return cyc;
            }
            if (parent[v] == -2) {
                parent[v] = u;
                parentEdge[v] = k;
                q.push_back(v);
            }
        }
    }
    return {};
}

/** How a read's source was resolved. */
struct ReadSrc
{
    bool isRead = false;   ///< load, or the read half of an RMW
    bool fromInit = false; ///< reads the 0 initial value
    bool ambiguous = false;
    int writer = -1; ///< source node, -1 when init/ambiguous
};

} // namespace

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Pass:
        return "pass";
      case Verdict::Violation:
        return "violation";
      case Verdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

CheckResult
checkExecution(const ExecutionRecorder &rec, const CheckOptions &opt)
{
    CheckResult res;
    res.scChecked = opt.requireSc;
    res.events = rec.eventsCaptured();
    res.loads = rec.loadsCaptured();
    res.stores = rec.storesCaptured();
    res.rmws = rec.rmwsCaptured();
    res.fences = rec.fencesCaptured();

    const auto &threads = rec.threads();

    // ---- flatten the per-thread logs into one node id space ----------
    std::vector<int> offset(threads.size() + 1, 0);
    for (size_t t = 0; t < threads.size(); t++)
        offset[t + 1] = offset[t] + int(threads[t].size());
    const int n = offset.back();
    std::vector<NodeId> nodeTid(n);
    std::vector<uint32_t> nodeIdx(n);
    for (size_t t = 0; t < threads.size(); t++)
        for (size_t i = 0; i < threads[t].size(); i++) {
            nodeTid[offset[t] + int(i)] = NodeId(t);
            nodeIdx[offset[t] + int(i)] = uint32_t(i);
        }
    auto eventAt = [&](int u) -> const Event & {
        return threads[size_t(nodeTid[u])][nodeIdx[u]];
    };
    auto isWriteEvent = [&](const Event &e) {
        return e.kind == EvKind::Store ||
               (e.kind == EvKind::Rmw && e.wrote);
    };

    auto makeWitness = [&](const Cycle &cyc) {
        for (auto [u, k] : cyc) {
            WitnessStep s;
            s.thread = nodeTid[u];
            s.index = nodeIdx[u];
            s.event = eventAt(u);
            s.edgeToNext = edgeKindName(k);
            res.witness.push_back(s);
        }
    };
    auto singleWitness = [&](int u, const char *edge = "") {
        WitnessStep s;
        s.thread = nodeTid[u];
        s.index = nodeIdx[u];
        s.event = eventAt(u);
        s.edgeToNext = edge;
        res.witness.push_back(s);
    };

    // ---- co: captured per-word serialization stamps ------------------
    std::map<Addr, std::vector<int>> co; // stamp-sorted write nodes
    std::map<std::pair<NodeId, uint64_t>, int> storeNode;
    std::map<std::pair<Addr, uint64_t>, std::vector<int>> writesByValue;
    for (int u = 0; u < n; u++) {
        const Event &e = eventAt(u);
        if (e.kind == EvKind::Store)
            storeNode[{nodeTid[u], e.storeSeq}] = u;
        if (isWriteEvent(e) && e.coStamp != 0) {
            co[e.addr].push_back(u);
            writesByValue[{e.addr, e.value}].push_back(u);
        }
    }
    for (auto &[addr, list] : co) {
        std::sort(list.begin(), list.end(), [&](int a, int b) {
            return eventAt(a).coStamp < eventAt(b).coStamp;
        });
        res.coEdges += list.size() ? list.size() - 1 : 0;
    }
    std::vector<int> coPos(n, -1); // position of a write in its line's co
    for (const auto &[addr, list] : co)
        for (size_t i = 0; i < list.size(); i++)
            coPos[list[i]] = int(i);

    // ---- rf: exact for forwarded loads and writing RMWs (their source
    // must be their own co-predecessor), value-matched for the rest ----
    std::vector<ReadSrc> src(n);
    auto resolveByValue = [&](int u, Addr addr, uint64_t v) -> bool {
        auto it = writesByValue.find({addr, v});
        size_t nwriters = it == writesByValue.end() ? 0 : it->second.size();
        size_t ncand = nwriters + (v == 0 ? 1 : 0); // 0 = initial value
        if (ncand == 0) {
            res.verdict = Verdict::Violation;
            res.axiom = "value-integrity";
            res.reason = format(
                "thread %d read %llu from addr %#llx, a value no "
                "write ever produced", nodeTid[u],
                (unsigned long long)v, (unsigned long long)addr);
            singleWitness(u);
            return false;
        }
        if (ncand > 1) {
            src[u].ambiguous = true;
            res.ambiguousReads++;
            return true;
        }
        if (nwriters == 1)
            src[u].writer = it->second.front();
        else
            src[u].fromInit = true;
        return true;
    };

    for (int u = 0; u < n; u++) {
        const Event &e = eventAt(u);
        if (e.kind == EvKind::Load) {
            src[u].isRead = true;
            if (e.fwdSeq != 0) {
                auto it = storeNode.find({nodeTid[u], e.fwdSeq});
                if (it == storeNode.end()) {
                    res.verdict = Verdict::Violation;
                    res.axiom = "value-integrity";
                    res.reason = format(
                        "thread %d forwarded from unrecorded store "
                        "seq %llu", nodeTid[u],
                        (unsigned long long)e.fwdSeq);
                    singleWitness(u);
                    return res;
                }
                src[u].writer = it->second;
            } else if (!resolveByValue(u, e.addr, e.value)) {
                return res;
            }
        } else if (e.kind == EvKind::Rmw) {
            src[u].isRead = true;
            if (e.wrote) {
                // Atomicity: the read half must have seen exactly the
                // immediate co-predecessor of the RMW's own write.
                const auto &list = co[e.addr];
                int pos = coPos[u];
                int pred = pos > 0 ? list[size_t(pos - 1)] : -1;
                uint64_t expect =
                    pred >= 0 ? eventAt(pred).value : 0;
                if (e.readValue != expect) {
                    res.verdict = Verdict::Violation;
                    res.axiom = "rmw-atomicity";
                    res.reason = format(
                        "thread %d atomic at addr %#llx read %llu but "
                        "its coherence predecessor wrote %llu: a write "
                        "intervened", nodeTid[u],
                        (unsigned long long)e.addr,
                        (unsigned long long)e.readValue,
                        (unsigned long long)expect);
                    if (pred >= 0)
                        singleWitness(pred, "co");
                    singleWitness(u);
                    return res;
                }
                if (pred >= 0)
                    src[u].writer = pred;
                else
                    src[u].fromInit = true;
            } else if (!resolveByValue(u, e.addr, e.readValue)) {
                return res;
            }
        }
    }

    // ---- edge construction -------------------------------------------
    // Coherence graph: po-loc U rf U co U fr. Every edge connects two
    // events on one address, so per-location SC reduces to one global
    // acyclicity check.
    Adj loc(n);
    // Global happens-before: ppo (po minus store->load) U fences U rfe
    // U co U fr; with requireSc, all of po.
    Adj ghb(n);
    auto addEdge = [](Adj &g, int u, int v, uint8_t k) {
        if (u != v)
            g[u].push_back({v, k});
    };

    for (size_t t = 0; t < threads.size(); t++) {
        int lastRead = -1, lastWrite = -1, prev = -1;
        std::map<Addr, int> lastAtAddr;
        for (size_t i = 0; i < threads[t].size(); i++) {
            int u = offset[t] + int(i);
            const Event &e = threads[t][i];
            auto label = [&](int from) -> uint8_t {
                return e.kind == EvKind::Fence ||
                               eventAt(from).kind == EvKind::Fence
                           ? EdgeFence
                           : EdgePo;
            };
            // TSO preserves R->R, R->W, W->W; only W->R may reorder.
            // Fences and atomics order against both classes.
            if (lastRead >= 0)
                addEdge(ghb, lastRead, u, label(lastRead));
            if (e.kind != EvKind::Load && lastWrite >= 0 &&
                lastWrite != lastRead)
                addEdge(ghb, lastWrite, u, label(lastWrite));
            if (opt.requireSc && prev >= 0 && prev != lastRead &&
                (e.kind == EvKind::Load || prev != lastWrite))
                addEdge(ghb, prev, u, label(prev));
            prev = u;
            if (e.kind != EvKind::Store)
                lastRead = u; // loads, RMWs, fences
            if (e.kind != EvKind::Load)
                lastWrite = u; // stores, RMWs, fences
            if (e.kind != EvKind::Fence) {
                auto [it, fresh] = lastAtAddr.try_emplace(e.addr, u);
                if (!fresh) {
                    addEdge(loc, it->second, u, EdgePo);
                    it->second = u;
                }
            }
        }
    }

    for (const auto &[addr, list] : co)
        for (size_t i = 0; i + 1 < list.size(); i++) {
            addEdge(loc, list[i], list[i + 1], EdgeCo);
            addEdge(ghb, list[i], list[i + 1], EdgeCo);
        }

    for (int u = 0; u < n; u++) {
        if (!src[u].isRead || src[u].ambiguous)
            continue;
        const Event &e = eventAt(u);
        const auto coIt = co.find(e.addr);
        const std::vector<int> *list =
            coIt == co.end() ? nullptr : &coIt->second;
        if (src[u].writer >= 0) {
            int w = src[u].writer;
            res.rfEdges++;
            addEdge(loc, w, u, EdgeRf);
            if (nodeTid[w] != nodeTid[u])
                addEdge(ghb, w, u, EdgeRf); // rfe only: a core may read
                                            // its own buffered store early
            // fr: the read precedes the writer's co-successor.
            int pos = coPos[w];
            if (pos >= 0 && list && size_t(pos + 1) < list->size()) {
                int next = (*list)[size_t(pos + 1)];
                if (next != u) {
                    addEdge(loc, u, next, EdgeFr);
                    addEdge(ghb, u, next, EdgeFr);
                    res.frEdges++;
                }
            }
        } else if (src[u].fromInit) {
            res.readsFromInit++;
            if (list && !list->empty() && list->front() != u) {
                addEdge(loc, u, list->front(), EdgeFr);
                addEdge(ghb, u, list->front(), EdgeFr);
                res.frEdges++;
            }
        }
    }

    // ---- acyclicity checks -------------------------------------------
    auto checkAcyclic = [&](const Adj &g, const char *axiom) {
        std::vector<int> residue = kahnResidue(g);
        if (residue.empty())
            return true;
        std::vector<char> in_res(g.size(), 0);
        for (int u : residue)
            in_res[u] = 1;
        Cycle best = findCycle(g, in_res, residue);
        int roots = 0;
        for (auto [c, k] : Cycle(best)) {
            if (roots++ >= 16)
                break;
            Cycle alt = shortestCycleThrough(g, in_res, c);
            if (!alt.empty() && alt.size() < best.size())
                best = alt;
        }
        res.verdict = Verdict::Violation;
        res.axiom = axiom;
        res.reason = format("happens-before cycle through %zu events",
                            best.size());
        makeWitness(best);
        return false;
    };

    if (!checkAcyclic(loc, "coherence"))
        return res;
    if (!checkAcyclic(ghb, opt.requireSc ? "sc-ghb" : "tso-ghb"))
        return res;

    if (res.ambiguousReads > 0) {
        res.verdict = Verdict::Inconclusive;
        res.reason = format(
            "%llu read(s) matched several writers (non-unique data "
            "values); their rf/fr edges were not checked",
            (unsigned long long)res.ambiguousReads);
    }
    return res;
}

void
writeWitnessJson(const CheckResult &res, std::ostream &os)
{
    harness::JsonWriter w(os);
    w.beginObject();
    w.field("verdict", verdictName(res.verdict));
    if (!res.axiom.empty())
        w.field("axiom", res.axiom);
    if (!res.reason.empty())
        w.field("reason", res.reason);
    if (!res.witness.empty()) {
        w.key("cycle").beginArray();
        for (const auto &s : res.witness) {
            w.beginObject();
            w.field("thread", uint64_t(s.thread));
            w.field("index", s.index);
            w.field("kind", evKindName(s.event.kind));
            w.field("pc", s.event.pc);
            if (s.event.kind == EvKind::Fence) {
                w.field("fenceKind", fenceKindName(s.event.fence));
            } else {
                w.field("addr", s.event.addr);
                w.field("value", s.event.value);
            }
            if (s.event.kind == EvKind::Rmw)
                w.field("readValue", s.event.readValue);
            w.field("tick", uint64_t(s.event.tick));
            if (!s.edgeToNext.empty())
                w.field("edgeToNext", s.edgeToNext);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

std::string
witnessJson(const CheckResult &res)
{
    std::ostringstream ss;
    writeWitnessJson(res, ss);
    return ss.str();
}

} // namespace asf::check
