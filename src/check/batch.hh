/**
 * @file
 * Batch execution-and-verdict API: build a System, run a set of guest
 * programs to completion, and return the axiomatic checker's verdict
 * together with run health and an optional functional invariant. This
 * is the oracle the checker-guided fence minimizer (src/analysis)
 * queries — one call is one piece of dynamic evidence — and is equally
 * usable from tests and tools that want a one-shot checked run.
 */

#ifndef ASF_CHECK_BATCH_HH
#define ASF_CHECK_BATCH_HH

#include <functional>
#include <memory>

#include "check/axioms.hh"
#include "sys/system.hh"

namespace asf::check
{

struct BatchRunSpec
{
    /** One program per core, core i runs programs[i]. */
    std::vector<std::shared_ptr<const Program>> programs;
    FenceDesign design = FenceDesign::SPlus;
    /** 0 = max(programs, 4). Extra cores idle. */
    unsigned cores = 0;
    uint64_t systemSeed = 1;
    Tick maxCycles = 2'000'000;
    /** Livelock watchdog (0 = off). A fired watchdog is a conviction:
     *  removing a fence that breaks liveness must keep the fence. */
    Tick watchdogCycles = 250'000;
    /** Check SC (all program order), not just TSO. Only meaningful
     *  when the fully fenced variant of the program is delay-set
     *  covered — which synthesized placements are by construction. */
    bool requireSc = false;
    /** Pre-run hook: seed guest memory, set registers. */
    std::function<void(System &)> setup;
    /** Post-run functional check (true = held). */
    std::function<bool(System &)> invariant;
};

struct BatchVerdict
{
    System::RunResult runResult = System::RunResult::AllDone;
    CheckResult check;
    bool invariantHeld = true;

    /** Evidence against the configuration under test: an axiom
     *  violation, a broken invariant, or a run that never finished. */
    bool convicted() const
    {
        return check.verdict == Verdict::Violation || !invariantHeld ||
               runResult != System::RunResult::AllDone;
    }
    /** Short label for reports: "pass", axiom name, "invariant",
     *  "watchdog" or "timeout". */
    std::string evidence() const;
};

/** Run one checked execution of `spec`. */
BatchVerdict runCheckedExecution(const BatchRunSpec &spec);

} // namespace asf::check

#endif // ASF_CHECK_BATCH_HH
