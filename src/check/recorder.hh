/**
 * @file
 * Online execution capture for the axiomatic checker. The recorder is
 * attached to every core's retire path and every directory's Order
 * merge path when SystemConfig::checkExecution is set, and logs one
 * Event per architecturally-committed shared-memory action.
 *
 * Observation-only discipline (same as FenceProfiler): the recorder
 * only appends to host-side vectors — simulated cycles and every
 * statistic are bit-identical with it on or off, enforced by
 * tests/check/test_check_identity.cc.
 *
 * W+ rollback: a recovery squashes every event committed after the
 * recovering fence (the re-executed code logs fresh events), so the
 * log always describes the architectural execution, never squashed
 * speculation. Pre-fence stores are older than the fence event and
 * survive; squashed post-fence stores were never issued, so no
 * coherence stamp ever has to be rolled back.
 */

#ifndef ASF_CHECK_RECORDER_HH
#define ASF_CHECK_RECORDER_HH

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "check/event.hh"

namespace asf::check
{

class ExecutionRecorder
{
  public:
    explicit ExecutionRecorder(unsigned num_threads);

    /** A load delivered its value to the register file. `fwd_seq` is
     *  the forwarding store's seq when the value came from this core's
     *  own write buffer, 0 otherwise. */
    void onLoad(NodeId tid, uint64_t pc, Addr addr, uint64_t value,
                uint64_t fwd_seq, Tick now);

    /** A store retired into the write buffer with sequence `seq`. */
    void onStore(NodeId tid, uint64_t pc, Addr addr, uint64_t value,
                 uint64_t seq, Tick now);

    /** An atomic performed: read `read_value`, wrote `written` (only
     *  if `wrote`; a failed CAS writes nothing). Atomics merge with
     *  the memory system at perform time, so a writing RMW is
     *  coherence-stamped here. */
    void onRmw(NodeId tid, uint64_t pc, Addr addr, uint64_t read_value,
               uint64_t written, bool wrote, Tick now);

    /** A fence issued (instant = completed immediately on an empty
     *  write buffer; such fences cannot be recovered past). */
    void onFence(NodeId tid, uint64_t pc, FenceKind kind, bool instant,
                 uint64_t fence_id, Tick now);

    /** Store (tid, seq) merged with the memory system: local exclusive
     *  drain, DataX/AckX grant, or directory Order merge. Assigns the
     *  next global coherence stamp. */
    void onStoreMerged(NodeId tid, uint64_t seq);

    /** W+ rollback at fence `fence_id`: discard every event this
     *  thread committed after that fence. Stores still buffered with
     *  seq > `last_pre_store_seq` were squashed and will never merge. */
    void onRecovery(NodeId tid, uint64_t fence_id,
                    uint64_t last_pre_store_seq);

    // --- log access -----------------------------------------------------
    /** Per-thread event logs in program (commit) order. */
    const std::vector<std::vector<Event>> &threads() const
    {
        return threads_;
    }
    unsigned numThreads() const { return unsigned(threads_.size()); }

    uint64_t eventsCaptured() const;
    uint64_t loadsCaptured() const { return loads_; }
    uint64_t storesCaptured() const { return stores_; }
    uint64_t rmwsCaptured() const { return rmws_; }
    uint64_t fencesCaptured() const { return fences_; }
    /** Coherence stamps handed out (merged writes). */
    uint64_t mergesCaptured() const { return nextCoStamp_ - 1; }
    /** Events discarded by W+ rollbacks. */
    uint64_t eventsSquashed() const { return squashed_; }

  private:
    std::vector<std::vector<Event>> threads_;
    /** (tid, storeSeq) -> event index, for coherence stamping. */
    std::map<std::pair<NodeId, uint64_t>, size_t> pendingMerge_;
    /** (tid, fenceId) -> event index, for rollback truncation. */
    std::map<std::pair<NodeId, uint64_t>, size_t> fenceMark_;
    uint64_t nextCoStamp_ = 1;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t rmws_ = 0;
    uint64_t fences_ = 0;
    uint64_t squashed_ = 0;
};

} // namespace asf::check

#endif // ASF_CHECK_RECORDER_HH
