/**
 * @file
 * Offline axiomatic verification of a recorded execution, herd-style:
 * derive the relations po (per-thread event order), rf (reads-from,
 * exact for forwarded loads, value-matched otherwise), co (the
 * directory-observed per-line serialization, captured — not inferred)
 * and fr (from-reads: co-successors of a read's source), then check:
 *
 *  - value integrity: every read value has a writer (or is the 0
 *    initial value);
 *  - SC per location: po-loc ∪ rf ∪ co ∪ fr acyclic per address
 *    (coherence: CoRR/CoWR/CoRW/CoWW);
 *  - RMW atomicity: an atomic's read source is the immediate
 *    co-predecessor of its own write — nothing intervenes;
 *  - TSO global happens-before: ppo (program order minus store→load)
 *    ∪ fence order ∪ rfe ∪ co ∪ fr is acyclic. Multi-copy atomicity
 *    is implied (rfe edges order external reads against co).
 *
 * Fences of every kind — strong, weak, WeeFence — contribute full
 * barrier edges: the paper's claim is precisely that the relaxed
 * implementations (BS bounces, Order writes, W+ rollback) make the
 * execution LOOK fully ordered across the fence. A fence-group bug
 * therefore shows up as a cycle through a fence edge.
 *
 * With `requireSc`, all adjacent po edges join the graph: valid only
 * for fully fenced (Shasha–Snir delay-set covered) programs such as
 * the fuzz harness, where TSO + fences must be SC-equivalent.
 *
 * On violation the shortest offending cycle is reported as a witness
 * (JSON via writeWitnessJson, pretty via tools/witness_pp.py).
 */

#ifndef ASF_CHECK_AXIOMS_HH
#define ASF_CHECK_AXIOMS_HH

#include <ostream>
#include <string>
#include <vector>

#include "check/recorder.hh"

namespace asf::check
{

enum class Verdict
{
    Pass,         ///< all axioms hold; every read conclusively matched
    Violation,    ///< an axiom is violated; see `axiom` and `witness`
    Inconclusive, ///< axioms hold on the unambiguous subset, but some
                  ///< read values matched several writers (non-unique
                  ///< data values) and their rf/fr edges were skipped
};

const char *verdictName(Verdict v);

struct CheckOptions
{
    /** Also require store→load program order (SC). Only sound for
     *  fully fenced programs. */
    bool requireSc = false;
};

/** One node of a witness cycle, plus the edge leaving it. */
struct WitnessStep
{
    NodeId thread = 0;
    uint64_t index = 0; ///< position in the thread's event log
    Event event;
    /** Relation of the edge to the next step: "po", "fence", "rf",
     *  "co", "fr" (empty on the last step of non-cycle witnesses). */
    std::string edgeToNext;
};

struct CheckResult
{
    Verdict verdict = Verdict::Pass;
    /** Violated axiom: "value-integrity", "coherence",
     *  "rmw-atomicity", "tso-ghb" or "sc-ghb". Empty when passing. */
    std::string axiom;
    std::string reason;
    std::vector<WitnessStep> witness;

    // Derived-relation sizes (reported in the stats `check` block).
    uint64_t events = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t rmws = 0;
    uint64_t fences = 0;
    uint64_t rfEdges = 0;
    uint64_t coEdges = 0;
    uint64_t frEdges = 0;
    uint64_t readsFromInit = 0;
    uint64_t ambiguousReads = 0;
    bool scChecked = false;

    bool passed() const { return verdict == Verdict::Pass; }
};

/** Verify a recorded execution against the axioms. */
CheckResult checkExecution(const ExecutionRecorder &rec,
                           const CheckOptions &opt = {});

/** Serialize the verdict + witness as a standalone JSON object (the
 *  same shape embedded in the stats `check` block). */
void writeWitnessJson(const CheckResult &res, std::ostream &os);
std::string witnessJson(const CheckResult &res);

} // namespace asf::check

#endif // ASF_CHECK_AXIOMS_HH
