#include "runtime/litmus.hh"

#include "runtime/regs.hh"
#include "sim/logging.hh"

namespace asf::runtime
{

using namespace regs;

LitmusLayout
allocLitmus(GuestLayout &layout)
{
    // Each variable in its own home granule: symmetric remoteness for
    // the two threads, so their warmed-up patterns stay aligned.
    LitmusLayout lay;
    lay.x = layout.granule();
    lay.y = layout.granule();
    lay.res0 = layout.granule();
    lay.res1 = layout.granule();
    lay.res2 = layout.granule();
    lay.res3 = layout.granule();
    return lay;
}

Program
buildSbThread(const LitmusLayout &lay, unsigned tid, bool fenced,
              FenceRole role, unsigned warm_cycles)
{
    Addr mine = tid == 0 ? lay.x : lay.y;
    Addr other = tid == 0 ? lay.y : lay.x;
    Addr res = tid == 0 ? lay.res0 : lay.res1;

    Assembler a(format("sb_t%u", tid));
    a.suppressFences(!fenced);
    a.li(a0, int64_t(mine));
    a.li(a1, int64_t(other));
    a.li(a2, int64_t(res));
    if (warm_cycles > 0) {
        a.ld(t0, a1, 0); // cache the load target
        a.compute(int64_t(warm_cycles));
    }
    a.li(t0, 1);
    a.st(a0, 0, t0); // st mine = 1
    a.fence(role);    // suppressed (recorded) when !fenced
    a.ld(t1, a1, 0);  // r = ld other
    a.st(a2, 0, t1);  // res = r
    a.halt();
    return a.finish();
}

Program
buildMpWriter(const LitmusLayout &lay)
{
    Assembler a("mp_writer");
    a.li(a0, int64_t(lay.x)); // data
    a.li(a1, int64_t(lay.y)); // flag
    a.li(t0, 1);
    a.st(a0, 0, t0);
    a.st(a1, 0, t0); // TSO keeps the stores ordered
    a.halt();
    return a.finish();
}

Program
buildMpReader(const LitmusLayout &lay)
{
    Assembler a("mp_reader");
    a.li(a0, int64_t(lay.x));
    a.li(a1, int64_t(lay.y));
    a.li(a2, int64_t(lay.res0));
    a.bind("spin");
    a.ld(t0, a1, 0);
    a.li(t1, 0);
    a.beq(t0, t1, "spin");
    a.ld(t2, a0, 0); // must observe data = 1
    a.st(a2, 0, t2);
    a.halt();
    return a.finish();
}

Program
buildIriwWriter(const LitmusLayout &lay, bool write_x)
{
    Assembler a(write_x ? "iriw_wx" : "iriw_wy");
    a.li(a0, int64_t(write_x ? lay.x : lay.y));
    a.li(t0, 1);
    a.st(a0, 0, t0);
    a.halt();
    return a.finish();
}

Program
buildIriwReader(const LitmusLayout &lay, bool x_first)
{
    Assembler a(x_first ? "iriw_rxy" : "iriw_ryx");
    Addr first = x_first ? lay.x : lay.y;
    Addr second = x_first ? lay.y : lay.x;
    Addr res_first = x_first ? lay.res0 : lay.res2;
    Addr res_second = x_first ? lay.res1 : lay.res3;
    a.li(a0, int64_t(first));
    a.li(a1, int64_t(second));
    a.li(a2, int64_t(res_first));
    a.li(a3, int64_t(res_second));
    // Spin until the first location is set, then immediately read the
    // second; record both observations.
    a.bind("spin");
    a.ld(t0, a0, 0);
    a.li(t1, 0);
    a.beq(t0, t1, "spin");
    a.ld(t2, a1, 0);
    a.st(a2, 0, t0);
    a.st(a3, 0, t2);
    a.halt();
    return a.finish();
}

Program
buildLbThread(const LitmusLayout &lay, unsigned tid)
{
    Addr mine = tid == 0 ? lay.x : lay.y;
    Addr other = tid == 0 ? lay.y : lay.x;
    Addr res = tid == 0 ? lay.res0 : lay.res1;

    Assembler a(format("lb_t%u", tid));
    a.li(a0, int64_t(mine));
    a.li(a1, int64_t(other));
    a.li(a2, int64_t(res));
    a.ld(t0, a0, 0); // r = ld mine
    a.li(t1, 1);
    a.st(a1, 0, t1); // st other = 1
    a.st(a2, 0, t0); // res = r
    a.halt();
    return a.finish();
}

Program
buildRWriter(const LitmusLayout &lay, unsigned warm_cycles)
{
    Assembler a("r_writer");
    a.li(a0, int64_t(lay.x));
    a.li(a1, int64_t(lay.y));
    if (warm_cycles > 0)
        a.compute(int64_t(warm_cycles));
    a.li(t0, 1);
    a.st(a0, 0, t0); // st x = 1
    a.st(a1, 0, t0); // st y = 1 (TSO keeps them ordered)
    a.halt();
    return a.finish();
}

Program
buildRJudge(const LitmusLayout &lay, bool fenced, FenceRole role,
            unsigned warm_cycles)
{
    Assembler a("r_judge");
    a.suppressFences(!fenced);
    a.li(a0, int64_t(lay.y));
    a.li(a1, int64_t(lay.x));
    a.li(a2, int64_t(lay.res0));
    if (warm_cycles > 0) {
        a.ld(t0, a1, 0); // cache the load target
        a.compute(int64_t(warm_cycles));
    }
    a.li(t0, 2);
    a.st(a0, 0, t0); // st y = 2
    a.fence(role);   // suppressed (recorded) when !fenced
    a.ld(t1, a1, 0); // r = ld x
    a.st(a2, 0, t1); // res0 = r
    a.halt();
    return a.finish();
}

Program
buildTwoPlusTwoWThread(const LitmusLayout &lay, unsigned tid)
{
    Addr first = tid == 0 ? lay.x : lay.y;
    Addr second = tid == 0 ? lay.y : lay.x;

    Assembler a(format("2p2w_t%u", tid));
    a.li(a0, int64_t(first));
    a.li(a1, int64_t(second));
    a.li(t0, 1);
    a.li(t1, 2);
    a.st(a0, 0, t0); // st first = 1
    a.st(a1, 0, t1); // st second = 2
    a.halt();
    return a.finish();
}

Program
buildSWriter(const LitmusLayout &lay)
{
    Assembler a("s_writer");
    a.li(a0, int64_t(lay.x));
    a.li(a1, int64_t(lay.y));
    a.li(t0, 2);
    a.st(a0, 0, t0); // st x = 2
    a.li(t0, 1);
    a.st(a1, 0, t0); // st y = 1
    a.halt();
    return a.finish();
}

Program
buildSReader(const LitmusLayout &lay)
{
    Assembler a("s_reader");
    a.li(a0, int64_t(lay.y));
    a.li(a1, int64_t(lay.x));
    a.li(a2, int64_t(lay.res0));
    a.ld(t0, a0, 0); // r = ld y
    a.li(t1, 1);
    a.st(a1, 0, t1); // st x = 1
    a.st(a2, 0, t0); // res0 = r
    a.halt();
    return a.finish();
}

} // namespace asf::runtime
