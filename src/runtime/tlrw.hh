/**
 * @file
 * The TLRW (read/write lock based) STM barriers of Dice & Shavit, as used
 * by RSTM and by Section 4.2 of the paper. One lock record (orec) guards
 * one shared-memory word:
 *
 *   read(M, tid):   readers[tid] = 1;  FENCE;  w = writer;
 *                   conflict (w != 0) -> release the flag and abort
 *   write(M, tid):  writer = tid + 1;  FENCE;  wait for readers to drain
 *
 * The read-side fence is FenceRole::Critical and the write-side fence
 * FenceRole::Noncritical (reads outnumber writes ~3.5x in the paper's
 * workloads), so WS+/SW+ place the weak fence in the read barrier.
 *
 * Writers additionally serialize per-orec through a write mutex, and
 * transactions acquire write orecs in ascending index order; readers
 * never wait (they abort and the transaction retries), so the protocol
 * is deadlock-free.
 *
 * Orec layout (stride depends on the thread count):
 *   +0   writer                (own line)
 *   +32  write mutex           (own line)
 *   +64  readers[numThreads]   (packed words)
 */

#ifndef ASF_RUNTIME_TLRW_HH
#define ASF_RUNTIME_TLRW_HH

#include "mem/memory_image.hh"
#include "prog/assembler.hh"
#include "runtime/layout.hh"

namespace asf::runtime
{

struct TlrwTable
{
    Addr orecBase = 0;
    Addr dataBase = 0;
    unsigned numOrecs = 0;
    unsigned numThreads = 0;
    unsigned orecStride = 0; ///< bytes between consecutive orecs

    Addr orecAddr(unsigned idx) const;
    Addr writerAddr(unsigned idx) const { return orecAddr(idx); }
    Addr readerFlagAddr(unsigned idx, unsigned tid) const;
    /** The guarded data word (one padded line per word). */
    Addr dataAddr(unsigned idx) const;
};

/** Allocate orecs + data region for `num_orecs` locations. */
TlrwTable allocTlrwTable(GuestLayout &layout, unsigned num_orecs,
                         unsigned num_threads);

/**
 * Emit the read barrier for the orec whose base address is in `o`.
 * On writer conflict the own flag is released and control jumps to
 * `abort_label` (transaction retry point). Clobbers t0, t1.
 * Reads regs::tid.
 */
void emitTlrwReadAcquire(Assembler &a, Reg o, const std::string &abort_label,
                         Reg t0, Reg t1);

/** Release this thread's reader flag on orec `o`. Clobbers t0, t1. */
void emitTlrwReadRelease(Assembler &a, Reg o, Reg t0, Reg t1);

/**
 * Emit the write barrier: acquire the write mutex, publish the writer
 * field, fence (Noncritical), then spin until every other thread's
 * reader flag is clear. Both spins are *bounded*: on exhaustion the
 * barrier undoes its own partial state (writer field, write mutex) and
 * jumps to `abort_label`, where the transaction must release everything
 * it already holds and retry - exactly how eager STMs avoid the
 * reader/writer hold-and-wait deadlock. Clobbers t0-t3. Reads
 * regs::tid, regs::nthreads.
 */
void emitTlrwWriteAcquire(Assembler &a, Reg o,
                          const std::string &abort_label, Reg t0, Reg t1,
                          Reg t2, Reg t3);

/** Release the writer field and the write mutex. Clobbers t0. */
void emitTlrwWriteRelease(Assembler &a, Reg o, Reg t0);

/**
 * Emit: rd = address of orec `idx` (index register), using the table
 * geometry. Clobbers rd only. `base` must hold table.orecBase.
 */
void emitOrecAddr(Assembler &a, const TlrwTable &table, Reg base, Reg idx,
                  Reg rd);

/** Emit: rd = address of data word `idx`. `base` holds table.dataBase. */
void emitDataAddr(Assembler &a, const TlrwTable &table, Reg base, Reg idx,
                  Reg rd);

} // namespace asf::runtime

#endif // ASF_RUNTIME_TLRW_HH
