#include "runtime/spinlock.hh"

namespace asf::runtime
{

void
emitSpinLockAcquire(Assembler &a, Reg lock_addr, int64_t offset, Reg t0,
                    Reg t1)
{
    std::string retry = a.freshLabel("lock_retry");
    std::string got = a.freshLabel("lock_got");
    a.bind(retry);
    // Test: spin on a plain load until the lock looks free.
    a.ld(t0, lock_addr, offset);
    a.li(t1, 0);
    a.bne(t0, t1, retry);
    // Test&set: try to take it atomically.
    a.li(t1, 1);
    a.xchg(t0, lock_addr, offset, t1);
    a.li(t1, 0);
    a.beq(t0, t1, got);
    a.jmp(retry);
    a.bind(got);
}

void
emitSpinLockRelease(Assembler &a, Reg lock_addr, int64_t offset, Reg t0)
{
    a.li(t0, 0);
    a.st(lock_addr, offset, t0);
}

} // namespace asf::runtime
