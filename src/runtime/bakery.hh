/**
 * @file
 * Lamport's Bakery mutual-exclusion algorithm in the guest mini-ISA
 * (paper Section 4.3). The E[] and N[] arrays are packed words, so
 * neighbouring threads' entries share cache lines - which is exactly the
 * false-sharing situation the paper's SW+/W+ designs must survive.
 *
 * Fence placement follows Figure 6a: a fence after the E[own] store
 * (before scanning the other threads' entries) and another after the
 * ticket publication. One thread can be designated priority: its fences
 * carry FenceRole::Critical (a wf under WS+/SW+), the rest Noncritical.
 * `fenced = false` builds the unfenced synthesis-input variant (the
 * hand sites land in Program::omittedFences).
 */

#ifndef ASF_RUNTIME_BAKERY_HH
#define ASF_RUNTIME_BAKERY_HH

#include "mem/memory_image.hh"
#include "prog/assembler.hh"
#include "runtime/layout.hh"

namespace asf::runtime
{

struct BakeryLayout
{
    Addr eBase = 0;       ///< E[numThreads], packed words
    Addr nBase = 0;       ///< N[numThreads], packed words
    Addr counterAddr = 0; ///< shared counter incremented in the CS
    unsigned numThreads = 0;

    Addr eAddr(unsigned i) const { return eBase + Addr(i) * wordBytes; }
    Addr nAddr(unsigned i) const { return nBase + Addr(i) * wordBytes; }
};

BakeryLayout allocBakery(GuestLayout &layout, unsigned num_threads);

/**
 * Build the program for thread `tid`: `iterations` times acquire the
 * bakery lock, increment the shared counter (plain ld/add/st - mutual
 * exclusion is what keeps it race-free), release, and do `think` cycles
 * of local compute. Thread `priority_tid` gets Critical fences.
 */
Program buildBakeryProgram(const BakeryLayout &lay, unsigned tid,
                           unsigned iterations, unsigned think,
                           unsigned priority_tid, bool fenced = true);

} // namespace asf::runtime

#endif // ASF_RUNTIME_BAKERY_HH
