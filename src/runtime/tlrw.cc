#include "runtime/tlrw.hh"

#include "runtime/regs.hh"
#include "runtime/spinlock.hh"
#include "sim/logging.hh"

namespace asf::runtime
{

namespace
{
constexpr int64_t writerOff = 0;
constexpr int64_t wmutexOff = 32;
constexpr int64_t readersOff = 64;
} // namespace

Addr
TlrwTable::orecAddr(unsigned idx) const
{
    return orecBase + Addr(idx) * orecStride;
}

Addr
TlrwTable::readerFlagAddr(unsigned idx, unsigned tid) const
{
    return orecAddr(idx) + Addr(readersOff) + Addr(tid) * wordBytes;
}

Addr
TlrwTable::dataAddr(unsigned idx) const
{
    // The guarded word lives on its orec's writer line (word 1): the
    // read barrier's `ld writer` brings the data along, and a writer
    // that has published the writer field owns the line for its data
    // store - both accesses hit, as they do with RSTM's compact orecs.
    return orecAddr(idx) + wordBytes;
}

TlrwTable
allocTlrwTable(GuestLayout &layout, unsigned num_orecs,
               unsigned num_threads)
{
    if (num_orecs == 0 || num_threads == 0)
        fatal("empty TLRW table");
    TlrwTable t;
    t.numOrecs = num_orecs;
    t.numThreads = num_threads;
    unsigned readers_bytes =
        ((num_threads * wordBytes + lineBytes - 1) / lineBytes) * lineBytes;
    t.orecStride = unsigned(readersOff) + readers_bytes;
    t.orecBase = layout.block(num_orecs * t.orecStride / wordBytes);
    t.dataBase = t.orecBase; // data words live inside the orecs
    return t;
}

void
emitTlrwReadAcquire(Assembler &a, Reg o, const std::string &abort_label,
                    Reg t0, Reg t1)
{
    std::string ok = a.freshLabel("tlrw_rd_ok");
    // readers[tid] = 1
    a.shli(t0, regs::tid, 3);
    a.add(t0, t0, o);
    a.li(t1, 1);
    a.st(t0, readersOff, t1);
    // The read barrier's fence: flag visible before we check the writer.
    a.fence(FenceRole::Critical);
    a.ld(t1, o, writerOff);
    a.li(t0, 0);
    a.beq(t1, t0, ok);
    // Conflict: release our flag and abort the transaction.
    a.shli(t0, regs::tid, 3);
    a.add(t0, t0, o);
    a.li(t1, 0);
    a.st(t0, readersOff, t1);
    a.jmp(abort_label);
    a.bind(ok);
}

void
emitTlrwReadRelease(Assembler &a, Reg o, Reg t0, Reg t1)
{
    a.shli(t0, regs::tid, 3);
    a.add(t0, t0, o);
    a.li(t1, 0);
    a.st(t0, readersOff, t1);
}

namespace
{
/** Write-mutex acquisition attempts before the transaction aborts. */
constexpr int64_t wmutexSpinBound = 48;
/** Reader-flag scan reads before the transaction aborts. */
constexpr int64_t scanSpinBound = 256;
} // namespace

void
emitTlrwWriteAcquire(Assembler &a, Reg o, const std::string &abort_label,
                     Reg t0, Reg t1, Reg t2, Reg t3)
{
    std::string mretry = a.freshLabel("tlrw_wr_mretry");
    std::string mtry = a.freshLabel("tlrw_wr_mtry");
    std::string mgot = a.freshLabel("tlrw_wr_mgot");
    std::string undo = a.freshLabel("tlrw_wr_undo");

    // --- bounded write-mutex acquisition ------------------------------
    a.li(t2, wmutexSpinBound);
    a.bind(mretry);
    a.addi(t2, t2, -1);
    a.li(t1, 0);
    a.beq(t2, t1, abort_label); // nothing held yet: abort directly
    a.ld(t0, o, wmutexOff);
    a.bne(t0, t1, mretry);
    a.li(t1, 1);
    a.xchg(t0, o, wmutexOff, t1);
    a.li(t1, 0);
    a.beq(t0, t1, mgot);
    a.jmp(mretry);
    a.bind(mgot);

    // --- publish the writer field --------------------------------------
    a.addi(t0, regs::tid, 1);
    a.st(o, writerOff, t0);
    // The write barrier's fence: writer field visible before we scan the
    // reader flags (paper Figure 5b).
    a.fence(FenceRole::Noncritical);

    // --- bounded scan until every other reader flag clears -------------
    std::string jloop = a.freshLabel("tlrw_wr_jloop");
    std::string jwait = a.freshLabel("tlrw_wr_jwait");
    std::string jnext = a.freshLabel("tlrw_wr_jnext");
    std::string done = a.freshLabel("tlrw_wr_done");
    a.li(t3, scanSpinBound);
    a.li(t1, 0); // j = 0
    a.bind(jloop);
    a.beq(t1, regs::tid, jnext); // skip our own flag
    a.bind(jwait);
    a.shli(t2, t1, 3);
    a.add(t2, t2, o);
    a.ld(t2, t2, readersOff);
    a.li(t0, 0);
    a.beq(t2, t0, jnext); // flag clear: next reader
    a.addi(t3, t3, -1);
    a.li(t0, 0);
    a.beq(t3, t0, undo); // scan budget exhausted: abort
    a.jmp(jwait);
    a.bind(jnext);
    a.addi(t1, t1, 1);
    a.blt(t1, regs::nthreads, jloop);
    a.jmp(done);

    // Undo this barrier's own state, then let the caller release the
    // rest of the transaction's locks.
    a.bind(undo);
    a.li(t0, 0);
    a.st(o, writerOff, t0);
    emitSpinLockRelease(a, o, wmutexOff, t0);
    a.jmp(abort_label);

    a.bind(done);
}

void
emitTlrwWriteRelease(Assembler &a, Reg o, Reg t0)
{
    a.li(t0, 0);
    a.st(o, writerOff, t0);
    emitSpinLockRelease(a, o, wmutexOff, t0);
}

void
emitOrecAddr(Assembler &a, const TlrwTable &table, Reg base, Reg idx,
             Reg rd)
{
    a.muli(rd, idx, int64_t(table.orecStride));
    a.add(rd, rd, base);
}

void
emitDataAddr(Assembler &a, const TlrwTable &table, Reg base, Reg idx,
             Reg rd)
{
    // base must hold table.dataBase (== orecBase).
    a.muli(rd, idx, int64_t(table.orecStride));
    a.add(rd, rd, base);
    a.addi(rd, rd, wordBytes);
}

} // namespace asf::runtime
