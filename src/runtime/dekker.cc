#include "runtime/dekker.hh"

#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "sim/logging.hh"

namespace asf::runtime
{

using namespace regs;

DekkerLayout
allocDekker(GuestLayout &layout)
{
    DekkerLayout lay;
    lay.flag0 = layout.line();
    lay.flag1 = layout.line();
    lay.turn = layout.line();
    lay.counterAddr = layout.line();
    return lay;
}

Program
buildDekkerProgram(const DekkerLayout &lay, unsigned tid,
                   unsigned iterations, unsigned think, bool fenced)
{
    if (tid > 1)
        fatal("Dekker is a two-thread algorithm");
    FenceRole role = tid == 0 ? FenceRole::Critical
                              : FenceRole::Noncritical;
    Addr my_flag = tid == 0 ? lay.flag0 : lay.flag1;
    Addr other_flag = tid == 0 ? lay.flag1 : lay.flag0;

    Assembler a(format("dekker_t%u", tid));
    a.suppressFences(!fenced);
    // s0 = iterations, s1 = my flag, s2 = other flag, s3 = turn,
    // s4 = counter, s5 = my id.
    a.li(s0, int64_t(iterations));
    a.li(s1, int64_t(my_flag));
    a.li(s2, int64_t(other_flag));
    a.li(s3, int64_t(lay.turn));
    a.li(s4, int64_t(lay.counterAddr));
    a.li(s5, int64_t(tid));

    a.bind("iter");

    // --- lock -----------------------------------------------------------
    a.li(t0, 1);
    a.st(s1, 0, t0); // my_flag = 1
    a.fence(role); // the Dekker fence: flag store before flag load
    a.bind("check");
    a.ld(t1, s2, 0); // other_flag
    a.li(t0, 0);
    a.beq(t1, t0, "cs"); // other not interested -> enter
    // Contention: if it's the other's turn, back off and retry.
    a.ld(t2, s3, 0); // turn
    a.beq(t2, s5, "check");
    a.li(t0, 0);
    a.st(s1, 0, t0); // my_flag = 0
    a.bind("waitturn");
    a.ld(t2, s3, 0);
    a.bne(t2, s5, "waitturn");
    a.li(t0, 1);
    a.st(s1, 0, t0); // my_flag = 1
    a.fence(role);
    a.jmp("check");

    // --- critical section -------------------------------------------------
    a.bind("cs");
    a.mark(marks::lockAcquired);
    a.ld(t0, s4, 0);
    a.addi(t0, t0, 1);
    a.st(s4, 0, t0);

    // --- unlock ------------------------------------------------------------
    a.li(t0, 1);
    a.sub(t0, t0, s5); // other tid
    a.st(s3, 0, t0);   // turn = other
    a.li(t0, 0);
    a.st(s1, 0, t0); // my_flag = 0

    if (think > 0)
        a.compute(int64_t(think));

    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "iter");
    a.halt();
    return a.finish();
}

} // namespace asf::runtime
