/**
 * @file
 * Classic memory-model litmus tests as guest programs. These validate
 * that the simulator exhibits exactly TSO - store->load reordering is
 * observable without fences and forbidden with them, for every fence
 * design - and that multi-copy atomicity holds (IRIW never observed).
 */

#ifndef ASF_RUNTIME_LITMUS_HH
#define ASF_RUNTIME_LITMUS_HH

#include "prog/assembler.hh"
#include "runtime/layout.hh"

namespace asf::runtime
{

/** Shared/result locations of a two-thread litmus. */
struct LitmusLayout
{
    Addr x = 0;
    Addr y = 0;
    Addr res0 = 0; ///< thread 0's observed value
    Addr res1 = 0;
    Addr res2 = 0; ///< extra observers (IRIW)
    Addr res3 = 0;
};

LitmusLayout allocLitmus(GuestLayout &layout);

/**
 * Store buffering (Dekker core): st x=1; [fence]; r=ld y; res=r.
 * With fences, (res0,res1) == (0,0) is an SC violation and must never
 * occur; without fences TSO permits (and our write buffers produce) it.
 *
 * `warm_cycles` > 0 prepends a warm-up that caches the *load* target and
 * then spins for that many cycles, aligning the two threads. With warm
 * loads and (cold) missing stores, the unfenced reorder is observed
 * deterministically - the classic SB timing.
 */
Program buildSbThread(const LitmusLayout &lay, unsigned tid, bool fenced,
                      FenceRole role, unsigned warm_cycles = 0);

/**
 * Message passing: writer does st data=1; st flag=1 (no fence needed
 * under TSO); reader spins on flag then loads data into res0.
 */
Program buildMpWriter(const LitmusLayout &lay);
Program buildMpReader(const LitmusLayout &lay);

/**
 * IRIW: two writers (x=1, y=1), two readers each reading both locations
 * in opposite order (loads are already ordered under TSO). The outcome
 * res0=1,res1=0,res2=1,res3=0 would violate multi-copy atomicity.
 */
Program buildIriwWriter(const LitmusLayout &lay, bool write_x);
Program buildIriwReader(const LitmusLayout &lay, bool x_first);

/**
 * Load buffering: each thread loads one variable and stores 1 to the
 * other (t0: r=ld x; st y=1 — t1: r=ld y; st x=1; results in
 * res0/res1). Both threads observing 1 requires load->store reordering,
 * which TSO forbids without any fence.
 */
Program buildLbThread(const LitmusLayout &lay, unsigned tid);

/**
 * R: t0 does st x=1; st y=1. t1 does st y=2; [fence]; r=ld x; res0=r.
 * The outcome "y ends 2 and r == 0" requires t1's load to bypass its
 * buffered store — TSO permits it unfenced, the fence forbids it.
 */
Program buildRWriter(const LitmusLayout &lay, unsigned warm_cycles = 0);
Program buildRJudge(const LitmusLayout &lay, bool fenced, FenceRole role,
                    unsigned warm_cycles = 0);

/**
 * 2+2W: t0 does st x=1; st y=2 — t1 does st y=1; st x=2. Both
 * variables ending at 1 would need each thread's second store to lose
 * to the other's first: forbidden by TSO's W->W order, no fences.
 */
Program buildTwoPlusTwoWThread(const LitmusLayout &lay, unsigned tid);

/**
 * S: t0 does st x=2; st y=1 — t1 does r=ld y; st x=1; res0=r.
 * "r == 1 and x ends 2" needs t1's store to age behind the load that
 * already saw t0 finish: forbidden by TSO (R->W order), no fences.
 */
Program buildSWriter(const LitmusLayout &lay);
Program buildSReader(const LitmusLayout &lay);

} // namespace asf::runtime

#endif // ASF_RUNTIME_LITMUS_HH
