/**
 * @file
 * Register conventions for guest runtime libraries. The mini-ISA has 32
 * general registers; runtime emitters document which aliases they read
 * and clobber.
 */

#ifndef ASF_RUNTIME_REGS_HH
#define ASF_RUNTIME_REGS_HH

#include "prog/instr.hh"

namespace asf::regs
{

// Temporaries: any emitter may clobber these.
constexpr Reg t0 = 0;
constexpr Reg t1 = 1;
constexpr Reg t2 = 2;
constexpr Reg t3 = 3;
constexpr Reg t4 = 4;
constexpr Reg t5 = 5;
constexpr Reg t6 = 6;
constexpr Reg t7 = 7;

// Arguments / values: preserved unless an emitter says otherwise.
constexpr Reg a0 = 8;
constexpr Reg a1 = 9;
constexpr Reg a2 = 10;
constexpr Reg a3 = 11;
constexpr Reg a4 = 12;
constexpr Reg a5 = 13;
constexpr Reg a6 = 14;
constexpr Reg a7 = 15;

// Saved registers for workload main loops.
constexpr Reg s0 = 16;
constexpr Reg s1 = 17;
constexpr Reg s2 = 18;
constexpr Reg s3 = 19;
constexpr Reg s4 = 20;
constexpr Reg s5 = 21;
constexpr Reg s6 = 22;
constexpr Reg s7 = 23;
constexpr Reg s8 = 24;
constexpr Reg s9 = 25;
constexpr Reg s10 = 26;
constexpr Reg s11 = 27;

// Fixed environment registers, set by the host before the run.
constexpr Reg tid = 28;     ///< this thread's id
constexpr Reg nthreads = 29; ///< number of threads
constexpr Reg env0 = 30;    ///< workload-specific base pointer
constexpr Reg env1 = 31;    ///< workload-specific base pointer

} // namespace asf::regs

#endif // ASF_RUNTIME_REGS_HH
