/**
 * @file
 * Guest test-and-test&set spinlock, emitted inline. The lock word holds 0
 * (free) or 1 (taken); acquisition uses XCHG (atomic, full-fence
 * semantics like x86 locked instructions).
 */

#ifndef ASF_RUNTIME_SPINLOCK_HH
#define ASF_RUNTIME_SPINLOCK_HH

#include "prog/assembler.hh"

namespace asf::runtime
{

/**
 * Acquire the spinlock whose word address is in `lock_addr` + offset.
 * Clobbers t0, t1. Spins until acquired.
 */
void emitSpinLockAcquire(Assembler &a, Reg lock_addr, int64_t offset,
                         Reg t0, Reg t1);

/** Release the spinlock. Clobbers t0. */
void emitSpinLockRelease(Assembler &a, Reg lock_addr, int64_t offset,
                         Reg t0);

} // namespace asf::runtime

#endif // ASF_RUNTIME_SPINLOCK_HH
