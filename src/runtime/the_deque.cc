#include "runtime/the_deque.hh"

#include "runtime/marks.hh"
#include "runtime/spinlock.hh"
#include "sim/logging.hh"

namespace asf::runtime
{

namespace
{
constexpr int64_t headOff = 0;
constexpr int64_t tailOff = 32;
constexpr int64_t lockOff = 64;
constexpr int64_t tasksOff = 96;
} // namespace

TheDeque
allocTheDeque(GuestLayout &layout, unsigned capacity)
{
    if (capacity == 0 || (capacity & (capacity - 1)) != 0)
        fatal("deque capacity %u must be a power of two", capacity);
    TheDeque q;
    q.capacity = capacity;
    // Granule-aligned: a deque that fits in one home-interleaving
    // granule lives entirely in one directory module.
    q.base = layout.granuleAlignedBlock(unsigned(tasksOff / wordBytes) +
                                        capacity);
    return q;
}

void
seedDeque(MemoryImage &mem, const TheDeque &q,
          const std::vector<uint64_t> &tasks)
{
    if (tasks.size() > q.capacity)
        fatal("seeding %zu tasks into a %u-entry deque", tasks.size(),
              q.capacity);
    mem.writeWord(q.headAddr(), 0);
    mem.writeWord(q.tailAddr(), tasks.size());
    mem.writeWord(q.lockAddr(), 0);
    for (size_t i = 0; i < tasks.size(); i++)
        mem.writeWord(q.taskSlot(i), tasks[i]);
}

/** rd = address of tasks[idx mod capacity]; idx in t_idx. */
static void
emitSlotAddr(Assembler &a, const TheDeque &q, Reg base, Reg t_idx, Reg rd)
{
    a.andi(rd, t_idx, int64_t(q.capacity - 1));
    a.shli(rd, rd, 3);
    a.add(rd, rd, base);
}

void
emitTake(Assembler &a, const TheDeque &q, Reg qr, Reg rd, Reg t0, Reg t1,
         Reg t2, Reg t3)
{
    std::string slow = a.freshLabel("take_slow");
    std::string fail = a.freshLabel("take_fail");
    std::string got = a.freshLabel("take_got");
    std::string done = a.freshLabel("take_done");

    // t = --T
    a.ld(t0, qr, tailOff);
    a.addi(t0, t0, -1);
    a.st(qr, tailOff, t0);
    // The THE fence: the tail decrement must be visible before we read
    // the head. This is the owner's (performance-critical) fence.
    a.fence(FenceRole::Critical);
    a.ld(t1, qr, headOff); // h = H
    // if (h > t) -> possible conflict with a thief
    a.blt(t0, t1, slow);
    a.bind(got);
    emitSlotAddr(a, q, qr, t0, t2);
    a.ld(rd, t2, tasksOff - 0); // rd = tasks[t]
    a.jmp(done);

    a.bind(slow);
    // Restore the tail and arbitrate through the lock.
    a.mark(marks::takeFallback);
    a.addi(t2, t0, 1);
    a.st(qr, tailOff, t2); // T = t + 1
    emitSpinLockAcquire(a, qr, lockOff, t2, t3);
    a.st(qr, tailOff, t0); // T = t again, now under the lock
    a.fence(FenceRole::Critical);
    a.ld(t1, qr, headOff);
    a.blt(t0, t1, fail);
    emitSpinLockRelease(a, qr, lockOff, t2);
    a.jmp(got);

    a.bind(fail);
    a.addi(t2, t0, 1);
    a.st(qr, tailOff, t2); // T = t + 1: leave the deque empty-consistent
    emitSpinLockRelease(a, qr, lockOff, t2);
    a.li(rd, int64_t(dequeEmpty));
    a.bind(done);
}

void
emitSteal(Assembler &a, const TheDeque &q, Reg qr, Reg rd, Reg t0, Reg t1,
          Reg t2, Reg t3)
{
    std::string fail = a.freshLabel("steal_fail");
    std::string done = a.freshLabel("steal_done");

    emitSpinLockAcquire(a, qr, lockOff, t2, t3);
    a.ld(t0, qr, headOff); // h = H
    a.addi(t1, t0, 1);
    a.st(qr, headOff, t1); // H = h + 1
    // The thief's fence: the head increment must be visible before we
    // read the tail. This is the non-critical fence of the group.
    a.fence(FenceRole::Noncritical);
    a.ld(t2, qr, tailOff); // t = T
    // if (h >= t) -> nothing to steal
    a.bge(t0, t2, fail);
    emitSlotAddr(a, q, qr, t0, t2);
    a.ld(rd, t2, tasksOff);
    emitSpinLockRelease(a, qr, lockOff, t2);
    a.mark(marks::taskStolen);
    a.jmp(done);

    a.bind(fail);
    a.st(qr, headOff, t0); // H = h
    emitSpinLockRelease(a, qr, lockOff, t2);
    a.li(rd, int64_t(dequeEmpty));
    a.bind(done);
}

void
emitPush(Assembler &a, const TheDeque &q, Reg qr, Reg task, Reg t0, Reg t1)
{
    a.ld(t0, qr, tailOff);
    emitSlotAddr(a, q, qr, t0, t1);
    a.st(t1, tasksOff, task); // tasks[T] = task (ordered before T bump)
    a.addi(t0, t0, 1);
    a.st(qr, tailOff, t0); // T++
}

} // namespace asf::runtime
