/**
 * @file
 * A biased (quickly reacquirable) lock, the paper's Section 4.4 use
 * case: the owner thread's fast path is a Dekker-style
 * store-fence-load; other threads announce themselves with an atomic
 * revoker count and fall back to a mutex.
 *
 *   owner acquire:  biasFlag = 1;  FENCE(Critical);  r = revokers;
 *                   r == 0 -> fast-path held, else undo and take mutex
 *   other acquire:  revokers++ (CAS);  spin biasFlag == 0;  take mutex
 *
 * The owner's fence is the performance-critical one (a wf under
 * WS+/SW+); the revokers' ordering comes from their atomic increment.
 *
 * Layout: +0 biasFlag | +32 revokers | +64 mutex  (one line each).
 */

#ifndef ASF_RUNTIME_BIASED_LOCK_HH
#define ASF_RUNTIME_BIASED_LOCK_HH

#include "prog/assembler.hh"
#include "runtime/layout.hh"

namespace asf::runtime
{

struct BiasedLock
{
    Addr base = 0;

    Addr biasAddr() const { return base; }
    Addr revokersAddr() const { return base + 32; }
    Addr mutexAddr() const { return base + 64; }
};

BiasedLock allocBiasedLock(GuestLayout &layout);

/**
 * Owner acquire: fast path or mutex fallback. `l` holds the lock base.
 * Clobbers t0-t2. Uses FenceRole::Critical.
 */
void emitBiasedOwnerAcquire(Assembler &a, Reg l, Reg t0, Reg t1, Reg t2);

/** Owner release: clears the bias flag (covers both paths: the fast
 *  path set only the flag, the slow path set flag 0 before the mutex,
 *  so the owner tracks which path it took in `took_fast`). */
void emitBiasedOwnerRelease(Assembler &a, Reg l, Reg took_fast, Reg t0);

/**
 * Non-owner acquire: CAS-increment the revoker count, wait for the
 * bias flag to drop, take the mutex. Clobbers t0-t3.
 */
void emitBiasedOtherAcquire(Assembler &a, Reg l, Reg t0, Reg t1, Reg t2,
                            Reg t3);

/** Non-owner release: drop the mutex, CAS-decrement the revokers. */
void emitBiasedOtherRelease(Assembler &a, Reg l, Reg t0, Reg t1, Reg t2);

} // namespace asf::runtime

#endif // ASF_RUNTIME_BIASED_LOCK_HH
