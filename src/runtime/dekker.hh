/**
 * @file
 * Dekker's two-thread mutual-exclusion algorithm in the guest mini-ISA.
 * The flag-store -> fence -> flag-load sequence is the canonical
 * two-fence group of the paper's Figure 1d; a shared counter incremented
 * in the critical section detects mutual-exclusion violations.
 */

#ifndef ASF_RUNTIME_DEKKER_HH
#define ASF_RUNTIME_DEKKER_HH

#include "prog/assembler.hh"
#include "runtime/layout.hh"

namespace asf::runtime
{

struct DekkerLayout
{
    Addr flag0 = 0;
    Addr flag1 = 0;
    Addr turn = 0;
    Addr counterAddr = 0;
};

DekkerLayout allocDekker(GuestLayout &layout);

/**
 * Build thread `tid` (0 or 1): `iterations` lock/increment/unlock rounds
 * with `think` compute cycles outside the critical section. Thread 0's
 * fences are Critical, thread 1's Noncritical. Set `fenced` false to
 * demonstrate the SC violation (counter losses) under plain TSO.
 */
Program buildDekkerProgram(const DekkerLayout &lay, unsigned tid,
                           unsigned iterations, unsigned think,
                           bool fenced = true);

} // namespace asf::runtime

#endif // ASF_RUNTIME_DEKKER_HH
