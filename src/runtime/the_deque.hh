/**
 * @file
 * The Cilk-5 THE work-stealing deque (Frigo, Leiserson, Randall 1998),
 * written in the guest mini-ISA exactly as the paper's Figure 5a uses it:
 * the owner's take() decrements the tail, fences, then reads the head;
 * a thief's steal() increments the head (under the deque lock), fences,
 * then reads the tail. The owner's fence carries FenceRole::Critical and
 * the thief's FenceRole::Noncritical, so under WS+/SW+ the owner gets
 * the weak fence, as Section 4.1 of the paper prescribes.
 *
 * Memory layout (per deque):
 *   +0   head          (own line)
 *   +32  tail          (own line)
 *   +64  lock          (own line)
 *   +96  tasks[capacity] (packed words)
 */

#ifndef ASF_RUNTIME_THE_DEQUE_HH
#define ASF_RUNTIME_THE_DEQUE_HH

#include "mem/memory_image.hh"
#include "prog/assembler.hh"
#include "runtime/layout.hh"

namespace asf::runtime
{

/** Sentinel returned by take()/steal() when the deque is empty. */
constexpr uint64_t dequeEmpty = ~uint64_t(0);

struct TheDeque
{
    Addr base = 0;
    unsigned capacity = 0; ///< power of two

    Addr headAddr() const { return base; }
    Addr tailAddr() const { return base + 32; }
    Addr lockAddr() const { return base + 64; }
    Addr tasksAddr() const { return base + 96; }
    Addr taskSlot(uint64_t idx) const
    {
        return tasksAddr() + (idx & (capacity - 1)) * wordBytes;
    }
};

/** Allocate a deque in the guest address space. */
TheDeque allocTheDeque(GuestLayout &layout, unsigned capacity);

/** Host-side helper: seed a deque with initial tasks (pre-run). */
void seedDeque(MemoryImage &mem, const TheDeque &q,
               const std::vector<uint64_t> &tasks);

/**
 * Emit take(): pop a task from the tail of the deque whose base address
 * is in register `q`. Result (task or dequeEmpty) lands in `rd`.
 * The THE fence is emitted with FenceRole::Critical.
 * Clobbers t0-t3.
 */
void emitTake(Assembler &a, const TheDeque &layout, Reg q, Reg rd, Reg t0,
              Reg t1, Reg t2, Reg t3);

/**
 * Emit steal(): take a task from the head of another worker's deque.
 * Result (task or dequeEmpty) in `rd`. The THE fence is emitted with
 * FenceRole::Noncritical. Clobbers t0-t3.
 */
void emitSteal(Assembler &a, const TheDeque &layout, Reg q, Reg rd, Reg t0,
               Reg t1, Reg t2, Reg t3);

/**
 * Emit push(): append the task in `task` to the tail (owner only, no
 * fence needed under TSO). Clobbers t0, t1.
 */
void emitPush(Assembler &a, const TheDeque &layout, Reg q, Reg task,
              Reg t0, Reg t1);

} // namespace asf::runtime

#endif // ASF_RUNTIME_THE_DEQUE_HH
