#include "runtime/biased_lock.hh"

#include "runtime/spinlock.hh"

namespace asf::runtime
{

namespace
{
constexpr int64_t biasOff = 0;
constexpr int64_t revokersOff = 32;
constexpr int64_t mutexOff = 64;
} // namespace

BiasedLock
allocBiasedLock(GuestLayout &layout)
{
    BiasedLock l;
    l.base = layout.granuleAlignedBlock(3 * lineBytes / wordBytes);
    return l;
}

void
emitBiasedOwnerAcquire(Assembler &a, Reg l, Reg took_fast, Reg t0, Reg t1)
{
    std::string done = a.freshLabel("bl_own_done");
    a.li(took_fast, 1);
    a.st(l, biasOff, took_fast); // biasFlag = 1
    // The owner's Dekker fence: bias visible before reading revokers.
    a.fence(FenceRole::Critical);
    a.ld(t0, l, revokersOff);
    a.li(t1, 0);
    a.beq(t0, t1, done); // no revoker: fast path held
    // Contended: undo the bias and fall back to the mutex.
    a.li(took_fast, 0);
    a.st(l, biasOff, took_fast);
    emitSpinLockAcquire(a, l, mutexOff, t0, t1);
    a.bind(done);
}

void
emitBiasedOwnerRelease(Assembler &a, Reg l, Reg took_fast, Reg t0)
{
    std::string slow = a.freshLabel("bl_rel_slow");
    std::string done = a.freshLabel("bl_rel_done");
    a.li(t0, 0);
    a.beq(took_fast, t0, slow);
    a.st(l, biasOff, t0); // fast path: just clear the bias
    a.jmp(done);
    a.bind(slow);
    emitSpinLockRelease(a, l, mutexOff, t0);
    a.bind(done);
}

void
emitBiasedOtherAcquire(Assembler &a, Reg l, Reg t0, Reg t1, Reg t2,
                       Reg t3)
{
    std::string incr = a.freshLabel("bl_oth_incr");
    std::string wait = a.freshLabel("bl_oth_wait");
    // revokers++ (CAS loop; the atomic orders like a full fence).
    a.bind(incr);
    a.ld(t0, l, revokersOff);
    a.addi(t1, t0, 1);
    a.cas(t2, l, revokersOff, t0, t1);
    a.bne(t2, t0, incr);
    // Wait for the owner's fast path to drain, then serialize on the
    // mutex with other revokers (and a fallen-back owner).
    a.bind(wait);
    a.ld(t0, l, biasOff);
    a.li(t3, 0);
    a.bne(t0, t3, wait);
    emitSpinLockAcquire(a, l, mutexOff, t0, t1);
}

void
emitBiasedOtherRelease(Assembler &a, Reg l, Reg t0, Reg t1, Reg t2)
{
    emitSpinLockRelease(a, l, mutexOff, t0);
    std::string decr = a.freshLabel("bl_oth_decr");
    a.bind(decr);
    a.ld(t0, l, revokersOff);
    a.addi(t1, t0, -1);
    a.cas(t2, l, revokersOff, t0, t1);
    a.bne(t2, t0, decr);
}

} // namespace asf::runtime
