/**
 * @file
 * Guest address-space layout helper: a bump allocator handing out words,
 * lines, and blocks. Workload generators use it to place shared
 * structures; nothing is ever freed (the address space is per-run).
 */

#ifndef ASF_RUNTIME_LAYOUT_HH
#define ASF_RUNTIME_LAYOUT_HH

#include "mem/address.hh"
#include "mem/message.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace asf
{

class GuestLayout
{
  public:
    explicit GuestLayout(Addr base = 0x10000) : next_(base)
    {
        if (!isLineAligned(base))
            fatal("GuestLayout base must be line-aligned");
    }

    /** One 8-byte word. */
    Addr word()
    {
        Addr a = next_;
        next_ += wordBytes;
        return a;
    }

    /** A fresh cache line (line-aligned word address). */
    Addr line()
    {
        alignToLine();
        Addr a = next_;
        next_ += lineBytes;
        return a;
    }

    /** `count` consecutive words, starting line-aligned. */
    Addr block(unsigned count)
    {
        alignToLine();
        Addr a = next_;
        next_ += Addr(count) * wordBytes;
        return a;
    }

    /** `count` words, each alone on its own line (no false sharing). */
    Addr paddedArray(unsigned count)
    {
        alignToLine();
        Addr a = next_;
        next_ += Addr(count) * lineBytes;
        return a;
    }

    /** Element address within a padded array. */
    static Addr paddedElem(Addr base, unsigned idx)
    {
        return base + Addr(idx) * lineBytes;
    }

    /** `count` consecutive words starting at a granule boundary, so a
     *  structure smaller than a granule maps to one directory module. */
    Addr granuleAlignedBlock(unsigned count)
    {
        next_ = (next_ + homeGranuleBytes - 1) &
                ~Addr(homeGranuleBytes - 1);
        Addr a = next_;
        next_ += Addr(count) * wordBytes;
        return a;
    }

    /** A fresh line in a fresh home-interleaving granule (its own
     *  directory module in an N <= nodes system). */
    Addr granule()
    {
        next_ = (next_ + homeGranuleBytes - 1) &
                ~Addr(homeGranuleBytes - 1);
        Addr a = next_;
        next_ += lineBytes;
        return a;
    }

    Addr cursor() const { return next_; }

  private:
    void alignToLine()
    {
        next_ = (next_ + lineBytes - 1) & ~Addr(lineBytes - 1);
    }

    Addr next_;
};

} // namespace asf

#endif // ASF_RUNTIME_LAYOUT_HH
