/**
 * @file
 * Guest event-counter ids used with the Mark instruction. The host reads
 * them back through System::guestCounter().
 */

#ifndef ASF_RUNTIME_MARKS_HH
#define ASF_RUNTIME_MARKS_HH

#include <cstdint>

namespace asf::marks
{

constexpr int64_t taskDone = 1;   ///< work-stealing: task executed
constexpr int64_t taskStolen = 2; ///< work-stealing: task obtained by steal
constexpr int64_t takeFallback = 3; ///< THE take() hit the lock path
constexpr int64_t txCommit = 4;   ///< STM transaction committed
constexpr int64_t txAbort = 5;    ///< STM transaction aborted (reader saw
                                  ///< a writer and restarted)
constexpr int64_t lockAcquired = 6; ///< bakery/spinlock acquisitions
constexpr int64_t iteration = 7;  ///< generic per-iteration marker

} // namespace asf::marks

#endif // ASF_RUNTIME_MARKS_HH
