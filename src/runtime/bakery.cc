#include "runtime/bakery.hh"

#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "sim/logging.hh"

namespace asf::runtime
{

using namespace regs;

BakeryLayout
allocBakery(GuestLayout &layout, unsigned num_threads)
{
    BakeryLayout lay;
    lay.numThreads = num_threads;
    lay.eBase = layout.block(num_threads);
    lay.nBase = layout.block(num_threads);
    lay.counterAddr = layout.line();
    return lay;
}

Program
buildBakeryProgram(const BakeryLayout &lay, unsigned tid,
                   unsigned iterations, unsigned think,
                   unsigned priority_tid, bool fenced)
{
    FenceRole role = tid == priority_tid ? FenceRole::Critical
                                         : FenceRole::Noncritical;
    Assembler a(format("bakery_t%u", tid));
    a.suppressFences(!fenced);

    // s0 = remaining iterations, s1 = E base, s2 = N base, s3 = my E
    // address, s4 = my N address, s5 = counter address, s6 = my ticket,
    // s8 = my thread id, s9 = thread count (baked in as constants).
    a.li(s0, int64_t(iterations));
    a.li(s1, int64_t(lay.eBase));
    a.li(s2, int64_t(lay.nBase));
    a.li(s3, int64_t(lay.eAddr(tid)));
    a.li(s4, int64_t(lay.nAddr(tid)));
    a.li(s5, int64_t(lay.counterAddr));
    a.li(s8, int64_t(tid));
    a.li(s9, int64_t(lay.numThreads));

    a.bind("iter");

    // --- doorway: E[i] = 1; fence; ticket = 1 + max(N[]) --------------
    a.li(t0, 1);
    a.st(s3, 0, t0);
    a.fence(role);
    a.li(s6, 0); // running max
    a.li(t1, 0); // j
    a.bind("maxloop");
    a.shli(t2, t1, 3);
    a.add(t2, t2, s2);
    a.ld(t3, t2, 0); // N[j]
    a.bge(s6, t3, "maxnext");
    a.mov(s6, t3);
    a.bind("maxnext");
    a.addi(t1, t1, 1);
    a.blt(t1, s9, "maxloop");
    a.addi(s6, s6, 1); // my ticket
    a.st(s4, 0, s6);   // N[i] = ticket
    a.li(t0, 0);
    a.st(s3, 0, t0); // E[i] = 0
    // Publish N[i]/E[i] before scanning the other threads.
    a.fence(role);

    // --- wait loop over every other thread ----------------------------
    a.li(s7, 0); // j
    a.bind("jloop");
    a.beq(s7, s8, "jnext");
    // wait until E[j] == 0
    a.bind("waitE");
    a.shli(t2, s7, 3);
    a.add(t2, t2, s1);
    a.ld(t3, t2, 0);
    a.li(t0, 0);
    a.bne(t3, t0, "waitE");
    // wait until N[j] == 0 or (N[j], j) > (N[i], i)
    a.bind("waitN");
    a.shli(t2, s7, 3);
    a.add(t2, t2, s2);
    a.ld(t3, t2, 0); // N[j]
    a.li(t0, 0);
    a.beq(t3, t0, "jnext");   // N[j] == 0: j is not competing
    a.blt(t3, s6, "waitN");   // N[j] < N[i]: j goes first, wait
    a.bne(t3, s6, "jnext");   // N[j] > N[i]: we go first
    a.blt(s7, s8, "waitN");   // tie: lower id goes first
    a.bind("jnext");
    a.addi(s7, s7, 1);
    a.blt(s7, s9, "jloop");

    // --- critical section ----------------------------------------------
    a.mark(marks::lockAcquired);
    a.ld(t0, s5, 0);
    a.addi(t0, t0, 1);
    a.st(s5, 0, t0);

    // --- release ---------------------------------------------------------
    a.li(t0, 0);
    a.st(s4, 0, t0); // N[i] = 0

    if (think > 0)
        a.compute(int64_t(think));

    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "iter");
    a.halt();
    return a.finish();
}

} // namespace asf::runtime
