/**
 * @file
 * A packet in flight on the mesh: a coherence Message plus the wire
 * metadata the network model needs.
 */

#ifndef ASF_NOC_PACKET_HH
#define ASF_NOC_PACKET_HH

#include "mem/message.hh"
#include "sim/types.hh"

namespace asf
{

struct Packet
{
    Message msg;
    Tick injectedAt = 0;
    Tick deliveredAt = 0;
    unsigned hops = 0;
    unsigned flits = 0;

    Tick latency() const { return deliveredAt - injectedAt; }
};

/** Number of link flits a message occupies given the link width. */
unsigned flitsFor(const Message &msg, unsigned link_bytes);

} // namespace asf

#endif // ASF_NOC_PACKET_HH
