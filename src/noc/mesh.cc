#include "noc/mesh.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace asf
{

Mesh::Mesh(EventQueue &eq, unsigned num_nodes, Tick hop_latency,
           unsigned link_bytes)
    : eq_(eq), numNodes_(num_nodes), hopLatency_(hop_latency),
      linkBytes_(link_bytes), sinks_(num_nodes),
      stats_("noc"), statPackets_(stats_.scalar("packets")),
      statBytes_(stats_.scalar("bytes")),
      statBytesBase_(stats_.scalar("bytesBase")),
      statBytesRetry_(stats_.scalar("bytesRetry")),
      statBytesGrt_(stats_.scalar("bytesGrt"))
{
    if (num_nodes == 0)
        fatal("mesh with zero nodes");
    cols_ = static_cast<unsigned>(std::ceil(std::sqrt(double(num_nodes))));
    rows_ = (num_nodes + cols_ - 1) / cols_;
    // Routers exist at every grid position: XY routes may pass through
    // positions that hold no endpoint (e.g. 8 nodes on a 3x3 grid).
    linkFree_.assign(size_t(cols_) * rows_ * numDirs, 0);
    linkBusy_.assign(linkFree_.size(), 0);
    linkByteCount_.assign(linkFree_.size(), 0);
    linkPackets_.assign(linkFree_.size(), 0);
    linkNamed_.assign(linkFree_.size(), false);
}

void
Mesh::setSink(NodeId node, Sink sink)
{
    if (node < 0 || unsigned(node) >= numNodes_)
        panic("setSink: bad node %d", node);
    sinks_[node] = std::move(sink);
}

Mesh::XY
Mesh::coords(NodeId n) const
{
    return XY{int(unsigned(n) % cols_), int(unsigned(n) / cols_)};
}

NodeId
Mesh::nodeAt(int x, int y) const
{
    return NodeId(unsigned(y) * cols_ + unsigned(x));
}

unsigned
Mesh::hopCount(NodeId from, NodeId to) const
{
    XY a = coords(from);
    XY b = coords(to);
    return unsigned(std::abs(a.x - b.x) + std::abs(a.y - b.y));
}

Tick
Mesh::route(const Message &msg, unsigned flits, unsigned bytes,
            unsigned &hops)
{
    static const char dir_char[numDirs] = {'E', 'W', 'N', 'S'};
    Tick t = eq_.now();
    XY cur = coords(msg.src);
    XY dst = coords(msg.dst);
    hops = 0;
    // X first, then Y (deterministic dimension-order routing).
    while (cur.x != dst.x || cur.y != dst.y) {
        Dir dir;
        XY next = cur;
        if (cur.x != dst.x) {
            dir = cur.x < dst.x ? East : West;
            next.x += cur.x < dst.x ? 1 : -1;
        } else {
            dir = cur.y < dst.y ? South : North;
            next.y += cur.y < dst.y ? 1 : -1;
        }
        NodeId at = nodeAt(cur.x, cur.y);
        size_t idx = size_t(at) * numDirs + dir;
        Tick &free = linkFree_[idx];
        Tick start = std::max(t, free);
        free = start + flits;
        linkBusy_[idx] += flits;
        linkByteCount_[idx] += bytes;
        linkPackets_[idx]++;
        if (Trace::get().enabled()) {
            uint32_t tid = 3000 + uint32_t(idx);
            if (!linkNamed_[idx]) {
                linkNamed_[idx] = true;
                Trace::get().threadName(
                    tid, format("link %d%c", at, dir_char[dir]));
            }
            Trace::get().complete(start, flits, tid, "noc",
                                  msgTypeName(msg.type));
        }
        t = start + hopLatency_;
        cur = next;
        hops++;
    }
    // The head arrives at t; the body serializes behind it at one flit
    // per cycle on the final link, so the tail lands flits-1 later.
    return t + (flits - 1);
}

std::vector<Mesh::LinkUtil>
Mesh::linkUtilization() const
{
    static const char dir_char[numDirs] = {'E', 'W', 'N', 'S'};
    std::vector<LinkUtil> out;
    for (size_t i = 0; i < linkBusy_.size(); i++) {
        if (linkPackets_[i] == 0)
            continue;
        out.push_back(LinkUtil{NodeId(i / numDirs),
                               dir_char[i % numDirs], linkBusy_[i],
                               linkByteCount_[i], linkPackets_[i]});
    }
    return out;
}

void
Mesh::send(Message msg)
{
    if (msg.src < 0 || unsigned(msg.src) >= numNodes_ || msg.dst < 0 ||
        unsigned(msg.dst) >= numNodes_)
        panic("mesh send with bad endpoints: %s", msg.toString().c_str());

    unsigned flits = flitsFor(msg, linkBytes_);
    unsigned bytes = msg.sizeBytes();
    statPackets_.inc();
    statBytes_.inc(bytes);
    switch (msg.trafficClass) {
      case TrafficClass::Base:
        statBytesBase_.inc(bytes);
        break;
      case TrafficClass::Retry:
        statBytesRetry_.inc(bytes);
        break;
      case TrafficClass::Grt:
        statBytesGrt_.inc(bytes);
        break;
    }

    Tick deliver;
    unsigned hops = 0;
    if (msg.src == msg.dst) {
        // Local loopback: one cycle through the node's own port.
        deliver = eq_.now() + 1;
    } else {
        deliver = route(msg, flits, bytes, hops);
    }
    latency_.sample(double(deliver - eq_.now()));

    NodeId dst = msg.dst;
    eq_.schedule(deliver, [this, dst, m = std::move(msg)]() {
        if (!sinks_[dst])
            panic("no sink registered for node %d", dst);
        sinks_[dst](m);
    });
}

} // namespace asf
