/**
 * @file
 * 2D mesh on-chip network with XY (dimension-order) routing, 5 cycles per
 * hop and 256-bit (32-byte) links, as in Table 2 of the paper.
 *
 * The model is an analytic pipeline: at injection the packet reserves each
 * directed link on its XY path in order. A link transfers one flit per
 * cycle, so a packet occupies a link for `flits` cycles starting when the
 * link frees; head latency per hop is `hopLatency`. Reservation order at
 * injection time preserves FIFO per link, which (with deterministic XY
 * routes) guarantees in-order delivery per (src, dst) pair - a property
 * the coherence protocol relies on.
 */

#ifndef ASF_NOC_MESH_HH
#define ASF_NOC_MESH_HH

#include <functional>
#include <vector>

#include "noc/packet.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

class Mesh
{
  public:
    using Sink = std::function<void(const Message &)>;

    Mesh(EventQueue &eq, unsigned num_nodes, Tick hop_latency = 5,
         unsigned link_bytes = 32);

    /** Register the component that receives messages addressed to node. */
    void setSink(NodeId node, Sink sink);

    /** Inject a message now; it is delivered via the event queue. */
    void send(Message msg);

    unsigned numNodes() const { return numNodes_; }
    unsigned cols() const { return cols_; }
    unsigned rows() const { return rows_; }

    /** Hop count of the XY route between two nodes. */
    unsigned hopCount(NodeId from, NodeId to) const;

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Mean delivered-packet latency in cycles. */
    double avgLatency() const { return latency_.mean(); }

  private:
    enum Dir { East, West, North, South, numDirs };

    struct XY
    {
        int x;
        int y;
    };

    XY coords(NodeId n) const;
    NodeId nodeAt(int x, int y) const;
    Tick &linkFree(NodeId from, Dir dir);

    /** Route msg, reserving links; returns delivery tick. */
    Tick route(const Message &msg, unsigned flits, unsigned &hops);

    EventQueue &eq_;
    unsigned numNodes_;
    unsigned cols_;
    unsigned rows_;
    Tick hopLatency_;
    unsigned linkBytes_;
    std::vector<Sink> sinks_;
    std::vector<Tick> linkFree_;
    StatGroup stats_;
    StatAverage latency_;
};

} // namespace asf

#endif // ASF_NOC_MESH_HH
