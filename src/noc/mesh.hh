/**
 * @file
 * 2D mesh on-chip network with XY (dimension-order) routing, 5 cycles per
 * hop and 256-bit (32-byte) links, as in Table 2 of the paper.
 *
 * The model is an analytic pipeline: at injection the packet reserves each
 * directed link on its XY path in order. A link transfers one flit per
 * cycle, so a packet occupies a link for `flits` cycles starting when the
 * link frees; head latency per hop is `hopLatency`. Reservation order at
 * injection time preserves FIFO per link, which (with deterministic XY
 * routes) guarantees in-order delivery per (src, dst) pair - a property
 * the coherence protocol relies on.
 */

#ifndef ASF_NOC_MESH_HH
#define ASF_NOC_MESH_HH

#include <functional>
#include <vector>

#include "noc/packet.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

class Mesh
{
  public:
    using Sink = std::function<void(const Message &)>;

    Mesh(EventQueue &eq, unsigned num_nodes, Tick hop_latency = 5,
         unsigned link_bytes = 32);

    /** Register the component that receives messages addressed to node. */
    void setSink(NodeId node, Sink sink);

    /** Inject a message now; it is delivered via the event queue. */
    void send(Message msg);

    unsigned numNodes() const { return numNodes_; }
    unsigned cols() const { return cols_; }
    unsigned rows() const { return rows_; }

    /** Hop count of the XY route between two nodes. */
    unsigned hopCount(NodeId from, NodeId to) const;

    /**
     * Fast-forward protocol: the mesh holds no self-timed state — every
     * in-flight packet completes through the event queue, which the
     * fast-forward path consults directly — so it never blocks an
     * idle-cycle jump.
     */
    bool quiescent() const { return true; }
    Tick nextWakeTick() const { return maxTick; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Mean delivered-packet latency in cycles. */
    double avgLatency() const { return latency_.mean(); }

    /** Injection-to-delivery latency distribution. */
    const StatAverage &latency() const { return latency_; }

    /** Utilization of one directed link (heatmap feed). */
    struct LinkUtil
    {
        NodeId node;         ///< grid position the link leaves
        char dir;            ///< 'E', 'W', 'N', 'S'
        uint64_t busyCycles; ///< flit-cycles the link was occupied
        uint64_t bytes;      ///< payload bytes carried
        uint64_t packets;    ///< packets that crossed the link
    };

    /** Per-link counters for every link that carried traffic. */
    std::vector<LinkUtil> linkUtilization() const;

    /** Raw per-directed-link flit-cycle counters over the *full* link
     *  enumeration (index = node * 4 + dir, dir order E,W,N,S). The
     *  vector's size and indexing are fixed at construction, which the
     *  interval time-series relies on for stable per-link deltas. */
    const std::vector<uint64_t> &linkBusyRaw() const { return linkBusy_; }

    /** Decode a raw link index into its grid node / direction. */
    static NodeId linkNode(unsigned idx) { return NodeId(idx / 4); }
    static char linkDir(unsigned idx)
    {
        static const char dir_char[4] = {'E', 'W', 'N', 'S'};
        return dir_char[idx % 4];
    }

  private:
    enum Dir { East, West, North, South, numDirs };

    struct XY
    {
        int x;
        int y;
    };

    XY coords(NodeId n) const;
    NodeId nodeAt(int x, int y) const;

    /** Route msg, reserving links; returns delivery tick (the cycle the
     *  packet's tail has fully crossed the final link). */
    Tick route(const Message &msg, unsigned flits, unsigned bytes,
               unsigned &hops);

    EventQueue &eq_;
    unsigned numNodes_;
    unsigned cols_;
    unsigned rows_;
    Tick hopLatency_;
    unsigned linkBytes_;
    std::vector<Sink> sinks_;
    std::vector<Tick> linkFree_;
    // Indexed like linkFree_: per directed link.
    std::vector<uint64_t> linkBusy_;
    std::vector<uint64_t> linkByteCount_;
    std::vector<uint64_t> linkPackets_;
    std::vector<bool> linkNamed_; ///< trace thread-name emitted
    StatGroup stats_;
    // Hot-path handles into stats_ (bound once at construction; map
    // entries are reference-stable).
    StatScalar &statPackets_;
    StatScalar &statBytes_;
    StatScalar &statBytesBase_;
    StatScalar &statBytesRetry_;
    StatScalar &statBytesGrt_;
    StatAverage latency_;
};

} // namespace asf

#endif // ASF_NOC_MESH_HH
