#include "noc/packet.hh"

namespace asf
{

unsigned
flitsFor(const Message &msg, unsigned link_bytes)
{
    unsigned bytes = msg.sizeBytes();
    return (bytes + link_bytes - 1) / link_bytes;
}

} // namespace asf
