/**
 * @file
 * A tiny two-pass assembler / program builder for the guest mini-ISA.
 * Runtime libraries (THE deque, TLRW, Bakery, ...) are emitted through
 * this interface with string labels; branches to labels not yet bound are
 * fixed up at finish().
 */

#ifndef ASF_PROG_ASSEMBLER_HH
#define ASF_PROG_ASSEMBLER_HH

#include <map>
#include <string>
#include <vector>

#include "prog/instr.hh"

namespace asf
{

class Assembler
{
  public:
    explicit Assembler(std::string program_name);

    // --- label management -------------------------------------------
    /** Bind `name` to the current position. Each name binds once. */
    void bind(const std::string &name);

    /** A fresh unique label name (for emitters used multiple times). */
    std::string freshLabel(const std::string &stem);

    // --- instruction emitters ---------------------------------------
    void nop();
    void li(Reg rd, int64_t imm);
    void mov(Reg rd, Reg ra);
    void add(Reg rd, Reg ra, Reg rb);
    void sub(Reg rd, Reg ra, Reg rb);
    void mul(Reg rd, Reg ra, Reg rb);
    void and_(Reg rd, Reg ra, Reg rb);
    void or_(Reg rd, Reg ra, Reg rb);
    void xor_(Reg rd, Reg ra, Reg rb);
    void addi(Reg rd, Reg ra, int64_t imm);
    void andi(Reg rd, Reg ra, int64_t imm);
    void muli(Reg rd, Reg ra, int64_t imm);
    void shli(Reg rd, Reg ra, int64_t imm);
    void shri(Reg rd, Reg ra, int64_t imm);
    void ld(Reg rd, Reg ra, int64_t offset = 0);
    void st(Reg ra, int64_t offset, Reg rs);
    void cas(Reg rd, Reg ra, int64_t offset, Reg expect, Reg desired);
    void xchg(Reg rd, Reg ra, int64_t offset, Reg rs);
    void fence(FenceRole role);
    void beq(Reg ra, Reg rb, const std::string &label);
    void bne(Reg ra, Reg rb, const std::string &label);
    void blt(Reg ra, Reg rb, const std::string &label);
    void bge(Reg ra, Reg rb, const std::string &label);
    void jmp(const std::string &label);
    void compute(int64_t cycles);
    void rand(Reg rd);
    void mark(int64_t counter);
    void halt();

    /**
     * While on, fence() emits nothing and instead records the site as
     * an OmittedFence on the finished Program. Runtime builders use it
     * to produce *unfenced* variants of their hand-fenced code that
     * still carry the hand placement as ground truth for the fence
     * synthesizer (src/analysis).
     */
    void suppressFences(bool on) { suppressFences_ = on; }

    /** Current emission position (== PC of the next instruction). */
    uint64_t here() const { return instrs_.size(); }

    /** Resolve all label references and produce the program. */
    Program finish();

  private:
    void emit(Instr ins);
    void emitBranch(Op op, Reg ra, Reg rb, const std::string &label);

    std::string name_;
    std::vector<Instr> instrs_;
    std::map<std::string, uint64_t> labels_;
    std::vector<std::pair<uint64_t, std::string>> fixups_;
    std::vector<OmittedFence> omitted_;
    uint64_t freshCounter_ = 0;
    bool finished_ = false;
    bool suppressFences_ = false;
};

} // namespace asf

#endif // ASF_PROG_ASSEMBLER_HH
