/**
 * @file
 * Architectural state of one guest thread. Deliberately a POD-ish value
 * type: W+ recovery takes a register checkpoint at every weak fence and
 * restores it on a deadlock timeout, and that checkpoint is simply a copy
 * of this struct.
 */

#ifndef ASF_PROG_THREAD_STATE_HH
#define ASF_PROG_THREAD_STATE_HH

#include <array>
#include <cstdint>

#include "prog/instr.hh"

namespace asf
{

class ThreadState
{
  public:
    ThreadState();

    /** Reset to entry point with all registers zero. */
    void reset(uint64_t entry_pc = 0, uint64_t prng_seed = 1);

    uint64_t reg(Reg r) const;
    void setReg(Reg r, uint64_t v);

    uint64_t pc() const { return pc_; }
    void setPc(uint64_t pc) { pc_ = pc; }

    bool halted() const { return halted_; }
    void halt() { halted_ = true; }

    /** Advance the per-thread xorshift state and return the new draw. */
    uint64_t nextRand();

    /**
     * Execute one non-memory, non-fence instruction against this state
     * (register ops, branches, rand, halt). Memory ops, fences, Compute,
     * and Mark are the core's business and must not be passed here.
     * Advances the PC.
     */
    void executeNonMem(const Instr &ins);

  private:
    std::array<uint64_t, numRegs> regs_;
    uint64_t pc_;
    uint64_t prng_;
    bool halted_;
};

/** A W+ checkpoint is just a saved copy of the thread state. */
using ThreadCheckpoint = ThreadState;

} // namespace asf

#endif // ASF_PROG_THREAD_STATE_HH
