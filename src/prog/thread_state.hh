/**
 * @file
 * Architectural state of one guest thread. Deliberately a POD-ish value
 * type: W+ recovery takes a register checkpoint at every weak fence and
 * restores it on a deadlock timeout, and that checkpoint is simply a copy
 * of this struct.
 */

#ifndef ASF_PROG_THREAD_STATE_HH
#define ASF_PROG_THREAD_STATE_HH

#include <array>
#include <cstdint>

#include "prog/instr.hh"
#include "sim/logging.hh"

namespace asf
{

class ThreadState
{
  public:
    ThreadState();

    /** Reset to entry point with all registers zero. */
    void reset(uint64_t entry_pc = 0, uint64_t prng_seed = 1);

    uint64_t reg(Reg r) const;
    void setReg(Reg r, uint64_t v);

    uint64_t pc() const { return pc_; }
    void setPc(uint64_t pc) { pc_ = pc; }

    bool halted() const { return halted_; }
    void halt() { halted_ = true; }

    /** Advance the per-thread xorshift state and return the new draw. */
    uint64_t nextRand();

    /**
     * Execute one non-memory, non-fence instruction against this state
     * (register ops, branches, rand, halt). Memory ops, fences, Compute,
     * and Mark are the core's business and must not be passed here.
     * Advances the PC.
     */
    void executeNonMem(const Instr &ins);

    /**
     * Inline executeNonMem with the register-range checks elided, for
     * the direct-execution burst interpreter. Callers must have
     * validated every register operand up front (TraceCache::build
     * demotes instructions with out-of-range operands to Breaker, which
     * routes them back to the checked path). Identical semantics
     * otherwise: both variants compile from the one executeNonMemImpl
     * body.
     */
    void executeNonMemUnchecked(const Instr &ins)
    {
        executeNonMemImpl<false>(ins);
    }

    /** Unchecked register read/write for trace-validated burst code. */
    uint64_t regUnchecked(Reg r) const { return regs_[r]; }
    void setRegUnchecked(Reg r, uint64_t v) { regs_[r] = v; }

  private:
    template <bool Checked> void executeNonMemImpl(const Instr &ins);

    std::array<uint64_t, numRegs> regs_;
    uint64_t pc_;
    uint64_t prng_;
    bool halted_;
};

template <bool Checked>
void
ThreadState::executeNonMemImpl(const Instr &ins)
{
    auto get = [this](Reg r) {
        if constexpr (Checked)
            return reg(r);
        else
            return regs_[r];
    };
    auto set = [this](Reg r, uint64_t v) {
        if constexpr (Checked)
            setReg(r, v);
        else
            regs_[r] = v;
    };
    uint64_t next_pc = pc_ + 1;
    switch (ins.op) {
      case Op::Nop:
        break;
      case Op::Li:
        set(ins.rd, static_cast<uint64_t>(ins.imm));
        break;
      case Op::Mov:
        set(ins.rd, get(ins.ra));
        break;
      case Op::Add:
        set(ins.rd, get(ins.ra) + get(ins.rb));
        break;
      case Op::Sub:
        set(ins.rd, get(ins.ra) - get(ins.rb));
        break;
      case Op::Mul:
        set(ins.rd, get(ins.ra) * get(ins.rb));
        break;
      case Op::And:
        set(ins.rd, get(ins.ra) & get(ins.rb));
        break;
      case Op::Or:
        set(ins.rd, get(ins.ra) | get(ins.rb));
        break;
      case Op::Xor:
        set(ins.rd, get(ins.ra) ^ get(ins.rb));
        break;
      case Op::Addi:
        set(ins.rd, get(ins.ra) + static_cast<uint64_t>(ins.imm));
        break;
      case Op::Andi:
        set(ins.rd, get(ins.ra) & static_cast<uint64_t>(ins.imm));
        break;
      case Op::Muli:
        set(ins.rd, get(ins.ra) * static_cast<uint64_t>(ins.imm));
        break;
      case Op::Shli:
        set(ins.rd, get(ins.ra) << (ins.imm & 63));
        break;
      case Op::Shri:
        set(ins.rd, get(ins.ra) >> (ins.imm & 63));
        break;
      case Op::Beq:
        if (get(ins.ra) == get(ins.rb))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Bne:
        if (get(ins.ra) != get(ins.rb))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Blt:
        if (static_cast<int64_t>(get(ins.ra)) <
            static_cast<int64_t>(get(ins.rb)))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Bge:
        if (static_cast<int64_t>(get(ins.ra)) >=
            static_cast<int64_t>(get(ins.rb)))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Jmp:
        next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Rand:
        set(ins.rd, nextRand());
        break;
      case Op::Halt:
        halted_ = true;
        break;
      default:
        panic("executeNonMem called on '%s'", opName(ins.op));
    }
    pc_ = next_pc;
}

/** A W+ checkpoint is just a saved copy of the thread state. */
using ThreadCheckpoint = ThreadState;

} // namespace asf

#endif // ASF_PROG_THREAD_STATE_HH
