#include "prog/assembler.hh"

#include "sim/logging.hh"

namespace asf
{

Assembler::Assembler(std::string program_name) : name_(std::move(program_name))
{
}

void
Assembler::bind(const std::string &name)
{
    if (labels_.count(name))
        fatal("assembler '%s': label '%s' bound twice", name_.c_str(),
              name.c_str());
    labels_[name] = here();
}

std::string
Assembler::freshLabel(const std::string &stem)
{
    return format("%s$%llu", stem.c_str(),
                  (unsigned long long)freshCounter_++);
}

void
Assembler::emit(Instr ins)
{
    if (finished_)
        panic("assembler '%s': emit after finish()", name_.c_str());
    instrs_.push_back(ins);
}

void Assembler::nop() { emit({.op = Op::Nop}); }

void
Assembler::li(Reg rd, int64_t imm)
{
    emit({.op = Op::Li, .rd = rd, .imm = imm});
}

void
Assembler::mov(Reg rd, Reg ra)
{
    emit({.op = Op::Mov, .rd = rd, .ra = ra});
}

void
Assembler::add(Reg rd, Reg ra, Reg rb)
{
    emit({.op = Op::Add, .rd = rd, .ra = ra, .rb = rb});
}

void
Assembler::sub(Reg rd, Reg ra, Reg rb)
{
    emit({.op = Op::Sub, .rd = rd, .ra = ra, .rb = rb});
}

void
Assembler::mul(Reg rd, Reg ra, Reg rb)
{
    emit({.op = Op::Mul, .rd = rd, .ra = ra, .rb = rb});
}

void
Assembler::and_(Reg rd, Reg ra, Reg rb)
{
    emit({.op = Op::And, .rd = rd, .ra = ra, .rb = rb});
}

void
Assembler::or_(Reg rd, Reg ra, Reg rb)
{
    emit({.op = Op::Or, .rd = rd, .ra = ra, .rb = rb});
}

void
Assembler::xor_(Reg rd, Reg ra, Reg rb)
{
    emit({.op = Op::Xor, .rd = rd, .ra = ra, .rb = rb});
}

void
Assembler::addi(Reg rd, Reg ra, int64_t imm)
{
    emit({.op = Op::Addi, .rd = rd, .ra = ra, .imm = imm});
}

void
Assembler::andi(Reg rd, Reg ra, int64_t imm)
{
    emit({.op = Op::Andi, .rd = rd, .ra = ra, .imm = imm});
}

void
Assembler::muli(Reg rd, Reg ra, int64_t imm)
{
    emit({.op = Op::Muli, .rd = rd, .ra = ra, .imm = imm});
}

void
Assembler::shli(Reg rd, Reg ra, int64_t imm)
{
    emit({.op = Op::Shli, .rd = rd, .ra = ra, .imm = imm});
}

void
Assembler::shri(Reg rd, Reg ra, int64_t imm)
{
    emit({.op = Op::Shri, .rd = rd, .ra = ra, .imm = imm});
}

void
Assembler::ld(Reg rd, Reg ra, int64_t offset)
{
    emit({.op = Op::Ld, .rd = rd, .ra = ra, .imm = offset});
}

void
Assembler::st(Reg ra, int64_t offset, Reg rs)
{
    emit({.op = Op::St, .ra = ra, .rb = rs, .imm = offset});
}

void
Assembler::cas(Reg rd, Reg ra, int64_t offset, Reg expect, Reg desired)
{
    emit({.op = Op::Cas, .rd = rd, .ra = ra, .rb = expect, .rc = desired,
          .imm = offset});
}

void
Assembler::xchg(Reg rd, Reg ra, int64_t offset, Reg rs)
{
    emit({.op = Op::Xchg, .rd = rd, .ra = ra, .rb = rs, .imm = offset});
}

void
Assembler::fence(FenceRole role)
{
    if (suppressFences_) {
        omitted_.push_back({here(), role});
        return;
    }
    emit({.op = Op::Fence, .role = role});
}

void
Assembler::emitBranch(Op op, Reg ra, Reg rb, const std::string &label)
{
    fixups_.emplace_back(here(), label);
    emit({.op = op, .ra = ra, .rb = rb, .imm = 0});
}

void
Assembler::beq(Reg ra, Reg rb, const std::string &label)
{
    emitBranch(Op::Beq, ra, rb, label);
}

void
Assembler::bne(Reg ra, Reg rb, const std::string &label)
{
    emitBranch(Op::Bne, ra, rb, label);
}

void
Assembler::blt(Reg ra, Reg rb, const std::string &label)
{
    emitBranch(Op::Blt, ra, rb, label);
}

void
Assembler::bge(Reg ra, Reg rb, const std::string &label)
{
    emitBranch(Op::Bge, ra, rb, label);
}

void
Assembler::jmp(const std::string &label)
{
    fixups_.emplace_back(here(), label);
    emit({.op = Op::Jmp, .imm = 0});
}

void
Assembler::compute(int64_t cycles)
{
    if (cycles < 0)
        fatal("assembler '%s': negative compute latency", name_.c_str());
    emit({.op = Op::Compute, .imm = cycles});
}

void
Assembler::rand(Reg rd)
{
    emit({.op = Op::Rand, .rd = rd});
}

void
Assembler::mark(int64_t counter)
{
    emit({.op = Op::Mark, .imm = counter});
}

void Assembler::halt() { emit({.op = Op::Halt}); }

Program
Assembler::finish()
{
    if (finished_)
        panic("assembler '%s': finish() called twice", name_.c_str());
    for (const auto &[pos, label] : fixups_) {
        auto it = labels_.find(label);
        if (it == labels_.end())
            fatal("assembler '%s': undefined label '%s'", name_.c_str(),
                  label.c_str());
        instrs_[pos].imm = static_cast<int64_t>(it->second);
    }
    finished_ = true;
    Program p;
    p.name = name_;
    p.instrs = std::move(instrs_);
    p.omittedFences = std::move(omitted_);
    return p;
}

} // namespace asf
