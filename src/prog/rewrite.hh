/**
 * @file
 * Guest-program rewriting: fence insertion with control-flow repair.
 * The fence synthesizer (src/analysis) works on *positions between
 * instructions*; this module materializes a placement by splicing
 * Fence instructions into the flat instruction vector and retargeting
 * every branch/jump so control flow is preserved.
 *
 * A fence inserted "before pc q" guards the instruction at q: every
 * path that executes q executes the fence first, because jumps whose
 * target was q are redirected to the fence.
 */

#ifndef ASF_PROG_REWRITE_HH
#define ASF_PROG_REWRITE_HH

#include <vector>

#include "prog/instr.hh"

namespace asf
{

/** One fence to splice in, at the position just before `beforePc`. */
struct FenceInsertion
{
    uint64_t beforePc = 0;
    FenceRole role = FenceRole::Critical;

    bool operator==(const FenceInsertion &) const = default;
};

/**
 * Return a copy of `p` with a Fence spliced in before each requested
 * pc (duplicates at the same position collapse to one fence, keeping
 * the strongest role demand: any Noncritical wins over Critical).
 * Branch and jump targets are remapped; a target that named an
 * insertion point now lands on the fence. `beforePc` may equal
 * p.size() only if the program ends without Halt (it cannot: fatal).
 */
Program insertFences(const Program &p,
                     std::vector<FenceInsertion> insertions);

/**
 * Map a pc of the original program to their pc in the rewritten one
 * (the position of the same instruction, after all splices). Useful
 * for relating analysis results to the rewritten program.
 */
uint64_t rewrittenPc(const std::vector<FenceInsertion> &sorted_unique,
                     uint64_t original_pc);

} // namespace asf

#endif // ASF_PROG_REWRITE_HH
