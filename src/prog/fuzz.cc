#include "prog/fuzz.hh"

#include "mem/address.hh"
#include "runtime/layout.hh"
#include "sim/logging.hh"

namespace asf
{

namespace
{

/** Byte stride between shared locations. */
unsigned
locStride(const FuzzConfig &cfg)
{
    return cfg.packLocations ? wordBytes : lineBytes;
}

} // namespace

Addr
FuzzSetup::locAddr(unsigned i) const
{
    return sharedBase + Addr(i) * locStride(cfg);
}

Addr
FuzzSetup::checksumAddr(unsigned tid) const
{
    return resultBase + Addr(tid) * lineBytes;
}

Addr
FuzzSetup::loadCountAddr(unsigned tid) const
{
    return checksumAddr(tid) + wordBytes;
}

uint64_t
FuzzSetup::token(unsigned tid, unsigned round, unsigned idx)
{
    return (uint64_t(tid + 1) << 24) | (uint64_t(round) << 8) |
           uint64_t(idx + 1);
}

bool
FuzzSetup::tokenValid(uint64_t v, unsigned num_threads)
{
    if (v == 0)
        return true;
    uint64_t tid_part = v >> 24;
    return tid_part >= 1 && tid_part <= num_threads && (v & 0xff) != 0;
}

FuzzSetup
buildFuzz(const FuzzConfig &cfg)
{
    if (cfg.numThreads == 0 || cfg.numLocations == 0 || cfg.rounds == 0)
        fatal("degenerate fuzz config");
    if (cfg.singleWriterPerLoc && cfg.numLocations < cfg.numThreads)
        fatal("single-writer fuzzing needs >= one location per thread");

    FuzzSetup setup;
    setup.cfg = cfg;
    GuestLayout layout;
    setup.sharedBase =
        layout.block(cfg.numLocations * locStride(cfg) / wordBytes);
    setup.resultBase = layout.paddedArray(cfg.numThreads);

    Rng rng(cfg.seed);
    setup.expectedFinal.assign(cfg.numLocations, 0);
    for (unsigned tid = 0; tid < cfg.numThreads; tid++) {
        Assembler a(format("fuzz_t%u_s%llu", tid,
                           (unsigned long long)cfg.seed));
        const Reg base = 16, checksum = 17, count = 18, tmp = 0,
                  tmp2 = 1;
        a.li(base, int64_t(setup.sharedBase));
        a.li(checksum, 0);
        a.li(count, 0);

        FenceRole role = tid == 0 ? FenceRole::Critical
                                  : FenceRole::Noncritical;

        for (unsigned round = 0; round < cfg.rounds; round++) {
            unsigned stores =
                unsigned(rng.between(1, cfg.maxStoresPerRound));
            unsigned loads = unsigned(rng.between(1, cfg.maxLoadsPerRound));

            for (unsigned s = 0; s < stores; s++) {
                unsigned loc;
                if (cfg.singleWriterPerLoc) {
                    // Partition the locations round-robin by thread id.
                    unsigned mine =
                        (cfg.numLocations + cfg.numThreads - 1 - tid) /
                        cfg.numThreads;
                    loc = tid + cfg.numThreads *
                                    unsigned(rng.range(mine ? mine : 1));
                } else {
                    loc = unsigned(rng.range(cfg.numLocations));
                }
                uint64_t tok = FuzzSetup::token(tid, round, s);
                a.li(tmp, int64_t(tok));
                a.st(base, int64_t(Addr(loc) * locStride(cfg)), tmp);
                if (cfg.singleWriterPerLoc)
                    setup.expectedFinal[loc] = tok;
            }

            a.fence(role);

            if (cfg.maxCompute > 0)
                a.compute(int64_t(rng.range(cfg.maxCompute) + 1));

            for (unsigned l = 0; l < loads; l++) {
                unsigned loc = unsigned(rng.range(cfg.numLocations));
                a.ld(tmp, base, int64_t(Addr(loc) * locStride(cfg)));
                a.add(checksum, checksum, tmp);
                a.addi(count, count, 1);
            }

            // Atomic rounds (off by default: the guard keeps the rng
            // stream — and thus every program — identical at the same
            // seed when disabled). XCHG drains fences + write buffer
            // first, so the fence discipline is preserved.
            if (cfg.maxRmwsPerRound > 0) {
                unsigned rmws =
                    unsigned(rng.between(0, cfg.maxRmwsPerRound));
                for (unsigned r = 0; r < rmws; r++) {
                    unsigned loc;
                    if (cfg.singleWriterPerLoc) {
                        unsigned mine = (cfg.numLocations +
                                         cfg.numThreads - 1 - tid) /
                                        cfg.numThreads;
                        loc = tid + cfg.numThreads *
                                        unsigned(rng.range(mine ? mine
                                                                : 1));
                    } else {
                        loc = unsigned(rng.range(cfg.numLocations));
                    }
                    // Distinct idx space from this round's stores.
                    uint64_t tok = FuzzSetup::token(
                        tid, round, cfg.maxStoresPerRound + r);
                    a.li(tmp, int64_t(tok));
                    a.xchg(tmp2, base,
                           int64_t(Addr(loc) * locStride(cfg)), tmp);
                    a.add(checksum, checksum, tmp2);
                    a.addi(count, count, 1);
                    if (cfg.singleWriterPerLoc)
                        setup.expectedFinal[loc] = tok;
                }
            }
        }

        a.li(tmp2, int64_t(setup.checksumAddr(tid)));
        a.st(tmp2, 0, checksum);
        a.st(tmp2, int64_t(wordBytes), count);
        a.halt();
        setup.programs.push_back(a.finish());
    }
    return setup;
}

} // namespace asf
