#include "prog/instr.hh"

#include "sim/logging.hh"

namespace asf
{

bool
Instr::isMem() const
{
    return op == Op::Ld || op == Op::St || op == Op::Cas || op == Op::Xchg;
}

bool
Instr::isAtomic() const
{
    return op == Op::Cas || op == Op::Xchg;
}

bool
Instr::readsMem() const
{
    return op == Op::Ld || isAtomic();
}

bool
Instr::writesMem() const
{
    return op == Op::St || isAtomic();
}

bool
Instr::isCondBranch() const
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge;
}

bool
Instr::isControl() const
{
    return isCondBranch() || op == Op::Jmp;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Li: return "li";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Muli: return "muli";
      case Op::Shli: return "shli";
      case Op::Shri: return "shri";
      case Op::Ld: return "ld";
      case Op::St: return "st";
      case Op::Cas: return "cas";
      case Op::Xchg: return "xchg";
      case Op::Fence: return "fence";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Jmp: return "jmp";
      case Op::Compute: return "compute";
      case Op::Rand: return "rand";
      case Op::Mark: return "mark";
      case Op::Halt: return "halt";
    }
    return "<bad-op>";
}

std::string
Instr::toString() const
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
        return opName(op);
      case Op::Li:
        return format("li x%u, %lld", rd, (long long)imm);
      case Op::Mov:
        return format("mov x%u, x%u", rd, ra);
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::And:
      case Op::Or:
      case Op::Xor:
        return format("%s x%u, x%u, x%u", opName(op), rd, ra, rb);
      case Op::Addi:
      case Op::Andi:
      case Op::Muli:
      case Op::Shli:
      case Op::Shri:
        return format("%s x%u, x%u, %lld", opName(op), rd, ra,
                      (long long)imm);
      case Op::Ld:
        return format("ld x%u, [x%u%+lld]", rd, ra, (long long)imm);
      case Op::St:
        return format("st [x%u%+lld], x%u", ra, (long long)imm, rb);
      case Op::Cas:
        return format("cas x%u, [x%u%+lld], x%u, x%u", rd, ra,
                      (long long)imm, rb, rc);
      case Op::Xchg:
        return format("xchg x%u, [x%u%+lld], x%u", rd, ra,
                      (long long)imm, rb);
      case Op::Fence:
        return format("fence.%s",
                      role == FenceRole::Critical ? "crit" : "nc");
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
        return format("%s x%u, x%u, @%lld", opName(op), ra, rb,
                      (long long)imm);
      case Op::Jmp:
        return format("jmp @%lld", (long long)imm);
      case Op::Compute:
        return format("compute %lld", (long long)imm);
      case Op::Rand:
        return format("rand x%u", rd);
      case Op::Mark:
        return format("mark %lld", (long long)imm);
    }
    return "<bad-instr>";
}

const Instr &
Program::at(uint64_t pc) const
{
    if (pc >= instrs.size())
        panic("program '%s': pc %llu out of range (%zu instrs)",
              name.c_str(), (unsigned long long)pc, instrs.size());
    return instrs[pc];
}

} // namespace asf
