#include "prog/thread_state.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace asf
{

ThreadState::ThreadState()
{
    reset();
}

void
ThreadState::reset(uint64_t entry_pc, uint64_t prng_seed)
{
    regs_.fill(0);
    pc_ = entry_pc;
    prng_ = prng_seed ? prng_seed : 1;
    halted_ = false;
}

uint64_t
ThreadState::reg(Reg r) const
{
    if (r >= numRegs)
        panic("register x%u out of range", r);
    return regs_[r];
}

void
ThreadState::setReg(Reg r, uint64_t v)
{
    if (r >= numRegs)
        panic("register x%u out of range", r);
    regs_[r] = v;
}

uint64_t
ThreadState::nextRand()
{
    prng_ = xorshiftStep(prng_);
    return prng_;
}

void
ThreadState::executeNonMem(const Instr &ins)
{
    executeNonMemImpl<true>(ins);
}

} // namespace asf
