#include "prog/thread_state.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace asf
{

ThreadState::ThreadState()
{
    reset();
}

void
ThreadState::reset(uint64_t entry_pc, uint64_t prng_seed)
{
    regs_.fill(0);
    pc_ = entry_pc;
    prng_ = prng_seed ? prng_seed : 1;
    halted_ = false;
}

uint64_t
ThreadState::reg(Reg r) const
{
    if (r >= numRegs)
        panic("register x%u out of range", r);
    return regs_[r];
}

void
ThreadState::setReg(Reg r, uint64_t v)
{
    if (r >= numRegs)
        panic("register x%u out of range", r);
    regs_[r] = v;
}

uint64_t
ThreadState::nextRand()
{
    prng_ = xorshiftStep(prng_);
    return prng_;
}

void
ThreadState::executeNonMem(const Instr &ins)
{
    uint64_t next_pc = pc_ + 1;
    switch (ins.op) {
      case Op::Nop:
        break;
      case Op::Li:
        setReg(ins.rd, static_cast<uint64_t>(ins.imm));
        break;
      case Op::Mov:
        setReg(ins.rd, reg(ins.ra));
        break;
      case Op::Add:
        setReg(ins.rd, reg(ins.ra) + reg(ins.rb));
        break;
      case Op::Sub:
        setReg(ins.rd, reg(ins.ra) - reg(ins.rb));
        break;
      case Op::Mul:
        setReg(ins.rd, reg(ins.ra) * reg(ins.rb));
        break;
      case Op::And:
        setReg(ins.rd, reg(ins.ra) & reg(ins.rb));
        break;
      case Op::Or:
        setReg(ins.rd, reg(ins.ra) | reg(ins.rb));
        break;
      case Op::Xor:
        setReg(ins.rd, reg(ins.ra) ^ reg(ins.rb));
        break;
      case Op::Addi:
        setReg(ins.rd, reg(ins.ra) + static_cast<uint64_t>(ins.imm));
        break;
      case Op::Andi:
        setReg(ins.rd, reg(ins.ra) & static_cast<uint64_t>(ins.imm));
        break;
      case Op::Muli:
        setReg(ins.rd, reg(ins.ra) * static_cast<uint64_t>(ins.imm));
        break;
      case Op::Shli:
        setReg(ins.rd, reg(ins.ra) << (ins.imm & 63));
        break;
      case Op::Shri:
        setReg(ins.rd, reg(ins.ra) >> (ins.imm & 63));
        break;
      case Op::Beq:
        if (reg(ins.ra) == reg(ins.rb))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Bne:
        if (reg(ins.ra) != reg(ins.rb))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Blt:
        if (static_cast<int64_t>(reg(ins.ra)) <
            static_cast<int64_t>(reg(ins.rb)))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Bge:
        if (static_cast<int64_t>(reg(ins.ra)) >=
            static_cast<int64_t>(reg(ins.rb)))
            next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Jmp:
        next_pc = static_cast<uint64_t>(ins.imm);
        break;
      case Op::Rand:
        setReg(ins.rd, nextRand());
        break;
      case Op::Halt:
        halted_ = true;
        break;
      default:
        panic("executeNonMem called on '%s'", opName(ins.op));
    }
    pc_ = next_pc;
}

} // namespace asf
