/**
 * @file
 * The guest mini-ISA. Workloads (work-stealing runtime, TLRW STM, Bakery,
 * litmus tests) are written in this ISA and executed by the simulated
 * cores. Thread state is tiny and trivially copyable, which is what makes
 * the W+ design's register-checkpoint rollback implementable exactly as
 * the paper describes.
 */

#ifndef ASF_PROG_INSTR_HH
#define ASF_PROG_INSTR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace asf
{

/** Guest register index (x0..x31). x0 is an ordinary register, not zero. */
using Reg = uint8_t;

constexpr unsigned numRegs = 32;

/**
 * The role a fence plays in its fence group. The workload marks each fence
 * with the role the paper assigns it (e.g. the work-queue owner's fence is
 * Critical, the thief's is Noncritical); the active fence design maps the
 * role to a Strong or Weak fence at execution time. This is how one
 * workload binary runs under S+, WS+, SW+, W+, and Wee unchanged.
 */
enum class FenceRole : uint8_t
{
    Critical,    ///< Performance-critical thread's fence.
    Noncritical, ///< The other thread(s)' fence.
};

enum class Op : uint8_t
{
    Nop,
    Li,      ///< rd = imm
    Mov,     ///< rd = ra
    Add,     ///< rd = ra + rb
    Sub,     ///< rd = ra - rb
    Mul,     ///< rd = ra * rb
    And,     ///< rd = ra & rb
    Or,      ///< rd = ra | rb
    Xor,     ///< rd = ra ^ rb
    Addi,    ///< rd = ra + imm
    Andi,    ///< rd = ra & imm
    Muli,    ///< rd = ra * imm
    Shli,    ///< rd = ra << imm
    Shri,    ///< rd = ra >> imm (logical)
    Ld,      ///< rd = mem64[ra + imm]
    St,      ///< mem64[ra + imm] = rb
    Cas,     ///< rd = mem64[ra+imm]; if rd == rb: mem64[ra+imm] = rc
             ///< (atomic; full-fence semantics, like x86 LOCK CMPXCHG)
    Xchg,    ///< rd = mem64[ra+imm]; mem64[ra+imm] = rb (atomic full fence)
    Fence,   ///< memory fence with a FenceRole
    Beq,     ///< if ra == rb goto imm
    Bne,     ///< if ra != rb goto imm
    Blt,     ///< if (int64)ra < (int64)rb goto imm
    Bge,     ///< if (int64)ra >= (int64)rb goto imm
    Jmp,     ///< goto imm
    Compute, ///< occupy the core for imm cycles of non-memory work
    Rand,    ///< rd = next per-thread xorshift value
    Mark,    ///< bump guest event counter #imm (tx commit, task done, ...)
    Halt,    ///< thread finished
};

/** One decoded instruction. */
struct Instr
{
    Op op = Op::Nop;
    Reg rd = 0;
    Reg ra = 0;
    Reg rb = 0;
    Reg rc = 0;
    int64_t imm = 0;
    FenceRole role = FenceRole::Critical;

    /** True for Ld/St/Cas/Xchg. */
    bool isMem() const;
    /** True for Cas/Xchg. */
    bool isAtomic() const;
    /** True for Ld/Cas/Xchg (reads memory). */
    bool readsMem() const;
    /** True for St/Cas/Xchg (may write memory). */
    bool writesMem() const;
    /** True for Beq/Bne/Blt/Bge (conditional, two successors). */
    bool isCondBranch() const;
    /** True for conditional branches and Jmp: imm is a PC target. */
    bool isControl() const;
    /** Human-readable disassembly. */
    std::string toString() const;
};

/** Mnemonic of an opcode. */
const char *opName(Op op);

/**
 * A fence site a builder deliberately left out (Assembler fence
 * suppression): the hand-placed ground truth an unfenced synthesis
 * input carries along. `beforePc` is the index of the instruction the
 * fence would have immediately preceded.
 */
struct OmittedFence
{
    uint64_t beforePc = 0;
    FenceRole role = FenceRole::Critical;

    bool operator==(const OmittedFence &) const = default;
};

/**
 * A complete guest program: a flat instruction vector. PC values are
 * indices into instrs. Programs are immutable once built and shared by
 * all threads that run them.
 */
struct Program
{
    std::string name;
    std::vector<Instr> instrs;
    /** Hand-placed fence sites suppressed at build time (see
     *  Assembler::suppressFences); empty for normally built programs.
     *  Metadata only - execution ignores it. */
    std::vector<OmittedFence> omittedFences;

    size_t size() const { return instrs.size(); }
    const Instr &at(uint64_t pc) const;
};

} // namespace asf

#endif // ASF_PROG_INSTR_HH
