/**
 * @file
 * Random concurrent-program generation for property testing. Programs
 * are "fence-disciplined": every shared store is separated from every
 * subsequent shared load by a fence (the Shasha-Snir delay-set fully
 * fenced), so under every fence design the execution must be
 * SC-equivalent - making cross-design functional equivalence and
 * invariant checks meaningful.
 *
 * Each thread runs a loop of rounds; per round it performs a random mix
 * of shared stores (tagged with a unique token), a fence, and shared
 * loads whose observations are accumulated into a per-thread checksum
 * written to a private result area. Two invariants hold for ANY correct
 * TSO implementation with fences:
 *
 *  1. token integrity: every loaded value is 0 or a token some thread
 *     actually stored there;
 *  2. per-location monotonicity when configured with one writer per
 *     location (values only grow).
 */

#ifndef ASF_PROG_FUZZ_HH
#define ASF_PROG_FUZZ_HH

#include <vector>

#include "prog/assembler.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace asf
{

struct FuzzConfig
{
    unsigned numThreads = 4;
    unsigned numLocations = 8;   ///< shared word slots
    unsigned rounds = 12;        ///< fence groups per thread
    unsigned maxStoresPerRound = 3;
    unsigned maxLoadsPerRound = 3;
    /**
     * Up to this many atomic XCHG rounds per fence group (after the
     * loads), each swapping a fresh token into a location and folding
     * the swapped-out value into the checksum. 0 (the default, which
     * also draws no extra randomness) keeps programs identical to
     * pre-RMW builds at the same seed. Atomics drain the write buffer
     * first, so the fence discipline is preserved.
     */
    unsigned maxRmwsPerRound = 0;
    unsigned maxCompute = 20;    ///< random think time per round
    bool packLocations = false;  ///< share cache lines (false sharing)
    bool singleWriterPerLoc = false; ///< enables monotonicity checking
    uint64_t seed = 1;
};

struct FuzzSetup
{
    FuzzConfig cfg;
    Addr sharedBase = 0;   ///< numLocations shared words
    Addr resultBase = 0;   ///< per-thread result line (checksum, count)
    std::vector<Program> programs; ///< one per thread
    /** With singleWriterPerLoc: the exact final value of each location
     *  (its writer's program-order-last store), 0 if never written.
     *  Lets tests check the drained memory image precisely. */
    std::vector<uint64_t> expectedFinal;

    Addr locAddr(unsigned i) const;
    Addr checksumAddr(unsigned tid) const;
    Addr loadCountAddr(unsigned tid) const;

    /**
     * Token encoding: stores write (tid+1) << 24 | round << 8 | idx,
     * guaranteeing system-wide uniqueness and a recoverable writer id.
     */
    static uint64_t token(unsigned tid, unsigned round, unsigned idx);
    static bool tokenValid(uint64_t v, unsigned num_threads);
};

/** Build the programs and layout for a fuzz run. */
FuzzSetup buildFuzz(const FuzzConfig &cfg);

} // namespace asf

#endif // ASF_PROG_FUZZ_HH
