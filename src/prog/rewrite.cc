#include "prog/rewrite.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace asf
{

namespace
{

/** Sort by position and collapse duplicates (Noncritical wins: it
 *  resolves to the stronger fence under the asymmetric designs). */
std::vector<FenceInsertion>
normalize(std::vector<FenceInsertion> ins)
{
    std::sort(ins.begin(), ins.end(),
              [](const FenceInsertion &a, const FenceInsertion &b) {
                  return a.beforePc < b.beforePc;
              });
    std::vector<FenceInsertion> out;
    for (const FenceInsertion &f : ins) {
        if (!out.empty() && out.back().beforePc == f.beforePc) {
            if (f.role == FenceRole::Noncritical)
                out.back().role = FenceRole::Noncritical;
            continue;
        }
        out.push_back(f);
    }
    return out;
}

} // namespace

uint64_t
rewrittenPc(const std::vector<FenceInsertion> &sorted_unique,
            uint64_t original_pc)
{
    uint64_t shift = 0;
    for (const FenceInsertion &f : sorted_unique) {
        if (f.beforePc > original_pc)
            break;
        shift++;
    }
    return original_pc + shift;
}

Program
insertFences(const Program &p, std::vector<FenceInsertion> insertions)
{
    std::vector<FenceInsertion> ins = normalize(std::move(insertions));
    for (const FenceInsertion &f : ins)
        if (f.beforePc >= p.size())
            fatal("insertFences('%s'): position %llu past the end "
                  "(%zu instrs)",
                  p.name.c_str(), (unsigned long long)f.beforePc,
                  p.size());

    // A jump target t must land on the fence guarding t, i.e. skip
    // only the fences inserted strictly before t.
    auto new_target = [&ins](uint64_t t) {
        uint64_t shift = 0;
        for (const FenceInsertion &f : ins) {
            if (f.beforePc >= t)
                break;
            shift++;
        }
        return t + shift;
    };

    Program out;
    out.name = p.name + "+synth";
    out.instrs.reserve(p.size() + ins.size());
    size_t next = 0;
    for (uint64_t pc = 0; pc < p.size(); pc++) {
        while (next < ins.size() && ins[next].beforePc == pc) {
            out.instrs.push_back(
                {.op = Op::Fence, .role = ins[next].role});
            next++;
        }
        Instr i = p.instrs[pc];
        if (i.isControl())
            i.imm = int64_t(new_target(uint64_t(i.imm)));
        out.instrs.push_back(i);
    }
    return out;
}

} // namespace asf
