/**
 * @file
 * The core timing model. Executes one guest thread under TSO (or,
 * optionally, RC with parallel store merging - see SystemConfig):
 *
 *  - in-order issue of up to issueWidth non-memory ops per cycle;
 *  - retired stores enter the write buffer and drain one at a time
 *    under TSO, or through several concurrent store units under RC;
 *  - loads block the thread (interpreter semantics) but may *perform*
 *    while older fences are incomplete - whether the performed value may
 *    be *delivered* early is exactly what the fence designs differ on;
 *  - atomics (CAS/XCHG) drain the write buffer first (x86 LOCK
 *    semantics) and then acquire the line exclusively.
 *
 * Fence semantics implemented (paper Section 3):
 *  - sf: post-fence loads perform speculatively but deliver only when the
 *    fence completes; conflicting invalidations squash and re-perform.
 *  - wf: post-fence loads deliver (complete) immediately; their addresses
 *    enter the Bypass Set, which bounces conflicting invalidations until
 *    the fence completes.
 *  - WS+: bounced pre-wf writes retry as OrderWrites.
 *  - SW+: bounced pre-wf writes retry as CondOrderWrites (word masks).
 *  - W+: register checkpoint at the wf; two-way bounce sustained past a
 *    timeout triggers rollback-and-drain recovery.
 *  - Wee: Pending Set deposited in the home GRT module; fences whose PS
 *    spans multiple modules demote to sf; post-fence accesses stall on
 *    Remote-PS matches or non-home lines.
 */

#ifndef ASF_CPU_CORE_HH
#define ASF_CPU_CORE_HH

#include <deque>
#include <map>
#include <optional>

#include "cpu/cpi_stack.hh"
#include "cpu/trace_cache.hh"
#include "cpu/write_buffer.hh"
#include "fence/bypass_set.hh"
#include "fence/fence_kind.hh"
#include "mem/hotspot.hh"
#include "mem/l1_cache.hh"
#include "noc/mesh.hh"
#include "prog/instr.hh"
#include "prog/thread_state.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sys/config.hh"

namespace asf
{

class FenceProfiler;
struct CycleBreakdown;

namespace check
{
class ExecutionRecorder;
}

class Core
{
  public:
    Core(NodeId id, const SystemConfig &cfg, L1Cache &l1, Mesh &mesh,
         EventQueue &eq);

    /** Bind the guest program; thread starts at pc 0. */
    void setProgram(const Program *prog, uint64_t prng_seed = 0);

    /** Pre-run register initialization (thread id, base addresses...). */
    void setReg(Reg r, uint64_t v);

    /** Advance one cycle. */
    void tick();

    /**
     * Fast-forward protocol. Returns true when tick() would change
     * nothing but the cycle-classification statistics this cycle and
     * every following cycle until `wake` (exclusive): the core is
     * stalled (or idle, or in a pure compute burst) with no internal
     * deadline before then. `wake` is set to the earliest absolute tick
     * at which the core may act on its own — backoff expiry, drain-port
     * availability, L1-hit readiness, GRT recheck, deadlock-watchdog
     * deadline, or compute-burst end — or maxTick when it only waits on
     * event-queue activity. Conservative: may report an inactive core
     * as active (costing speed), never the reverse (which would change
     * simulated timing).
     */
    bool quiescent(Tick &wake) const;

    /**
     * Replay the statistics of `n` skipped quiescent cycles — exactly
     * what n calls to tick() would have recorded, given quiescent()
     * returned true and no event fired in between. Also retires the
     * skipped portion of a compute burst.
     */
    void skipCycles(uint64_t n);

    /**
     * Direct-execution protocol (see DESIGN.md "Run-loop arbitration").
     * True when the core's next cycles can be batch-interpreted by
     * directBurst: a bound, running TSO thread with no fences, RMW,
     * store transactions, retry state, outstanding GetS, recovery, or
     * pre-simulated debt in flight; the load unit at most waiting out an
     * L1-hit latency; and no observation hooks (recorder/trace) that
     * would timestamp events mid-burst. Conservative like quiescent():
     * declining to burst is always correct.
     */
    bool directBurstable() const;

    /**
     * Speculatively batch-interpret up to `max_cycles` cycles starting
     * at `now + 1`, mutating core-local state (thread, write buffer,
     * own L1 lines via exclusive store drains) but never sending a
     * message, scheduling an event, or touching a statistic. Stops
     * early at the first cycle that would act on the outside world
     * (cache miss, fence, RMW, Mark, Halt) and returns the number of
     * cleanly completed cycles. Inert stretches — compute count-downs
     * and stall cycles whose every stage is provably idle — are
     * advanced in O(1) rather than cycle by cycle.
     *
     * The burst is a *transaction*: every mutation is journaled, and
     * nothing is final until directCommit(). The caller must follow
     * every directBurst with exactly one directCommit.
     *
     * Caller contract (System::run): no queued event may fire and no
     * other core's message may arrive at or before `now + max_cycles`.
     * The system guarantees it by bounding max_cycles at the next
     * queued event and committing only the minimum progress over all
     * cores — see DESIGN.md "Run-loop arbitration".
     */
    uint64_t directBurst(Tick now, uint64_t max_cycles);

    /**
     * Resolve the pending burst: keep exactly the first `commit`
     * cycles (commit <= the length directBurst returned) and record
     * their statistics — bit-identical to `commit` tick() calls. When
     * the burst ran further than `commit` (another core in the round
     * advanced less) or aborted mid-cycle, the journal rolls all of it
     * back and the committed prefix is deterministically re-executed.
     * After the call the core's state is that of tick()s through
     * `now + commit`, and tick() calls at or before that time are
     * no-ops (debt; see quiescent()/skipCycles()). commit == 0 is a
     * pure rollback.
     */
    void directCommit(Tick now, uint64_t commit);

    /** Thread halted and all buffered/in-flight work has drained. */
    bool done() const;
    bool threadHalted() const { return thread_.halted(); }

    NodeId id() const { return id_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Copy write-buffer bookkeeping (pushes, squashes, high-water mark)
     *  into the stat group; called before a stats dump. */
    void syncObservabilityStats();

    /** Reset statistics, including write-buffer occupancy accounting. */
    void resetStats();

    /** Add this core's cycle classification (coarse categories plus the
     *  fine CPI-stack buckets) into `b`, reading through the cached hot
     *  handles — no string lookups. */
    void addBreakdown(CycleBreakdown &b) const;

    /** Monotone forward-progress metric for the System livelock
     *  watchdog: grows whenever the core retires an instruction, drains
     *  a store, or counts a busy (compute) cycle. */
    uint64_t progressCount() const
    {
        return hot_.instrRetired.value() + hot_.storesDrained.value() +
               hot_.busyCycles.value();
    }

    /** Attach the per-System fence-lifecycle profiler (nullptr = off;
     *  observation-only either way). */
    void setProfiler(FenceProfiler *p) { profiler_ = p; }

    /** Attach the execution recorder (nullptr = off; observation-only
     *  either way: capture happens at commit points that never branch
     *  on it). */
    void setRecorder(check::ExecutionRecorder *rec) { recorder_ = rec; }

    /** Attach the hot-line tracker (nullptr = off; observation-only:
     *  Bypass-Set insert conflicts are charged to the refused line). */
    void setHotspot(HotLineTracker *h) { hotspot_ = h; }

    /** One-line-per-item diagnostic state dump (watchdog snapshot). */
    void debugDump(std::ostream &os) const;

    /** Guest Mark-instruction counters. */
    const std::map<int64_t, uint64_t> &markCounters() const
    {
        return markCounters_;
    }
    void clearMarkCounters() { markCounters_.clear(); }

    /** GRT replies routed here by the system dispatch. */
    void onGrtMessage(const Message &msg);

    /**
     * Privacy oracle for WeeFence Private Access Filtering: returns true
     * if the address lies in a region only this thread ever touches
     * (page-table-derived in the original; declared by the workload
     * here). Unset means nothing is private.
     */
    void setPrivateChecker(std::function<bool(Addr)> fn)
    {
        isPrivate_ = std::move(fn);
    }

    // Test access.
    ThreadState &thread() { return thread_; }
    const BypassSet &bypassSet() const { return bs_; }
    const WriteBuffer &writeBuffer() const { return wb_; }
    const TraceCache &traceCache() const { return trace_; }

  private:
    // --- pipeline stages, called in tick() order ----------------------
    void tickFences();
    void tickLoadUnit();
    void tickRmw();
    void tickExecute();
    void classifyCycle();

    // --- execution helpers --------------------------------------------
    /** Returns false when execution must block this cycle. */
    bool executeOne(unsigned &budget);
    void startLoad(const Instr &ins);
    void startFence(const Instr &ins);
    void startRmw(const Instr &ins);

    // --- fence helpers -------------------------------------------------
    struct FenceInstance
    {
        FenceKind kind;
        bool demoted = false;
        uint64_t id = 0; ///< per-core epoch; tags BS entries
        uint64_t lastPreStoreSeq = 0;
        Tick executedAt = 0;
        // W+ recovery support.
        bool hasCheckpoint = false;
        ThreadCheckpoint checkpoint;
        bool bouncedSomeone = false;
        bool timing = false;
        Tick timeoutStart = 0;
        // Wee support.
        bool grtPending = false;
        NodeId grtHome = invalidNode;
        std::vector<Addr> remotePs;
        /** FenceProfiler record id (0 when profiling is off). */
        uint64_t profileId = 0;

        bool isWeak() const { return kind != FenceKind::Strong && !demoted; }
    };

    FenceInstance *activeWeakFence();
    const FenceInstance *activeWeakFence() const
    {
        return const_cast<Core *>(this)->activeWeakFence();
    }
    void completeFence(FenceInstance &f);
    void checkDeadlockTimeout(FenceInstance &f);
    void recoverWPlus(FenceInstance &f);
    void demoteWee(FenceInstance &f);

    // --- load unit ------------------------------------------------------
    enum class LoadPhase
    {
        Inactive,
        WaitForward,   ///< same-address pre-fence store must drain first
        AccessPending, ///< (re)try the L1 access
        PerformWait,   ///< L1 hit; value captured at readyAt
        MissPending,   ///< GetS outstanding
        Performed,     ///< value in hand; delivery gate pending
        Held,          ///< gated by a fence design rule
    };

    enum class HoldReason
    {
        None,
        StrongFence, ///< an incomplete sf precedes the load
        BsFull,      ///< wf path, but the Bypass Set is full
        GrtPending,  ///< Wee: waiting for the GRT fetch reply
        NonHomeLine, ///< Wee: line outside the fence's GRT module
        RemotePs,    ///< Wee: line matches the Remote Pending Set
    };

    struct LoadOp
    {
        LoadPhase phase = LoadPhase::Inactive;
        HoldReason hold = HoldReason::None;
        Addr addr = 0;
        Addr line = 0;
        Reg rd = 0;
        uint64_t value = 0;
        uint64_t waitStoreSeq = 0; ///< WaitForward target
        Tick readyAt = 0;
        Tick nextGrtCheckAt = 0;
        bool inBs = false;
        /** Value forwarded from this core's own buffered store; such a
         *  value cannot be invalidated by remote writes. */
        bool forwarded = false;
        /** Forwarding store's write-buffer seq (checker metadata: makes
         *  the internal reads-from edge exact). 0 when not forwarded. */
        uint64_t fwdSeq = 0;
        /** A conflicting invalidation squashed a performed value at
         *  least once: refetch cycles classify as squash-refetch, not
         *  plain L1-miss. */
        bool squashed = false;
    };

    void loadAccess();
    void evaluateLoadGate();
    void deliverLoad();

    // --- store units ------------------------------------------------------
    /** One in-flight write transaction. TSO has a single unit draining
     *  the buffer head; RC runs several concurrently. */
    struct StoreTxn
    {
        bool active = false;
        Addr line = 0;
        Addr addr = 0;
        uint64_t value = 0;
        uint64_t seq = 0;
        bool pinned = false;
    };

    /** Per-store bounce/retry bookkeeping, keyed by store seq. */
    struct StoreRetryState
    {
        unsigned retries = 0;
        bool everNacked = false;
        bool coMode = false;
        Tick nextTryAt = 0;
    };

    void issueStores();
    void finishStore(WriteBuffer::Entry &entry);
    StoreTxn *txnForLine(Addr line);
    const StoreTxn *txnForLine(Addr line) const
    {
        return const_cast<Core *>(this)->txnForLine(line);
    }
    StoreTxn *freeStoreTxn();
    bool anyStoreBounced() const;
    Tick backoff(unsigned retries) const;

    // --- fast-forward mirrors (const, side-effect-free images of the
    //     corresponding tick stages; false = the stage would act) -----
    bool fencesQuiescent(Tick &wake) const;
    bool storesQuiescent(Tick &wake) const;
    bool loadQuiescent(Tick &wake) const;
    bool rmwQuiescent(Tick &wake) const;
    bool executeQuiescent(Tick &wake) const;
    HoldReason loadGateOutcome() const;

    // --- RMW unit --------------------------------------------------------
    enum class RmwPhase
    {
        Inactive,
        Drain,    ///< wait for fences + write buffer to empty
        Access,   ///< try local exclusive access / issue GetX
        WaitLine, ///< GetX outstanding
    };

    struct RmwOp
    {
        RmwPhase phase = RmwPhase::Inactive;
        Op op = Op::Cas;
        Addr addr = 0;
        Addr line = 0;
        Reg rd = 0;
        uint64_t expect = 0;
        uint64_t desired = 0;
        unsigned retries = 0;
        Tick nextTryAt = 0;
        bool pinned = false;
    };

    void performRmwLocal();

    // --- protocol plumbing -----------------------------------------------
    void onL1Reply(const Message &msg);
    void onLineInvalidated(Addr line);
    void onBsBounce(Addr line);
    BsMatch bsProbe(Addr line, WordMask words);

    // --- members ---------------------------------------------------------
    NodeId id_;
    const SystemConfig &cfg_;
    L1Cache &l1_;
    Mesh &mesh_;
    EventQueue &eq_;

    const Program *prog_ = nullptr;
    ThreadState thread_;

    /** Pre-decoded burst classification of prog_ (rebuilt wholesale by
     *  setProgram; a rewritten program is a new Program object). */
    TraceCache trace_;

    /**
     * Direct-execution debt: the last tick this core has already
     * simulated ahead of system time. tick() calls at or before it are
     * no-ops (state and statistics were advanced by directBurst);
     * quiescent() reports the debt window as skippable with wake just
     * past it, and skipCycles() consumes it without re-recording.
     */
    Tick simulatedUntil_ = 0;

    // --- direct-execution burst journal -------------------------------
    // A burst is a transaction over core-local state: directBurst
    // records everything needed to undo it, directCommit either keeps
    // it (flushing the batched statistics) or rolls it back and
    // re-executes the committed prefix. All containers are members so
    // their capacity is reused across bursts.

    /** Pre-mutation snapshot of an L1 line the burst drained into,
     *  taken at (roughly) first touch: the line memo tracks whether a
     *  snapshot was already saved, so a line falling out of the memo
     *  may be saved again — harmless, because rollback restores in
     *  reverse order and the oldest snapshot lands last. Line slots
     *  are stable for a burst's duration (no fills or evictions can
     *  happen inside one), so raw pointers are safe. */
    struct LineUndo
    {
        CacheLine *l;
        MesiState state;
        LineData data;
    };
    std::vector<LineUndo> lineUndo_;
    /** L1 lines read/written by committed-if-kept cycles, in access
     *  order, run-length encoded (LRU-exact: n consecutive touches of
     *  one line advance the LRU clock by n and leave the line stamped
     *  with the final value, which is what touchLineN applies). Touches
     *  happen only on commit. */
    struct TouchRun
    {
        CacheLine *l;
        uint64_t n;
    };
    std::vector<TouchRun> touchLog_;
    /** Per-value write-buffer occupancy sample counts, indexed by
     *  occupancy (bounded by the buffer capacity). A histogram is
     *  order-free, so flushing counts with sampleN reproduces tick()'s
     *  per-cycle sample() stream exactly. */
    std::vector<uint64_t> occCount_;
    /** Batched statistic deltas, flushed on commit. */
    struct BurstStats
    {
        uint64_t busy = 0;
        uint64_t instr = 0;
        uint64_t drained = 0;
        uint64_t ldExec = 0, ldDeliv = 0, ldFwd = 0, stExec = 0;
        uint64_t l1LdHits = 0, l1StHits = 0;
        uint64_t stallN[numStallBuckets] = {};
    };
    BurstStats burstStats_;
    /** Core state snapshot at burst entry. */
    ThreadState burstThread_;
    LoadOp burstLoad_;
    uint64_t burstCompute_ = 0;
    Tick burstDrainFree_ = 0;
    WriteBuffer::Snapshot burstWb_;
    /** The burst aborted mid-cycle, leaving a partial cycle's effects
     *  in place: commit must replay even at full length. */
    bool burstDirty_ = false;

    /** Cycles the pending burst completed (directBurst's last return
     *  value; directCommit's replay decision needs it). */
    uint64_t burstLen_ = 0;

    /** Roll every burst mutation back to the burst-entry snapshot. */
    void rollbackBurst();
    /** Flush the batched statistics and LRU touches of a fully kept
     *  burst of `commit` cycles and set the debt horizon. */
    void flushBurst(Tick now, uint64_t commit);
    /** Count n occupancy samples of value v (v <= wb capacity). */
    void occAdd(unsigned v, uint64_t n) { occCount_[v] += n; }
    /** Log one LRU touch of `l`, merging consecutive repeats. */
    void touchAdd(CacheLine *l)
    {
        if (!touchLog_.empty() && touchLog_.back().l == l)
            touchLog_.back().n++;
        else
            touchLog_.push_back({l, 1});
    }

    WriteBuffer wb_;
    BypassSet bs_;
    std::deque<FenceInstance> fences_;
    LoadOp load_;
    std::vector<StoreTxn> storeTxns_;
    std::map<uint64_t, StoreRetryState> storeRetry_;
    Tick storeDrainFreeAt_ = 0;
    bool tsoOrder_ = true;
    RmwOp rmw_;

    bool getSOutstanding_ = false;
    uint64_t computeRemaining_ = 0;
    uint64_t nextFenceId_ = 0;
    bool recovering_ = false;
    std::function<bool(Addr)> isPrivate_;

    /**
     * CPI-stack classification: the one stall bucket this cycle's state
     * falls in. Precondition: nothing retired, the core is not done and
     * not idle-halted. Const and state-derived, so the tick and
     * fast-forward skip paths share it and stay bit-identical.
     */
    StallBucket stallBucket() const;

    /** Count `n` cycles against bucket `b` and its coarse category
     *  (fenceStallCycles / otherStallCycles). */
    void recordStallCycles(StallBucket b, uint64_t n);

    unsigned retiredThisCycle_ = 0;
    /** Set by startFence when a WeeFence serializes behind an earlier
     *  one — the only stall whose cause is not visible in end-of-cycle
     *  state. Transition-adjacent, so never reached by skipCycles. */
    bool weeSerializeStall_ = false;
    FenceProfiler *profiler_ = nullptr;
    check::ExecutionRecorder *recorder_ = nullptr;
    HotLineTracker *hotspot_ = nullptr;

    std::map<int64_t, uint64_t> markCounters_;
    /** Marks executed while a checkpointed (W+) weak fence was active:
     *  committed when the last weak fence completes. Each entry carries
     *  the epoch (id) of the youngest weak fence active when it was
     *  journaled; recovery to fence f discards exactly the entries with
     *  epoch >= f.id - the ones the rollback squashes. */
    std::vector<std::pair<uint64_t, int64_t>> journaledMarks_;
    StatGroup stats_;

    /**
     * Hot-path handles into stats_, bound once at construction (map
     * entries are reference-stable across inserts and resetAll). The
     * pre-registered headline counters bind eagerly; the rest bind
     * lazily so the report shape stays identical to the string-lookup
     * call sites they replace.
     */
    struct HotStats
    {
        HotStats(StatGroup &g, const SystemConfig &cfg)
            : busyCycles(g.scalar("busyCycles")),
              idleCycles(g.scalar("idleCycles")),
              otherStallCycles(g.scalar("otherStallCycles")),
              fenceStallCycles(g.scalar("fenceStallCycles")),
              instrRetired(g.scalar("instrRetired")),
              storesDrained(g.scalar("storesDrained")),
              wbOccupancy(
                  g.histogram("wbOccupancy", cfg.wbEntries + 1, 1.0)),
              loadsDelivered(g, "loadsDelivered"),
              loadsExecuted(g, "loadsExecuted"),
              storesExecuted(g, "storesExecuted")
        {
            // The CPI-stack buckets bind eagerly: pre-registering all
            // of them keeps the JSON report shape identical across
            // runs (and across fast-forward on/off).
            for (unsigned i = 0; i < numStallBuckets; i++)
                stall[i] = &g.scalar(
                    stallBucketStatName(StallBucket(i)));
        }

        StatScalar &busyCycles;
        StatScalar &idleCycles;
        StatScalar &otherStallCycles;
        StatScalar &fenceStallCycles;
        StatScalar &instrRetired;
        StatScalar &storesDrained;
        StatHistogram &wbOccupancy;
        LazyStatScalar loadsDelivered;
        LazyStatScalar loadsExecuted;
        LazyStatScalar storesExecuted;
        StatScalar *stall[numStallBuckets];
    };
    HotStats hot_;
};

// Inline: stallBucket classifies every non-retiring cycle of both the
// tick and burst paths, and anyStoreBounced is its hottest input (the
// retry map is empty whenever no store has missed).
inline bool
Core::anyStoreBounced() const
{
    for (const auto &[seq, rs] : storeRetry_)
        if (rs.everNacked)
            return true;
    return false;
}

inline StallBucket
Core::stallBucket() const
{
    if (recovering_)
        return StallBucket::FenceRecovering;
    if (load_.phase != LoadPhase::Inactive) {
        switch (load_.phase) {
          case LoadPhase::Held:
            switch (load_.hold) {
              case HoldReason::StrongFence:
                return StallBucket::FenceHeldStrong;
              case HoldReason::BsFull:
                return StallBucket::FenceHeldBsFull;
              case HoldReason::GrtPending:
              case HoldReason::NonHomeLine:
                return StallBucket::FenceGrtWait;
              case HoldReason::RemotePs:
                return StallBucket::FenceRemotePs;
              case HoldReason::None:
                break; // not a steady state; classify conservatively
            }
            return StallBucket::FenceHeldStrong;
          case LoadPhase::WaitForward:
            return StallBucket::FenceWaitForward;
          default:
            // AccessPending / PerformWait / MissPending / Performed:
            // the memory system is working on the load.
            return load_.squashed ? StallBucket::OtherSquashRefetch
                                  : StallBucket::OtherL1Miss;
        }
    }
    if (rmw_.phase != RmwPhase::Inactive)
        return rmw_.phase == RmwPhase::Drain ? StallBucket::OtherRmwDrain
                                             : StallBucket::OtherNocQueue;
    // Executable thread that could not act: a store stalled on a full
    // write buffer. With a bounced store among the blockers the fence
    // protocol is what keeps the buffer from draining.
    return anyStoreBounced() ? StallBucket::FenceBounceRetry
                             : StallBucket::OtherWbFull;
}

} // namespace asf

#endif // ASF_CPU_CORE_HH
