/**
 * @file
 * The per-core CPI-stack taxonomy: every non-busy, non-idle cycle is
 * attributed to exactly one fine-grained stall bucket. Buckets come in
 * two categories that sum to the coarse counters the benches and tests
 * key on:
 *
 *  - fence buckets sum to `fenceStallCycles` (cycles a fence design is
 *    responsible for and a better design could remove);
 *  - other buckets sum to `otherStallCycles` (memory-system cycles all
 *    designs pay alike).
 *
 * System::breakdown() asserts both identities, which together give the
 * CPI-stack invariant sum(buckets) == active().
 */

#ifndef ASF_CPU_CPI_STACK_HH
#define ASF_CPU_CPI_STACK_HH

namespace asf
{

enum class StallBucket
{
    // --- fence category (a fence design rule blocks progress) --------
    FenceWaitForward,  ///< forward from a pre-sf store must drain first
    FenceHeldStrong,   ///< load performed, held by an incomplete sf
    FenceHeldBsFull,   ///< wf path, but the Bypass Set is full
    FenceGrtWait,      ///< Wee: GRT fetch pending or non-home line
    FenceRemotePs,     ///< Wee: load matches a Remote Pending Set
    FenceRecovering,   ///< W+ rollback: draining to the checkpoint fence
    FenceBounceRetry,  ///< WB full while a bounced store backs off
    FenceSerialize,    ///< Wee: second WeeFence waits for the first
    // --- other category (memory system; design-independent) ----------
    OtherL1Miss,       ///< load miss / L1 access in flight
    OtherSquashRefetch,///< squashed speculative load re-fetching
    OtherRmwDrain,     ///< atomic draining fences + write buffer
    OtherNocQueue,     ///< atomic's exclusive request in the network
    OtherWbFull,       ///< store stalled on a full write buffer
};

inline constexpr unsigned numStallBuckets = 13;
inline constexpr unsigned numFenceStallBuckets = 8;

/** Bucket falls in the fence category (else: other). */
bool stallBucketIsFence(StallBucket b);

/** Per-core scalar stat name, e.g. "stallHeldStrong". */
const char *stallBucketStatName(StallBucket b);

/** Short key used in the stats-JSON `cpiStack` object and the trace
 *  counter track, e.g. "heldStrong". */
const char *stallBucketJsonKey(StallBucket b);

} // namespace asf

#endif // ASF_CPU_CPI_STACK_HH
