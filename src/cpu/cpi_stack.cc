#include "cpu/cpi_stack.hh"

namespace asf
{

bool
stallBucketIsFence(StallBucket b)
{
    return unsigned(b) < numFenceStallBuckets;
}

const char *
stallBucketStatName(StallBucket b)
{
    switch (b) {
      case StallBucket::FenceWaitForward:   return "stallWaitForward";
      case StallBucket::FenceHeldStrong:    return "stallHeldStrong";
      case StallBucket::FenceHeldBsFull:    return "stallHeldBsFull";
      case StallBucket::FenceGrtWait:       return "stallGrtWait";
      case StallBucket::FenceRemotePs:      return "stallRemotePs";
      case StallBucket::FenceRecovering:    return "stallRecovering";
      case StallBucket::FenceBounceRetry:   return "stallBounceRetry";
      case StallBucket::FenceSerialize:     return "stallFenceSerialize";
      case StallBucket::OtherL1Miss:        return "stallL1Miss";
      case StallBucket::OtherSquashRefetch: return "stallSquashRefetch";
      case StallBucket::OtherRmwDrain:      return "stallRmwDrain";
      case StallBucket::OtherNocQueue:      return "stallNocQueue";
      case StallBucket::OtherWbFull:        return "stallWbFull";
    }
    return "stallUnknown";
}

const char *
stallBucketJsonKey(StallBucket b)
{
    switch (b) {
      case StallBucket::FenceWaitForward:   return "waitForward";
      case StallBucket::FenceHeldStrong:    return "heldStrong";
      case StallBucket::FenceHeldBsFull:    return "heldBsFull";
      case StallBucket::FenceGrtWait:       return "grtWait";
      case StallBucket::FenceRemotePs:      return "remotePs";
      case StallBucket::FenceRecovering:    return "recovering";
      case StallBucket::FenceBounceRetry:   return "bounceRetry";
      case StallBucket::FenceSerialize:     return "serialize";
      case StallBucket::OtherL1Miss:        return "l1Miss";
      case StallBucket::OtherSquashRefetch: return "squashRefetch";
      case StallBucket::OtherRmwDrain:      return "rmwDrain";
      case StallBucket::OtherNocQueue:      return "nocQueue";
      case StallBucket::OtherWbFull:        return "wbFull";
    }
    return "unknown";
}

} // namespace asf
