/**
 * @file
 * Pre-decoded instruction classification for the direct-execution fast
 * path (see DESIGN.md "Run-loop arbitration"). For each PC of a bound
 * program the cache records which burst-interpreter rule applies, and
 * for "pure" register ops the length of the maximal straight-line pure
 * run starting there, so Core::directBurst can retire a whole superblock
 * against its issue budget without re-classifying per instruction.
 *
 * Programs are immutable once built (rewrite.cc's fence splicing yields
 * a *new* Program), so the cache needs no line-level invalidation: the
 * core rebuilds it wholesale in setProgram, which is what "invalidates"
 * every block that a spliced-in fence now splits.
 */

#ifndef ASF_CPU_TRACE_CACHE_HH
#define ASF_CPU_TRACE_CACHE_HH

#include <cstdint>
#include <vector>

#include "prog/instr.hh"

namespace asf
{

class TraceCache
{
  public:
    /**
     * The burst-interpreter rule for one instruction. Pure ops mutate
     * only thread-private register/PRNG state; Control ops additionally
     * redirect the PC (still thread-private — the interpreter resolves
     * the target immediately). Load/Store/Compute have dedicated burst
     * rules with preconditions; Breaker ops (fences, RMWs, Mark, Halt)
     * always end a burst and drop back to cycle-exact ticking.
     */
    enum class Kind : uint8_t
    {
        Pure,    ///< register/PRNG op: Nop, Li, Mov, ALU, shifts, Rand
        Control, ///< branch or jump with interpreter-resolved target
        Load,    ///< Ld: burstable only on a forward or an L1 hit
        Store,   ///< St: burstable into the write buffer
        Compute, ///< Compute: turns into a busy count-down
        Breaker, ///< Fence/Cas/Xchg/Mark/Halt: always ends the burst
    };

    TraceCache() = default;

    /** Pre-decode `prog`; replaces any previous contents. */
    void build(const Program &prog);

    /** Forget the decoded program (core unbound). */
    void clear();

    bool valid() const { return !ops_.empty(); }
    size_t size() const { return ops_.size(); }

    /**
     * Fused per-PC record, one load for the burst interpreter's
     * per-instruction dispatch: the Kind in the low byte, the pure-run
     * length in the high 32 bits. Out-of-range PCs report Breaker with
     * run 0: the burst aborts and the cycle-exact path raises the same
     * fatal a plain tick would.
     */
    uint64_t op(uint64_t pc) const
    {
        return pc < ops_.size() ? ops_[pc] : uint64_t(Kind::Breaker);
    }
    static Kind opKind(uint64_t op) { return Kind(op & 0xff); }
    static uint32_t opRun(uint64_t op) { return uint32_t(op >> 32); }

    /** Classification of the instruction at `pc`. */
    Kind kind(uint64_t pc) const { return opKind(op(pc)); }

    /** Length of the maximal run of consecutive Pure instructions
     *  starting at `pc` (0 when the instruction there is not Pure). */
    uint32_t pureRun(uint64_t pc) const { return opRun(op(pc)); }

    /** Classification rule, exposed for tests. */
    static Kind classify(const Instr &ins);

  private:
    std::vector<uint64_t> ops_;
};

const char *traceKindName(TraceCache::Kind k);

} // namespace asf

#endif // ASF_CPU_TRACE_CACHE_HH
