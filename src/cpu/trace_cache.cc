#include "cpu/trace_cache.hh"

namespace asf
{

TraceCache::Kind
TraceCache::classify(const Instr &ins)
{
    switch (ins.op) {
      case Op::Nop:
      case Op::Li:
      case Op::Mov:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Addi:
      case Op::Andi:
      case Op::Muli:
      case Op::Shli:
      case Op::Shri:
      case Op::Rand:
        return Kind::Pure;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jmp:
        return Kind::Control;
      case Op::Ld:
        return Kind::Load;
      case Op::St:
        return Kind::Store;
      case Op::Compute:
        return Kind::Compute;
      case Op::Fence:
      case Op::Cas:
      case Op::Xchg:
      case Op::Mark:
      case Op::Halt:
        return Kind::Breaker;
    }
    return Kind::Breaker;
}

void
TraceCache::build(const Program &prog)
{
    size_t n = prog.instrs.size();
    ops_.resize(n);
    for (size_t i = 0; i < n; i++) {
        const Instr &ins = prog.instrs[i];
        Kind k = classify(ins);
        // Validate every register operand once, here, so the burst
        // interpreter can use the unchecked ThreadState accessors. An
        // out-of-range operand demotes the instruction to Breaker: the
        // burst ends in front of it and the cycle-exact path raises
        // the same register-range panic a plain tick would.
        if (k != Kind::Breaker &&
            (ins.rd >= numRegs || ins.ra >= numRegs || ins.rb >= numRegs))
            k = Kind::Breaker;
        ops_[i] = uint64_t(k);
    }
    // Backward pass: the run length counts the consecutive Pure
    // instructions from i up to (excluding) the first non-Pure one.
    uint64_t run = 0;
    for (size_t i = n; i-- > 0;) {
        run = opKind(ops_[i]) == Kind::Pure ? run + 1 : 0;
        ops_[i] |= run << 32;
    }
}

void
TraceCache::clear()
{
    ops_.clear();
}

const char *
traceKindName(TraceCache::Kind k)
{
    switch (k) {
      case TraceCache::Kind::Pure:
        return "pure";
      case TraceCache::Kind::Control:
        return "control";
      case TraceCache::Kind::Load:
        return "load";
      case TraceCache::Kind::Store:
        return "store";
      case TraceCache::Kind::Compute:
        return "compute";
      case TraceCache::Kind::Breaker:
        return "breaker";
    }
    return "?";
}

} // namespace asf
