#include "cpu/core.hh"

#include <algorithm>

#include "check/recorder.hh"
#include "fence/profile.hh"
#include "mem/address.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "sys/system.hh"

namespace asf
{

Core::Core(NodeId id, const SystemConfig &cfg, L1Cache &l1, Mesh &mesh,
           EventQueue &eq)
    : id_(id), cfg_(cfg), l1_(l1), mesh_(mesh), eq_(eq),
      wb_(cfg.wbEntries), bs_(cfg.bsEntries),
      stats_(format("core%d", id)), hot_(stats_, cfg)
{
    tsoOrder_ = cfg_.memoryModel == MemoryModel::TSO;
    storeTxns_.resize(tsoOrder_ ? 1 : cfg_.storeUnits);
    l1_.bsMatch = [this](Addr line, WordMask words) {
        return bsProbe(line, words);
    };
    l1_.onLineInvalidated = [this](Addr line) { onLineInvalidated(line); };
    l1_.onBsBounce = [this](Addr line) { onBsBounce(line); };
    l1_.onReply = [this](const Message &msg) { onL1Reply(msg); };

    // Pre-register the headline counters so the JSON report has a
    // stable shape even for runs that never touch them (zero-valued
    // scalars are still filtered from the text dump).
    for (const char *name :
         {"busyCycles", "idleCycles", "otherStallCycles",
          "fenceStallCycles", "instrRetired", "fencesStrong",
          "fencesWeak", "fencesWee", "bouncedWrites", "wPlusRecoveries",
          "loadSquashes", "storesDrained", "wbSquashedStores"})
        stats_.scalar(name);
    stats_.average("fenceLatency");
    stats_.histogram("wbOccupancy", cfg.wbEntries + 1, 1.0);
    ASF_TRACE(threadName(uint32_t(id_), format("core%d", id_)));
}

void
Core::setProgram(const Program *prog, uint64_t prng_seed)
{
    prog_ = prog;
    thread_.reset(0, prng_seed ? prng_seed
                               : 0x9e3779b97f4a7c15ULL + uint64_t(id_));
    // Rebuilding wholesale is the trace cache's invalidation story:
    // programs are immutable, so a fence spliced in by rewrite.cc
    // arrives as a new Program and every stale block dies here.
    if (prog_)
        trace_.build(*prog_);
    else
        trace_.clear();
}

void
Core::setReg(Reg r, uint64_t v)
{
    thread_.setReg(r, v);
}

void
Core::syncObservabilityStats()
{
    stats_.scalar("wbPushes").set(wb_.totalPushes());
    stats_.scalar("wbSquashedStores").set(wb_.totalDropped());
    stats_.scalar("wbHighWater").set(wb_.highWater());
}

void
Core::resetStats()
{
    stats_.resetAll();
    wb_.resetCounters();
}

bool
Core::done() const
{
    for (const auto &t : storeTxns_)
        if (t.active)
            return false;
    return (!prog_ || thread_.halted()) && wb_.empty() &&
           load_.phase == LoadPhase::Inactive &&
           rmw_.phase == RmwPhase::Inactive && fences_.empty() &&
           !getSOutstanding_;
}

// ---------------------------------------------------------------------
// Per-cycle pipeline
// ---------------------------------------------------------------------

void
Core::tick()
{
    // Direct-execution debt: this cycle was already simulated (state
    // and statistics included) by a directBurst; ticking it again would
    // double-run it.
    if (eq_.now() <= simulatedUntil_)
        return;

    retiredThisCycle_ = 0;
    weeSerializeStall_ = false;

    if (done()) {
        hot_.idleCycles.inc();
        return;
    }
    hot_.wbOccupancy.sample(double(wb_.size()));

    tickFences();
    issueStores();
    tickRmw();
    tickLoadUnit();
    tickExecute();
    classifyCycle();
}

void
Core::classifyCycle()
{
    if (retiredThisCycle_ > 0) {
        hot_.busyCycles.inc();
        return;
    }
    // A halted thread draining its write buffer is not stalled - nothing
    // is waiting on those cycles.
    if (thread_.halted() && load_.phase == LoadPhase::Inactive &&
        rmw_.phase == RmwPhase::Inactive) {
        hot_.idleCycles.inc();
        return;
    }
    recordStallCycles(weeSerializeStall_ ? StallBucket::FenceSerialize
                                         : stallBucket(),
                      1);
}

void
Core::recordStallCycles(StallBucket b, uint64_t n)
{
    hot_.stall[unsigned(b)]->inc(n);
    if (stallBucketIsFence(b))
        hot_.fenceStallCycles.inc(n);
    else
        hot_.otherStallCycles.inc(n);
}

void
Core::addBreakdown(CycleBreakdown &b) const
{
    b.busy += hot_.busyCycles.value();
    b.fenceStall += hot_.fenceStallCycles.value();
    b.otherStall += hot_.otherStallCycles.value();
    b.idle += hot_.idleCycles.value();
    for (unsigned i = 0; i < numStallBuckets; i++)
        b.stall[i] += hot_.stall[i]->value();
}

// ---------------------------------------------------------------------
// Fast-forward: quiescence mirrors
//
// Each *Quiescent() helper is a const, side-effect-free image of the
// corresponding tick stage: it returns false whenever the stage would
// change any simulated state (beyond statistics), and lowers `wake` to
// the earliest absolute tick at which the stage could act on its own.
// Every time-gated condition contributes its deadline to `wake` rather
// than returning false, so System::run can cap the jump precisely.
// ---------------------------------------------------------------------

bool
Core::fencesQuiescent(Tick &wake) const
{
    if (!fences_.empty() &&
        wb_.drainedUpTo(fences_.front().lastPreStoreSeq))
        return false; // a fence would complete
    if (recovering_ && !activeWeakFence())
        return false; // recovery would end
    const FenceInstance *f = activeWeakFence();
    if (!f)
        return true;
    // Mirror of checkDeadlockTimeout.
    bool watched =
        (cfg_.design == FenceDesign::WPlus &&
         f->kind == FenceKind::Weak) ||
        (cfg_.design == FenceDesign::Wee &&
         f->kind == FenceKind::WeeWeak && !f->demoted);
    if (!watched)
        return true;
    bool being_bounced = anyStoreBounced() && !wb_.empty();
    if (being_bounced && f->bouncedSomeone) {
        if (!f->timing)
            return false; // the watchdog would start timing
        Tick limit = cfg_.design == FenceDesign::WPlus ? cfg_.wPlusTimeout
                                                       : cfg_.weeTimeout;
        wake = std::min(wake, f->timeoutStart + limit);
    } else if (f->timing) {
        return false; // the watchdog would stop timing
    }
    return true;
}

bool
Core::storesQuiescent(Tick &wake) const
{
    // Mirror of issueStores. storeRetry_ entries the real tick would
    // default-construct read as {nextTryAt = 0} here; creating them is
    // the one tick side effect this mirror tolerates skipping, because
    // a default entry is behaviorally inert (no backoff, never nacked)
    // and the first real tick recreates it.
    uint64_t max_seq =
        fences_.empty() ? ~uint64_t(0) : fences_.front().lastPreStoreSeq;
    uint64_t after = 0;
    for (;;) {
        const WriteBuffer::Entry *e =
            wb_.nextIssuable(tsoOrder_, max_seq, after);
        if (!e)
            return true;
        after = e->seq;
        Tick next_try = 0;
        if (auto it = storeRetry_.find(e->seq); it != storeRetry_.end())
            next_try = it->second.nextTryAt;
        if (eq_.now() < next_try) {
            wake = std::min(wake, next_try);
            if (tsoOrder_)
                return true;
            continue;
        }
        const CacheLine *l = l1_.find(lineAlign(e->addr));
        bool exclusive_hit = l && (l->state == MesiState::Modified ||
                                   l->state == MesiState::Exclusive);
        if (exclusive_hit) {
            if (eq_.now() < storeDrainFreeAt_) {
                wake = std::min(wake, storeDrainFreeAt_);
                return true; // drain port busy blocks both models
            }
            return false; // the store would drain locally
        }
        bool free_txn = false;
        for (const auto &t : storeTxns_)
            if (!t.active)
                free_txn = true;
        if (!free_txn) {
            if (tsoOrder_)
                return true;
            continue;
        }
        return false; // a write request would go out
    }
}

bool
Core::rmwQuiescent(Tick &wake) const
{
    switch (rmw_.phase) {
      case RmwPhase::Inactive:
      case RmwPhase::WaitLine:
        return true;
      case RmwPhase::Drain:
        return !(wb_.empty() && fences_.empty());
      case RmwPhase::Access:
        if (eq_.now() < rmw_.nextTryAt) {
            wake = std::min(wake, rmw_.nextTryAt);
            return true;
        }
        return false; // the access attempt itself mutates state
    }
    return false;
}

Core::HoldReason
Core::loadGateOutcome() const
{
    // Mirror of evaluateLoadGate's fence walk, with one extra escape:
    // the lazy GRT-binding branch sends a message, which the sentinel
    // HoldReason::None (never a steady-state gate outcome while Held)
    // reports as "would act".
    for (const auto &f : fences_) {
        if (!f.isWeak())
            return HoldReason::StrongFence;
        if (f.kind == FenceKind::Weak)
            continue;
        if (cfg_.weePrivateFiltering && isPrivate_ &&
            isPrivate_(load_.line))
            continue;
        if (f.grtHome == invalidNode)
            return HoldReason::None; // lazy binding would send a deposit
        if (f.grtPending)
            return HoldReason::GrtPending;
        if (homeNode(load_.line, cfg_.numCores) != f.grtHome)
            return HoldReason::NonHomeLine;
        if (std::find(f.remotePs.begin(), f.remotePs.end(), load_.line) !=
            f.remotePs.end())
            return HoldReason::RemotePs;
    }
    // No holding fence: the needs-bs / delivery paths all mutate state
    // except the full-BS hold, which the caller detects itself.
    return HoldReason::BsFull;
}

bool
Core::loadQuiescent(Tick &wake) const
{
    switch (load_.phase) {
      case LoadPhase::Inactive:
      case LoadPhase::MissPending:
        return true;
      case LoadPhase::WaitForward:
        return !wb_.drainedUpTo(load_.waitStoreSeq);
      case LoadPhase::AccessPending:
        if (l1_.find(load_.line))
            return false; // the access would hit
        if (txnForLine(load_.line) != nullptr ||
            (rmw_.phase == RmwPhase::WaitLine &&
             rmw_.line == load_.line))
            return true; // waiting on the in-flight write grant
        return getSOutstanding_; // else a GetS would go out
      case LoadPhase::PerformWait:
        wake = std::min(wake, load_.readyAt);
        return true;
      case LoadPhase::Performed:
        return false; // the delivery gate runs (and may deliver)
      case LoadPhase::Held: {
        HoldReason hr = loadGateOutcome();
        if (hr == HoldReason::None)
            return false; // lazy GRT binding would act
        if (hr == HoldReason::BsFull) {
            // Not fence-held: the gate would retry the BS insert (or
            // deliver). Only a still-full BS keeps the state unchanged,
            // and only without a counted hold transition.
            if (!bs_.full() || load_.inBs ||
                load_.hold != HoldReason::BsFull)
                return false;
            return true;
        }
        if (hr != load_.hold)
            return false; // the hold reason (a stat key) would change
        if (hr == HoldReason::RemotePs) {
            // The gate re-sends a GrtCheck once the recheck timer
            // expires.
            wake = std::min(wake, load_.nextGrtCheckAt);
        }
        return true;
      }
    }
    return false;
}

bool
Core::executeQuiescent(Tick &wake) const
{
    if (recovering_)
        return true; // pure fence stall
    if (computeRemaining_ > 0) {
        // A compute burst is pure count-down: skippable, with the first
        // post-burst instruction due once the counter hits zero.
        wake = std::min(wake, eq_.now() + computeRemaining_ + 1);
        return true;
    }
    if (load_.phase != LoadPhase::Inactive ||
        rmw_.phase != RmwPhase::Inactive)
        return true; // execution just stalls behind the active unit
    if (thread_.halted())
        return true;
    // The thread would execute: only a store stuck on a full write
    // buffer leaves every bit of simulated state untouched.
    const Instr &ins = prog_->at(thread_.pc());
    return ins.op == Op::St && wb_.full();
}

bool
Core::quiescent(Tick &wake) const
{
    wake = maxTick;
    if (simulatedUntil_ > eq_.now()) {
        // Direct-execution debt: the cycles up to simulatedUntil_ are
        // no-op ticks (already simulated), hence trivially skippable.
        // The mirrors below must not run — they would read state that
        // is already ahead of system time.
        wake = simulatedUntil_ + 1;
        return true;
    }
    if (done())
        return true; // idle until an (impossible) external wake
    // Check order is free (pure conjunction); executeQuiescent goes
    // first because an actively-computing core fails it immediately,
    // keeping the per-cycle cost near zero on busy workloads.
    return executeQuiescent(wake) && loadQuiescent(wake) &&
           storesQuiescent(wake) && fencesQuiescent(wake) &&
           rmwQuiescent(wake);
}

void
Core::skipCycles(uint64_t n)
{
    // Replay exactly what n quiescent tick() calls would have recorded:
    // done -> idle; compute -> busy; halted with inactive units -> idle;
    // otherwise the shared stallBucket() classification — the same
    // function classifyCycle uses, which is what keeps tick and skip
    // bit-identical. (The Wee serialize marker is a transition state:
    // executeQuiescent returns false at a fence instruction, so skips
    // never span it.)
    if (!n)
        return;
    if (simulatedUntil_ > eq_.now()) {
        // Direct-execution debt first: those cycles' statistics were
        // recorded by the burst itself, so they are consumed silently.
        // quiescent() caps any jump at simulatedUntil_ + 1, so the
        // remainder past the debt is at most the one cycle a fresh
        // quiescence walk approved.
        uint64_t debt = uint64_t(simulatedUntil_ - eq_.now());
        uint64_t consumed = std::min(n, debt);
        n -= consumed;
        if (!n)
            return;
    }
    if (done()) {
        hot_.idleCycles.inc(n);
        return;
    }
    hot_.wbOccupancy.sampleN(double(wb_.size()), n);
    if (!recovering_) {
        if (computeRemaining_ > 0) {
            if (n > computeRemaining_)
                panic("core %d: fast-forward past compute-burst end",
                      id_);
            computeRemaining_ -= n;
            hot_.busyCycles.inc(n);
            return;
        }
        if (thread_.halted() && load_.phase == LoadPhase::Inactive &&
            rmw_.phase == RmwPhase::Inactive) {
            hot_.idleCycles.inc(n);
            return;
        }
    }
    recordStallCycles(stallBucket(), n);
}

// ---------------------------------------------------------------------
// Direct execution
//
// directBurst batch-interprets cycles whose every effect is core-local:
// pure register ops, branches, compute count-downs, stores draining
// into lines this L1 already holds exclusively, and loads served by
// forwarding or an L1 hit. Each burst cycle mirrors tick()'s stage
// order exactly — occupancy sample, store issue, load unit, execute,
// classify — with per-cycle time `t` standing in for eq_.now(), and
// the burst ends at the first action that would leave the core: a
// GetX/GetS, a fence, an RMW, Mark, or Halt. Cycles in which provably
// no stage can act (a compute count-down, or every unit waiting on a
// known future tick) advance as a whole run in O(1).
//
// The burst is one speculative transaction: statistics are batched and
// L1 LRU touches deferred, so until directCommit() nothing observable
// has happened. System::run bursts every eligible core up to a common
// window, then commits all of them to the *minimum* progress: a full
// clean burst just flushes; a longer or dirty one is rolled back to
// the entry snapshot and its committed prefix re-executed, which is
// exact because a burst is a deterministic function of its start
// state. Statistics use the same counters and the same stallBucket()
// classification tick() uses, which is what keeps the two paths
// bit-identical.
// ---------------------------------------------------------------------

bool
Core::directBurstable() const
{
    if (!prog_ || thread_.halted() || !tsoOrder_)
        return false;
    if (simulatedUntil_ > eq_.now())
        return false; // debt pending: tick() no-ops, nothing to burst
    if (!fences_.empty() || recovering_ ||
        rmw_.phase != RmwPhase::Inactive || getSOutstanding_)
        return false;
    if (load_.phase != LoadPhase::Inactive &&
        load_.phase != LoadPhase::PerformWait)
        return false;
    // Validating a pending load's target register here lets the
    // burst's deliver use the unchecked register write; out-of-range
    // stays cycle-exact, which raises the same fatal a tick would.
    if (load_.phase == LoadPhase::PerformWait && load_.rd >= numRegs)
        return false;
    // A live store transaction or retry state means the memory system
    // is (or soon will be) acting on this core's behalf.
    for (const auto &txn : storeTxns_)
        if (txn.active)
            return false;
    if (!storeRetry_.empty())
        return false;
    // Observation hooks timestamp with eq_.now(), which a burst cannot
    // reproduce mid-flight: leave instrumented runs cycle-exact.
    if (recorder_ || Trace::get().enabled())
        return false;
    return true;
}

uint64_t
Core::directBurst(Tick now, uint64_t max_cycles)
{
    // Burst-entry snapshot: rollback target for directCommit.
    burstThread_ = thread_;
    burstLoad_ = load_;
    burstCompute_ = computeRemaining_;
    burstDrainFree_ = storeDrainFreeAt_;
    wb_.save(burstWb_);
    burstDirty_ = false;
    lineUndo_.clear();
    touchLog_.clear();
    occCount_.assign(wb_.capacity() + 1, 0);
    burstStats_ = BurstStats{};

    // The program is immutable while bound, so raw instruction
    // access is safe wherever the trace cache reports a non-Breaker
    // kind (kind() itself bounds-checks the PC).
    const Instr *code = prog_->instrs.data();

    // In-burst line memo. No fill or eviction can happen inside a
    // burst (any action that would send a request aborts it first) and
    // external traffic is excluded by System::run's window, so the
    // line-address -> slot mapping is stable for the burst's duration;
    // only the line's own fields change, and those are read through
    // the pointer. Two slots cover the common pattern of a spin loop
    // alternating between a load line and a store line. Each slot also
    // remembers whether the line already has a rollback snapshot in
    // lineUndo_, making the drain path's first-touch check O(1).
    Addr memoAddr0 = ~Addr(0), memoAddr1 = ~Addr(0);
    CacheLine *memoLine0 = nullptr, *memoLine1 = nullptr;
    bool memoSnap0 = false, memoSnap1 = false;
    auto findLine = [&](Addr la) -> CacheLine * {
        if (la == memoAddr0)
            return memoLine0;
        if (la == memoAddr1) {
            std::swap(memoAddr0, memoAddr1);
            std::swap(memoLine0, memoLine1);
            std::swap(memoSnap0, memoSnap1);
            return memoLine0;
        }
        memoAddr1 = memoAddr0;
        memoLine1 = memoLine0;
        memoSnap1 = memoSnap0;
        memoAddr0 = la;
        memoLine0 = l1_.find(la);
        memoSnap0 = false;
        return memoLine0;
    };

    // Line slot of a load already in PerformWait, resolved once here
    // and thereafter captured at issue time, so delivery needs no
    // lookup (slots are stable for the burst's duration).
    CacheLine *loadLine = load_.phase == LoadPhase::PerformWait
                              ? l1_.find(load_.line)
                              : nullptr;

    const Tick last = now + max_cycles; // final cycle of the window
    uint64_t c = 0;
    while (c < max_cycles) {
        Tick t = now + c + 1;

        // --- inert-run fast path -------------------------------------
        // When no stage can act at t, every cycle up to the next unit
        // deadline is identical: same (empty) stage walk, same
        // occupancy, same classification — so a whole run advances in
        // O(1). A non-exclusive write-buffer head means the next drain
        // attempt sends a GetX, which ends the burst here, before any
        // mutation.
        WriteBuffer::Entry *head = wb_.tsoHead();
        CacheLine *headLine = nullptr;
        if (head) {
            headLine = findLine(lineAlign(head->addr));
            if (!headLine || (headLine->state != MesiState::Modified &&
                              headLine->state != MesiState::Exclusive))
                break; // a GetX would go out at t
        }
        bool store_can_act = head && t >= storeDrainFreeAt_;
        bool load_ready =
            load_.phase == LoadPhase::PerformWait && t >= load_.readyAt;
        bool exec_can_act = computeRemaining_ == 0 &&
                            load_.phase == LoadPhase::Inactive;
        if (!store_can_act && !load_ready && !exec_can_act) {
            Tick until = last; // run may extend to the window end
            if (head)
                until = std::min(until, storeDrainFreeAt_ - 1);
            if (load_.phase == LoadPhase::PerformWait)
                until = std::min(until, load_.readyAt - 1);
            bool busy_run = computeRemaining_ > 0;
            if (busy_run)
                until = std::min(until, t + computeRemaining_ - 1);
            uint64_t run = uint64_t(until - t + 1);
            occAdd(wb_.size(), run);
            if (busy_run) {
                // Synthetic busy credits, as in tick: the count-down
                // classifies cycles busy but retires no instructions.
                computeRemaining_ -= run;
                burstStats_.busy += run;
            } else {
                // All units waiting on fixed future ticks: the state
                // feeding stallBucket() is constant across the run.
                burstStats_.stallN[unsigned(stallBucket())] += run;
            }
            c += run;
            continue;
        }

        // --- action cycle, mirroring tick()'s stage order ------------
        unsigned occ_here = wb_.size();
        uint64_t cyc_retired = 0;
        bool mutated = false;
        bool aborted = false;

        // store issue (issueStores mirror: TSO, no fences, no retry
        // state; only local exclusive-hit drains are burstable). The
        // first candidate and its line carry over from the inert check,
        // which already proved the line exclusive.
        {
            WriteBuffer::Entry *e = head;
            CacheLine *l = headLine;
            while (e && t >= storeDrainFreeAt_) {
                if (!memoSnap0) {
                    // findLine left this line in slot 0. First mutation
                    // in this burst (as far as the memo knows):
                    // snapshot it.
                    lineUndo_.push_back({l, l->state, l->data});
                    memoSnap0 = true;
                }
                // writeWordExclusive, minus its LRU touch and storeHits
                // increment — those are applied only on commit.
                l->state = MesiState::Modified;
                l->data[wordInLine(e->addr)] = e->value;
                touchAdd(l);
                burstStats_.l1StHits++;
                storeDrainFreeAt_ = t + cfg_.storeDrainLatency;
                // finishStore minus the (empty) retry-state lookup and
                // the (disabled) trace hook.
                wb_.complete(*e);
                burstStats_.drained++;
                mutated = true;
                e = wb_.tsoHead();
                if (!e)
                    break;
                l = findLine(lineAlign(e->addr));
                if (!l || (l->state != MesiState::Modified &&
                           l->state != MesiState::Exclusive)) {
                    aborted = true; // a GetX would go out
                    break;
                }
            }
        }

        // load unit (only Inactive / PerformWait are burstable)
        if (!aborted && load_ready) {
            CacheLine *l = loadLine;
            if (!l) {
                // Line absent at issue: cannot happen without external
                // traffic, but the cycle-exact path handles it, so
                // just fall back.
                aborted = true;
            } else {
                // readWord, minus its LRU touch and loadHits increment
                // (applied on commit), then Performed -> gate walk over
                // zero fences -> deliver.
                uint64_t v = l->data[wordInLine(load_.addr)];
                touchAdd(l);
                burstStats_.l1LdHits++;
                load_.value = v;
                // rd validated: by the trace cache for burst-issued
                // loads, by directBurstable for a pre-burst one.
                thread_.setRegUnchecked(load_.rd, v);
                thread_.setPc(thread_.pc() + 1);
                load_ = LoadOp{};
                loadLine = nullptr;
                cyc_retired++;
                burstStats_.instr++;
                burstStats_.ldDeliv++;
                mutated = true;
            }
        }

        // execute
        if (!aborted) {
            if (computeRemaining_ > 0) {
                computeRemaining_--;
                mutated = true;
                // Synthetic busy credit, as in tick: classifies the
                // cycle busy but does NOT count a retired instruction.
                cyc_retired++;
            } else if (load_.phase == LoadPhase::Inactive) {
                unsigned budget = cfg_.issueWidth;
                bool cont = true;
                while (cont && budget > 0 && !aborted) {
                    uint64_t pc = thread_.pc();
                    const uint64_t op = trace_.op(pc); // kind + run
                    switch (TraceCache::opKind(op)) {
                      case TraceCache::Kind::Pure: {
                        unsigned k = std::min<uint64_t>(
                            budget, TraceCache::opRun(op));
                        for (unsigned i = 0; i < k; i++)
                            thread_.executeNonMemUnchecked(
                                code[thread_.pc()]);
                        cyc_retired += k;
                        burstStats_.instr += k;
                        budget -= k;
                        mutated = true;
                        break;
                      }
                      case TraceCache::Kind::Control:
                        thread_.executeNonMemUnchecked(code[pc]);
                        cyc_retired++;
                        burstStats_.instr++;
                        budget--;
                        mutated = true;
                        break;
                      case TraceCache::Kind::Load: {
                        const Instr &ins = code[pc];
                        Addr addr =
                            thread_.regUnchecked(ins.ra) + uint64_t(ins.imm);
                        if (!isWordAligned(addr)) {
                            aborted = true; // cycle-exact path fatals
                            break;
                        }
                        burstStats_.ldExec++;
                        load_ = LoadOp{};
                        load_.addr = addr;
                        load_.line = lineAlign(addr);
                        load_.rd = ins.rd;
                        mutated = true;
                        if (const WriteBuffer::Entry *e =
                                wb_.forwardLookup(addr)) {
                            // No fences, so no strong fence between the
                            // store and the load: forward and deliver.
                            burstStats_.ldFwd++;
                            thread_.setRegUnchecked(ins.rd, e->value);
                            thread_.setPc(pc + 1);
                            load_ = LoadOp{};
                            cyc_retired++;
                            burstStats_.instr++;
                            burstStats_.ldDeliv++;
                        } else if (CacheLine *ll = findLine(load_.line)) {
                            load_.phase = LoadPhase::PerformWait;
                            load_.readyAt = t + cfg_.l1HitLatency;
                            loadLine = ll; // for the lookup-free deliver
                        } else {
                            aborted = true; // a GetS would go out
                            break;
                        }
                        cont = false; // Ld ends the issue group
                        break;
                      }
                      case TraceCache::Kind::Store: {
                        const Instr &ins = code[pc];
                        if (wb_.full()) {
                            cont = false; // stalls; classified below
                            break;
                        }
                        Addr addr =
                            thread_.regUnchecked(ins.ra) + uint64_t(ins.imm);
                        if (!isWordAligned(addr)) {
                            aborted = true; // cycle-exact path fatals
                            break;
                        }
                        wb_.push(addr, thread_.regUnchecked(ins.rb));
                        thread_.setPc(pc + 1);
                        cyc_retired++;
                        burstStats_.instr++;
                        budget--;
                        burstStats_.stExec++;
                        mutated = true;
                        break;
                      }
                      case TraceCache::Kind::Compute: {
                        const Instr &ins = code[pc];
                        computeRemaining_ = uint64_t(ins.imm);
                        thread_.setPc(pc + 1);
                        cyc_retired++;
                        burstStats_.instr++;
                        mutated = true;
                        cont = false; // Compute ends the issue group
                        break;
                      }
                      case TraceCache::Kind::Breaker:
                        aborted = true;
                        break;
                    }
                }
            }
            // else: execution stalls behind the pending load.
        }

        if (aborted) {
            // Cycle t will be re-run by the cycle-exact path (which
            // also raises any fatal). A partially executed cycle makes
            // the burst dirty: directCommit must roll back even when
            // it keeps every completed cycle.
            burstDirty_ = mutated;
            break;
        }

        // Complete cycle t: occupancy sample and classification,
        // exactly as tick()'s prologue and classifyCycle record them.
        occAdd(occ_here, 1);
        if (cyc_retired > 0)
            burstStats_.busy++;
        else
            burstStats_.stallN[unsigned(stallBucket())]++;
        c++;
    }

    burstLen_ = c;
    return c;
}

void
Core::rollbackBurst()
{
    // Restore the mutated L1 lines from their first-touch snapshots —
    // in reverse order, so if a line was snapshotted twice (it fell
    // out of the burst's memo between drains) the oldest snapshot is
    // the one that sticks — then drop the write buffer and core state
    // back to the burst-entry snapshot wholesale.
    for (auto it = lineUndo_.rbegin(); it != lineUndo_.rend(); ++it) {
        it->l->state = it->state;
        it->l->data = it->data;
    }
    wb_.restore(burstWb_);
    thread_ = burstThread_;
    load_ = burstLoad_;
    computeRemaining_ = burstCompute_;
    storeDrainFreeAt_ = burstDrainFree_;
    lineUndo_.clear();
    touchLog_.clear();
    burstStats_ = BurstStats{};
    burstLen_ = 0;
    burstDirty_ = false;
}

void
Core::flushBurst(Tick now, uint64_t commit)
{
    // Lazily-bound counters are incremented only when nonzero, so the
    // report keeps the exact shape of a cycle-exact run.
    for (unsigned v = 0; v < occCount_.size(); v++)
        if (occCount_[v])
            hot_.wbOccupancy.sampleN(double(v), occCount_[v]);
    if (burstStats_.busy)
        hot_.busyCycles.inc(burstStats_.busy);
    for (unsigned i = 0; i < numStallBuckets; i++)
        if (burstStats_.stallN[i])
            recordStallCycles(StallBucket(i), burstStats_.stallN[i]);
    if (burstStats_.instr)
        hot_.instrRetired.inc(burstStats_.instr);
    if (burstStats_.drained)
        hot_.storesDrained.inc(burstStats_.drained);
    if (burstStats_.ldExec)
        hot_.loadsExecuted.inc(burstStats_.ldExec);
    if (burstStats_.ldDeliv)
        hot_.loadsDelivered.inc(burstStats_.ldDeliv);
    if (burstStats_.stExec)
        hot_.storesExecuted.inc(burstStats_.stExec);
    if (burstStats_.ldFwd)
        stats_.scalar("loadsForwarded").inc(burstStats_.ldFwd);
    if (burstStats_.l1LdHits)
        l1_.countLoadHits(burstStats_.l1LdHits);
    if (burstStats_.l1StHits)
        l1_.countStoreHits(burstStats_.l1StHits);
    for (const TouchRun &r : touchLog_)
        l1_.touchLineN(*r.l, r.n);
    simulatedUntil_ = now + commit;
    lineUndo_.clear();
    touchLog_.clear();
    burstStats_ = BurstStats{};
    burstLen_ = 0;
    burstDirty_ = false;
}

void
Core::directCommit(Tick now, uint64_t commit)
{
    if (commit > burstLen_)
        panic("core %d: commit %lu past burst length %lu", id_,
              (unsigned long)commit, (unsigned long)burstLen_);
    if (commit == burstLen_ && !burstDirty_) {
        flushBurst(now, commit);
        return;
    }
    rollbackBurst();
    if (commit == 0)
        return;
    // Re-execute the committed prefix. The first `commit` cycles of
    // the original burst completed cleanly, and a burst is a
    // deterministic function of its start state, so a re-run bounded
    // by `commit` replays them exactly.
    uint64_t r = directBurst(now, commit);
    if (r != commit || burstDirty_)
        panic("core %d: burst replay diverged (%lu of %lu)", id_,
              (unsigned long)r, (unsigned long)commit);
    flushBurst(now, commit);
}

// ---------------------------------------------------------------------
// Fences
// ---------------------------------------------------------------------

Core::FenceInstance *
Core::activeWeakFence()
{
    for (auto &f : fences_)
        if (f.isWeak())
            return &f;
    return nullptr;
}

void
Core::tickFences()
{
    while (!fences_.empty() &&
           wb_.drainedUpTo(fences_.front().lastPreStoreSeq)) {
        completeFence(fences_.front());
        fences_.pop_front();
    }
    if (recovering_ && !activeWeakFence())
        recovering_ = false;
    if (FenceInstance *wf = activeWeakFence())
        checkDeadlockTimeout(*wf);
}

void
Core::completeFence(FenceInstance &f)
{
    stats_.scalar("fencesCompleted").inc();
    stats_.average("fenceLatency").sample(double(eq_.now() - f.executedAt));
    ASF_TRACE(complete(f.executedAt, eq_.now() - f.executedAt,
                       uint32_t(id_), "fence", fenceKindName(f.kind),
                       format("{\"id\":%llu,\"demoted\":%s}",
                              (unsigned long long)f.id,
                              f.demoted ? "true" : "false")));
    unsigned weak_left = 0;
    for (const auto &g : fences_)
        if (g.isWeak() && &g != &f)
            weak_left++;
    if (weak_left == 0) {
        // No rollback point remains: journaled guest marks are final.
        for (const auto &[epoch, m] : journaledMarks_)
            markCounters_[m]++;
        journaledMarks_.clear();
    }
    if (f.isWeak() || f.demoted) {
        // Drop exactly this fence's BS entries (epoch-tagged); entries
        // of younger, still-active weak fences stay armed.
        stats_.average("bsLinesPerWf").sample(double(bs_.lineCount()));
        bs_.clearUpTo(f.id);
    }
    if (f.kind == FenceKind::WeeWeak && f.grtHome != invalidNode) {
        Message m;
        m.type = MsgType::GrtClear;
        m.src = id_;
        m.dst = f.grtHome;
        m.requester = id_;
        m.trafficClass = TrafficClass::Grt;
        m.fenceId = f.profileId;
        mesh_.send(std::move(m));
    }
    if (profiler_ && f.profileId)
        profiler_->onComplete(f.profileId, eq_.now());
}

void
Core::checkDeadlockTimeout(FenceInstance &f)
{
    bool watched =
        (cfg_.design == FenceDesign::WPlus && f.kind == FenceKind::Weak) ||
        (cfg_.design == FenceDesign::Wee && f.kind == FenceKind::WeeWeak &&
         !f.demoted);
    if (!watched)
        return;

    bool being_bounced = anyStoreBounced() && !wb_.empty();
    bool bouncing = f.bouncedSomeone;
    if (being_bounced && bouncing) {
        if (!f.timing) {
            f.timing = true;
            f.timeoutStart = eq_.now();
        } else {
            Tick limit = cfg_.design == FenceDesign::WPlus
                             ? cfg_.wPlusTimeout
                             : cfg_.weeTimeout;
            if (eq_.now() - f.timeoutStart >= limit) {
                if (cfg_.design == FenceDesign::WPlus)
                    recoverWPlus(f);
                else
                    demoteWee(f);
            }
        }
    } else {
        f.timing = false;
    }
}

void
Core::recoverWPlus(FenceInstance &f)
{
    if (!f.hasCheckpoint)
        panic("core %d: W+ recovery without checkpoint", id_);
    // An atomic can be mid-drain behind the fence (e.g. a spinlock XCHG
    // after a TLRW read barrier). Draining has no side effects, so the
    // instruction simply re-executes from the checkpoint. Later phases
    // are impossible: they require the fence to have completed.
    if (rmw_.phase != RmwPhase::Inactive &&
        rmw_.phase != RmwPhase::Drain)
        panic("core %d: RMW past drain during W+ recovery", id_);
    rmw_ = RmwOp{};

    stats_.scalar("wPlusRecoveries").inc();
    thread_ = f.checkpoint;
    unsigned squashed = wb_.dropYoungerThan(f.lastPreStoreSeq);
    if (profiler_)
        profiler_->onRecovery(f.profileId, squashed);
    if (recorder_)
        recorder_->onRecovery(id_, f.id, f.lastPreStoreSeq);
    ASF_TRACE(instant(eq_.now(), uint32_t(id_), "fence", "W+ recovery",
                      format("{\"fence\":%llu,\"squashedStores\":%u}",
                             (unsigned long long)f.id, squashed)));
    std::erase_if(storeRetry_, [&f](const auto &kv) {
        return kv.first > f.lastPreStoreSeq;
    });
    bs_.clear();
    load_ = LoadOp{}; // a pending GetS reply, if any, will be ignored
    computeRemaining_ = 0;
    // Only marks from the squashed region (journaled at or after this
    // fence's epoch) are discarded; older overlapped-fence marks stand.
    std::erase_if(journaledMarks_, [&f](const auto &e) {
        return e.first >= f.id;
    });
    f.bouncedSomeone = false;
    f.timing = false;
    // Every younger fence was executed by squashed post-checkpoint code.
    while (!fences_.empty() && &fences_.back() != &f) {
        if (profiler_ && fences_.back().profileId)
            profiler_->onSquashed(fences_.back().profileId);
        fences_.pop_back();
    }
    // Stall at the fence until the pre-fence stores drain; then the same
    // deadlock is no longer possible.
    recovering_ = true;
}

void
Core::demoteWee(FenceInstance &f)
{
    // Watchdog escape for false-sharing-induced bounce cycles: the fence
    // falls back to strong behavior and stops protecting new accesses.
    stats_.scalar("weeWatchdogDemotions").inc();
    f.demoted = true;
    f.timing = false;
    bs_.clear();
    if (profiler_)
        profiler_->onDemote(f.profileId);
}

// ---------------------------------------------------------------------
// Store unit
// ---------------------------------------------------------------------

Tick
Core::backoff(unsigned retries) const
{
    Tick b = cfg_.retryBackoffBase + Tick(retries) * cfg_.retryBackoffStep;
    return std::min(b, cfg_.retryBackoffMax);
}

Core::StoreTxn *
Core::txnForLine(Addr line)
{
    for (auto &t : storeTxns_)
        if (t.active && t.line == line)
            return &t;
    return nullptr;
}

Core::StoreTxn *
Core::freeStoreTxn()
{
    for (auto &t : storeTxns_)
        if (!t.active)
            return &t;
    return nullptr;
}

void
Core::issueStores()
{
    // Post-fence stores may not merge before the (oldest incomplete)
    // fence completes - automatic under TSO's in-order drain, explicit
    // under RC.
    uint64_t max_seq =
        fences_.empty() ? ~uint64_t(0) : fences_.front().lastPreStoreSeq;

    uint64_t after = 0;
    for (;;) {
        WriteBuffer::Entry *e = wb_.nextIssuable(tsoOrder_, max_seq, after);
        if (!e)
            return;
        after = e->seq;
        StoreRetryState &rs = storeRetry_[e->seq];
        if (eq_.now() < rs.nextTryAt) {
            if (tsoOrder_)
                return;
            continue; // RC: a backing-off entry does not block younger ones
        }

        Addr line = lineAlign(e->addr);
        CacheLine *l = l1_.find(line);
        bool exclusive_hit = l && (l->state == MesiState::Modified ||
                                   l->state == MesiState::Exclusive);
        if (exclusive_hit) {
            // Drains against the local line; the single drain port
            // limits hit throughput.
            if (eq_.now() < storeDrainFreeAt_)
                return;
            if (!l1_.writeWordExclusive(e->addr, e->value))
                panic("core %d: exclusive hit raced away", id_);
            storeDrainFreeAt_ = eq_.now() + cfg_.storeDrainLatency;
            // The local write to an E/M line is globally visible at
            // once: this is the store's serialization point.
            if (recorder_)
                recorder_->onStoreMerged(id_, e->seq);
            finishStore(*e);
            continue;
        }

        StoreTxn *txn = freeStoreTxn();
        if (!txn) {
            if (tsoOrder_)
                return;
            continue; // RC: younger exclusive hits can still drain
        }

        MsgType type = MsgType::GetX;
        TrafficClass tc = TrafficClass::Base;
        uint64_t order_fence_id = 0;
        if (rs.everNacked) {
            tc = TrafficClass::Retry;
            // "If the core then executes a wf, the hardware sets the O
            // bit of all currently-bouncing requests": any active weak
            // fence younger than this store qualifies it.
            bool wf_after = false;
            for (const auto &f : fences_)
                if (f.kind == FenceKind::Weak && !f.demoted &&
                    f.lastPreStoreSeq >= e->seq) {
                    wf_after = true;
                    if (!order_fence_id)
                        order_fence_id = f.profileId;
                }
            if (wf_after && cfg_.design == FenceDesign::WSPlus)
                type = MsgType::OrderWrite;
            else if (wf_after && cfg_.design == FenceDesign::SWPlus)
                type = MsgType::CondOrderWrite;
        }

        bool has_shared = l1_.hasShared(line);
        txn->active = true;
        txn->line = line;
        txn->addr = e->addr;
        txn->value = e->value;
        txn->seq = e->seq;
        txn->pinned = type == MsgType::GetX && has_shared;
        if (txn->pinned)
            l1_.pin(line);
        e->issued = true;
        l1_.sendWriteReq(type, e->addr, e->value,
                         type == MsgType::GetX && has_shared, tc,
                         type != MsgType::GetX ? order_fence_id : 0,
                         recorder_ ? e->seq : 0);
        if (type != MsgType::GetX)
            stats_.scalar("orderRequests").inc();
    }
}

void
Core::finishStore(WriteBuffer::Entry &entry)
{
    auto it = storeRetry_.find(entry.seq);
    if (it != storeRetry_.end()) {
        if (it->second.everNacked) {
            stats_.scalar("bouncedWrites").inc();
            stats_.average("retriesPerBouncedWrite")
                .sample(double(it->second.retries));
        }
        storeRetry_.erase(it);
    }
    ASF_TRACE(instant(eq_.now(), uint32_t(id_), "wb", "drain",
                      format("{\"addr\":%llu,\"seq\":%llu}",
                             (unsigned long long)entry.addr,
                             (unsigned long long)entry.seq)));
    wb_.complete(entry);
    hot_.storesDrained.inc();
}

// ---------------------------------------------------------------------
// Load unit
// ---------------------------------------------------------------------

void
Core::tickLoadUnit()
{
    switch (load_.phase) {
      case LoadPhase::Inactive:
      case LoadPhase::MissPending:
        return;
      case LoadPhase::WaitForward:
        if (wb_.drainedUpTo(load_.waitStoreSeq))
            load_.phase = LoadPhase::AccessPending;
        else
            return;
        [[fallthrough]];
      case LoadPhase::AccessPending:
        loadAccess();
        return;
      case LoadPhase::PerformWait:
        if (eq_.now() >= load_.readyAt) {
            uint64_t v;
            if (l1_.readWord(load_.addr, v)) {
                load_.value = v;
                load_.phase = LoadPhase::Performed;
                evaluateLoadGate();
            } else {
                // Line disappeared between issue and perform: retry.
                load_.phase = LoadPhase::AccessPending;
            }
        }
        return;
      case LoadPhase::Performed:
      case LoadPhase::Held:
        evaluateLoadGate();
        return;
    }
}

void
Core::loadAccess()
{
    if (l1_.find(load_.line)) {
        load_.phase = LoadPhase::PerformWait;
        load_.readyAt = eq_.now() + cfg_.l1HitLatency;
        return;
    }
    // MSHR-style merge: while a write request for this line is in
    // flight, wait for it instead of racing it with a read request -
    // the write grant will make the access a local hit.
    if (txnForLine(load_.line) != nullptr ||
        (rmw_.phase == RmwPhase::WaitLine && rmw_.line == load_.line))
        return;
    if (!getSOutstanding_) {
        if (traceEnabledFor(load_.line))
            traceEvent(eq_.now(), format("core%d", id_).c_str(),
                       "load miss pc=%llu addr=%#llx",
                       (unsigned long long)thread_.pc(),
                       (unsigned long long)load_.addr);
        l1_.sendGetS(load_.line);
        getSOutstanding_ = true;
        load_.phase = LoadPhase::MissPending;
        stats_.scalar("loadMissesIssued").inc();
    }
    // Else a stale GetS for some line is still in flight; wait for it.
}

void
Core::evaluateLoadGate()
{
    HoldReason hr = HoldReason::None;
    bool needs_bs = false;
    uint64_t epoch = 0;
    uint64_t epoch_profile = 0;
    FenceInstance *wee = nullptr;

    for (auto &f : fences_) {
        if (!f.isWeak()) {
            hr = HoldReason::StrongFence;
            break;
        }
        if (f.kind == FenceKind::Weak) {
            needs_bs = true;
            epoch = f.id;
            epoch_profile = f.profileId;
            continue;
        }
        // WeeFence rules. Private Access Filtering first: no other
        // thread ever touches a private line, so this load cannot close
        // a cycle and needs no Remote-PS consultation.
        if (cfg_.weePrivateFiltering && isPrivate_ &&
            isPrivate_(load_.line)) {
            needs_bs = true;
            epoch = f.id;
            epoch_profile = f.profileId;
            continue;
        }
        if (f.grtHome == invalidNode) {
            // Lazy binding (empty filtered PS): adopt this load's home
            // as the fence's GRT module and fetch its Remote PS.
            f.grtHome = homeNode(load_.line, cfg_.numCores);
            f.grtPending = true;
            if (profiler_)
                profiler_->onGrtDeposit(f.profileId, 0, eq_.now());
            Message m;
            m.type = MsgType::GrtDeposit;
            m.src = id_;
            m.dst = f.grtHome;
            m.requester = id_;
            m.trafficClass = TrafficClass::Grt;
            m.fenceId = f.profileId;
            mesh_.send(std::move(m));
            hr = HoldReason::GrtPending;
            break;
        }
        if (f.grtPending) {
            hr = HoldReason::GrtPending;
            break;
        }
        if (homeNode(load_.line, cfg_.numCores) != f.grtHome) {
            hr = HoldReason::NonHomeLine;
            break;
        }
        if (std::find(f.remotePs.begin(), f.remotePs.end(), load_.line) !=
            f.remotePs.end()) {
            hr = HoldReason::RemotePs;
            wee = &f;
            break;
        }
        needs_bs = true;
        epoch = f.id;
        epoch_profile = f.profileId;
    }

    if (hr == HoldReason::None && needs_bs && !load_.inBs) {
        // Seeded fence-group bug (checker mutation self-test): claim
        // BS protection without inserting the address, so conflicting
        // invalidations are never bounced and post-fence loads can be
        // architecturally stale.
        if (cfg_.mutateDropBsInsert) {
            load_.inBs = true;
        } else if (bs_.insert(load_.addr, epoch)) {
            load_.inBs = true;
            if (profiler_ && epoch_profile)
                profiler_->onBsInsert(epoch_profile);
        } else {
            hr = HoldReason::BsFull;
            // Transition-counted (like bsFullHolds): one conflict per
            // refused insert, not one per held cycle.
            if (load_.hold != HoldReason::BsFull) {
                stats_.scalar("bsFullHolds").inc();
                if (hotspot_)
                    hotspot_->record(load_.addr, HotEvent::BsConflict);
            }
        }
    }

    if (hr == HoldReason::None) {
        deliverLoad();
        return;
    }

    // Count Remote-PS holds on the transition (like bsFullHolds above),
    // not per re-evaluation cycle.
    if (profiler_ && hr == HoldReason::RemotePs &&
        (load_.phase != LoadPhase::Held ||
         load_.hold != HoldReason::RemotePs))
        profiler_->onRemotePsHold(wee->profileId);

    load_.phase = LoadPhase::Held;
    load_.hold = hr;
    if (hr == HoldReason::RemotePs && eq_.now() >= load_.nextGrtCheckAt) {
        Message m;
        m.type = MsgType::GrtCheck;
        m.src = id_;
        m.dst = wee->grtHome;
        m.addr = load_.line;
        m.requester = id_;
        m.trafficClass = TrafficClass::Grt;
        m.fenceId = wee->profileId;
        mesh_.send(std::move(m));
        load_.nextGrtCheckAt = eq_.now() + cfg_.grtRecheckInterval;
    }
}

void
Core::deliverLoad()
{
    if (recorder_)
        recorder_->onLoad(id_, thread_.pc(), load_.addr, load_.value,
                          load_.forwarded ? load_.fwdSeq : 0, eq_.now());
    thread_.setReg(load_.rd, load_.value);
    thread_.setPc(thread_.pc() + 1);
    load_ = LoadOp{};
    retiredThisCycle_++;
    hot_.instrRetired.inc();
    hot_.loadsDelivered.inc();
}

// ---------------------------------------------------------------------
// RMW unit
// ---------------------------------------------------------------------

void
Core::tickRmw()
{
    switch (rmw_.phase) {
      case RmwPhase::Inactive:
      case RmwPhase::WaitLine:
        return;
      case RmwPhase::Drain:
        if (wb_.empty() && fences_.empty())
            rmw_.phase = RmwPhase::Access;
        else
            return;
        [[fallthrough]];
      case RmwPhase::Access: {
        if (eq_.now() < rmw_.nextTryAt)
            return;
        CacheLine *l = l1_.find(rmw_.line);
        if (l && (l->state == MesiState::Modified ||
                  l->state == MesiState::Exclusive)) {
            performRmwLocal();
            return;
        }
        bool has_shared = l1_.hasShared(rmw_.line);
        rmw_.pinned = has_shared;
        if (has_shared)
            l1_.pin(rmw_.line);
        l1_.sendWriteReq(MsgType::GetX, rmw_.addr, 0, has_shared,
                         TrafficClass::Base);
        rmw_.phase = RmwPhase::WaitLine;
        return;
      }
    }
}

void
Core::performRmwLocal()
{
    CacheLine *l = l1_.find(rmw_.line);
    if (!l || (l->state != MesiState::Modified &&
               l->state != MesiState::Exclusive))
        panic("core %d: RMW without exclusive line", id_);
    l->state = MesiState::Modified;
    unsigned w = wordInLine(rmw_.addr);
    uint64_t old = l->data[w];
    if (rmw_.op == Op::Cas) {
        if (old == rmw_.expect)
            l->data[w] = rmw_.desired;
    } else {
        l->data[w] = rmw_.desired;
    }
    if (recorder_)
        recorder_->onRmw(id_, thread_.pc(), rmw_.addr, old,
                         rmw_.desired,
                         rmw_.op != Op::Cas || old == rmw_.expect,
                         eq_.now());
    if (rmw_.pinned) {
        l1_.unpin(rmw_.line);
        rmw_.pinned = false;
    }
    thread_.setReg(rmw_.rd, old);
    thread_.setPc(thread_.pc() + 1);
    rmw_ = RmwOp{};
    retiredThisCycle_++;
    hot_.instrRetired.inc();
    stats_.scalar("rmwsExecuted").inc();
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

void
Core::tickExecute()
{
    // Cycle classification moved wholesale to classifyCycle/stallBucket
    // (end-of-tick state): this stage only advances execution.
    if (recovering_)
        return;
    if (computeRemaining_ > 0) {
        computeRemaining_--;
        // Compute cycles count as busy via a synthetic retire credit.
        retiredThisCycle_++;
        return;
    }
    if (load_.phase != LoadPhase::Inactive ||
        rmw_.phase != RmwPhase::Inactive)
        return; // execution stalls behind the active unit
    if (thread_.halted())
        return;

    unsigned budget = cfg_.issueWidth;
    while (budget > 0 && executeOne(budget)) {
    }
}

bool
Core::executeOne(unsigned &budget)
{
    const Instr &ins = prog_->at(thread_.pc());
    switch (ins.op) {
      case Op::Ld:
        startLoad(ins);
        return false;
      case Op::St: {
        if (wb_.full())
            return false; // classifies as bounce-retry / wb-full

        Addr addr = thread_.reg(ins.ra) + uint64_t(ins.imm);
        if (!isWordAligned(addr))
            fatal("core %d: unaligned store to %#llx (pc %llu)", id_,
                  (unsigned long long)addr,
                  (unsigned long long)thread_.pc());
        uint64_t seq = wb_.push(addr, thread_.reg(ins.rb));
        if (recorder_)
            recorder_->onStore(id_, thread_.pc(), addr,
                               thread_.reg(ins.rb), seq, eq_.now());
        thread_.setPc(thread_.pc() + 1);
        retiredThisCycle_++;
        budget--;
        hot_.instrRetired.inc();
        hot_.storesExecuted.inc();
        return true;
      }
      case Op::Fence:
        startFence(ins);
        return false;
      case Op::Cas:
      case Op::Xchg:
        startRmw(ins);
        return false;
      case Op::Compute:
        computeRemaining_ = uint64_t(ins.imm);
        thread_.setPc(thread_.pc() + 1);
        retiredThisCycle_++;
        hot_.instrRetired.inc();
        return false;
      case Op::Mark: {
        FenceInstance *oldest = activeWeakFence();
        if (oldest && oldest->hasCheckpoint) {
            uint64_t epoch = oldest->id;
            for (const auto &f : fences_)
                if (f.isWeak())
                    epoch = std::max(epoch, f.id);
            journaledMarks_.emplace_back(epoch, ins.imm);
        } else {
            markCounters_[ins.imm]++;
        }
        thread_.setPc(thread_.pc() + 1);
      }
        retiredThisCycle_++;
        budget--;
        hot_.instrRetired.inc();
        return true;
      case Op::Halt:
        thread_.executeNonMem(ins);
        retiredThisCycle_++;
        hot_.instrRetired.inc();
        return false;
      default:
        thread_.executeNonMem(ins);
        retiredThisCycle_++;
        budget--;
        hot_.instrRetired.inc();
        return true;
    }
}

void
Core::startLoad(const Instr &ins)
{
    Addr addr = thread_.reg(ins.ra) + uint64_t(ins.imm);
    if (!isWordAligned(addr))
        fatal("core %d: unaligned load of %#llx (pc %llu)", id_,
              (unsigned long long)addr, (unsigned long long)thread_.pc());

    load_ = LoadOp{};
    load_.addr = addr;
    load_.line = lineAlign(addr);
    load_.rd = ins.rd;
    hot_.loadsExecuted.inc();

    if (const WriteBuffer::Entry *e = wb_.forwardLookup(addr)) {
        // A *strong* fence between the store and the load forbids the
        // load from completing before the fence (mfence semantics). A
        // weak fence does not: completing post-fence accesses early is
        // its whole point, and forwarding our own pre-fence store is the
        // benign case - the delivery gate below still BS-protects it.
        bool strong_between = false;
        for (const auto &f : fences_)
            if (f.lastPreStoreSeq >= e->seq && !f.isWeak())
                strong_between = true;
        if (strong_between) {
            load_.phase = LoadPhase::WaitForward;
            load_.waitStoreSeq = e->seq;
            stats_.scalar("forwardsBlockedByFence").inc();
            return;
        }
        load_.value = e->value;
        load_.forwarded = true; // own-store value: immune to squash
        load_.fwdSeq = e->seq;
        load_.phase = LoadPhase::Performed;
        stats_.scalar("loadsForwarded").inc();
        evaluateLoadGate();
        return;
    }

    load_.phase = LoadPhase::AccessPending;
    loadAccess();
}

void
Core::startFence(const Instr &ins)
{
    FenceKind kind = resolveFenceKind(cfg_.design, ins.role);

    // Weak fences are defined for TSO; under RC they fall back to
    // conventional fences (wf-under-RC is the paper's future work,
    // Section 5.2).
    if (cfg_.memoryModel == MemoryModel::RC &&
        kind != FenceKind::Strong) {
        kind = FenceKind::Strong;
        stats_.scalar("rcFenceDemotions").inc();
    }

    // Nothing pending before the fence: it completes immediately.
    if (wb_.empty()) {
        switch (kind) {
          case FenceKind::Strong:
            stats_.scalar("fencesStrong").inc();
            break;
          case FenceKind::Weak:
            stats_.scalar("fencesWeak").inc();
            break;
          case FenceKind::WeeWeak:
            stats_.scalar("fencesWee").inc();
            break;
        }
        stats_.scalar("fencesInstant").inc();
        if (profiler_)
            profiler_->onInstant(id_, kind, eq_.now());
        if (recorder_)
            recorder_->onFence(id_, thread_.pc(), kind, true, 0,
                               eq_.now());
        thread_.setPc(thread_.pc() + 1);
        retiredThisCycle_++;
        hot_.instrRetired.inc();
        return;
    }

    if (kind == FenceKind::WeeWeak && activeWeakFence()) {
        // The GRT holds a single Pending Set per core, so WeeFences
        // serialize. Plain weak fences may overlap: the BS simply stays
        // armed until the youngest one completes.
        weeSerializeStall_ = true;
        return;
    }

    FenceInstance f;
    f.kind = kind;
    f.id = ++nextFenceId_;
    f.lastPreStoreSeq = wb_.lastSeq();
    f.executedAt = eq_.now();
    if (profiler_)
        f.profileId = profiler_->onIssue(id_, kind, eq_.now());
    if (recorder_)
        recorder_->onFence(id_, thread_.pc(), kind, false, f.id,
                           eq_.now());

    thread_.setPc(thread_.pc() + 1);

    switch (kind) {
      case FenceKind::Strong:
        stats_.scalar("fencesStrong").inc();
        break;
      case FenceKind::Weak:
        stats_.scalar("fencesWeak").inc();
        if (cfg_.design == FenceDesign::WPlus) {
            f.checkpoint = thread_;
            f.hasCheckpoint = true;
        }
        break;
      case FenceKind::WeeWeak: {
        stats_.scalar("fencesWee").inc();
        std::vector<Addr> ps = wb_.pendingLines(f.lastPreStoreSeq);
        if (cfg_.weePrivateFiltering && isPrivate_) {
            // Private Access Filtering: a store to a thread-private
            // region cannot participate in a cross-thread cycle.
            std::erase_if(ps,
                          [this](Addr line) { return isPrivate_(line); });
        }
        if (ps.empty()) {
            // Every pending store is private: nothing to deposit. The
            // GRT module is bound lazily to the first post-fence load's
            // home (the Remote PS must still be consulted for loads).
            f.grtHome = invalidNode;
            f.grtPending = false;
            break;
        }
        NodeId home = homeNode(ps.front(), cfg_.numCores);
        bool single_module = true;
        for (Addr a : ps)
            if (homeNode(a, cfg_.numCores) != home)
                single_module = false;
        if (!single_module) {
            // PS spans directory modules: fall back to a conventional
            // fence (paper Section 2.3).
            f.demoted = true;
            stats_.scalar("weeMultiModuleDemotions").inc();
            if (profiler_)
                profiler_->onDemote(f.profileId);
        } else {
            f.grtHome = home;
            f.grtPending = true;
            if (profiler_)
                profiler_->onGrtDeposit(f.profileId, ps.size(),
                                        eq_.now());
            Message m;
            m.type = MsgType::GrtDeposit;
            m.src = id_;
            m.dst = home;
            m.requester = id_;
            m.addrSet = std::move(ps);
            m.trafficClass = TrafficClass::Grt;
            m.fenceId = f.profileId;
            mesh_.send(std::move(m));
        }
        break;
      }
    }

    fences_.push_back(std::move(f));
    retiredThisCycle_++;
    hot_.instrRetired.inc();
}

void
Core::startRmw(const Instr &ins)
{
    Addr addr = thread_.reg(ins.ra) + uint64_t(ins.imm);
    if (!isWordAligned(addr))
        fatal("core %d: unaligned RMW at %#llx", id_,
              (unsigned long long)addr);
    rmw_ = RmwOp{};
    rmw_.phase = RmwPhase::Drain;
    rmw_.op = ins.op;
    rmw_.addr = addr;
    rmw_.line = lineAlign(addr);
    rmw_.rd = ins.rd;
    if (ins.op == Op::Cas) {
        rmw_.expect = thread_.reg(ins.rb);
        rmw_.desired = thread_.reg(ins.rc);
    } else {
        rmw_.desired = thread_.reg(ins.rb);
    }
}

// ---------------------------------------------------------------------
// Protocol plumbing
// ---------------------------------------------------------------------

BsMatch
Core::bsProbe(Addr line, WordMask words)
{
    // Only SW+ keeps (and compares) word-granularity BS information;
    // every other design matches at line granularity.
    WordMask m = cfg_.design == FenceDesign::SWPlus ? words : WordMask(0);
    return bs_.match(line, m);
}

void
Core::onBsBounce(Addr line)
{
    (void)line;
    stats_.scalar("bsBounces").inc();
    if (FenceInstance *wf = activeWeakFence()) {
        wf->bouncedSomeone = true;
        if (profiler_ && wf->profileId)
            profiler_->onBounce(wf->profileId);
    }
}

void
Core::onLineInvalidated(Addr line)
{
    if ((load_.phase == LoadPhase::Performed ||
         load_.phase == LoadPhase::Held) &&
        load_.line == line && !load_.forwarded) {
        // Conflicting invalidation squashes the speculative load; it
        // re-performs (and will observe the new value).
        load_.phase = LoadPhase::AccessPending;
        load_.inBs = false;
        load_.squashed = true;
        stats_.scalar("loadSquashes").inc();
        ASF_TRACE(instant(eq_.now(), uint32_t(id_), "cpu", "load squash",
                          format("{\"line\":%llu}",
                                 (unsigned long long)line)));
    }
}

void
Core::onL1Reply(const Message &msg)
{
    switch (msg.type) {
      case MsgType::DataE:
      case MsgType::DataS:
        getSOutstanding_ = false;
        if (load_.phase == LoadPhase::MissPending &&
            load_.line == msg.addr) {
            uint64_t v;
            if (!l1_.readWord(load_.addr, v))
                panic("core %d: fill did not install line", id_);
            load_.value = v;
            load_.phase = LoadPhase::Performed;
        }
        return;

      case MsgType::DataX:
      case MsgType::AckX:
      case MsgType::AckOrder:
        if (StoreTxn *txn = txnForLine(msg.addr)) {
            WriteBuffer::Entry *e = wb_.issuedEntryForLine(msg.addr);
            if (!e)
                panic("core %d: store grant with no issued entry", id_);
            if (msg.type != MsgType::AckOrder) {
                if (!l1_.writeWordExclusive(txn->addr, txn->value))
                    panic("core %d: store grant without writable line",
                          id_);
                // Ownership grant: the store serializes here. (Order
                // stores were already stamped at the directory merge.)
                if (recorder_)
                    recorder_->onStoreMerged(id_, e->seq);
            }
            // AckOrder installed a Shared line with the update already
            // merged by the directory.
            if (txn->pinned)
                l1_.unpin(txn->line);
            txn->active = false;
            finishStore(*e);
        } else if (rmw_.phase == RmwPhase::WaitLine &&
                   rmw_.line == msg.addr) {
            performRmwLocal();
        } else {
            panic("core %d: unmatched write grant %s", id_,
                  msg.toString().c_str());
        }
        return;

      case MsgType::NackX:
      case MsgType::NackCO:
        if (StoreTxn *txn = txnForLine(msg.addr)) {
            WriteBuffer::Entry *e = wb_.issuedEntryForLine(msg.addr);
            if (!e)
                panic("core %d: store nack with no issued entry", id_);
            e->issued = false;
            StoreRetryState &rs = storeRetry_[e->seq];
            rs.retries++;
            rs.everNacked = true;
            if (msg.type == MsgType::NackCO)
                rs.coMode = true;
            rs.nextTryAt = eq_.now() + backoff(rs.retries);
            if (txn->pinned)
                l1_.unpin(txn->line);
            txn->active = false;
            stats_.scalar("storeNacks").inc();
            if (profiler_) {
                // Attribute the bounce round to the oldest fence the
                // nacked store is pending under.
                for (const auto &f : fences_)
                    if (f.profileId && f.lastPreStoreSeq >= e->seq) {
                        profiler_->onStoreNack(f.profileId);
                        break;
                    }
            }
        } else if (rmw_.phase == RmwPhase::WaitLine &&
                   rmw_.line == msg.addr) {
            if (rmw_.pinned) {
                l1_.unpin(rmw_.line);
                rmw_.pinned = false;
            }
            rmw_.phase = RmwPhase::Access;
            rmw_.retries++;
            rmw_.nextTryAt = eq_.now() + backoff(rmw_.retries);
            stats_.scalar("rmwNacks").inc();
        } else {
            panic("core %d: unmatched nack %s", id_,
                  msg.toString().c_str());
        }
        return;

      default:
        panic("core %d: unexpected L1 reply %s", id_,
              msg.toString().c_str());
    }
}

void
Core::onGrtMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::GrtFetchReply:
        for (auto &f : fences_) {
            if (f.kind == FenceKind::WeeWeak && f.grtPending &&
                f.grtHome == msg.src) {
                f.remotePs = msg.addrSet;
                f.grtPending = false;
                if (profiler_ && f.profileId)
                    profiler_->onGrtReply(f.profileId, eq_.now());
                return;
            }
        }
        return; // fence already completed; stale reply
      case MsgType::GrtCheckReply:
        if (!msg.blocked) {
            for (auto &f : fences_) {
                if (f.kind != FenceKind::WeeWeak)
                    continue;
                auto it = std::find(f.remotePs.begin(), f.remotePs.end(),
                                    msg.addr);
                if (it != f.remotePs.end())
                    f.remotePs.erase(it);
            }
        }
        return;
      default:
        panic("core %d: unexpected GRT message %s", id_,
              msg.toString().c_str());
    }
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

namespace
{

const char *
loadPhaseName(int p)
{
    static const char *names[] = {"Inactive",    "WaitForward",
                                  "AccessPending", "PerformWait",
                                  "MissPending", "Performed", "Held"};
    return names[p];
}

const char *
holdReasonName(int h)
{
    static const char *names[] = {"None",       "StrongFence", "BsFull",
                                  "GrtPending", "NonHomeLine",
                                  "RemotePs"};
    return names[h];
}

const char *
rmwPhaseName(int p)
{
    static const char *names[] = {"Inactive", "Drain", "Access",
                                  "WaitLine"};
    return names[p];
}

} // namespace

void
Core::debugDump(std::ostream &os) const
{
    os << "core" << unsigned(id_) << ": pc=" << thread_.pc()
       << (thread_.halted() ? " halted" : "")
       << (recovering_ ? " RECOVERING" : "");
    if (!done() && retiredThisCycle_ == 0 &&
        !(thread_.halted() && load_.phase == LoadPhase::Inactive &&
          rmw_.phase == RmwPhase::Inactive))
        os << " stall=" << stallBucketStatName(stallBucket());
    os << "\n";
    if (load_.phase != LoadPhase::Inactive) {
        os << "  load: phase=" << loadPhaseName(int(load_.phase))
           << " hold=" << holdReasonName(int(load_.hold)) << " addr=0x"
           << std::hex << load_.addr << std::dec
           << (load_.squashed ? " squashed" : "")
           << (load_.inBs ? " inBs" : "") << "\n";
    }
    if (rmw_.phase != RmwPhase::Inactive)
        os << "  rmw: phase=" << rmwPhaseName(int(rmw_.phase))
           << " addr=0x" << std::hex << rmw_.addr << std::dec
           << " retries=" << rmw_.retries << " nextTryAt="
           << rmw_.nextTryAt << "\n";
    os << "  wb: " << wb_.size() << "/" << wb_.capacity() << " entries";
    if (!wb_.empty()) {
        const WriteBuffer::Entry &e = wb_.front();
        os << "; head seq=" << e.seq << " addr=0x" << std::hex << e.addr
           << std::dec << (e.issued ? " issued" : "")
           << (e.done ? " done" : "");
        if (auto it = storeRetry_.find(e.seq); it != storeRetry_.end())
            os << " retries=" << it->second.retries
               << (it->second.everNacked ? " nacked" : "")
               << " nextTryAt=" << it->second.nextTryAt;
    }
    os << "\n";
    for (const auto &f : fences_)
        os << "  fence: kind=" << fenceKindName(f.kind) << " id=" << f.id
           << " profileId=" << f.profileId
           << " lastPreStoreSeq=" << f.lastPreStoreSeq
           << (f.demoted ? " demoted" : "")
           << (f.grtPending ? " grtPending" : "")
           << (f.timing ? " timing" : "")
           << (f.bouncedSomeone ? " bouncedSomeone" : "")
           << " executedAt=" << f.executedAt << "\n";
    if (bs_.lineCount() > 0)
        os << "  bs: " << bs_.lineCount() << " lines\n";
}

} // namespace asf
