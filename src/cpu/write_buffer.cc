#include "cpu/write_buffer.hh"

#include <algorithm>
#include <vector>

#include "mem/address.hh"
#include "sim/logging.hh"

namespace asf
{

WriteBuffer::WriteBuffer(unsigned capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("write buffer with zero capacity");
}

WriteBuffer::Entry *
WriteBuffer::nextIssuable(bool tso_order, uint64_t max_seq,
                          uint64_t after_seq)
{
    if (entries_.empty())
        return nullptr;
    if (tso_order) {
        Entry &head = entries_.front();
        return (!head.issued && !head.done && head.seq <= max_seq &&
                head.seq > after_seq)
                   ? &head
                   : nullptr;
    }
    // RC: oldest unissued entry with no older same-line entry still
    // outstanding (same-line merges stay in program order).
    for (size_t i = 0; i < entries_.size(); i++) {
        Entry &e = entries_[i];
        if (e.issued || e.done || e.seq > max_seq || e.seq <= after_seq)
            continue;
        bool blocked = false;
        for (size_t j = 0; j < i; j++) {
            if (!entries_[j].done &&
                lineAlign(entries_[j].addr) == lineAlign(e.addr)) {
                blocked = true;
                break;
            }
        }
        if (!blocked)
            return &e;
    }
    return nullptr;
}

WriteBuffer::Entry *
WriteBuffer::issuedEntryForLine(Addr line_addr)
{
    for (auto &e : entries_)
        if (e.issued && !e.done && lineAlign(e.addr) == line_addr)
            return &e;
    return nullptr;
}

const WriteBuffer::Entry &
WriteBuffer::front() const
{
    if (entries_.empty())
        panic("front() on empty write buffer");
    return entries_.front();
}

void
WriteBuffer::popFront()
{
    if (entries_.empty())
        panic("popFront() on empty write buffer");
    entries_.pop_front();
}

bool
WriteBuffer::drainedUpTo(uint64_t upto) const
{
    return entries_.empty() || entries_.front().seq > upto;
}

unsigned
WriteBuffer::dropYoungerThan(uint64_t upto)
{
    unsigned dropped = 0;
    while (!entries_.empty() && entries_.back().seq > upto) {
        entries_.pop_back();
        dropped++;
    }
    totalDropped_ += dropped;
    return dropped;
}

void
WriteBuffer::resetCounters()
{
    totalPushes_ = 0;
    totalDropped_ = 0;
    highWater_ = unsigned(entries_.size());
}

std::vector<Addr>
WriteBuffer::pendingLines(uint64_t upto) const
{
    std::vector<Addr> lines;
    for (const auto &e : entries_) {
        if (e.seq > upto)
            break;
        lines.push_back(lineAlign(e.addr));
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

} // namespace asf
