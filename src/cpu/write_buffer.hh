/**
 * @file
 * The per-core write buffer. Under TSO, retired stores sit here in FIFO
 * order and merge with the memory system one at a time. Fences complete
 * when every store older than the fence has drained. Store->load
 * forwarding is allowed unless an active fence separates the store from
 * the load in program order.
 */

#ifndef ASF_CPU_WRITE_BUFFER_HH
#define ASF_CPU_WRITE_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace asf
{

class WriteBuffer
{
  public:
    struct Entry
    {
        Addr addr;      ///< word-aligned byte address
        uint64_t value;
        uint64_t seq;   ///< program-order store sequence number
        /** Issued to the memory system (a write transaction is in
         *  flight). Under TSO only the head issues; under RC several
         *  entries may be in flight at once. */
        bool issued = false;
        /** Merged with the memory system. Entries complete out of order
         *  under RC; completed entries leave the buffer once everything
         *  older has also completed. */
        bool done = false;
    };

    explicit WriteBuffer(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Enqueue a retired store; returns its sequence number.
     *  Inline: a hot operation of both tick and burst execution. */
    uint64_t push(Addr addr, uint64_t value)
    {
        if (full())
            panic("write buffer overflow");
        uint64_t seq = nextSeq_++;
        entries_.push_back(Entry{addr, value, seq, false, false});
        totalPushes_++;
        if (entries_.size() > highWater_)
            highWater_ = unsigned(entries_.size());
        return seq;
    }

    const Entry &front() const;
    void popFront();

    /**
     * Next issue candidate: under `tso_order` the head entry if it is
     * unissued; otherwise (RC) the oldest unissued entry with seq >
     * after_seq whose line has no older in-flight or incomplete entry
     * (same-line writes must merge in program order). Entries with
     * seq > max_seq are never returned - the core passes the oldest
     * incomplete fence's pre-store bound so post-fence stores wait for
     * the fence even under RC. `after_seq` lets the caller skip past a
     * resource-blocked entry and drain ready younger ones (RC does not
     * preserve store order anyway). Returns nullptr if none.
     */
    Entry *nextIssuable(bool tso_order, uint64_t max_seq = ~uint64_t(0),
                        uint64_t after_seq = 0);

    /** Inline TSO fast path of nextIssuable(true) with the default
     *  bounds (entry seqs start at 1, so the default after_seq of 0
     *  never masks the head) — the direct-execution burst's per-cycle
     *  head lookup. */
    Entry *tsoHead()
    {
        if (entries_.empty())
            return nullptr;
        Entry &head = entries_.front();
        return (!head.issued && !head.done) ? &head : nullptr;
    }
    const Entry *nextIssuable(bool tso_order,
                              uint64_t max_seq = ~uint64_t(0),
                              uint64_t after_seq = 0) const
    {
        return const_cast<WriteBuffer *>(this)->nextIssuable(
            tso_order, max_seq, after_seq);
    }

    /** Locate the (unique) in-flight entry for a line. */
    Entry *issuedEntryForLine(Addr line_addr);

    /** Mark an entry merged and drop the completed prefix.
     *  Inline: a hot operation of both tick and burst execution. */
    void complete(Entry &entry)
    {
        entry.done = true;
        entry.issued = false;
        while (!entries_.empty() && entries_.front().done)
            entries_.pop_front();
    }

    /** Sequence number of the most recently enqueued store (0 if none). */
    uint64_t lastSeq() const { return nextSeq_ - 1; }

    /**
     * Youngest entry matching a word address, for store->load
     * forwarding; nullptr if none. (Word-granularity accesses only, so
     * partial overlap cannot occur.) Inline: the direct-execution burst
     * calls it for every load.
     */
    const Entry *forwardLookup(Addr addr) const
    {
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
            if (it->addr == addr)
                return &*it;
        return nullptr;
    }

    /** True once every store with seq <= upto has drained. */
    bool drainedUpTo(uint64_t upto) const;

    /** Drop all entries with seq > upto (W+ recovery); returns how many
     *  buffered stores were squashed. */
    unsigned dropYoungerThan(uint64_t upto);

    /** Distinct line addresses of entries with seq <= upto (Wee PS). */
    std::vector<Addr> pendingLines(uint64_t upto) const;

    // --- occupancy accounting (observability) --------------------------
    /** Total stores ever enqueued. */
    uint64_t totalPushes() const { return totalPushes_; }

    /** Total stores squashed by dropYoungerThan. */
    uint64_t totalDropped() const { return totalDropped_; }

    /** Largest occupancy ever reached. */
    unsigned highWater() const { return highWater_; }

    /** Zero the occupancy accounting (post-warmup stat reset). */
    void resetCounters();

    // --- direct-execution undo support ---------------------------------
    /**
     * Wholesale state capture for the burst interpreter's rollback. A
     * burst only push()es and complete()s — both fully described by the
     * entry deque plus the accounting counters — so restoring a
     * burst-entry snapshot undoes every buffer effect at once,
     * including the sequence numbering (a re-executed store gets the
     * same seq). The caller owns the Snapshot and reuses it across
     * bursts so the deque copy recycles its capacity.
     */
    struct Snapshot
    {
        std::deque<Entry> entries;
        uint64_t nextSeq = 1;
        uint64_t totalPushes = 0;
        uint64_t totalDropped = 0;
        unsigned highWater = 0;
    };

    void save(Snapshot &s) const
    {
        s.entries = entries_;
        s.nextSeq = nextSeq_;
        s.totalPushes = totalPushes_;
        s.totalDropped = totalDropped_;
        s.highWater = highWater_;
    }

    void restore(const Snapshot &s)
    {
        entries_ = s.entries;
        nextSeq_ = s.nextSeq;
        totalPushes_ = s.totalPushes;
        totalDropped_ = s.totalDropped;
        highWater_ = s.highWater;
    }

    /**
     * Fast-forward protocol: the buffer is passive — it only mutates
     * through its core's calls, whose timing the core's own quiescence
     * mirror accounts for — so it never blocks an idle-cycle jump.
     */
    bool quiescent() const { return true; }
    Tick nextWakeTick() const { return maxTick; }

  private:
    unsigned capacity_;
    std::deque<Entry> entries_;
    uint64_t nextSeq_ = 1;
    uint64_t totalPushes_ = 0;
    uint64_t totalDropped_ = 0;
    unsigned highWater_ = 0;
};

} // namespace asf

#endif // ASF_CPU_WRITE_BUFFER_HH
