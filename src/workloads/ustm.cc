#include "workloads/ustm.hh"

#include "runtime/layout.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "sim/logging.hh"

namespace asf::workloads
{

using namespace regs;
using runtime::TlrwTable;

const std::vector<TlrwBench> &
ustmBenches()
{
    // name, orecs, readsRw, writesRw, readsRo, chained, hot,
    // computeInTxn, computeBetween
    static const std::vector<TlrwBench> benches = {
        {"Counter", 16, 0, 1, 1, false, 1, 5, 10},
        {"DList", 256, 3, 2, 3, true, 16, 10, 15},
        {"Forest", 512, 4, 2, 4, false, 32, 10, 15},
        {"Hash", 256, 2, 1, 2, false, 16, 10, 15},
        {"List", 256, 4, 1, 4, true, 16, 10, 15},
        {"MCAS", 128, 2, 2, 2, false, 16, 5, 15},
        {"ReadNWrite1", 512, 4, 1, 4, false, 32, 10, 15},
        {"ReadWriteN", 256, 2, 2, 2, false, 32, 15, 15},
        {"Tree", 512, 4, 1, 4, true, 32, 10, 15},
        {"TreeOverwrite", 512, 4, 2, 4, true, 32, 10, 15},
    };
    return benches;
}

const TlrwBench &
ustmBenchByName(const std::string &name)
{
    for (const auto &b : ustmBenches())
        if (b.name == name)
            return b;
    fatal("unknown ustm benchmark '%s'", name.c_str());
}

namespace
{

/** Emit a bounded random backoff: 8..71 cycles of spin. */
void
emitBackoff(Assembler &a)
{
    std::string loop = a.freshLabel("backoff");
    a.rand(t0);
    a.andi(t0, t0, 63);
    a.addi(t0, t0, 8);
    a.li(t1, 0);
    a.bind(loop);
    a.addi(t0, t0, -1);
    a.blt(t1, t0, loop);
}

/**
 * Emit one transaction flavor (read-only or read-write) including its
 * abort cascade. Read indices live in s0..s5, write indices in s6/s7.
 */
void
emitTxn(Assembler &a, const TlrwTable &table, const TlrwBench &bench,
        bool read_only, const std::string &commit_label)
{
    unsigned reads = read_only ? bench.readsRo : bench.readsRw;
    unsigned writes = read_only ? 0 : bench.writesRw;
    int64_t mask = int64_t(bench.numOrecs - 1);
    std::string stem = read_only ? "ro" : "rw";
    std::string retry = a.freshLabel(stem + "_retry");
    std::vector<std::string> aborts;
    for (unsigned k = 0; k <= reads; k++)
        aborts.push_back(a.freshLabel(format("%s_abort%u", stem.c_str(), k)));
    std::vector<std::string> waborts;
    for (unsigned w = 0; w <= writes; w++)
        waborts.push_back(
            a.freshLabel(format("%s_wabort%u", stem.c_str(), w)));
    std::string body_done = a.freshLabel(stem + "_ok");

    a.bind(retry);

    // --- pick read indices ---------------------------------------------
    if (reads > 0) {
        if (bench.chainedReads) {
            a.rand(t0);
            a.andi(t0, t0, mask);
            for (unsigned k = 0; k < reads; k++) {
                a.addi(Reg(s0 + k), t0, int64_t(k));
                a.andi(Reg(s0 + k), Reg(s0 + k), mask);
            }
        } else {
            for (unsigned k = 0; k < reads; k++) {
                a.rand(t0);
                a.andi(Reg(s0 + k), t0, mask);
            }
        }
    }

    // --- read barriers + data loads --------------------------------------
    for (unsigned k = 0; k < reads; k++) {
        runtime::emitOrecAddr(a, table, env0, Reg(s0 + k), a4);
        runtime::emitTlrwReadAcquire(a, a4, aborts[k], t0, t1);
        runtime::emitDataAddr(a, table, env1, Reg(s0 + k), a5);
        a.ld(t0, a5, 0);
    }

    // --- write barriers (ascending index order) + data increments --------
    if (writes > 0) {
        a.rand(t0);
        if (bench.hotOrecs > 0)
            a.andi(s6, t0, int64_t(bench.hotOrecs - 1));
        else
            a.andi(s6, t0, mask);
        if (writes > 1) {
            // s7 = (s6 + 1 + r) & mask with r in [0, numOrecs-2]:
            // always a distinct index.
            a.rand(t0);
            a.andi(t0, t0, mask - 1);
            a.addi(t0, t0, 1);
            a.add(s7, s6, t0);
            a.andi(s7, s7, mask);
            // Sort so every writer locks in ascending order.
            std::string sorted = a.freshLabel("wsorted");
            a.blt(s6, s7, sorted);
            a.mov(t0, s6);
            a.mov(s6, s7);
            a.mov(s7, t0);
            a.bind(sorted);
        }
        for (unsigned w = 0; w < writes; w++) {
            Reg idx = w == 0 ? s6 : s7;
            runtime::emitOrecAddr(a, table, env0, idx, a4);
            runtime::emitTlrwWriteAcquire(a, a4, waborts[w], t0, t1, t2,
                                          t3);
            runtime::emitDataAddr(a, table, env1, idx, a5);
            a.ld(t0, a5, 0);
            a.addi(t0, t0, 1);
            a.st(a5, 0, t0);
        }
    }

    if (bench.computeInTxn > 0)
        a.compute(int64_t(bench.computeInTxn));

    // --- commit: release writes then reads --------------------------------
    for (unsigned w = writes; w-- > 0;) {
        Reg idx = w == 0 ? s6 : s7;
        runtime::emitOrecAddr(a, table, env0, idx, a4);
        runtime::emitTlrwWriteRelease(a, a4, t0);
    }
    for (unsigned k = reads; k-- > 0;) {
        runtime::emitOrecAddr(a, table, env0, Reg(s0 + k), a4);
        runtime::emitTlrwReadRelease(a, a4, t0, t1);
    }
    a.mark(marks::txCommit);
    if (!read_only && writes > 0)
        a.mark(markTxCommitRw);
    a.jmp(body_done);

    // --- write-abort cascade: wabort_w releases writes w-1 .. 0, then
    // every read flag (a bounded write barrier gave up; see tlrw.cc) ----
    for (unsigned w = writes; w-- > 0;) {
        a.bind(waborts[w + 1]);
        Reg idx = w == 0 ? s6 : s7;
        // Barrier w failed, so barriers 0..w-1 succeeded and already
        // applied their increments: roll the increment back while we
        // still hold the write lock, then release it.
        runtime::emitDataAddr(a, table, env1, idx, a5);
        a.ld(t0, a5, 0);
        a.addi(t0, t0, -1);
        a.st(a5, 0, t0);
        runtime::emitOrecAddr(a, table, env0, idx, a4);
        runtime::emitTlrwWriteRelease(a, a4, t0);
        // falls through to waborts[w]
    }
    a.bind(waborts[0]);
    a.jmp(aborts[reads]); // release all read flags and retry

    // --- read-abort cascade: abort_k releases reads k-1 .. 0 --------------
    for (unsigned k = reads; k-- > 0;) {
        a.bind(aborts[k + 1]);
        runtime::emitOrecAddr(a, table, env0, Reg(s0 + k), a4);
        runtime::emitTlrwReadRelease(a, a4, t0, t1);
        // falls through to aborts[k]
    }
    a.bind(aborts[0]);
    a.mark(marks::txAbort);
    emitBackoff(a);
    a.jmp(retry);

    a.bind(body_done);
    a.jmp(commit_label);
}

} // namespace

TlrwSetup
setupTlrwWorkload(System &sys, const TlrwBench &bench, uint64_t txn_limit)
{
    if (bench.readsRw > 6 || bench.readsRo > 6 || bench.writesRw > 2)
        fatal("bench '%s': register budget allows <= 6 reads, <= 2 writes",
              bench.name.c_str());
    if ((bench.numOrecs & (bench.numOrecs - 1)) != 0)
        fatal("bench '%s': numOrecs must be a power of two",
              bench.name.c_str());
    if (bench.hotOrecs && (bench.hotOrecs & (bench.hotOrecs - 1)) != 0)
        fatal("bench '%s': hotOrecs must be a power of two",
              bench.name.c_str());

    unsigned n = sys.numCores();
    GuestLayout layout;
    TlrwSetup setup;
    setup.table = runtime::allocTlrwTable(layout, bench.numOrecs, n);

    Assembler a(format("tlrw_%s", bench.name.c_str()));
    bool limited = txn_limit > 0;

    a.bind("mainloop");
    if (limited) {
        a.li(t0, 0);
        a.beq(s8, t0, "alldone");
    }
    // 50% lookups, rest read-write (paper Section 6).
    a.rand(t0);
    a.andi(t0, t0, 1);
    a.li(t1, 0);
    a.beq(t0, t1, "ro_txn");

    emitTxn(a, setup.table, bench, false, "txn_done");
    a.bind("ro_txn");
    emitTxn(a, setup.table, bench, true, "txn_done");

    a.bind("txn_done");
    if (limited)
        a.addi(s8, s8, -1);
    if (bench.computeBetween > 0)
        a.compute(int64_t(bench.computeBetween));
    a.jmp("mainloop");

    a.bind("alldone");
    a.halt();

    auto prog = std::make_shared<const Program>(a.finish());
    for (unsigned i = 0; i < n; i++) {
        sys.loadProgram(NodeId(i), prog, 0xabcdef01 + i * 7919);
        Core &c = sys.core(NodeId(i));
        c.setReg(regs::tid, i);
        c.setReg(regs::nthreads, n);
        c.setReg(env0, setup.table.orecBase);
        c.setReg(env1, setup.table.dataBase);
        if (limited)
            c.setReg(s8, txn_limit);
    }
    return setup;
}

uint64_t
sumTlrwData(System &sys, const TlrwSetup &setup)
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < setup.table.numOrecs; i++)
        sum += sys.debugReadWord(setup.table.dataAddr(i));
    return sum;
}

} // namespace asf::workloads
