/**
 * @file
 * STM workloads built on the TLRW runtime, standing in for the paper's
 * RSTM microbenchmarks (Counter, DList, Forest, Hash, List, MCAS,
 * ReadNWrite1, ReadWriteN, Tree, TreeOverwrite). Each benchmark is a
 * transaction-mix parameterization over an orec-protected array: 50% of
 * transactions are lookups (read-only), the rest read-write (insert/
 * delete equivalents), per the paper's Section 6.
 *
 * A read-write transaction increments each written data word under its
 * write lock, so `sum(data) == writesPerTxn * committedRwTxns` is a
 * machine-checkable serializability invariant.
 */

#ifndef ASF_WORKLOADS_USTM_HH
#define ASF_WORKLOADS_USTM_HH

#include <string>
#include <vector>

#include "runtime/tlrw.hh"
#include "sys/system.hh"

namespace asf::workloads
{

/** Extra guest counter: committed read-write transactions. */
constexpr int64_t markTxCommitRw = 100;

struct TlrwBench
{
    std::string name;
    unsigned numOrecs;      ///< power of two
    unsigned readsRw;       ///< read barriers in a RW txn (<= 6)
    unsigned writesRw;      ///< write barriers in a RW txn (<= 2)
    unsigned readsRo;       ///< read barriers in a lookup (<= 6)
    bool chainedReads;      ///< reads walk consecutive indices
    unsigned hotOrecs;      ///< 0 = uniform writes; else a hot subset
    unsigned computeInTxn;  ///< cycles of compute inside the txn
    unsigned computeBetween;///< cycles between transactions
};

/** The ten ustm microbenchmark configurations. */
const std::vector<TlrwBench> &ustmBenches();
const TlrwBench &ustmBenchByName(const std::string &name);

struct TlrwSetup
{
    runtime::TlrwTable table;
};

/**
 * Install the TLRW worker on every core. txn_limit == 0 builds an
 * infinite loop (throughput mode: run a fixed cycle budget and read the
 * txCommit counter); otherwise each thread halts after that many
 * committed transactions (execution-time mode, used by STAMP).
 */
TlrwSetup setupTlrwWorkload(System &sys, const TlrwBench &bench,
                            uint64_t txn_limit);

/** Host-side sum of all data words (for the serializability check). */
uint64_t sumTlrwData(System &sys, const TlrwSetup &setup);

} // namespace asf::workloads

#endif // ASF_WORKLOADS_USTM_HH
