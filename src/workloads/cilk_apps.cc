#include "workloads/cilk_apps.hh"

#include "runtime/layout.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "sim/logging.hh"

namespace asf::workloads
{

using namespace regs;
using runtime::TheDeque;

const std::vector<CilkApp> &
cilkApps()
{
    // name, grain, stores, loads, depth, branching, initial, dataLines
    static const std::vector<CilkApp> apps = {
        {"bucket", 160, 4, 5, 2, 2, 12, 2048},
        {"cholesky", 280, 2, 6, 3, 2, 4, 4096},
        {"cilksort", 160, 1, 5, 4, 2, 2, 2048},
        {"fft", 280, 2, 6, 3, 2, 4, 4096},
        {"fib", 90, 1, 1, 6, 2, 1, 256},
        {"heat", 200, 5, 6, 2, 2, 16, 4096},
        {"knapsack", 80, 1, 2, 5, 2, 2, 512},
        {"lu", 260, 1, 6, 3, 2, 4, 4096},
        {"matmul", 200, 1, 8, 3, 2, 4, 4096},
        {"plu", 220, 3, 5, 3, 2, 4, 4096},
    };
    return apps;
}

const CilkApp &
cilkAppByName(const std::string &name)
{
    for (const auto &app : cilkApps())
        if (app.name == name)
            return app;
    fatal("unknown Cilk app '%s'", name.c_str());
}

uint64_t
cilkSubtreeSize(unsigned depth, unsigned branching)
{
    // size(0) = 1; size(d) = 1 + branching * size(d-1)
    uint64_t size = 1;
    for (unsigned d = 0; d < depth; d++)
        size = 1 + uint64_t(branching) * size;
    return size;
}

namespace
{

/** Emit the task body: data traffic, compute, spawning, accounting. */
void
emitTaskBody(Assembler &a, const CilkApp &app, const TheDeque &deque_geom,
             unsigned region_bytes)
{
    // A task reads its inputs (cold-ish lines, blocking), computes, and
    // writes its results at the end. The result stores are still in the
    // write buffer when the next take() fences: a conventional fence
    // pays their full drain, a weak fence hides it under the next task.
    unsigned slice =
        app.loadsPerTask ? app.taskGrain / app.loadsPerTask : 0;
    for (unsigned k = 0; k < app.loadsPerTask; k++) {
        a.addi(t1, s3, int64_t(region_bytes / 2));
        a.andi(t1, t1, int64_t(region_bytes - 1));
        a.add(t1, t1, s2);
        a.ld(t2, t1, 0);
        a.addi(s3, s3, lineBytes);
        a.andi(s3, s3, int64_t(region_bytes - 1));
        if (slice > 0)
            a.compute(int64_t(slice));
    }
    if (app.taskGrain > app.loadsPerTask * slice)
        a.compute(int64_t(app.taskGrain - app.loadsPerTask * slice));
    for (unsigned k = 0; k < app.storesPerTask; k++) {
        a.add(t0, s2, s3);
        a.st(t0, 0, s3);
        a.addi(s3, s3, lineBytes);
        a.andi(s3, s3, int64_t(region_bytes - 1));
    }

    // Spawn children while the task still has depth.
    std::string nospawn = a.freshLabel("nospawn");
    a.li(t0, 0);
    a.beq(a0, t0, nospawn);
    a.addi(a1, a0, -1);
    for (unsigned c = 0; c < app.branching; c++)
        runtime::emitPush(a, deque_geom, env0, a1, t0, t1);
    a.bind(nospawn);

    // Count the task locally; the count is published (s10 -> memory)
    // only when the deque runs dry, keeping the hot take() path free of
    // shared stores.
    a.addi(s10, s10, 1);
    a.mark(marks::taskDone);
}

} // namespace

CilkSetup
setupCilkApp(System &sys, const CilkApp &app)
{
    unsigned n = sys.numCores();
    GuestLayout layout;
    CilkSetup setup;

    // Deques, contiguous so thieves can index them by victim id. A
    // capacity of 32 keeps a whole deque (header + slots = 352 bytes)
    // inside one home granule - one directory module per deque, as the
    // WeeFence confinement rule wants. Depth-first execution keeps the
    // queues shallow.
    unsigned capacity = 32;
    if (app.initialTasks + app.spawnDepth * app.branching + 4 > capacity)
        fatal("cilk app '%s': deque capacity too small", app.name.c_str());
    for (unsigned i = 0; i < n; i++)
        setup.deques.push_back(runtime::allocTheDeque(layout, capacity));
    unsigned deque_stride =
        unsigned(setup.deques.size() > 1
                     ? setup.deques[1].base - setup.deques[0].base
                     : 0);

    // Per-worker done counters (padded) and data regions.
    setup.doneBase = layout.paddedArray(n);
    unsigned region_bytes = app.dataLines * lineBytes;
    if ((region_bytes & (region_bytes - 1)) != 0)
        fatal("cilk app '%s': dataLines must be a power of two",
              app.name.c_str());
    Addr data_base = layout.block(n * region_bytes / wordBytes);

    // Seed the deques: the first `seedWorkers` (default: all) start with
    // initialTasks roots each; the rest begin stealing immediately.
    unsigned seeded = app.seedWorkers == 0
                          ? n
                          : std::min(app.seedWorkers, n);
    for (unsigned i = 0; i < n; i++) {
        std::vector<uint64_t> roots(
            i < seeded ? app.initialTasks : 0, uint64_t(app.spawnDepth));
        runtime::seedDeque(sys.memory(), setup.deques[i], roots);
        sys.memory().writeWord(GuestLayout::paddedElem(setup.doneBase, i),
                               0);
    }
    setup.expectedTasks = uint64_t(seeded) * app.initialTasks *
                          cilkSubtreeSize(app.spawnDepth, app.branching);

    // --- the worker program (shared; per-core registers differ) -------
    Assembler a(format("cilk_%s", app.name.c_str()));
    const TheDeque &geom = setup.deques[0];

    a.bind("loop");
    runtime::emitTake(a, geom, env0, a0, t0, t1, t2, t3);
    a.li(s9, int64_t(runtime::dequeEmpty));
    a.bne(a0, s9, "exec");

    // Steal phase: round-robin victim; when the pointer lands on
    // ourselves, use the beat to check termination instead. The own
    // deque stays empty until we execute a spawning task, so idle
    // workers loop here rather than re-running take() (and its fence).
    // Entering it, publish the local done count for the termination
    // detector.
    a.bind("stealphase");
    a.st(s1, 0, s10);
    a.addi(s4, s4, 1);
    a.blt(s4, nthreads, "victim_ok");
    a.li(s4, 0);
    a.bind("victim_ok");
    a.beq(s4, regs::tid, "termcheck");
    a.muli(t0, s4, int64_t(deque_stride));
    a.add(a2, t0, env1);
    runtime::emitSteal(a, geom, a2, a0, t0, t1, t2, t3);
    a.bne(a0, s9, "exec");
    a.jmp("termcheck");

    a.bind("exec");
    emitTaskBody(a, app, geom, region_bytes);
    a.jmp("loop");

    a.bind("termcheck");
    a.li(t0, 0); // sum
    a.li(t1, 0); // j
    a.bind("sumloop");
    a.muli(t2, t1, lineBytes);
    a.add(t2, t2, s0);
    a.ld(t3, t2, 0);
    a.add(t0, t0, t3);
    a.addi(t1, t1, 1);
    a.blt(t1, nthreads, "sumloop");
    a.bge(t0, s5, "finish");
    a.jmp("stealphase");

    a.bind("finish");
    a.halt();

    auto prog = std::make_shared<const Program>(a.finish());

    for (unsigned i = 0; i < n; i++) {
        sys.loadProgram(NodeId(i), prog, 0x1234567 + i);
        Core &c = sys.core(NodeId(i));
        c.setReg(regs::tid, i);
        c.setReg(regs::nthreads, n);
        c.setReg(env0, setup.deques[i].base);
        c.setReg(env1, setup.deques[0].base);
        c.setReg(s0, setup.doneBase);
        c.setReg(s1, GuestLayout::paddedElem(setup.doneBase, i));
        c.setReg(s2, data_base + Addr(i) * region_bytes);
        c.setReg(s3, 0);
        c.setReg(s4, i); // victim pointer starts at self
        c.setReg(s5, setup.expectedTasks);
        // Each worker's data region is genuinely private (only it ever
        // accesses it); declare that for WeeFence's PAF.
        Addr lo = data_base + Addr(i) * region_bytes;
        Addr hi = lo + region_bytes;
        c.setPrivateChecker(
            [lo, hi](Addr a) { return a >= lo && a < hi; });
    }
    return setup;
}

} // namespace asf::workloads
