#include "workloads/stamp.hh"

#include "sim/logging.hh"

namespace asf::workloads
{

const std::vector<StampApp> &
stampApps()
{
    // bench: name, orecs, readsRw, writesRw, readsRo, chained, hot,
    //        computeInTxn, computeBetween
    static const std::vector<StampApp> apps = {
        {{"genome", 2048, 5, 1, 5, true, 64, 20, 150}, 150},
        {{"intruder", 512, 3, 2, 3, false, 64, 10, 60}, 260},
        {{"kmeans", 256, 2, 1, 2, false, 32, 15, 120}, 220},
        {{"labyrinth", 4096, 4, 2, 4, false, 0, 60, 3000}, 40},
        {{"ssca2", 4096, 2, 1, 2, false, 0, 5, 200}, 180},
        {{"vacation", 2048, 6, 2, 6, false, 128, 25, 100}, 180},
    };
    return apps;
}

const StampApp &
stampAppByName(const std::string &name)
{
    for (const auto &app : stampApps())
        if (app.bench.name == name)
            return app;
    fatal("unknown STAMP app '%s'", name.c_str());
}

TlrwSetup
setupStampApp(System &sys, const StampApp &app)
{
    return setupTlrwWorkload(sys, app.bench, app.txnsPerThread);
}

} // namespace asf::workloads
