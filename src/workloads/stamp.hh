/**
 * @file
 * STAMP-like workloads (genome, intruder, kmeans, labyrinth, ssca2,
 * vacation) modeled as transaction mixes on the TLRW engine, with
 * per-application read/write shapes, contention, and non-transactional
 * compute fractions chosen from STAMP's published characterization.
 * Run in execution-time mode: each thread commits a fixed number of
 * transactions and halts.
 */

#ifndef ASF_WORKLOADS_STAMP_HH
#define ASF_WORKLOADS_STAMP_HH

#include "workloads/ustm.hh"

namespace asf::workloads
{

struct StampApp
{
    TlrwBench bench;       ///< transaction engine parameters
    uint64_t txnsPerThread;///< transactions each thread commits
};

/** The six STAMP application configurations. */
const std::vector<StampApp> &stampApps();
const StampApp &stampAppByName(const std::string &name);

/** Install a STAMP app on every core of `sys`. */
TlrwSetup setupStampApp(System &sys, const StampApp &app);

} // namespace asf::workloads

#endif // ASF_WORKLOADS_STAMP_HH
