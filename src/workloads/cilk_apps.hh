/**
 * @file
 * Work-stealing workloads standing in for the paper's ten Cilk
 * applications (bucket, cholesky, cilksort, fft, fib, heat, knapsack,
 * lu, matmul, plu). Each worker owns a THE deque; take() uses the
 * Critical fence and steal() the Noncritical one (paper Section 4.1).
 * Task bodies do configurable amounts of compute and cache-missing
 * loads/stores (the pending stores are what make take()'s fence
 * expensive), and may spawn children, so a small fraction of tasks gets
 * stolen - the paper reports < 0.5%.
 *
 * The ten named configurations differ in task granularity, memory
 * footprint, spawn shape, and initial-task seeding; DESIGN.md documents
 * this substitution.
 */

#ifndef ASF_WORKLOADS_CILK_APPS_HH
#define ASF_WORKLOADS_CILK_APPS_HH

#include <string>
#include <vector>

#include "runtime/the_deque.hh"
#include "sys/system.hh"

namespace asf::workloads
{

struct CilkApp
{
    std::string name;
    unsigned taskGrain;      ///< compute cycles per task
    unsigned storesPerTask;  ///< line-striding stores per task
    unsigned loadsPerTask;   ///< line-striding loads per task
    unsigned spawnDepth;     ///< task payload: remaining spawn depth
    unsigned branching;      ///< children pushed per non-leaf task
    unsigned initialTasks;   ///< seeded per seeded worker deque
    unsigned dataLines;      ///< per-worker data region, in lines
    /** Seed only the first N deques (0 = all); 1 models a single root
     *  task and forces a steal-driven ramp-up. */
    unsigned seedWorkers = 0;
};

/** The ten named application configurations. */
const std::vector<CilkApp> &cilkApps();

/** Lookup by name; fatal() if unknown. */
const CilkApp &cilkAppByName(const std::string &name);

/** Everything the host needs to validate a run. */
struct CilkSetup
{
    uint64_t expectedTasks = 0;
    std::vector<runtime::TheDeque> deques;
    Addr doneBase = 0; ///< per-worker done counters, one line each
};

/**
 * Build programs for every core of `sys`, seed the deques and data
 * region, and return the expected task count. Workers run until all
 * tasks in the system have executed, then halt.
 */
CilkSetup setupCilkApp(System &sys, const CilkApp &app);

/** Tasks in a spawn subtree of the given depth. */
uint64_t cilkSubtreeSize(unsigned depth, unsigned branching);

} // namespace asf::workloads

#endif // ASF_WORKLOADS_CILK_APPS_HH
