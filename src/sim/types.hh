/**
 * @file
 * Basic scalar types shared across the simulator.
 */

#ifndef ASF_SIM_TYPES_HH
#define ASF_SIM_TYPES_HH

#include <cstdint>

namespace asf
{

/** Simulated time, in core clock cycles. */
using Tick = uint64_t;

/** A tick value that no event ever reaches. */
constexpr Tick maxTick = ~Tick(0);

/** Byte address in the simulated physical address space. */
using Addr = uint64_t;

/** Index of a node (core + L1 + L2 bank + directory slice) in the mesh. */
using NodeId = int;

/** Marker for "no node". */
constexpr NodeId invalidNode = -1;

} // namespace asf

#endif // ASF_SIM_TYPES_HH
