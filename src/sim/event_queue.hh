/**
 * @file
 * Discrete-event queue. The system's main loop is a synchronous per-cycle
 * tick over all components, but latency-shaped completions (memory round
 * trips, NoC deliveries, timeouts) are scheduled here and drained at the
 * top of each cycle. Events at the same tick fire in scheduling order,
 * which keeps the simulation deterministic.
 *
 * Event callbacks use a small-buffer-optimized type erasure instead of
 * std::function: every capture that fits the inline buffer (sized for the
 * largest hot-path lambda, the NoC delivery closure carrying a Message by
 * value) is stored in the queue entry itself, so steady-state scheduling
 * performs no heap allocation.
 */

#ifndef ASF_SIM_EVENT_QUEUE_HH
#define ASF_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace asf
{

/**
 * Move-only callable wrapper with inline storage. Callables whose capture
 * fits `inlineSize` bytes (and is nothrow-move-constructible, so heap
 * rebalancing can move entries) live inside the wrapper; larger ones fall
 * back to a single heap allocation.
 */
class EventCallback
{
  public:
    /// Sized to hold the mesh delivery lambda (this + dst + Message).
    static constexpr size_t inlineSize = 128;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&f)
    {
        init(std::forward<F>(f));
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    void operator()() { invoke_(buf_); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    enum class Op { MoveTo, Destroy };

    template <typename F>
    void
    init(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            manage_ = [](Op op, void *src, void *dst) {
                Fn *s = static_cast<Fn *>(src);
                if (op == Op::MoveTo)
                    ::new (dst) Fn(std::move(*s));
                s->~Fn();
            };
        } else {
            // Oversized capture: one heap allocation, pointer inline.
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            manage_ = [](Op op, void *src, void *dst) {
                Fn **s = static_cast<Fn **>(src);
                if (op == Op::MoveTo)
                    ::new (dst) Fn *(*s); // steal the pointer
                else
                    delete *s;
            };
        }
    }

    void
    moveFrom(EventCallback &other) noexcept
    {
        if (other.invoke_) {
            other.manage_(Op::MoveTo, other.buf_, buf_);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (invoke_) {
            manage_(Op::Destroy, buf_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineSize];
    void (*invoke_)(void *) = nullptr;
    void (*manage_)(Op, void *, void *) = nullptr;
};

class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Schedule cb to run at absolute tick `when` (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule cb to run `delay` ticks from now. */
    void scheduleIn(Tick delay, Callback cb);

    /** Run every event scheduled at tick <= `upto`, advancing now. */
    void runUntil(Tick upto);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Advance the clock without running events (main-loop use). */
    void setNow(Tick t);

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event, or maxTick if none. */
    Tick nextEventTick() const;

    /** Total callbacks executed since construction (host-side metric). */
    uint64_t executedEvents() const { return executed_; }

    /** Drop all pending events and reset the clock. */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Entry> heap_; ///< binary min-heap via std::push/pop_heap
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace asf

#endif // ASF_SIM_EVENT_QUEUE_HH
