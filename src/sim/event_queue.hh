/**
 * @file
 * Discrete-event queue. The system's main loop is a synchronous per-cycle
 * tick over all components, but latency-shaped completions (memory round
 * trips, NoC deliveries, timeouts) are scheduled here and drained at the
 * top of each cycle. Events at the same tick fire in scheduling order,
 * which keeps the simulation deterministic.
 */

#ifndef ASF_SIM_EVENT_QUEUE_HH
#define ASF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace asf
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at absolute tick `when` (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule cb to run `delay` ticks from now. */
    void scheduleIn(Tick delay, Callback cb);

    /** Run every event scheduled at tick <= `upto`, advancing now. */
    void runUntil(Tick upto);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Advance the clock without running events (main-loop use). */
    void setNow(Tick t);

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event, or maxTick if none. */
    Tick nextEventTick() const;

    /** Drop all pending events and reset the clock. */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace asf

#endif // ASF_SIM_EVENT_QUEUE_HH
