#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace asf
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

Trace &
Trace::get()
{
    static Trace instance;
    return instance;
}

namespace
{
void
flushGlobalTrace()
{
    Trace::get().flush();
}
} // namespace

void
Trace::open(const std::string &path)
{
    if (path.empty())
        fatal("trace output path is empty");
    bool was_enabled = enabled_;
    path_ = path;
    enabled_ = true;
    if (!was_enabled)
        std::atexit(flushGlobalTrace);
}

void
Trace::beginRun(const std::string &label)
{
    if (!enabled_)
        return;
    pid_++;
    Event e;
    e.ph = 'M';
    e.ts = 0;
    e.dur = 0;
    e.pid = pid_;
    e.tid = 0;
    e.cat = "__metadata";
    e.name = "process_name";
    e.args = format("{\"name\":\"%s\"}", jsonEscape(label).c_str());
    events_.push_back(std::move(e));
}

void
Trace::threadName(uint32_t tid, const std::string &name)
{
    if (!enabled_)
        return;
    Event e;
    e.ph = 'M';
    e.ts = 0;
    e.dur = 0;
    e.pid = pid_;
    e.tid = tid;
    e.cat = "__metadata";
    e.name = "thread_name";
    e.args = format("{\"name\":\"%s\"}", jsonEscape(name).c_str());
    events_.push_back(std::move(e));
}

void
Trace::complete(Tick ts, Tick dur, uint32_t tid, const char *cat,
                std::string name, std::string args_json)
{
    events_.push_back(Event{'X', ts, dur, pid_, tid, cat,
                            std::move(name), std::move(args_json)});
}

void
Trace::instant(Tick ts, uint32_t tid, const char *cat, std::string name,
               std::string args_json)
{
    events_.push_back(Event{'i', ts, 0, pid_, tid, cat, std::move(name),
                            std::move(args_json)});
}

void
Trace::counter(Tick ts, uint32_t tid, std::string name,
               std::string args_json)
{
    events_.push_back(Event{'C', ts, 0, pid_, tid, "counter",
                            std::move(name), std::move(args_json)});
}

void
Trace::flush()
{
    if (!enabled_ || path_.empty())
        return;
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        warn("cannot write trace file '%s'", path_.c_str());
        return;
    }
    std::fprintf(f, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (size_t i = 0; i < events_.size(); i++) {
        const Event &e = events_[i];
        std::fprintf(f,
                     "{\"ph\":\"%c\",\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
                     "\"cat\":\"%s\",\"name\":\"%s\"",
                     e.ph, (unsigned long long)e.ts, e.pid, e.tid, e.cat,
                     jsonEscape(e.name).c_str());
        if (e.ph == 'X')
            std::fprintf(f, ",\"dur\":%llu", (unsigned long long)e.dur);
        if (e.ph == 'i')
            std::fprintf(f, ",\"s\":\"t\""); // thread-scoped instant
        if (!e.args.empty())
            std::fprintf(f, ",\"args\":%s", e.args.c_str());
        std::fprintf(f, "}%s\n", i + 1 < events_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
}

void
Trace::resetForTest()
{
    enabled_ = false;
    path_.clear();
    pid_ = 0;
    events_.clear();
}

} // namespace asf
