#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace asf
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)now_);
    heap_.push_back(Entry{when, nextSeq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

void
EventQueue::runUntil(Tick upto)
{
    while (!heap_.empty() && heap_.front().when <= upto) {
        // Move the top entry out before running it: the callback may
        // schedule new events, which would reallocate the heap vector.
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry e = std::move(heap_.back());
        heap_.pop_back();
        now_ = e.when;
        executed_++;
        e.cb();
    }
    if (upto > now_)
        now_ = upto;
}

void
EventQueue::setNow(Tick t)
{
    if (t < now_)
        panic("clock moved backwards");
    now_ = t;
}

Tick
EventQueue::nextEventTick() const
{
    return heap_.empty() ? maxTick : heap_.front().when;
}

void
EventQueue::clear()
{
    heap_.clear();
    now_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
}

} // namespace asf
