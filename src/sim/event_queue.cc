#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace asf
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)now_);
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

void
EventQueue::runUntil(Tick upto)
{
    while (!heap_.empty() && heap_.top().when <= upto) {
        // Copy out before pop: the callback may schedule new events.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.cb();
    }
    if (upto > now_)
        now_ = upto;
}

void
EventQueue::setNow(Tick t)
{
    if (t < now_)
        panic("clock moved backwards");
    now_ = t;
}

Tick
EventQueue::nextEventTick() const
{
    return heap_.empty() ? maxTick : heap_.top().when;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
    now_ = 0;
    nextSeq_ = 0;
}

} // namespace asf
