#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace asf
{

namespace
{
bool verboseOutput = true;
uint64_t tracedLine = ~uint64_t(0);
bool traceInitialized = false;
}

void
setVerbose(bool verbose)
{
    verboseOutput = verbose;
}

void
setTraceLine(uint64_t line_addr)
{
    tracedLine = line_addr;
    traceInitialized = true;
}

bool
traceEnabledFor(uint64_t line_addr)
{
    if (!traceInitialized) {
        traceInitialized = true;
        if (const char *env = std::getenv("ASF_TRACE_LINE"))
            tracedLine = std::strtoull(env, nullptr, 0);
    }
    return line_addr == tracedLine;
}

void
traceEvent(uint64_t now, const char *who, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "trace @%llu %s: %s\n", (unsigned long long)now,
                 who, msg.c_str());
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(len + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), len);
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!verboseOutput)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace asf
