#include "sim/stats.hh"

#include "sim/logging.hh"

namespace asf
{

void
StatAverage::sample(double v)
{
    count_++;
    sum_ += v;
}

void
StatAverage::reset()
{
    count_ = 0;
    sum_ = 0.0;
}

double
StatAverage::mean() const
{
    return count_ ? sum_ / count_ : 0.0;
}

StatHistogram::StatHistogram(unsigned bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), bucketWidth_(bucket_width)
{
    if (bucket_count == 0 || bucket_width <= 0.0)
        panic("StatHistogram with degenerate geometry");
}

void
StatHistogram::sample(double v)
{
    count_++;
    sum_ += v;
    if (v > max_)
        max_ = v;
    auto idx = static_cast<size_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        overflow_++;
    else
        buckets_[idx]++;
}

void
StatHistogram::sampleN(double v, uint64_t n)
{
    if (!n)
        return;
    count_ += n;
    sum_ += v * double(n);
    if (v > max_)
        max_ = v;
    auto idx = static_cast<size_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        overflow_ += n;
    else
        buckets_[idx] += n;
}

void
StatHistogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
}

double
StatHistogram::mean() const
{
    return count_ ? sum_ / count_ : 0.0;
}

uint64_t
StatHistogram::bucket(unsigned i) const
{
    if (i >= buckets_.size())
        panic("StatHistogram bucket index %u out of range", i);
    return buckets_[i];
}

double
StatHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Rank of the requested sample (1-based, rounded up).
    uint64_t rank = uint64_t(p * double(count_));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); i++) {
        if (seen + buckets_[i] >= rank) {
            // Interpolate within the bucket.
            double frac =
                double(rank - seen) / double(buckets_[i]);
            return (double(i) + frac) * bucketWidth_;
        }
        seen += buckets_[i];
    }
    // The rank falls into the overflow region: report the observed max.
    return max_;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

StatScalar &
StatGroup::scalar(const std::string &name)
{
    return scalars_[name];
}

StatAverage &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

StatHistogram &
StatGroup::histogram(const std::string &name, unsigned bucket_count,
                     double bucket_width)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name, StatHistogram(bucket_count, bucket_width))
                 .first;
    return it->second;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0 : it->second.value();
}

const StatScalar *
StatGroup::find(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? nullptr : &it->second;
}

double
StatGroup::getMean(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? 0.0 : it->second.mean();
}

void
StatGroup::resetAll()
{
    for (auto &kv : scalars_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

std::vector<std::pair<std::string, uint64_t>>
StatGroup::dumpScalars() const
{
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(scalars_.size());
    for (const auto &kv : scalars_)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

} // namespace asf
