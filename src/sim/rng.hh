/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic choice in
 * the simulator and in workload generators draws from an explicitly seeded
 * Rng so that runs are exactly reproducible.
 */

#ifndef ASF_SIM_RNG_HH
#define ASF_SIM_RNG_HH

#include <cstdint>

namespace asf
{

/**
 * xorshift64* generator. Small, fast, and good enough for workload
 * shuffling and backoff jitter; not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed the generator. A zero seed is remapped to a constant. */
    void seed(uint64_t s);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound). bound must be > 0. */
    uint64_t range(uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    uint64_t between(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

  private:
    uint64_t state_;
};

/**
 * The single xorshift step used both by Rng and by the guest-visible RAND
 * instruction, so guest programs and host generators share one definition.
 */
uint64_t xorshiftStep(uint64_t x);

} // namespace asf

#endif // ASF_SIM_RNG_HH
