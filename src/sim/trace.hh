/**
 * @file
 * Event tracing in Chrome trace_event JSON format, loadable in
 * chrome://tracing and Perfetto. Components record timestamped spans
 * (fence stall begin/end, write-buffer drains, W+ squashes, directory
 * Nacks/bounces, NoC link occupancy) through the ASF_TRACE macro, which
 * compiles to a single predictable branch when tracing is disabled --
 * the arguments are not even evaluated. Simulated cycles map 1:1 to
 * trace microseconds.
 *
 * The sink is process-global (like the logging package): one trace file
 * per process, shared by every System instance. Multi-run binaries call
 * beginRun() so each experiment appears as its own process row in the
 * viewer.
 */

#ifndef ASF_SIM_TRACE_HH
#define ASF_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace asf
{

class Trace
{
  public:
    /** The process-global sink. */
    static Trace &get();

    /** Start recording; the file is written on flush()/exit. */
    void open(const std::string &path);

    bool enabled() const { return enabled_; }

    /**
     * Begin a new logical run (one experiment): subsequent events carry
     * a fresh pid and the run label becomes the process name.
     */
    void beginRun(const std::string &label);

    /** Name a thread row (e.g. "core3", "dir1", "link 2E"). */
    void threadName(uint32_t tid, const std::string &name);

    /** A span [ts, ts+dur) on thread `tid` ("X" complete event). */
    void complete(Tick ts, Tick dur, uint32_t tid, const char *cat,
                  std::string name, std::string args_json = "");

    /** A zero-duration marker ("i" instant event). */
    void instant(Tick ts, uint32_t tid, const char *cat,
                 std::string name, std::string args_json = "");

    /** A counter track sample ("C" event). args_json holds the values,
     *  e.g. {"occupancy":12}. */
    void counter(Tick ts, uint32_t tid, std::string name,
                 std::string args_json);

    /** Write the JSON file. Safe to call more than once (rewrites). */
    void flush();

    size_t numEvents() const { return events_.size(); }

    /** Drop state and stop recording (tests). */
    void resetForTest();

  private:
    Trace() = default;

    struct Event
    {
        char ph;
        Tick ts;
        Tick dur;
        uint32_t pid;
        uint32_t tid;
        const char *cat;
        std::string name;
        std::string args; ///< pre-rendered JSON object ("" = none)
    };

    bool enabled_ = false;
    std::string path_;
    uint32_t pid_ = 0;
    std::vector<Event> events_;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Record through the sink iff tracing is on. `call` is a member call on
 * the sink, e.g. ASF_TRACE(instant(now, id, "dir", "nack")). Costs one
 * branch on a bool when disabled; arguments are not evaluated.
 */
#define ASF_TRACE(call)                                                   \
    do {                                                                  \
        if (::asf::Trace::get().enabled())                                \
            ::asf::Trace::get().call;                                     \
    } while (0)

} // namespace asf

#endif // ASF_SIM_TRACE_HH
