#include "sim/interval_stats.hh"

#include <cassert>

namespace asf
{

IntervalStats::IntervalStats(Tick interval, size_t capacity)
    : interval_(interval ? interval : 1),
      capacity_(capacity ? capacity : 1), nextAt_(interval_)
{
    ring_.reserve(capacity_);
}

IntervalSample
IntervalStats::makeSample(Tick now, const IntervalCumulative &cur) const
{
    IntervalSample s;
    s.start = prevAt_;
    s.end = now;
    s.busy = cur.busy - prev_.busy;
    s.idle = cur.idle - prev_.idle;
    for (unsigned b = 0; b < numStallBuckets; b++)
        s.stall[b] = cur.stall[b] - prev_.stall[b];
    s.instrRetired = cur.instrRetired - prev_.instrRetired;
    s.fencesIssued = cur.fencesIssued - prev_.fencesIssued;
    s.bounces = cur.bounces - prev_.bounces;
    s.nacks = cur.nacks - prev_.nacks;
    s.grtDeposits = cur.grtDeposits - prev_.grtDeposits;
    s.grtClears = cur.grtClears - prev_.grtClears;
    for (size_t i = 0; i < cur.linkBusy.size(); i++) {
        uint64_t before =
            i < prev_.linkBusy.size() ? prev_.linkBusy[i] : 0;
        uint64_t d = cur.linkBusy[i] - before;
        s.flits += d;
        if (d)
            s.links.emplace_back(uint32_t(i), d);
    }
    return s;
}

bool
IntervalStats::tailSample(Tick now, const IntervalCumulative &cur,
                          IntervalSample &out) const
{
    if (now <= prevAt_)
        return false;
    out = makeSample(now, cur);
    return true;
}

void
IntervalStats::sample(Tick now, const IntervalCumulative &cur)
{
    assert(now > prevAt_ && "interval samples must move forward");
    IntervalSample s = makeSample(now, cur);

    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(s));
    } else {
        ring_[head_] = std::move(s);
        head_ = (head_ + 1) % capacity_;
        dropped_++;
    }

    prev_ = cur;
    prevAt_ = now;
    // The next boundary is the first multiple of interval_ after now,
    // so a jump across k boundaries produces one merged sample instead
    // of k catch-up samples.
    nextAt_ = now + interval_ - now % interval_;
}

void
IntervalStats::reset(Tick now, const IntervalCumulative &cur)
{
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
    prev_ = cur;
    prevAt_ = now;
    nextAt_ = now + interval_ - now % interval_;
}

const IntervalSample &
IntervalStats::at(size_t i) const
{
    assert(i < ring_.size());
    return ring_[(head_ + i) % ring_.size()];
}

} // namespace asf
