/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar
 * counters, averages, and histograms registered in groups, dumped as
 * name/value pairs or serialized to the machine-readable JSON report
 * (see harness/report.hh and System::dumpStatsJson).
 */

#ifndef ASF_SIM_STATS_HH
#define ASF_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asf
{

/** A named scalar statistic (a 64-bit counter). */
class StatScalar
{
  public:
    StatScalar() = default;

    void inc(uint64_t n = 1) { value_ += n; }
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Running average: accumulates samples, reports sum/count/mean. */
class StatAverage
{
  public:
    void sample(double v);
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Mean of the samples; 0.0 if nothing was ever sampled. */
    double mean() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** Fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class StatHistogram
{
  public:
    StatHistogram(unsigned bucket_count = 16, double bucket_width = 1.0);

    void sample(double v);

    /**
     * Record `n` identical samples of value `v`. Produces exactly the
     * same state as calling sample(v) n times (the sum update uses one
     * v*n product, which is exact for the small-integer sample values
     * the simulator records) — used by the fast-forward path to replay
     * skipped quiescent cycles.
     */
    void sampleN(double v, uint64_t n);

    void reset();

    uint64_t count() const { return count_; }

    /** Mean of the samples; 0.0 if nothing was ever sampled. */
    double mean() const;
    double max() const { return max_; }
    uint64_t bucket(unsigned i) const;
    uint64_t overflow() const { return overflow_; }
    unsigned numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return bucketWidth_; }

    /**
     * Value at quantile p in [0, 1], linearly interpolated from the
     * bucket geometry (overflow samples report the observed max).
     * Returns 0.0 for an empty histogram.
     */
    double percentile(double p) const;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
    double bucketWidth_;
};

class StatGroup;

/**
 * Hot-path handle to a named scalar that binds lazily: the underlying
 * stat is created in the group on the first increment, exactly like the
 * string-lookup call sites it replaces (so the report keeps the same
 * shape — untouched counters stay unregistered), while steady-state
 * increments cost one null check instead of a string map lookup.
 */
class LazyStatScalar
{
  public:
    LazyStatScalar(StatGroup &group, const char *name)
        : group_(group), name_(name)
    {
    }

    StatScalar &get();

    void inc(uint64_t n = 1) { get().inc(n); }

  private:
    StatGroup &group_;
    const char *name_;
    StatScalar *stat_ = nullptr;
};

/**
 * A group of named statistics. Components own a StatGroup and register
 * their counters in it; the harness walks groups to produce reports.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    StatScalar &scalar(const std::string &name);
    StatAverage &average(const std::string &name);

    /** Named histogram; geometry is fixed on first use. */
    StatHistogram &histogram(const std::string &name,
                             unsigned bucket_count = 16,
                             double bucket_width = 1.0);

    /** Value of a scalar (0 if never touched). */
    uint64_t get(const std::string &name) const;

    /** The scalar itself, or nullptr if never touched. Lets read-side
     *  hot paths cache the handle (map nodes are stable) without
     *  registering counters the component never incremented. */
    const StatScalar *find(const std::string &name) const;

    /** Mean of an average (0 if never sampled). */
    double getMean(const std::string &name) const;

    void resetAll();

    const std::string &name() const { return name_; }

    /** All scalar name/value pairs, sorted by name. */
    std::vector<std::pair<std::string, uint64_t>> dumpScalars() const;

    // Sorted iteration for report serializers.
    const std::map<std::string, StatScalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, StatAverage> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, StatHistogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::string name_;
    std::map<std::string, StatScalar> scalars_;
    std::map<std::string, StatAverage> averages_;
    std::map<std::string, StatHistogram> histograms_;
};

inline StatScalar &
LazyStatScalar::get()
{
    if (!stat_)
        stat_ = &group_.scalar(name_);
    return *stat_;
}

} // namespace asf

#endif // ASF_SIM_STATS_HH
