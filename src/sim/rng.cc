#include "sim/rng.hh"

#include "sim/logging.hh"

namespace asf
{

uint64_t
xorshiftStep(uint64_t x)
{
    if (x == 0)
        x = 0x9e3779b97f4a7c15ULL;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x;
}

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t s)
{
    state_ = s ? s : 0x9e3779b97f4a7c15ULL;
}

uint64_t
Rng::next()
{
    state_ = xorshiftStep(state_);
    return state_ * 0x2545f4914f6cdd1dULL;
}

uint64_t
Rng::range(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::range with zero bound");
    // Lemire's multiply-shift with rejection: `next() % bound` is biased
    // towards low values whenever bound does not divide 2^64. Map the
    // draw to [0, bound) through a 128-bit multiply and redraw the (at
    // most bound out of 2^64) values that land in the short interval.
    uint64_t x = next();
    __uint128_t m = __uint128_t(x) * bound;
    uint64_t low = uint64_t(m);
    if (low < bound) {
        uint64_t threshold = (0 - bound) % bound;
        while (low < threshold) {
            x = next();
            m = __uint128_t(x) * bound;
            low = uint64_t(m);
        }
    }
    return uint64_t(m >> 64);
}

uint64_t
Rng::between(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::between with lo > hi");
    uint64_t span = hi - lo + 1;
    if (span == 0) // full [0, 2^64) range: hi - lo + 1 wrapped
        return next();
    return lo + range(span);
}

double
Rng::uniform()
{
    // 53 random bits into the mantissa.
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace asf
