/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal discipline:
 * panic() is for internal simulator bugs (aborts), fatal() is for user
 * errors (clean exit), warn()/inform() are status messages.
 */

#ifndef ASF_SIM_LOGGING_HH
#define ASF_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace asf
{

/** Abort: something happened that indicates a simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1): the simulation cannot continue due to a user/config error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning printed to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message printed to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Line-granular protocol tracing (a tiny DPRINTF): when a traced line
 * address is set (via setTraceLine() or the ASF_TRACE_LINE environment
 * variable, e.g. ASF_TRACE_LINE=0x10000), components log every protocol
 * event touching that line to stderr.
 */
void setTraceLine(uint64_t line_addr);
bool traceEnabledFor(uint64_t line_addr);
void traceEvent(uint64_t now, const char *who, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace asf

#endif // ASF_SIM_LOGGING_HH
