/**
 * @file
 * Interval time-series for the contention observatory: every N cycles
 * System::run snapshots the cumulative counters the scaling campaign
 * cares about (CPI buckets, fence issues, directory bounces/NACKs, GRT
 * deposits/clears, per-link NoC flits) and stores the *delta* against
 * the previous snapshot in a bounded ring buffer. The ring becomes the
 * `timeline` block of the stats JSON and a set of Chrome-trace counter
 * tracks, so a 10-cycle bounce storm is distinguishable from a uniform
 * trickle.
 *
 * Identity-preservation rules (DESIGN.md section 5g): the sampler only
 * *reads* counters that are maintained anyway, stores the results
 * host-side, and never schedules events or touches simulated state -
 * so cycles and all cumulative statistics are bit-identical with the
 * observatory on or off. Fast-forward and direct-execution jumps can
 * cross several interval boundaries at once; the sampler then emits one
 * merged sample spanning the whole elapsed range (each sample records
 * its actual [start, end] cycles) rather than ticking cycle-by-cycle.
 */

#ifndef ASF_SIM_INTERVAL_STATS_HH
#define ASF_SIM_INTERVAL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cpu/cpi_stack.hh"
#include "sim/types.hh"

namespace asf
{

/** Cumulative counter values at one instant, gathered by the caller
 *  (System) from the live components. */
struct IntervalCumulative
{
    uint64_t busy = 0;
    uint64_t idle = 0;
    uint64_t stall[numStallBuckets] = {};
    uint64_t instrRetired = 0;
    /** Strong + weak + wee fences issued. */
    uint64_t fencesIssued = 0;
    /** Directory invalidation bounces (BS hits). */
    uint64_t bounces = 0;
    /** Directory NACKs: getxNacked + coFailed. */
    uint64_t nacks = 0;
    uint64_t grtDeposits = 0;
    uint64_t grtClears = 0;
    /** Per directed mesh link: busy (flit) cycles, full enumeration
     *  (node * 4 + dir), stable across the run. */
    std::vector<uint64_t> linkBusy = {};
};

/** One ring slot: deltas over (start, end]. */
struct IntervalSample
{
    Tick start = 0;
    Tick end = 0;
    uint64_t busy = 0;
    uint64_t idle = 0;
    uint64_t stall[numStallBuckets] = {};
    uint64_t instrRetired = 0;
    uint64_t fencesIssued = 0;
    uint64_t bounces = 0;
    uint64_t nacks = 0;
    uint64_t grtDeposits = 0;
    uint64_t grtClears = 0;
    /** Total flit-cycles across all links this interval. */
    uint64_t flits = 0;
    /** Sparse nonzero per-link deltas: (link index, flit cycles). */
    std::vector<std::pair<uint32_t, uint64_t>> links = {};
};

class IntervalStats
{
  public:
    /** Snapshot every `interval` cycles, keep the last `capacity`
     *  samples (older ones are dropped and counted). */
    IntervalStats(Tick interval, size_t capacity);

    Tick interval() const { return interval_; }
    /** First tick at/after which the caller should sample(). */
    Tick nextAt() const { return nextAt_; }

    /** Close the interval ending at `now` with the cumulative counter
     *  values `cur`; stores cur - prev as a sample. A jump past several
     *  boundaries yields one merged sample covering the whole span. */
    void sample(Tick now, const IntervalCumulative &cur);

    /** Build (without storing) the sample covering the still-open
     *  interval (lastSampleAt, now]. Returns false when nothing has
     *  elapsed since the last stored sample. Const so stats dumps stay
     *  idempotent: dumping twice yields the same timeline. */
    bool tailSample(Tick now, const IntervalCumulative &cur,
                    IntervalSample &out) const;

    /** Re-baseline after a counter reset (System::resetStats): drops
     *  buffered samples and restarts the deltas at `now` against the
     *  post-reset cumulative values `cur` (some feeds, like the raw
     *  per-link flit counters, are not cleared by resetStats). */
    void reset(Tick now, const IntervalCumulative &cur);

    size_t size() const { return ring_.size(); }
    size_t capacity() const { return capacity_; }
    /** Samples evicted from the ring (total taken = size + dropped). */
    uint64_t dropped() const { return dropped_; }
    /** Oldest-first access: at(0) is the earliest retained sample. */
    const IntervalSample &at(size_t i) const;

  private:
    IntervalSample makeSample(Tick now, const IntervalCumulative &cur) const;

    Tick interval_;
    size_t capacity_;
    Tick nextAt_;
    uint64_t dropped_ = 0;
    IntervalCumulative prev_ = {};
    Tick prevAt_ = 0;
    /** Ring buffer: head_ is the oldest element once full. */
    std::vector<IntervalSample> ring_;
    size_t head_ = 0;
};

} // namespace asf

#endif // ASF_SIM_INTERVAL_STATS_HH
