#include "fence/grt.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace asf
{

Grt::Grt(NodeId node)
    : node_(node), stats_(format("grt%d", node)),
      statDeposits_(stats_, "deposits"), statClears_(stats_, "clears")
{
}

void
Grt::deposit(NodeId core, const std::vector<Addr> &pending_set,
             uint64_t fence_id)
{
    table_[core] = Deposit{pending_set, fence_id};
    statDeposits_.inc();
}

void
Grt::clear(NodeId core)
{
    table_.erase(core);
    statClears_.inc();
}

std::vector<Addr>
Grt::remotePendingSet(NodeId core) const
{
    std::vector<Addr> out;
    for (const auto &[owner, d] : table_) {
        if (owner == core)
            continue;
        out.insert(out.end(), d.lines.begin(), d.lines.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
Grt::blocks(NodeId core, Addr line) const
{
    for (const auto &[owner, d] : table_) {
        if (owner == core)
            continue;
        if (std::find(d.lines.begin(), d.lines.end(), line) !=
            d.lines.end())
            return true;
    }
    return false;
}

bool
Grt::hasDeposit(NodeId core) const
{
    return table_.count(core) != 0;
}

void
Grt::debugDump(std::ostream &os) const
{
    if (table_.empty())
        return;
    os << "grt" << unsigned(node_) << ":\n";
    for (const auto &[owner, d] : table_) {
        os << "  core" << unsigned(owner) << " fenceId=" << d.fenceId
           << " ps={";
        for (size_t i = 0; i < d.lines.size(); i++)
            os << (i ? "," : "") << "0x" << std::hex << d.lines[i]
               << std::dec;
        os << "}\n";
    }
}

} // namespace asf
