#include "fence/grt.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace asf
{

Grt::Grt(NodeId node)
    : node_(node), stats_(format("grt%d", node)),
      statDeposits_(stats_, "deposits"), statClears_(stats_, "clears")
{
}

void
Grt::deposit(NodeId core, const std::vector<Addr> &pending_set)
{
    table_[core] = pending_set;
    statDeposits_.inc();
}

void
Grt::clear(NodeId core)
{
    table_.erase(core);
    statClears_.inc();
}

std::vector<Addr>
Grt::remotePendingSet(NodeId core) const
{
    std::vector<Addr> out;
    for (const auto &[owner, set] : table_) {
        if (owner == core)
            continue;
        out.insert(out.end(), set.begin(), set.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
Grt::blocks(NodeId core, Addr line) const
{
    for (const auto &[owner, set] : table_) {
        if (owner == core)
            continue;
        if (std::find(set.begin(), set.end(), line) != set.end())
            return true;
    }
    return false;
}

bool
Grt::hasDeposit(NodeId core) const
{
    return table_.count(core) != 0;
}

} // namespace asf
