/**
 * @file
 * The paper's taxonomy (Table 1): five system-wide fence designs and the
 * per-instance fence kinds they resolve workload fence roles to.
 *
 *   S+   groups with only strong fences (conventional baseline)
 *   WS+  asymmetric groups with at most one weak fence
 *        (BS + Order bit + Order operation)
 *   SW+  any asymmetric group
 *        (BS + Order bit + word-granularity info + Conditional Order)
 *   W+   any group, including all-weak
 *        (BS + checkpoint + bounce detection + timeout + recovery)
 *   Wee  the WeeFence baseline (BS + global GRT/PS state)
 */

#ifndef ASF_FENCE_FENCE_KIND_HH
#define ASF_FENCE_FENCE_KIND_HH

#include <string>

#include "prog/instr.hh"

namespace asf
{

/** System-wide fence implementation selected for a run. */
enum class FenceDesign : uint8_t
{
    SPlus,
    WSPlus,
    SWPlus,
    WPlus,
    Wee,
};

/** What one executed fence instruction behaves as. */
enum class FenceKind : uint8_t
{
    Strong,  ///< conventional fence (sf)
    Weak,    ///< wf of the active asymmetric design
    WeeWeak, ///< WeeFence (GRT/PS protocol)
};

/** Resolve a workload fence role under a design. */
FenceKind resolveFenceKind(FenceDesign design, FenceRole role);

const char *fenceDesignName(FenceDesign d);
const char *fenceKindName(FenceKind k);

/** Parse "S+", "WS+", "SW+", "W+", "Wee" (case-insensitive). */
FenceDesign parseFenceDesign(const std::string &name);

/** All five designs, in the paper's presentation order. */
extern const FenceDesign allFenceDesigns[5];

} // namespace asf

#endif // ASF_FENCE_FENCE_KIND_HH
