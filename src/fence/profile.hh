/**
 * @file
 * Per-fence-instance lifecycle profiler. Every dynamic fence a core
 * executes gets a unique id (threaded through core -> GRT -> directory
 * messages) and a FenceRecord tracking its phases: issue, Pending-Set
 * deposit and reply, Bypass-Set growth, bounce/retry rounds, Remote-PS
 * holds, demotion, W+ squash/recovery, completion.
 *
 * Strictly observation-only: the profiler mutates no simulated state
 * and simulated timing is bit-identical with it on or off (tested).
 * Aggregates (phase-latency histograms with p50/p90/p99 and the top-N
 * slowest instances with their phase timelines) land in the stats JSON
 * as the `fenceProfile` object; the raw per-fence records go to the
 * optional `--fence-profile PATH` JSONL dump.
 */

#ifndef ASF_FENCE_PROFILE_HH
#define ASF_FENCE_PROFILE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "fence/fence_kind.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

namespace harness
{
class JsonWriter;
}

/** Lifecycle of one dynamic fence instance. */
struct FenceRecord
{
    uint64_t id = 0; ///< unique within a System; 0 is never issued
    NodeId core = invalidNode;
    FenceKind kind = FenceKind::Strong;
    bool instant = false; ///< completed at issue (empty write buffer)
    bool demoted = false; ///< fell back to strong (Wee multi-module /
                          ///< watchdog)
    // Phase timeline (absolute ticks; 0 = phase never entered).
    Tick issuedAt = 0;
    Tick completedAt = 0;
    Tick grtDepositAt = 0; ///< Wee Pending-Set deposit sent
    Tick grtReplyAt = 0;   ///< Remote-PS snapshot received
    // Event counts while active.
    uint64_t psLines = 0;       ///< deposited Pending-Set size
    uint64_t bsInserts = 0;     ///< post-fence accesses entering the BS
    uint64_t bounces = 0;       ///< invalidations bounced off our BS
    uint64_t storeNacks = 0;    ///< pre-fence store retry rounds
    uint64_t remotePsHolds = 0; ///< post-fence loads held on a Remote PS
    uint64_t recoveries = 0;    ///< W+ checkpoint rollbacks at this fence
    uint64_t squashedStores = 0;///< stores those rollbacks dropped

    Tick latency() const { return completedAt - issuedAt; }
    Tick grtWait() const
    {
        return grtReplyAt >= grtDepositAt ? grtReplyAt - grtDepositAt : 0;
    }
};

class FenceProfiler
{
  public:
    explicit FenceProfiler(bool keep_raw = false);

    /** A fence executed with pending stores; returns its unique id. */
    uint64_t onIssue(NodeId core, FenceKind kind, Tick now);
    /** An instant fence (empty write buffer) issues and completes in
     *  the same cycle. */
    void onInstant(NodeId core, FenceKind kind, Tick now);

    void onGrtDeposit(uint64_t id, uint64_t ps_lines, Tick now);
    void onGrtReply(uint64_t id, Tick now);
    void onBsInsert(uint64_t id);
    void onBounce(uint64_t id);
    void onStoreNack(uint64_t id);
    void onRemotePsHold(uint64_t id);
    void onDemote(uint64_t id);
    void onRecovery(uint64_t id, uint64_t squashed_stores);
    /** A younger fence was rolled back by a W+ recovery: it never
     *  architecturally happened, so it is dropped, not folded. */
    void onSquashed(uint64_t id);
    void onComplete(uint64_t id, Tick now);

    uint64_t issued() const { return issued_; }
    uint64_t completed() const { return completed_; }
    uint64_t instants() const { return instants_; }

    static constexpr size_t topN = 8;
    const std::vector<FenceRecord> &slowest() const { return slowest_; }
    const std::vector<FenceRecord> &raw() const { return raw_; }
    const StatHistogram &latencyHist() const { return latency_; }

    /** The stats-JSON `fenceProfile` object (aggregates + top-N). */
    void dumpJson(harness::JsonWriter &w) const;

    /** One JSON object per completed fence, in completion order. */
    void dumpRawJsonl(std::ostream &os) const;

  private:
    FenceRecord *find(uint64_t id);
    void fold(const FenceRecord &r);

    bool keepRaw_;
    uint64_t nextId_ = 0;
    uint64_t issued_ = 0;
    uint64_t completed_ = 0;
    uint64_t instants_ = 0;
    uint64_t demotions_ = 0;
    uint64_t recoveries_ = 0;
    uint64_t squashedFences_ = 0;
    uint64_t byKind_[3] = {0, 0, 0};
    std::vector<FenceRecord> active_; ///< small: few fences per core
    std::vector<FenceRecord> slowest_;///< desc by latency, <= topN
    std::vector<FenceRecord> raw_;
    StatHistogram latency_;
    StatHistogram grtWait_;
    StatHistogram bounceRounds_;
    StatHistogram bsInserts_;
};

} // namespace asf

#endif // ASF_FENCE_PROFILE_HH
