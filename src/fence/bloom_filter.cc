#include "fence/bloom_filter.hh"

namespace asf
{

unsigned
BloomFilter::hash(Addr line_addr, unsigned which) const
{
    uint64_t x = line_addr >> 5; // drop line-offset bits
    x *= which ? 0x9e3779b97f4a7c15ULL : 0xc2b2ae3d27d4eb4fULL;
    x ^= x >> 29;
    return unsigned(x % numBits);
}

void
BloomFilter::insert(Addr line_addr)
{
    for (unsigned h = 0; h < numHashes; h++)
        bits_.set(hash(line_addr, h));
}

bool
BloomFilter::mightContain(Addr line_addr) const
{
    for (unsigned h = 0; h < numHashes; h++)
        if (!bits_.test(hash(line_addr, h)))
            return false;
    return true;
}

void
BloomFilter::clear()
{
    bits_.reset();
}

} // namespace asf
