/**
 * @file
 * The Global Reorder Table (GRT) of the WeeFence baseline: one module per
 * directory slice. A WeeFence deposits its Pending Set (the line
 * addresses of its incomplete pre-fence stores) here and receives back
 * the union of the Pending Sets other cores currently have deposited at
 * this module (its Remote PS). The module also answers re-check probes
 * for post-fence accesses that stalled on a Remote PS match.
 *
 * As in the paper, consistency is only achievable within a single module,
 * so a fence whose PS/BS footprint spans more than one directory module
 * is demoted to a conventional fence by the core (Section 2.3).
 */

#ifndef ASF_FENCE_GRT_HH
#define ASF_FENCE_GRT_HH

#include <map>
#include <ostream>
#include <vector>

#include "mem/message.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

class Grt
{
  public:
    explicit Grt(NodeId node);

    /** Deposit `core`'s pending set, replacing any previous deposit.
     *  `fence_id` is the depositing fence's profiler id (observability
     *  only; shows up in debugDump). */
    void deposit(NodeId core, const std::vector<Addr> &pending_set,
                 uint64_t fence_id = 0);

    /** Remove `core`'s deposit (its fence completed). */
    void clear(NodeId core);

    /** Union of all pending sets deposited by cores other than `core`. */
    std::vector<Addr> remotePendingSet(NodeId core) const;

    /** Is `line` in any pending set deposited by a core other than us? */
    bool blocks(NodeId core, Addr line) const;

    bool hasDeposit(NodeId core) const;
    size_t numDeposits() const { return table_.size(); }

    /** One-line-per-deposit diagnostic dump (watchdog snapshot). */
    void debugDump(std::ostream &os) const;

    StatGroup &stats() { return stats_; }

  private:
    struct Deposit
    {
        std::vector<Addr> lines;
        uint64_t fenceId = 0;
    };

    NodeId node_;
    std::map<NodeId, Deposit> table_;
    StatGroup stats_;
    // Hot-path handles into stats_ (lazily bound; see LazyStatScalar).
    LazyStatScalar statDeposits_;
    LazyStatScalar statClears_;
};

} // namespace asf

#endif // ASF_FENCE_GRT_HH
