#include "fence/profile.hh"

#include <algorithm>

#include "harness/report.hh"

namespace asf
{

FenceProfiler::FenceProfiler(bool keep_raw)
    : keepRaw_(keep_raw),
      latency_(/*bucket_count=*/40, /*bucket_width=*/50.0),
      grtWait_(32, 10.0), bounceRounds_(16, 1.0), bsInserts_(16, 1.0)
{
}

FenceRecord *
FenceProfiler::find(uint64_t id)
{
    for (auto &r : active_)
        if (r.id == id)
            return &r;
    return nullptr;
}

uint64_t
FenceProfiler::onIssue(NodeId core, FenceKind kind, Tick now)
{
    FenceRecord r;
    r.id = ++nextId_;
    r.core = core;
    r.kind = kind;
    r.issuedAt = now;
    active_.push_back(std::move(r));
    issued_++;
    byKind_[unsigned(kind)]++;
    return nextId_;
}

void
FenceProfiler::onInstant(NodeId core, FenceKind kind, Tick now)
{
    issued_++;
    instants_++;
    byKind_[unsigned(kind)]++;
    FenceRecord r;
    r.id = ++nextId_;
    r.core = core;
    r.kind = kind;
    r.instant = true;
    r.issuedAt = now;
    r.completedAt = now;
    fold(r);
}

void
FenceProfiler::onGrtDeposit(uint64_t id, uint64_t ps_lines, Tick now)
{
    if (FenceRecord *r = find(id)) {
        r->grtDepositAt = now;
        r->psLines = ps_lines;
    }
}

void
FenceProfiler::onGrtReply(uint64_t id, Tick now)
{
    if (FenceRecord *r = find(id))
        r->grtReplyAt = now;
}

void
FenceProfiler::onBsInsert(uint64_t id)
{
    if (FenceRecord *r = find(id))
        r->bsInserts++;
}

void
FenceProfiler::onBounce(uint64_t id)
{
    if (FenceRecord *r = find(id))
        r->bounces++;
}

void
FenceProfiler::onStoreNack(uint64_t id)
{
    if (FenceRecord *r = find(id))
        r->storeNacks++;
}

void
FenceProfiler::onRemotePsHold(uint64_t id)
{
    if (FenceRecord *r = find(id))
        r->remotePsHolds++;
}

void
FenceProfiler::onDemote(uint64_t id)
{
    if (FenceRecord *r = find(id)) {
        r->demoted = true;
        demotions_++;
    }
}

void
FenceProfiler::onRecovery(uint64_t id, uint64_t squashed_stores)
{
    if (FenceRecord *r = find(id)) {
        r->recoveries++;
        r->squashedStores += squashed_stores;
        recoveries_++;
    }
}

void
FenceProfiler::onSquashed(uint64_t id)
{
    auto it = std::find_if(active_.begin(), active_.end(),
                           [id](const FenceRecord &r) { return r.id == id; });
    if (it != active_.end()) {
        active_.erase(it);
        squashedFences_++;
    }
}

void
FenceProfiler::onComplete(uint64_t id, Tick now)
{
    auto it = std::find_if(active_.begin(), active_.end(),
                           [id](const FenceRecord &r) { return r.id == id; });
    if (it == active_.end())
        return;
    it->completedAt = now;
    FenceRecord r = std::move(*it);
    active_.erase(it);
    completed_++;
    fold(r);
}

void
FenceProfiler::fold(const FenceRecord &r)
{
    latency_.sample(double(r.latency()));
    if (r.grtDepositAt)
        grtWait_.sample(double(r.grtWait()));
    if (!r.instant) {
        bounceRounds_.sample(double(r.storeNacks));
        bsInserts_.sample(double(r.bsInserts));
    }
    // Keep the topN slowest non-instant fences, sorted by latency desc
    // (ties: earlier issue first, matching completion order).
    if (!r.instant &&
        (slowest_.size() < topN ||
         r.latency() > slowest_.back().latency())) {
        auto pos = std::upper_bound(
            slowest_.begin(), slowest_.end(), r,
            [](const FenceRecord &a, const FenceRecord &b) {
                return a.latency() > b.latency();
            });
        slowest_.insert(pos, r);
        if (slowest_.size() > topN)
            slowest_.pop_back();
    }
    if (keepRaw_)
        raw_.push_back(r);
}

namespace
{

void
emitHistogram(harness::JsonWriter &w, const StatHistogram &h)
{
    w.beginObject();
    w.field("count", h.count());
    w.field("mean", h.mean());
    w.field("max", h.max());
    w.field("p50", h.percentile(0.50));
    w.field("p90", h.percentile(0.90));
    w.field("p99", h.percentile(0.99));
    w.endObject();
}

void
emitRecord(harness::JsonWriter &w, const FenceRecord &r)
{
    w.beginObject();
    w.field("id", r.id);
    w.field("core", uint64_t(r.core));
    w.field("kind", fenceKindName(r.kind));
    w.field("instant", r.instant);
    w.field("demoted", r.demoted);
    w.field("issuedAt", r.issuedAt);
    w.field("completedAt", r.completedAt);
    w.field("latency", r.latency());
    w.field("grtDepositAt", r.grtDepositAt);
    w.field("grtReplyAt", r.grtReplyAt);
    w.field("psLines", r.psLines);
    w.field("bsInserts", r.bsInserts);
    w.field("bounces", r.bounces);
    w.field("storeNacks", r.storeNacks);
    w.field("remotePsHolds", r.remotePsHolds);
    w.field("recoveries", r.recoveries);
    w.field("squashedStores", r.squashedStores);
    w.endObject();
}

} // namespace

void
FenceProfiler::dumpJson(harness::JsonWriter &w) const
{
    w.beginObject();
    w.field("issued", issued_);
    w.field("completed", completed_);
    w.field("instant", instants_);
    w.field("active", uint64_t(active_.size()));
    w.field("squashedFences", squashedFences_);
    w.field("strong", byKind_[unsigned(FenceKind::Strong)]);
    w.field("weak", byKind_[unsigned(FenceKind::Weak)]);
    w.field("wee", byKind_[unsigned(FenceKind::WeeWeak)]);
    w.field("demotions", demotions_);
    w.field("recoveries", recoveries_);
    w.key("latency");
    emitHistogram(w, latency_);
    w.key("grtWait");
    emitHistogram(w, grtWait_);
    w.key("bounceRounds");
    emitHistogram(w, bounceRounds_);
    w.key("bsInserts");
    emitHistogram(w, bsInserts_);
    w.key("slowest").beginArray();
    for (const auto &r : slowest_)
        emitRecord(w, r);
    w.endArray();
    w.endObject();
}

void
FenceProfiler::dumpRawJsonl(std::ostream &os) const
{
    for (const auto &r : raw_) {
        harness::JsonWriter w(os);
        emitRecord(w, r);
        os << '\n';
    }
}

} // namespace asf
