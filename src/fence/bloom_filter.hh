/**
 * @file
 * Front-end Bloom filter for the Bypass Set (as in WeeFence): incoming
 * coherence transactions first test the filter; only hits proceed to the
 * associative BS comparison. Functionally transparent; it exists to model
 * (and count) the comparisons the hardware avoids.
 */

#ifndef ASF_FENCE_BLOOM_FILTER_HH
#define ASF_FENCE_BLOOM_FILTER_HH

#include <bitset>

#include "sim/types.hh"

namespace asf
{

class BloomFilter
{
  public:
    static constexpr unsigned numBits = 256;
    static constexpr unsigned numHashes = 2;

    void insert(Addr line_addr);
    bool mightContain(Addr line_addr) const;
    void clear();
    bool empty() const { return bits_.none(); }

  private:
    unsigned hash(Addr line_addr, unsigned which) const;

    std::bitset<numBits> bits_;
};

} // namespace asf

#endif // ASF_FENCE_BLOOM_FILTER_HH
