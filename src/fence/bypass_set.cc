#include "fence/bypass_set.hh"

#include <algorithm>

#include "mem/address.hh"
#include "sim/logging.hh"

namespace asf
{

BypassSet::BypassSet(unsigned capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("BypassSet with zero capacity");
    entries_.reserve(capacity);
}

bool
BypassSet::insert(Addr addr, uint64_t epoch)
{
    Addr line = lineAlign(addr);
    WordMask word = wordMaskFor(addr);
    for (auto &e : entries_) {
        if (e.line == line) {
            e.words |= word;
            if (epoch > e.epoch)
                e.epoch = epoch;
            return true;
        }
    }
    if (full())
        return false;
    entries_.push_back(Entry{line, word, epoch});
    bloom_.insert(line);
    return true;
}

bool
BypassSet::containsLine(Addr line_addr) const
{
    if (!bloom_.mightContain(line_addr)) {
        bloomFiltered_++;
        return false;
    }
    for (const auto &e : entries_)
        if (e.line == line_addr)
            return true;
    return false;
}

BsMatch
BypassSet::match(Addr line_addr, WordMask request_words) const
{
    if (!bloom_.mightContain(line_addr)) {
        bloomFiltered_++;
        return BsMatch::None;
    }
    for (const auto &e : entries_) {
        if (e.line != line_addr)
            continue;
        if (request_words == 0)
            return BsMatch::TrueShare;
        return (e.words & request_words) ? BsMatch::TrueShare
                                         : BsMatch::FalseShare;
    }
    return BsMatch::None;
}

void
BypassSet::clear()
{
    entries_.clear();
    bloom_.clear();
}

void
BypassSet::clearUpTo(uint64_t epoch)
{
    auto it = std::remove_if(entries_.begin(), entries_.end(),
                             [epoch](const Entry &e) {
                                 return e.epoch <= epoch;
                             });
    if (it == entries_.end())
        return;
    entries_.erase(it, entries_.end());
    rebuildBloom();
}

void
BypassSet::rebuildBloom()
{
    bloom_.clear();
    for (const auto &e : entries_)
        bloom_.insert(e.line);
}

} // namespace asf
