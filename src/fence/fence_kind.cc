#include "fence/fence_kind.hh"

#include <algorithm>
#include <cctype>

#include "sim/logging.hh"

namespace asf
{

const FenceDesign allFenceDesigns[5] = {
    FenceDesign::SPlus, FenceDesign::WSPlus, FenceDesign::SWPlus,
    FenceDesign::WPlus, FenceDesign::Wee};

FenceKind
resolveFenceKind(FenceDesign design, FenceRole role)
{
    switch (design) {
      case FenceDesign::SPlus:
        return FenceKind::Strong;
      case FenceDesign::WSPlus:
      case FenceDesign::SWPlus:
        // Critical threads get the weak fence, the rest stay strong.
        return role == FenceRole::Critical ? FenceKind::Weak
                                           : FenceKind::Strong;
      case FenceDesign::WPlus:
        // W+ tolerates all-weak groups, so every fence is weak.
        return FenceKind::Weak;
      case FenceDesign::Wee:
        return FenceKind::WeeWeak;
    }
    panic("bad fence design");
}

const char *
fenceDesignName(FenceDesign d)
{
    switch (d) {
      case FenceDesign::SPlus: return "S+";
      case FenceDesign::WSPlus: return "WS+";
      case FenceDesign::SWPlus: return "SW+";
      case FenceDesign::WPlus: return "W+";
      case FenceDesign::Wee: return "Wee";
    }
    return "?";
}

const char *
fenceKindName(FenceKind k)
{
    switch (k) {
      case FenceKind::Strong: return "sf";
      case FenceKind::Weak: return "wf";
      case FenceKind::WeeWeak: return "wee-wf";
    }
    return "?";
}

FenceDesign
parseFenceDesign(const std::string &name)
{
    std::string s;
    s.reserve(name.size());
    for (char c : name)
        s.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    if (s == "s+" || s == "splus")
        return FenceDesign::SPlus;
    if (s == "ws+" || s == "wsplus")
        return FenceDesign::WSPlus;
    if (s == "sw+" || s == "swplus")
        return FenceDesign::SWPlus;
    if (s == "w+" || s == "wplus")
        return FenceDesign::WPlus;
    if (s == "wee" || s == "weefence")
        return FenceDesign::Wee;
    fatal("unknown fence design '%s'", name.c_str());
}

} // namespace asf
